(* End-to-end tests for the serving subsystem (lib/serve): an in-process
   server on a temp Unix-domain socket, driven over the wire through
   Kregret_serve.Client.

   The central claim (ISSUE acceptance): for every loaded dataset and every
   k in d..|happy|, the served selection and mrr are bit-identical to a
   direct Stored_list prefix read AND to a fresh GeoGreedy run on the same
   candidates — including when the answer comes from the LRU cache or from
   a coalesced batch. *)

module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Csv_io = Kregret_dataset.Csv_io
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Geo_greedy = Kregret.Geo_greedy
module Invariants = Kregret.Invariants
module Serve = Kregret_serve
module Client = Serve.Client
module Server = Serve.Server
module Json = Serve.Json

let exact_float =
  Alcotest.testable
    (fun ppf x -> Format.fprintf ppf "%.17g" x)
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

(* ---- fixtures ------------------------------------------------------------ *)

let write_csv ~name ~n ~d ~seed =
  let st = Testutil.test_rng seed in
  let points = Array.init n (fun _ -> Testutil.random_point st d) in
  let path = Filename.temp_file "kregret_serve_test" ".csv" in
  Csv_io.save path (Dataset.create ~name points);
  path

(* The reference pipeline, computed directly (no server): exactly what
   Registry.build does. *)
type direct = {
  dir_stored : Stored_list.t;
  dir_happy : Vector.t array;
  dir_orig_of_happy : int array;
  dir_n : int;
}

let direct_of_csv path =
  let ds = Dataset.normalize (Csv_io.load path) in
  let points = ds.Dataset.points in
  (* naive, not sfs: the Dynamic-backed registry keeps the naive
     (first-by-input-order) representative of duplicated maximal points *)
  let sky_idx = Skyline.naive points in
  let sky = Array.map (fun i -> points.(i)) sky_idx in
  let happy_idx = Happy.happy_points sky in
  let happy = Array.map (fun i -> sky.(i)) happy_idx in
  let orig_of_happy = Array.map (fun i -> sky_idx.(i)) happy_idx in
  {
    dir_stored = Stored_list.preprocess happy;
    dir_happy = happy;
    dir_orig_of_happy = orig_of_happy;
    dir_n = Array.length points;
  }

let direct_answer dir ~k =
  let sel = Stored_list.query dir.dir_stored ~k in
  ( List.map (fun i -> dir.dir_orig_of_happy.(i)) sel,
    Stored_list.mrr_at dir.dir_stored ~k )

let with_server ?cache_capacity ?max_line ?max_length ?workers ?listeners f =
  let socket_path = Server.temp_socket_path () in
  let server =
    Server.start_exn
      (Server.config ?cache_capacity ?max_line ?max_length ?workers ?listeners
         ~socket_path ())
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () ->
      f ~socket_path server)

let with_client ~socket_path f =
  match Client.connect ~socket_path () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let or_fail what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let load_and_wait c ~name ~path =
  ignore (or_fail "load" (Client.load c ~name ~path));
  or_fail "wait_ready" (Client.wait_ready c ~name)

(* ---- the bit-identical e2e sweep ----------------------------------------- *)

let test_bit_identical_all_k () =
  let path = write_csv ~name:"sweep" ~n:160 ~d:3 ~seed:11 in
  let dir = direct_of_csv path in
  let d = Vector.dim dir.dir_happy.(0) in
  let n_happy = Array.length dir.dir_happy in
  with_server ~cache_capacity:64 (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          load_and_wait c ~name:"sweep" ~path;
          for k = d to n_happy do
            let sel_ref, mrr_ref = direct_answer dir ~k in
            (* cold *)
            let sel, mrr =
              or_fail "query" (Client.query c ~name:"sweep" ~k)
            in
            Alcotest.(check (list int))
              (Printf.sprintf "selection at k=%d == StoredList prefix" k)
              sel_ref sel;
            Alcotest.check exact_float
              (Printf.sprintf "mrr at k=%d bit-identical" k)
              mrr_ref mrr;
            (* the served selection is a valid k-regret answer *)
            (match
               Invariants.valid_selection ~what:"served" ~n:dir.dir_n ~k sel
             with
            | [] -> ()
            | ms -> Alcotest.failf "k=%d: %s" k (String.concat "; " ms));
            (* fresh GeoGreedy on the same candidates: same answer *)
            let g = Geo_greedy.run ~points:dir.dir_happy ~k () in
            let g_orig =
              List.map (fun i -> dir.dir_orig_of_happy.(i)) g.Geo_greedy.order
            in
            Alcotest.(check (list int))
              (Printf.sprintf "selection at k=%d == fresh GeoGreedy" k)
              g_orig sel;
            (* warm: the cache hit is the same bits *)
            let j = or_fail "query_json" (Client.query_json c ~name:"sweep" ~k) in
            Alcotest.(check (option bool))
              (Printf.sprintf "k=%d answered from cache" k)
              (Some true)
              (Option.bind (Json.member "cached" j) Json.to_bool);
            let sel', mrr' =
              or_fail "cached query" (Client.query c ~name:"sweep" ~k)
            in
            Alcotest.(check (list int)) "cached selection identical" sel sel';
            Alcotest.check exact_float "cached mrr identical" mrr mrr';
            (* the mrr verb agrees with the query verb *)
            let m = or_fail "mrr" (Client.mrr c ~name:"sweep" ~k) in
            Alcotest.check exact_float "mrr verb bit-identical" mrr_ref m
          done))

(* ---- concurrent clients: coalescing + cache stay bit-identical ----------- *)

let test_concurrent_clients () =
  let path = write_csv ~name:"conc" ~n:200 ~d:4 ~seed:23 in
  let dir = direct_of_csv path in
  let k = min 6 (Array.length dir.dir_happy) in
  let sel_ref, mrr_ref = direct_answer dir ~k in
  with_server ~cache_capacity:32 (fun ~socket_path _server ->
      with_client ~socket_path (fun c -> load_and_wait c ~name:"conc" ~path);
      let n_threads = 8 and per_thread = 5 in
      let results = Array.make n_threads [] in
      let threads =
        Array.init n_threads (fun i ->
            Thread.create
              (fun () ->
                with_client ~socket_path (fun c ->
                    for _ = 1 to per_thread do
                      results.(i) <-
                        Client.query c ~name:"conc" ~k :: results.(i)
                    done))
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i rs ->
          List.iter
            (fun r ->
              let sel, mrr = or_fail (Printf.sprintf "thread %d" i) r in
              Alcotest.(check (list int)) "concurrent selection" sel_ref sel;
              Alcotest.check exact_float "concurrent mrr" mrr_ref mrr)
            rs)
        results;
      (* the server really did coalesce/cache rather than recompute 40x *)
      with_client ~socket_path (fun c ->
          let j = or_fail "stats" (Client.stats c) in
          let cache = Json.member "cache" j in
          let hits =
            Option.bind (Option.bind cache (Json.member "hits")) Json.to_int
            |> Option.value ~default:(-1)
          in
          if hits < 1 then
            Alcotest.failf "expected cache hits after 40 identical queries: %s"
              (Json.to_string j);
          (* the batch counters are read under the batcher mutex as one
             pair, so they can never tear: every coalesced group has
             exactly one leader, and leaders + followers never exceeds the
             total number of queries issued *)
          let batch = Json.member "batch" j in
          let bget name =
            Option.bind (Option.bind batch (Json.member name)) Json.to_int
            |> Option.value ~default:(-1)
          in
          let leaders = bget "leaders" and followers = bget "followers" in
          Alcotest.(check bool) "batch leaders sane" true (leaders >= 0);
          Alcotest.(check bool) "batch followers sane" true (followers >= 0);
          Alcotest.(check bool)
            (Printf.sprintf "batch pair consistent (%d leaders, %d followers)"
               leaders followers)
            true
            (leaders + followers <= n_threads * per_thread)))

(* ---- protocol robustness -------------------------------------------------- *)

let expect_error_code c ~code frame =
  match Client.request c frame with
  | Error m -> Alcotest.failf "request %S failed transport: %s" frame m
  | Ok j ->
      Alcotest.(check (option string))
        (Printf.sprintf "code for %s" frame)
        (Some code)
        (Option.bind (Json.member "error" j) (fun e ->
             Option.bind (Json.member "code" e) Json.to_str))

let test_malformed_frames () =
  with_server (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          expect_error_code c ~code:"parse_error" "this is not json";
          expect_error_code c ~code:"parse_error" "{\"op\":";
          expect_error_code c ~code:"bad_request" "[1,2,3]";
          expect_error_code c ~code:"missing_field" "{\"op\":\"query\",\"k\":3}";
          expect_error_code c ~code:"missing_field" "{\"name\":\"x\",\"k\":3}";
          expect_error_code c ~code:"bad_field"
            "{\"op\":\"query\",\"name\":\"x\",\"k\":\"three\"}";
          expect_error_code c ~code:"bad_field"
            "{\"op\":\"query\",\"name\":\"x\",\"k\":0}";
          expect_error_code c ~code:"unknown_op" "{\"op\":\"frobnicate\"}";
          expect_error_code c ~code:"not_found"
            "{\"op\":\"query\",\"name\":\"nope\",\"k\":3}";
          (* after all that abuse, the same connection still serves *)
          ignore (or_fail "ping after abuse" (Client.ping c))))

let test_oversized_frame () =
  with_server ~max_line:128 (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          let big =
            "{\"op\":\"ping\",\"pad\":\"" ^ String.make 400 'x' ^ "\"}"
          in
          (match Client.request c big with
          | Ok j ->
              Alcotest.(check (option string))
                "frame_too_large" (Some "frame_too_large")
                (Option.bind (Json.member "error" j) (fun e ->
                     Option.bind (Json.member "code" e) Json.to_str))
          | Error m -> Alcotest.failf "oversized frame: transport error %s" m);
          (* the connection is closed afterwards — framing is untrustworthy *)
          match Client.request_raw c "{\"op\":\"ping\"}" with
          | Error _ -> ()
          | Ok r ->
              Alcotest.failf "connection should be closed after oversize: %S" r);
      (* ...but the server itself is alive: a fresh connection works *)
      with_client ~socket_path (fun c ->
          ignore (or_fail "ping after oversize" (Client.ping c))))

let test_truncated_connection () =
  with_server (fun ~socket_path _server ->
      (* hang up mid-frame, twice, with raw sockets *)
      for _ = 1 to 2 do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        let partial = "{\"op\":\"qu" in
        ignore (Unix.write_substring fd partial 0 (String.length partial));
        Unix.close fd
      done;
      (* and hang up before reading the hello *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      Unix.close fd;
      (* server is unimpressed *)
      with_client ~socket_path (fun c ->
          ignore (or_fail "ping after truncations" (Client.ping c))))

(* ---- registry lifecycle over the wire ------------------------------------- *)

let test_list_stats_evict () =
  let path = write_csv ~name:"life" ~n:80 ~d:3 ~seed:5 in
  with_server (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          load_and_wait c ~name:"life" ~path;
          ignore (or_fail "query" (Client.query c ~name:"life" ~k:4));
          (* list: one ready dataset with build facts *)
          let j = or_fail "list" (Client.list_datasets c) in
          let ds =
            Option.bind (Json.member "datasets" j) Json.to_list
            |> Option.value ~default:[]
          in
          Alcotest.(check int) "one dataset" 1 (List.length ds);
          let d0 = List.hd ds in
          Alcotest.(check (option string))
            "status ready" (Some "ready")
            (Option.bind (Json.member "status" d0) Json.to_str);
          List.iter
            (fun field ->
              if Json.member field d0 = None then
                Alcotest.failf "list entry missing %s: %s" field
                  (Json.to_string d0))
            [ "name"; "path"; "fingerprint"; "n"; "d"; "shards"; "sky";
              "happy"; "materialized"; "build_seconds" ];
          (* stats: counters move *)
          let s = or_fail "stats" (Client.stats c) in
          let geti name =
            Option.bind (Json.member name s) Json.to_int
            |> Option.value ~default:(-1)
          in
          Alcotest.(check bool) "requests counted" true (geti "requests" > 0);
          Alcotest.(check int) "datasets gauge" 1 (geti "datasets");
          (* uptime comes from the monotonic wrapper: never negative *)
          Alcotest.(check bool) "uptime non-negative" true
            (match Option.bind (Json.member "uptime_seconds" s) Json.to_float with
            | Some u -> u >= 0.
            | None -> false);
          Alcotest.(check bool) "live connections reported" true
            (Option.bind (Json.member "connections" s) (Json.member "live")
             |> Fun.flip Option.bind Json.to_int
             |> Option.value ~default:(-1) >= 1);
          (* evict with no name clears the cache only *)
          ignore (or_fail "evict cache" (Client.evict c ()));
          let j = or_fail "query_json" (Client.query_json c ~name:"life" ~k:4) in
          Alcotest.(check (option bool))
            "cache cleared -> cold answer" (Some false)
            (Option.bind (Json.member "cached" j) Json.to_bool);
          (* evict by name drops the dataset *)
          ignore (or_fail "evict life" (Client.evict c ~name:"life" ()));
          match Client.query c ~name:"life" ~k:4 with
          | Error m when Testutil.contains m "not_found" -> ()
          | Error m -> Alcotest.failf "expected not_found, got %s" m
          | Ok _ -> Alcotest.fail "query after evict should fail"))

(* A query racing the background build either gets a [building] +
   retry_after (and the typed client retries through it) or a ready answer
   — never a hang, never a wrong answer. *)
let test_query_races_build () =
  let path = write_csv ~name:"race" ~n:300 ~d:4 ~seed:31 in
  let dir = direct_of_csv path in
  let k = min 5 (Array.length dir.dir_happy) in
  let sel_ref, mrr_ref = direct_answer dir ~k in
  with_server (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          ignore (or_fail "load" (Client.load c ~name:"race" ~path));
          (* no wait_ready: Client.query retries on [building] *)
          let sel, mrr = or_fail "query during build" (Client.query c ~name:"race" ~k) in
          Alcotest.(check (list int)) "race selection" sel_ref sel;
          Alcotest.check exact_float "race mrr" mrr_ref mrr))

(* ---- staleness: the CSV changed on disk after load ------------------------ *)

let test_stale_dataset_rejected () =
  let path = write_csv ~name:"stale" ~n:60 ~d:3 ~seed:7 in
  with_server (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          load_and_wait c ~name:"stale" ~path;
          ignore (or_fail "query before rewrite" (Client.query c ~name:"stale" ~k:4));
          (* rewrite the backing file with different bytes *)
          let st = Testutil.test_rng 99 in
          let points = Array.init 70 (fun _ -> Testutil.random_point st 3) in
          Csv_io.save path (Dataset.create ~name:"stale" points);
          (* the stale StoredList must NOT be served *)
          (match Client.query c ~name:"stale" ~k:4 with
          | Ok _ -> Alcotest.fail "served a stale dataset"
          | Error m ->
              Alcotest.(check bool)
                (Printf.sprintf "stale_dataset error (got %s)" m)
                true
                (Testutil.contains m "stale_dataset"));
          (* mrr takes the same guard *)
          (match Client.mrr c ~name:"stale" ~k:4 with
          | Ok _ -> Alcotest.fail "served mrr from a stale dataset"
          | Error m ->
              Alcotest.(check bool) "stale mrr rejected" true
                (Testutil.contains m "stale_dataset"));
          (* re-loading picks up the new bytes and serves the new answer *)
          load_and_wait c ~name:"stale" ~path;
          let dir = direct_of_csv path in
          let sel_ref, mrr_ref = direct_answer dir ~k:4 in
          let sel, mrr = or_fail "query after reload" (Client.query c ~name:"stale" ~k:4) in
          Alcotest.(check (list int)) "reloaded selection" sel_ref sel;
          Alcotest.check exact_float "reloaded mrr" mrr_ref mrr))

(* load errors are structured, not fatal *)
let test_load_failures () =
  with_server (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          (match Client.load c ~name:"ghost" ~path:"/nonexistent/file.csv" with
          | Ok _ -> Alcotest.fail "loading a missing file should fail"
          | Error _ -> ());
          let bad = Filename.temp_file "kregret_serve_bad" ".csv" in
          Out_channel.with_open_text bad (fun oc ->
              output_string oc "1.0,2.0\nnot,a,number\n");
          (match Client.load c ~name:"bad" ~path:bad with
          | Ok _ -> Alcotest.fail "loading malformed CSV should fail"
          | Error _ -> ());
          (* server alive, registry empty *)
          let j = or_fail "list" (Client.list_datasets c) in
          Alcotest.(check int) "no datasets" 0
            (Option.bind (Json.member "datasets" j) Json.to_list
            |> Option.value ~default:[] |> List.length)))

(* ---- dynamic updates over the wire ---------------------------------------- *)

(* rebuild expectation over an explicit (id, point) live set *)
let expected_of_live live ~k =
  let vecs = Array.map snd live in
  let sky_idx = Skyline.naive vecs in
  let sky = Array.map (fun i -> vecs.(i)) sky_idx in
  let happy_idx = Happy.happy_points sky in
  let happy = Array.map (fun i -> sky.(i)) happy_idx in
  let stored = Stored_list.preprocess happy in
  let sel = Stored_list.query stored ~k in
  ( List.map (fun e -> fst live.(sky_idx.(happy_idx.(e)))) sel,
    Stored_list.mrr_at stored ~k )

let test_update_verbs_end_to_end () =
  let path = write_csv ~name:"dyn" ~n:60 ~d:3 ~seed:41 in
  let base = (Dataset.normalize (Csv_io.load path)).Dataset.points in
  let n = Array.length base in
  let with_ids pts = Array.mapi (fun i p -> (i, p)) pts in
  with_server (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          load_and_wait c ~name:"dyn" ~path;
          let k = 4 in
          let sel0, mrr0 = or_fail "query" (Client.query c ~name:"dyn" ~k) in
          (* insert a skyline-entering point: ids continue past the CSV rows *)
          let p = [| 0.99; 0.98; 0.97 |] in
          let id = or_fail "insert" (Client.insert c ~name:"dyn" ~point:p) in
          Alcotest.(check int) "insert id continues the row sequence" n id;
          let live = Array.append (with_ids base) [| (id, p) |] in
          let sel_ref, mrr_ref = expected_of_live live ~k in
          let sel, mrr = or_fail "query after insert" (Client.query c ~name:"dyn" ~k) in
          Alcotest.(check (list int)) "post-insert selection == rebuild" sel_ref sel;
          Alcotest.check exact_float "post-insert mrr == rebuild" mrr_ref mrr;
          Alcotest.(check bool) "the insert shows up in the answer" true
            (List.mem id sel);
          (* a mutated dataset no longer goes stale when the CSV is rewritten:
             the file is a seed, not the source of truth *)
          let st = Testutil.test_rng 77 in
          Csv_io.save path
            (Dataset.create ~name:"dyn"
               (Array.init 10 (fun _ -> Testutil.random_point st 3)));
          let sel', _ = or_fail "query after CSV rewrite" (Client.query c ~name:"dyn" ~k) in
          Alcotest.(check (list int)) "rewrite ignored once mutated" sel sel';
          (* delete the insert: answers return to the original bits *)
          Alcotest.(check bool) "delete applies" true
            (or_fail "delete" (Client.delete c ~name:"dyn" ~id));
          let sel'', mrr'' = or_fail "query after delete" (Client.query c ~name:"dyn" ~k) in
          Alcotest.(check (list int)) "round trip restores the selection" sel0 sel'';
          Alcotest.check exact_float "round trip restores the mrr" mrr0 mrr'';
          (* flush reclaims the tombstone; deleting a dead id is a no-op *)
          Alcotest.(check int) "flush reclaims the tombstone" 1
            (or_fail "flush" (Client.flush c ~name:"dyn"));
          Alcotest.(check bool) "dead id delete is a no-op" false
            (or_fail "delete again" (Client.delete c ~name:"dyn" ~id));
          (* malformed points are structured bad_point errors, not failures *)
          (match Client.insert c ~name:"dyn" ~point:[| 0.5; 0.5 |] with
          | Ok _ -> Alcotest.fail "dimension mismatch should be rejected"
          | Error m ->
              Alcotest.(check bool)
                (Printf.sprintf "bad_point for wrong dim (got %s)" m)
                true
                (Testutil.contains m "bad_point"));
          (match Client.insert c ~name:"dyn" ~point:[| 0.5; 0.5; 2.5 |] with
          | Ok _ -> Alcotest.fail "out-of-range coordinate should be rejected"
          | Error m ->
              Alcotest.(check bool) "bad_point for out-of-range" true
                (Testutil.contains m "bad_point"));
          (* list reports the dynamic facts *)
          let j = or_fail "list" (Client.list_datasets c) in
          let d0 =
            List.hd
              (Option.bind (Json.member "datasets" j) Json.to_list
              |> Option.value ~default:[])
          in
          Alcotest.(check (option bool)) "mutated flag" (Some true)
            (Option.bind (Json.member "mutated" d0) Json.to_bool);
          Alcotest.(check (option int)) "live count" (Some n)
            (Option.bind (Json.member "live" d0) Json.to_int);
          Alcotest.(check bool) "epoch advanced" true
            (Option.bind (Json.member "epoch" d0) Json.to_int
             |> Option.value ~default:(-1) > 0)))

(* concurrent loads of the same unchanged file are idempotent: one entry,
   every caller joins the same build, and the dataset serves afterwards *)
let test_concurrent_load_idempotent () =
  let path = write_csv ~name:"multi" ~n:120 ~d:3 ~seed:53 in
  let reg = Serve.Registry.create () in
  Fun.protect ~finally:(fun () -> Serve.Registry.shutdown reg) (fun () ->
      let results = Array.make 8 (Error "unset") in
      let threads =
        Array.init 8 (fun i ->
            Thread.create
              (fun () -> results.(i) <- Serve.Registry.load reg ~name:"multi" ~path)
              ())
      in
      Array.iter Thread.join threads;
      let fps =
        Array.to_list results
        |> List.map (fun r -> (or_fail "concurrent load" r).Serve.Registry.fingerprint)
      in
      (match fps with
      | fp :: rest ->
          List.iter
            (fun fp' ->
              Alcotest.(check string) "all loads saw one fingerprint" fp fp')
            rest
      | [] -> Alcotest.fail "no loads ran");
      Alcotest.(check int) "one registry entry" 1
        (List.length (Serve.Registry.list reg));
      (* the single build completes and serves *)
      let rec wait tries =
        if tries = 0 then Alcotest.fail "build never finished"
        else
          match Serve.Registry.find reg "multi" with
          | Some { Serve.Registry.status = Serve.Registry.Ready _; _ } -> ()
          | Some { Serve.Registry.status = Serve.Registry.Failed m; _ } ->
              Alcotest.failf "build failed: %s" m
          | _ ->
              Thread.delay 0.02;
              wait (tries - 1)
      in
      wait 500)

(* a Failed build is retried by an explicit re-load of the same bytes
   (failures can be transient); it must not stick forever *)
let test_failed_build_reload_retries () =
  (* d = 21 parses and normalizes fine but the happy screen refuses d > 20,
     so the background build fails deterministically *)
  let st = Testutil.test_rng 61 in
  let points = Array.init 8 (fun _ -> Testutil.random_point st 21) in
  let path = Filename.temp_file "kregret_serve_wide" ".csv" in
  Csv_io.save path (Dataset.create ~name:"wide" points);
  let reg = Serve.Registry.create () in
  Fun.protect ~finally:(fun () -> Serve.Registry.shutdown reg) (fun () ->
      ignore (or_fail "first load" (Serve.Registry.load reg ~name:"wide" ~path));
      let rec wait_failed tries =
        if tries = 0 then Alcotest.fail "build never failed"
        else
          match Serve.Registry.find reg "wide" with
          | Some { Serve.Registry.status = Serve.Registry.Failed _; _ } -> ()
          | Some { Serve.Registry.status = Serve.Registry.Ready _; _ } ->
              Alcotest.fail "d=21 build unexpectedly succeeded"
          | _ ->
              Thread.delay 0.02;
              wait_failed (tries - 1)
      in
      wait_failed 500;
      (* the re-load re-enqueues instead of parroting the cached failure *)
      let info = or_fail "re-load" (Serve.Registry.load reg ~name:"wide" ~path) in
      (match info.Serve.Registry.status with
      | Serve.Registry.Building -> ()
      | Serve.Registry.Failed _ ->
          Alcotest.fail "re-load returned the stale failure without retrying"
      | Serve.Registry.Ready _ -> Alcotest.fail "d=21 cannot be ready");
      (* the retry runs to its (deterministic) failure, not limbo *)
      wait_failed 500)

(* ---- event-driven poller: connection lifecycle ---------------------------- *)

(* the regression this guards: the old thread-per-connection server appended
   every accepted connection to [t.conns] and never removed it, so state
   grew with history. The poller keeps a live table only: after 10k
   sequential connect/close cycles the table must be bounded by concurrency
   (here: ~1), while the accepted counter records the full history. *)
let test_connection_churn () =
  with_server (fun ~socket_path server ->
      let churn = 10_000 in
      for i = 1 to churn do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        (* occasionally do a full round trip so the fds aren't all
           hello-only; mostly just slam the door *)
        if i mod 997 = 0 then begin
          let b = Bytes.create 512 in
          (* read the hello *)
          ignore (Unix.read fd b 0 512);
          let ping = "{\"op\":\"ping\"}\n" in
          ignore (Unix.write_substring fd ping 0 (String.length ping));
          ignore (Unix.read fd b 0 512)
        end;
        Unix.close fd
      done;
      (* give the sweep a beat to retire the last few closed fds *)
      let rec settle tries =
        if Server.live_connections server > 0 && tries > 0 then begin
          Thread.delay 0.01;
          settle (tries - 1)
        end
      in
      settle 300;
      Alcotest.(check bool)
        (Printf.sprintf "accepted the full history (%d)"
           (Server.accepted_connections server))
        true
        (Server.accepted_connections server >= churn);
      let live = Server.live_connections server in
      Alcotest.(check bool)
        (Printf.sprintf "live table bounded by concurrency (live=%d)" live)
        true (live <= 4);
      (* and the server still serves *)
      with_client ~socket_path (fun c ->
          ignore (or_fail "ping after churn" (Client.ping c))))

(* ---- transports: UDS and TCP serve identical bytes ------------------------ *)

(* one server, two listeners; the same frame script must produce
   byte-identical response lines over both transports. The script starts
   with [evict] so each transport sees the same cache state (cold then
   cached). *)
let test_transports_byte_identical () =
  let path = write_csv ~name:"wire" ~n:120 ~d:3 ~seed:17 in
  with_server
    ~listeners:[ Serve.Endpoint.Tcp ("127.0.0.1", 0) ]
    (fun ~socket_path server ->
      with_client ~socket_path (fun c -> load_and_wait c ~name:"wire" ~path);
      let tcp =
        match
          List.find_opt
            (function Serve.Endpoint.Tcp _ -> true | _ -> false)
            (Server.endpoints server)
        with
        | Some e -> e
        | None -> Alcotest.fail "server resolved no TCP endpoint"
      in
      let script =
        [
          "{\"op\":\"evict\"}";
          "{\"op\":\"query\",\"name\":\"wire\",\"k\":3}";
          "{\"op\":\"query\",\"name\":\"wire\",\"k\":3}";
          "{\"op\":\"mrr\",\"name\":\"wire\",\"k\":2}";
          "{\"op\":\"query\",\"name\":\"wire\",\"k\":0}";
          "not json at all";
          "{\"op\":\"ping\"}";
        ]
      in
      let run_session endpoint =
        match Client.connect_to endpoint with
        | Error m ->
            Alcotest.failf "connect %s: %s" (Serve.Endpoint.to_string endpoint) m
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                List.map
                  (fun frame ->
                    or_fail
                      (Printf.sprintf "frame %s over %s" frame
                         (Serve.Endpoint.to_string endpoint))
                      (Client.request_raw c frame))
                  script)
      in
      let over_uds = run_session (Serve.Endpoint.Unix_path socket_path) in
      let over_tcp = run_session tcp in
      List.iteri
        (fun i (u, t) ->
          Alcotest.(check string)
            (Printf.sprintf "response %d byte-identical across transports" i)
            u t)
        (List.combine over_uds over_tcp);
      (* the cached flag flipped within each session exactly the same way:
         cold after evict, cached on the repeat *)
      let cached_of line =
        match Json.parse line with
        | Ok j -> Option.bind (Json.member "cached" j) Json.to_bool
        | Error _ -> None
      in
      Alcotest.(check (option bool))
        "first query cold" (Some false)
        (cached_of (List.nth over_uds 1));
      Alcotest.(check (option bool))
        "repeat query cached" (Some true)
        (cached_of (List.nth over_uds 2)))

(* ---- scatter-gather shard tier -------------------------------------------- *)

(* over the wire: a sharded load answers bit-identically to the solo load
   of the same CSV at every k, and reports itself static *)
let test_shard_vs_monolithic_wire () =
  let path = write_csv ~name:"sh" ~n:150 ~d:3 ~seed:29 in
  let dir = direct_of_csv path in
  let n_happy = Array.length dir.dir_happy in
  with_server (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          ignore (or_fail "load solo" (Client.load c ~name:"solo" ~path));
          ignore
            (or_fail "load sharded" (Client.load ~shards:4 c ~name:"quads" ~path));
          or_fail "wait solo" (Client.wait_ready c ~name:"solo");
          or_fail "wait sharded" (Client.wait_ready c ~name:"quads");
          for k = 1 to n_happy do
            let sel_s, mrr_s =
              or_fail "solo query" (Client.query c ~name:"solo" ~k)
            in
            let sel_q, mrr_q =
              or_fail "sharded query" (Client.query c ~name:"quads" ~k)
            in
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d sharded selection == solo" k)
              sel_s sel_q;
            Alcotest.check exact_float
              (Printf.sprintf "k=%d sharded mrr bit-identical" k)
              mrr_s mrr_q;
            (* and both match the offline pipeline *)
            let sel_ref, mrr_ref = direct_answer dir ~k in
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d sharded == offline StoredList" k)
              sel_ref sel_q;
            Alcotest.check exact_float
              (Printf.sprintf "k=%d sharded mrr == offline" k)
              mrr_ref mrr_q
          done;
          (* a sharded dataset is static: every update verb is rejected with
             a structured code, and the dataset keeps serving afterwards *)
          (match Client.insert c ~name:"quads" ~point:[| 0.9; 0.8; 0.7 |] with
          | Ok _ -> Alcotest.fail "insert into a sharded dataset must fail"
          | Error m ->
              Alcotest.(check bool)
                (Printf.sprintf "static_dataset on insert (got %s)" m)
                true
                (Testutil.contains m "static_dataset"));
          (match Client.delete c ~name:"quads" ~id:0 with
          | Ok _ -> Alcotest.fail "delete on a sharded dataset must fail"
          | Error m ->
              Alcotest.(check bool) "static_dataset on delete" true
                (Testutil.contains m "static_dataset"));
          (match Client.flush c ~name:"quads" with
          | Ok _ -> Alcotest.fail "flush on a sharded dataset must fail"
          | Error m ->
              Alcotest.(check bool) "static_dataset on flush" true
                (Testutil.contains m "static_dataset"));
          ignore (or_fail "query after rejects" (Client.query c ~name:"quads" ~k:3));
          (* list reports the shard count on both entries *)
          let j = or_fail "list" (Client.list_datasets c) in
          let ds =
            Option.bind (Json.member "datasets" j) Json.to_list
            |> Option.value ~default:[]
          in
          let shards_of name =
            List.find_opt
              (fun d -> Option.bind (Json.member "name" d) Json.to_str = Some name)
              ds
            |> Fun.flip Option.bind (Json.member "shards")
            |> Fun.flip Option.bind Json.to_int
          in
          Alcotest.(check (option int)) "solo shards" (Some 1) (shards_of "solo");
          Alcotest.(check (option int)) "sharded shards" (Some 4)
            (shards_of "quads")))

(* the coordinator merge itself: for every shard count and every pool
   width, Shard.create answers row-for-row what the monolithic pipeline
   answers. This is the oracle form of the DESIGN §6 exactness argument. *)
let test_shard_merge_across_jobs () =
  let path = write_csv ~name:"merge" ~n:220 ~d:4 ~seed:71 in
  let points = (Dataset.normalize (Csv_io.load path)).Dataset.points in
  let dir = direct_of_csv path in
  let n_happy = Array.length dir.dir_happy in
  let jobs0 = Kregret_parallel.Pool.get_jobs () in
  Fun.protect
    ~finally:(fun () -> Kregret_parallel.Pool.set_jobs jobs0)
    (fun () ->
      List.iter
        (fun jobs ->
          Kregret_parallel.Pool.set_jobs jobs;
          List.iter
            (fun shards ->
              let sh = Serve.Shard.create ~shards points in
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d shards=%d union skyline size" jobs
                   shards)
                (Array.length (Skyline.naive points))
                (Serve.Shard.n_sky sh);
              for k = 1 to n_happy do
                let sel_ref, mrr_ref = direct_answer dir ~k in
                let sel, mrr = Serve.Shard.query sh ~k in
                Alcotest.(check (list int))
                  (Printf.sprintf "jobs=%d shards=%d k=%d merged selection"
                     jobs shards k)
                  sel_ref sel;
                Alcotest.check exact_float
                  (Printf.sprintf "jobs=%d shards=%d k=%d merged mrr" jobs
                     shards k)
                  mrr_ref mrr
              done)
            [ 1; 2; 3; 4; 7 ])
        [ 1; 2; 4 ])

(* ---- shutdown under load cannot hang -------------------------------------- *)

let test_shutdown_under_load () =
  let uds = Server.temp_socket_path () in
  let server =
    Server.start_exn
      (Server.config
         ~listeners:[ Serve.Endpoint.Unix_path uds; Serve.Endpoint.Tcp ("127.0.0.1", 0) ]
         ())
  in
  let endpoints = Server.endpoints server in
  let give_up = Atomic.make false in
  (* three pingers per listener, reconnecting in a loop until the server
     goes away *)
  let pingers =
    List.concat_map
      (fun ep ->
        List.init 3 (fun _ ->
            Thread.create
              (fun () ->
                let rec go () =
                  if not (Atomic.get give_up) then
                    match Client.connect_to ~timeout:5. ep with
                    | Error _ -> () (* server is gone: done *)
                    | Ok c ->
                        let rec pings n =
                          if n > 0 && not (Atomic.get give_up) then
                            match Client.ping c with
                            | Ok _ -> pings (n - 1)
                            | Error _ -> ()
                        in
                        pings 50;
                        Client.close c;
                        go ()
                in
                go ())
              ()))
      endpoints
  in
  (* let the load build up *)
  Thread.delay 0.2;
  let stopped = Atomic.make false in
  let stopper =
    Thread.create
      (fun () ->
        Server.stop server;
        Atomic.set stopped true)
      ()
  in
  (* watchdog: stop drains in-flight requests (5 s deadline inside the
     poller) and must return well before this outer deadline *)
  let deadline = Unix.gettimeofday () +. 20. in
  while (not (Atomic.get stopped)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done;
  Atomic.set give_up true;
  Alcotest.(check bool) "shutdown completed under load" true
    (Atomic.get stopped);
  Thread.join stopper;
  List.iter Thread.join pingers

(* ε-kernel loads over the wire: served answers are bit-identical to the
   offline approx pipeline, the dataset is static, and exact vs approx
   loads of the same file never collide in the result cache (the cache key
   carries the approx field — the probe below would serve the wrong bits
   at any shared k if it didn't). *)
let test_approx_load_end_to_end () =
  let path = write_csv ~name:"apx" ~n:200 ~d:3 ~seed:41 in
  let eps = 0.2 in
  let points = (Dataset.normalize (Csv_io.load path)).Dataset.points in
  let p = Kregret_approx.Pipeline.run ~eps points in
  let dir = direct_of_csv path in
  let len_apx = Kregret_approx.Pipeline.stored_length p in
  let len_exact = Stored_list.length dir.dir_stored in
  with_server ~cache_capacity:64 (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          ignore (or_fail "load exact" (Client.load c ~name:"exact" ~path));
          ignore
            (or_fail "load approx" (Client.load ~approx:eps c ~name:"apx" ~path));
          or_fail "wait exact" (Client.wait_ready c ~name:"exact");
          or_fail "wait approx" (Client.wait_ready c ~name:"apx");
          (* cold pass: each name answers its own offline pipeline *)
          for k = 1 to min len_apx len_exact do
            let sel_a, mrr_a = or_fail "approx query" (Client.query c ~name:"apx" ~k) in
            let ref_a, ref_a_mrr = Kregret_approx.Pipeline.query p ~k in
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d served approx selection == offline pipeline" k)
              ref_a sel_a;
            Alcotest.check exact_float
              (Printf.sprintf "k=%d served approx mrr bit-identical" k)
              ref_a_mrr mrr_a;
            let sel_e, mrr_e = or_fail "exact query" (Client.query c ~name:"exact" ~k) in
            let ref_e, ref_e_mrr = direct_answer dir ~k in
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d served exact selection == StoredList" k)
              ref_e sel_e;
            Alcotest.check exact_float
              (Printf.sprintf "k=%d served exact mrr bit-identical" k)
              ref_e_mrr mrr_e
          done;
          (* warm pass (every k now cached): still each name's own answer —
             this is the collision probe, both entries share the file
             fingerprint and differ only in the approx key component *)
          for k = 1 to min len_apx len_exact do
            let j = or_fail "cached approx" (Client.query_json c ~name:"apx" ~k) in
            Alcotest.(check (option bool))
              (Printf.sprintf "k=%d approx answered from cache" k)
              (Some true)
              (Option.bind (Json.member "cached" j) Json.to_bool);
            let sel_a, mrr_a = or_fail "approx requery" (Client.query c ~name:"apx" ~k) in
            let ref_a, ref_a_mrr = Kregret_approx.Pipeline.query p ~k in
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d cached approx selection uncollided" k)
              ref_a sel_a;
            Alcotest.check exact_float
              (Printf.sprintf "k=%d cached approx mrr uncollided" k)
              ref_a_mrr mrr_a;
            let sel_e, mrr_e = or_fail "exact requery" (Client.query c ~name:"exact" ~k) in
            let ref_e, ref_e_mrr = direct_answer dir ~k in
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d cached exact selection uncollided" k)
              ref_e sel_e;
            Alcotest.check exact_float
              (Printf.sprintf "k=%d cached exact mrr uncollided" k)
              ref_e_mrr mrr_e
          done;
          (* an approximate dataset is static *)
          (match Client.insert c ~name:"apx" ~point:[| 0.9; 0.8; 0.7 |] with
          | Ok _ -> Alcotest.fail "insert into an approx dataset must fail"
          | Error m ->
              Alcotest.(check bool)
                (Printf.sprintf "static_dataset on insert (got %s)" m)
                true
                (Testutil.contains m "static_dataset"));
          (* while the exact twin stays dynamic *)
          ignore
            (or_fail "insert into exact twin"
               (Client.insert c ~name:"exact" ~point:[| 0.9; 0.8; 0.7 |]));
          (* list reports the approx field on both entries *)
          let j = or_fail "list" (Client.list_datasets c) in
          let ds =
            Option.bind (Json.member "datasets" j) Json.to_list
            |> Option.value ~default:[]
          in
          let approx_of name =
            List.find_opt
              (fun d -> Option.bind (Json.member "name" d) Json.to_str = Some name)
              ds
            |> Fun.flip Option.bind (Json.member "approx")
            |> Fun.flip Option.bind Json.to_float
          in
          Alcotest.(check (option (float 0.))) "exact approx field" (Some 0.)
            (approx_of "exact");
          Alcotest.(check (option (float 0.))) "approx approx field" (Some eps)
            (approx_of "apx")))

let suite =
  [
    Alcotest.test_case "e2e: selections bit-identical for all k (cold, cached, \
                        mrr verb, fresh GeoGreedy)" `Slow
      test_bit_identical_all_k;
    Alcotest.test_case "e2e: concurrent clients, coalesced + cached" `Slow
      test_concurrent_clients;
    Alcotest.test_case "protocol: malformed frames get structured errors" `Quick
      test_malformed_frames;
    Alcotest.test_case "protocol: oversized frame closes only that connection"
      `Quick test_oversized_frame;
    Alcotest.test_case "protocol: truncated connections don't kill the server"
      `Quick test_truncated_connection;
    Alcotest.test_case "lifecycle: list/stats/evict over the wire" `Quick
      test_list_stats_evict;
    Alcotest.test_case "lifecycle: query races the background build" `Quick
      test_query_races_build;
    Alcotest.test_case "staleness: rewritten CSV is rejected, reload recovers"
      `Quick test_stale_dataset_rejected;
    Alcotest.test_case "lifecycle: load failures are structured" `Quick
      test_load_failures;
    Alcotest.test_case "dynamic: insert/delete/flush verbs end to end" `Slow
      test_update_verbs_end_to_end;
    Alcotest.test_case "registry: concurrent loads of one file are idempotent"
      `Quick test_concurrent_load_idempotent;
    Alcotest.test_case "registry: failed builds are retried on re-load" `Quick
      test_failed_build_reload_retries;
    Alcotest.test_case "poller: 10k-connection churn keeps live state bounded"
      `Slow test_connection_churn;
    Alcotest.test_case "transports: UDS and TCP sessions are byte-identical"
      `Quick test_transports_byte_identical;
    Alcotest.test_case "shards: wire answers match solo load bit-for-bit, \
                        updates rejected" `Slow test_shard_vs_monolithic_wire;
    Alcotest.test_case "shards: merge exact across shard counts and pool \
                        widths" `Slow test_shard_merge_across_jobs;
    Alcotest.test_case "poller: shutdown under load cannot hang" `Quick
      test_shutdown_under_load;
    Alcotest.test_case "approx: served kernels bit-identical to offline, no \
                        exact/approx cache collisions" `Slow
      test_approx_load_end_to_end;
  ]
