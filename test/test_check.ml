(* The fuzzing subsystem itself: deterministic instance streams, a clean
   in-process smoke campaign, shrinker minimality on a synthetic bug, and
   corpus round-tripping. (The end-to-end "seed a real bug, get a repro"
   drill lives in the corpus: test_corpus.ml replays repros minted against
   a deliberately broken Dd dedup.) *)

open Testutil
module Rng = Kregret_dataset.Rng
module Instance = Kregret_check.Instance
module Oracle = Kregret_check.Oracle
module Shrink = Kregret_check.Shrink
module Corpus = Kregret_check.Corpus
module Fuzzer = Kregret_check.Fuzzer
module Tolerance = Kregret_check.Tolerance

let stream ~seed count =
  let master = Rng.create seed in
  List.init count (fun id -> Instance.generate ~seed ~id master)

let test_stream_deterministic () =
  let a = stream ~seed:42 40 and b = stream ~seed:42 40 in
  List.iter2
    (fun x y ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d identical" x.Instance.id)
        true
        (x.Instance.points = y.Instance.points
        && x.Instance.k = y.Instance.k
        && x.Instance.dist = y.Instance.dist
        && x.Instance.degeneracies = y.Instance.degeneracies))
    a b;
  let c = stream ~seed:43 40 in
  Alcotest.(check bool) "different seed, different stream" true
    (List.exists2 (fun x y -> x.Instance.points <> y.Instance.points) a c)

let test_stream_covers_spec () =
  (* the generator must actually exercise the advertised envelope *)
  let insts = stream ~seed:7 300 in
  let dims = List.sort_uniq compare (List.map Instance.d insts) in
  Alcotest.(check (list int)) "dims 2..7 all drawn" [ 2; 3; 4; 5; 6; 7 ] dims;
  Alcotest.(check bool) "singleton instances drawn" true
    (List.exists (fun i -> Instance.n i = 1) insts);
  Alcotest.(check bool) "large instances drawn" true
    (List.exists (fun i -> Instance.n i > 200) insts);
  Alcotest.(check bool) "k beyond n drawn (clamping paths)" true
    (List.exists (fun i -> i.Instance.k > Instance.n i) insts);
  Alcotest.(check bool) "degenerate instances drawn" true
    (List.exists (fun i -> i.Instance.degeneracies <> []) insts);
  (* every instance is normalized: coordinates in (0,1], every dimension
     touching 1 *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d normalized" i.Instance.id)
        true
        (Kregret_dataset.Dataset.is_normalized ~eps:1e-9
           (Instance.to_dataset i)))
    insts

let test_smoke_campaign_clean () =
  (* a small in-process campaign on the real oracle must find nothing *)
  let summary =
    Fuzzer.run
      {
        Fuzzer.default with
        Fuzzer.instances = 40;
        seed = 20140331;
        oracle = { Oracle.samples = 192; jobs_hi = 2; suite = Oracle.All };
      }
  in
  Alcotest.(check int) "ran all instances" 40 summary.Fuzzer.ran;
  (match summary.Fuzzer.failed with
  | [] -> ()
  | r :: _ ->
      Alcotest.failf "campaign found a failure on %s: %s"
        (Instance.describe r.Fuzzer.shrunk)
        (String.concat "; "
           (List.map (fun f -> f.Oracle.message) r.Fuzzer.failures)));
  (* campaigns are replayable: same config, same outcome *)
  let again =
    Fuzzer.run
      {
        Fuzzer.default with
        Fuzzer.instances = 40;
        seed = 20140331;
        oracle = { Oracle.samples = 192; jobs_hi = 2; suite = Oracle.All };
      }
  in
  Alcotest.(check int) "replayed" 40 again.Fuzzer.ran

(* ---- shrinker ------------------------------------------------------------- *)

let test_shrink_minimizes_synthetic_bug () =
  (* synthetic bug: "fails whenever >= 3 points have first coordinate
     > 0.55" — the shrinker should cut a 60-point 5-d instance down to
     (close to) the 3 witnesses, d = 2, k = 1 *)
  let master = Rng.create 99 in
  let inst = ref (Instance.generate ~seed:99 ~id:0 master) in
  while
    Instance.n !inst < 40
    || Array.length
         (Array.of_list
            (List.filter
               (fun p -> p.(0) > 0.55)
               (Array.to_list !inst.Instance.points)))
       < 3
  do
    inst := Instance.generate ~seed:99 ~id:(!inst.Instance.id + 1) master
  done;
  let fails i =
    Array.fold_left
      (fun acc p -> if p.(0) > 0.55 then acc + 1 else acc)
      0 i.Instance.points
    >= 3
  in
  Alcotest.(check bool) "starting instance fails" true (fails !inst);
  let r = Shrink.shrink ~fails !inst in
  Alcotest.(check bool) "shrunk instance still fails" true
    (fails r.Shrink.instance);
  Alcotest.(check bool)
    (Printf.sprintf "minimized to %d points (<= 4)" (Instance.n r.Shrink.instance))
    true
    (Instance.n r.Shrink.instance <= 4);
  Alcotest.(check int) "dimensions projected away" 2 (Instance.d r.Shrink.instance);
  Alcotest.(check int) "k reduced to 1" 1 r.Shrink.instance.Instance.k;
  Alcotest.(check bool) "budget respected" true (r.Shrink.attempts <= 400)

let test_shrink_passing_instance_unchanged () =
  let master = Rng.create 5 in
  let inst = Instance.generate ~seed:5 ~id:0 master in
  let r = Shrink.shrink ~fails:(fun _ -> false) inst in
  Alcotest.(check int) "no steps" 0 r.Shrink.steps;
  Alcotest.(check bool) "instance returned as-is" true
    (r.Shrink.instance.Instance.points == inst.Instance.points)

let test_shrink_deterministic () =
  let master = Rng.create 123 in
  let inst = ref (Instance.generate ~seed:123 ~id:0 master) in
  while Instance.n !inst < 30 do
    inst := Instance.generate ~seed:123 ~id:(!inst.Instance.id + 1) master
  done;
  let fails i = Instance.n i >= 2 && Instance.d i >= 2 in
  let a = Shrink.shrink ~fails !inst and b = Shrink.shrink ~fails !inst in
  Alcotest.(check bool) "same minimum" true
    (a.Shrink.instance.Instance.points = b.Shrink.instance.Instance.points);
  Alcotest.(check int) "same steps" a.Shrink.steps b.Shrink.steps

(* ---- corpus --------------------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kregret-corpus-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_round_trip () =
  with_temp_dir @@ fun dir ->
  let master = Rng.create 77 in
  let inst = Instance.generate ~seed:77 ~id:3 master in
  let failures =
    [
      { Oracle.check = "geo-vs-greedy-mrr"; message = "mrr \"drift\" Δ=0.1" };
      { Oracle.check = "sampled-bound"; message = "line1\nline2" };
    ]
  in
  let base = Corpus.save ~dir ~instance:inst ~failures ~shrink_steps:7 in
  Alcotest.(check (list string)) "listed" [ base ] (Corpus.list ~dir);
  let loaded = Corpus.load ~dir base in
  Alcotest.(check bool) "points bit-identical" true
    (loaded.Instance.points = inst.Instance.points);
  Alcotest.(check int) "k preserved" inst.Instance.k loaded.Instance.k;
  Alcotest.(check int) "id preserved" inst.Instance.id loaded.Instance.id;
  Alcotest.(check int) "seed preserved" inst.Instance.seed loaded.Instance.seed;
  Alcotest.(check string) "dist preserved" inst.Instance.dist loaded.Instance.dist;
  Alcotest.(check (list string))
    "degeneracies preserved" inst.Instance.degeneracies
    loaded.Instance.degeneracies;
  Alcotest.(check (list string))
    "violated checks recorded (sorted, deduped)"
    [ "geo-vs-greedy-mrr"; "sampled-bound" ]
    (Corpus.failing_checks ~dir base)

let test_corpus_missing_dir () =
  Alcotest.(check (list string)) "missing dir lists nothing" []
    (Corpus.list ~dir:"/nonexistent/kregret-corpus")

let test_corpus_rejects_malformed () =
  with_temp_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  write "bad.csv" "# name=bad dim=2 n=1\n0.5,1\n";
  write "bad.json" "{ \"version\": 1 }\n";
  let rejected =
    try
      ignore (Corpus.load ~dir "bad");
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "missing k rejected" true rejected

(* ---- oracle ---------------------------------------------------------------- *)

let test_oracle_catches_exceptions () =
  (* a malformed instance (k < 1 smuggled around with_k) must surface as an
     "exception" failure, not escape *)
  let master = Rng.create 11 in
  let inst = Instance.generate ~seed:11 ~id:0 master in
  let broken = { inst with Instance.k = -3 } in
  match Oracle.check broken with
  | [ { Oracle.check = "exception"; _ } ] -> ()
  | other ->
      Alcotest.failf "expected one exception failure, got %d: %s"
        (List.length other)
        (String.concat "; " (List.map (fun f -> f.Oracle.check) other))

(* ---- protocol-frame shrinker ---------------------------------------------- *)

let test_frame_shrinker_minimizes () =
  (* synthetic predicate: frame still contains the magic token *)
  let fails s = Testutil.contains s "xyz" in
  let noisy =
    "{\"op\":\"query\",\"name\":\"aaaaaaaaaaaaaaaaaaaaaaaaaaxyzbbbbbbbbbbbbbb\
     bbbb\",\"k\":3}"
  in
  let shrunk = Shrink.frame ~fails noisy in
  Alcotest.(check string) "1-minimal witness" "xyz" shrunk;
  Alcotest.(check string) "deterministic"
    shrunk (Shrink.frame ~fails noisy)

let test_frame_shrinker_leaves_passing () =
  let s = "{\"op\":\"ping\"}" in
  Alcotest.(check string) "passing frame unchanged" s
    (Shrink.frame ~fails:(fun _ -> false) s)

let test_frame_shrinker_real_parser () =
  (* minimize a noisy malformed frame against the real serve parser while
     it keeps reporting parse_error *)
  let module P = Kregret_serve.Protocol in
  let fails s =
    match P.parse_request s with
    | Error e -> e.P.code = "parse_error"
    | Ok _ -> false
  in
  let noisy =
    "{\"op\":\"query\",\"name\":\"demo\",\"k\":3,\"pad\":\"000000000000000000\
     0000000000\",\"oops\":"
  in
  Alcotest.(check bool) "noisy frame is malformed" true (fails noisy);
  let shrunk = Shrink.frame ~fails noisy in
  Alcotest.(check bool) "shrunk frame still malformed" true (fails shrunk);
  Alcotest.(check bool)
    (Printf.sprintf "strictly smaller (%S)" shrunk)
    true
    (String.length shrunk < String.length noisy);
  (* ddmin with unit chunks leaves no deletable byte *)
  Alcotest.(check bool) "1-minimal against the parser" true
    (let n = String.length shrunk in
     let deletable = ref false in
     for i = 0 to n - 1 do
       let cand = String.sub shrunk 0 i ^ String.sub shrunk (i + 1) (n - i - 1) in
       if fails cand then deletable := true
     done;
     not !deletable)

(* ---- update-trace shrinker ------------------------------------------------- *)

let test_trace_shrinker_minimizes () =
  (* synthetic predicate: the trace still holds both magic ops, in order *)
  let fails ops =
    let rec go want = function
      | [] -> want = []
      | x :: rest -> (
          match want with
          | w :: ws when x = w -> go ws rest
          | _ -> go want rest)
    in
    go [ 13; 37 ] ops
  in
  let noisy = List.init 40 (fun i -> i) in
  Alcotest.(check bool) "noisy trace fails" true (fails noisy);
  let shrunk = Shrink.trace ~fails noisy in
  Alcotest.(check (list int)) "1-minimal trace" [ 13; 37 ] shrunk;
  Alcotest.(check (list int)) "deterministic" shrunk (Shrink.trace ~fails noisy)

let test_trace_shrinker_leaves_passing () =
  let ops = [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "passing trace unchanged" ops
    (Shrink.trace ~fails:(fun _ -> false) ops)

let test_tolerance_constants () =
  check_float ~eps:0. "tie is the DESIGN.md §8 agreement tolerance" 1e-6
    Tolerance.tie;
  check_float ~eps:0. "geom is the DESIGN.md §8 geometric slack" 1e-9
    Tolerance.geom;
  Alcotest.(check bool) "approx_eq within tie" true
    (Tolerance.approx_eq 0.5 (0.5 +. (0.5 *. Tolerance.tie)));
  Alcotest.(check bool) "approx_eq beyond tie" false
    (Tolerance.approx_eq 0.5 (0.5 +. (3. *. Tolerance.tie)));
  Alcotest.(check bool) "leq allows tie slack" true
    (Tolerance.leq (0.5 +. (0.5 *. Tolerance.tie)) 0.5)

let suite =
  [
    Alcotest.test_case "instance stream is deterministic" `Quick
      test_stream_deterministic;
    Alcotest.test_case "instance stream covers the spec envelope" `Quick
      test_stream_covers_spec;
    Alcotest.test_case "smoke campaign finds nothing on correct code" `Slow
      test_smoke_campaign_clean;
    Alcotest.test_case "shrinker minimizes a synthetic bug" `Quick
      test_shrink_minimizes_synthetic_bug;
    Alcotest.test_case "shrinker leaves passing instances alone" `Quick
      test_shrink_passing_instance_unchanged;
    Alcotest.test_case "shrinker is deterministic" `Quick
      test_shrink_deterministic;
    Alcotest.test_case "corpus round-trips instances" `Quick
      test_corpus_round_trip;
    Alcotest.test_case "corpus tolerates a missing directory" `Quick
      test_corpus_missing_dir;
    Alcotest.test_case "corpus rejects malformed metadata" `Quick
      test_corpus_rejects_malformed;
    Alcotest.test_case "oracle captures component exceptions" `Quick
      test_oracle_catches_exceptions;
    Alcotest.test_case "frame shrinker minimizes to the witness" `Quick
      test_frame_shrinker_minimizes;
    Alcotest.test_case "frame shrinker leaves passing frames alone" `Quick
      test_frame_shrinker_leaves_passing;
    Alcotest.test_case "frame shrinker vs the real serve parser" `Quick
      test_frame_shrinker_real_parser;
    Alcotest.test_case "trace shrinker minimizes op lists" `Quick
      test_trace_shrinker_minimizes;
    Alcotest.test_case "trace shrinker leaves passing traces alone" `Quick
      test_trace_shrinker_leaves_passing;
    Alcotest.test_case "tolerance constants pinned" `Quick
      test_tolerance_constants;
  ]
