open Testutil
module Dataset = Kregret_dataset.Dataset
module Stats = Kregret_dataset.Stats
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Validation = Kregret.Validation

(* --- Stats ----------------------------------------------------------------- *)

let test_known_moments () =
  let ds =
    Dataset.create ~name:"known" [| [| 1.; 2. |]; [| 3.; 6. |]; [| 2.; 4. |] |]
  in
  Alcotest.check vector "means" [| 2.; 4. |] (Stats.means ds);
  Alcotest.check vector "minima" [| 1.; 2. |] (Stats.minima ds);
  Alcotest.check vector "maxima" [| 3.; 6. |] (Stats.maxima ds);
  let sd = Stats.stddevs ds in
  check_float "std dim0" (sqrt (2. /. 3.)) sd.(0);
  (* dim1 = 2 * dim0 exactly: perfect correlation *)
  let c = Stats.correlation ds in
  check_float "perfect correlation" 1. c.(0).(1);
  check_float "diagonal" 1. c.(0).(0);
  check_float "mean pairwise" 1. (Stats.mean_pairwise_correlation ds)

let test_anticorrelated_pair () =
  let ds =
    Dataset.create ~name:"anti" [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.5; 0.5 |] |]
  in
  let c = Stats.correlation ds in
  check_float "perfect anti-correlation" (-1.) c.(0).(1)

let test_zero_variance_dim () =
  let ds = Dataset.create ~name:"flat" [| [| 1.; 0.3 |]; [| 1.; 0.9 |] |] in
  let c = Stats.correlation ds in
  check_float "flat dim self-correlation" 1. c.(0).(0);
  check_float "flat dim cross-correlation" 0. c.(0).(1)

let test_generator_correlation_signs () =
  let n = 4000 and d = 4 in
  let corr =
    Stats.mean_pairwise_correlation (Generator.correlated (Rng.create 1) ~n ~d)
  in
  let anti =
    Stats.mean_pairwise_correlation
      (Generator.anti_correlated (Rng.create 1) ~n ~d)
  in
  let indep =
    Stats.mean_pairwise_correlation (Generator.independent (Rng.create 1) ~n ~d)
  in
  Alcotest.(check bool)
    (Printf.sprintf "correlated %+.3f > 0.3" corr)
    true (corr > 0.3);
  Alcotest.(check bool)
    (Printf.sprintf "anti-correlated %+.3f < -0.05" anti)
    true (anti < -0.05);
  Alcotest.(check bool)
    (Printf.sprintf "independent |%+.3f| small" indep)
    true
    (abs_float indep < 0.1)

let test_nba_positive_correlation () =
  let ds = Generator.nba_like (Rng.create 2) ~n:4000 in
  Alcotest.(check bool) "nba stats positively correlated" true
    (Stats.mean_pairwise_correlation ds > 0.1)

(* --- Validation -------------------------------------------------------------- *)

let test_validation_passes () =
  let ds = Generator.anti_correlated (Rng.create 3) ~n:400 ~d:3 in
  let r = Validation.run ~samples:2000 ds ~k:6 in
  Alcotest.(check bool)
    (String.concat "; " r.Validation.failures)
    true r.Validation.ok;
  Alcotest.(check bool) "candidates <= skyline" true
    (r.Validation.candidates <= r.Validation.skyline);
  check_float ~eps:1e-9 "geo = stored" r.Validation.geo_mrr r.Validation.stored_mrr

let test_validation_all_dists () =
  List.iter
    (fun name ->
      let ds = Kregret_dataset.Generator.by_name name (Rng.create 5) ~n:800 ~d:4 in
      let r = Validation.run ~samples:500 ds ~k:5 in
      Alcotest.(check bool)
        (name ^ ": " ^ String.concat "; " r.Validation.failures)
        true r.Validation.ok)
    [ "independent"; "correlated"; "anti_correlated"; "nba"; "stocks" ]

let suite =
  [
    Alcotest.test_case "known moments" `Quick test_known_moments;
    Alcotest.test_case "anti-correlated pair" `Quick test_anticorrelated_pair;
    Alcotest.test_case "zero-variance dimension" `Quick test_zero_variance_dim;
    Alcotest.test_case "generator correlation signs" `Quick test_generator_correlation_signs;
    Alcotest.test_case "nba-like positively correlated" `Quick test_nba_positive_correlation;
    Alcotest.test_case "validation: passes" `Quick test_validation_passes;
    Alcotest.test_case "validation: all distributions" `Quick test_validation_all_dists;
    qcheck_case ~count:50 "correlation matrix is symmetric with unit diagonal"
      (qc_points ~n:20 ~d:4)
      (fun pts ->
        QCheck.assume (List.length pts >= 3);
        let ds = Dataset.create ~name:"qc" (Array.of_list pts) in
        let c = Stats.correlation ds in
        let ok = ref true in
        for i = 0 to 3 do
          if abs_float (c.(i).(i) -. 1.) > 1e-9 then ok := false;
          for j = 0 to 3 do
            if abs_float (c.(i).(j) -. c.(j).(i)) > 1e-9 then ok := false;
            if c.(i).(j) > 1. +. 1e-9 || c.(i).(j) < -1. -. 1e-9 then ok := false
          done
        done;
        !ok);
  ]
