open Testutil
module Vector = Kregret_geom.Vector
module Dd = Kregret_hull.Dd
module Dual_polytope = Kregret_hull.Dual_polytope
module Chain2d = Kregret_hull.Chain2d
module Extreme = Kregret_hull.Extreme
module Regret_lp = Kregret_lp.Regret_lp

(* --- Dd ------------------------------------------------------------- *)

let test_box_vertices () =
  let t = Dd.create ~bound:1. ~dim:3 () in
  Alcotest.(check int) "2^3 corners" 8 (Dd.num_vertices t);
  Dd.check_invariants t

let test_single_cut () =
  (* cut the unit square with x + y <= 1.5: corner (1,1) dies, vertices
     (1, 0.5) and (0.5, 1) appear, total 4 *)
  let t = Dd.create ~bound:1. ~dim:2 () in
  let ev = Dd.add_constraint t ~normal:[| 1.; 1. |] ~offset:1.5 in
  Alcotest.(check int) "one removed" 1 (List.length ev.Dd.removed);
  Alcotest.(check int) "two created" 2 (List.length ev.Dd.created);
  Alcotest.(check int) "pentagon" 5 (Dd.num_vertices t);
  Alcotest.(check bool) "not redundant" false ev.Dd.redundant;
  Dd.check_invariants t

let test_redundant_constraint () =
  let t = Dd.create ~bound:1. ~dim:2 () in
  let ev = Dd.add_constraint t ~normal:[| 1.; 1. |] ~offset:5. in
  Alcotest.(check bool) "redundant" true ev.Dd.redundant;
  Alcotest.(check int) "unchanged" 4 (Dd.num_vertices t)

let test_duplicate_constraint () =
  let t = Dd.create ~bound:1. ~dim:2 () in
  ignore (Dd.add_constraint t ~normal:[| 1.; 1. |] ~offset:1.);
  let ev = Dd.add_constraint t ~normal:[| 1.; 1. |] ~offset:1. in
  Alcotest.(check bool) "second copy is redundant" true ev.Dd.redundant;
  Dd.check_invariants t

let test_simplex_polytope () =
  (* intersecting the unit box with x+y+z <= 0.5 leaves the simplex corner
     structure: vertices (0,0,0), (0.5,0,0), (0,0.5,0), (0,0,0.5) *)
  let t = Dd.create ~bound:1. ~dim:3 () in
  ignore (Dd.add_constraint t ~normal:[| 2.; 2.; 2. |] ~offset:1.);
  Alcotest.(check int) "4 vertices" 4 (Dd.num_vertices t);
  Dd.check_invariants t;
  let _, m = Dd.max_dot t [| 1.; 1.; 1. |] in
  check_float "support in diagonal direction" 0.5 m

let test_degenerate_vertex () =
  (* three constraints through the same vertex of the square (degeneracy):
     x <= 1 handled by box; add x + y <= 1 and x + 2y <= 1 and 2x + y <= 1:
     all pass through no common... use constraints all tight at (0.5, 0.5):
     x + y <= 1, 0.5x + 1.5y <= 1, 1.5x + 0.5y <= 1. *)
  let t = Dd.create ~bound:1. ~dim:2 () in
  ignore (Dd.add_constraint t ~normal:[| 1.; 1. |] ~offset:1.);
  ignore (Dd.add_constraint t ~normal:[| 0.5; 1.5 |] ~offset:1.);
  ignore (Dd.add_constraint t ~normal:[| 1.5; 0.5 |] ~offset:1.);
  Dd.check_invariants t;
  (* (0.5,0.5) must be a vertex with >= 3 tight constraints *)
  let v =
    List.find_opt
      (fun v -> Vector.equal ~eps:1e-7 v.Dd.w [| 0.5; 0.5 |])
      (Dd.vertices t)
  in
  match v with
  | None -> Alcotest.fail "expected vertex (0.5, 0.5)"
  | Some v ->
      Alcotest.(check bool) "degenerate tightness" true
        (Array.length v.Dd.tight >= 3)

let test_invariants_random_3d () =
  let st = test_rng 42 in
  let t = Dd.create ~bound:2. ~dim:3 () in
  List.iter
    (fun p -> ignore (Dd.add_constraint t ~normal:p ~offset:1.))
    (random_points st ~n:25 ~d:3);
  Dd.check_invariants t

let test_max_dot_decreases () =
  (* adding constraints can only shrink the support function *)
  let st = test_rng 7 in
  let t = Dd.create ~bound:2. ~dim:4 () in
  let q = random_point st 4 in
  let prev = ref infinity in
  List.iter
    (fun p ->
      ignore (Dd.add_constraint t ~normal:p ~offset:1.);
      let _, m = Dd.max_dot t q in
      Alcotest.(check bool) "monotone" true (m <= !prev +. 1e-9);
      prev := m)
    (random_points st ~n:15 ~d:4)

(* --- Dual_polytope vs LP oracle -------------------------------------- *)

(* Make a dataset normalized per dimension (some point hits 1 on each dim) by
   planting the basis-scaled boundary points. *)
let with_boundary st ~n ~d =
  let boundary =
    List.init d (fun i ->
        Array.init d (fun j -> if i = j then 1.0 else 0.2 +. Random.State.float st 0.5))
  in
  boundary @ random_points st ~n ~d

let test_cr_matches_lp_many () =
  let st = test_rng 123 in
  for _trial = 1 to 10 do
    let d = 2 + Random.State.int st 4 in
    let selected = with_boundary st ~n:6 ~d in
    let q = random_point st d in
    let dp = Dual_polytope.create ~dim:d () in
    List.iter (fun p -> ignore (Dual_polytope.insert dp p)) selected;
    let geometric = Dual_polytope.critical_ratio dp q in
    let lp, _ = Regret_lp.critical_ratio ~selected q in
    check_float ~eps:1e-6
      (Printf.sprintf "cr agreement (d=%d)" d)
      lp geometric
  done

let test_mrr_matches_lp () =
  let st = test_rng 321 in
  for _trial = 1 to 5 do
    let d = 3 in
    let selected = with_boundary st ~n:5 ~d in
    let data = selected @ random_points st ~n:20 ~d in
    let dp = Dual_polytope.create ~dim:d () in
    List.iter (fun p -> ignore (Dual_polytope.insert dp p)) selected;
    let geometric = Dual_polytope.max_regret_ratio dp ~data in
    let lp = Regret_lp.max_regret_ratio ~data ~selected () in
    check_float ~eps:1e-6 "mrr agreement" lp geometric
  done

let test_champion_survives_rule () =
  (* if a champion vertex survives an insertion it must stay the champion *)
  let st = test_rng 99 in
  let d = 3 in
  let dp = Dual_polytope.create ~dim:d () in
  List.iter
    (fun p -> ignore (Dual_polytope.insert dp p))
    (with_boundary st ~n:4 ~d);
  let q = random_point st d in
  let v, m = Dual_polytope.champion dp q in
  let ev = Dual_polytope.insert dp (random_point st d) in
  if not (List.mem v.Dd.id ev.Dd.removed) then begin
    let v', m' = Dual_polytope.champion dp q in
    check_float "same champion value" m m';
    Alcotest.(check bool) "same or equal champion" true
      (v'.Dd.id = v.Dd.id || abs_float (m -. m') < 1e-9)
  end

(* --- Chain2d ---------------------------------------------------------- *)

let test_chain_simple () =
  let pts = [ [| 1.; 0.2 |]; [| 0.2; 1. |]; [| 0.3; 0.3 |]; [| 0.9; 0.85 |] ] in
  let { Chain2d.chain } = Chain2d.upper_chain pts in
  (* extreme: (1,0.2), (0.9,0.85), (0.2,1); interior: (0.3,0.3) *)
  Alcotest.(check int) "three extreme" 3 (Array.length chain);
  Alcotest.check vector "max-x first" [| 1.; 0.2 |] chain.(0);
  Alcotest.check vector "max-y last" [| 0.2; 1. |] chain.(2)

let test_chain_collinear () =
  let pts = [ [| 1.; 0.2 |]; [| 0.6; 0.6 |]; [| 0.2; 1. |] ] in
  (* (0.6, 0.6) is on the segment: not extreme *)
  let { Chain2d.chain } = Chain2d.upper_chain pts in
  Alcotest.(check int) "collinear dropped" 2 (Array.length chain)

let test_chain_single () =
  let { Chain2d.chain } = Chain2d.upper_chain [ [| 0.4; 0.7 |] ] in
  Alcotest.(check int) "singleton" 1 (Array.length chain);
  let h = Chain2d.upper_chain [ [| 0.4; 0.7 |] ] in
  check_float "cr of the point itself" 1. (Chain2d.critical_ratio h [| 0.4; 0.7 |]);
  check_float "cr along x" (0.4 /. 0.8) (Chain2d.critical_ratio h [| 0.8; 0.1 |])

let test_chain_cr_known () =
  let pts = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let h = Chain2d.upper_chain pts in
  check_float "diagonal" 0.6 (Chain2d.critical_ratio h [| 1.; 1. |]);
  check_float "selected point" 1. (Chain2d.critical_ratio h [| 1.; 0.2 |])

let test_extreme_lp_triangle () =
  let a = [| 1.; 0.1 |] and b = [| 0.1; 1. |] and c = [| 0.9; 0.9 |] in
  let mid = [| 0.5; 0.5 |] in
  let ext = Extreme.extreme_points [ a; b; c; mid ] in
  Alcotest.(check int) "three extreme" 3 (List.length ext);
  Alcotest.(check bool) "mid excluded" true (not (List.memq mid ext))

let suite =
  [
    Alcotest.test_case "dd: box init" `Quick test_box_vertices;
    Alcotest.test_case "dd: single cut" `Quick test_single_cut;
    Alcotest.test_case "dd: redundant constraint" `Quick test_redundant_constraint;
    Alcotest.test_case "dd: duplicate constraint" `Quick test_duplicate_constraint;
    Alcotest.test_case "dd: simplex" `Quick test_simplex_polytope;
    Alcotest.test_case "dd: degenerate vertex" `Quick test_degenerate_vertex;
    Alcotest.test_case "dd: invariants under random cuts" `Quick test_invariants_random_3d;
    Alcotest.test_case "dd: support function monotone" `Quick test_max_dot_decreases;
    Alcotest.test_case "dual: cr matches LP (random)" `Quick test_cr_matches_lp_many;
    Alcotest.test_case "dual: mrr matches LP (random)" `Quick test_mrr_matches_lp;
    Alcotest.test_case "dual: champion survival" `Quick test_champion_survives_rule;
    Alcotest.test_case "chain2d: simple hull" `Quick test_chain_simple;
    Alcotest.test_case "chain2d: collinear" `Quick test_chain_collinear;
    Alcotest.test_case "chain2d: single point" `Quick test_chain_single;
    Alcotest.test_case "chain2d: known cr" `Quick test_chain_cr_known;
    Alcotest.test_case "extreme: triangle" `Quick test_extreme_lp_triangle;
    qcheck_case ~count:60 "2-D: dual cr = chain cr = LP cr"
      QCheck.(pair (qc_points ~n:8 ~d:2) (qc_point 2))
      (fun (points, q) ->
        (* plant boundary points so Q is bounded by real constraints *)
        let selected = [| 1.; 0.3 |] :: [| 0.3; 1. |] :: points in
        let dp = Dual_polytope.create ~dim:2 () in
        List.iter (fun p -> ignore (Dual_polytope.insert dp p)) selected;
        let a = Dual_polytope.critical_ratio dp q in
        let b = Chain2d.critical_ratio (Chain2d.upper_chain selected) q in
        let c, _ = Regret_lp.critical_ratio ~selected q in
        abs_float (a -. b) < 1e-6 && abs_float (b -. c) < 1e-6);
    qcheck_case ~count:30 "3-D: dual mrr = LP mrr"
      (qc_points ~n:10 ~d:3)
      (fun points ->
        let selected =
          [| 1.; 0.3; 0.3 |] :: [| 0.3; 1.; 0.3 |] :: [| 0.3; 0.3; 1. |]
          :: points
        in
        let dp = Dual_polytope.create ~dim:3 () in
        List.iter (fun p -> ignore (Dual_polytope.insert dp p)) selected;
        let a = Dual_polytope.max_regret_ratio dp ~data:selected in
        (* every selected point is covered: mrr over the selection itself = 0 *)
        abs_float a < 1e-6);
  ]
