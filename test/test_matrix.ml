open Testutil
module Matrix = Kregret_geom.Matrix
module Vector = Kregret_geom.Vector

let test_identity_solve () =
  match Matrix.solve (Matrix.identity 3) [| 1.; 2.; 3. |] with
  | None -> Alcotest.fail "identity should be regular"
  | Some x -> Alcotest.check vector "x = b" [| 1.; 2.; 3. |] x

let test_known_system () =
  (* 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1 *)
  let a = [| [| 2.; 1. |]; [| 1.; -1. |] |] in
  match Matrix.solve a [| 5.; 1. |] with
  | None -> Alcotest.fail "regular system"
  | Some x -> Alcotest.check vector "solution" [| 2.; 1. |] x

let test_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.(check bool) "singular" true (Matrix.solve a [| 1.; 2. |] = None)

let test_rank () =
  Alcotest.(check int) "full" 3 (Matrix.rank (Matrix.identity 3));
  Alcotest.(check int) "deficient" 1 (Matrix.rank [| [| 1.; 2. |]; [| 2.; 4. |] |]);
  Alcotest.(check int) "zero rows" 0 (Matrix.rank [||]);
  Alcotest.(check int) "rectangular" 2
    (Matrix.rank [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |] |])

let test_determinant () =
  check_float "identity" 1. (Matrix.determinant (Matrix.identity 4));
  check_float "known 2x2" (-2.) (Matrix.determinant [| [| 1.; 2. |]; [| 3.; 4. |] |]);
  check_float "singular" 0. (Matrix.determinant [| [| 1.; 2. |]; [| 2.; 4. |] |])

let test_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let c = Matrix.mul a b in
  Alcotest.check vector "row0" [| 2.; 1. |] c.(0);
  Alcotest.check vector "row1" [| 4.; 3. |] c.(1);
  Alcotest.check vector "mul_vec" [| 5.; 11. |] (Matrix.mul_vec a [| 1.; 2. |])

let test_transpose () =
  let a = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let at = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Matrix.rows at);
  Alcotest.(check int) "cols" 2 (Matrix.cols at);
  check_float "entry" 6. at.(2).(1)

let qc_matrix d =
  QCheck.make
    ~print:(fun m -> Format.asprintf "%a" Matrix.pp m)
    QCheck.Gen.(
      array_size (return d)
        (array_size (return d) (float_range (-2.) 2.)))

let suite =
  [
    Alcotest.test_case "identity solve" `Quick test_identity_solve;
    Alcotest.test_case "known system" `Quick test_known_system;
    Alcotest.test_case "singular" `Quick test_singular;
    Alcotest.test_case "rank" `Quick test_rank;
    Alcotest.test_case "determinant" `Quick test_determinant;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "transpose" `Quick test_transpose;
    qcheck_case ~count:200 "solve residual is zero"
      QCheck.(pair (qc_matrix 4) (qc_point 4))
      (fun (a, b) ->
        match Matrix.solve a b with
        | None -> true (* singular: nothing to check *)
        | Some x ->
            let r = Vector.sub (Matrix.mul_vec a x) b in
            Vector.norm r < 1e-6);
    qcheck_case ~count:200 "det(a) = det(a^T)" (qc_matrix 4) (fun a ->
        abs_float (Matrix.determinant a -. Matrix.determinant (Matrix.transpose a))
        < 1e-6);
    qcheck_case ~count:100 "rank bounded by dim" (qc_matrix 5) (fun a ->
        Matrix.rank a <= 5);
  ]
