open Testutil
module Vector = Kregret_geom.Vector
module Rtree = Kregret_skyline.Rtree
module Bbs = Kregret_skyline.Bbs
module Pqueue = Kregret_skyline.Pqueue
module Skyline = Kregret_skyline.Skyline
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Dataset = Kregret_dataset.Dataset

(* --- priority queue ------------------------------------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k (int_of_float k)) [ 5.; 1.; 4.; 2.; 3. ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (_, v) ->
        out := v :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 5; 4; 3; 2; 1 ] !out

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 2. "b";
  Pqueue.push q 1. "a";
  Alcotest.(check (option (pair (float 0.) string))) "peek min" (Some (1., "a"))
    (Pqueue.peek q);
  Alcotest.(check (option (pair (float 0.) string))) "pop min" (Some (1., "a"))
    (Pqueue.pop q);
  Pqueue.push q 0.5 "c";
  Alcotest.(check (option (pair (float 0.) string))) "new min" (Some (0.5, "c"))
    (Pqueue.pop q);
  Alcotest.(check int) "length" 1 (Pqueue.length q);
  Alcotest.(check bool) "not empty" false (Pqueue.is_empty q)

let test_pqueue_heap_property_random () =
  let st = test_rng 3 in
  let q = Pqueue.create () in
  for _ = 1 to 500 do
    Pqueue.push q (Random.State.float st 1.) ()
  done;
  let prev = ref neg_infinity in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (k, ()) ->
        Alcotest.(check bool) "non-decreasing" true (k >= !prev);
        prev := k;
        drain ()
  in
  drain ()

(* --- R-tree ---------------------------------------------------------------- *)

let test_rtree_build_and_invariants () =
  let st = test_rng 4 in
  let points = Array.of_list (random_points st ~n:500 ~d:4) in
  let t = Rtree.build ~capacity:8 points in
  Rtree.check_invariants t;
  Alcotest.(check int) "size" 500 (Rtree.size t);
  Alcotest.(check bool) "height > 1" true (Rtree.height t > 1)

let test_rtree_empty () =
  let t = Rtree.build [||] in
  Alcotest.(check int) "size" 0 (Rtree.size t);
  Alcotest.(check int) "height" 0 (Rtree.height t);
  Alcotest.(check (list int)) "range" []
    (Rtree.range t ~low:[| 0.; 0. |] ~high:[| 1.; 1. |])

let test_rtree_range_matches_scan () =
  let st = test_rng 5 in
  let points = Array.of_list (random_points st ~n:400 ~d:3) in
  let t = Rtree.build ~capacity:6 points in
  for _ = 1 to 20 do
    let a = random_point st 3 and b = random_point st 3 in
    let low = Array.init 3 (fun i -> Float.min a.(i) b.(i)) in
    let high = Array.init 3 (fun i -> Float.max a.(i) b.(i)) in
    let expected =
      List.filter
        (fun i ->
          let p = points.(i) in
          let inside = ref true in
          for j = 0 to 2 do
            if p.(j) < low.(j) || p.(j) > high.(j) then inside := false
          done;
          !inside)
        (List.init 400 Fun.id)
    in
    let got = List.sort compare (Rtree.range t ~low ~high) in
    Alcotest.(check (list int)) "range = scan" expected got
  done

let test_rtree_capacity_one_rejected () =
  Alcotest.check_raises "capacity >= 2"
    (Invalid_argument "Rtree.build: capacity must be >= 2") (fun () ->
      ignore (Rtree.build ~capacity:1 [| [| 1.; 1. |] |]))

(* --- BBS -------------------------------------------------------------------- *)

let same_set a b =
  let norm x = List.sort compare (Array.to_list x) in
  norm a = norm b

let test_bbs_matches_sfs () =
  let st = test_rng 6 in
  List.iter
    (fun (n, d) ->
      let points = Array.of_list (random_points st ~n ~d) in
      let bbs = Bbs.of_points ~capacity:8 points in
      let sfs = Skyline.sfs points in
      Alcotest.(check bool)
        (Printf.sprintf "bbs = sfs (n=%d d=%d)" n d)
        true (same_set bbs sfs))
    [ (50, 2); (200, 3); (400, 4); (300, 6) ]

let test_bbs_on_generated () =
  let ds = Generator.anti_correlated (Rng.create 8) ~n:1_000 ~d:4 in
  let points = ds.Dataset.points in
  Alcotest.(check bool) "bbs = sfs on anti-correlated" true
    (same_set (Bbs.of_points points) (Skyline.sfs points))

let test_bbs_duplicates () =
  let p = [| 1.; 1. |] in
  let points = [| Vector.copy p; Vector.copy p; [| 0.3; 0.3 |] |] in
  Alcotest.(check int) "one copy survives" 1 (Array.length (Bbs.of_points points))

let test_bbs_progressive_order_is_skyline () =
  (* every index reported is genuinely non-dominated *)
  let st = test_rng 12 in
  let points = Array.of_list (random_points st ~n:300 ~d:3) in
  let sky = Bbs.of_points points in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "not dominated" true
        (not
           (Array.exists
              (fun q -> Kregret_skyline.Dominance.dominates q points.(i))
              points)))
    sky

let suite =
  [
    Alcotest.test_case "pqueue: order" `Quick test_pqueue_order;
    Alcotest.test_case "pqueue: interleaved" `Quick test_pqueue_interleaved;
    Alcotest.test_case "pqueue: random heap property" `Quick test_pqueue_heap_property_random;
    Alcotest.test_case "rtree: build + invariants" `Quick test_rtree_build_and_invariants;
    Alcotest.test_case "rtree: empty" `Quick test_rtree_empty;
    Alcotest.test_case "rtree: range = scan" `Quick test_rtree_range_matches_scan;
    Alcotest.test_case "rtree: capacity check" `Quick test_rtree_capacity_one_rejected;
    Alcotest.test_case "bbs: matches sfs" `Quick test_bbs_matches_sfs;
    Alcotest.test_case "bbs: generated data" `Quick test_bbs_on_generated;
    Alcotest.test_case "bbs: duplicates" `Quick test_bbs_duplicates;
    Alcotest.test_case "bbs: soundness" `Quick test_bbs_progressive_order_is_skyline;
    qcheck_case ~count:60 "bbs = naive on random sets"
      (qc_points ~n:50 ~d:3)
      (fun pts ->
        let points = Array.of_list pts in
        same_set (Bbs.of_points ~capacity:4 points) (Skyline.naive points));
    qcheck_case ~count:40 "rtree invariants on random sets"
      (qc_points ~n:80 ~d:4)
      (fun pts ->
        let t = Rtree.build ~capacity:5 (Array.of_list pts) in
        Rtree.check_invariants t;
        true);
  ]

(* appended model-based and bound tests *)

let test_pqueue_model_based () =
  (* compare against a sorted-list model over a random op sequence *)
  let st = test_rng 99 in
  let q = Pqueue.create () in
  let model = ref [] in
  for _ = 1 to 2000 do
    if Random.State.bool st || !model = [] then begin
      let k = Random.State.float st 1. in
      Pqueue.push q k k;
      model := List.sort compare (k :: !model)
    end
    else begin
      match (Pqueue.pop q, !model) with
      | Some (k, _), m :: rest ->
          Alcotest.(check (float 0.)) "pop matches model" m k;
          model := rest
      | None, [] -> ()
      | _ -> Alcotest.fail "queue/model disagree on emptiness"
    end
  done;
  Alcotest.(check int) "final sizes agree" (List.length !model) (Pqueue.length q)

let test_rtree_height_bound () =
  let st = test_rng 100 in
  let n = 1000 and cap = 4 in
  let points = Array.of_list (random_points st ~n ~d:3) in
  let t = Rtree.build ~capacity:cap points in
  (* every level multiplies arity by at least 2 (STR packs full nodes except
     stragglers), so height is O(log n) — use the loose but safe bound *)
  let bound =
    int_of_float (ceil (log (float_of_int n) /. log 2.)) + 1
  in
  Alcotest.(check bool)
    (Printf.sprintf "height %d <= %d" (Rtree.height t) bound)
    true
    (Rtree.height t <= bound)

let test_bbs_single_and_empty_tree () =
  Alcotest.(check int) "empty" 0
    (Array.length (Bbs.skyline (Rtree.build [||])));
  Alcotest.(check (array int)) "singleton" [| 0 |]
    (Bbs.of_points [| [| 0.4; 0.6 |] |])

let suite =
  suite
  @ [
      Alcotest.test_case "pqueue: model-based" `Quick test_pqueue_model_based;
      Alcotest.test_case "rtree: height bound" `Quick test_rtree_height_bound;
      Alcotest.test_case "bbs: empty/singleton" `Quick test_bbs_single_and_empty_tree;
    ]
