(* Average_regret coverage (satellite of the fuzzing PR), complementing the
   behavioural spot-checks in test_extensions.ml: bounds relating average to
   worst-case regret, monotonicity under set growth, determinism of the
   direction sample, and greedy-result invariants. *)

open Testutil
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Average_regret = Kregret.Average_regret
module Mrr = Kregret.Mrr

let anti n d seed = Generator.anti_correlated (Rng.create seed) ~n ~d

let test_average_bounded_by_mrr () =
  (* the mean of rr over sampled directions can never exceed the maximum
     over all directions: 0 <= avg <= mrr for any selection *)
  let ds = anti 50 3 31 in
  let points = ds.Dataset.points in
  let ctx = Average_regret.prepare ~seed:1 points in
  let data = Dataset.to_list ds in
  List.iter
    (fun idxs ->
      let selected = List.map (fun i -> points.(i)) idxs in
      let avg = Average_regret.average_regret ctx selected in
      let mrr = Mrr.geometric ~data ~selected in
      Alcotest.(check bool)
        (Printf.sprintf "0 <= avg (%g)" avg)
        true (avg >= 0.);
      Alcotest.(check bool)
        (Printf.sprintf "avg (%g) <= mrr (%g)" avg mrr)
        true
        (avg <= mrr +. float_eps))
    [ [ 0 ]; [ 0; 1 ]; [ 0; 1; 2; 3; 4 ]; List.init 20 Fun.id ]

let test_average_monotone_in_selection () =
  (* adding points can only lower the average regret (per-direction maxima
     are monotone, the sample is fixed) *)
  let ds = anti 60 4 32 in
  let points = ds.Dataset.points in
  let ctx = Average_regret.prepare ~seed:2 points in
  let sel n = List.init n (fun i -> points.(i)) in
  let prev = ref infinity in
  List.iter
    (fun n ->
      let avg = Average_regret.average_regret ctx (sel n) in
      Alcotest.(check bool)
        (Printf.sprintf "avg non-increasing at n=%d" n)
        true
        (avg <= !prev +. float_eps);
      prev := avg)
    [ 1; 2; 5; 10; 30; 60 ];
  check_float ~eps:0. "full selection has zero average regret" 0.
    (Average_regret.average_regret ctx (Array.to_list points))

let test_prepare_deterministic () =
  let ds = anti 40 3 33 in
  let points = ds.Dataset.points in
  let a = Average_regret.prepare ~seed:7 ~directions:256 points in
  let b = Average_regret.prepare ~seed:7 ~directions:256 points in
  let sel = [ points.(0); points.(3) ] in
  check_float ~eps:0. "same seed, same average"
    (Average_regret.average_regret a sel)
    (Average_regret.average_regret b sel)

let test_greedy_result_invariants () =
  let ds = anti 60 3 34 in
  let points = ds.Dataset.points in
  let ctx = Average_regret.prepare ~seed:3 points in
  let k = 6 in
  let r = Average_regret.greedy ctx ~points ~k () in
  let order = r.Average_regret.order in
  Alcotest.(check bool) "selection size within k" true
    (List.length order >= 1 && List.length order <= k);
  Alcotest.(check bool) "indices valid and distinct" true
    (List.for_all (fun i -> i >= 0 && i < Array.length points) order
    && List.length (List.sort_uniq compare order) = List.length order);
  let selected = List.map (fun i -> points.(i)) order in
  check_float ~eps:0. "reported avg_regret matches re-evaluation"
    (Average_regret.average_regret ctx selected)
    r.Average_regret.avg_regret;
  check_float ~eps:0. "reported mrr matches the geometric evaluator"
    (Mrr.geometric ~data:(Dataset.to_list ds) ~selected)
    r.Average_regret.mrr;
  Alcotest.(check bool) "avg_regret <= mrr" true
    (r.Average_regret.avg_regret <= r.Average_regret.mrr +. float_eps)

let test_greedy_monotone_in_k () =
  let ds = anti 50 3 35 in
  let points = ds.Dataset.points in
  let ctx = Average_regret.prepare ~seed:4 points in
  let avg_at k =
    (Average_regret.greedy ctx ~points ~k ()).Average_regret.avg_regret
  in
  let a3 = avg_at 3 and a6 = avg_at 6 and a10 = avg_at 10 in
  Alcotest.(check bool)
    (Printf.sprintf "k=6 (%g) no worse than k=3 (%g)" a6 a3)
    true (a6 <= a3 +. float_eps);
  Alcotest.(check bool)
    (Printf.sprintf "k=10 (%g) no worse than k=6 (%g)" a10 a6)
    true (a10 <= a6 +. float_eps)

let suite =
  [
    Alcotest.test_case "average regret in [0, mrr]" `Quick
      test_average_bounded_by_mrr;
    Alcotest.test_case "average regret monotone in the selection" `Quick
      test_average_monotone_in_selection;
    Alcotest.test_case "direction sample is deterministic" `Quick
      test_prepare_deterministic;
    Alcotest.test_case "greedy result invariants" `Quick
      test_greedy_result_invariants;
    Alcotest.test_case "greedy improves with k" `Quick
      test_greedy_monotone_in_k;
  ]
