(* Equivalence suite for the flat SoA kernels (ISSUE 6). The perf rewrite
   is only allowed to change timings, never results: every Flat kernel must
   reproduce its boxed reference bit for bit — NaN, signed zeros and
   infinities included. The reference implementations below are the naive
   sequential loops, written out in full, so the suite also pins the claim
   that the 4-wide single-accumulator unrolling in [dot_stride] (and in
   [Vector.dot_unsafe]) leaves the rounding of the plain loop untouched. *)

open Testutil
module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Dominance = Kregret_skyline.Dominance

let bits = Int64.bits_of_float
let same_float a b = bits a = bits b

(* naive strictly-left-to-right dot: the rounding reference *)
let ref_dot u v =
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

(* boxed reference champion fold: init with row 0, replace only when
   [not (best >= x)] — first row wins exact ties, NaN incumbent replaced *)
let ref_argmax rows q =
  let best = ref 0 and bx = ref (ref_dot rows.(0) q) in
  for i = 1 to Array.length rows - 1 do
    let x = ref_dot rows.(i) q in
    if not (!bx >= x) then begin
      best := i;
      bx := x
    end
  done;
  (!best, !bx)

let pp_rows rows =
  String.concat "; "
    (Array.to_list (Array.map (fun r -> Vector.to_string r) rows))

(* Matrices salted with the adversarial floats. The final row duplicates
   row 0 whenever n >= 2, so exact argmax ties (first row must win) and
   Equal dominance verdicts are exercised on every instance. *)
let qc_gnarly =
  QCheck.make
    ~print:(fun (rows, _) -> pp_rows rows)
    QCheck.Gen.(
      let special =
        oneofl [ nan; 0.; -0.; infinity; neg_infinity; 1e300; -1e300 ]
      in
      let coord = frequency [ (6, float_range (-2.) 2.); (1, special) ] in
      let* d = int_range 1 9 in
      let* n = int_range 1 40 in
      let* rows = array_size (return n) (array_size (return d) coord) in
      if n >= 2 then rows.(n - 1) <- Array.copy rows.(0);
      let* tile = int_range 1 8 in
      return (rows, tile))

let prop_dot_bitwise (rows, _) =
  let fp = Flat.of_rows rows in
  let q = rows.(0) in
  Array.iteri
    (fun i r ->
      let expect = ref_dot r q in
      if not (same_float (Flat.dot fp i q) expect) then
        QCheck.Test.fail_reportf "Flat.dot row %d diverges" i;
      if not (same_float (Vector.dot r q) expect) then
        QCheck.Test.fail_reportf "Vector.dot row %d diverges" i;
      if not (same_float (Vector.dot_unsafe r q) expect) then
        QCheck.Test.fail_reportf "Vector.dot_unsafe row %d diverges" i;
      if not (same_float (Flat.dot_rows fp i fp 0) expect) then
        QCheck.Test.fail_reportf "Flat.dot_rows row %d diverges" i)
    rows;
  true

let prop_compare_flat (rows, _) =
  let fp = Flat.of_rows rows in
  let n = Array.length rows in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Dominance.compare_flat fp a b <> Dominance.compare rows.(a) rows.(b)
      then
        QCheck.Test.fail_reportf "compare_flat (%d, %d) diverges from compare"
          a b
    done
  done;
  true

let prop_slacks_bitwise (rows, _) =
  let fp = Flat.of_rows rows in
  let n = Array.length rows in
  let normal = rows.(n - 1) and offset = 0.75 in
  let out = Array.make (n + 3) (-1.) in
  Flat.slacks fp ~normal ~offset ~out;
  Array.iteri
    (fun i r ->
      if not (same_float out.(i) (ref_dot r normal -. offset)) then
        QCheck.Test.fail_reportf "slack %d diverges" i)
    rows;
  (* slots past the rows stay untouched *)
  out.(n) = -1. && out.(n + 1) = -1. && out.(n + 2) = -1.

let prop_argmax_bitwise (rows, _) =
  let fp = Flat.of_rows rows in
  let q = rows.(Array.length rows - 1) in
  let er, ev = ref_argmax rows q in
  let gr, gv = Flat.argmax_dot fp q in
  if gr <> er || not (same_float gv ev) then
    QCheck.Test.fail_reportf "argmax_dot (%d, %h) <> reference (%d, %h)" gr gv
      er ev;
  true

let prop_for_all_dot_le (rows, _) =
  let fp = Flat.of_rows rows in
  let q = rows.(0) in
  List.for_all
    (fun bound ->
      Flat.for_all_dot_le fp q bound
      = Array.for_all (fun r -> ref_dot r q <= bound) rows)
    [ neg_infinity; -1.; 0.; 0.5; 2.; infinity; nan ]

(* The blocked kernel must be invisible: for every tile height, every
   candidate's champion equals the boxed reference fold (and therefore
   [argmax_dot]), and un-targeted out slots keep their sentinels. *)
let prop_champions_bitwise (rows, tile) =
  let vrows = rows in
  (* candidates: the same matrix reversed, so vertex/candidate shapes differ *)
  let crows = Array.init (Array.length rows) (fun i ->
      rows.(Array.length rows - 1 - i))
  in
  let vertices = Flat.of_rows vrows and cands = Flat.of_rows crows in
  let nc = Array.length crows in
  (* every other candidate is a target *)
  let targets =
    Array.of_list (List.filter (fun j -> j mod 2 = 0) (List.init nc Fun.id))
  in
  let nt = Array.length targets in
  let out_row = Array.make nc (-7) and out_val = Array.make nc (-7.) in
  let tiles =
    Flat.champions ~tile ~vertices ~cands targets ~tlo:0 ~thi:nt ~out_row
      ~out_val
  in
  let expected_tiles =
    (Array.length vrows + tile - 1) / tile
  in
  if tiles <> expected_tiles then
    QCheck.Test.fail_reportf "tile count %d <> ceil(%d/%d)" tiles
      (Array.length vrows) tile;
  Array.iter
    (fun j ->
      let er, ev = ref_argmax vrows crows.(j) in
      if out_row.(j) <> er || not (same_float out_val.(j) ev) then
        QCheck.Test.fail_reportf
          "champion of candidate %d at tile=%d: (%d, %h) <> (%d, %h)" j tile
          out_row.(j) out_val.(j) er ev)
    targets;
  for j = 0 to nc - 1 do
    if j mod 2 = 1 && (out_row.(j) <> -7 || out_val.(j) <> -7.) then
      QCheck.Test.fail_reportf "untargeted slot %d was written" j
  done;
  true

(* ---- store mechanics: push / swap_remove against a growable model ------- *)

let test_store_model () =
  let st = test_rng 0xf1a7 in
  let d = 5 in
  let fp = Flat.create ~capacity:1 ~dim:d () in
  let model = ref [] in
  (* model: list of rows, newest last *)
  let model_arr () = Array.of_list !model in
  for _step = 1 to 500 do
    let n = List.length !model in
    if n = 0 || Random.State.float st 1. < 0.6 then begin
      let r = random_point st d in
      Flat.push_row fp r;
      model := !model @ [ Array.copy r ]
    end
    else begin
      let i = Random.State.int st n in
      Flat.swap_remove fp i;
      let arr = model_arr () in
      arr.(i) <- arr.(n - 1);
      model := Array.to_list (Array.sub arr 0 (n - 1))
    end;
    let arr = model_arr () in
    Alcotest.(check int) "row count" (Array.length arr) (Flat.rows fp);
    Array.iteri
      (fun i r ->
        for c = 0 to d - 1 do
          if not (same_float (Flat.get fp i c) r.(c)) then
            Alcotest.failf "store diverges from model at (%d, %d)" i c
        done)
      arr
  done;
  (* round-trips *)
  let arr = model_arr () in
  Alcotest.(check bool) "to_rows round-trips" true (Flat.to_rows fp = arr);
  if Array.length arr > 0 then begin
    let dst = Array.make d 0. in
    Flat.blit_row fp 0 dst;
    Alcotest.(check bool) "blit_row = row" true (Flat.row fp 0 = dst)
  end;
  Flat.clear fp;
  Alcotest.(check int) "clear empties" 0 (Flat.rows fp)

let test_validation () =
  let fp = Flat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let rejects f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "dim 0 rejected" true
    (rejects (fun () -> ignore (Flat.create ~dim:0 ())));
  Alcotest.(check bool) "ragged push rejected" true
    (rejects (fun () -> Flat.push_row fp [| 1. |]));
  Alcotest.(check bool) "oob get rejected" true
    (rejects (fun () -> ignore (Flat.get fp 2 0)));
  Alcotest.(check bool) "oob swap_remove rejected" true
    (rejects (fun () -> Flat.swap_remove fp 2));
  Alcotest.(check bool) "short slacks out rejected" true
    (rejects (fun () ->
         Flat.slacks fp ~normal:[| 1.; 1. |] ~offset:0. ~out:[| 0. |]));
  Alcotest.(check bool) "empty argmax rejected" true
    (rejects (fun () -> ignore (Flat.argmax_dot (Flat.create ~dim:2 ()) [| 1.; 1. |])));
  Alcotest.(check bool) "champions bad target rejected" true
    (rejects (fun () ->
         ignore
           (Flat.champions ~vertices:fp ~cands:fp [| 5 |] ~tlo:0 ~thi:1
              ~out_row:(Array.make 2 0) ~out_val:(Array.make 2 0.))))

let suite =
  [
    qcheck_case ~count:200 "Flat/Vector dots match the naive loop bitwise"
      qc_gnarly prop_dot_bitwise;
    qcheck_case ~count:200 "compare_flat = Dominance.compare" qc_gnarly
      prop_compare_flat;
    qcheck_case ~count:200 "slacks = per-row dot - offset bitwise" qc_gnarly
      prop_slacks_bitwise;
    qcheck_case ~count:200 "argmax_dot = reference fold (ties, NaN)" qc_gnarly
      prop_argmax_bitwise;
    qcheck_case ~count:200 "for_all_dot_le = boxed conjunction" qc_gnarly
      prop_for_all_dot_le;
    qcheck_case ~count:200 "blocked champions = reference fold at any tile"
      qc_gnarly prop_champions_bitwise;
    Alcotest.test_case "push/swap_remove track a model" `Quick
      test_store_model;
    Alcotest.test_case "argument validation" `Quick test_validation;
  ]
