(* Dynamic-update coverage (the dynamic-datasets PR): inserts and deletes
   must leave [Kregret.Dynamic] bit-identical to rebuilding the whole
   pipeline (naive skyline -> happy screen -> StoredList) from the live
   points — the contract the fuzz oracle (Kregret_check.Dynamic_oracle)
   enforces at scale. This suite pins the named degenerate cases and the
   round-trip/flush identities deterministically, and runs the oracle on a
   few fixed instances across pool widths {1,2,4}. *)

module Vector = Kregret_geom.Vector
module Rng = Kregret_dataset.Rng
module Generator = Kregret_dataset.Generator
module Dataset = Kregret_dataset.Dataset
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Dynamic = Kregret.Dynamic
module Pool = Kregret_parallel.Pool
module Instance = Kregret_check.Instance
module Dynamic_oracle = Kregret_check.Dynamic_oracle

let points_of ~n ~d ~seed =
  (Dataset.normalize (Generator.anti_correlated (Rng.create seed) ~n ~d))
    .Dataset.points

(* the full answer as comparable bits: stored order as external ids plus
   the mrr of every prefix *)
let answer_bits dyn =
  let len = Dynamic.stored_length dyn in
  let ids = if len = 0 then [] else fst (Dynamic.query dyn ~k:len) in
  (ids, List.init len (fun i -> Int64.bits_of_float (Dynamic.mrr_at dyn ~k:(i + 1))))

(* rebuild-from-scratch expectation over the live points, in external ids *)
let rebuild_bits dyn =
  let live = Dynamic.live_points dyn in
  if Array.length live = 0 then ([], [])
  else begin
    let vecs = Array.map snd live in
    let sky_idx = Skyline.naive vecs in
    let sky = Array.map (fun i -> vecs.(i)) sky_idx in
    let happy_idx = Happy.happy_points sky in
    if Array.length happy_idx = 0 then ([], [])
    else begin
      let happy = Array.map (fun i -> sky.(i)) happy_idx in
      let stored = Stored_list.preprocess happy in
      let len = Stored_list.length stored in
      ( List.map
          (fun e -> fst live.(sky_idx.(happy_idx.(e))))
          (Stored_list.order stored),
        List.init len (fun i ->
            Int64.bits_of_float (Stored_list.mrr_at stored ~k:(i + 1))) )
    end
  end

let check_matches_rebuild msg dyn =
  let got_ids, got_mrr = answer_bits dyn in
  let want_ids, want_mrr = rebuild_bits dyn in
  Alcotest.(check (list int)) (msg ^ ": ids match rebuild") want_ids got_ids;
  Alcotest.(check (list int64)) (msg ^ ": mrr bits match rebuild") want_mrr got_mrr

let test_insert_delete_round_trip () =
  let points = points_of ~n:40 ~d:3 ~seed:11 in
  let dyn = Dynamic.create points in
  let before = answer_bits dyn in
  let st = Random.State.make [| 2014; 7 |] in
  (* a mix of fresh, duplicate and boundary points *)
  let extras =
    List.init 12 (fun i ->
        if i mod 3 = 0 then Vector.copy points.(Random.State.int st 40)
        else
          Array.init 3 (fun _ -> 0.05 +. Random.State.float st 0.95))
  in
  let ids = List.map (fun p -> Dynamic.insert dyn p) extras in
  List.iter
    (fun p -> check_matches_rebuild "after insert" (ignore p; dyn))
    extras;
  List.iter
    (fun id -> Alcotest.(check bool) "delete returns true" true (Dynamic.delete dyn id))
    ids;
  check_matches_rebuild "after deleting the inserts" dyn;
  let after = answer_bits dyn in
  Alcotest.(check (list int)) "round trip restores the ids" (fst before) (fst after);
  Alcotest.(check (list int64)) "round trip restores the mrr bits" (snd before)
    (snd after)

let test_duplicate_insert_is_noop () =
  let points = points_of ~n:30 ~d:2 ~seed:5 in
  let dyn = Dynamic.create points in
  let before = answer_bits dyn in
  let epoch0 = Dynamic.epoch dyn in
  (* duplicate every original point: all equal-excluded, nothing moves *)
  let dup_ids = Array.to_list (Array.map (fun p -> Dynamic.insert dyn (Vector.copy p)) points) in
  Alcotest.(check int) "epoch unchanged by duplicate inserts" epoch0
    (Dynamic.epoch dyn);
  Alcotest.(check int) "live counts the duplicates" 60 (Dynamic.live dyn);
  let after = answer_bits dyn in
  Alcotest.(check (list int)) "ids unchanged" (fst before) (fst after);
  Alcotest.(check (list int64)) "mrr bits unchanged" (snd before) (snd after);
  (* the duplicates never entered the skyline, so deleting them is a no-op
     too — answers and epoch still untouched *)
  List.iter (fun id -> ignore (Dynamic.delete dyn id)) dup_ids;
  Alcotest.(check int) "epoch unchanged by duplicate deletes" epoch0
    (Dynamic.epoch dyn);
  check_matches_rebuild "after duplicate churn" dyn

let test_dominated_insert_is_noop () =
  let points = points_of ~n:25 ~d:3 ~seed:9 in
  let dyn = Dynamic.create points in
  let before = answer_bits dyn in
  let epoch0 = Dynamic.epoch dyn in
  Array.iter
    (fun p -> ignore (Dynamic.insert dyn (Array.map (fun x -> x /. 2.) p)))
    points;
  Alcotest.(check int) "epoch unchanged by dominated inserts" epoch0
    (Dynamic.epoch dyn);
  let after = answer_bits dyn in
  Alcotest.(check (list int)) "ids unchanged" (fst before) (fst after);
  Alcotest.(check (list int64)) "mrr bits unchanged" (snd before) (snd after)

let test_delete_selected_point () =
  let points = points_of ~n:50 ~d:3 ~seed:21 in
  let dyn = Dynamic.create points in
  let top =
    match fst (Dynamic.query dyn ~k:1) with
    | [ id ] -> id
    | other ->
        Alcotest.failf "k=1 answered %d ids" (List.length other)
  in
  let epoch0 = Dynamic.epoch dyn in
  Alcotest.(check bool) "selected point deletes" true (Dynamic.delete dyn top);
  Alcotest.(check bool) "epoch bumped" true (Dynamic.epoch dyn > epoch0);
  check_matches_rebuild "after deleting the k=1 answer" dyn;
  (match fst (Dynamic.query dyn ~k:1) with
  | [ id ] ->
      Alcotest.(check bool) "the deleted point is gone from the answer" true
        (id <> top)
  | [] -> ()  (* a degenerate survivor set can materialize nothing *)
  | _ -> Alcotest.fail "k=1 answered more than one id")

let test_delete_everything () =
  let points = points_of ~n:20 ~d:2 ~seed:33 in
  let dyn = Dynamic.create ~damage_ratio:0.95 points in
  (* kill the whole dataset one point at a time — this sweeps through
     "delete the entire skyline" repeatedly as successive layers surface *)
  for id = 0 to 19 do
    Alcotest.(check bool) "live point deletes" true (Dynamic.delete dyn id);
    check_matches_rebuild (Printf.sprintf "after deleting id %d" id) dyn
  done;
  Alcotest.(check int) "no live points left" 0 (Dynamic.live dyn);
  let ids, mrr = Dynamic.query dyn ~k:3 in
  Alcotest.(check (list int)) "empty selection" [] ids;
  Alcotest.(check (list int64)) "zero mrr"
    [ Int64.bits_of_float 0. ]
    [ Int64.bits_of_float mrr ];
  (* the store springs back: inserts into the emptied state work *)
  let id = Dynamic.insert dyn [| 0.9; 0.8 |] in
  Alcotest.(check (list int)) "fresh insert is the whole answer" [ id ]
    (fst (Dynamic.query dyn ~k:4));
  check_matches_rebuild "after reviving the store" dyn

let test_flush_identity () =
  let points = points_of ~n:40 ~d:3 ~seed:17 in
  let dyn = Dynamic.create ~damage_ratio:0.95 points in
  List.iter
    (fun id -> ignore (Dynamic.delete dyn id))
    [ 0; 3; 7; 11; 19; 23 ];
  let before = answer_bits dyn in
  let epoch0 = Dynamic.epoch dyn in
  let tombs = Dynamic.tombstones dyn in
  Alcotest.(check bool) "something to reclaim" true (tombs > 0);
  Alcotest.(check int) "flush reclaims every tombstone" tombs (Dynamic.flush dyn);
  Alcotest.(check int) "no tombstones left" 0 (Dynamic.tombstones dyn);
  Alcotest.(check int) "epoch unchanged by compaction" epoch0 (Dynamic.epoch dyn);
  let after = answer_bits dyn in
  Alcotest.(check (list int)) "ids stable across flush" (fst before) (fst after);
  Alcotest.(check (list int64)) "mrr bits stable across flush" (snd before)
    (snd after);
  (* external ids survive compaction: old ids still deletable, new ids fresh *)
  Alcotest.(check bool) "pre-flush id still resolves" true (Dynamic.delete dyn 29);
  Alcotest.(check bool) "reclaimed id stays dead" false (Dynamic.delete dyn 3);
  let fresh = Dynamic.insert dyn [| 0.5; 0.6; 0.7 |] in
  Alcotest.(check bool) "fresh ids continue the sequence" true (fresh >= 40);
  check_matches_rebuild "after post-flush churn" dyn

let mk_instance ~seed ~id ~k points =
  { Instance.id; seed; dist = "test"; degeneracies = []; k; points }

let test_oracle_interleavings_across_widths () =
  (* the full fuzz harness on fixed instances, cross-checking pool widths
     1, 2 and 4 digest-by-digest (jobs_hi = 4) *)
  List.iter
    (fun (seed, id, n, d, k) ->
      let inst = mk_instance ~seed ~id ~k (points_of ~n ~d ~seed) in
      match Dynamic_oracle.check ~jobs_hi:4 inst with
      | [] -> ()
      | (_, msg) :: _ ->
          Alcotest.failf "oracle failure on seed=%d id=%d: %s" seed id msg)
    [ (101, 0, 12, 2, 3); (202, 1, 18, 3, 4); (303, 2, 25, 4, 2) ]

(* qcheck: growing a state point-by-point always matches a one-shot create
   over the same multiset — the insert path has no order dependence the
   rebuild can't see *)
let incremental_equals_batch =
  QCheck.Test.make ~count:60 ~name:"incremental create = batch create"
    (Testutil.qc_points ~n:18 ~d:3)
    (fun pts ->
      let pts = Array.of_list pts in
      if Array.length pts < 2 then true
      else begin
        let base = [| pts.(0) |] in
        let dyn = Dynamic.create base in
        Array.iteri (fun i p -> if i > 0 then ignore (Dynamic.insert dyn p)) pts;
        let batch = Dynamic.create pts in
        let gi, gm = answer_bits dyn in
        let bi, bm = answer_bits batch in
        if gi <> bi || gm <> bm then
          QCheck.Test.fail_reportf
            "incremental [%s] differs from batch [%s]"
            (String.concat "," (List.map string_of_int gi))
            (String.concat "," (List.map string_of_int bi))
        else true
      end)

let suite =
  [
    Alcotest.test_case "insert-then-delete round trip is bit-identical" `Quick
      test_insert_delete_round_trip;
    Alcotest.test_case "duplicate inserts (and their deletes) are no-ops" `Quick
      test_duplicate_insert_is_noop;
    Alcotest.test_case "dominated inserts are no-ops" `Quick
      test_dominated_insert_is_noop;
    Alcotest.test_case "deleting the k=1 answer repairs exactly" `Quick
      test_delete_selected_point;
    Alcotest.test_case "deleting everything, then reviving" `Quick
      test_delete_everything;
    Alcotest.test_case "flush preserves answers and external ids" `Quick
      test_flush_identity;
    Alcotest.test_case "fuzz oracle clean on fixed instances at jobs {1,2,4}"
      `Slow test_oracle_interleavings_across_widths;
    QCheck_alcotest.to_alcotest incremental_equals_batch;
  ]
