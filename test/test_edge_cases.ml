(* Degenerate and adversarial inputs across the whole stack. *)

open Testutil
module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Csv_io = Kregret_dataset.Csv_io
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Dd = Kregret_hull.Dd
module Dual_polytope = Kregret_hull.Dual_polytope
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Stored_list = Kregret.Stored_list
module Cube = Kregret.Cube
module Mrr = Kregret.Mrr

let test_single_point_everything () =
  let points = [| [| 1.; 1.; 1. |] |] in
  let geo = Geo_greedy.run ~points ~k:5 () in
  Alcotest.(check (list int)) "geo selects it" [ 0 ] geo.Geo_greedy.order;
  check_float "mrr 0" 0. geo.Geo_greedy.mrr;
  let lp = Greedy_lp.run ~points ~k:5 () in
  Alcotest.(check (list int)) "lp selects it" [ 0 ] lp.Greedy_lp.order;
  let sl = Stored_list.preprocess points in
  Alcotest.(check (list int)) "stored list" [ 0 ] (Stored_list.query sl ~k:3)

let test_identical_points () =
  let p = [| 0.7; 1.0 |] in
  let points = [| Vector.copy p; Vector.copy p; Vector.copy p; [| 1.0; 0.3 |] |] in
  let geo = Geo_greedy.run ~points ~k:4 () in
  check_float "mrr 0 with duplicates" 0. geo.Geo_greedy.mrr;
  (* skyline keeps one copy of the duplicated maximal point *)
  Alcotest.(check int) "skyline size" 2 (Array.length (Skyline.sfs points))

let test_collinear_points () =
  (* all candidates on one segment: only the endpoints matter *)
  let points =
    Array.init 9 (fun i ->
        let t = float_of_int i /. 8. in
        [| 1. -. (0.9 *. t); 0.1 +. (0.9 *. t) |])
  in
  let geo = Geo_greedy.run ~points ~k:9 () in
  check_float "mrr 0" 0. geo.Geo_greedy.mrr;
  Alcotest.(check bool) "only endpoints selected" true
    (List.length geo.Geo_greedy.order <= 3)

let test_k_equals_one () =
  let points = [| [| 1.; 0.2 |]; [| 0.2; 1. |]; [| 0.9; 0.9 |] |] in
  let geo = Geo_greedy.run ~points ~k:1 () in
  Alcotest.(check int) "one point" 1 (List.length geo.Geo_greedy.order);
  Alcotest.(check bool) "regret positive (k < d)" true (geo.Geo_greedy.mrr > 0.)

let test_invalid_inputs () =
  Alcotest.check_raises "empty geo"
    (Invalid_argument "Geo_greedy.run: empty candidate set") (fun () ->
      ignore (Geo_greedy.run ~points:[||] ~k:3 ()));
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Geo_greedy.run: k must be positive") (fun () ->
      ignore (Geo_greedy.run ~points:[| [| 1.; 1. |] |] ~k:0 ()));
  Alcotest.check_raises "cube empty"
    (Invalid_argument "Cube.run: empty candidate set") (fun () ->
      ignore (Cube.run ~points:[||] ~k:3 ()));
  Alcotest.check_raises "dataset empty" (Invalid_argument "Dataset.create: empty")
    (fun () -> ignore (Dataset.create ~name:"x" [||]));
  Alcotest.check_raises "mixed dims"
    (Invalid_argument "Dataset.create: mixed dimensions") (fun () ->
      ignore (Dataset.create ~name:"x" [| [| 1. |]; [| 1.; 2. |] |]))

let test_high_dimension_dd () =
  (* d = 9 (the color dataset's dimensionality): exercise the DD machinery
     where orthotope corner counts (2^9) would start to hurt a primal
     implementation *)
  let st = test_rng 909 in
  let d = 9 in
  let boundary =
    List.init d (fun i ->
        Array.init d (fun j -> if i = j then 1. else 0.3 +. (0.4 *. Random.State.float st 1.)))
  in
  let extra = random_points st ~n:6 ~d in
  let dp = Dual_polytope.create ~dim:d () in
  List.iter (fun p -> ignore (Dual_polytope.insert dp p)) (boundary @ extra);
  Dd.check_invariants (Dual_polytope.dd dp);
  let q = random_point st d in
  let geometric = Dual_polytope.critical_ratio dp q in
  let lp, _ =
    Kregret_lp.Regret_lp.critical_ratio ~selected:(boundary @ extra) q
  in
  check_float ~eps:float_eps "d=9 cr agreement" lp geometric

let test_tiny_coordinates () =
  (* values at the normalization floor stress the epsilon policy *)
  let points =
    [| [| 1.; 1e-6 |]; [| 1e-6; 1. |]; [| 0.5; 0.5 |] |]
  in
  let geo = Geo_greedy.run ~points ~k:3 () in
  let lp = Greedy_lp.run ~points ~k:3 () in
  check_float ~eps:float_eps "tiny coords: geo = lp" lp.Greedy_lp.mrr geo.Geo_greedy.mrr

let test_near_duplicate_jitter () =
  (* clusters of near-identical points: champion reassignment must not lose
     track under merging of near-coincident dual vertices *)
  let st = test_rng 31337 in
  let base = random_points st ~n:6 ~d:3 in
  let jitter p =
    Array.map (fun x -> Float.min 1. (x +. (geom_eps *. Random.State.float st 1.))) p
  in
  let points =
    Array.of_list
      ((Dataset.normalize
          (Dataset.create ~name:"jit"
             (Array.of_list (base @ List.map jitter base @ List.map jitter base))))
         .Dataset.points
      |> Array.to_list)
  in
  let geo = Geo_greedy.run ~points ~k:6 () in
  let lp = Greedy_lp.run ~points ~k:6 () in
  check_float ~eps:1e-5 "jitter: geo = lp" lp.Greedy_lp.mrr geo.Geo_greedy.mrr

let test_csv_empty_file () =
  let path = Filename.temp_file "kregret" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.(check bool) "empty file rejected" true
        (try
           ignore (Csv_io.load path);
           false
         with Invalid_argument _ -> true))

let test_happy_all_on_simplex () =
  (* all points on the simplex boundary sum = 1: nobody subjugates anybody
     (everyone is 'on' the only hyperplane) *)
  let points =
    Array.init 5 (fun i ->
        let t = 0.1 +. (0.8 *. float_of_int i /. 4.) in
        [| t; 1. -. t |])
  in
  Alcotest.(check int) "all happy" 5 (Array.length (Happy.happy_points points))

let test_cube_budget_edge () =
  (* k exactly d: no room for grid cells beyond the seeds *)
  let st = test_rng 55 in
  let points =
    (Dataset.normalize
       (Dataset.create ~name:"c" (Array.of_list (random_points st ~n:30 ~d:3))))
      .Dataset.points
  in
  let r = Cube.run ~points ~k:3 () in
  Alcotest.(check bool) "within budget" true (List.length r.Cube.order <= 3)

let test_mrr_identical_selection_data () =
  let st = test_rng 66 in
  let pts = random_points st ~n:12 ~d:4 in
  check_float "mrr(D, D) = 0" 0. (Mrr.geometric ~data:pts ~selected:pts)

let suite =
  [
    Alcotest.test_case "single point" `Quick test_single_point_everything;
    Alcotest.test_case "identical points" `Quick test_identical_points;
    Alcotest.test_case "collinear points" `Quick test_collinear_points;
    Alcotest.test_case "k = 1" `Quick test_k_equals_one;
    Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
    Alcotest.test_case "d = 9 dual machinery" `Quick test_high_dimension_dd;
    Alcotest.test_case "tiny coordinates" `Quick test_tiny_coordinates;
    Alcotest.test_case "near-duplicate jitter" `Quick test_near_duplicate_jitter;
    Alcotest.test_case "csv: empty file" `Quick test_csv_empty_file;
    Alcotest.test_case "happy: simplex boundary" `Quick test_happy_all_on_simplex;
    Alcotest.test_case "cube: k = d" `Quick test_cube_budget_edge;
    Alcotest.test_case "mrr of everything" `Quick test_mrr_identical_selection_data;
  ]
