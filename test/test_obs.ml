(* The observability layer's two load-bearing promises, verified in-process:

   (1) counters are bit-identical at every pool width — the pool's
       determinism contract (chunk boundaries are a pure function of the
       range, never of the worker count) extends to the metrics because the
       instrumented loops flush per-chunk/per-item tallies, and integer
       summation over per-domain cells is exact and commutative;

   (2) disabled observability is invisible: same algorithm results, empty
       registry, no files, no timing.

   Plus unit coverage of the metric primitives themselves, with a fake
   clock driving the span tree so durations are deterministic. *)

open Testutil
module Obs = Kregret_obs
module Pool = Kregret_parallel.Pool
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Happy = Kregret_happy.Happy
module Geo_greedy = Kregret.Geo_greedy

(* a workload crossing every instrumented layer: generator -> skyline ->
   happy (cut-box vertices, subjugation probes) -> GeoGreedy (dd vertex
   enumeration, pool regions) *)
let workload () =
  let ds = Generator.anti_correlated (Rng.create 41) ~n:120 ~d:4 in
  let happy = Happy.of_dataset ds in
  let r = Geo_greedy.run ~points:happy.Dataset.points ~k:6 () in
  (r.Geo_greedy.order, r.Geo_greedy.mrr)

let with_jobs jobs f =
  let saved = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

(* enable recording for the thunk only, and leave a clean registry behind so
   later suites (and earlier interned library metrics) see no residue *)
let with_enabled f =
  Obs.Registry.reset ();
  Obs.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.set_enabled false;
      Obs.Registry.reset ())
    f

(* --- cross-width bit-identity --------------------------------------------- *)

let test_counters_width_invariant () =
  let run jobs =
    with_jobs jobs (fun () ->
        with_enabled (fun () ->
            let result = workload () in
            (result, Obs.Registry.counters ())))
  in
  let r1, c1 = run 1 in
  let r2, c2 = run 2 in
  let r4, c4 = run 4 in
  (* the workload itself is width-invariant ... *)
  Alcotest.(check (pair (list int) (float 1e-12))) "results jobs 1 = 2" r1 r2;
  Alcotest.(check (pair (list int) (float 1e-12))) "results jobs 1 = 4" r1 r4;
  (* ... and so is every counter, name for name and value for value *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "counter %s recorded" name)
        true (List.mem_assoc name c1))
    [
      "skyline.points_scanned";
      "skyline.dominance_tests";
      "happy.candidates";
      "happy.subjugation_probes";
      "dd.vertices_created";
      "geo_greedy.runs";
      "geo_greedy.rounds";
      "pool.regions";
    ];
  Alcotest.(check (list (pair string int))) "counters jobs 1 = 2" c1 c2;
  Alcotest.(check (list (pair string int))) "counters jobs 1 = 4" c1 c4

(* --- disabled semantics ----------------------------------------------------- *)

let test_disabled_is_invisible () =
  (* reference run with recording on *)
  let enabled_result = with_enabled (fun () -> workload ()) in
  (* disabled run: same answer, and the registry stays empty even though the
     instrumented code paths all executed *)
  Obs.Registry.reset ();
  Alcotest.(check bool) "recording off" false (Obs.Control.enabled ());
  let disabled_result = workload () in
  Alcotest.(check (pair (list int) (float 1e-12)))
    "disabled run returns the same answer" enabled_result disabled_result;
  Alcotest.(check (list (pair string int))) "no counters" []
    (Obs.Registry.counters ());
  Alcotest.(check int) "no gauges" 0 (List.length (Obs.Registry.gauges ()));
  Alcotest.(check int) "no histograms" 0
    (List.length (Obs.Registry.histograms ()));
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Span.snapshot ()))

(* --- primitive units -------------------------------------------------------- *)

let test_counter_unit () =
  with_enabled (fun () ->
      let c = Obs.Registry.counter "test.obs.counter" ~help:"unit test" in
      Alcotest.(check int) "starts at 0" 0 (Obs.Counter.value c);
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "accumulates" 42 (Obs.Counter.value c);
      Alcotest.(check bool) "touched" true (Obs.Counter.touched c);
      Alcotest.(check bool) "snapshot carries it" true
        (List.mem_assoc "test.obs.counter" (Obs.Registry.counters ()));
      (* interning is idempotent: same name, same cell *)
      let c' = Obs.Registry.counter "test.obs.counter" in
      Obs.Counter.incr c';
      Alcotest.(check int) "same cell through the registry" 43
        (Obs.Counter.value c);
      Obs.Counter.reset c;
      Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
      Alcotest.(check bool) "zeroed counter leaves the snapshot" false
        (List.mem_assoc "test.obs.counter" (Obs.Registry.counters ())))

let test_counter_noop_when_disabled () =
  Obs.Registry.reset ();
  let c = Obs.Registry.counter "test.obs.disabled_counter" ~help:"unit test" in
  Obs.Counter.add c 7;
  Obs.Counter.incr c;
  Alcotest.(check int) "adds are dropped" 0 (Obs.Counter.value c);
  Alcotest.(check bool) "never touched" false (Obs.Counter.touched c)

let test_registry_type_clash () =
  let _c = Obs.Registry.counter "test.obs.clash" ~help:"unit test" in
  Alcotest.(check bool) "reusing a counter name as a gauge raises" true
    (match Obs.Registry.gauge "test.obs.clash" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge_unit () =
  with_enabled (fun () ->
      let g = Obs.Registry.gauge "test.obs.gauge" ~help:"unit test" in
      check_float "unset reads 0" 0. (Obs.Gauge.value g);
      Obs.Gauge.set g 2.5;
      Obs.Gauge.set_int g 7;
      check_float "last write wins" 7. (Obs.Gauge.value g);
      Alcotest.(check bool) "snapshot carries it" true
        (List.mem_assoc "test.obs.gauge" (Obs.Registry.gauges ())))

let test_histogram_unit () =
  with_enabled (fun () ->
      let h =
        Obs.Registry.histogram "test.obs.hist"
          ~buckets:[| 1.; 10.; 100. |] ~help:"unit test"
      in
      List.iter (Obs.Histogram.observe h) [ 0.5; 5.; 5.; 50.; 5000. ];
      let s = Obs.Histogram.snapshot h in
      Alcotest.(check int) "count" 5 s.Obs.Histogram.count;
      check_float "sum" 5060.5 s.Obs.Histogram.sum;
      (* bucket layout: (le, n) pairs plus the +inf overflow *)
      Alcotest.(check (list (pair (float 0.) int)))
        "bucket counts"
        [ (1., 1); (10., 2); (100., 1); (infinity, 1) ]
        s.Obs.Histogram.buckets)

let test_span_tree_with_fake_clock () =
  (* a manually advanced clock: every span gets exact, deterministic
     durations, so the tree's seconds can be checked to the bit *)
  let t = ref 0. in
  Obs.Control.set_clock (fun () -> !t);
  Fun.protect
    ~finally:(fun () -> Obs.Control.set_clock Sys.time)
    (fun () ->
      with_enabled (fun () ->
          Obs.Span.with_ "outer" (fun () ->
              t := !t +. 1.;
              Obs.Span.with_ "inner" (fun () -> t := !t +. 0.25);
              Obs.Span.with_ "inner" (fun () -> t := !t +. 0.25));
          (* same name at the root aggregates rather than duplicating *)
          Obs.Span.with_ "outer" (fun () -> t := !t +. 0.5);
          match Obs.Span.snapshot () with
          | [ outer ] ->
              Alcotest.(check string) "root name" "outer"
                outer.Obs.Span.name;
              Alcotest.(check int) "root count" 2 outer.Obs.Span.count;
              check_float "root seconds" 2. outer.Obs.Span.seconds;
              (match outer.Obs.Span.children with
              | [ inner ] ->
                  Alcotest.(check string) "child name" "inner"
                    inner.Obs.Span.name;
                  Alcotest.(check int) "child aggregates" 2
                    inner.Obs.Span.count;
                  check_float "child seconds" 0.5 inner.Obs.Span.seconds
              | l ->
                  Alcotest.failf "expected one aggregated child, got %d"
                    (List.length l))
          | l -> Alcotest.failf "expected one root span, got %d" (List.length l)))

let test_span_closes_on_exception () =
  let t = ref 0. in
  Obs.Control.set_clock (fun () -> !t);
  Fun.protect
    ~finally:(fun () -> Obs.Control.set_clock Sys.time)
    (fun () ->
      with_enabled (fun () ->
          (try
             Obs.Span.with_ "failing" (fun () ->
                 t := !t +. 3.;
                 failwith "boom")
           with Failure _ -> ());
          match Obs.Span.snapshot () with
          | [ s ] ->
              Alcotest.(check string) "span recorded" "failing"
                s.Obs.Span.name;
              check_float "duration up to the raise" 3. s.Obs.Span.seconds
          | l -> Alcotest.failf "expected one span, got %d" (List.length l)))

(* a wall clock that steps backwards (NTP slew, manual reset) must not
   surface as a decreasing reading: the monotonic wrapper holds the
   high-water mark until real time catches back up *)
let test_monotonic_of_backwards_clock () =
  let t = ref 100. in
  let clock = Obs.Control.monotonic_of (fun () -> !t) in
  Alcotest.(check (float 0.)) "first reading" 100. (clock ());
  t := 105.;
  Alcotest.(check (float 0.)) "advances" 105. (clock ());
  t := 90.;
  Alcotest.(check (float 0.)) "backwards step held" 105. (clock ());
  t := 104.9;
  Alcotest.(check (float 0.)) "still held below the mark" 105. (clock ());
  t := 106.;
  Alcotest.(check (float 0.)) "resumes once caught up" 106. (clock ());
  (* concurrent readers only ever see non-decreasing values *)
  let t2 = ref 0. in
  let clock2 = Obs.Control.monotonic_of (fun () -> !t2) in
  let violations = Atomic.make 0 in
  let threads =
    Array.init 4 (fun _ ->
        Thread.create
          (fun () ->
            let prev = ref neg_infinity in
            for _ = 1 to 10_000 do
              let v = clock2 () in
              if v < !prev then Atomic.incr violations;
              prev := v
            done)
          ())
  in
  (* a jittery base: mostly forward, occasional steps back *)
  for i = 1 to 1_000 do
    t2 := float_of_int i +. if i mod 7 = 0 then -3.5 else 0.;
    Thread.yield ()
  done;
  Array.iter Thread.join threads;
  Alcotest.(check int) "no thread ever saw time go backwards" 0
    (Atomic.get violations)

let suite =
  [
    Alcotest.test_case "counters bit-identical at jobs 1/2/4" `Quick
      test_counters_width_invariant;
    Alcotest.test_case "disabled observability is invisible" `Quick
      test_disabled_is_invisible;
    Alcotest.test_case "counter: accumulate / intern / reset" `Quick
      test_counter_unit;
    Alcotest.test_case "counter: no-op while disabled" `Quick
      test_counter_noop_when_disabled;
    Alcotest.test_case "registry: type clash rejected" `Quick
      test_registry_type_clash;
    Alcotest.test_case "gauge: last write wins" `Quick test_gauge_unit;
    Alcotest.test_case "histogram: buckets and overflow" `Quick
      test_histogram_unit;
    Alcotest.test_case "span: tree, aggregation, fake clock" `Quick
      test_span_tree_with_fake_clock;
    Alcotest.test_case "span: closes on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "control: monotonic wrapper survives backwards clock"
      `Quick test_monotonic_of_backwards_clock;
  ]
