open Testutil
module Simplex = Kregret_lp.Simplex
module Model = Kregret_lp.Model

let constr coeffs relation rhs = { Simplex.coeffs; relation; rhs }

let check_optimal msg expected = function
  | Simplex.Optimal { objective; _ } -> check_float msg expected objective
  | Simplex.Infeasible -> Alcotest.failf "%s: unexpectedly infeasible" msg
  | Simplex.Unbounded -> Alcotest.failf "%s: unexpectedly unbounded" msg

(* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> optimum 12 at (4,0) *)
let test_textbook_max () =
  let r =
    Simplex.maximize ~nvars:2 ~objective:[| 3.; 2. |]
      [ constr [| 1.; 1. |] Le 4.; constr [| 1.; 3. |] Le 6. ]
  in
  check_optimal "objective" 12. r;
  match r with
  | Simplex.Optimal { solution; _ } ->
      Alcotest.check vector "argmax" [| 4.; 0. |] solution
  | _ -> assert false

(* min x + y s.t. x + 2y >= 3, 2x + y >= 3 -> optimum 2 at (1,1) *)
let test_phase1_min () =
  let r =
    Simplex.minimize ~nvars:2 ~objective:[| 1.; 1. |]
      [ constr [| 1.; 2. |] Ge 3.; constr [| 2.; 1. |] Ge 3. ]
  in
  check_optimal "objective" 2. r

let test_equality () =
  (* min 2x + 3y s.t. x + y = 10, x <= 6 -> x=6, y=4, obj 24 *)
  let r =
    Simplex.minimize ~nvars:2 ~objective:[| 2.; 3. |]
      [ constr [| 1.; 1. |] Eq 10.; constr [| 1.; 0. |] Le 6. ]
  in
  check_optimal "objective" 24. r

let test_infeasible () =
  let r =
    Simplex.minimize ~nvars:1 ~objective:[| 1. |]
      [ constr [| 1. |] Ge 2.; constr [| 1. |] Le 1. ]
  in
  Alcotest.(check bool) "infeasible" true (r = Simplex.Infeasible)

let test_unbounded () =
  let r =
    Simplex.maximize ~nvars:2 ~objective:[| 1.; 0. |]
      [ constr [| 0.; 1. |] Le 1. ]
  in
  Alcotest.(check bool) "unbounded" true (r = Simplex.Unbounded)

let test_negative_rhs () =
  (* min x s.t. -x <= -5 (i.e. x >= 5) *)
  let r =
    Simplex.minimize ~nvars:1 ~objective:[| 1. |] [ constr [| -1. |] Le (-5.) ]
  in
  check_optimal "objective" 5. r

let test_degenerate () =
  (* Beale's-style degeneracy exercise: optimum still found. *)
  let r =
    Simplex.minimize ~nvars:4
      ~objective:[| -0.75; 150.; -0.02; 6. |]
      [
        constr [| 0.25; -60.; -0.04; 9. |] Le 0.;
        constr [| 0.5; -90.; -0.02; 3. |] Le 0.;
        constr [| 0.; 0.; 1.; 0. |] Le 1.;
      ]
  in
  check_optimal "objective" (-0.05) r

let test_redundant_equalities () =
  (* x + y = 2 stated twice: phase 1 leaves a redundant row. *)
  let r =
    Simplex.minimize ~nvars:2 ~objective:[| 1.; 2. |]
      [ constr [| 1.; 1. |] Eq 2.; constr [| 1.; 1. |] Eq 2. ]
  in
  check_optimal "objective" 2. r

(* Brute-force reference: enumerate basic solutions (vertex candidates) of
   {x >= 0, Ax <= b} in 2-D and take the best feasible one. *)
let brute_force_max_2d objective rows =
  let feasible (x, y) =
    x >= -1e-9 && y >= -1e-9
    && List.for_all (fun (a, b, c) -> (a *. x) +. (b *. y) <= c +. 1e-7) rows
  in
  let lines =
    ((1., 0., 0.) :: (0., 1., 0.) :: rows)
  in
  let candidates = ref [] in
  List.iteri
    (fun i (a1, b1, c1) ->
      List.iteri
        (fun j (a2, b2, c2) ->
          if i < j then begin
            let det = (a1 *. b2) -. (a2 *. b1) in
            if abs_float det > 1e-9 then begin
              let x = ((c1 *. b2) -. (c2 *. b1)) /. det in
              let y = ((a1 *. c2) -. (a2 *. c1)) /. det in
              (* intersection of boundary lines a.x = c *)
              if feasible (x, y) then candidates := (x, y) :: !candidates
            end
          end)
        lines)
    lines;
  List.fold_left
    (fun acc (x, y) ->
      let v = (fst objective *. x) +. (snd objective *. y) in
      match acc with Some b when b >= v -> acc | _ -> Some v)
    None !candidates

let qc_lp_2d =
  QCheck.make
    ~print:(fun (o, rows) ->
      Format.asprintf "obj=(%f,%f) rows=%s" (fst o) (snd o)
        (String.concat ";"
           (List.map (fun (a, b, c) -> Printf.sprintf "(%f,%f)<=%f" a b c) rows)))
    QCheck.Gen.(
      let coef = float_range 0.1 2. in
      pair (pair coef coef)
        (list_size (int_range 1 6) (triple coef coef (float_range 0.5 3.))))

let prop_matches_brute_force (objective, rows) =
  (* all coefficients positive, so the LP is bounded and 0 is feasible *)
  let r =
    Simplex.maximize ~nvars:2
      ~objective:[| fst objective; snd objective |]
      (List.map (fun (a, b, c) -> constr [| a; b |] Le c) rows)
  in
  match (r, brute_force_max_2d objective rows) with
  | Simplex.Optimal { objective = v; _ }, Some v' -> abs_float (v -. v') < 1e-5
  | _ -> false

let test_model_free_var () =
  (* max delta s.t. delta <= 3, delta >= -10; optimum 3 with delta free *)
  let m = Model.create () in
  let d = Model.add_free_var m ~name:"delta" in
  Model.add_le m [ (1., d) ] 3.;
  Model.add_ge m [ (1., d) ] (-10.);
  match Model.maximize m [ (1., d) ] with
  | Model.Optimal { objective; values } ->
      check_float "objective" 3. objective;
      check_float "value" 3. (values d)
  | _ -> Alcotest.fail "expected optimum"

let test_model_free_var_negative () =
  (* min delta s.t. delta >= -4 -> -4, exercising the negative side *)
  let m = Model.create () in
  let d = Model.add_free_var m ~name:"delta" in
  Model.add_ge m [ (1., d) ] (-4.);
  match Model.minimize m [ (1., d) ] with
  | Model.Optimal { objective; values } ->
      check_float "objective" (-4.) objective;
      check_float "value" (-4.) (values d)
  | _ -> Alcotest.fail "expected optimum"

let test_model_accumulates_terms () =
  (* coefficient accumulation: x + x <= 4 means 2x <= 4 *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  Model.add_le m [ (1., x); (1., x) ] 4.;
  match Model.maximize m [ (1., x) ] with
  | Model.Optimal { objective; _ } -> check_float "objective" 2. objective
  | _ -> Alcotest.fail "expected optimum"

let test_model_names () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_free_var m ~name:"y" in
  Alcotest.(check string) "x" "x" (Model.name m x);
  Alcotest.(check string) "y" "y" (Model.name m y)

let suite =
  [
    Alcotest.test_case "textbook max" `Quick test_textbook_max;
    Alcotest.test_case "phase-1 min" `Quick test_phase1_min;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
    Alcotest.test_case "degenerate pivoting" `Quick test_degenerate;
    Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
    Alcotest.test_case "model: free var" `Quick test_model_free_var;
    Alcotest.test_case "model: free var negative" `Quick test_model_free_var_negative;
    Alcotest.test_case "model: term accumulation" `Quick test_model_accumulates_terms;
    Alcotest.test_case "model: names" `Quick test_model_names;
    qcheck_case ~count:300 "2-D LP matches vertex enumeration" qc_lp_2d
      prop_matches_brute_force;
  ]

(* appended: phase-1-heavy random programs cross-checked in 2-D *)

(* reference for min c.x s.t. A x >= b, x >= 0 in 2-D by vertex enumeration *)
let brute_force_min_2d objective rows =
  let feasible (x, y) =
    x >= -1e-9 && y >= -1e-9
    && List.for_all (fun (a, b, c) -> (a *. x) +. (b *. y) >= c -. 1e-7) rows
  in
  let lines = (1., 0., 0.) :: (0., 1., 0.) :: rows in
  let best = ref None in
  List.iteri
    (fun i (a1, b1, c1) ->
      List.iteri
        (fun j (a2, b2, c2) ->
          if i < j then begin
            let det = (a1 *. b2) -. (a2 *. b1) in
            if abs_float det > 1e-9 then begin
              let x = ((c1 *. b2) -. (c2 *. b1)) /. det in
              let y = ((a1 *. c2) -. (a2 *. c1)) /. det in
              if feasible (x, y) then begin
                let v = (fst objective *. x) +. (snd objective *. y) in
                match !best with
                | Some b when b <= v -> ()
                | _ -> best := Some v
              end
            end
          end)
        lines)
    lines;
  !best

let qc_ge_lp_2d =
  QCheck.make
    ~print:(fun (o, rows) ->
      Format.asprintf "obj=(%f,%f) rows=%s" (fst o) (snd o)
        (String.concat ";"
           (List.map (fun (a, b, c) -> Printf.sprintf "(%f,%f)>=%f" a b c) rows)))
    QCheck.Gen.(
      let coef = float_range 0.1 2. in
      pair (pair coef coef)
        (list_size (int_range 1 5) (triple coef coef (float_range 0.2 1.5))))

let prop_ge_matches_brute_force (objective, rows) =
  (* positive costs and >= constraints: bounded, feasible, phase 1 required *)
  let r =
    Simplex.minimize ~nvars:2
      ~objective:[| fst objective; snd objective |]
      (List.map (fun (a, b, c) -> constr [| a; b |] Ge c) rows)
  in
  match (r, brute_force_min_2d objective rows) with
  | Simplex.Optimal { objective = v; _ }, Some v' -> abs_float (v -. v') < 1e-5
  | _ -> false

let test_mixed_relations () =
  (* min x + y s.t. x + y >= 2, x - y = 0.5, x <= 1.5: x=1.25, y=0.75 *)
  let r =
    Simplex.minimize ~nvars:2 ~objective:[| 1.; 1. |]
      [
        constr [| 1.; 1. |] Ge 2.;
        constr [| 1.; -1. |] Eq 0.5;
        constr [| 1.; 0. |] Le 1.5;
      ]
  in
  check_optimal "objective" 2. r;
  match r with
  | Simplex.Optimal { solution; _ } ->
      check_float "x" 1.25 solution.(0);
      check_float "y" 0.75 solution.(1)
  | _ -> assert false

let suite =
  suite
  @ [
      Alcotest.test_case "mixed relations" `Quick test_mixed_relations;
      qcheck_case ~count:300 "Ge-only LPs match vertex enumeration" qc_ge_lp_2d
        prop_ge_matches_brute_force;
    ]

(* appended: degenerate and pathological programs. The LP layer backs both
   the hybrid GeoGreedy fallback and Mrr.lp, so its rough edges — tied ratio
   tests, all-zero rows, stated-twice equalities, anti-cycling — get pinned
   here rather than discovered downstream. *)

let test_tied_ratio_degenerate () =
  (* entering x ties the ratio test between [x <= 1] and [x + y <= 1]; the
     pivot lands on a degenerate vertex (one basic slack at 0) and the next
     pivot must make progress anyway *)
  let r =
    Simplex.maximize ~nvars:2 ~objective:[| 2.; 1. |]
      [ constr [| 1.; 0. |] Le 1.; constr [| 1.; 1. |] Le 1. ]
  in
  check_optimal "objective" 2. r;
  match r with
  | Simplex.Optimal { solution; _ } ->
      check_float "x" 1. solution.(0);
      check_float "y" 0. solution.(1)
  | _ -> assert false

let test_all_zero_rows_redundant () =
  (* rows with an all-zero coefficient vector and a compatible rhs are
     vacuous; they must survive phase 1 as redundant rows, not crash the
     pivot selection on an empty column *)
  let r =
    Simplex.minimize ~nvars:2 ~objective:[| 1.; 1. |]
      [
        constr [| 1.; 1. |] Ge 2.;
        constr [| 0.; 0. |] Le 0.;
        constr [| 0.; 0. |] Eq 0.;
        constr [| 0.; 0. |] Ge (-1.);
      ]
  in
  check_optimal "objective" 2. r

let test_all_zero_row_infeasible_eq () =
  (* 0.x = 1 is unsatisfiable: phase 1 must report it, not "solve" it *)
  let r =
    Simplex.minimize ~nvars:1 ~objective:[| 1. |] [ constr [| 0. |] Eq 1. ]
  in
  Alcotest.(check bool) "0x = 1 infeasible" true (r = Simplex.Infeasible)

let test_all_zero_row_infeasible_le () =
  (* 0.x <= -1 normalizes to an artificial row phase 1 cannot drive out *)
  let r =
    Simplex.minimize ~nvars:1 ~objective:[| 1. |] [ constr [| 0. |] Le (-1.) ]
  in
  Alcotest.(check bool) "0x <= -1 infeasible" true (r = Simplex.Infeasible)

let test_zero_objective () =
  (* pure feasibility question: every feasible basis is optimal *)
  let r =
    Simplex.minimize ~nvars:1 ~objective:[| 0. |] [ constr [| 1. |] Ge 1. ]
  in
  check_optimal "objective" 0. r

let test_scaled_redundant_equalities () =
  (* the same hyperplane stated at two scales: rank deficiency that the
     textbook duplicate-row test (equal rows) does not exercise *)
  let r =
    Simplex.minimize ~nvars:2 ~objective:[| 1.; 2. |]
      [
        constr [| 1.; 1. |] Eq 2.;
        constr [| 2.; 2. |] Eq 4.;
        constr [| 1.; 0. |] Le 1.5;
      ]
  in
  check_optimal "objective" 2.5 r

let test_bland_terminates_on_cycling_lp () =
  (* Chvatal's classic cycling example: Dantzig's rule with naive
     tie-breaking cycles forever on this program. The Dantzig->Bland switch
     must terminate at the true optimum 1 = (1, 0, 1, 0). *)
  let r =
    Simplex.maximize ~nvars:4
      ~objective:[| 10.; -57.; -9.; -24. |]
      [
        constr [| 0.5; -5.5; -2.5; 9. |] Le 0.;
        constr [| 0.5; -1.5; -0.5; 1. |] Le 0.;
        constr [| 1.; 0.; 0.; 0. |] Le 1.;
      ]
  in
  check_optimal "objective" 1. r;
  match r with
  | Simplex.Optimal { solution; _ } ->
      Alcotest.check vector "argmax" [| 1.; 0.; 1.; 0. |] solution
  | _ -> assert false

(* The pinned corpus repros are shrunk fuzzer failures — exactly the
   degenerate geometries (duplicate points, near-ties) where the LP and the
   geometric evaluator historically diverged. Re-check their agreement on a
   realistic selection (GeoGreedy's own answer at the instance's k). *)

module Corpus = Kregret_check.Corpus
module Instance = Kregret_check.Instance
module Mrr = Kregret.Mrr
module Geo_greedy = Kregret.Geo_greedy

let test_lp_agrees_with_geometric_on_corpus () =
  let bases = Corpus.list ~dir:"corpus" in
  Alcotest.(check bool)
    (Printf.sprintf "corpus has repros (found %d)" (List.length bases))
    true
    (List.length bases >= 4);
  List.iter
    (fun base ->
      let inst = Corpus.load ~dir:"corpus" base in
      let points = inst.Instance.points in
      let k = max 1 (min inst.Instance.k (Array.length points)) in
      let r = Geo_greedy.run ~points ~k () in
      let data = Array.to_list points in
      let selected = List.map (fun i -> points.(i)) r.Geo_greedy.order in
      check_float ~eps:1e-6
        (base ^ ": Mrr.lp = Mrr.geometric")
        (Mrr.geometric ~data ~selected)
        (Mrr.lp ~data ~selected))
    bases

let suite =
  suite
  @ [
      Alcotest.test_case "tied ratio test (degenerate pivot)" `Quick
        test_tied_ratio_degenerate;
      Alcotest.test_case "all-zero rows are redundant" `Quick
        test_all_zero_rows_redundant;
      Alcotest.test_case "all-zero Eq row infeasible" `Quick
        test_all_zero_row_infeasible_eq;
      Alcotest.test_case "all-zero Le row infeasible" `Quick
        test_all_zero_row_infeasible_le;
      Alcotest.test_case "zero objective" `Quick test_zero_objective;
      Alcotest.test_case "scaled redundant equalities" `Quick
        test_scaled_redundant_equalities;
      Alcotest.test_case "Bland terminates on Chvatal's cycling LP" `Quick
        test_bland_terminates_on_cycling_lp;
      Alcotest.test_case "Mrr.lp = Mrr.geometric on pinned corpus repros"
        `Quick test_lp_agrees_with_geometric_on_corpus;
    ]
