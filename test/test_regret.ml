open Testutil
module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Mrr = Kregret.Mrr
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Stored_list = Kregret.Stored_list
module Cube = Kregret.Cube
module Query = Kregret.Query
module Toy = Kregret.Toy

let anti n d seed = Generator.anti_correlated (Rng.create seed) ~n ~d

(* --- the paper's worked example ---------------------------------------- *)

let test_toy_utilities () =
  (* Table II, spot checks *)
  let u = Toy.utility_table () in
  check_float ~eps:5e-4 "p1 f(0.3,0.7)" 0.842 u.(0).(0);
  check_float ~eps:5e-4 "p2 f(0.5,0.5)" 0.845 u.(1).(1);
  check_float ~eps:5e-4 "p4 f(0.7,0.3)" 0.916 u.(3).(2)

let test_toy_mrr () =
  (* mrr({p2, p3}) = 0.115 in the paper (rounded) *)
  let data = Array.to_list Toy.cars in
  let selected = [ Toy.cars.(1); Toy.cars.(2) ] in
  let mrr = Mrr.finite_class ~weights:Toy.weights ~data ~selected in
  check_float ~eps:5e-4 "paper's 0.115" 0.1146 mrr;
  (* and the individual regrets 0, 0.029, 0.115 *)
  check_float ~eps:5e-4 "rr f(0.3,0.7)" 0.
    (Mrr.regret_for_weight ~weight:[| 0.3; 0.7 |] ~data ~selected);
  check_float ~eps:5e-4 "rr f(0.5,0.5)" 0.0287
    (Mrr.regret_for_weight ~weight:[| 0.5; 0.5 |] ~data ~selected)

(* --- evaluator agreement ----------------------------------------------- *)

let test_evaluators_agree () =
  let ds = anti 60 3 31 in
  let data = Dataset.to_list ds in
  let selected =
    List.filteri (fun i _ -> i mod 13 = 0) data
    @ List.map (fun i -> ds.Dataset.points.(Dataset.boundary_point ds i))
        [ 0; 1; 2 ]
  in
  let g = Mrr.geometric ~data ~selected in
  let l = Mrr.lp ~data ~selected in
  check_float ~eps:float_eps "geometric = lp" l g;
  let s = Mrr.sampled ~rng:(Rng.create 1) ~samples:3000 ~data ~selected in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %.4f <= exact %.4f" s g)
    true
    (s <= g +. geom_eps);
  Alcotest.(check bool) "sampled close to exact" true (s >= g -. 0.05)

let test_geometric_without_boundary () =
  (* selection without per-dimension maxima: the exact bound logic must kick
     in; compare against LP *)
  let selected = [ [| 0.4; 0.3 |]; [| 0.25; 0.45 |] ] in
  let data = [| 1.; 1. |] :: [| 0.5; 0.2 |] :: selected in
  check_float ~eps:float_eps "agrees with LP"
    (Mrr.lp ~data ~selected)
    (Mrr.geometric ~data ~selected)

(* --- GeoGreedy vs Greedy ------------------------------------------------ *)

let test_same_answers () =
  List.iter
    (fun (n, d, k, seed) ->
      let ds = anti n d seed in
      let points = ds.Dataset.points in
      let geo = Geo_greedy.run ~points ~k () in
      let lp = Greedy_lp.run ~points ~k () in
      check_float ~eps:float_eps
        (Printf.sprintf "mrr equal (n=%d d=%d k=%d)" n d k)
        lp.Greedy_lp.mrr geo.Geo_greedy.mrr;
      Alcotest.(check (list int))
        (Printf.sprintf "same order (n=%d d=%d k=%d)" n d k)
        lp.Greedy_lp.order geo.Geo_greedy.order)
    [ (40, 2, 6, 1); (60, 3, 8, 2); (50, 4, 9, 3); (30, 5, 8, 4) ]

let test_mrr_self_consistent () =
  let ds = anti 80 3 77 in
  let points = ds.Dataset.points in
  let r = Geo_greedy.run ~points ~k:8 () in
  let selected = List.map (fun i -> points.(i)) r.Geo_greedy.order in
  check_float ~eps:float_eps "reported mrr = recomputed mrr"
    (Mrr.geometric ~data:(Array.to_list points) ~selected)
    r.Geo_greedy.mrr

let test_monotone_in_k () =
  let ds = anti 100 4 5 in
  let points = ds.Dataset.points in
  let prev = ref 1. in
  List.iter
    (fun k ->
      let r = Geo_greedy.run ~points ~k () in
      Alcotest.(check bool)
        (Printf.sprintf "mrr(k=%d) <= mrr(k-step)" k)
        true
        (r.Geo_greedy.mrr <= !prev +. geom_eps);
      prev := r.Geo_greedy.mrr)
    [ 4; 6; 8; 12; 16; 24 ]

let test_champion_cache_ablation () =
  let ds = anti 60 4 11 in
  let points = ds.Dataset.points in
  let a = Geo_greedy.run ~use_champion_cache:true ~points ~k:10 () in
  let b = Geo_greedy.run ~use_champion_cache:false ~points ~k:10 () in
  Alcotest.(check (list int)) "same selection" b.Geo_greedy.order a.Geo_greedy.order;
  check_float "same mrr" b.Geo_greedy.mrr a.Geo_greedy.mrr;
  Alcotest.(check bool)
    (Printf.sprintf "cache rescans %d < full rescans %d" a.Geo_greedy.rescans
       b.Geo_greedy.rescans)
    true
    (a.Geo_greedy.rescans < b.Geo_greedy.rescans)

let test_early_stop_zero_regret () =
  (* k >= number of extreme points: the hull closes, mrr = 0, early return *)
  let points = [| [| 1.; 0.1 |]; [| 0.1; 1. |]; [| 0.8; 0.8 |]; [| 0.5; 0.5 |] |] in
  let r = Geo_greedy.run ~points ~k:4 () in
  check_float "mrr 0" 0. r.Geo_greedy.mrr;
  Alcotest.(check bool) "selected at most 3 (hull size)" true
    (List.length r.Geo_greedy.order <= 3)

let test_k_one_dim_boundary () =
  (* k smaller than d: only the first k boundary points are taken *)
  let points = [| [| 1.; 0.1; 0.1 |]; [| 0.1; 1.; 0.1 |]; [| 0.1; 0.1; 1. |] |] in
  let r = Geo_greedy.run ~points ~k:2 () in
  Alcotest.(check int) "two seeds" 2 (List.length r.Geo_greedy.order)

let test_k_lt_d_unbounded () =
  (* Section VII: with k = 3 < d = 4 on the four near-corner points, the
     regret of even the best selection approaches 1 *)
  let delta = 0.01 in
  let corner i = Array.init 4 (fun j -> if i = j then 1. else delta) in
  let points = Array.init 4 corner in
  let r = Geo_greedy.run ~points ~k:3 () in
  Alcotest.(check bool)
    (Printf.sprintf "mrr %.3f near 1" r.Geo_greedy.mrr)
    true
    (r.Geo_greedy.mrr > 0.9)

(* --- StoredList ---------------------------------------------------------- *)

let test_stored_list_prefix_property () =
  let ds = anti 60 3 13 in
  let points = ds.Dataset.points in
  let sl = Stored_list.preprocess points in
  List.iter
    (fun k ->
      let direct = Geo_greedy.run ~points ~k () in
      Alcotest.(check (list int))
        (Printf.sprintf "prefix(k=%d) = GeoGreedy(k=%d)" k k)
        direct.Geo_greedy.order (Stored_list.query sl ~k);
      check_float ~eps:geom_eps
        (Printf.sprintf "stored mrr(k=%d)" k)
        direct.Geo_greedy.mrr (Stored_list.mrr_at sl ~k))
    [ 3; 5; 8; 12 ]

let test_stored_list_overlong_query () =
  let points = [| [| 1.; 0.1 |]; [| 0.1; 1. |]; [| 0.8; 0.8 |] |] in
  let sl = Stored_list.preprocess points in
  let all = Stored_list.query sl ~k:100 in
  Alcotest.(check int) "whole list" (Stored_list.length sl) (List.length all);
  check_float "mrr 0 at the end" 0. (Stored_list.mrr_at sl ~k:100)

(* --- Cube ---------------------------------------------------------------- *)

let test_cube_valid () =
  let ds = anti 200 3 19 in
  let points = ds.Dataset.points in
  let r = Cube.run ~points ~k:12 () in
  Alcotest.(check bool) "size within k" true (List.length r.Cube.order <= 12);
  Alcotest.(check bool) "indices distinct" true
    (let sorted = List.sort compare r.Cube.order in
     List.length (List.sort_uniq compare sorted) = List.length sorted);
  Alcotest.(check bool) "mrr in [0,1]" true (r.Cube.mrr >= 0. && r.Cube.mrr <= 1.)

let test_cube_worse_than_greedy () =
  (* not a theorem, but on anti-correlated data with moderate k the greedy
     algorithms should not lose to the grid heuristic *)
  let ds = anti 300 3 23 in
  let points = ds.Dataset.points in
  let cube = Cube.run ~points ~k:10 () in
  let geo = Geo_greedy.run ~points ~k:10 () in
  Alcotest.(check bool)
    (Printf.sprintf "geo %.4f <= cube %.4f + slack" geo.Geo_greedy.mrr cube.Cube.mrr)
    true
    (geo.Geo_greedy.mrr <= cube.Cube.mrr +. 0.02)

(* --- Query façade -------------------------------------------------------- *)

let test_query_happy_pipeline () =
  let ds = anti 150 3 29 in
  let r = Query.run ~algorithm:Query.Geo_greedy ~candidates:Query.Happy ds ~k:8 in
  Alcotest.(check bool) "candidates smaller" true
    (Dataset.size r.Query.candidates <= Dataset.size ds);
  Alcotest.(check int) "k points" 8 (List.length r.Query.selected);
  (* mrr over candidates equals mrr over the full data: boundary points are
     retained by the happy reduction *)
  check_float ~eps:float_eps "mrr vs full data"
    (Mrr.geometric ~data:(Dataset.to_list ds) ~selected:r.Query.selected)
    r.Query.mrr

let test_query_algorithms_agree () =
  let ds = anti 80 3 37 in
  let geo = Query.run ~algorithm:Query.Geo_greedy ~candidates:Query.Happy ds ~k:6 in
  let lp = Query.run ~algorithm:Query.Greedy_lp ~candidates:Query.Happy ds ~k:6 in
  let sl = Query.run ~algorithm:Query.Stored_list ~candidates:Query.Happy ds ~k:6 in
  check_float ~eps:float_eps "geo = lp" lp.Query.mrr geo.Query.mrr;
  check_float ~eps:geom_eps "geo = stored" geo.Query.mrr sl.Query.mrr;
  Alcotest.(check (list int)) "orders geo = stored" geo.Query.order sl.Query.order

let test_names () =
  Alcotest.(check string) "greedy" "Greedy" (Query.algorithm_name Query.Greedy_lp);
  Alcotest.(check string) "geo" "GeoGreedy" (Query.algorithm_name Query.Geo_greedy);
  Alcotest.(check string) "stored" "StoredList" (Query.algorithm_name Query.Stored_list);
  Alcotest.(check string) "dhappy" "Dhappy" (Query.candidate_set_name Query.Happy)

(* --- properties ----------------------------------------------------------- *)

let qc_normalized_points ~n ~d =
  QCheck.map
    (fun pts ->
      let ds =
        Dataset.normalize
          (Dataset.create ~name:"qc" (Array.of_list pts))
      in
      ds.Dataset.points)
    (qc_points ~n ~d)

let base_suite =
  [
    Alcotest.test_case "toy: Table II utilities" `Quick test_toy_utilities;
    Alcotest.test_case "toy: paper's mrr 0.115" `Quick test_toy_mrr;
    Alcotest.test_case "evaluators agree" `Quick test_evaluators_agree;
    Alcotest.test_case "geometric mrr without boundary" `Quick test_geometric_without_boundary;
    Alcotest.test_case "GeoGreedy = Greedy" `Quick test_same_answers;
    Alcotest.test_case "reported mrr is self-consistent" `Quick test_mrr_self_consistent;
    Alcotest.test_case "mrr monotone in k" `Quick test_monotone_in_k;
    Alcotest.test_case "champion cache ablation" `Quick test_champion_cache_ablation;
    Alcotest.test_case "early stop at zero regret" `Quick test_early_stop_zero_regret;
    Alcotest.test_case "k < d: boundary only" `Quick test_k_one_dim_boundary;
    Alcotest.test_case "k < d: unbounded regret (Sec VII)" `Quick test_k_lt_d_unbounded;
    Alcotest.test_case "StoredList prefix property" `Quick test_stored_list_prefix_property;
    Alcotest.test_case "StoredList overlong query" `Quick test_stored_list_overlong_query;
    Alcotest.test_case "Cube validity" `Quick test_cube_valid;
    Alcotest.test_case "Cube vs greedy quality" `Quick test_cube_worse_than_greedy;
    Alcotest.test_case "Query: happy pipeline" `Quick test_query_happy_pipeline;
    Alcotest.test_case "Query: algorithms agree" `Quick test_query_algorithms_agree;
    Alcotest.test_case "Query: names" `Quick test_names;
    qcheck_case ~count:25 "GeoGreedy mrr = Greedy mrr (random, d=3)"
      (qc_normalized_points ~n:25 ~d:3)
      (fun points ->
        let k = 5 in
        let geo = Geo_greedy.run ~points ~k () in
        let lp = Greedy_lp.run ~points ~k () in
        abs_float (geo.Geo_greedy.mrr -. lp.Greedy_lp.mrr) < float_eps);
    qcheck_case ~count:25 "selection regret vanishes on its own members"
      (qc_normalized_points ~n:20 ~d:3)
      (fun points ->
        let r = Geo_greedy.run ~points ~k:6 () in
        let selected = List.map (fun i -> points.(i)) r.Geo_greedy.order in
        Mrr.geometric ~data:selected ~selected < geom_eps);
    qcheck_case ~count:15 "sampling never exceeds exact mrr"
      (qc_normalized_points ~n:20 ~d:4)
      (fun points ->
        let r = Geo_greedy.run ~points ~k:6 () in
        let selected = List.map (fun i -> points.(i)) r.Geo_greedy.order in
        let data = Array.to_list points in
        let exact = Mrr.geometric ~data ~selected in
        let approx =
          Mrr.sampled ~rng:(Rng.create 2) ~samples:500 ~data ~selected
        in
        approx <= exact +. geom_eps);
  ]

(* --- StoredList persistence ---------------------------------------------- *)

let test_stored_list_roundtrip () =
  let ds = anti 50 3 41 in
  let points = ds.Dataset.points in
  let sl = Stored_list.preprocess points in
  let path = Filename.temp_file "kregret" ".list" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Stored_list.save sl ~points path;
      let back = Stored_list.load ~points path in
      Alcotest.(check (list int)) "same order" (Stored_list.order sl)
        (Stored_list.order back);
      List.iter
        (fun k ->
          check_float ~eps:0. "same mrr" (Stored_list.mrr_at sl ~k)
            (Stored_list.mrr_at back ~k))
        [ 3; 7; 12 ])

let test_stored_list_fingerprint_guard () =
  let ds = anti 30 3 43 in
  let points = ds.Dataset.points in
  let sl = Stored_list.preprocess points in
  let path = Filename.temp_file "kregret" ".list" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Stored_list.save sl ~points path;
      let other = (anti 30 3 44).Dataset.points in
      Alcotest.(check bool) "mismatch detected" true
        (try
           ignore (Stored_list.load ~points:other path);
           false
         with Failure _ -> true))

let persistence_cases =
  [
    Alcotest.test_case "StoredList save/load roundtrip" `Quick test_stored_list_roundtrip;
    Alcotest.test_case "StoredList fingerprint guard" `Quick test_stored_list_fingerprint_guard;
  ]


(* --- hybrid LP fallback ---------------------------------------------------- *)

let test_hybrid_identical_results () =
  List.iter
    (fun (n, d, k, seed) ->
      let points = (anti n d seed).Dataset.points in
      let pure = Geo_greedy.run ~points ~k () in
      (* a tiny vertex budget forces the fallback almost immediately *)
      let hybrid = Geo_greedy.run ~max_dual_vertices:1 ~points ~k () in
      Alcotest.(check bool) "fallback engaged" true
        (hybrid.Geo_greedy.lp_fallback_at <> None);
      Alcotest.(check (list int))
        (Printf.sprintf "same order (n=%d d=%d k=%d)" n d k)
        pure.Geo_greedy.order hybrid.Geo_greedy.order;
      check_float ~eps:float_eps "same mrr" pure.Geo_greedy.mrr hybrid.Geo_greedy.mrr)
    [ (50, 3, 8, 61); (40, 4, 9, 62); (60, 2, 6, 63) ]

let test_hybrid_not_engaged_when_roomy () =
  let points = (anti 40 3 64).Dataset.points in
  let r = Geo_greedy.run ~max_dual_vertices:1_000_000 ~points ~k:8 () in
  Alcotest.(check bool) "no fallback" true (r.Geo_greedy.lp_fallback_at = None)

let test_hybrid_stored_list_compatible () =
  (* on_step still fires during the LP phase, so StoredList prefixes built
     through a hybrid run stay correct *)
  let points = (anti 30 3 65).Dataset.points in
  let table = ref [] in
  let _ =
    Geo_greedy.run ~max_dual_vertices:1
      ~on_step:(fun ~size ~mrr -> table := (size, mrr) :: !table)
      ~points ~k:10 ()
  in
  List.iter
    (fun (size, mrr) ->
      let direct = Geo_greedy.run ~points ~k:size () in
      if List.length direct.Geo_greedy.order = size then
        check_float ~eps:float_eps
          (Printf.sprintf "prefix mrr at size %d" size)
          direct.Geo_greedy.mrr mrr)
    !table

let hybrid_cases =
  [
    Alcotest.test_case "hybrid = pure (order and mrr)" `Quick test_hybrid_identical_results;
    Alcotest.test_case "hybrid: stays geometric when roomy" `Quick test_hybrid_not_engaged_when_roomy;
    Alcotest.test_case "hybrid: on_step prefixes correct" `Quick test_hybrid_stored_list_compatible;
  ]

let suite = base_suite @ persistence_cases @ hybrid_cases
