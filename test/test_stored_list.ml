(* Dedicated StoredList coverage (satellite of the fuzzing PR): the prefix
   property against fresh GeoGreedy runs, clamping when k exceeds the
   materialized list / the happy-point count, and idempotence of repeated
   queries. test_regret.ml already spot-checks save/load; this suite pins
   the query-phase semantics the paper sells ("O(k) per query"). *)

open Testutil
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Geo_greedy = Kregret.Geo_greedy
module Stored_list = Kregret.Stored_list
module Happy = Kregret_happy.Happy

let anti n d seed = Generator.anti_correlated (Rng.create seed) ~n ~d

let prefix_of ~prefix full =
  let rec go p f =
    match (p, f) with
    | [], _ -> true
    | _, [] -> false
    | x :: p', y :: f' -> x = y && go p' f'
  in
  go prefix full

let test_prefix_property () =
  (* answer k = first k of the full materialization = GeoGreedy's own order
     at that k, for every k up to the list length *)
  let ds = anti 80 4 11 in
  let happy = Happy.of_dataset ds in
  let points = happy.Dataset.points in
  let sl = Stored_list.preprocess points in
  let full = Stored_list.order sl in
  for k = 1 to Stored_list.length sl do
    let ans = Stored_list.query sl ~k in
    Alcotest.(check int)
      (Printf.sprintf "k=%d answer length" k)
      (min k (Stored_list.length sl))
      (List.length ans);
    Alcotest.(check bool)
      (Printf.sprintf "k=%d answer is a prefix of the list" k)
      true
      (prefix_of ~prefix:ans full);
    let direct = Geo_greedy.run ~points ~k () in
    Alcotest.(check (list int))
      (Printf.sprintf "k=%d matches a fresh GeoGreedy run" k)
      direct.Geo_greedy.order ans;
    check_float
      (Printf.sprintf "k=%d mrr matches" k)
      direct.Geo_greedy.mrr
      (Stored_list.mrr_at sl ~k)
  done

let test_clamp_beyond_length () =
  (* k past the materialized length returns the whole list, with mrr equal
     to the final prefix's — no exception, no padding *)
  let ds = anti 40 3 7 in
  let happy = Happy.of_dataset ds in
  let points = happy.Dataset.points in
  let sl = Stored_list.preprocess points in
  let len = Stored_list.length sl in
  Alcotest.(check bool) "list no longer than candidates" true
    (len <= Array.length points);
  let whole = Stored_list.query sl ~k:(len + 50) in
  Alcotest.(check (list int)) "k > length returns the whole list"
    (Stored_list.order sl) whole;
  check_float "mrr clamps with it"
    (Stored_list.mrr_at sl ~k:len)
    (Stored_list.mrr_at sl ~k:(len + 50))

let test_max_length_truncation () =
  (* a deployment that knows its largest k can stop materializing there;
     prefixes below the cut are unchanged *)
  let ds = anti 60 4 13 in
  let happy = Happy.of_dataset ds in
  let points = happy.Dataset.points in
  let full = Stored_list.preprocess points in
  let cut = 5 in
  let truncated = Stored_list.preprocess ~max_length:cut points in
  Alcotest.(check bool) "truncated list is short" true
    (Stored_list.length truncated <= cut);
  Alcotest.(check (list int)) "truncation preserves the prefix"
    (Stored_list.query full ~k:(Stored_list.length truncated))
    (Stored_list.order truncated)

let test_query_idempotent () =
  (* queries are pure reads: asking twice (and interleaving other ks) gives
     bit-identical answers *)
  let ds = anti 50 3 17 in
  let happy = Happy.of_dataset ds in
  let sl = Stored_list.preprocess happy.Dataset.points in
  let k = min 4 (Stored_list.length sl) in
  let a = Stored_list.query sl ~k in
  let _noise = Stored_list.query sl ~k:1 in
  let _noise2 = Stored_list.query sl ~k:(Stored_list.length sl) in
  let b = Stored_list.query sl ~k in
  Alcotest.(check (list int)) "same answer on repeat" a b;
  check_float ~eps:0. "same mrr on repeat"
    (Stored_list.mrr_at sl ~k)
    (Stored_list.mrr_at sl ~k)

let test_singleton () =
  let sl = Stored_list.preprocess [| [| 1.0; 1.0 |] |] in
  Alcotest.(check (list int)) "singleton list" [ 0 ] (Stored_list.order sl);
  check_float "mrr 0 immediately" 0. (Stored_list.mrr_at sl ~k:1)

(* ---- load failure modes (regressions for the defensive parser) ---------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let with_tmp lines f =
  let path = Filename.temp_file "kregret_sl" ".list" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      f path)

let expect_load_failure ~what ~needle points lines =
  with_tmp lines (fun path ->
      match Stored_list.load ~points path with
      | _ -> Alcotest.failf "%s: load unexpectedly succeeded" what
      | exception Failure msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S names the failure (%S)" what msg needle)
            true
            (contains ~needle msg))

(* a tiny candidate set plus the exact lines [save] emits for it *)
let saved_lines () =
  let points = (Happy.of_dataset (anti 30 3 23)).Dataset.points in
  let sl = Stored_list.preprocess points in
  let lines =
    with_tmp [] (fun path ->
        Stored_list.save sl ~points path;
        let ic = open_in path in
        let out = ref [] in
        (try
           while true do
             out := input_line ic :: !out
           done
         with End_of_file -> close_in ic);
        List.rev !out)
  in
  (points, lines)

let test_load_roundtrip () =
  let points, lines = saved_lines () in
  with_tmp lines (fun path ->
      let sl = Stored_list.load ~points path in
      let fresh = Stored_list.preprocess points in
      Alcotest.(check (list int))
        "round-trip preserves the order" (Stored_list.order fresh)
        (Stored_list.order sl))

let test_load_header_failures () =
  let points, lines = saved_lines () in
  let body = List.tl lines in
  (* the three header modes must produce three *different* diagnoses *)
  expect_load_failure ~what:"wrong count" ~needle:"candidate count mismatch"
    points
    (Printf.sprintf "# kregret-stored-list v1 n=%d fp=0123456789abcdef"
       (Array.length points + 1)
    :: body);
  expect_load_failure ~what:"wrong version" ~needle:"unsupported format version"
    points
    (Printf.sprintf "# kregret-stored-list v2 n=%d fp=0123456789abcdef"
       (Array.length points)
    :: body);
  expect_load_failure ~what:"wrong fingerprint" ~needle:"fingerprint mismatch"
    points
    (Printf.sprintf "# kregret-stored-list v1 n=%d fp=0123456789abcdef"
       (Array.length points)
    :: body);
  expect_load_failure ~what:"not a list" ~needle:"not a stored-list file"
    points ("x,y,z" :: body);
  expect_load_failure ~what:"empty file" ~needle:"empty file" points []

let test_load_body_failures () =
  let points, lines = saved_lines () in
  let header = List.hd lines and body = List.tl lines in
  (* the old parser treated a truncated "<index>" line as end-of-input and
     silently returned only the entries before it — this is the satellite's
     headline regression *)
  expect_load_failure ~what:"truncated line" ~needle:"truncated entry" points
    ((header :: body) @ [ "5" ]);
  expect_load_failure ~what:"malformed line" ~needle:"malformed entry" points
    ((header :: body) @ [ "five 0.25" ]);
  expect_load_failure ~what:"trailing garbage" ~needle:"trailing garbage"
    points
    ((header :: body) @ [ "0 0.25 junk" ]);
  expect_load_failure ~what:"index out of range" ~needle:"out of range" points
    ((header :: body) @ [ Printf.sprintf "%d 0.25" (Array.length points) ]);
  expect_load_failure ~what:"negative index" ~needle:"out of range" points
    ((header :: body) @ [ "-1 0.25" ]);
  (* Scanf's %f refuses the token "nan", so a NaN entry is rejected at the
     parse level as malformed (the explicit is_nan guard in [load] covers
     any float syntax %f does accept) *)
  expect_load_failure ~what:"NaN mrr rejected" ~needle:"entry" points
    ((header :: body) @ [ "0 nan" ])

let suite =
  [
    Alcotest.test_case "prefix property vs fresh GeoGreedy runs" `Quick
      test_prefix_property;
    Alcotest.test_case "k beyond the list clamps" `Quick
      test_clamp_beyond_length;
    Alcotest.test_case "max_length truncates without changing the prefix"
      `Quick test_max_length_truncation;
    Alcotest.test_case "queries are idempotent" `Quick test_query_idempotent;
    Alcotest.test_case "singleton candidate set" `Quick test_singleton;
    Alcotest.test_case "save/load round-trips" `Quick test_load_roundtrip;
    Alcotest.test_case "load names each header failure mode" `Quick
      test_load_header_failures;
    Alcotest.test_case "load rejects truncated and malformed entries" `Quick
      test_load_body_failures;
  ]
