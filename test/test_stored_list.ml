(* Dedicated StoredList coverage (satellite of the fuzzing PR): the prefix
   property against fresh GeoGreedy runs, clamping when k exceeds the
   materialized list / the happy-point count, and idempotence of repeated
   queries. test_regret.ml already spot-checks save/load; this suite pins
   the query-phase semantics the paper sells ("O(k) per query"). *)

open Testutil
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Geo_greedy = Kregret.Geo_greedy
module Stored_list = Kregret.Stored_list
module Happy = Kregret_happy.Happy

let anti n d seed = Generator.anti_correlated (Rng.create seed) ~n ~d

let prefix_of ~prefix full =
  let rec go p f =
    match (p, f) with
    | [], _ -> true
    | _, [] -> false
    | x :: p', y :: f' -> x = y && go p' f'
  in
  go prefix full

let test_prefix_property () =
  (* answer k = first k of the full materialization = GeoGreedy's own order
     at that k, for every k up to the list length *)
  let ds = anti 80 4 11 in
  let happy = Happy.of_dataset ds in
  let points = happy.Dataset.points in
  let sl = Stored_list.preprocess points in
  let full = Stored_list.order sl in
  for k = 1 to Stored_list.length sl do
    let ans = Stored_list.query sl ~k in
    Alcotest.(check int)
      (Printf.sprintf "k=%d answer length" k)
      (min k (Stored_list.length sl))
      (List.length ans);
    Alcotest.(check bool)
      (Printf.sprintf "k=%d answer is a prefix of the list" k)
      true
      (prefix_of ~prefix:ans full);
    let direct = Geo_greedy.run ~points ~k () in
    Alcotest.(check (list int))
      (Printf.sprintf "k=%d matches a fresh GeoGreedy run" k)
      direct.Geo_greedy.order ans;
    check_float
      (Printf.sprintf "k=%d mrr matches" k)
      direct.Geo_greedy.mrr
      (Stored_list.mrr_at sl ~k)
  done

let test_clamp_beyond_length () =
  (* k past the materialized length returns the whole list, with mrr equal
     to the final prefix's — no exception, no padding *)
  let ds = anti 40 3 7 in
  let happy = Happy.of_dataset ds in
  let points = happy.Dataset.points in
  let sl = Stored_list.preprocess points in
  let len = Stored_list.length sl in
  Alcotest.(check bool) "list no longer than candidates" true
    (len <= Array.length points);
  let whole = Stored_list.query sl ~k:(len + 50) in
  Alcotest.(check (list int)) "k > length returns the whole list"
    (Stored_list.order sl) whole;
  check_float "mrr clamps with it"
    (Stored_list.mrr_at sl ~k:len)
    (Stored_list.mrr_at sl ~k:(len + 50))

let test_max_length_truncation () =
  (* a deployment that knows its largest k can stop materializing there;
     prefixes below the cut are unchanged *)
  let ds = anti 60 4 13 in
  let happy = Happy.of_dataset ds in
  let points = happy.Dataset.points in
  let full = Stored_list.preprocess points in
  let cut = 5 in
  let truncated = Stored_list.preprocess ~max_length:cut points in
  Alcotest.(check bool) "truncated list is short" true
    (Stored_list.length truncated <= cut);
  Alcotest.(check (list int)) "truncation preserves the prefix"
    (Stored_list.query full ~k:(Stored_list.length truncated))
    (Stored_list.order truncated)

let test_query_idempotent () =
  (* queries are pure reads: asking twice (and interleaving other ks) gives
     bit-identical answers *)
  let ds = anti 50 3 17 in
  let happy = Happy.of_dataset ds in
  let sl = Stored_list.preprocess happy.Dataset.points in
  let k = min 4 (Stored_list.length sl) in
  let a = Stored_list.query sl ~k in
  let _noise = Stored_list.query sl ~k:1 in
  let _noise2 = Stored_list.query sl ~k:(Stored_list.length sl) in
  let b = Stored_list.query sl ~k in
  Alcotest.(check (list int)) "same answer on repeat" a b;
  check_float ~eps:0. "same mrr on repeat"
    (Stored_list.mrr_at sl ~k)
    (Stored_list.mrr_at sl ~k)

let test_singleton () =
  let sl = Stored_list.preprocess [| [| 1.0; 1.0 |] |] in
  Alcotest.(check (list int)) "singleton list" [ 0 ] (Stored_list.order sl);
  check_float "mrr 0 immediately" 0. (Stored_list.mrr_at sl ~k:1)

let suite =
  [
    Alcotest.test_case "prefix property vs fresh GeoGreedy runs" `Quick
      test_prefix_property;
    Alcotest.test_case "k beyond the list clamps" `Quick
      test_clamp_beyond_length;
    Alcotest.test_case "max_length truncates without changing the prefix"
      `Quick test_max_length_truncation;
    Alcotest.test_case "queries are idempotent" `Quick test_query_idempotent;
    Alcotest.test_case "singleton candidate set" `Quick test_singleton;
  ]
