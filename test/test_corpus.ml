(* Corpus replay: every shrunk repro the fuzzer ever persisted to
   test/corpus/ is re-checked against the full differential oracle on every
   test run. A failure here means a previously-caught bug regressed.

   The corpus directory is attached to the test's dune dependencies via
   (source_tree corpus), so the files are visible from the sandboxed test
   cwd. *)

module Corpus = Kregret_check.Corpus
module Fuzzer = Kregret_check.Fuzzer
module Oracle = Kregret_check.Oracle
module Instance = Kregret_check.Instance

let corpus_dir = "corpus"

let replay_case base =
  Alcotest.test_case base `Quick (fun () ->
      match Fuzzer.replay ~dir:corpus_dir base with
      | [] -> ()
      | failures ->
          Alcotest.failf "repro %s regressed:@.%s" base
            (String.concat "\n"
               (List.map
                  (fun f -> Format.asprintf "  %a" Oracle.pp_failure f)
                  failures)))

let test_corpus_not_empty () =
  (* the pinned seeds must be present: an empty corpus here would mean the
     replay suite silently checks nothing *)
  let bases = Corpus.list ~dir:corpus_dir in
  Alcotest.(check bool)
    (Printf.sprintf "corpus has pinned repros (found %d)" (List.length bases))
    true
    (List.length bases >= 6)

let test_metadata_readable () =
  List.iter
    (fun base ->
      let inst = Corpus.load ~dir:corpus_dir base in
      Alcotest.(check bool)
        (base ^ ": positive k")
        true (inst.Instance.k >= 1);
      Alcotest.(check bool)
        (base ^ ": d >= 2")
        true
        (Instance.d inst >= 2);
      Alcotest.(check bool)
        (base ^ ": records violated checks")
        true
        (Corpus.failing_checks ~dir:corpus_dir base <> []))
    (Corpus.list ~dir:corpus_dir)

let suite =
  Alcotest.test_case "corpus present" `Quick test_corpus_not_empty
  :: Alcotest.test_case "metadata readable" `Quick test_metadata_readable
  :: List.map replay_case (Corpus.list ~dir:corpus_dir)
