(* Unit tests for the rank-regret engine (lib/rrr) and its serving path —
   the deterministic complement to the fuzzer's `--check rrr` suite
   (lib/check/rrr_oracle.ml):

   - the certified lo bound is monotone non-increasing along greedy
     prefixes (hi is NOT monotone and is deliberately never asserted so);
   - the whole skyline has max rank 1;
   - d = 2 answers are exact and dominate dense direction sampling;
   - degenerate inputs (duplicates, score ties, collinear rows) keep
     every certificate well-formed;
   - answers are bit-identical across pool widths and across max_size
     (greedy prefix stability);
   - the served rank_regret verb is bit-identical to the offline engine
     over a live socket (solo and sharded), and the result cache never
     hands one verb kind's row to another verb at equal
     (fingerprint, shards, approx, epoch, k). *)

module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Csv_io = Kregret_dataset.Csv_io
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Mrr = Kregret.Mrr
module Pool = Kregret_parallel.Pool
module Rrr = Kregret_rrr.Rrr
module Serve = Kregret_serve
module Client = Serve.Client
module Server = Serve.Server
module Json = Serve.Json

let tol = Kregret_check.Tolerance.tie

let with_jobs jobs f =
  let before = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs before) f

let points_of ~n ~d ~seed =
  let st = Testutil.test_rng seed in
  Array.init n (fun _ -> Testutil.random_point st d)

(* structural sanity shared by every test: certificates are well-formed *)
let check_well_formed ~n (b : Rrr.rank) =
  Alcotest.(check bool) "1 <= lo" true (1 <= b.Rrr.lo);
  Alcotest.(check bool) "lo <= hi" true (b.Rrr.lo <= b.Rrr.hi);
  Alcotest.(check bool) "hi <= n" true (b.Rrr.hi <= n);
  Alcotest.(check bool) "exact iff lo = hi" (b.Rrr.lo = b.Rrr.hi) b.Rrr.exact

(* ---- lo monotonicity ------------------------------------------------------ *)

let check_lo_monotone ~d ~n ~seed () =
  let points = points_of ~n ~d ~seed in
  let eng = Rrr.build points in
  let bounds = Rrr.bounds eng in
  Alcotest.(check bool) "at least one prefix" true (Array.length bounds >= 1);
  Array.iter (check_well_formed ~n) bounds;
  for i = 1 to Array.length bounds - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "lo non-increasing at prefix %d" (i + 1))
      true
      (bounds.(i).Rrr.lo <= bounds.(i - 1).Rrr.lo)
  done;
  if d <= 2 then
    Array.iteri
      (fun i b ->
        Alcotest.(check bool)
          (Printf.sprintf "d=2 prefix %d exact" (i + 1))
          true b.Rrr.exact)
      bounds

(* ---- whole skyline => rank 1 ---------------------------------------------- *)

(* realized rank of [set] under [w], counting only beats clear of the tie
   tolerance — a lower bound on the exact-arithmetic rank, so it can
   never exceed the engine's certified max rank. *)
let sampled_rank ~points ~set w =
  let best = ref neg_infinity in
  Array.iter
    (fun s ->
      let v = Vector.dot w points.(s) in
      if v > !best then best := v)
    set;
  let c = ref 0 in
  Array.iter (fun q -> if Vector.dot w q > !best +. tol then incr c) points;
  1 + !c

(* Every preference's maximum score is attained on the skyline (a
   maximizer's dominator scores at least as much under w >= 0), so
   nothing strictly outranks the whole skyline anywhere. No such claim
   holds for the happy set — subjugation only bounds scores against the
   virtual corners, so a non-happy skyline point can be the strict top-1
   of some direction by a real margin (observed: 6e-3 on the d=2 seed-5
   instance below) — which is exactly why the engine's candidate pool is
   the skyline, not GeoGreedy's happy funnel. *)
let test_whole_skyline () =
  List.iter
    (fun (d, n, seed) ->
      let points = points_of ~n ~d ~seed in
      let sky = Skyline.naive points in
      let r = Rrr.max_rank ~points sky in
      check_well_formed ~n r;
      Alcotest.(check int)
        (Printf.sprintf "d=%d: whole skyline realizes rank 1" d)
        1 r.Rrr.lo;
      if d <= 2 then
        Alcotest.(check int) "d=2: whole skyline hi = 1" 1 r.Rrr.hi)
    [ (2, 80, 5); (3, 60, 6); (4, 50, 7) ]

(* ...and the non-claim is real: on that instance the happy funnel
   strictly loses rank 1 — pinning the reason the pools differ. *)
let test_happy_not_rank_complete () =
  let points = points_of ~n:80 ~d:2 ~seed:5 in
  let sky = Skyline.naive points in
  let sky_rows = Array.map (fun i -> points.(i)) sky in
  let happy = Array.map (fun i -> sky.(i)) (Happy.happy_points sky_rows) in
  if Array.length happy = Array.length sky then
    Alcotest.fail "fixture lost its dropped-but-rank-relevant point";
  let r = Rrr.max_rank ~points happy in
  Alcotest.(check bool) "happy funnel loses rank 1" true (r.Rrr.lo > 1)

(* ---- d = 2: exact, and sampling never beats the certificate --------------- *)

let test_d2_exact_vs_sampled () =
  let points = points_of ~n:120 ~d:2 ~seed:13 in
  let n = Array.length points in
  let eng = Rrr.build points in
  let order = Rrr.order eng in
  let bounds = Rrr.bounds eng in
  let rng = Rng.create 2014 in
  Array.iteri
    (fun i b ->
      Alcotest.(check bool)
        (Printf.sprintf "prefix %d exact" (i + 1))
        true
        (b.Rrr.exact && b.Rrr.lo = b.Rrr.hi);
      check_well_formed ~n b;
      let set = Array.sub order 0 (i + 1) in
      (* the witness itself realizes the certificate (up to ties) *)
      Alcotest.(check bool)
        (Printf.sprintf "prefix %d witness rank <= lo" (i + 1))
        true
        (sampled_rank ~points ~set b.Rrr.witness <= b.Rrr.lo);
      for _ = 1 to 100 do
        let w = Mrr.random_direction rng 2 in
        let r = sampled_rank ~points ~set w in
        if r > b.Rrr.lo then
          Alcotest.failf "prefix %d: sampled rank %d beats exact max %d" (i + 1)
            r b.Rrr.lo
      done)
    bounds

(* ---- degenerate inputs ---------------------------------------------------- *)

let test_degenerate_duplicates () =
  (* duplicates never outrank each other (strict tie rule): a lone point
     copied n times has max rank exactly 1 *)
  List.iter
    (fun d ->
      let p = Array.init d (fun i -> 0.3 +. (0.1 *. float_of_int i)) in
      let points = Array.make 9 p in
      let r = Rrr.max_rank ~points [| 0 |] in
      check_well_formed ~n:9 r;
      Alcotest.(check int)
        (Printf.sprintf "d=%d: duplicated singleton lo = 1" d)
        1 r.Rrr.lo;
      if d <= 2 then
        Alcotest.(check int) "d=2: duplicated singleton hi = 1" 1 r.Rrr.hi;
      let eng = Rrr.build points in
      Alcotest.(check bool) "build on all-duplicates" true (Rrr.size eng >= 1);
      Array.iter (check_well_formed ~n:9) (Rrr.bounds eng))
    [ 2; 3 ]

let test_degenerate_collinear () =
  (* collinear d=2 rows on x + y = 1: every point ties under (1/2, 1/2),
     crossings pile on shared t* values *)
  let points =
    Array.init 11 (fun i ->
        let x = 0.05 +. (0.09 *. float_of_int i) in
        [| x; 1.0 -. x |])
  in
  let n = Array.length points in
  let eng = Rrr.build points in
  let bounds = Rrr.bounds eng in
  Array.iter
    (fun b ->
      check_well_formed ~n b;
      Alcotest.(check bool) "collinear: exact" true b.Rrr.exact)
    bounds;
  (* the final greedy prefix drives the bound to 1 (all candidates are
     the happy set, and the whole happy set has rank 1) *)
  let last = bounds.(Array.length bounds - 1) in
  Alcotest.(check int) "collinear: final prefix rank 1" 1 last.Rrr.lo;
  Alcotest.(check int) "collinear: final prefix hi 1" 1 last.Rrr.hi

let test_degenerate_axis_ties () =
  (* shared coordinates: beat predicates degenerate to Constant on one
     axis; the sweep's equal-t event batching is on the other *)
  let points =
    [|
      [| 0.5; 0.9 |]; [| 0.5; 0.7 |]; [| 0.5; 0.5 |]; [| 0.9; 0.5 |];
      [| 0.7; 0.5 |]; [| 0.3; 0.3 |]; [| 0.5; 0.9 |];
    |]
  in
  let n = Array.length points in
  let eng = Rrr.build points in
  Array.iter
    (fun b ->
      check_well_formed ~n b;
      Alcotest.(check bool) "axis ties: exact" true b.Rrr.exact)
    (Rrr.bounds eng)

let test_single_point () =
  let points = [| [| 0.4; 0.6; 0.2 |] |] in
  let r = Rrr.max_rank ~points [| 0 |] in
  Alcotest.(check int) "n=1 lo" 1 r.Rrr.lo;
  Alcotest.(check int) "n=1 hi" 1 r.Rrr.hi;
  Alcotest.(check bool) "n=1 exact" true r.Rrr.exact

let test_invalid_args () =
  let points = points_of ~n:5 ~d:2 ~seed:3 in
  Alcotest.check_raises "empty set" (Invalid_argument "Rrr: empty member set")
    (fun () -> ignore (Rrr.max_rank ~points [||]));
  let eng = Rrr.build points in
  Alcotest.check_raises "k < 1" (Invalid_argument "Rrr.query: k must be positive")
    (fun () -> ignore (Rrr.query eng ~k:0))

(* ---- determinism: pool widths and prefix stability ------------------------ *)

let rank_bits (b : Rrr.rank) =
  ( b.Rrr.lo,
    b.Rrr.hi,
    b.Rrr.exact,
    Array.map Int64.bits_of_float b.Rrr.witness )

let test_pool_width_bit_identity () =
  let points = points_of ~n:100 ~d:4 ~seed:17 in
  let reference = with_jobs 1 (fun () -> Rrr.build points) in
  let ref_order = Rrr.order reference in
  let ref_bounds = Array.map rank_bits (Rrr.bounds reference) in
  List.iter
    (fun jobs ->
      let eng = with_jobs jobs (fun () -> Rrr.build points) in
      Alcotest.(check (array int))
        (Printf.sprintf "order identical at jobs=%d" jobs)
        ref_order (Rrr.order eng);
      let bounds = Array.map rank_bits (Rrr.bounds eng) in
      Alcotest.(check int)
        (Printf.sprintf "prefix count at jobs=%d" jobs)
        (Array.length ref_bounds) (Array.length bounds);
      Array.iteri
        (fun i (lo, hi, ex, w) ->
          let lo', hi', ex', w' = bounds.(i) in
          Alcotest.(check int) "lo bits" lo lo';
          Alcotest.(check int) "hi bits" hi hi';
          Alcotest.(check bool) "exact bits" ex ex';
          Alcotest.(check (array int64))
            (Printf.sprintf "witness bits at prefix %d, jobs=%d" (i + 1) jobs)
            w w')
        ref_bounds)
    [ 2; 4 ]

let test_prefix_stability () =
  let points = points_of ~n:80 ~d:3 ~seed:29 in
  let big = Rrr.build ~max_size:8 points in
  let small = Rrr.build ~max_size:3 points in
  let take = Rrr.size small in
  Alcotest.(check bool) "small build nonempty" true (take >= 1);
  Alcotest.(check (array int)) "greedy prefix stable"
    (Array.sub (Rrr.order big) 0 take)
    (Rrr.order small);
  for i = 0 to take - 1 do
    let a = rank_bits (Rrr.bounds big).(i)
    and b = rank_bits (Rrr.bounds small).(i) in
    Alcotest.(check bool)
      (Printf.sprintf "bounds bit-identical at prefix %d" (i + 1))
      true (a = b)
  done

(* ---- serving: wire bit-identity and cache kind isolation ------------------ *)

let write_csv ~name ~n ~d ~seed =
  let st = Testutil.test_rng seed in
  let points = Array.init n (fun _ -> Testutil.random_point st d) in
  let path = Filename.temp_file "kregret_rrr_test" ".csv" in
  Csv_io.save path (Dataset.create ~name points);
  path

let with_server ?cache_capacity f =
  let socket_path = Server.temp_socket_path () in
  let server =
    Server.start_exn (Server.config ?cache_capacity ~socket_path ())
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () ->
      f ~socket_path server)

let with_client ~socket_path f =
  match Client.connect ~socket_path () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let or_fail what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let load_and_wait ?shards c ~name ~path =
  ignore (or_fail "load" (Client.load ?shards c ~name ~path));
  or_fail "wait_ready" (Client.wait_ready c ~name)

(* the registry's solo backend on a fresh dataset: normalized rows in
   file order — the offline engine over them is the wire reference *)
let offline_engine path ~k =
  let ds = Dataset.normalize (Csv_io.load path) in
  Rrr.build ~max_size:k ds.Dataset.points

let check_wire ~what eng ~k (sel, lo, hi, exact) =
  let sel_ref, rank_ref = Rrr.query eng ~k in
  Alcotest.(check (list int)) (what ^ ": selection") sel_ref sel;
  Alcotest.(check int) (what ^ ": rank_lo") rank_ref.Rrr.lo lo;
  Alcotest.(check int) (what ^ ": rank_hi") rank_ref.Rrr.hi hi;
  Alcotest.(check bool) (what ^ ": exact") rank_ref.Rrr.exact exact

let test_serve_bit_identical () =
  let path = write_csv ~name:"rrr-e2e" ~n:90 ~d:3 ~seed:41 in
  let k_hi = 6 in
  let eng = offline_engine path ~k:k_hi in
  with_server ~cache_capacity:64 (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          load_and_wait c ~name:"solo" ~path;
          load_and_wait ~shards:3 c ~name:"sharded" ~path;
          for k = 1 to k_hi do
            (* solo: cold, then the cached row is the same bits *)
            let a = or_fail "rank_regret" (Client.rank_regret c ~name:"solo" ~k) in
            check_wire ~what:(Printf.sprintf "solo k=%d" k) eng ~k a;
            let a' =
              or_fail "rank_regret warm" (Client.rank_regret c ~name:"solo" ~k)
            in
            Alcotest.(check bool)
              (Printf.sprintf "solo k=%d warm identical" k)
              true (a = a');
            (* sharded: the scatter-gather tier answers with the same bits *)
            let b =
              or_fail "rank_regret sharded"
                (Client.rank_regret c ~name:"sharded" ~k)
            in
            check_wire ~what:(Printf.sprintf "sharded k=%d" k) eng ~k b
          done))

(* raw-frame probe: issue one verb and read the response's cached flag *)
let probe c ~op ~name ~k =
  let frame =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str op); ("name", Json.Str name); ("k", Json.int k) ])
  in
  let j = or_fail op (Client.request c frame) in
  (match Option.bind (Json.member "ok" j) Json.to_bool with
  | Some true -> ()
  | _ -> Alcotest.failf "%s: not ok: %s" op (Json.to_string j));
  match Option.bind (Json.member "cached" j) Json.to_bool with
  | Some b -> (j, b)
  | None -> Alcotest.failf "%s: response has no cached flag" op

(* The cache-key regression (the PR 4 cross-k lesson, one key dimension
   later): for every ordered pair of verbs, equal
   (fingerprint, shards, approx, epoch, k) with a different kind must MISS.
   Verbs run against one live server; evict purges the fingerprint's rows
   between pairs, so each pair starts from a cold cache. *)
let test_cache_kind_isolation () =
  let path = write_csv ~name:"rrr-kinds" ~n:60 ~d:3 ~seed:53 in
  let k = 2 in
  let eng = offline_engine path ~k in
  let verbs = [ "query"; "mrr"; "rank_regret" ] in
  let pairs =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a = b then None else Some (a, b)) verbs)
      verbs
  in
  with_server ~cache_capacity:64 (fun ~socket_path _server ->
      with_client ~socket_path (fun c ->
          List.iter
            (fun (a, b) ->
              let name = Printf.sprintf "kinds-%s-%s" a b in
              load_and_wait c ~name ~path;
              let _, a_cold = probe c ~op:a ~name ~k in
              Alcotest.(check bool)
                (Printf.sprintf "%s cold after load" a)
                false a_cold;
              (* same (fingerprint, shards, approx, epoch, k), different
                 kind: the other verb must not see a's row *)
              let jb, b_cold = probe c ~op:b ~name ~k in
              Alcotest.(check bool)
                (Printf.sprintf "%s misses after %s (kind isolation)" b a)
                false b_cold;
              (* and the miss computed the right answer, not a recycled
                 row of the wrong shape *)
              if b = "rank_regret" then begin
                let sel =
                  Option.bind (Json.member "selection" jb) Json.to_list
                  |> Option.map (List.filter_map Json.to_int)
                  |> Option.get
                in
                let lo =
                  Option.get (Option.bind (Json.member "rank_lo" jb) Json.to_int)
                in
                let hi =
                  Option.get (Option.bind (Json.member "rank_hi" jb) Json.to_int)
                in
                let exact =
                  Option.get (Option.bind (Json.member "exact" jb) Json.to_bool)
                in
                check_wire ~what:(b ^ " after " ^ a) eng ~k (sel, lo, hi, exact)
              end;
              (* sanity: re-asking the same verb IS a hit *)
              let _, a_warm = probe c ~op:a ~name ~k in
              Alcotest.(check bool) (Printf.sprintf "%s warm" a) true a_warm;
              let _, b_warm = probe c ~op:b ~name ~k in
              Alcotest.(check bool) (Printf.sprintf "%s warm" b) true b_warm;
              (* evict purges the fingerprint's cache rows: the next pair
                 starts cold even though it reloads the same bytes *)
              ignore (or_fail "evict" (Client.evict c ~name ())))
            pairs))

let suite =
  [
    Alcotest.test_case "lo monotone along prefixes (d=3)" `Quick
      (check_lo_monotone ~d:3 ~n:80 ~seed:1);
    Alcotest.test_case "lo monotone along prefixes (d=2, exact)" `Quick
      (check_lo_monotone ~d:2 ~n:100 ~seed:2);
    Alcotest.test_case "whole skyline realizes rank 1" `Quick
      test_whole_skyline;
    Alcotest.test_case "happy funnel is not rank-complete" `Quick
      test_happy_not_rank_complete;
    Alcotest.test_case "d=2: exact beats direction sampling" `Quick
      test_d2_exact_vs_sampled;
    Alcotest.test_case "degenerate: duplicates" `Quick
      test_degenerate_duplicates;
    Alcotest.test_case "degenerate: collinear d=2" `Quick
      test_degenerate_collinear;
    Alcotest.test_case "degenerate: axis ties" `Quick test_degenerate_axis_ties;
    Alcotest.test_case "single point" `Quick test_single_point;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    Alcotest.test_case "pool-width bit-identity" `Quick
      test_pool_width_bit_identity;
    Alcotest.test_case "greedy prefix stability" `Quick test_prefix_stability;
    Alcotest.test_case "serve: wire bit-identity (solo + sharded)" `Quick
      test_serve_bit_identical;
    Alcotest.test_case "serve: cache kind isolation" `Quick
      test_cache_kind_isolation;
  ]
