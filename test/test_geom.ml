open Testutil
module Vector = Kregret_geom.Vector
module Hyperplane = Kregret_geom.Hyperplane
module Orthotope = Kregret_geom.Orthotope

let test_sides () =
  let h = Hyperplane.make [| 1.; 1. |] 1. in
  let eps = 1e-9 in
  Alcotest.(check bool) "below" true (Hyperplane.side ~eps h [| 0.2; 0.2 |] = Hyperplane.Below);
  Alcotest.(check bool) "on" true (Hyperplane.side ~eps h [| 0.5; 0.5 |] = Hyperplane.On);
  Alcotest.(check bool) "above" true (Hyperplane.side ~eps h [| 0.9; 0.9 |] = Hyperplane.Above)

let test_through () =
  let h = Hyperplane.through ~normal:[| 2.; 0. |] [| 0.5; 0.3 |] in
  check_float "offset" 1. h.Hyperplane.offset

let test_ray_intersection () =
  let h = Hyperplane.make [| 1.; 1. |] 1. in
  (match Hyperplane.ray_intersection h [| 1.; 1. |] with
  | Some t -> check_float "t" 0.5 t
  | None -> Alcotest.fail "ray hits plane");
  (match Hyperplane.ray_intersection h [| -1.; -1. |] with
  | None -> ()
  | Some _ -> Alcotest.fail "ray points away");
  match Hyperplane.ray_intersection h [| 1.; -1. |] with
  | None -> ()
  | Some _ -> Alcotest.fail "ray parallel"

let test_through_points_2d () =
  match Hyperplane.through_points [ [| 1.; 0. |]; [| 0.; 1. |] ] with
  | None -> Alcotest.fail "independent points"
  | Some h ->
      let h = Hyperplane.normalized h in
      check_float "normal x" (1. /. sqrt 2.) h.Hyperplane.normal.(0);
      check_float "normal y" (1. /. sqrt 2.) h.Hyperplane.normal.(1);
      check_float "offset" (1. /. sqrt 2.) h.Hyperplane.offset

let test_through_points_degenerate () =
  Alcotest.(check bool) "collinear -> None" true
    (Hyperplane.through_points
       [ [| 0.; 0.; 0. |]; [| 1.; 1.; 1. |]; [| 2.; 2.; 2. |] ]
    = None)

let test_corners () =
  let p = [| 0.5; 0.25 |] in
  let cs = Orthotope.corners p in
  Alcotest.(check int) "count" 4 (Array.length cs);
  Alcotest.check vector "origin" [| 0.; 0. |] cs.(0);
  Alcotest.check vector "p itself" p cs.(3);
  Alcotest.check vector "x proj" [| 0.5; 0. |] cs.(1);
  Alcotest.check vector "y proj" [| 0.; 0.25 |] cs.(2)

let test_of_set_dedups () =
  (* two points sharing the origin corner: 4 + 4 - 1 = 7 distinct corners *)
  let pts = Orthotope.of_set [ [| 0.5; 0.25 |]; [| 0.7; 0.9 |] ] in
  Alcotest.(check int) "dedup" 7 (List.length pts)

let test_member2d () =
  let pts = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let mem = Orthotope.member2d ~eps:1e-9 pts in
  Alcotest.(check bool) "inside" true (mem [| 0.5; 0.5 |]);
  Alcotest.(check bool) "vertex" true (mem [| 1.; 0.2 |]);
  Alcotest.(check bool) "projection" true (mem [| 0.; 1. |]);
  Alcotest.(check bool) "outside" false (mem [| 0.9; 0.9 |]);
  Alcotest.(check bool) "negative" false (mem [| -0.1; 0.1 |])

let suite =
  [
    Alcotest.test_case "hyperplane sides" `Quick test_sides;
    Alcotest.test_case "through point" `Quick test_through;
    Alcotest.test_case "ray intersection" `Quick test_ray_intersection;
    Alcotest.test_case "through_points 2d" `Quick test_through_points_2d;
    Alcotest.test_case "through_points degenerate" `Quick test_through_points_degenerate;
    Alcotest.test_case "orthotope corners" `Quick test_corners;
    Alcotest.test_case "orthotope dedup" `Quick test_of_set_dedups;
    Alcotest.test_case "member2d" `Quick test_member2d;
    qcheck_case ~count:200 "fitted hyperplane contains its points"
      (qc_points ~n:4 ~d:4)
      (fun pts ->
        QCheck.assume (List.length pts = 4);
        match Hyperplane.through_points pts with
        | None -> true
        | Some h ->
            List.for_all (fun p -> abs_float (Hyperplane.eval h p) < 1e-6) pts);
    qcheck_case ~count:200 "orthotope corners dominated by p" (qc_point 5)
      (fun p ->
        Array.for_all
          (fun c -> Array.for_all2 (fun ci pi -> ci <= pi +. 1e-12) c p)
          (Orthotope.corners p));
  ]
