open Testutil
module Rng = Kregret_dataset.Rng
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Csv_io = Kregret_dataset.Csv_io
module Skyline = Kregret_skyline.Skyline

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  Alcotest.(check int) "decorrelated" 0 !same

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian r ~mu:2. ~sigma:0.5 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check_float ~eps:0.05 "mean" 2. mean;
  check_float ~eps:0.05 "variance" 0.25 var

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  Alcotest.(check int) "split streams decorrelated" 0 !same

let test_normalize () =
  let raw =
    Dataset.create ~name:"raw" [| [| 2.; 10. |]; [| 4.; 5. |]; [| 1.; 0. |] |]
  in
  let n = Dataset.normalize raw in
  Alcotest.(check bool) "normalized" true (Dataset.is_normalized ~eps:1e-9 n);
  Alcotest.check vector "first point" [| 0.5; 1. |] n.Dataset.points.(0);
  check_float "zero floored" 1e-6 n.Dataset.points.(2).(1)

let test_normalize_rejects () =
  let raw = Dataset.create ~name:"raw" [| [| 0.; 1. |]; [| 0.; 2. |] |] in
  Alcotest.check_raises "zero column"
    (Invalid_argument "Dataset.normalize: dimension 0 is identically zero")
    (fun () -> ignore (Dataset.normalize raw));
  let neg = Dataset.create ~name:"neg" [| [| -1.; 1. |] |] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Dataset.normalize: negative value") (fun () ->
      ignore (Dataset.normalize neg))

let test_boundary_point () =
  let ds =
    Dataset.create ~name:"b" [| [| 1.; 0.2 |]; [| 0.5; 0.9 |]; [| 0.2; 1. |] |]
  in
  Alcotest.(check int) "dim 0" 0 (Dataset.boundary_point ds 0);
  Alcotest.(check int) "dim 1" 2 (Dataset.boundary_point ds 1)

let test_generators_normalized () =
  let check name make =
    let ds = make () in
    Alcotest.(check bool)
      (name ^ " normalized") true
      (Dataset.is_normalized ~eps:1e-9 ds)
  in
  check "independent" (fun () -> Generator.independent (Rng.create 1) ~n:500 ~d:4);
  check "correlated" (fun () -> Generator.correlated (Rng.create 2) ~n:500 ~d:4);
  check "anti" (fun () -> Generator.anti_correlated (Rng.create 3) ~n:500 ~d:4);
  check "household" (fun () -> Generator.household_like (Rng.create 4) ~n:500);
  check "nba" (fun () -> Generator.nba_like (Rng.create 5) ~n:500);
  check "color" (fun () -> Generator.color_like (Rng.create 6) ~n:500);
  check "stocks" (fun () -> Generator.stocks_like (Rng.create 7) ~n:500)

let test_generator_determinism () =
  let a = Generator.anti_correlated (Rng.create 42) ~n:50 ~d:3 in
  let b = Generator.anti_correlated (Rng.create 42) ~n:50 ~d:3 in
  Array.iteri
    (fun i p -> Alcotest.check vector "same point" p b.Dataset.points.(i))
    a.Dataset.points

let test_correlation_shapes () =
  (* anti-correlated data must have a much larger skyline than correlated *)
  let n = 2000 and d = 4 in
  let corr = Generator.correlated (Rng.create 9) ~n ~d in
  let anti = Generator.anti_correlated (Rng.create 9) ~n ~d in
  let s_corr = Array.length (Skyline.sfs corr.Dataset.points) in
  let s_anti = Array.length (Skyline.sfs anti.Dataset.points) in
  Alcotest.(check bool)
    (Printf.sprintf "skyline sizes: corr=%d < anti=%d" s_corr s_anti)
    true
    (s_corr * 4 < s_anti)

let test_csv_roundtrip () =
  let ds = Generator.independent (Rng.create 13) ~n:40 ~d:5 in
  let path = Filename.temp_file "kregret" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save path ds;
      let back = Csv_io.load path in
      Alcotest.(check string) "name from header" "independent" back.Dataset.name;
      Alcotest.(check int) "size" (Dataset.size ds) (Dataset.size back);
      Array.iteri
        (fun i p -> Alcotest.check vector "point" p back.Dataset.points.(i))
        ds.Dataset.points)

let test_csv_malformed () =
  let path = Filename.temp_file "kregret" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0.5,0.5\n0.5,oops\n";
      close_out oc;
      Alcotest.(check bool) "raises" true
        (try
           ignore (Csv_io.load path);
           false
         with Failure _ -> true))

let test_sub () =
  let ds = Generator.independent (Rng.create 21) ~n:10 ~d:3 in
  let sub = Dataset.sub ds ~indices:[| 2; 5 |] in
  Alcotest.(check int) "size" 2 (Dataset.size sub);
  Alcotest.check vector "first" ds.Dataset.points.(2) sub.Dataset.points.(0)

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng: float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng: gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng: split" `Quick test_rng_split;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "normalize rejections" `Quick test_normalize_rejects;
    Alcotest.test_case "boundary point" `Quick test_boundary_point;
    Alcotest.test_case "generators normalized" `Quick test_generators_normalized;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "correlation shapes" `Quick test_correlation_shapes;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv malformed" `Quick test_csv_malformed;
    Alcotest.test_case "dataset sub" `Quick test_sub;
  ]
