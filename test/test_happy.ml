open Testutil
module Vector = Kregret_geom.Vector
module Happy = Kregret_happy.Happy
module Skyline = Kregret_skyline.Skyline
module Extreme = Kregret_hull.Extreme
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng

(* A hand-constructed 2-D configuration with all three candidate tiers
   strictly separated, mirroring the paper's running example:
   - p_a, p_b: dimension boundary points (on the hull),
   - p_c: on the hull,
   - p_d: skyline but subjugated by p_c (inside Conv({p_c} + VC)),
   - p_e: skyline, inside Conv(D) (not extreme), but not subjugated by any
     single point — happy but not convex. *)
let p_a = [| 1.0; 0.05 |]
let p_b = [| 0.05; 1.0 |]
let p_c = [| 0.8; 0.8 |]
let p_d = [| 0.83; 0.55 |]
let p_e = [| 0.92; 0.34 |]
let tiers = [| p_a; p_b; p_c; p_d; p_e |]

let test_cut_box_vertices_2d () =
  (* q = (0.5, 0.5): the halfspace w.q <= 1 keeps the whole unit box except
     corner (1,1) is exactly on it: vertices = 4 box corners *)
  let vs = Happy.cut_box_vertices [| 0.5; 0.5 |] in
  Alcotest.(check int) "box survives" 4 (List.length vs);
  (* q = (1, 1): corner (1,1) cut, edge intersections at (1,0)... the corners
     (1,0),(0,1) are ON the plane; vertices: (0,0),(1,0),(0,1) *)
  let vs = Happy.cut_box_vertices [| 1.; 1. |] in
  Alcotest.(check int) "corner cut" 3 (List.length vs);
  (* q = (0.8, 0.8): cut leaves (0,0),(1,0),(0,1) + intersections (1, 0.25)
     and (0.25, 1) *)
  let vs = Happy.cut_box_vertices [| 0.8; 0.8 |] in
  Alcotest.(check int) "pentagon" 5 (List.length vs)

let test_subjugation_simplex_case () =
  (* q inside the unit simplex: everything with coordinate sum < 1 is
     subjugated (by the simplex facet), sum = 1 is not *)
  let q = [| 0.3; 0.3 |] in
  Alcotest.(check bool) "below simplex" true (Happy.subjugates q [| 0.4; 0.4 |]);
  Alcotest.(check bool) "on simplex" false (Happy.subjugates q [| 0.5; 0.5 |]);
  Alcotest.(check bool) "above simplex" false (Happy.subjugates q [| 0.6; 0.6 |])

let test_subjugation_vertex_case () =
  Alcotest.(check bool) "p_d subjugated by p_c" true (Happy.subjugates p_c p_d);
  Alcotest.(check bool) "p_e not subjugated by p_c" false (Happy.subjugates p_c p_e);
  Alcotest.(check bool) "no self subjugation" false (Happy.subjugates p_c p_c);
  Alcotest.(check bool) "hull point not subjugated" false (Happy.subjugates p_c p_a)

let test_dominated_is_subjugated () =
  (* per Lemma 3's proof: dominance implies subjugation *)
  Alcotest.(check bool) "dominated" true
    (Happy.subjugates [| 0.9; 0.9 |] [| 0.85; 0.7 |])

let test_tiers () =
  let sky = Skyline.sfs tiers in
  Alcotest.(check (array int)) "all on skyline" [| 0; 1; 2; 3; 4 |] sky;
  let happy = Happy.happy_points tiers in
  Alcotest.(check (array int)) "happy excludes p_d" [| 0; 1; 2; 4 |] happy;
  let conv = Extreme.extreme_points (Array.to_list tiers) in
  Alcotest.(check int) "conv = three hull points" 3 (List.length conv);
  Alcotest.(check bool) "p_e not extreme" true
    (not (List.exists (fun p -> Vector.equal ~eps:1e-12 p p_e) conv))

let test_is_happy () =
  let candidates = Array.to_list tiers in
  Alcotest.(check bool) "p_e happy" true (Happy.is_happy ~candidates p_e);
  Alcotest.(check bool) "p_d unhappy" true (not (Happy.is_happy ~candidates p_d))

let test_of_dataset_name () =
  let ds = Generator.anti_correlated (Rng.create 5) ~n:200 ~d:3 in
  let happy = Happy.of_dataset ds in
  Alcotest.(check string) "name" "anti_correlated/happy" happy.Dataset.name

(* Lemma 3 as a property: D_conv <= D_happy <= D_sky, with membership
   inclusion (on datasets where each dimension is normalized). *)
let lemma3_property pts =
  let points = Array.of_list pts in
  let ds = Dataset.normalize (Dataset.create ~name:"qc" points) in
  let points = ds.Dataset.points in
  let sky_idx = Skyline.sfs points in
  let sky = Array.map (fun i -> points.(i)) sky_idx in
  let happy_idx = Happy.happy_points sky in
  let happy = Array.map (fun i -> sky.(i)) happy_idx in
  let conv = Extreme.extreme_points (Array.to_list sky) in
  let mem arr p = Array.exists (fun q -> Vector.equal ~eps:0. q p) arr in
  List.for_all (fun p -> mem happy p) conv
  && Array.for_all (fun p -> mem sky p) happy
  && Array.length happy <= Array.length sky

let suite =
  [
    Alcotest.test_case "cut box vertices (2d)" `Quick test_cut_box_vertices_2d;
    Alcotest.test_case "subjugation: simplex case" `Quick test_subjugation_simplex_case;
    Alcotest.test_case "subjugation: vertex case" `Quick test_subjugation_vertex_case;
    Alcotest.test_case "dominance implies subjugation" `Quick test_dominated_is_subjugated;
    Alcotest.test_case "three candidate tiers" `Quick test_tiers;
    Alcotest.test_case "is_happy" `Quick test_is_happy;
    Alcotest.test_case "of_dataset naming" `Quick test_of_dataset_name;
    qcheck_case ~count:60 "Lemma 3: conv <= happy <= sky (d=2)"
      (qc_points ~n:25 ~d:2) lemma3_property;
    qcheck_case ~count:40 "Lemma 3: conv <= happy <= sky (d=3)"
      (qc_points ~n:20 ~d:3) lemma3_property;
    qcheck_case ~count:15 "Lemma 3: conv <= happy <= sky (d=5)"
      (qc_points ~n:15 ~d:5) lemma3_property;
  ]
