open Testutil
module Vector = Kregret_geom.Vector

let test_basics () =
  let v = Vector.init 3 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check int) "dim" 3 (Vector.dim v);
  check_float "dot" 14. (Vector.dot v v);
  check_float "norm" (sqrt 14.) (Vector.norm v);
  check_float "norm1" 6. (Vector.norm1 v);
  check_float "norm_inf" 3. (Vector.norm_inf v);
  check_float "sum" 6. (Vector.sum v);
  Alcotest.check vector "add" [| 2.; 4.; 6. |] (Vector.add v v);
  Alcotest.check vector "sub" [| 0.; 0.; 0. |] (Vector.sub v v);
  Alcotest.check vector "scale" [| 2.; 4.; 6. |] (Vector.scale 2. v)

let test_basis () =
  let e1 = Vector.basis 3 1 in
  Alcotest.check vector "basis" [| 0.; 1.; 0. |] e1;
  Alcotest.check_raises "out of range" (Invalid_argument "Vector.basis: index out of range")
    (fun () -> ignore (Vector.basis 3 3))

let test_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vector.dot: dimension mismatch")
    (fun () -> ignore (Vector.dot [| 1. |] [| 1.; 2. |]))

let test_extrema () =
  let v = [| 0.5; 0.9; 0.1 |] in
  Alcotest.(check (pair int (float 1e-9))) "max" (1, 0.9) (Vector.max_coord v);
  Alcotest.(check (pair int (float 1e-9))) "min" (2, 0.1) (Vector.min_coord v)

let test_normalize () =
  let v = Vector.normalize [| 3.; 4. |] in
  Alcotest.check vector "unit" [| 0.6; 0.8 |] v;
  Alcotest.check_raises "zero" (Invalid_argument "Vector.normalize: zero vector")
    (fun () -> ignore (Vector.normalize [| 0.; 0. |]))

let test_lerp () =
  let u = [| 0.; 0. |] and v = [| 2.; 4. |] in
  Alcotest.check vector "mid" [| 1.; 2. |] (Vector.lerp u v 0.5);
  Alcotest.check vector "ends" u (Vector.lerp u v 0.);
  Alcotest.check vector "ends" v (Vector.lerp u v 1.)

let test_in_place () =
  let u = [| 1.; 2. |] in
  Vector.add_in_place u [| 1.; 1. |];
  Alcotest.check vector "add_in_place" [| 2.; 3. |] u;
  Vector.scale_in_place 2. u;
  Alcotest.check vector "scale_in_place" [| 4.; 6. |] u

let suite =
  let qc name arb prop = qcheck_case ~count:200 name arb prop in
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "basis" `Quick test_basis;
    Alcotest.test_case "mismatch" `Quick test_mismatch;
    Alcotest.test_case "extrema" `Quick test_extrema;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "lerp" `Quick test_lerp;
    Alcotest.test_case "in_place" `Quick test_in_place;
    qc "cauchy-schwarz"
      QCheck.(pair (qc_point 5) (qc_point 5))
      (fun (u, v) ->
        Vector.dot u v <= (Vector.norm u *. Vector.norm v) +. 1e-9);
    qc "triangle inequality"
      QCheck.(pair (qc_point 6) (qc_point 6))
      (fun (u, v) ->
        Vector.norm (Vector.add u v) <= Vector.norm u +. Vector.norm v +. 1e-9);
    qc "normalize gives unit norm" (qc_point 4) (fun v ->
        abs_float (Vector.norm (Vector.normalize v) -. 1.) < 1e-9);
    qc "lerp stays on segment"
      QCheck.(triple (qc_point 3) (qc_point 3) (float_bound_inclusive 1.))
      (fun (u, v, t) ->
        let w = Vector.lerp u v t in
        Vector.norm (Vector.sub w u) +. Vector.norm (Vector.sub w v)
        <= Vector.norm (Vector.sub u v) +. 1e-6);
  ]
