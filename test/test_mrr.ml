(* Dedicated suite for the Mrr evaluators: Definitions 1 and 2 of the paper,
   plus the relationships between the four implementations. *)

open Testutil
module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Mrr = Kregret.Mrr

let anti n d seed = Generator.anti_correlated (Rng.create seed) ~n ~d

(* --- regret_for_weight (Definition 1) ------------------------------------- *)

let test_rr_zero_when_selection_contains_max () =
  let data = [ [| 1.; 0.2 |]; [| 0.2; 1. |]; [| 0.6; 0.6 |] ] in
  (* under w = (1,0) the best point is (1, 0.2); selecting it kills regret *)
  check_float "zero" 0.
    (Mrr.regret_for_weight ~weight:[| 1.; 0. |] ~data ~selected:[ [| 1.; 0.2 |] ])

let test_rr_exact_value () =
  let data = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let selected = [ [| 0.2; 1. |] ] in
  (* under w = (1,0): best = 1, selected max = 0.2, rr = 0.8 *)
  check_float "0.8" 0.8 (Mrr.regret_for_weight ~weight:[| 1.; 0. |] ~data ~selected)

let test_rr_scale_invariant () =
  let data = [ [| 0.9; 0.4 |]; [| 0.3; 0.8 |] ] in
  let selected = [ [| 0.3; 0.8 |] ] in
  let a = Mrr.regret_for_weight ~weight:[| 0.7; 0.3 |] ~data ~selected in
  let b = Mrr.regret_for_weight ~weight:[| 7.; 3. |] ~data ~selected in
  check_float "scaling w changes nothing" a b

(* --- finite_class ----------------------------------------------------------- *)

let test_finite_class_is_max () =
  let data = Array.to_list Kregret.Toy.cars in
  let selected = [ Kregret.Toy.cars.(1); Kregret.Toy.cars.(2) ] in
  let per_weight =
    List.map
      (fun weight -> Mrr.regret_for_weight ~weight ~data ~selected)
      Kregret.Toy.weights
  in
  check_float "max of the pieces"
    (List.fold_left Float.max 0. per_weight)
    (Mrr.finite_class ~weights:Kregret.Toy.weights ~data ~selected)

let test_finite_class_below_full_class () =
  (* the full linear class can only be more demanding than any finite one *)
  let ds = anti 40 3 3 in
  let data = Dataset.to_list ds in
  let selected = List.filteri (fun i _ -> i mod 7 = 0) data in
  let weights =
    [ [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 0.4; 0.3; 0.3 |] ]
  in
  Alcotest.(check bool) "finite <= full" true
    (Mrr.finite_class ~weights ~data ~selected
    <= Mrr.geometric ~data ~selected +. 1e-9)

(* --- geometric vs lp vs sampled -------------------------------------------- *)

let test_geometric_empty_selection_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Mrr: empty selection")
    (fun () -> ignore (Mrr.geometric ~data:[ [| 1.; 1. |] ] ~selected:[]))

let test_geometric_selection_superset_of_data () =
  (* selection may contain points outside data: mrr still well-defined, 0 if
     the selection covers everything *)
  let data = [ [| 0.5; 0.5 |] ] in
  let selected = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  check_float "covered" 0. (Mrr.geometric ~data ~selected)

let test_known_exact_value_2d () =
  (* data {(1, eps), (eps, 1), (1,1)} with selection = the two boundary
     points: worst direction is (1,1)/sqrt 2 against point (1,1):
     cr = max(w.(1,eps), w.(eps,1)) / w.(1,1) = (1+eps)/2 *)
  let e = 0.2 in
  let data = [ [| 1.; e |]; [| e; 1. |]; [| 1.; 1. |] ] in
  let selected = [ [| 1.; e |]; [| e; 1. |] ] in
  check_float "1 - (1+e)/2" (1. -. ((1. +. e) /. 2.)) (Mrr.geometric ~data ~selected)

let test_three_way_agreement_various_dims () =
  List.iter
    (fun (d, seed) ->
      let ds = anti 40 d seed in
      let data = Dataset.to_list ds in
      let selected =
        List.map (fun i -> ds.Dataset.points.(Dataset.boundary_point ds i))
          (List.init d Fun.id)
        @ List.filteri (fun i _ -> i mod 11 = 0) data
      in
      let g = Mrr.geometric ~data ~selected in
      let l = Mrr.lp ~data ~selected in
      check_float ~eps:1e-6 (Printf.sprintf "geometric = lp (d=%d)" d) l g;
      let s = Mrr.sampled ~rng:(Rng.create seed) ~samples:2000 ~data ~selected in
      Alcotest.(check bool)
        (Printf.sprintf "sampled <= exact (d=%d)" d)
        true (s <= g +. 1e-9))
    [ (2, 10); (3, 11); (4, 12); (5, 13); (6, 14) ]

let test_sampled_converges () =
  (* more samples can only improve the lower bound (with nested sampling via
     a shared deterministic stream restart) *)
  let ds = anti 60 3 15 in
  let data = Dataset.to_list ds in
  let selected = List.filteri (fun i _ -> i mod 9 = 0) data in
  let at samples = Mrr.sampled ~rng:(Rng.create 1) ~samples ~data ~selected in
  let exact = Mrr.lp ~data ~selected in
  let s100 = at 100 and s5000 = at 5000 in
  Alcotest.(check bool) "5000 samples within 10% of exact" true
    (s5000 >= exact -. 0.1 && s5000 <= exact +. 1e-9);
  Alcotest.(check bool) "both are lower bounds" true
    (s100 <= exact +. 1e-9)

(* --- structural properties --------------------------------------------- *)

let test_mrr_invariant_under_data_duplicates () =
  let ds = anti 30 3 16 in
  let data = Dataset.to_list ds in
  let selected = List.filteri (fun i _ -> i mod 5 = 0) data in
  check_float "duplicating data changes nothing"
    (Mrr.geometric ~data ~selected)
    (Mrr.geometric ~data:(data @ data) ~selected)

let test_mrr_dominated_data_point_irrelevant () =
  let ds = anti 30 2 17 in
  let data = Dataset.to_list ds in
  let selected = List.filteri (fun i _ -> i mod 4 = 0) data in
  let dominated = [| 1e-6; 1e-6 |] in
  check_float "adding a dominated point changes nothing"
    (Mrr.geometric ~data ~selected)
    (Mrr.geometric ~data:(dominated :: data) ~selected)

(* Regression for the sparse branch of [random_direction]: it used to draw
   its axes *with replacement*, so a draw of "support = s" produced s distinct
   axes only when no collision occurred — at d = 6 a full-support sparse
   direction appeared with probability 6!/6^6 ~ 1.5% of the s = 6 draws
   instead of 100%, starving the estimator of high-support sparse probes.
   Post-fix, the full-support frequency over the mixture is
   1/2 + 1/2 * 1/d ~ 0.583 at d = 6; pre-fix it was ~0.501. The threshold
   0.55 sits >4 sigma from both at 4000 draws, and the seed is pinned, so
   the test is fully deterministic. *)
let test_random_direction_distinct_axes () =
  let d = 6 and draws = 4000 in
  let rng = Rng.create 2014 in
  let full = ref 0 and bad = ref 0 in
  for _ = 1 to draws do
    let w = Mrr.random_direction rng d in
    if Vector.dim w <> d then incr bad;
    if abs_float (Vector.norm w -. 1.) > 1e-9 then incr bad;
    Array.iter (fun x -> if x < 0. then incr bad) w;
    let support =
      Array.fold_left (fun acc x -> if x > 0. then acc + 1 else acc) 0 w
    in
    if support = d then incr full
  done;
  Alcotest.(check int) "all draws are non-negative unit vectors of dim d" 0 !bad;
  let freq = float_of_int !full /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf
       "full-support frequency %.4f > 0.55 (distinct-axes sampling)" freq)
    true (freq > 0.55)

let suite =
  [
    Alcotest.test_case "rr: zero on covered weight" `Quick test_rr_zero_when_selection_contains_max;
    Alcotest.test_case "rr: exact value" `Quick test_rr_exact_value;
    Alcotest.test_case "rr: scale invariance" `Quick test_rr_scale_invariant;
    Alcotest.test_case "finite class = max of pieces" `Quick test_finite_class_is_max;
    Alcotest.test_case "finite class <= full class" `Quick test_finite_class_below_full_class;
    Alcotest.test_case "empty selection rejected" `Quick test_geometric_empty_selection_rejected;
    Alcotest.test_case "selection beyond data" `Quick test_geometric_selection_superset_of_data;
    Alcotest.test_case "known exact value (2-D)" `Quick test_known_exact_value_2d;
    Alcotest.test_case "three-way agreement d=2..6" `Quick test_three_way_agreement_various_dims;
    Alcotest.test_case "sampled lower bound converges" `Quick test_sampled_converges;
    Alcotest.test_case "duplicate data irrelevant" `Quick test_mrr_invariant_under_data_duplicates;
    Alcotest.test_case "dominated data irrelevant" `Quick test_mrr_dominated_data_point_irrelevant;
    Alcotest.test_case "random_direction samples distinct axes" `Quick
      test_random_direction_distinct_axes;
    qcheck_case ~count:50 "mrr in [0,1) for nonempty selections"
      (qc_points ~n:15 ~d:3)
      (fun pts ->
        QCheck.assume (pts <> []);
        let selected = [ List.hd pts ] in
        let v = Mrr.geometric ~data:pts ~selected in
        v >= 0. && v < 1.);
    qcheck_case ~count:50 "monotone: bigger selection, smaller mrr"
      (qc_points ~n:12 ~d:3)
      (fun pts ->
        QCheck.assume (List.length pts >= 3);
        match pts with
        | a :: b :: rest ->
            let m1 = Mrr.geometric ~data:pts ~selected:[ a ] in
            let m2 = Mrr.geometric ~data:pts ~selected:[ a; b ] in
            let m3 = Mrr.geometric ~data:pts ~selected:(a :: b :: rest) in
            m2 <= m1 +. 1e-9 && m3 <= m2 +. 1e-9
        | _ -> true);
    qcheck_case ~count:30 "finite class converges to geometric from below"
      (qc_points ~n:10 ~d:2)
      (fun pts ->
        QCheck.assume (List.length pts >= 2);
        let selected = [ List.hd pts ] in
        let weights =
          List.init 64 (fun i ->
              let t = float_of_int i /. 63. *. Float.pi /. 2. in
              [| cos t; sin t |])
        in
        Mrr.finite_class ~weights ~data:pts ~selected
        <= Mrr.geometric ~data:pts ~selected +. 1e-9);
  ]
