(* Stress and consistency tests for the double-description engine: the
   incremental structure must agree with a from-scratch rebuild and with the
   LP oracle across dimensions, insertion orders, and degeneracies. *)

open Testutil
module Vector = Kregret_geom.Vector
module Dd = Kregret_hull.Dd
module Dual_polytope = Kregret_hull.Dual_polytope
module Regret_lp = Kregret_lp.Regret_lp

let build_dd ~bound ~dim constraints =
  let t = Dd.create ~bound ~dim () in
  List.iter (fun (normal, offset) -> ignore (Dd.add_constraint t ~normal ~offset)) constraints;
  t

let vertex_set t =
  List.sort compare
    (List.map (fun v -> Array.to_list v.Dd.w) (Dd.vertices t))

let approx_same_sets a b =
  List.length a = List.length b
  && List.for_all2
       (fun u v -> List.for_all2 (fun x y -> abs_float (x -. y) < float_eps) u v)
       a b

let test_order_independence () =
  let st = test_rng 71 in
  for _trial = 1 to 8 do
    let d = 2 + Random.State.int st 3 in
    let cons =
      List.map (fun p -> (p, 1.)) (random_points st ~n:12 ~d)
    in
    let shuffled =
      List.map snd
        (List.sort compare
           (List.map (fun c -> (Random.State.float st 1., c)) cons))
    in
    let a = build_dd ~bound:2. ~dim:d cons in
    let b = build_dd ~bound:2. ~dim:d shuffled in
    Dd.check_invariants a;
    Dd.check_invariants b;
    Alcotest.(check bool)
      (Printf.sprintf "same vertex set regardless of order (d=%d)" d)
      true
      (approx_same_sets (vertex_set a) (vertex_set b))
  done

let test_event_bookkeeping () =
  (* the event stream must account exactly for the vertex-set delta *)
  let st = test_rng 72 in
  let t = Dd.create ~bound:2. ~dim:3 () in
  List.iter
    (fun p ->
      let before =
        List.sort compare (List.map (fun v -> v.Dd.id) (Dd.vertices t))
      in
      let ev = Dd.add_constraint t ~normal:p ~offset:1. in
      let after =
        List.sort compare (List.map (fun v -> v.Dd.id) (Dd.vertices t))
      in
      let expected =
        List.sort compare
          (List.map (fun v -> v.Dd.id) ev.Dd.created
          @ List.filter (fun id -> not (List.mem id ev.Dd.removed)) before)
      in
      Alcotest.(check (list int)) "delta accounts for vertex set" expected after;
      (* removed ids must be gone, created ids must be live *)
      List.iter
        (fun id ->
          Alcotest.(check bool) "removed is gone" true (Dd.find_vertex t id = None))
        ev.Dd.removed;
      List.iter
        (fun v ->
          Alcotest.(check bool) "created is live" true
            (Dd.find_vertex t v.Dd.id <> None))
        ev.Dd.created)
    (random_points st ~n:20 ~d:3)

let test_contains_vs_constraints () =
  let st = test_rng 73 in
  let cons = List.map (fun p -> (p, 1.)) (random_points st ~n:10 ~d:3) in
  let t = build_dd ~bound:2. ~dim:3 cons in
  for _ = 1 to 200 do
    let w = Array.init 3 (fun _ -> Random.State.float st 1.5) in
    let manual =
      Vector.is_nonneg ~eps:geom_eps w
      && List.for_all (fun (a, b) -> Vector.dot a w <= b +. 1e-7) cons
      && Array.for_all (fun x -> x <= 2. +. 1e-7) w
    in
    Alcotest.(check bool) "contains agrees with direct check" manual
      (Dd.contains ~eps:1e-7 t w)
  done

let test_support_vs_lp_dim_sweep () =
  let st = test_rng 74 in
  List.iter
    (fun d ->
      let boundary =
        List.init d (fun i ->
            Array.init d (fun j ->
                if i = j then 1. else 0.1 +. (0.6 *. Random.State.float st 1.)))
      in
      let selected = boundary @ random_points st ~n:8 ~d in
      let dp = Dual_polytope.create ~dim:d () in
      List.iter (fun p -> ignore (Dual_polytope.insert dp p)) selected;
      for _ = 1 to 5 do
        let q = random_point st d in
        let geo = Dual_polytope.critical_ratio dp q in
        let lp, _ = Regret_lp.critical_ratio ~selected q in
        check_float ~eps:float_eps (Printf.sprintf "cr d=%d" d) lp geo
      done)
    [ 2; 3; 4; 5; 6; 7 ]

let test_redundant_insertions_stable () =
  let st = test_rng 75 in
  let base = random_points st ~n:8 ~d:3 in
  let t = build_dd ~bound:2. ~dim:3 (List.map (fun p -> (p, 1.)) base) in
  let before = vertex_set t in
  (* re-adding every constraint is a no-op *)
  List.iter
    (fun p ->
      let ev = Dd.add_constraint t ~normal:p ~offset:1. in
      Alcotest.(check bool) "redundant" true ev.Dd.redundant)
    base;
  Alcotest.(check bool) "vertex set unchanged" true
    (approx_same_sets before (vertex_set t));
  Dd.check_invariants t

let test_shrinking_nested_constraints () =
  (* a sequence of parallel constraints with decreasing offsets: each one
     cuts, the polytope shrinks monotonically *)
  let t = Dd.create ~bound:1. ~dim:2 () in
  let count = ref (Dd.num_vertices t) in
  List.iter
    (fun offset ->
      let ev = Dd.add_constraint t ~normal:[| 1.; 1. |] ~offset in
      Alcotest.(check bool) "cuts" false ev.Dd.redundant;
      Dd.check_invariants t;
      count := Dd.num_vertices t)
    [ 1.8; 1.4; 1.0; 0.6; 0.2 ];
  (* final region is a small triangle *)
  Alcotest.(check int) "triangle" 3 !count

let test_num_constraints_accounting () =
  let t = Dd.create ~bound:1. ~dim:4 () in
  Alcotest.(check int) "zero user constraints" 0 (Dd.num_constraints t);
  ignore (Dd.add_constraint t ~normal:[| 1.; 1.; 1.; 1. |] ~offset:2.);
  ignore (Dd.add_constraint t ~normal:[| 1.; 0.; 0.; 0. |] ~offset:0.5);
  Alcotest.(check int) "two" 2 (Dd.num_constraints t);
  Alcotest.(check int) "dim" 4 (Dd.dim t)

let suite =
  [
    Alcotest.test_case "insertion-order independence" `Quick test_order_independence;
    Alcotest.test_case "event bookkeeping" `Quick test_event_bookkeeping;
    Alcotest.test_case "contains vs direct check" `Quick test_contains_vs_constraints;
    Alcotest.test_case "cr vs LP across d=2..7" `Quick test_support_vs_lp_dim_sweep;
    Alcotest.test_case "redundant insertions stable" `Quick test_redundant_insertions_stable;
    Alcotest.test_case "nested shrinking constraints" `Quick test_shrinking_nested_constraints;
    Alcotest.test_case "constraint accounting" `Quick test_num_constraints_accounting;
    qcheck_case ~count:30 "random cuts keep invariants (d=4)"
      (qc_points ~n:15 ~d:4)
      (fun pts ->
        let t = build_dd ~bound:2. ~dim:4 (List.map (fun p -> (p, 1.)) pts) in
        Dd.check_invariants t;
        true);
    qcheck_case ~count:30 "support function is monotone under cuts"
      QCheck.(pair (qc_points ~n:10 ~d:3) (qc_point 3))
      (fun (pts, q) ->
        let t = Dd.create ~bound:2. ~dim:3 () in
        let prev = ref infinity in
        List.for_all
          (fun p ->
            ignore (Dd.add_constraint t ~normal:p ~offset:1.);
            let _, m = Dd.max_dot t q in
            let ok = m <= !prev +. geom_eps in
            prev := m;
            ok)
          pts);
  ]
