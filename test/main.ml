(* Property tests draw from QCheck's global RNG; pin it for reproducible CI
   runs unless the caller explicitly overrides the seed. *)
let () =
  if Sys.getenv_opt "QCHECK_SEED" = None then Unix.putenv "QCHECK_SEED" "20140331"

let () =
  Alcotest.run "kregret"
    [
      ("vector", Test_vector.suite);
      ("matrix", Test_matrix.suite);
      ("geom", Test_geom.suite);
      ("flat", Test_flat.suite);
      ("simplex", Test_simplex.suite);
      ("regret-lp", Test_regret_lp.suite);
      ("hull", Test_hull.suite);
      ("primal-hull", Test_primal_hull.suite);
      ("dd-stress", Test_dd_stress.suite);
      ("mrr", Test_mrr.suite);
      ("dataset", Test_dataset.suite);
      ("skyline", Test_skyline.suite);
      ("rtree-bbs", Test_rtree.suite);
      ("happy", Test_happy.suite);
      ("regret", Test_regret.suite);
      ("extensions", Test_extensions.suite);
      ("optimality", Test_optimality.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("stats-validation", Test_stats.suite);
      ("optimal2d", Test_optimal2d.suite);
      ("parallel", Test_parallel.suite);
      ("stored-list", Test_stored_list.suite);
      ("validation", Test_validation.suite);
      ("average-regret", Test_average_regret.suite);
      ("csv-io", Test_csv_io.suite);
      ("dynamic", Test_dynamic.suite);
      ("check", Test_check.suite);
      ("approx", Test_approx.suite);
      ("obs", Test_obs.suite);
      ("lru", Test_lru.suite);
      ("serve", Test_serve.suite);
      ("rrr", Test_rrr.suite);
      ("corpus", Test_corpus.suite);
    ]
