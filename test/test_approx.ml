(* ε-kernel approximation tier (lib/approx): the qcheck properties behind
   the approx fuzz oracle, pinned deterministically for tier-1.

   - the kernel is a strictly ascending subset of the input containing
     the maximum of every net direction (recomputed by an independent
     boxed first-wins scan);
   - halving ε exactly doubles the net resolution, nests the kernels and
     shrinks the advertised slack (monotonicity);
   - at d = 2 the exact DP (Optimal2d) sandwiches the approx answer:
     the approx selection never beats the optimum, and the certificate
     the pipeline advertises upper-bounds both;
   - the reduction and the downstream pipeline are bit-identical at pool
     widths {1, 2, 4};
   - the full approx oracle holds on a prefix of the fuzzer's own
     degenerate instance stream (duplicates, grid snapping, collinear
     fills — whatever Instance.generate deals). *)

module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Pool = Kregret_parallel.Pool
module Mrr = Kregret.Mrr
module Optimal2d = Kregret.Optimal2d
module Kernel = Kregret_approx.Kernel
module Pipeline = Kregret_approx.Pipeline
module Instance = Kregret_check.Instance
module Approx_oracle = Kregret_check.Approx_oracle

let with_jobs j f =
  let saved = Pool.get_jobs () in
  Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

(* boxed first-wins reference scan, independent of Flat.champions *)
let ref_argmax dir points =
  let best = ref (-1) and best_v = ref Float.nan in
  Array.iteri
    (fun i p ->
      let v = Vector.dot dir p in
      if not (!best_v >= v) then begin
        best := i;
        best_v := v
      end)
    points;
  !best

let qc_pointset ~dmin ~dmax ~nmax =
  QCheck.make
    ~print:(fun pts ->
      String.concat "; " (Array.to_list (Array.map Vector.to_string pts)))
    QCheck.Gen.(
      let* d = int_range dmin dmax in
      let* n = int_range 1 nmax in
      array_size (return n) (array_size (return d) (float_range 0.01 1.0)))

(* ---- kernel structure ---------------------------------------------------- *)

let prop_subset_and_cover =
  QCheck.Test.make ~count:80 ~name:"kernel is an ascending subset covering every direction"
    (qc_pointset ~dmin:2 ~dmax:4 ~nmax:60)
    (fun points ->
      let eps = 0.25 in
      let r = Kernel.reduce ~eps points in
      let n = Array.length points in
      Array.iteri
        (fun i id ->
          if id < 0 || id >= n then
            QCheck.Test.fail_reportf "kernel id %d out of range" id;
          if i > 0 && r.Kernel.ids.(i - 1) >= id then
            QCheck.Test.fail_reportf "kernel ids not strictly ascending")
        r.Kernel.ids;
      let d = Array.length points.(0) in
      let nt = Kernel.net ~d ~eps () in
      if Kregret_geom.Flat.rows nt.Kernel.dirs <> r.Kernel.directions then
        QCheck.Test.fail_reportf "net size mismatch";
      let in_kernel = Hashtbl.create 64 in
      Array.iter (fun id -> Hashtbl.replace in_kernel id ()) r.Kernel.ids;
      for j = 0 to r.Kernel.directions - 1 do
        let dir = Kregret_geom.Flat.row nt.Kernel.dirs j in
        let want = ref_argmax dir points in
        if r.Kernel.winners.(j) <> want then
          QCheck.Test.fail_reportf
            "direction %d: winner %d, reference says %d" j
            r.Kernel.winners.(j) want;
        if not (Hashtbl.mem in_kernel want) then
          QCheck.Test.fail_reportf "direction %d winner %d not in kernel" j
            want
      done;
      true)

let prop_monotone_in_eps =
  QCheck.Test.make ~count:60 ~name:"halving eps nests kernels and shrinks slack"
    (qc_pointset ~dmin:2 ~dmax:4 ~nmax:50)
    (fun points ->
      let d = Array.length points.(0) in
      (* eps chosen as an exact (d-1)/(2m) so the roundtrip is exact *)
      let eps = Kernel.slack_for ~d ~eps:0.3 in
      let hi = Kernel.reduce ~eps points in
      let lo = Kernel.reduce ~eps:(eps /. 2.) points in
      if lo.Kernel.resolution <> 2 * hi.Kernel.resolution then
        QCheck.Test.fail_reportf "resolution %d did not double (%d)"
          hi.Kernel.resolution lo.Kernel.resolution;
      if lo.Kernel.slack > hi.Kernel.slack then
        QCheck.Test.fail_reportf "slack grew as eps shrank";
      let in_lo = Hashtbl.create 64 in
      Array.iter (fun id -> Hashtbl.replace in_lo id ()) lo.Kernel.ids;
      Array.iter
        (fun id ->
          if not (Hashtbl.mem in_lo id) then
            QCheck.Test.fail_reportf
              "coarse kernel id %d missing from finer kernel" id)
        hi.Kernel.ids;
      true)

let test_resolution_roundtrip () =
  for d = 2 to 7 do
    for m = 1 to 40 do
      let eps = float_of_int (d - 1) /. (2. *. float_of_int m) in
      if eps <= 1. then
        Alcotest.(check int)
          (Printf.sprintf "d=%d m=%d roundtrip" d m)
          m
          (Kernel.resolution_for ~d ~eps)
    done
  done

let test_reduce_rejects_bad_input () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty input" true
    (raises (fun () -> Kernel.reduce ~eps:0.1 [||]));
  let one = [| [| 0.5; 0.5 |] |] in
  Alcotest.(check bool) "eps = 0" true
    (raises (fun () -> Kernel.reduce ~eps:0. one));
  Alcotest.(check bool) "eps > 1" true
    (raises (fun () -> Kernel.reduce ~eps:1.5 one));
  Alcotest.(check bool) "eps nan" true
    (raises (fun () -> Kernel.reduce ~eps:Float.nan one));
  let r = Kernel.reduce ~eps:0.5 one in
  Alcotest.(check (array int)) "singleton kernel" [| 0 |] r.Kernel.ids

(* ---- d = 2: sandwiched by the exact DP ----------------------------------- *)

let prop_optimal2d_sandwich =
  QCheck.Test.make ~count:40 ~name:"d=2: optimum <= approx mrr <= certificate"
    QCheck.(
      pair
        (qc_pointset ~dmin:2 ~dmax:2 ~nmax:40)
        (int_range 1 5))
    (fun (raw, k) ->
      QCheck.assume (Array.length raw >= 2);
      let ds =
        Dataset.normalize (Dataset.create ~name:"qc" (Array.map Array.copy raw))
      in
      let points = ds.Dataset.points in
      let p = Pipeline.run ~eps:0.25 points in
      let sel_ids, _ = Pipeline.query p ~k in
      QCheck.assume (sel_ids <> []);
      let data = Array.to_list points in
      let mrr_true =
        Mrr.geometric ~data ~selected:(List.map (fun i -> points.(i)) sel_ids)
      in
      let cert = Pipeline.certified_bound p ~k in
      let opt = Optimal2d.solve ~points ~k () in
      let tol = Kregret_check.Tolerance.tie in
      if mrr_true < opt.Optimal2d.mrr -. tol then
        QCheck.Test.fail_reportf
          "approx selection beats the exact optimum: %.9f < %.9f" mrr_true
          opt.Optimal2d.mrr;
      if mrr_true > cert +. tol then
        QCheck.Test.fail_reportf
          "approx mrr %.9f exceeds its certificate %.9f" mrr_true cert;
      true)

(* ---- pool-width invariance ----------------------------------------------- *)

let test_jobs_bit_identity () =
  let points =
    (Dataset.normalize
       (Generator.anti_correlated (Rng.create 2014) ~n:300 ~d:4))
      .Dataset.points
  in
  let at_jobs j =
    with_jobs j (fun () ->
        let r = Kernel.reduce ~eps:0.3 points in
        let p = Pipeline.run ~eps:0.3 points in
        let k = min 5 (Pipeline.stored_length p) in
        ( r.Kernel.ids,
          r.Kernel.winners,
          p.Pipeline.order,
          Int64.bits_of_float (Pipeline.mrr_at p ~k) ))
  in
  let ids1, win1, ord1, mrr1 = at_jobs 1 in
  List.iter
    (fun j ->
      let ids, win, ord, mrr = at_jobs j in
      Alcotest.(check (array int))
        (Printf.sprintf "kernel ids at jobs %d" j)
        ids1 ids;
      Alcotest.(check (array int))
        (Printf.sprintf "winners at jobs %d" j)
        win1 win;
      Alcotest.(check (array int))
        (Printf.sprintf "greedy order at jobs %d" j)
        ord1 ord;
      Alcotest.(check int64) (Printf.sprintf "mrr bits at jobs %d" j) mrr1 mrr)
    [ 2; 4 ]

(* ---- the full oracle on the fuzzer's degenerate stream ------------------- *)

let test_oracle_on_instance_stream () =
  let seed = 907 in
  let master = Rng.create seed in
  for id = 0 to 4 do
    let inst = Instance.generate ~seed ~id master in
    match Approx_oracle.check ~jobs_hi:2 inst with
    | [] -> ()
    | failures ->
        Alcotest.failf "%s: %s" (Instance.describe inst)
          (String.concat "; "
             (List.map (fun (c, m) -> c ^ ": " ^ m) failures))
  done

let suite =
  [
    QCheck_alcotest.to_alcotest prop_subset_and_cover;
    QCheck_alcotest.to_alcotest prop_monotone_in_eps;
    Alcotest.test_case "eps/resolution roundtrip d=2..7" `Quick
      test_resolution_roundtrip;
    Alcotest.test_case "reduce rejects bad input" `Quick
      test_reduce_rejects_bad_input;
    QCheck_alcotest.to_alcotest prop_optimal2d_sandwich;
    Alcotest.test_case "jobs {1,2,4} bit-identity" `Quick
      test_jobs_bit_identity;
    Alcotest.test_case "approx oracle on degenerate instances" `Slow
      test_oracle_on_instance_stream;
  ]
