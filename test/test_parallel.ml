(* The parallel substrate: pool mechanics (exception propagation, nested-use
   rejection, deterministic reduction order) and the parallel ≡ sequential
   contract for every hot path that fans out over the pool — skyline
   indices, happy sets, GeoGreedy insertion order + mrr, Greedy argmins and
   Monte-Carlo mrr estimates must be bit-identical for jobs ∈ {1, 2, 4}. *)

open Testutil
module Pool = Kregret_parallel.Pool
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Mrr = Kregret.Mrr

(* Run [f] under a global pool of width [jobs], restoring the previous
   request afterwards so suites do not leak pool configuration. *)
let with_jobs jobs f =
  let before = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs before) f

let jobs_under_test = [ 1; 2; 4 ]

(* ---- pool mechanics ------------------------------------------------------ *)

let test_parallel_for_covers_range () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let n = 1000 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~pool ~chunk_size:7 ~lo:0 ~hi:n (fun i ->
      hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits);
  (* empty and singleton ranges *)
  Pool.parallel_for ~pool ~lo:5 ~hi:5 (fun _ -> assert false);
  let got = ref (-1) in
  Pool.parallel_for ~pool ~lo:41 ~hi:42 (fun i -> got := i);
  Alcotest.(check int) "singleton" 41 !got

let test_map_reduce_left_to_right () =
  (* string concatenation is non-associative-with-init: the fold order is
     observable. Every pool width must produce the sequential order. *)
  let expect =
    String.concat "" (List.init 20 (fun c -> Printf.sprintf "[%d]" c))
  in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      let got =
        Pool.map_reduce ~pool ~chunk_size:1 ~lo:0 ~hi:20
          ~map:(fun a _ -> Printf.sprintf "[%d]" a)
          ~reduce:( ^ ) ""
      in
      Alcotest.(check string)
        (Printf.sprintf "chunk order at jobs=%d" jobs)
        expect got)
    jobs_under_test

let test_exception_propagation () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let raised =
    try
      Pool.parallel_for ~pool ~chunk_size:1 ~lo:0 ~hi:100 (fun i ->
          if i = 37 then failwith "boom-37");
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "failure reaches caller" (Some "boom-37")
    raised;
  (* the pool survives a failed region *)
  let acc = Atomic.make 0 in
  Pool.parallel_for ~pool ~lo:0 ~hi:10 (fun i ->
      ignore (Atomic.fetch_and_add acc i));
  Alcotest.(check int) "pool usable after failure" 45 (Atomic.get acc)

let test_nested_use_rejected () =
  let pool = Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let rejected =
    try
      Pool.parallel_for ~pool ~chunk_size:1 ~lo:0 ~hi:8 (fun _ ->
          Pool.parallel_for ~pool ~chunk_size:1 ~lo:0 ~hi:8 (fun _ -> ()));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "nested region rejected" true rejected;
  (* ... and the pool still works afterwards *)
  let count = Atomic.make 0 in
  Pool.parallel_for ~pool ~lo:0 ~hi:16 (fun _ ->
      ignore (Atomic.fetch_and_add count 1));
  Alcotest.(check int) "pool usable after rejection" 16 (Atomic.get count)

let test_shutdown_rejects_use () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  let rejected =
    try
      Pool.parallel_for ~pool ~chunk_size:1 ~lo:0 ~hi:8 (fun _ -> ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "use after shutdown rejected" true rejected

(* ---- parallel ≡ sequential determinism ----------------------------------- *)

let gen_dataset name ~n ~d ~seed = Generator.by_name name (Rng.create seed) ~n ~d

(* qcheck driver: a small (name, n, d, seed) universe *)
let qc_instance =
  QCheck.make
    ~print:(fun (name, n, d, seed) ->
      Printf.sprintf "%s n=%d d=%d seed=%d" name n d seed)
    QCheck.Gen.(
      let* name = oneofl [ "independent"; "correlated"; "anti_correlated" ] in
      let* n = int_range 20 120 in
      let* d = int_range 2 5 in
      let* seed = int_range 0 10_000 in
      return (name, n, d, seed))

let across_jobs compute equal pp (name, n, d, seed) =
  let results =
    List.map (fun j -> (j, with_jobs j (fun () -> compute ~name ~n ~d ~seed)))
      jobs_under_test
  in
  match results with
  | [] | [ _ ] -> true
  | (j0, r0) :: rest ->
      List.for_all
        (fun (j, r) ->
          if equal r0 r then true
          else
            QCheck.Test.fail_reportf
              "jobs=%d and jobs=%d disagree on %s n=%d d=%d seed=%d:@.%s@.vs@.%s"
              j0 j name n d seed (pp r0) (pp r))
        rest

let pp_int_array a =
  String.concat "," (List.map string_of_int (Array.to_list a))

let prop_skyline_deterministic inst =
  across_jobs
    (fun ~name ~n ~d ~seed ->
      let ds = gen_dataset name ~n ~d ~seed in
      ( Skyline.naive ds.Dataset.points,
        Skyline.sfs ds.Dataset.points ))
    (fun (a1, s1) (a2, s2) -> a1 = a2 && s1 = s2)
    (fun (a, s) ->
      Printf.sprintf "naive=[%s] sfs=[%s]" (pp_int_array a) (pp_int_array s))
    inst

let prop_happy_deterministic inst =
  across_jobs
    (fun ~name ~n ~d ~seed ->
      let ds = gen_dataset name ~n ~d ~seed in
      let sky = Skyline.of_dataset ds in
      Happy.happy_points sky.Dataset.points)
    ( = )
    (fun a -> Printf.sprintf "happy=[%s]" (pp_int_array a))
    inst

let prop_geo_greedy_deterministic inst =
  across_jobs
    (fun ~name ~n ~d ~seed ->
      let ds = gen_dataset name ~n ~d ~seed in
      let sky = Skyline.of_dataset ds in
      let r = Geo_greedy.run ~points:sky.Dataset.points ~k:(min 8 n) () in
      (r.Geo_greedy.order, r.Geo_greedy.mrr, r.Geo_greedy.rescans))
    ( = )
    (fun (order, mrr, rescans) ->
      Printf.sprintf "order=[%s] mrr=%.17g rescans=%d"
        (String.concat "," (List.map string_of_int order))
        mrr rescans)
    inst

let prop_greedy_lp_deterministic inst =
  across_jobs
    (fun ~name ~n ~d ~seed ->
      (* small n: one LP per candidate per iteration *)
      let n = min n 40 in
      let ds = gen_dataset name ~n ~d ~seed in
      let sky = Skyline.of_dataset ds in
      let r = Greedy_lp.run ~points:sky.Dataset.points ~k:5 () in
      (r.Greedy_lp.order, r.Greedy_lp.mrr, r.Greedy_lp.lp_calls))
    ( = )
    (fun (order, mrr, calls) ->
      Printf.sprintf "order=[%s] mrr=%.17g lp_calls=%d"
        (String.concat "," (List.map string_of_int order))
        mrr calls)
    inst

let prop_sampled_mrr_deterministic inst =
  across_jobs
    (fun ~name ~n ~d ~seed ->
      let ds = gen_dataset name ~n ~d ~seed in
      let data = Dataset.to_list ds in
      let selected =
        match List.filteri (fun i _ -> i mod 7 = 0) data with
        | [] -> [ List.hd data ]
        | sel -> sel
      in
      (* an off-block-multiple budget exercises the tail block *)
      Mrr.sampled ~rng:(Rng.create seed) ~samples:333 ~data ~selected)
    (fun (a : float) b -> Float.equal a b)
    (fun m -> Printf.sprintf "%.17g" m)
    inst

(* ---- adaptive chunk granularity (ISSUE 6) -------------------------------- *)

let test_chunk_plan () =
  (* explicit chunk_size passes through verbatim *)
  Alcotest.(check int) "explicit verbatim" 7
    (Pool.chunk_plan ~chunk_size:7 ~n:1000 ());
  (* tiny total work inlines as a single chunk *)
  Alcotest.(check int) "small region inlines" 10
    (Pool.chunk_plan ~n:10 ());
  Alcotest.(check int) "cheap items inline" 40_000
    (Pool.chunk_plan ~cost:1. ~n:40_000 ());
  (* expensive items split fine, but never below ceil(n / 64) per chunk *)
  Alcotest.(check int) "expensive items floor at the 64-chunk cap" 16
    (Pool.chunk_plan ~cost:1e6 ~n:1000 ());
  (* the 64-chunk cap bounds the chunk count on big cheap ranges *)
  let n = 1_000_000 in
  let c = Pool.chunk_plan ~cost:2. ~n () in
  let chunks = (n + c - 1) / c in
  Alcotest.(check bool)
    (Printf.sprintf "at most 64 chunks (got %d)" chunks)
    true (chunks <= 64);
  (* degenerate hints are clamped, not fatal *)
  Alcotest.(check bool) "nan cost tolerated" true
    (Pool.chunk_plan ~cost:nan ~n:100 () >= 1);
  Alcotest.(check bool) "negative cost tolerated" true
    (Pool.chunk_plan ~cost:(-5.) ~n:100 () >= 1);
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "n = 0 rejected" true
    (rejects (fun () -> Pool.chunk_plan ~n:0 ()));
  Alcotest.(check bool) "chunk_size = 0 rejected" true
    (rejects (fun () -> Pool.chunk_plan ~chunk_size:0 ~n:10 ()))

(* the plan — and with it any non-associative fold — must not move when the
   pool width does, whatever cost hint the caller supplies *)
let qc_cost_instance =
  QCheck.make
    ~print:(fun (n, cost) -> Printf.sprintf "n=%d cost=%g" n cost)
    QCheck.Gen.(
      let* n = int_range 1 5_000 in
      let* cost = float_range 0.5 1e6 in
      return (n, cost))

let prop_map_reduce_cost_invariant (n, cost) =
  let compute () =
    Pool.map_reduce ~cost ~lo:0 ~hi:n
      ~map:(fun a b -> Printf.sprintf "[%d,%d)" a b)
      ~reduce:( ^ ) ""
  in
  let results =
    List.map (fun j -> (j, with_jobs j compute)) jobs_under_test
  in
  match results with
  | [] -> true
  | (j0, r0) :: rest ->
      List.for_all
        (fun (j, r) ->
          r = r0
          || QCheck.Test.fail_reportf
               "chunking at jobs=%d and jobs=%d disagree (n=%d cost=%g)" j0 j
               n cost)
        rest

(* ---- Dd.create guard (satellite) ----------------------------------------- *)

let test_dd_dim_guard () =
  let module Dd = Kregret_hull.Dd in
  Alcotest.(check int) "cap exposed" 16 Dd.max_dim;
  (* boundary accepted: seeds 2^16 corners, so probe the refusal only *)
  List.iter
    (fun dim ->
      let rejected =
        try
          ignore (Dd.create ~dim ());
          false
        with Invalid_argument msg ->
          Alcotest.(check bool) "message names the 2^d blowup" true
            (String.length msg > 0
            && String.sub msg 0 9 = "Dd.create");
          true
      in
      Alcotest.(check bool)
        (Printf.sprintf "dim %d refused" dim)
        true rejected)
    [ 0; 17; 20 ]

let suite =
  [
    Alcotest.test_case "parallel_for covers the range" `Quick
      test_parallel_for_covers_range;
    Alcotest.test_case "map_reduce folds left to right" `Quick
      test_map_reduce_left_to_right;
    Alcotest.test_case "exceptions propagate to the caller" `Quick
      test_exception_propagation;
    Alcotest.test_case "nested regions are rejected" `Quick
      test_nested_use_rejected;
    Alcotest.test_case "use after shutdown is rejected" `Quick
      test_shutdown_rejects_use;
    Alcotest.test_case "Dd.create refuses dim > 16" `Quick test_dd_dim_guard;
    Alcotest.test_case "chunk_plan granularity model" `Quick test_chunk_plan;
    qcheck_case ~count:40 "chunk boundaries ignore the pool width"
      qc_cost_instance prop_map_reduce_cost_invariant;
    qcheck_case ~count:12 "skyline identical across jobs 1/2/4" qc_instance
      prop_skyline_deterministic;
    qcheck_case ~count:12 "happy set identical across jobs 1/2/4" qc_instance
      prop_happy_deterministic;
    qcheck_case ~count:12 "geo-greedy order+mrr identical across jobs 1/2/4"
      qc_instance prop_geo_greedy_deterministic;
    qcheck_case ~count:6 "greedy-lp order+mrr identical across jobs 1/2/4"
      qc_instance prop_greedy_lp_deterministic;
    qcheck_case ~count:12 "sampled mrr bit-identical across jobs 1/2/4"
      qc_instance prop_sampled_mrr_deterministic;
  ]
