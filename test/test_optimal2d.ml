open Testutil
module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Optimal2d = Kregret.Optimal2d
module Geo_greedy = Kregret.Geo_greedy
module Mrr = Kregret.Mrr

(* brute-force reference: all subsets of size <= k *)
let rec subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) n)
    @ subsets k (lo + 1) n

let brute_force points k =
  let n = Array.length points in
  let data = Array.to_list points in
  let k = min k n in
  List.fold_left
    (fun acc sub ->
      let selected = List.map (fun i -> points.(i)) sub in
      Float.min acc (Mrr.geometric ~data ~selected))
    infinity (subsets k 0 n)

let normalized_random st ~n =
  (Dataset.normalize
     (Dataset.create ~name:"o2d"
        (Array.of_list (random_points st ~n ~d:2))))
    .Dataset.points

let test_matches_brute_force () =
  let st = test_rng 808 in
  for _trial = 1 to 12 do
    let n = 6 + Random.State.int st 6 in
    let k = 2 + Random.State.int st 3 in
    let points = normalized_random st ~n in
    let dp = Optimal2d.solve ~points ~k () in
    let bf = brute_force points k in
    check_float ~eps:float_eps
      (Printf.sprintf "optimal (n=%d k=%d)" n k)
      bf dp.Optimal2d.mrr;
    (* the reported selection must actually achieve the reported value *)
    let selected = List.map (fun i -> points.(i)) dp.Optimal2d.order in
    check_float ~eps:float_eps "selection achieves it"
      dp.Optimal2d.mrr
      (Mrr.geometric ~data:(Array.to_list points) ~selected)
  done

let test_lemma5_instance_optimal () =
  (* the crafted Lemma-5 instance from test_optimality: optimum 0.0444 via
     the non-extreme midpoint *)
  let points =
    [| [| 1.0; 0.1 |]; [| 0.1; 1.0 |]; [| 0.85; 0.75 |]; [| 0.75; 0.85 |]; [| 0.79; 0.79 |] |]
  in
  let dp = Optimal2d.solve ~points ~k:3 () in
  check_float ~eps:1e-3 "exact optimum" 0.0444 dp.Optimal2d.mrr;
  Alcotest.(check bool) "uses the midpoint" true (List.mem 4 dp.Optimal2d.order)

let test_greedy_vs_optimal_quality () =
  (* GeoGreedy is near-optimal in 2-D but not optimal; the optimal solver
     must never lose *)
  let st = test_rng 809 in
  let worst_ratio = ref 1. in
  for _ = 1 to 10 do
    let points = normalized_random st ~n:40 in
    let k = 5 in
    let geo = Geo_greedy.run ~points ~k () in
    let opt = Optimal2d.solve ~points ~k () in
    Alcotest.(check bool)
      (Printf.sprintf "optimal %.4f <= greedy %.4f" opt.Optimal2d.mrr
         geo.Geo_greedy.mrr)
      true
      (opt.Optimal2d.mrr <= geo.Geo_greedy.mrr +. geom_eps);
    if geo.Geo_greedy.mrr > 1e-12 then
      worst_ratio := Float.max !worst_ratio (geo.Geo_greedy.mrr /. Float.max opt.Optimal2d.mrr 1e-12)
  done

let test_full_selection_zero () =
  let st = test_rng 810 in
  let points = normalized_random st ~n:15 in
  let dp = Optimal2d.solve ~points ~k:15 () in
  check_float ~eps:geom_eps "whole skyline gives zero regret" 0. dp.Optimal2d.mrr

let test_k1 () =
  let points = [| [| 1.; 0.2 |]; [| 0.2; 1. |]; [| 0.8; 0.8 |] |] in
  let dp = Optimal2d.solve ~points ~k:1 () in
  Alcotest.(check int) "one point" 1 (List.length dp.Optimal2d.order);
  check_float ~eps:float_eps "matches brute force" (brute_force points 1) dp.Optimal2d.mrr

let test_rejects_bad_input () =
  Alcotest.check_raises "3-D rejected"
    (Invalid_argument "Optimal2d.solve: 2-D points only") (fun () ->
      ignore (Optimal2d.solve ~points:[| [| 1.; 1.; 1. |] |] ~k:1 ()));
  Alcotest.check_raises "empty"
    (Invalid_argument "Optimal2d.solve: empty candidate set") (fun () ->
      ignore (Optimal2d.solve ~points:[||] ~k:1 ()))

let suite =
  [
    Alcotest.test_case "matches brute force" `Quick test_matches_brute_force;
    Alcotest.test_case "Lemma-5 instance" `Quick test_lemma5_instance_optimal;
    Alcotest.test_case "never loses to greedy" `Quick test_greedy_vs_optimal_quality;
    Alcotest.test_case "full selection" `Quick test_full_selection_zero;
    Alcotest.test_case "k = 1" `Quick test_k1;
    Alcotest.test_case "input validation" `Quick test_rejects_bad_input;
    qcheck_case ~count:40 "optimal <= greedy, both consistent"
      (qc_points ~n:20 ~d:2)
      (fun pts ->
        QCheck.assume (List.length pts >= 4);
        let points =
          (Kregret_dataset.Dataset.normalize
             (Kregret_dataset.Dataset.create ~name:"qc" (Array.of_list pts)))
            .Kregret_dataset.Dataset.points
        in
        let k = 3 in
        let opt = Optimal2d.solve ~points ~k () in
        let geo = Geo_greedy.run ~points ~k () in
        let sel = List.map (fun i -> points.(i)) opt.Optimal2d.order in
        let recomputed = Mrr.geometric ~data:(Array.to_list points) ~selected:sel in
        opt.Optimal2d.mrr <= geo.Geo_greedy.mrr +. geom_eps
        && abs_float (recomputed -. opt.Optimal2d.mrr) < float_eps
        && List.length opt.Optimal2d.order <= k);
  ]
