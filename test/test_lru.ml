(* Property tests for the serving result cache (lib/serve/lru.ml).

   Strategy: drive the real LRU and a tiny obviously-correct executable
   model (an MRU-ordered association list) with the same random operation
   sequence, comparing observable state after every step — returned values,
   length, MRU key order, and the exact hit/miss/eviction/insertion
   counters.

   Plus the serving-specific determinism property: a cache hit is
   bit-identical to a cold compute at any pool width (KREGRET_JOBS in
   {1,2,4}). *)

module Lru = Kregret_serve.Lru
module Pool = Kregret_parallel.Pool
module Stored_list = Kregret.Stored_list
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy

(* ---- the executable model ------------------------------------------------ *)

module Model = struct
  type t = {
    capacity : int;
    mutable entries : (int * int) list;  (* MRU first *)
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable insertions : int;
  }

  let create capacity =
    { capacity; entries = []; hits = 0; misses = 0; evictions = 0;
      insertions = 0 }

  let get m k =
    match List.assoc_opt k m.entries with
    | Some v ->
        m.hits <- m.hits + 1;
        m.entries <- (k, v) :: List.remove_assoc k m.entries;
        Some v
    | None ->
        m.misses <- m.misses + 1;
        None

  let put m k v =
    if m.capacity > 0 then
      if List.mem_assoc k m.entries then
        m.entries <- (k, v) :: List.remove_assoc k m.entries
      else begin
        m.insertions <- m.insertions + 1;
        m.entries <- (k, v) :: m.entries;
        if List.length m.entries > m.capacity then begin
          m.evictions <- m.evictions + 1;
          m.entries <-
            List.filteri (fun i _ -> i < m.capacity) m.entries
        end
      end

  let remove m k =
    let present = List.mem_assoc k m.entries in
    m.entries <- List.remove_assoc k m.entries;
    present

  let keys m = List.map fst m.entries
end

(* ---- operation sequences -------------------------------------------------- *)

type op = Put of int * int | Get of int | Remove of int | Clear

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Put (k, v)) (int_range 0 7) (int_range 0 99));
        (5, map (fun k -> Get k) (int_range 0 7));
        (1, map (fun k -> Remove k) (int_range 0 7));
        (1, return Clear);
      ])

let pp_op = function
  | Put (k, v) -> Printf.sprintf "Put(%d,%d)" k v
  | Get k -> Printf.sprintf "Get %d" k
  | Remove k -> Printf.sprintf "Remove %d" k
  | Clear -> "Clear"

let scenario_arb =
  QCheck.make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "cap=%d [%s]" cap
        (String.concat "; " (List.map pp_op ops)))
    QCheck.Gen.(
      pair (int_range 0 5) (list_size (int_range 1 60) op_gen))

let agrees_with_model (cap, ops) =
  let real = Lru.create ~capacity:cap in
  let model = Model.create cap in
  List.for_all
    (fun op ->
      (match op with
      | Put (k, v) ->
          Lru.put real k v;
          Model.put model k v
      | Get k ->
          let a = Lru.get real k in
          let b = Model.get model k in
          if a <> b then
            QCheck.Test.fail_reportf "get %d: real %s, model %s" k
              (match a with Some v -> string_of_int v | None -> "None")
              (match b with Some v -> string_of_int v | None -> "None")
      | Remove k ->
          let a = Lru.remove real k in
          let b = Model.remove model k in
          if a <> b then
            QCheck.Test.fail_reportf "remove %d: real %b, model %b" k a b
      | Clear ->
          Lru.clear real;
          model.Model.entries <- []);
      let s = Lru.stats real in
      if Lru.length real <> List.length model.Model.entries then
        QCheck.Test.fail_reportf "after %s: length %d, model %d" (pp_op op)
          (Lru.length real)
          (List.length model.Model.entries);
      if Lru.keys_mru real <> Model.keys model then
        QCheck.Test.fail_reportf "after %s: MRU order [%s], model [%s]"
          (pp_op op)
          (String.concat ";" (List.map string_of_int (Lru.keys_mru real)))
          (String.concat ";" (List.map string_of_int (Model.keys model)));
      if
        (s.Lru.hits, s.Lru.misses, s.Lru.evictions, s.Lru.insertions)
        <> ( model.Model.hits, model.Model.misses, model.Model.evictions,
             model.Model.insertions )
      then
        QCheck.Test.fail_reportf
          "after %s: stats h%d m%d e%d i%d, model h%d m%d e%d i%d" (pp_op op)
          s.Lru.hits s.Lru.misses s.Lru.evictions s.Lru.insertions
          model.Model.hits model.Model.misses model.Model.evictions
          model.Model.insertions;
      true)
    ops

let never_exceeds_capacity (cap, ops) =
  let real = Lru.create ~capacity:cap in
  List.for_all
    (fun op ->
      (match op with
      | Put (k, v) -> Lru.put real k v
      | Get k -> ignore (Lru.get real k)
      | Remove k -> ignore (Lru.remove real k)
      | Clear -> Lru.clear real);
      Lru.length real <= cap)
    ops

(* conservation: every key ever inserted is live, evicted, or removed *)
let counters_conserve (cap, ops) =
  let real = Lru.create ~capacity:cap in
  let removed = ref 0 and cleared = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Put (k, v) -> Lru.put real k v
      | Get k -> ignore (Lru.get real k)
      | Remove k -> if Lru.remove real k then incr removed
      | Clear ->
          cleared := !cleared + Lru.length real;
          Lru.clear real)
    ops;
  let s = Lru.stats real in
  s.Lru.insertions
  = Lru.length real + s.Lru.evictions + !removed + !cleared

(* ---- unit edges ----------------------------------------------------------- *)

let test_capacity_zero () =
  let c = Lru.create ~capacity:0 in
  Lru.put c 1 10;
  Alcotest.(check (option int)) "disabled cache misses" None (Lru.get c 1);
  Alcotest.(check int) "disabled cache stays empty" 0 (Lru.length c);
  let s = Lru.stats c in
  Alcotest.(check int) "no insertions" 0 s.Lru.insertions;
  Alcotest.(check int) "one miss" 1 s.Lru.misses;
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: capacity must be >= 0") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

let test_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.put c 1 1;
  Lru.put c 2 2;
  Lru.put c 3 3;
  ignore (Lru.get c 1);  (* 1 is now MRU: [1;3;2] *)
  Lru.put c 4 4;  (* evicts 2 *)
  Alcotest.(check (list int)) "MRU order" [ 4; 1; 3 ] (Lru.keys_mru c);
  Alcotest.(check bool) "2 evicted" false (Lru.mem c 2);
  Alcotest.(check int) "one eviction" 1 (Lru.stats c).Lru.evictions

(* ---- cache hits are bit-identical across pool widths ---------------------- *)

let test_jobs_invariant_hits () =
  let st = Testutil.test_rng 61 in
  let points = Array.init 90 (fun _ -> Testutil.random_point st 3) in
  let pipeline () =
    let sky_idx = Skyline.sfs points in
    let sky = Array.map (fun i -> points.(i)) sky_idx in
    let happy_idx = Happy.happy_points sky in
    let happy = Array.map (fun i -> sky.(i)) happy_idx in
    let stored = Stored_list.preprocess happy in
    let k = min 5 (Stored_list.length stored) in
    (Stored_list.query stored ~k, Stored_list.mrr_at stored ~k)
  in
  let saved = Pool.get_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_jobs saved)
    (fun () ->
      let cache = Lru.create ~capacity:8 in
      (* cold compute at width 1 populates the cache *)
      Pool.set_jobs 1;
      let cold = pipeline () in
      Lru.put cache "answer" cold;
      List.iter
        (fun jobs ->
          Pool.set_jobs jobs;
          let fresh = pipeline () in
          let hit =
            match Lru.get cache "answer" with
            | Some v -> v
            | None -> Alcotest.fail "cache lost the answer"
          in
          let (sel_f, mrr_f), (sel_h, mrr_h) = (fresh, hit) in
          Alcotest.(check (list int))
            (Printf.sprintf "selection: hit == cold compute at jobs=%d" jobs)
            sel_f sel_h;
          Alcotest.(check bool)
            (Printf.sprintf "mrr bits: hit == cold compute at jobs=%d" jobs)
            true
            (Int64.equal (Int64.bits_of_float mrr_f) (Int64.bits_of_float mrr_h)))
        [ 1; 2; 4 ])

let suite =
  [
    Testutil.qcheck_case ~count:300 "LRU agrees with the executable model"
      scenario_arb agrees_with_model;
    Testutil.qcheck_case ~count:300 "capacity is never exceeded" scenario_arb
      never_exceeds_capacity;
    Testutil.qcheck_case ~count:300
      "insertions = live + evicted + removed + cleared" scenario_arb
      counters_conserve;
    Alcotest.test_case "capacity 0 disables the cache" `Quick test_capacity_zero;
    Alcotest.test_case "eviction follows recency" `Quick test_eviction_order;
    Alcotest.test_case "cache hits bit-identical across KREGRET_JOBS {1,2,4}"
      `Quick test_jobs_invariant_hits;
  ]
