(* Csv_io coverage (satellite of the fuzzing PR): bit-exact round-trips
   (the repro corpus depends on them), header naming rules, blank/comment
   tolerance, and malformed-row error paths with line numbers. *)

module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Csv_io = Kregret_dataset.Csv_io

let temp_csv name f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kregret-csvio-%d-%s.csv" (Unix.getpid ()) name)
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let test_round_trip_bit_exact () =
  (* save uses %.17g, so load must reproduce every float bit-for-bit — the
     corpus replay relies on this to re-run exactly the failing instance *)
  temp_csv "roundtrip" @@ fun path ->
  let ds = Generator.anti_correlated (Rng.create 41) ~n:60 ~d:4 in
  Csv_io.save path ds;
  let back = Csv_io.load path in
  Alcotest.(check int) "size preserved" (Dataset.size ds) (Dataset.size back);
  Alcotest.(check int) "dim preserved" ds.Dataset.dim back.Dataset.dim;
  Alcotest.(check string) "name read from the header" ds.Dataset.name
    back.Dataset.name;
  Alcotest.(check bool) "points bit-identical" true
    (ds.Dataset.points = back.Dataset.points);
  (* a second round trip is exact too (fixpoint) *)
  temp_csv "roundtrip2" @@ fun path2 ->
  Csv_io.save path2 back;
  let again = Csv_io.load path2 in
  Alcotest.(check bool) "fixpoint" true
    (back.Dataset.points = again.Dataset.points)

let test_name_resolution () =
  temp_csv "names" @@ fun path ->
  write path "# name=from-header dim=2 n=1\n0.5,1\n";
  Alcotest.(check string) "header wins by default" "from-header"
    (Csv_io.load path).Dataset.name;
  Alcotest.(check string) "explicit name overrides the header" "explicit"
    (Csv_io.load ~name:"explicit" path).Dataset.name;
  temp_csv "noheader" @@ fun path2 ->
  write path2 "0.5,1\n";
  Alcotest.(check string) "falls back to the basename"
    (Filename.remove_extension (Filename.basename path2))
    (Csv_io.load path2).Dataset.name

let test_blank_and_comment_lines_skipped () =
  temp_csv "comments" @@ fun path ->
  write path "# a comment\n\n0.25, 0.75\n   \n# trailing note\n1, 0.5\n";
  let ds = Csv_io.load path in
  Alcotest.(check int) "two data rows" 2 (Dataset.size ds);
  Alcotest.(check bool) "whitespace around fields trimmed" true
    (ds.Dataset.points.(0) = [| 0.25; 0.75 |]
    && ds.Dataset.points.(1) = [| 1.; 0.5 |])

let test_malformed_field_reports_line () =
  temp_csv "badfield" @@ fun path ->
  write path "# name=bad dim=2 n=2\n0.5,1\n0.7,oops\n";
  match Csv_io.load path with
  | _ -> Alcotest.fail "malformed field accepted"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the field and line: %s" msg)
        true
        (let contains needle =
           let nl = String.length needle and ml = String.length msg in
           let rec go i =
             i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
           in
           go 0
         in
         contains "oops" && contains "line 3")

let test_mixed_dimensions_rejected () =
  temp_csv "mixeddim" @@ fun path ->
  write path "0.5,1\n0.2,0.3,0.4\n";
  let rejected =
    match Csv_io.load path with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "ragged rows rejected by Dataset.create" true rejected

let test_empty_file_rejected () =
  temp_csv "empty" @@ fun path ->
  write path "# name=empty dim=2 n=0\n";
  let rejected =
    match Csv_io.load path with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "no data rows rejected" true rejected

let test_parse_line () =
  Alcotest.(check bool) "simple record" true
    (Csv_io.parse_line "0.5,0.25,1" = [| 0.5; 0.25; 1. |]);
  Alcotest.(check bool) "scientific notation" true
    (Csv_io.parse_line "1e-3, 2.5E2" = [| 0.001; 250. |]);
  let bad =
    match Csv_io.parse_line "0.5,," with
    | _ -> false
    | exception Failure _ -> true
  in
  Alcotest.(check bool) "empty field rejected" true bad

let suite =
  [
    Alcotest.test_case "round trip is bit-exact" `Quick
      test_round_trip_bit_exact;
    Alcotest.test_case "name resolution: arg > header > basename" `Quick
      test_name_resolution;
    Alcotest.test_case "blank and comment lines skipped" `Quick
      test_blank_and_comment_lines_skipped;
    Alcotest.test_case "malformed field reports its line" `Quick
      test_malformed_field_reports_line;
    Alcotest.test_case "ragged rows rejected" `Quick
      test_mixed_dimensions_rejected;
    Alcotest.test_case "empty file rejected" `Quick test_empty_file_rejected;
    Alcotest.test_case "parse_line parses records and rejects junk" `Quick
      test_parse_line;
  ]
