(* Shared helpers for the test suites. *)

module Vector = Kregret_geom.Vector

(* The shared agreement tolerance lives in one place (lib/check): tests,
   oracle and validation all compare floats with the same slack. *)
let float_eps = Kregret_check.Tolerance.tie
let geom_eps = Kregret_check.Tolerance.geom

(* Alcotest checker for floats with absolute tolerance. *)
let approx ?(eps = float_eps) () =
  Alcotest.testable
    (fun ppf x -> Format.fprintf ppf "%.9f" x)
    (fun a b -> abs_float (a -. b) <= eps)

let check_float ?eps msg expected actual =
  Alcotest.check (approx ?eps ()) msg expected actual

let vector : Vector.t Alcotest.testable =
  Alcotest.testable Vector.pp (Vector.equal ~eps:float_eps)

(* Deterministic pseudo-random generator for tests that build their own data
   (qcheck generators carry their own state). *)
let test_rng seed = Random.State.make [| seed; 0x5eed |]

let random_point st d =
  Array.init d (fun _ -> 0.05 +. (Random.State.float st 0.95))

let random_points st ~n ~d = List.init n (fun _ -> random_point st d)

(* QCheck arbitrary for points in (0,1]^d. *)
let qc_point d =
  QCheck.make
    ~print:(fun v -> Vector.to_string v)
    QCheck.Gen.(
      array_size (return d) (float_range 0.01 1.0))

let qc_points ~n ~d =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map Vector.to_string l))
    QCheck.Gen.(
      list_size (int_range 1 n) (array_size (return d) (float_range 0.01 1.0)))

let qcheck_case ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* [contains s sub] — naive substring search; error-message assertions. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0
