open Testutil
module Vector = Kregret_geom.Vector
module Regret_lp = Kregret_lp.Regret_lp

(* 2-D reference: cr(q, S) for the downward closure of S can be computed by
   scanning candidate support directions (axes + segment normals), as in
   Orthotope.member2d: cr = min over those w of (max_p w.p) / (w.q). *)
let cr_reference_2d selected q =
  let support w =
    List.fold_left (fun acc p -> Float.max acc (Vector.dot w p)) 0. selected
  in
  let dirs = ref [ [| 1.; 0. |]; [| 0.; 1. |] ] in
  List.iter
    (fun p ->
      List.iter
        (fun r ->
          let w = [| r.(1) -. p.(1); p.(0) -. r.(0) |] in
          let w = if w.(0) +. w.(1) < 0. then Vector.scale (-1.) w else w in
          if w.(0) >= -1e-12 && w.(1) >= -1e-12 && Vector.norm w > 1e-9 then
            dirs := w :: !dirs)
        selected)
    selected;
  List.fold_left
    (fun acc w ->
      let denom = Vector.dot w q in
      if denom > 1e-12 then Float.min acc (support w /. denom) else acc)
    infinity !dirs

let test_point_in_selection () =
  (* a selected point has critical ratio 1 (it is on the hull boundary) *)
  let s = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let cr, _ = Regret_lp.critical_ratio ~selected:s [| 1.; 0.2 |] in
  check_float "cr = 1" 1. cr

let test_interior_point () =
  let s = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let q = [| 0.3; 0.3 |] in
  let cr, _ = Regret_lp.critical_ratio ~selected:s q in
  Alcotest.(check bool) "cr > 1 for dominated interior point" true (cr > 1.);
  check_float "regret clipped to 0" 0. (Regret_lp.regret_ratio ~selected:s q)

let test_outside_point () =
  (* q = (1,1) sticks out of conv{(1,0.2),(0.2,1)}'s downward closure.
     The binding face is the segment between the two points: w = (1,1)/norm,
     support = 1.2, w.q = 2, so cr = 0.6. *)
  let s = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let cr, w = Regret_lp.critical_ratio ~selected:s [| 1.; 1. |] in
  check_float "cr" 0.6 cr;
  (* witness should expose regret 1 - 0.6 = 0.4 *)
  let support = List.fold_left (fun acc p -> Float.max acc (Vector.dot w p)) 0. s in
  check_float "witness ratio" 0.6 support

let test_witness_normalized () =
  let s = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let q = [| 0.9; 0.9 |] in
  let _, w = Regret_lp.critical_ratio ~selected:s q in
  check_float "w.q = 1" 1. (Vector.dot w q)

let test_mrr_lp_simple () =
  let data = [ [| 1.; 0.2 |]; [| 0.2; 1. |]; [| 1.; 1. |] ] in
  let selected = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  check_float "mrr" 0.4 (Regret_lp.max_regret_ratio ~data ~selected ())

let test_mrr_zero_when_all_selected () =
  let data = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  check_float "mrr = 0" 0. (Regret_lp.max_regret_ratio ~data ~selected:data ())

let test_worst_candidate () =
  let s = [ [| 1.; 0.2 |]; [| 0.2; 1. |] ] in
  let data = [| 1.; 1. |] :: [| 0.5; 0.5 |] :: s in
  match Regret_lp.worst_candidate ~data ~selected:s () with
  | Some (q, cr) ->
      Alcotest.check vector "worst is (1,1)" [| 1.; 1. |] q;
      check_float "its cr" 0.6 cr
  | None -> Alcotest.fail "nonempty data"

let test_empty_selection_rejected () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Regret_lp.critical_ratio: empty selection") (fun () ->
      ignore (Regret_lp.critical_ratio ~selected:[] [| 1.; 1. |]))

let test_convex_position_triangle () =
  let a = [| 1.; 0.1 |] and b = [| 0.1; 1. |] and c = [| 0.9; 0.9 |] in
  let mid = [| 0.5; 0.5 |] in
  Alcotest.(check bool) "a extreme" true (Regret_lp.in_convex_position ~others:[ b; c; mid ] a);
  Alcotest.(check bool) "c extreme" true (Regret_lp.in_convex_position ~others:[ a; b; mid ] c);
  Alcotest.(check bool) "mid not extreme" false
    (Regret_lp.in_convex_position ~others:[ a; b; c ] mid);
  Alcotest.(check bool) "duplicate not extreme" false
    (Regret_lp.in_convex_position ~others:[ a; b; Vector.copy c ] c)

let test_convex_position_no_others () =
  Alcotest.(check bool) "alone is extreme" true
    (Regret_lp.in_convex_position ~others:[] [| 0.5; 0.5 |])

let suite =
  [
    Alcotest.test_case "selected point: cr = 1" `Quick test_point_in_selection;
    Alcotest.test_case "interior point: cr > 1" `Quick test_interior_point;
    Alcotest.test_case "outside point: exact cr" `Quick test_outside_point;
    Alcotest.test_case "witness normalization" `Quick test_witness_normalized;
    Alcotest.test_case "mrr on 3 points" `Quick test_mrr_lp_simple;
    Alcotest.test_case "mrr of full set is 0" `Quick test_mrr_zero_when_all_selected;
    Alcotest.test_case "worst candidate" `Quick test_worst_candidate;
    Alcotest.test_case "empty selection rejected" `Quick test_empty_selection_rejected;
    Alcotest.test_case "convex position: triangle" `Quick test_convex_position_triangle;
    Alcotest.test_case "convex position: alone" `Quick test_convex_position_no_others;
    qcheck_case ~count:100 "LP cr matches 2-D direction scan"
      QCheck.(pair (qc_points ~n:6 ~d:2) (qc_point 2))
      (fun (selected, q) ->
        let lp, _ = Regret_lp.critical_ratio ~selected q in
        let reference = cr_reference_2d selected q in
        abs_float (lp -. reference) < 1e-5);
    qcheck_case ~count:50 "selected points have cr >= 1, with min exactly 1"
      (qc_points ~n:8 ~d:3)
      (fun selected ->
        let crs =
          List.map (fun p -> fst (Regret_lp.critical_ratio ~selected p)) selected
        in
        List.for_all (fun cr -> cr >= 1. -. 1e-6) crs
        && abs_float (List.fold_left Float.min infinity crs -. 1.) < 1e-6);
    qcheck_case ~count:50 "adding points never increases mrr"
      QCheck.(triple (qc_points ~n:5 ~d:3) (qc_point 3) (qc_point 3))
      (fun (selected, extra, q) ->
        let cr1, _ = Regret_lp.critical_ratio ~selected q in
        let cr2, _ = Regret_lp.critical_ratio ~selected:(extra :: selected) q in
        cr2 >= cr1 -. 1e-6);
  ]
