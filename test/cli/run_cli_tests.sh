#!/bin/sh
# End-to-end exercises of the kregret CLI. Invoked by dune (see ./dune) with
# the built executable as $1; runs in a sandbox directory, so file litter is
# confined. Any failed assertion aborts with a non-zero exit.
set -eu

KREGRET=$1
say() { echo "cli-test: $*"; }
fail() { echo "cli-test FAILURE: $*" >&2; exit 1; }

expect() { # expect <substring> <file>
  grep -q "$1" "$2" || fail "expected '$1' in $2: $(cat "$2")"
}

# --- gen + stats ------------------------------------------------------------
"$KREGRET" gen --dist nba -n 800 --seed 7 -o data.csv > out.txt
expect "wrote nba" out.txt
test -f data.csv || fail "gen did not write data.csv"

"$KREGRET" stats data.csv --summary > out.txt
expect "mean pairwise correlation" out.txt
expect "|Dsky|=" out.txt
expect "|Dhappy|=" out.txt

# --- query on a file vs the same synthetic spec ------------------------------
"$KREGRET" query data.csv -k 6 -a geogreedy -c happy > geo.txt
expect "maximum regret ratio" geo.txt
"$KREGRET" query data.csv -k 6 -a greedy -c happy > lp.txt
geo_mrr=$(sed -n 's/^maximum regret ratio = //p' geo.txt)
lp_mrr=$(sed -n 's/^maximum regret ratio = //p' lp.txt)
[ "$geo_mrr" = "$lp_mrr" ] || fail "geogreedy ($geo_mrr) != greedy ($lp_mrr)"

# hybrid mode must agree as well
"$KREGRET" query data.csv -k 6 -a geogreedy -c happy --vertex-cap 1 > hybrid.txt
hybrid_mrr=$(sed -n 's/^maximum regret ratio = //p' hybrid.txt)
[ "$geo_mrr" = "$hybrid_mrr" ] || fail "hybrid ($hybrid_mrr) != pure ($geo_mrr)"

# --- sweep CSV ----------------------------------------------------------------
"$KREGRET" sweep data.csv --ks 4,6 -o sweep.csv > /dev/null
expect "k,mrr,query_seconds" sweep.csv
n_rows=$(grep -c '^[0-9]' sweep.csv)
[ "$n_rows" = "2" ] || fail "sweep should have 2 data rows, got $n_rows"

# --- materialize + query-list round trip --------------------------------------
"$KREGRET" materialize data.csv -o stored.list > out.txt
expect "materialized" out.txt
"$KREGRET" query-list stored.list --data data.csv -k 6 > out.txt
expect "StoredList query k=6" out.txt
list_mrr=$(sed -n 's/.*mrr=\([0-9.]*\).*/\1/p' out.txt)
[ "$list_mrr" = "$geo_mrr" ] || fail "stored list mrr ($list_mrr) != geogreedy ($geo_mrr)"

# a mismatched dataset must be rejected
"$KREGRET" gen --dist nba -n 800 --seed 8 -o other.csv > /dev/null
if "$KREGRET" query-list stored.list --data other.csv -k 6 > out.txt 2>&1; then
  fail "query-list accepted a mismatched dataset"
fi

# --- validate ------------------------------------------------------------------
"$KREGRET" validate data.csv -k 6 > out.txt
expect "consistency: OK" out.txt

# --- error handling --------------------------------------------------------------
if "$KREGRET" query --dist no_such_distribution -n 10 -k 2 > out.txt 2>&1; then
  fail "unknown distribution accepted"
fi

# --- --jobs validation -----------------------------------------------------------
# a bad width is a *usage* error caught by the argument parser (exit 124),
# not a mid-run failure (exit 1)
set +e
"$KREGRET" query data.csv -k 4 --jobs 0 > out.txt 2>&1
rc=$?
set -e
[ "$rc" = "124" ] || fail "--jobs 0 should exit 124 (usage error), got $rc"
expect "JOBS must be >= 1" out.txt

set +e
"$KREGRET" query data.csv -k 4 --jobs two > out.txt 2>&1
rc=$?
set -e
[ "$rc" = "124" ] || fail "--jobs two should exit 124 (usage error), got $rc"
expect "JOBS must be an integer" out.txt

# a valid width runs, and matches the sequential answer
"$KREGRET" query data.csv -k 6 -a geogreedy -c happy --jobs 2 > jobs2.txt
jobs2_mrr=$(sed -n 's/^maximum regret ratio = //p' jobs2.txt)
[ "$jobs2_mrr" = "$geo_mrr" ] || fail "--jobs 2 mrr ($jobs2_mrr) != default ($geo_mrr)"

# an invalid KREGRET_JOBS falls back to the default width with a warning,
# instead of being silently ignored
KREGRET_JOBS=abc "$KREGRET" query data.csv -k 6 -a geogreedy -c happy > env.txt 2> env.err
expect "ignoring invalid KREGRET_JOBS" env.err
env_mrr=$(sed -n 's/^maximum regret ratio = //p' env.txt)
[ "$env_mrr" = "$geo_mrr" ] || fail "KREGRET_JOBS=abc mrr ($env_mrr) != default ($geo_mrr)"

# a valid KREGRET_JOBS is honored silently
KREGRET_JOBS=2 "$KREGRET" query data.csv -k 6 -a geogreedy -c happy > env.txt 2> env.err
test -s env.err && fail "KREGRET_JOBS=2 should not warn: $(cat env.err)"
env_mrr=$(sed -n 's/^maximum regret ratio = //p' env.txt)
[ "$env_mrr" = "$geo_mrr" ] || fail "KREGRET_JOBS=2 mrr ($env_mrr) != default ($geo_mrr)"

# --- observability ---------------------------------------------------------------
"$KREGRET" query data.csv -k 6 -a geogreedy -c happy --metrics metrics.json --stats > out.txt 2> stats.err
test -f metrics.json || fail "--metrics did not write metrics.json"
expect "kregret-obs/v1" metrics.json
expect "skyline.points_scanned" metrics.json
expect "geo_greedy.runs" metrics.json
expect "counters" stats.err
# identical run without the flags must not litter
rm -f metrics.json
"$KREGRET" query data.csv -k 6 -a geogreedy -c happy > plain.txt 2>&1
query_line=$(sed -n 's/^maximum regret ratio.*/&/p' plain.txt)
obs_line=$(sed -n 's/^maximum regret ratio.*/&/p' out.txt)
[ "$query_line" = "$obs_line" ] || fail "observability changed the answer: '$obs_line' vs '$query_line'"

say "all CLI checks passed"
