#!/bin/sh
# End-to-end exercises of the kregret CLI. Invoked by dune (see ./dune) with
# the built executable as $1; runs in a sandbox directory, so file litter is
# confined. Any failed assertion aborts with a non-zero exit.
set -eu

KREGRET=$1
say() { echo "cli-test: $*"; }
fail() { echo "cli-test FAILURE: $*" >&2; exit 1; }

expect() { # expect <substring> <file>
  grep -q "$1" "$2" || fail "expected '$1' in $2: $(cat "$2")"
}

# --- gen + stats ------------------------------------------------------------
"$KREGRET" gen --dist nba -n 800 --seed 7 -o data.csv > out.txt
expect "wrote nba" out.txt
test -f data.csv || fail "gen did not write data.csv"

"$KREGRET" stats data.csv --summary > out.txt
expect "mean pairwise correlation" out.txt
expect "|Dsky|=" out.txt
expect "|Dhappy|=" out.txt

# --- query on a file vs the same synthetic spec ------------------------------
"$KREGRET" query data.csv -k 6 -a geogreedy -c happy > geo.txt
expect "maximum regret ratio" geo.txt
"$KREGRET" query data.csv -k 6 -a greedy -c happy > lp.txt
geo_mrr=$(sed -n 's/^maximum regret ratio = //p' geo.txt)
lp_mrr=$(sed -n 's/^maximum regret ratio = //p' lp.txt)
[ "$geo_mrr" = "$lp_mrr" ] || fail "geogreedy ($geo_mrr) != greedy ($lp_mrr)"

# hybrid mode must agree as well
"$KREGRET" query data.csv -k 6 -a geogreedy -c happy --vertex-cap 1 > hybrid.txt
hybrid_mrr=$(sed -n 's/^maximum regret ratio = //p' hybrid.txt)
[ "$geo_mrr" = "$hybrid_mrr" ] || fail "hybrid ($hybrid_mrr) != pure ($geo_mrr)"

# --- sweep CSV ----------------------------------------------------------------
"$KREGRET" sweep data.csv --ks 4,6 -o sweep.csv > /dev/null
expect "k,mrr,query_seconds" sweep.csv
n_rows=$(grep -c '^[0-9]' sweep.csv)
[ "$n_rows" = "2" ] || fail "sweep should have 2 data rows, got $n_rows"

# --- materialize + query-list round trip --------------------------------------
"$KREGRET" materialize data.csv -o stored.list > out.txt
expect "materialized" out.txt
"$KREGRET" query-list stored.list --data data.csv -k 6 > out.txt
expect "StoredList query k=6" out.txt
list_mrr=$(sed -n 's/.*mrr=\([0-9.]*\).*/\1/p' out.txt)
[ "$list_mrr" = "$geo_mrr" ] || fail "stored list mrr ($list_mrr) != geogreedy ($geo_mrr)"

# a mismatched dataset must be rejected
"$KREGRET" gen --dist nba -n 800 --seed 8 -o other.csv > /dev/null
if "$KREGRET" query-list stored.list --data other.csv -k 6 > out.txt 2>&1; then
  fail "query-list accepted a mismatched dataset"
fi

# --- validate ------------------------------------------------------------------
"$KREGRET" validate data.csv -k 6 > out.txt
expect "consistency: OK" out.txt

# --- error handling --------------------------------------------------------------
if "$KREGRET" query --dist no_such_distribution -n 10 -k 2 > out.txt 2>&1; then
  fail "unknown distribution accepted"
fi

say "all CLI checks passed"
