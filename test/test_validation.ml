(* Validation.run coverage (satellite of the fuzzing PR): the report's
   fields must be consistent with direct calls into the modules it
   cross-checks, a healthy pipeline must validate ok, and a sabotaged
   tolerance must produce failures rather than a silent pass. *)

open Testutil
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Validation = Kregret.Validation
module Mrr = Kregret.Mrr
module Geo_greedy = Kregret.Geo_greedy
module Happy = Kregret_happy.Happy
module Skyline = Kregret_skyline.Skyline

let anti n d seed = Generator.anti_correlated (Rng.create seed) ~n ~d

(* the candidate tier exactly as Validation builds it: happy points of the
   skyline (same set as happy of the full data by Lemma 3, but index order
   matters for reproducing the greedy runs bit-for-bit) *)
let candidate_tier ds =
  let sky = Skyline.of_dataset ds in
  let happy_idx = Happy.happy_points sky.Dataset.points in
  (sky, Dataset.sub sky ~indices:happy_idx)

let test_clean_run_ok () =
  let ds = anti 60 3 21 in
  let r = Validation.run ds ~k:5 ~samples:500 in
  Alcotest.(check bool)
    (Printf.sprintf "ok (failures: %s)"
       (String.concat "; " r.Validation.failures))
    true r.Validation.ok;
  Alcotest.(check (list string)) "no failures" [] r.Validation.failures

let test_report_fields_match_direct_calls () =
  let ds = anti 50 3 22 in
  let k = 4 in
  let r = Validation.run ds ~k ~samples:400 in
  (* tier sizes *)
  let sky, happy = candidate_tier ds in
  Alcotest.(check int) "candidates = |D_happy|" (Dataset.size happy)
    r.Validation.candidates;
  Alcotest.(check int) "skyline = |D_sky|" (Dataset.size sky)
    r.Validation.skyline;
  (* mrr values match fresh runs of the modules being validated *)
  let geo = Geo_greedy.run ~points:happy.Dataset.points ~k () in
  check_float ~eps:0. "geo_mrr matches a direct GeoGreedy run"
    geo.Geo_greedy.mrr r.Validation.geo_mrr;
  let selected =
    List.map (fun i -> happy.Dataset.points.(i)) geo.Geo_greedy.order
  in
  check_float ~eps:0. "exact_over_full matches Mrr.geometric on the full data"
    (Mrr.geometric ~data:(Dataset.to_list ds) ~selected)
    r.Validation.exact_over_full;
  (* internal consistency *)
  check_float "lp_mrr agrees with geo_mrr" r.Validation.geo_mrr
    r.Validation.lp_mrr;
  check_float "stored_mrr agrees with geo_mrr" r.Validation.geo_mrr
    r.Validation.stored_mrr;
  Alcotest.(check bool) "sampled is a lower bound" true
    (r.Validation.sampled_lower_bound
    <= r.Validation.exact_over_full +. float_eps);
  Alcotest.(check bool) "mrr in [0,1)" true
    (r.Validation.geo_mrr >= 0. && r.Validation.geo_mrr < 1.)

let test_sampled_budget_monotone_safe () =
  (* raising the Monte-Carlo budget can only tighten the lower bound — it
     must never cross the exact value *)
  let ds = anti 40 3 25 in
  let small = Validation.run ds ~k:4 ~samples:100 in
  let large = Validation.run ds ~k:4 ~samples:2_000 in
  Alcotest.(check bool) "both ok" true
    (small.Validation.ok && large.Validation.ok);
  check_float ~eps:0. "exact value independent of the sampling budget"
    small.Validation.exact_over_full large.Validation.exact_over_full;
  Alcotest.(check bool) "bigger budget still below exact" true
    (large.Validation.sampled_lower_bound
    <= large.Validation.exact_over_full +. float_eps)

let test_sabotaged_tolerance_fails () =
  (* with eps = -1 every agreement check is impossible, so the report must
     carry failures and ok = false — proves failures are actually collected,
     not just initialized empty *)
  let ds = anti 40 3 23 in
  let r = Validation.run ds ~k:4 ~samples:200 ~eps:(-1.) in
  Alcotest.(check bool) "not ok" false r.Validation.ok;
  Alcotest.(check bool) "failures recorded" true (r.Validation.failures <> [])

let test_pp_report_renders_verdict () =
  let ds = anti 30 2 24 in
  let r = Validation.run ds ~k:3 ~samples:200 in
  let s = Format.asprintf "%a" Validation.pp_report r in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp mentions the consistency verdict" true
    (contains "consistency");
  Alcotest.(check bool) "pp reports OK on a clean run" true
    ((not r.Validation.ok) || contains "OK")

let suite =
  [
    Alcotest.test_case "clean pipeline validates ok" `Quick test_clean_run_ok;
    Alcotest.test_case "report fields match direct module calls" `Quick
      test_report_fields_match_direct_calls;
    Alcotest.test_case "sampling budget never crosses the exact value" `Quick
      test_sampled_budget_monotone_safe;
    Alcotest.test_case "sabotaged tolerance surfaces failures" `Quick
      test_sabotaged_tolerance_fails;
    Alcotest.test_case "pp_report renders a verdict" `Quick
      test_pp_report_renders_verdict;
  ]
