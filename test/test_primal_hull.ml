open Testutil
module Vector = Kregret_geom.Vector
module Bb = Kregret_hull.Beneath_beyond
module Model = Kregret_lp.Model

(* independent membership oracle: p in conv(points) iff the LP
   { lambda >= 0, sum lambda = 1, sum lambda q = p } is feasible *)
let convex_membership points p =
  let n = Array.length points in
  let d = Vector.dim p in
  let m = Model.create () in
  let lambda =
    Array.init n (fun i -> Model.add_var m ~name:(Printf.sprintf "l%d" i))
  in
  Model.add_eq m (List.init n (fun i -> (1., lambda.(i)))) 1.;
  for j = 0 to d - 1 do
    Model.add_eq m (List.init n (fun i -> (points.(i).(j), lambda.(i)))) p.(j)
  done;
  match Model.minimize m [] with
  | Model.Optimal _ -> true
  | Model.Infeasible -> false
  | Model.Unbounded -> true

let test_simplex_3d () =
  let points =
    [| [| 0.; 0.; 0. |]; [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |]
  in
  let h = Bb.of_points points in
  Bb.check_invariants h;
  Alcotest.(check int) "4 facets" 4 (Bb.num_facets h);
  Alcotest.(check (list int)) "all vertices" [ 0; 1; 2; 3 ] (Bb.vertices h);
  Alcotest.(check bool) "centroid inside" true
    (Bb.contains h [| 0.25; 0.25; 0.25 |]);
  Alcotest.(check bool) "outside point" false (Bb.contains h [| 0.9; 0.9; 0.9 |])

let test_octahedron () =
  let points =
    [|
      [| 1.; 0.; 0. |]; [| -1.; 0.; 0. |];
      [| 0.; 1.; 0. |]; [| 0.; -1.; 0. |];
      [| 0.; 0.; 1. |]; [| 0.; 0.; -1. |];
      [| 0.; 0.; 0. |] (* interior *);
    |]
  in
  let h = Bb.of_points points in
  Bb.check_invariants h;
  Alcotest.(check int) "8 facets" 8 (Bb.num_facets h);
  Alcotest.(check (list int)) "6 vertices, interior excluded" [ 0; 1; 2; 3; 4; 5 ]
    (Bb.vertices h)

let test_square_2d () =
  let points =
    [| [| 0.; 0. |]; [| 1.; 0.1 |]; [| 0.1; 1. |]; [| 0.9; 0.95 |]; [| 0.5; 0.5 |] |]
  in
  let h = Bb.of_points points in
  Bb.check_invariants h;
  Alcotest.(check (list int)) "quad vertices" [ 0; 1; 2; 3 ] (Bb.vertices h);
  Alcotest.(check int) "4 edges" 4 (Bb.num_facets h)

let test_degenerate_rejected () =
  (* all points on a line in 2-D *)
  let points = [| [| 0.; 0. |]; [| 0.5; 0.5 |]; [| 1.; 1. |] |] in
  Alcotest.check_raises "not full-dimensional"
    (Invalid_argument "Beneath_beyond: points are not full-dimensional")
    (fun () -> ignore (Bb.of_points points))

let test_euler_3d () =
  (* simplicial closed surface in 3-D: V - E + F = 2 with E = 3F/2 *)
  let st = test_rng 17 in
  let points = Array.of_list (random_points st ~n:40 ~d:3) in
  let h = Bb.of_points points in
  Bb.check_invariants h;
  let v = List.length (Bb.vertices h) and f = Bb.num_facets h in
  Alcotest.(check int) "Euler characteristic" 2 (v - (f * 3 / 2) + f)

let suite =
  [
    Alcotest.test_case "3-D simplex" `Quick test_simplex_3d;
    Alcotest.test_case "octahedron" `Quick test_octahedron;
    Alcotest.test_case "2-D quad" `Quick test_square_2d;
    Alcotest.test_case "degenerate input" `Quick test_degenerate_rejected;
    Alcotest.test_case "Euler characteristic (3-D)" `Quick test_euler_3d;
    qcheck_case ~count:40 "membership matches LP oracle (3-D)"
      QCheck.(pair (qc_points ~n:20 ~d:3) (qc_point 3))
      (fun (pts, q) ->
        QCheck.assume (List.length pts >= 6);
        let points = Array.of_list pts in
        match Bb.of_points points with
        | h -> Bb.contains ~eps:1e-7 h q = convex_membership points q
        | exception Invalid_argument _ -> true);
    qcheck_case ~count:30 "all inputs contained (4-D)"
      (qc_points ~n:18 ~d:4)
      (fun pts ->
        QCheck.assume (List.length pts >= 8);
        let points = Array.of_list pts in
        match Bb.of_points points with
        | h ->
            Bb.check_invariants h;
            Array.for_all (fun p -> Bb.contains ~eps:1e-7 h p) points
        | exception Invalid_argument _ -> true);
    qcheck_case ~count:30 "support function matches brute force (3-D)"
      QCheck.(pair (qc_points ~n:15 ~d:3) (qc_point 3))
      (fun (pts, w) ->
        QCheck.assume (List.length pts >= 5);
        let points = Array.of_list pts in
        match Bb.of_points points with
        | h ->
            let brute =
              Array.fold_left (fun acc p -> Float.max acc (Vector.dot w p))
                neg_infinity points
            in
            abs_float (Bb.support h w -. brute) < 1e-7
        | exception Invalid_argument _ -> true);
  ]
