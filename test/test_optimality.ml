(* Brute-force verification of the paper's candidate-set lemmas on small
   instances: enumerate every k-subset, compute its exact maximum regret
   ratio, and compare the optimum found over all points with the optimum
   found over happy points only (Lemma 2), plus related facts. *)

open Testutil
module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Happy = Kregret_happy.Happy
module Skyline = Kregret_skyline.Skyline
module Mrr = Kregret.Mrr
module Geo_greedy = Kregret.Geo_greedy

(* all k-subsets of [0 .. n-1] *)
let rec subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) n)
    @ subsets k (lo + 1) n

let optimal_mrr ~data points indices_pool k =
  (* "at most k points": with a pool smaller than k, taking the whole pool
     dominates any smaller subset (mrr is monotone in the selection) *)
  let k = min k (Array.length indices_pool) in
  List.fold_left
    (fun acc subset ->
      let selected = List.map (fun i -> points.(i)) subset in
      Float.min acc (Mrr.geometric ~data ~selected))
    infinity
    (subsets k 0 (Array.length indices_pool)
    |> List.map (List.map (fun j -> indices_pool.(j))))

let normalized_random st ~n ~d =
  let raw =
    Array.init n (fun _ -> Array.init d (fun _ -> 0.05 +. Random.State.float st 0.95))
  in
  (Dataset.normalize (Dataset.create ~name:"opt" raw)).Dataset.points

(* Lemma 2: the optimum over subsets of happy points equals the global
   optimum. *)
let lemma2_trial st ~n ~d ~k =
  let points = normalized_random st ~n ~d in
  let data = Array.to_list points in
  let all = Array.init n Fun.id in
  let sky = Skyline.sfs points in
  let sky_pts = Array.map (fun i -> points.(i)) sky in
  let happy = Array.map (fun j -> sky.(j)) (Happy.happy_points sky_pts) in
  let opt_all = optimal_mrr ~data points all k in
  let opt_happy = optimal_mrr ~data points happy k in
  (* happy optimum can a priori only be >=; Lemma 2 says it is equal *)
  check_float ~eps:1e-6
    (Printf.sprintf "Lemma 2 (n=%d d=%d k=%d): opt=%.6f" n d k opt_all)
    opt_all opt_happy

let test_lemma2_2d () =
  let st = test_rng 2024 in
  for _ = 1 to 6 do
    lemma2_trial st ~n:9 ~d:2 ~k:3
  done

let test_lemma2_3d () =
  let st = test_rng 2025 in
  for _ = 1 to 4 do
    lemma2_trial st ~n:8 ~d:3 ~k:3
  done

(* The greedy is a heuristic: it should never beat the brute-force optimum,
   and on small instances it should be within a reasonable factor. *)
let test_greedy_vs_optimal () =
  let st = test_rng 77 in
  for _ = 1 to 5 do
    let n = 9 and d = 2 and k = 3 in
    let points = normalized_random st ~n ~d in
    let data = Array.to_list points in
    let opt = optimal_mrr ~data points (Array.init n Fun.id) k in
    let greedy = Geo_greedy.run ~points ~k () in
    Alcotest.(check bool)
      (Printf.sprintf "greedy %.4f >= optimal %.4f" greedy.Geo_greedy.mrr opt)
      true
      (greedy.Geo_greedy.mrr >= opt -. 1e-9)
  done

(* Lemma 5: the optimal selection may need points outside D_conv. Crafted
   instance: boundary points a, b; two symmetric hull points c, e; and a
   non-extreme midpoint m just below the c-e edge. Any conv-only triple
   leaves c or e exposed (regret ~0.061), while {a, b, m} covers both
   (~0.044) — so every optimal set contains the non-conv point m. *)
let test_conv_not_sufficient () =
  let a = [| 1.0; 0.1 |] and b = [| 0.1; 1.0 |] in
  let c = [| 0.85; 0.75 |] and e = [| 0.75; 0.85 |] in
  let m = [| 0.79; 0.79 |] in
  let points = [| a; b; c; e; m |] in
  let data = Array.to_list points in
  let conv = Kregret_hull.Extreme.extreme_points data in
  Alcotest.(check int) "conv = {a, b, c, e}" 4 (List.length conv);
  Alcotest.(check bool) "m is not extreme" true
    (not (List.exists (fun p -> p == m) conv));
  Alcotest.(check bool) "m is happy" true
    (Happy.is_happy ~candidates:data m);
  let opt_all = optimal_mrr ~data points [| 0; 1; 2; 3; 4 |] 3 in
  let opt_conv = optimal_mrr ~data points [| 0; 1; 2; 3 |] 3 in
  check_float ~eps:1e-3 "global optimum uses m" 0.0444 opt_all;
  Alcotest.(check bool)
    (Printf.sprintf "conv-only %.4f strictly worse than %.4f" opt_conv opt_all)
    true
    (opt_conv > opt_all +. 0.01)

let suite =
  [
    Alcotest.test_case "Lemma 2 brute force (d=2)" `Slow test_lemma2_2d;
    Alcotest.test_case "Lemma 2 brute force (d=3)" `Slow test_lemma2_3d;
    Alcotest.test_case "greedy never beats optimal" `Slow test_greedy_vs_optimal;
    Alcotest.test_case "Lemma 5: conv alone insufficient" `Quick test_conv_not_sufficient;
  ]
