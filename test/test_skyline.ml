open Testutil
module Dominance = Kregret_skyline.Dominance
module Skyline = Kregret_skyline.Skyline
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng

let test_dominance () =
  let open Dominance in
  Alcotest.(check bool) "dominates" true (dominates [| 2.; 2. |] [| 1.; 2. |]);
  Alcotest.(check bool) "not self" false (dominates [| 1.; 2. |] [| 1.; 2. |]);
  Alcotest.(check bool) "incomparable" false (dominates [| 2.; 1. |] [| 1.; 2. |]);
  Alcotest.(check bool) "equal" true (compare [| 1.; 1. |] [| 1.; 1. |] = Equal);
  Alcotest.(check bool) "dominated" true
    (compare [| 1.; 1. |] [| 1.; 2. |] = Dominated);
  Alcotest.(check bool) "incomparable rel" true
    (compare [| 2.; 1. |] [| 1.; 2. |] = Incomparable)

let test_known_skyline () =
  let points =
    [|
      [| 1.0; 0.2 |] (* skyline *);
      [| 0.5; 0.5 |] (* dominated by (0.6, 0.6) *);
      [| 0.6; 0.6 |] (* skyline *);
      [| 0.2; 1.0 |] (* skyline *);
      [| 0.1; 0.1 |] (* dominated *);
    |]
  in
  let expect = [| 0; 2; 3 |] in
  Alcotest.(check (array int)) "naive" expect (Skyline.naive points);
  Alcotest.(check (array int)) "bnl" expect (Skyline.bnl points);
  Alcotest.(check (array int)) "sfs" expect (Skyline.sfs points)

let test_duplicates_once () =
  let points = [| [| 1.; 1. |]; [| 1.; 1. |]; [| 0.5; 0.5 |] |] in
  Alcotest.(check int) "naive" 1 (Array.length (Skyline.naive points));
  Alcotest.(check int) "bnl" 1 (Array.length (Skyline.bnl points));
  Alcotest.(check int) "sfs" 1 (Array.length (Skyline.sfs points))

let test_single_point () =
  let points = [| [| 0.3; 0.7 |] |] in
  Alcotest.(check (array int)) "singleton" [| 0 |] (Skyline.sfs points)

let test_all_incomparable () =
  (* points on an anti-diagonal: all in the skyline *)
  let points = Array.init 10 (fun i ->
      let t = float_of_int i /. 9. in
      [| 0.1 +. (0.9 *. t); 1. -. (0.9 *. t) |])
  in
  Alcotest.(check int) "all kept" 10 (Array.length (Skyline.bnl points))

let skyline_is_sound points indices =
  let sky = Array.map (fun i -> points.(i)) indices in
  (* no skyline point dominated by any point *)
  Array.for_all
    (fun s -> not (Array.exists (fun p -> Dominance.dominates p s) points))
    sky
  &&
  (* every excluded point is dominated by or equal to a skyline point *)
  Array.for_all
    (fun p ->
      Array.exists
        (fun s ->
          match Dominance.compare s p with
          | Dominance.Dominates | Dominance.Equal -> true
          | Dominance.Dominated | Dominance.Incomparable -> false)
        sky)
    points

let same_set a b =
  let norm x = List.sort compare (Array.to_list x) in
  norm a = norm b

let test_of_dataset () =
  let ds = Generator.anti_correlated (Rng.create 17) ~n:300 ~d:3 in
  let sky = Skyline.of_dataset ds in
  Alcotest.(check string) "name" "anti_correlated/sky" sky.Dataset.name;
  Alcotest.(check bool) "smaller" true (Dataset.size sky <= Dataset.size ds)

let suite =
  [
    Alcotest.test_case "dominance" `Quick test_dominance;
    Alcotest.test_case "known skyline" `Quick test_known_skyline;
    Alcotest.test_case "duplicates kept once" `Quick test_duplicates_once;
    Alcotest.test_case "single point" `Quick test_single_point;
    Alcotest.test_case "anti-diagonal" `Quick test_all_incomparable;
    Alcotest.test_case "of_dataset" `Quick test_of_dataset;
    qcheck_case ~count:100 "three algorithms agree"
      (qc_points ~n:60 ~d:4)
      (fun pts ->
        let points = Array.of_list pts in
        let a = Skyline.naive points
        and b = Skyline.bnl points
        and c = Skyline.sfs points in
        same_set a b && same_set b c);
    qcheck_case ~count:100 "skyline is sound and complete"
      (qc_points ~n:60 ~d:3)
      (fun pts ->
        let points = Array.of_list pts in
        skyline_is_sound points (Skyline.sfs points));
    qcheck_case ~count:50 "idempotent"
      (qc_points ~n:40 ~d:3)
      (fun pts ->
        let points = Array.of_list pts in
        let sky = Array.map (fun i -> points.(i)) (Skyline.sfs points) in
        Array.length (Skyline.sfs sky) = Array.length sky);
  ]
