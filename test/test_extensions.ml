open Testutil
module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Average_regret = Kregret.Average_regret
module Interactive = Kregret.Interactive
module Geo_greedy = Kregret.Geo_greedy

let anti n d seed = Generator.anti_correlated (Rng.create seed) ~n ~d

(* --- average regret ------------------------------------------------------ *)

let test_avg_bounds () =
  let ds = anti 60 3 5 in
  let points = ds.Dataset.points in
  let ctx = Average_regret.prepare points in
  let all = Array.to_list points in
  check_float ~eps:geom_eps "full selection has zero average regret" 0.
    (Average_regret.average_regret ctx all);
  let single = [ points.(0) ] in
  let avg = Average_regret.average_regret ctx single in
  Alcotest.(check bool) "in [0,1]" true (avg >= 0. && avg <= 1.)

let test_avg_monotone () =
  let ds = anti 50 3 6 in
  let points = ds.Dataset.points in
  let ctx = Average_regret.prepare points in
  let sel k = List.init k (fun i -> points.(i)) in
  let prev = ref 1. in
  List.iter
    (fun k ->
      let avg = Average_regret.average_regret ctx (sel k) in
      Alcotest.(check bool) "monotone decreasing" true (avg <= !prev +. 1e-12);
      prev := avg)
    [ 1; 3; 6; 12; 25 ]

let test_avg_greedy () =
  let ds = anti 80 3 7 in
  let points = ds.Dataset.points in
  let ctx = Average_regret.prepare points in
  let r = Average_regret.greedy ctx ~points ~k:8 () in
  Alcotest.(check bool) "selected at most k" true
    (List.length r.Average_regret.order <= 8);
  Alcotest.(check bool) "avg regret sane" true
    (r.Average_regret.avg_regret >= 0. && r.Average_regret.avg_regret < 1.);
  (* average-optimizing greedy should get average regret at least as good as
     the mrr-optimizing one *)
  let geo = Geo_greedy.run ~points ~k:8 () in
  let geo_sel = List.map (fun i -> points.(i)) geo.Geo_greedy.order in
  let geo_avg = Average_regret.average_regret ctx geo_sel in
  Alcotest.(check bool)
    (Printf.sprintf "avg-greedy %.4f <= geo %.4f + slack"
       r.Average_regret.avg_regret geo_avg)
    true
    (r.Average_regret.avg_regret <= geo_avg +. 0.01);
  (* and conversely GeoGreedy should win (weakly) on mrr *)
  Alcotest.(check bool) "geo wins on mrr" true
    (geo.Geo_greedy.mrr <= r.Average_regret.mrr +. 0.01)

let test_avg_deterministic () =
  let ds = anti 40 3 8 in
  let points = ds.Dataset.points in
  let a = Average_regret.prepare ~seed:3 points in
  let b = Average_regret.prepare ~seed:3 points in
  let sel = [ points.(0); points.(3) ] in
  check_float ~eps:0. "same sample, same value"
    (Average_regret.average_regret a sel)
    (Average_regret.average_regret b sel)

(* --- interactive regret minimization ------------------------------------- *)

let test_interactive_converges () =
  let ds = anti 120 3 9 in
  let points = ds.Dataset.points in
  let utility = Vector.normalize [| 0.5; 0.3; 0.2 |] in
  let r = Interactive.simulate ~points ~utility () in
  Alcotest.(check bool) "asked at least one question" true (r.Interactive.questions >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "true regret %.4f small" r.Interactive.true_regret)
    true
    (r.Interactive.true_regret <= 0.05);
  (* candidate count shrinks monotonically *)
  let counts =
    List.map (fun round -> round.Interactive.candidates_left) r.Interactive.rounds
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "candidates shrink" true (decreasing counts)

let test_interactive_bound_sound () =
  (* the provable bound must dominate the true regret at the end *)
  let ds = anti 80 4 10 in
  let points = ds.Dataset.points in
  let utility = Vector.normalize [| 0.1; 0.4; 0.2; 0.3 |] in
  let r = Interactive.simulate ~target_regret:0.001 ~points ~utility () in
  match List.rev r.Interactive.rounds with
  | [] -> Alcotest.fail "no rounds"
  | last :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "true %.4f <= bound %.4f + eps" r.Interactive.true_regret
           last.Interactive.regret_bound)
        true
        (r.Interactive.true_regret <= last.Interactive.regret_bound +. float_eps)

let test_interactive_axis_utility () =
  (* a user who only cares about one dimension should end up with (a point
     tied with) the boundary point of that dimension *)
  let ds = anti 60 3 11 in
  let points = ds.Dataset.points in
  let utility = [| 1.; 0.; 0. |] in
  let r = Interactive.simulate ~points ~utility () in
  let best = Array.fold_left (fun acc p -> Float.max acc p.(0)) 0. points in
  check_float ~eps:float_eps "recommendation maximizes dim 0" best
    points.(r.Interactive.recommendation).(0)

let test_interactive_few_candidates () =
  let points = [| [| 1.; 0.2 |]; [| 0.2; 1. |]; [| 0.7; 0.7 |] |] in
  let r = Interactive.simulate ~points ~utility:[| 0.6; 0.4 |] () in
  check_float ~eps:geom_eps "exact answer on tiny input" 0. r.Interactive.true_regret

let suite =
  [
    Alcotest.test_case "avg: bounds" `Quick test_avg_bounds;
    Alcotest.test_case "avg: monotone in selection" `Quick test_avg_monotone;
    Alcotest.test_case "avg: greedy vs geo trade-off" `Quick test_avg_greedy;
    Alcotest.test_case "avg: deterministic sample" `Quick test_avg_deterministic;
    Alcotest.test_case "interactive: converges" `Quick test_interactive_converges;
    Alcotest.test_case "interactive: bound sound" `Quick test_interactive_bound_sound;
    Alcotest.test_case "interactive: axis utility" `Quick test_interactive_axis_utility;
    Alcotest.test_case "interactive: tiny input" `Quick test_interactive_few_candidates;
    qcheck_case ~count:10 "interactive: true regret within the proven bound"
      QCheck.(pair (qc_points ~n:40 ~d:3) (qc_point 3))
      (fun (pts, u) ->
        QCheck.assume (List.length pts >= 5);
        let ds =
          Dataset.normalize (Dataset.create ~name:"qc" (Array.of_list pts))
        in
        let r =
          Interactive.simulate ~max_rounds:30 ~points:ds.Dataset.points
            ~utility:(Vector.normalize u) ()
        in
        let final_bound =
          match List.rev r.Interactive.rounds with
          | last :: _ -> last.Interactive.regret_bound
          | [] -> 1.
        in
        (* soundness: the recommendation's true regret never exceeds the
           provable bound of the final round *)
        r.Interactive.true_regret <= final_bound +. float_eps);
  ]

(* appended edge-case tests *)

let test_interactive_display_exceeds_candidates () =
  let points = [| [| 1.; 0.3 |]; [| 0.3; 1. |]; [| 0.8; 0.8 |] |] in
  let r = Interactive.simulate ~display:10 ~points ~utility:[| 0.5; 0.5 |] () in
  (* one question suffices: everything shown at once *)
  Alcotest.(check int) "one question" 1 r.Interactive.questions;
  check_float ~eps:geom_eps "exact" 0. r.Interactive.true_regret

let test_interactive_rejects_small_display () =
  Alcotest.check_raises "display >= 2"
    (Invalid_argument "Interactive.simulate: display must be >= 2") (fun () ->
      ignore
        (Interactive.simulate ~display:1
           ~points:[| [| 1.; 1. |] |]
           ~utility:[| 1.; 0. |] ()))

let test_interactive_lenient_target () =
  (* target_regret = 1 stops after the first bound computation *)
  let ds = anti 50 3 21 in
  let r =
    Interactive.simulate ~target_regret:1.0 ~points:ds.Dataset.points
      ~utility:[| 0.4; 0.3; 0.3 |] ()
  in
  Alcotest.(check int) "single round" 1 (List.length r.Interactive.rounds)

let test_avg_prepare_rejects_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Average_regret.prepare: empty candidate set") (fun () ->
      ignore (Average_regret.prepare [||]))

let suite =
  suite
  @ [
      Alcotest.test_case "interactive: huge display" `Quick
        test_interactive_display_exceeds_candidates;
      Alcotest.test_case "interactive: display validation" `Quick
        test_interactive_rejects_small_display;
      Alcotest.test_case "interactive: lenient target" `Quick
        test_interactive_lenient_target;
      Alcotest.test_case "avg: empty rejected" `Quick test_avg_prepare_rejects_empty;
    ]
