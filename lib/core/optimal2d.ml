module Vector = Kregret_geom.Vector
module Skyline = Kregret_skyline.Skyline

type result = { order : int list; mrr : float }

(* Regret of point [q] against the hull face through [a] and [b] (the only
   face whose ray [q] can cross when [a], [b] are angular neighbors in the
   selection). *)
let gap_regret a b q =
  let n = [| b.(1) -. a.(1); a.(0) -. b.(0) |] in
  let c = Vector.dot n a in
  let denom = Vector.dot n q in
  if denom <= 0. then 0. else Float.max 0. (1. -. (c /. denom))

let solve ~points ~k () =
  let n_input = Array.length points in
  if n_input = 0 then invalid_arg "Optimal2d.solve: empty candidate set";
  if k < 1 then invalid_arg "Optimal2d.solve: k must be positive";
  Array.iter
    (fun p ->
      if Vector.dim p <> 2 then invalid_arg "Optimal2d.solve: 2-D points only")
    points;
  (* the optimum needs only skyline points, sorted by angle (equivalently by
     x descending: on a 2-D skyline x strictly decreases as y increases) *)
  let sky_idx = Skyline.sfs points in
  let order_by_angle = Array.copy sky_idx in
  Array.sort
    (fun a b -> compare points.(b).(0) points.(a).(0))
    order_by_angle;
  let sky = Array.map (fun i -> points.(i)) order_by_angle in
  let n = Array.length sky in
  let m_max = min k n in
  (* boundary costs: below the first selected point only the vertical face
     [x = s.x] matters; above the last only [y = s.y] *)
  let start_cost = Array.make n 0. in
  for j = 0 to n - 1 do
    for q = 0 to j - 1 do
      start_cost.(j) <-
        Float.max start_cost.(j) (1. -. (sky.(j).(0) /. sky.(q).(0)))
    done
  done;
  let end_cost = Array.make n 0. in
  for j = 0 to n - 1 do
    for q = j + 1 to n - 1 do
      end_cost.(j) <- Float.max end_cost.(j) (1. -. (sky.(j).(1) /. sky.(q).(1)))
    done
  done;
  (* gap costs between angular neighbors *)
  let cost = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for q = i + 1 to j - 1 do
        cost.(i).(j) <- Float.max cost.(i).(j) (gap_regret sky.(i) sky.(j) sky.(q))
      done
    done
  done;
  (* dp.(m-1).(j): best achievable max-cost over the prefix ending with the
     (m)-th selected point at [j] *)
  let dp = Array.make_matrix m_max n infinity in
  let parent = Array.make_matrix m_max n (-1) in
  for j = 0 to n - 1 do
    dp.(0).(j) <- start_cost.(j)
  done;
  for m = 1 to m_max - 1 do
    for j = 0 to n - 1 do
      for i = 0 to j - 1 do
        let v = Float.max dp.(m - 1).(i) cost.(i).(j) in
        if v < dp.(m).(j) then begin
          dp.(m).(j) <- v;
          parent.(m).(j) <- i
        end
      done
    done
  done;
  (* best over all selection sizes and last points *)
  let best = ref infinity and best_m = ref 0 and best_j = ref 0 in
  for m = 0 to m_max - 1 do
    for j = 0 to n - 1 do
      let v = Float.max dp.(m).(j) end_cost.(j) in
      if v < !best then begin
        best := v;
        best_m := m;
        best_j := j
      end
    done
  done;
  let rec backtrack m j acc =
    if m = 0 then j :: acc else backtrack (m - 1) parent.(m).(j) (j :: acc)
  in
  let chain = backtrack !best_m !best_j [] in
  { order = List.map (fun j -> order_by_angle.(j)) chain; mrr = Float.max 0. !best }
