module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy

type report = {
  candidates : int;
  skyline : int;
  geo_mrr : float;
  lp_mrr : float;
  stored_mrr : float;
  exact_over_full : float;
  sampled_lower_bound : float;
  ok : bool;
  failures : string list;
}

(* The individual assertions live in {!Invariants} so the differential
   fuzzer ([Kregret_check]) checks exactly the same properties on its random
   instances that [kregret validate] checks on a user's dataset. *)
let run ?(samples = 10_000) ?(eps = 1e-6) ds ~k =
  let failures = ref [] in
  let record msgs = failures := !failures @ msgs in
  let sky = Skyline.of_dataset ds in
  let happy_idx = Happy.happy_points sky.Dataset.points in
  let happy = Dataset.sub sky ~indices:happy_idx in
  (* Lemma 3 inclusion (happy is computed within the skyline, so only the
     size relation and membership need checking here) *)
  if Dataset.size happy > Dataset.size sky then
    record [ "happy tier larger than skyline" ];
  record
    (Invariants.subset_by_value ~eps:0. ~what:"Lemma 3: D_happy within D_sky"
       (Dataset.to_list happy) ~of_:(Dataset.to_list sky));
  let points = happy.Dataset.points in
  let geo = Geo_greedy.run ~points ~k () in
  let lp = Greedy_lp.run ~points ~k () in
  record
    (Invariants.agree ~eps ~what:"GeoGreedy mrr vs Greedy mrr"
       geo.Geo_greedy.mrr lp.Greedy_lp.mrr);
  record
    (Invariants.valid_selection ~what:"GeoGreedy selection"
       ~n:(Array.length points) ~k geo.Geo_greedy.order);
  let sl = Stored_list.preprocess ~max_length:(max k 8) points in
  let stored_mrr = Stored_list.mrr_at sl ~k in
  record
    (Invariants.prefix_of ~what:"StoredList prefix vs GeoGreedy order"
       ~prefix:(Stored_list.query sl ~k) geo.Geo_greedy.order);
  record
    (Invariants.agree ~eps ~what:"StoredList mrr vs GeoGreedy mrr" stored_mrr
       geo.Geo_greedy.mrr);
  let selected = List.map (fun i -> points.(i)) geo.Geo_greedy.order in
  let data = Dataset.to_list ds in
  let exact_over_full = Mrr.geometric ~data ~selected in
  let lp_over_full = Mrr.lp ~data ~selected in
  record
    (Invariants.agree ~eps ~what:"geometric evaluator vs LP evaluator"
       exact_over_full lp_over_full);
  record
    (Invariants.within_unit ~eps ~what:"geometric mrr over the full data"
       exact_over_full);
  let sampled_lower_bound =
    Mrr.sampled ~rng:(Rng.create 0xA11CE) ~samples ~data ~selected
  in
  record
    (Invariants.at_most ~eps ~what:"sampled regret vs the exact value"
       ~hi:exact_over_full sampled_lower_bound);
  {
    candidates = Dataset.size happy;
    skyline = Dataset.size sky;
    geo_mrr = geo.Geo_greedy.mrr;
    lp_mrr = lp.Greedy_lp.mrr;
    stored_mrr;
    exact_over_full;
    sampled_lower_bound;
    ok = !failures = [];
    failures = !failures;
  }

let pp_report ppf r =
  Format.fprintf ppf "candidates: %d happy of %d skyline@." r.candidates r.skyline;
  Format.fprintf ppf "mrr: GeoGreedy=%.6f Greedy=%.6f StoredList=%.6f@."
    r.geo_mrr r.lp_mrr r.stored_mrr;
  Format.fprintf ppf "over full data: exact=%.6f sampled>=%.6f@."
    r.exact_over_full r.sampled_lower_bound;
  if r.ok then Format.fprintf ppf "consistency: OK@."
  else
    List.iter (fun m -> Format.fprintf ppf "consistency FAILURE: %s@." m) r.failures
