module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy

type report = {
  candidates : int;
  skyline : int;
  geo_mrr : float;
  lp_mrr : float;
  stored_mrr : float;
  exact_over_full : float;
  sampled_lower_bound : float;
  ok : bool;
  failures : string list;
}

let run ?(samples = 10_000) ?(eps = 1e-6) ds ~k =
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
  let sky = Skyline.of_dataset ds in
  let happy_idx = Happy.happy_points sky.Dataset.points in
  let happy = Dataset.sub sky ~indices:happy_idx in
  (* Lemma 3 inclusion (happy is computed within the skyline, so only the
     size relation and membership need checking here) *)
  if Dataset.size happy > Dataset.size sky then
    fail "happy tier larger than skyline";
  Array.iter
    (fun p ->
      if
        not
          (Array.exists (fun q -> Vector.equal ~eps:0. p q) sky.Dataset.points)
      then fail "happy point missing from the skyline")
    happy.Dataset.points;
  let points = happy.Dataset.points in
  let geo = Geo_greedy.run ~points ~k () in
  let lp = Greedy_lp.run ~points ~k () in
  if abs_float (geo.Geo_greedy.mrr -. lp.Greedy_lp.mrr) > eps then
    fail "GeoGreedy mrr %.8f disagrees with Greedy mrr %.8f" geo.Geo_greedy.mrr
      lp.Greedy_lp.mrr;
  let sl = Stored_list.preprocess ~max_length:(max k 8) points in
  let stored_mrr = Stored_list.mrr_at sl ~k in
  if Stored_list.query sl ~k <> geo.Geo_greedy.order then
    fail "StoredList prefix differs from GeoGreedy order";
  if abs_float (stored_mrr -. geo.Geo_greedy.mrr) > eps then
    fail "StoredList mrr %.8f disagrees with GeoGreedy mrr %.8f" stored_mrr
      geo.Geo_greedy.mrr;
  let selected = List.map (fun i -> points.(i)) geo.Geo_greedy.order in
  let data = Dataset.to_list ds in
  let exact_over_full = Mrr.geometric ~data ~selected in
  let lp_over_full = Mrr.lp ~data ~selected in
  if abs_float (exact_over_full -. lp_over_full) > eps then
    fail "geometric evaluator %.8f disagrees with LP evaluator %.8f"
      exact_over_full lp_over_full;
  let sampled_lower_bound =
    Mrr.sampled ~rng:(Rng.create 0xA11CE) ~samples ~data ~selected
  in
  if sampled_lower_bound > exact_over_full +. eps then
    fail "sampled regret %.8f exceeds the exact value %.8f" sampled_lower_bound
      exact_over_full;
  {
    candidates = Dataset.size happy;
    skyline = Dataset.size sky;
    geo_mrr = geo.Geo_greedy.mrr;
    lp_mrr = lp.Greedy_lp.mrr;
    stored_mrr;
    exact_over_full;
    sampled_lower_bound;
    ok = !failures = [];
    failures = List.rev !failures;
  }

let pp_report ppf r =
  Format.fprintf ppf "candidates: %d happy of %d skyline@." r.candidates r.skyline;
  Format.fprintf ppf "mrr: GeoGreedy=%.6f Greedy=%.6f StoredList=%.6f@."
    r.geo_mrr r.lp_mrr r.stored_mrr;
  Format.fprintf ppf "over full data: exact=%.6f sampled>=%.6f@."
    r.exact_over_full r.sampled_lower_bound;
  if r.ok then Format.fprintf ppf "consistency: OK@."
  else
    List.iter (fun m -> Format.fprintf ppf "consistency FAILURE: %s@." m) r.failures
