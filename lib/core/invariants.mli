(** Reusable invariant checkers — the primitive assertions behind both
    {!Validation} (end-to-end pipeline self-test) and the differential
    fuzzer ([Kregret_check], which layers instance generation and shrinking
    on top of these).

    Every checker returns a list of human-readable failure messages; the
    empty list means the invariant holds. Checkers never raise on invariant
    violations — they describe them — so a caller can accumulate every
    violated property of an instance in one pass.

    Tolerances are explicit ([~eps]) everywhere: the canonical tie
    tolerance shared by the fuzzer and the test suites lives in
    [Kregret_check.Tolerance] (which depends on this library, not the other
    way around). *)

(** [agree ~eps ~what a b] — two independent evaluations of the same
    quantity must coincide within [eps]. *)
val agree : eps:float -> what:string -> float -> float -> string list

(** [at_most ~eps ~what ~hi x] — [x <= hi + eps] ([x] is claimed to be a
    lower bound of, or dominated by, [hi]). *)
val at_most : eps:float -> what:string -> hi:float -> float -> string list

(** [within_unit ~eps ~what x] — [x] is a regret ratio: [0 - eps <= x <= 1
    + eps]. *)
val within_unit : eps:float -> what:string -> float -> string list

(** [monotone_nonincreasing ~eps ~what xs] — e.g. mrr as a function of [k];
    each element may exceed its predecessor by at most [eps]. *)
val monotone_nonincreasing : eps:float -> what:string -> float list -> string list

(** [prefix_of ~what ~prefix full] — [prefix] is exactly the first
    [List.length prefix] elements of [full] (StoredList prefix property). *)
val prefix_of : what:string -> prefix:int list -> int list -> string list

(** [valid_selection ~what ~n ~k order] — indices in bounds, pairwise
    distinct, and at most [k] of them. *)
val valid_selection : what:string -> n:int -> k:int -> int list -> string list

(** [subset_by_value ~eps ~what smaller ~of_:larger] — every point of
    [smaller] occurs (coordinate-wise within [eps]) in [larger]; the
    Lemma-3 inclusion checks [D_conv ⊆ D_happy ⊆ D_sky]. *)
val subset_by_value :
  eps:float ->
  what:string ->
  Kregret_geom.Vector.t list ->
  of_:Kregret_geom.Vector.t list ->
  string list
