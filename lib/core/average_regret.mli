(** Average regret ratio — the paper's first future-work direction
    (Section VIII): minimize the {e expected} regret over utility functions
    instead of the worst case.

    The average is taken over a fixed quasi-random sample of non-negative
    unit weight vectors (a deterministic low-discrepancy-ish stream, so
    results are reproducible and two selections are comparable). With the
    sample fixed, the average regret of a selection is submodular-decreasing
    in the selected set, so the classic greedy gives a (1 - 1/e)
    approximation; that greedy is implemented here with the same seeding
    conventions as {!Geo_greedy}. *)

type t
(** a prepared evaluation context: the direction sample together with the
    per-direction maxima over the dataset *)

(** [prepare ~directions points] samples [directions] weight vectors
    (default 512) and precomputes [max_{q in points} w . q] for each.
    Raises [Invalid_argument] on an empty candidate array. *)
val prepare : ?directions:int -> ?seed:int -> Kregret_geom.Vector.t array -> t

(** [average_regret t selected] is the mean over the sample of
    [1 - max_{p in selected} w.p / max_{q in D} w.q]; in [[0, 1]]. *)
val average_regret : t -> Kregret_geom.Vector.t list -> float

type result = {
  order : int list;  (** selected indices, in insertion order *)
  avg_regret : float;  (** average regret of the selection *)
  mrr : float;  (** worst-case mrr of the same selection, for comparison *)
}

(** [greedy t ~points ~k ()] — greedy minimization of the average regret:
    seed with the boundary points, then repeatedly add the candidate with
    the largest marginal decrease of the sampled average. *)
val greedy : t -> points:Kregret_geom.Vector.t array -> k:int -> unit -> result
