module Vector = Kregret_geom.Vector
module Rng = Kregret_dataset.Rng

type t = {
  directions : Vector.t array;
  best : float array; (* best.(i) = max over the dataset of directions.(i) . q *)
}

let prepare ?(directions = 512) ?(seed = 7) points =
  if Array.length points = 0 then
    invalid_arg "Average_regret.prepare: empty candidate set";
  let d = Vector.dim points.(0) in
  let rng = Rng.create seed in
  let sample _ =
    Vector.normalize
      (Array.init d (fun _ -> abs_float (Rng.gaussian rng ~mu:0. ~sigma:1.) +. 1e-9))
  in
  let dirs = Array.init directions sample in
  let best =
    Array.map
      (fun w -> Array.fold_left (fun acc q -> Float.max acc (Vector.dot w q)) 0. points)
      dirs
  in
  { directions = dirs; best }

let average_regret t selected =
  if selected = [] then 1.
  else begin
    let total = ref 0. in
    Array.iteri
      (fun i w ->
        let u_sel =
          List.fold_left (fun acc p -> Float.max acc (Vector.dot w p)) 0. selected
        in
        if t.best.(i) > 0. then
          total := !total +. Float.max 0. (1. -. (u_sel /. t.best.(i))))
      t.directions;
    !total /. float_of_int (Array.length t.directions)
  end

type result = { order : int list; avg_regret : float; mrr : float }

let greedy t ~points ~k () =
  let n = Array.length points in
  if n = 0 then invalid_arg "Average_regret.greedy: empty candidate set";
  if k < 1 then invalid_arg "Average_regret.greedy: k must be positive";
  let d = Vector.dim points.(0) in
  let m = Array.length t.directions in
  let in_s = Array.make n false in
  let order = ref [] in
  let size = ref 0 in
  (* current best selected utility per sampled direction *)
  let u_sel = Array.make m 0. in
  let insert j =
    in_s.(j) <- true;
    order := j :: !order;
    incr size;
    Array.iteri
      (fun i w -> u_sel.(i) <- Float.max u_sel.(i) (Vector.dot w points.(j)))
      t.directions
  in
  List.iter
    (fun j -> if !size < k then insert j)
    (Geo_greedy.boundary_seeds points d);
  (* marginal gain of candidate j = sum over directions of the improvement of
     the (clipped) per-direction ratio *)
  let gain j =
    let acc = ref 0. in
    for i = 0 to m - 1 do
      if t.best.(i) > 0. then begin
        let u = Vector.dot t.directions.(i) points.(j) in
        if u > u_sel.(i) then
          acc :=
            !acc
            +. (Float.min 1. (u /. t.best.(i)) -. Float.min 1. (u_sel.(i) /. t.best.(i)))
      end
    done;
    !acc
  in
  let stop = ref false in
  while (not !stop) && !size < k do
    let best = ref (-1) and best_gain = ref 0. in
    for j = 0 to n - 1 do
      if not in_s.(j) then begin
        let g = gain j in
        if g > !best_gain then begin
          best := j;
          best_gain := g
        end
      end
    done;
    if !best < 0 then stop := true (* no candidate improves any direction *)
    else insert !best
  done;
  let order = List.rev !order in
  let selected = List.map (fun j -> points.(j)) order in
  {
    order;
    avg_regret = average_regret t selected;
    mrr = Mrr.geometric ~data:(Array.to_list points) ~selected;
  }
