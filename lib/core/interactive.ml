module Vector = Kregret_geom.Vector
module Model = Kregret_lp.Model

type round = {
  displayed : int list;
  chosen : int;
  candidates_left : int;
  regret_bound : float;
}

type result = {
  rounds : round list;
  recommendation : int;
  true_regret : float;
  questions : int;
}

(* The plausible-weight region is the cone
   { w >= 0 : w . (chosen - other) >= 0 for every observed preference }.
   [regret_vs region ~champion p] is the exact worst-case regret of
   recommending [champion] instead of [p] over that cone:

     max_{w in region} 1 - (w . champion) / (w . p)
   = 1 - min { w . champion : w in region, w . p = 1 }

   (the ratio is scale-invariant, so the cone is normalized by [w . p = 1]).
   A non-positive value proves [p] can never beat the champion — the pruning
   rule; the maximum over the surviving candidates is the provable regret
   bound of recommending the champion. *)
type region = { d : int; mutable prefs : Vector.t list (* chosen - other *) }

let regret_vs region ~champion p =
  let m = Model.create () in
  let w =
    Array.init region.d (fun i -> Model.add_var m ~name:(Printf.sprintf "w%d" i))
  in
  let dot_terms v = List.init region.d (fun i -> (v.(i), w.(i))) in
  Model.add_eq m (dot_terms p) 1.;
  List.iter (fun diff -> Model.add_ge m (dot_terms diff) 0.) region.prefs;
  match Model.minimize m (dot_terms champion) with
  | Model.Optimal { objective; _ } -> 1. -. objective
  | Model.Infeasible ->
      (* no plausible weight ranks p first at all *)
      0.
  | Model.Unbounded -> 0. (* objective is bounded below by 0 on the cone *)

let simulate ?(max_rounds = 20) ?(display = 4) ?(target_regret = 0.01) ~points
    ~utility () =
  let n = Array.length points in
  if n = 0 then invalid_arg "Interactive.simulate: empty candidate set";
  if display < 2 then invalid_arg "Interactive.simulate: display must be >= 2";
  let d = Vector.dim points.(0) in
  if Vector.dim utility <> d then
    invalid_arg "Interactive.simulate: utility dimension mismatch";
  let region = { d; prefs = [] } in
  (* plausible candidate indices (into [points]) *)
  let alive = ref (List.init n Fun.id) in
  let seen = Array.make n false in
  let champion = ref None in
  let rounds = ref [] in
  let questions = ref 0 in
  let recommendation = ref 0 in
  let finished = ref false in
  let round_no = ref 0 in
  while (not !finished) && !round_no < max_rounds do
    incr round_no;
    (* Display = running champion + fresh (never-displayed) candidates, the
       fresh ones picked for diversity by a small k-regret query. Always
       showing unseen points guarantees progress: once every plausible
       candidate has faced the champion chain, the champion is the user's
       true favorite. *)
    let unseen = List.filter (fun i -> not seen.(i)) !alive in
    let fresh_budget =
      match !champion with None -> display | Some _ -> display - 1
    in
    let fresh =
      if List.length unseen <= fresh_budget then unseen
      else begin
        let unseen_arr = Array.of_list unseen in
        let unseen_points = Array.map (fun i -> points.(i)) unseen_arr in
        List.map
          (fun j -> unseen_arr.(j))
          (Geo_greedy.run ~points:unseen_points ~k:fresh_budget ())
            .Geo_greedy.order
      end
    in
    let displayed =
      match !champion with Some c -> c :: fresh | None -> fresh
    in
    if List.length displayed < 2 then finished := true
    else begin
      (* the simulated user picks their true favorite among the displayed *)
      let chosen =
        List.fold_left
          (fun best i ->
            if Vector.dot utility points.(i) > Vector.dot utility points.(best)
            then i
            else best)
          (List.hd displayed) displayed
      in
      incr questions;
      List.iter (fun i -> seen.(i) <- true) displayed;
      champion := Some chosen;
      List.iter
        (fun other ->
          if other <> chosen then
            region.prefs <-
              Vector.sub points.(chosen) points.(other) :: region.prefs)
        displayed;
      (* exact champion-relative regret per candidate: prune the hopeless,
         bound the rest *)
      let champ = points.(chosen) in
      let keep = ref [] and bound = ref 0. in
      List.iter
        (fun i ->
          if i = chosen then keep := i :: !keep
          else begin
            let r = regret_vs region ~champion:champ points.(i) in
            if r > 1e-9 then begin
              keep := i :: !keep;
              if r > !bound then bound := r
            end
          end)
        !alive;
      alive := List.rev !keep;
      recommendation := chosen;
      rounds :=
        {
          displayed;
          chosen;
          candidates_left = List.length !alive;
          regret_bound = !bound;
        }
        :: !rounds;
      let nothing_new = List.for_all (fun i -> seen.(i)) !alive in
      if !bound <= target_regret || List.length !alive <= 1 || nothing_new then
        finished := true
    end
  done;
  let best_true =
    Array.fold_left (fun acc p -> Float.max acc (Vector.dot utility p)) 0. points
  in
  let true_regret =
    if best_true <= 0. then 0.
    else
      Float.max 0.
        (1. -. (Vector.dot utility points.(!recommendation) /. best_true))
  in
  {
    rounds = List.rev !rounds;
    recommendation = !recommendation;
    true_regret;
    questions = !questions;
  }
