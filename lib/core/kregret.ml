(** k-regret queries — the geometry approach of Peng & Wong (ICDE 2014).

    A k-regret query returns [k] tuples such that a user with any (unknown)
    linear utility function finds, among them, a tuple within a small factor
    of their favorite in the whole database; the worst-case factor is the
    {e maximum regret ratio}. Entry points:

    - {!Query} — one-call façade: normalize, reduce to happy points, run an
      algorithm, report the selection and its regret.
    - {!Geo_greedy} — the paper's Algorithm 1 (incremental geometric index).
    - {!Stored_list} — materialize once, answer any [k] in O(k).
    - {!Dynamic} — incremental inserts/deletes, bit-identical to a rebuild.
    - {!Greedy_lp} / {!Cube} — the VLDB 2010 baselines.
    - {!Optimal2d} — exact optimum in two dimensions (DP).
    - {!Mrr} — evaluate the maximum regret ratio of any selection.
    - {!Average_regret}, {!Interactive} — the paper's future-work directions.
    - {!Validation} — end-to-end consistency checks, built on the
      {!Invariants} checkers shared with the differential fuzzer
      ([Kregret_check]).
    - {!Toy} — the paper's worked car example.

    Candidate-set preprocessing (skyline, happy points) lives in the
    companion libraries [Kregret_skyline] and [Kregret_happy]; geometry and
    LP substrates in [Kregret_hull], [Kregret_lp], [Kregret_geom]; data
    generation in [Kregret_dataset]. See DESIGN.md for the architecture and
    EXPERIMENTS.md for the reproduction record. *)

module Mrr = Mrr
module Geo_greedy = Geo_greedy
module Greedy_lp = Greedy_lp
module Stored_list = Stored_list
module Dynamic = Dynamic
module Cube = Cube
module Optimal2d = Optimal2d
module Average_regret = Average_regret
module Interactive = Interactive
module Query = Query
module Invariants = Invariants
module Validation = Validation
module Toy = Toy
