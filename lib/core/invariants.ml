module Vector = Kregret_geom.Vector

let failf fmt = Format.kasprintf (fun m -> [ m ]) fmt

let agree ~eps ~what a b =
  if abs_float (a -. b) > eps then failf "%s: %.12g disagrees with %.12g (|Δ| = %.3g > %.3g)" what a b (abs_float (a -. b)) eps
  else []

let at_most ~eps ~what ~hi x =
  if x > hi +. eps then failf "%s: %.12g exceeds bound %.12g (by %.3g > %.3g)" what x hi (x -. hi) eps
  else []

let within_unit ~eps ~what x =
  if x < -.eps || x > 1. +. eps then failf "%s: %.12g outside [0, 1]" what x
  else []

let monotone_nonincreasing ~eps ~what xs =
  let rec go i = function
    | a :: (b :: _ as rest) ->
        if b > a +. eps then
          failf "%s: increases at position %d (%.12g -> %.12g, Δ = %.3g > %.3g)"
            what i a b (b -. a) eps
        else go (i + 1) rest
    | _ -> []
  in
  go 0 xs

let pp_ints order = String.concat "," (List.map string_of_int order)

let prefix_of ~what ~prefix full =
  let rec go i p f =
    match (p, f) with
    | [], _ -> []
    | _ :: _, [] ->
        failf "%s: prefix longer than the full order ([%s] vs [%s])" what
          (pp_ints prefix) (pp_ints full)
    | a :: p', b :: f' ->
        if a <> b then
          failf "%s: diverges at position %d (%d vs %d; [%s] vs [%s])" what i a
            b (pp_ints prefix) (pp_ints full)
        else go (i + 1) p' f'
  in
  go 0 prefix full

let valid_selection ~what ~n ~k order =
  let len = List.length order in
  let bad_bounds = List.filter (fun i -> i < 0 || i >= n) order in
  let seen = Hashtbl.create 16 in
  let dups =
    List.filter
      (fun i ->
        if Hashtbl.mem seen i then true
        else begin
          Hashtbl.add seen i ();
          false
        end)
      order
  in
  (if len > k then failf "%s: %d selected but k = %d" what len k else [])
  @ (match bad_bounds with
    | [] -> []
    | l -> failf "%s: out-of-range indices [%s] (n = %d)" what (pp_ints l) n)
  @
  match dups with
  | [] -> []
  | l -> failf "%s: duplicated indices [%s]" what (pp_ints l)

let subset_by_value ~eps ~what smaller ~of_:larger =
  List.concat_map
    (fun p ->
      if List.exists (fun q -> Vector.equal ~eps p q) larger then []
      else failf "%s: point %s missing from the superset" what (Vector.to_string p))
    smaller
