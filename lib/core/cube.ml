module Vector = Kregret_geom.Vector

type result = { order : int list; mrr : float; t_grid : int }

let run ?eps ~points ~k () =
  ignore eps;
  let n = Array.length points in
  if n = 0 then invalid_arg "Cube.run: empty candidate set";
  if k < 1 then invalid_arg "Cube.run: k must be positive";
  let d = Vector.dim points.(0) in
  let in_s = Array.make n false in
  let order = ref [] in
  let size = ref 0 in
  let insert j =
    if (not in_s.(j)) && !size < k then begin
      in_s.(j) <- true;
      order := j :: !order;
      incr size
    end
  in
  List.iter insert (Geo_greedy.boundary_seeds points d);
  (* largest grid resolution whose cell budget fits in the remaining slots *)
  let budget = k - !size in
  let fits t = float_of_int t ** float_of_int (d - 1) <= float_of_int budget in
  let t_grid =
    let rec grow t = if fits (t + 1) then grow (t + 1) else t in
    if budget <= 0 then 0 else grow 1
  in
  if t_grid > 0 then begin
    (* cell key = the clamped grid coordinates of the first d-1 dimensions *)
    let cells : (int list, int) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun j p ->
        let key =
          List.init (d - 1) (fun i ->
              min (t_grid - 1) (int_of_float (p.(i) *. float_of_int t_grid)))
        in
        match Hashtbl.find_opt cells key with
        | Some j' when points.(j').(d - 1) >= p.(d - 1) -> ()
        | _ -> Hashtbl.replace cells key j)
      points;
    let winners = Hashtbl.fold (fun _ j acc -> j :: acc) cells [] in
    List.iter insert (List.sort compare winners)
  end;
  let order = List.rev !order in
  let selected = List.map (fun j -> points.(j)) order in
  let mrr = Mrr.geometric ~data:(Array.to_list points) ~selected in
  { order; mrr; t_grid }
