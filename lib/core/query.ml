module Dataset = Kregret_dataset.Dataset

type algorithm = Greedy_lp | Geo_greedy | Stored_list | Cube
type candidate_set = All | Sky | Happy

type result = {
  candidates : Dataset.t;
  order : int list;
  selected : Kregret_geom.Vector.t list;
  mrr : float;
}

let algorithm_name = function
  | Greedy_lp -> "Greedy"
  | Geo_greedy -> "GeoGreedy"
  | Stored_list -> "StoredList"
  | Cube -> "Cube"

let candidate_set_name = function All -> "D" | Sky -> "Dsky" | Happy -> "Dhappy"

let reduce ds = function
  | All -> ds
  | Sky -> Kregret_skyline.Skyline.of_dataset ds
  | Happy -> Kregret_happy.Happy.of_dataset ds

let run ?(algorithm = Geo_greedy) ?(candidates = Happy) ds ~k =
  let cand = reduce ds candidates in
  let points = cand.Dataset.points in
  let order, mrr =
    match algorithm with
    | Geo_greedy ->
        let r = Geo_greedy.run ~points ~k () in
        (r.Geo_greedy.order, r.Geo_greedy.mrr)
    | Greedy_lp ->
        let r = Greedy_lp.run ~points ~k () in
        (r.Greedy_lp.order, r.Greedy_lp.mrr)
    | Stored_list ->
        let t = Stored_list.preprocess points in
        (Stored_list.query t ~k, Stored_list.mrr_at t ~k)
    | Cube ->
        let r = Cube.run ~points ~k () in
        (r.Cube.order, r.Cube.mrr)
  in
  {
    candidates = cand;
    order;
    selected = List.map (fun i -> points.(i)) order;
    mrr;
  }
