(** End-to-end consistency checking — the library's self-test, exposed as an
    API (and wired to `kregret validate` in the CLI).

    Runs the full pipeline on a dataset and cross-checks everything the
    paper's correctness argument rests on:

    - GeoGreedy and the LP-based Greedy return the same maximum regret ratio
      (they are the same algorithm, Lemma 1 only changes how line 6 of
      Algorithm 1 is computed);
    - StoredList's prefix answer matches GeoGreedy's direct answer;
    - the geometric and LP evaluators agree on the final selection;
    - Monte-Carlo sampling never exceeds the exact value (it is a lower
      bound over a subset of the function class);
    - Lemma 3's inclusions hold on the computed candidate tiers. *)

type report = {
  candidates : int;  (** size of the happy candidate set used *)
  skyline : int;  (** size of the skyline tier *)
  geo_mrr : float;
  lp_mrr : float;
  stored_mrr : float;
  exact_over_full : float;  (** geometric mrr of the answer vs the full data *)
  sampled_lower_bound : float;
  ok : bool;  (** all checks passed *)
  failures : string list;  (** human-readable descriptions of any violations *)
}

(** [run ds ~k] validates the pipeline on a normalized dataset.
    [samples] controls the Monte-Carlo check (default 10,000); [eps] the
    agreement tolerance (default 1e-6). *)
val run : ?samples:int -> ?eps:float -> Kregret_dataset.Dataset.t -> k:int -> report

(** [pp_report] prints the report in the CLI's format. *)
val pp_report : Format.formatter -> report -> unit
