(** Interactive regret minimization — the paper's second future-work
    direction (Section VIII), after Nanongkai, Lall & Das Sarma (SIGMOD
    2012): instead of answering one k-regret query, engage the user in
    rounds. Each round displays a few tuples; the user picks a favorite;
    every non-picked tuple yields a linear constraint
    [w . (chosen - other) >= 0] on the user's hidden weight vector, shrinking
    the plausible utility region until some tuple is provably near-optimal.

    Each round displays the running champion (the user's favorite so far)
    plus a handful of never-shown candidates picked for diversity by a small
    k-regret query ({!Geo_greedy}) — the natural marriage of the two papers.
    After each answer, one LP per remaining candidate computes the {e exact}
    worst-case regret of recommending the champion instead of that candidate
    over the plausible region (a scale-invariant cone, normalized inside the
    LP); candidates with non-positive value can never beat the champion and
    are pruned, and the maximum over the survivors is a provable regret
    bound. The loop stops when that bound falls below [target_regret], when
    at most one candidate remains, or when every surviving candidate has
    faced the champion chain (at which point the champion is the user's
    exact favorite).

    The module simulates the user: the hidden utility is a parameter, used
    only to answer "which displayed tuple do you prefer" and to score the
    final recommendation. *)

type round = {
  displayed : int list;  (** indices shown this round *)
  chosen : int;  (** the simulated user's pick *)
  candidates_left : int;  (** plausible candidates after pruning *)
  regret_bound : float;  (** provable regret bound after this round *)
}

type result = {
  rounds : round list;  (** chronological interaction transcript *)
  recommendation : int;  (** final recommended index *)
  true_regret : float;
      (** actual regret of the recommendation under the hidden utility, vs
          the best point in the full array *)
  questions : int;  (** number of user interactions *)
}

(** [simulate ~points ~utility ()] runs the interaction.
    [display] points per round (default 4, min 2); at most [max_rounds]
    rounds (default 20); stop early once the provable regret bound drops
    below [target_regret] (default 0.01). [utility] is the hidden weight
    vector (any non-negative non-zero vector). Candidates should be happy
    points for speed, but any non-empty array in [(0,1]^d] works. *)
val simulate :
  ?max_rounds:int ->
  ?display:int ->
  ?target_regret:float ->
  points:Kregret_geom.Vector.t array ->
  utility:Kregret_geom.Vector.t ->
  unit ->
  result
