(** The Cube baseline of Nanongkai et al. (VLDB 2010).

    The other algorithm of the paper that introduced k-regret queries: lay a
    [t^(d-1)] grid over the first [d-1] dimensions, and from every non-empty
    cell keep the point with the largest [d]-th coordinate; seed with the
    [d] dimension-boundary points. [t] is the largest integer with
    [d + t^(d-1) <= k]. Cube carries a provable regret bound that degrades
    with [d] but is much coarser than the greedy algorithms in practice —
    the benches include it to show the quality gap (it is fast but
    regret-hungry). *)

type result = {
  order : int list;  (** selected indices, boundary seeds first *)
  mrr : float;  (** maximum regret ratio over the candidate array *)
  t_grid : int;  (** grid resolution actually used *)
}

(** [run ~points ~k ()] — [k >= 1]; raises [Invalid_argument] on an empty
    candidate set. *)
val run : ?eps:float -> points:Kregret_geom.Vector.t array -> k:int -> unit -> result
