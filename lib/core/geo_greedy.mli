(** The GeoGreedy algorithm (Algorithm 1 of the paper).

    Identical greedy skeleton to the [Greedy] of Nanongkai et al. (VLDB
    2010): seed the selection with the [d] dimension-boundary points, then
    repeatedly insert the point with the smallest critical ratio for the
    current selection, stopping early when every remaining point has
    [cr >= 1] (maximum regret ratio 0). The difference — and the paper's
    speed-up — is that critical ratios come from an incrementally maintained
    geometric index instead of per-candidate linear programs.

    Our index is the dual polytope [Q(S)] ({!Kregret_hull.Dual_polytope}).
    Each candidate [q] caches its {e champion}: the dual vertex maximizing
    [w . q] (equivalently, the face of [Conv(S)] its ray crosses). On an
    insertion, only candidates whose champion was cut re-scan — and only the
    vertices created on or touched by the new hyperplane, exactly mirroring
    the paper's "only the points whose lines cross the removed face have to
    be re-computed ... against the newly constructed faces". Candidates
    whose champion survived keep it: the polytope only shrinks, so a
    surviving maximizer stays maximal.

    The expected input is a happy-point set ([Kregret_happy.Happy]), per the
    paper's Lemma 2; the algorithm itself accepts any candidate array in
    [(0,1]^d] whose per-dimension maxima are 1. *)

type result = {
  order : int list;
      (** indices of the selected points in insertion order (boundary seeds
          first); length [<= k] — shorter when the hull closed early with
          [mrr = 0] *)
  mrr : float;
      (** maximum regret ratio of the selection w.r.t. the candidate array
          (by Lemma 1, also w.r.t. any superset [D] of the candidates whose
          per-dimension boundary points are included — see DESIGN.md) *)
  iterations : int;  (** greedy iterations executed after seeding *)
  rescans : int;
      (** champion re-computations performed — the work the incremental
          index saves; exposed for the ablation bench *)
  dual_vertices : int;  (** final number of dual vertices (primal faces) *)
  lp_fallback_at : int option;
      (** selection size at which the hybrid LP fallback engaged, if it did
          (see [max_dual_vertices]) *)
}

(** [run ~points ~k ()] executes GeoGreedy. [k >= 1] required; if [k < d]
    only the first [k] dimension-boundary points are selected (the paper
    assumes [k >= d]; Section VII shows the regret is unbounded below [d]
    anyway). [use_champion_cache:false] disables the incremental index and
    re-scans every candidate against every vertex at each step (for the
    ablation); results are identical. [on_step] is invoked after seeding and
    after every insertion with the current selection size and its maximum
    regret ratio — {!Stored_list} uses it to materialize the prefix table.

    [max_dual_vertices] arms the {e hybrid} mode: if the dual polytope ever
    exceeds that many vertices — the face-count explosion of high dimensions
    (d >= 8), where maintaining the geometric index costs more than the LPs
    it replaces (EXPERIMENTS.md, Figure 9 entry) — the remaining iterations
    compute critical ratios with the baseline's per-candidate LP instead.
    The greedy choices, and hence the output, are unchanged.

    Raises [Invalid_argument] on an empty candidate array or [k < 1]. *)
val run :
  ?eps:float ->
  ?use_champion_cache:bool ->
  ?max_dual_vertices:int ->
  ?on_step:(size:int -> mrr:float -> unit) ->
  points:Kregret_geom.Vector.t array ->
  k:int ->
  unit ->
  result

(** [boundary_seeds points d] — for each dimension, the index of a point
    maximizing it (first maximum wins), duplicates collapsed, in dimension
    order. Lines 2–4 of Algorithm 1; shared with the {!Greedy_lp}
    baseline so both algorithms start from the same seeds. *)
val boundary_seeds : Kregret_geom.Vector.t array -> int -> int list
