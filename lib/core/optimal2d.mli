(** Exact k-regret optimum in two dimensions.

    In 2-D the maximum regret ratio of a selection decomposes by angular
    gaps: sort candidates by the angle of their position vector; between two
    angularly-consecutive selected points the hull boundary is (at worst)
    the segment joining them, so the regret of every unselected point is
    determined by that one face — plus two boundary faces ([x = max x] below
    the first selected point, [y = max y] above the last). The optimal
    selection therefore solves a min–max path problem over gap costs, which
    dynamic programming answers exactly in [O(n^2 k)] time after an
    [O(n^3)]-worst-case gap-cost precomputation (tiny for the happy-point
    counts 2-D data produces).

    This mirrors the exact 2-D algorithm of Nanongkai et al. (VLDB 2010,
    §4); the d >= 3 problem is NP-hard to approximate beyond the greedy
    guarantees, which is why the paper (and this library) use greedy
    heuristics there. Used by the test suite to measure how far GeoGreedy
    is from optimal, and available to users with 2-attribute data. *)

type result = {
  order : int list;  (** selected indices (into the input array) *)
  mrr : float;  (** exact optimal maximum regret ratio *)
}

(** [solve ~points ~k ()] computes an optimal selection of at most [k]
    points. Points must be strictly positive 2-D vectors. Raises
    [Invalid_argument] on empty input, non-2-D points, or [k < 1]. *)
val solve : points:Kregret_geom.Vector.t array -> k:int -> unit -> result
