module Vector = Kregret_geom.Vector

let names =
  [|
    "BMW M3 GTS"; "Chevrolet Camaro SS"; "Ford Shelby GT500"; "Nissan 370Z coupe";
  |]

let cars =
  [| [| 0.94; 0.8 |]; [| 0.76; 0.93 |]; [| 0.67; 1.00 |]; [| 1.00; 0.72 |] |]

let dataset = Kregret_dataset.Dataset.create ~name:"cars" cars

let weights = [ [| 0.3; 0.7 |]; [| 0.5; 0.5 |]; [| 0.7; 0.3 |] ]

let utility_table () =
  Array.map (fun car -> Array.of_list (List.map (fun w -> Vector.dot w car) weights)) cars
