(** The StoredList algorithm (Section IV-B of the paper).

    A materialization of {!Geo_greedy}: the preprocessing phase runs
    GeoGreedy on the happy points with [k = |D_happy|], recording the
    insertion order in a list [L] (and, in this implementation, the maximum
    regret ratio after each prefix). The query phase answers a k-regret
    query by returning the first [k] entries of [L] — constant work per
    returned tuple, which is why the paper measures it in microseconds where
    Greedy takes hours.

    The answer for any [k] is exactly GeoGreedy's answer for that [k]
    (greedy insertion order does not depend on the target size — the prefix
    property), which the test suite verifies. *)

type t

(** [preprocess points] runs the full GeoGreedy pass and materializes the
    list. This is the expensive phase the paper charges to "total time".
    [max_length] truncates the materialization (the paper runs to
    [k = |D_happy|]; a deployment that knows its largest query [k] can stop
    there — queries beyond the materialized length return the whole list). *)
val preprocess : ?eps:float -> ?max_length:int -> Kregret_geom.Vector.t array -> t

(** [query t ~k] returns the first [k] list entries (all of them when the
    list closed early with [mrr = 0] before reaching [k] — then the answer's
    regret is 0 anyway). O(k). *)
val query : t -> k:int -> int list

(** [mrr_at t ~k] is the maximum regret ratio of [query t ~k] over the
    candidate array, read off the materialized prefix table. *)
val mrr_at : t -> k:int -> float

(** [length t] is [|L|]. *)
val length : t -> int

(** [order t] is the full materialized list. *)
val order : t -> int list

(** [save t ~points path] persists the materialized list (text format, one
    [index mrr] line per entry) together with a fingerprint of the candidate
    array, so a later {!load} can detect that it is being replayed against
    different data. *)
val save : t -> points:Kregret_geom.Vector.t array -> string -> unit

(** [load ~points path] restores a materialized list saved with {!save}.
    Raises [Failure] with a message naming the file (and the line, for body
    errors) when the file is not a stored list, uses an unsupported format
    version, was built for a different candidate count, carries a
    fingerprint that does not hash-match [points] (the list would silently
    index the wrong tuples), or contains a truncated / malformed /
    out-of-range / NaN entry. *)
val load : points:Kregret_geom.Vector.t array -> string -> t
