module Vector = Kregret_geom.Vector

type t = {
  order_array : int array;
  (* mrr_after.(i) = maximum regret ratio of the first i+1 list entries *)
  mrr_after : float array;
}

let preprocess ?eps ?max_length points =
  let n = Array.length points in
  let budget = match max_length with None -> n | Some m -> min m n in
  let table = Hashtbl.create 16 in
  let result =
    Geo_greedy.run ?eps
      ~on_step:(fun ~size ~mrr -> Hashtbl.replace table size mrr)
      ~points ~k:budget ()
  in
  let order_array = Array.of_list result.Geo_greedy.order in
  let data = Array.to_list points in
  let mrr_after =
    Array.mapi
      (fun i _ ->
        let size = i + 1 in
        match Hashtbl.find_opt table size with
        | Some mrr -> mrr
        | None ->
            (* prefixes shorter than the boundary seeding are not visited by
               the greedy loop; evaluate them directly *)
            let selected =
              List.init size (fun j -> points.(order_array.(j)))
            in
            Mrr.geometric ~data ~selected)
      order_array
  in
  { order_array; mrr_after }

let length t = Array.length t.order_array
let order t = Array.to_list t.order_array

let query t ~k =
  if k < 1 then invalid_arg "Stored_list.query: k must be positive";
  let len = min k (length t) in
  List.init len (fun i -> t.order_array.(i))

let mrr_at t ~k =
  if k < 1 then invalid_arg "Stored_list.mrr_at: k must be positive";
  let len = min k (length t) in
  t.mrr_after.(len - 1)

(* ---- persistence ---------------------------------------------------------

   Text format:
     # kregret-stored-list v1 n=<candidates> fp=<fingerprint>
     <index> <mrr>
     ...
   The fingerprint is an FNV-1a hash over the raw float bits of the candidate
   array, enough to catch the realistic failure mode: replaying a list
   against a regenerated or re-ordered dataset. *)

let fingerprint points =
  let h = ref 0xcbf29ce484222325L in
  let mix bits =
    h := Int64.mul (Int64.logxor !h bits) 0x100000001b3L
  in
  Array.iter
    (fun p ->
      Array.iter (fun x -> mix (Int64.bits_of_float x)) p)
    points;
  Printf.sprintf "%016Lx" !h

let save t ~points path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# kregret-stored-list v1 n=%d fp=%s\n"
        (Array.length points) (fingerprint points);
      Array.iteri
        (fun i idx -> Printf.fprintf oc "%d %.17g\n" idx t.mrr_after.(i))
        t.order_array)

let load ~points path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = try input_line ic with End_of_file -> failwith "Stored_list.load: empty file" in
      let expected =
        Printf.sprintf "# kregret-stored-list v1 n=%d fp=%s"
          (Array.length points) (fingerprint points)
      in
      if header <> expected then
        failwith "Stored_list.load: fingerprint mismatch (different candidate set?)";
      let order = ref [] and mrrs = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             Scanf.sscanf line "%d %f" (fun idx mrr ->
                 if idx < 0 || idx >= Array.length points then
                   failwith "Stored_list.load: index out of range";
                 order := idx :: !order;
                 mrrs := mrr :: !mrrs)
         done
       with
      | End_of_file -> ()
      | Scanf.Scan_failure _ | Failure _ ->
          failwith "Stored_list.load: malformed entry");
      {
        order_array = Array.of_list (List.rev !order);
        mrr_after = Array.of_list (List.rev !mrrs);
      })
