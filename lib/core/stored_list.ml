module Vector = Kregret_geom.Vector

type t = {
  order_array : int array;
  (* mrr_after.(i) = maximum regret ratio of the first i+1 list entries *)
  mrr_after : float array;
}

let preprocess ?eps ?max_length points =
  let n = Array.length points in
  let budget = match max_length with None -> n | Some m -> min m n in
  let table = Hashtbl.create 16 in
  let result =
    Geo_greedy.run ?eps
      ~on_step:(fun ~size ~mrr -> Hashtbl.replace table size mrr)
      ~points ~k:budget ()
  in
  let order_array = Array.of_list result.Geo_greedy.order in
  let data = Array.to_list points in
  let mrr_after =
    Array.mapi
      (fun i _ ->
        let size = i + 1 in
        match Hashtbl.find_opt table size with
        | Some mrr -> mrr
        | None ->
            (* prefixes shorter than the boundary seeding are not visited by
               the greedy loop; evaluate them directly *)
            let selected =
              List.init size (fun j -> points.(order_array.(j)))
            in
            Mrr.geometric ~data ~selected)
      order_array
  in
  { order_array; mrr_after }

let length t = Array.length t.order_array
let order t = Array.to_list t.order_array

let query t ~k =
  if k < 1 then invalid_arg "Stored_list.query: k must be positive";
  let len = min k (length t) in
  List.init len (fun i -> t.order_array.(i))

let mrr_at t ~k =
  if k < 1 then invalid_arg "Stored_list.mrr_at: k must be positive";
  let len = min k (length t) in
  t.mrr_after.(len - 1)

(* ---- persistence ---------------------------------------------------------

   Text format:
     # kregret-stored-list v1 n=<candidates> fp=<fingerprint>
     <index> <mrr>
     ...
   The fingerprint is an FNV-1a hash over the raw float bits of the candidate
   array, enough to catch the realistic failure mode: replaying a list
   against a regenerated or re-ordered dataset. *)

let fingerprint points =
  let h = ref 0xcbf29ce484222325L in
  let mix bits =
    h := Int64.mul (Int64.logxor !h bits) 0x100000001b3L
  in
  Array.iter
    (fun p ->
      Array.iter (fun x -> mix (Int64.bits_of_float x)) p)
    points;
  Printf.sprintf "%016Lx" !h

let save t ~points path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# kregret-stored-list v1 n=%d fp=%s\n"
        (Array.length points) (fingerprint points);
      Array.iteri
        (fun i idx -> Printf.fprintf oc "%d %.17g\n" idx t.mrr_after.(i))
        t.order_array)

let load ~points path =
  let fail fmt = Printf.ksprintf failwith fmt in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        try input_line ic
        with End_of_file -> fail "Stored_list.load: %s: empty file" path
      in
      (* The old check compared the header against one expected string, so a
         wrong count, a future format version and a stale fingerprint all
         reported "fingerprint mismatch". Parse the fields and name the
         actual failure. *)
      let version, file_n, file_fp =
        try
          Scanf.sscanf header "# kregret-stored-list v%d n=%d fp=%s"
            (fun v n fp -> (v, n, fp))
        with Scanf.Scan_failure _ | End_of_file | Failure _ ->
          fail "Stored_list.load: %s: not a stored-list file (header %S)" path
            header
      in
      if version <> 1 then
        fail
          "Stored_list.load: %s: unsupported format version v%d (this build \
           reads v1)"
          path version;
      let n = Array.length points in
      if file_n <> n then
        fail
          "Stored_list.load: %s: candidate count mismatch (list built for \
           n=%d, candidate set has n=%d)"
          path file_n n;
      let fp = fingerprint points in
      if not (String.equal file_fp fp) then
        fail
          "Stored_list.load: %s: fingerprint mismatch (list built from a \
           different candidate set: file has %s, data hashes to %s)"
          path file_fp fp;
      let order = ref [] and mrrs = ref [] in
      let lineno = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then begin
             (* [sscanf "%d %f"] raises [End_of_file] — not [Scan_failure] —
                on a truncated line like "5"; the old loop let it escape to
                the end-of-lines handler and silently dropped the rest of
                the file. Catch it per line and report the position. *)
             let idx, mrr =
               try
                 Scanf.sscanf line " %d %f %s" (fun idx mrr rest ->
                     if rest <> "" then
                       fail "Stored_list.load: %s:%d: trailing garbage %S"
                         path !lineno rest;
                     (idx, mrr))
               with
               | Scanf.Scan_failure _ ->
                   fail "Stored_list.load: %s:%d: malformed entry %S" path
                     !lineno line
               | End_of_file ->
                   fail
                     "Stored_list.load: %s:%d: truncated entry %S (expected \
                      \"<index> <mrr>\")"
                     path !lineno line
             in
             if idx < 0 || idx >= n then
               fail "Stored_list.load: %s:%d: index %d out of range [0, %d)"
                 path !lineno idx n;
             if Float.is_nan mrr then
               fail "Stored_list.load: %s:%d: mrr is NaN" path !lineno;
             order := idx :: !order;
             mrrs := mrr :: !mrrs
           end
         done
       with End_of_file -> ());
      {
        order_array = Array.of_list (List.rev !order);
        mrr_after = Array.of_list (List.rev !mrrs);
      })
