module Vector = Kregret_geom.Vector
module Regret_lp = Kregret_lp.Regret_lp
module Pool = Kregret_parallel.Pool

type result = { order : int list; mrr : float; iterations : int; lp_calls : int }

let run ?(eps = 1e-9) ~points ~k () =
  let n = Array.length points in
  if n = 0 then invalid_arg "Greedy_lp.run: empty candidate set";
  if k < 1 then invalid_arg "Greedy_lp.run: k must be positive";
  let d = Vector.dim points.(0) in
  let in_s = Array.make n false in
  let order = ref [] in
  let size = ref 0 in
  let lp_calls = ref 0 in
  let insert j =
    in_s.(j) <- true;
    order := j :: !order;
    incr size
  in
  List.iter
    (fun j -> if !size < k && not in_s.(j) then insert j)
    (Geo_greedy.(boundary_seeds) points d);
  let selected () =
    List.rev_map (fun j -> points.(j)) !order
  in
  let min_cr () =
    (* smallest critical ratio among the remaining candidates; the
       per-candidate LPs fan out across the domain pool (the simplex holds
       no shared state). Each chunk keeps its earliest minimum and the
       deterministic left-to-right reduce keeps the earlier chunk on ties,
       so the argmin — and hence the greedy trajectory — is identical to
       the sequential first-wins scan for every pool width. *)
    let sel = selected () in
    let calls, best =
      Pool.map_reduce ~lo:0 ~hi:n
        ~map:(fun a b ->
          let calls = ref 0 in
          let best = ref None in
          for j = a to b - 1 do
            if not in_s.(j) then begin
              incr calls;
              let cr, _ = Regret_lp.critical_ratio ~selected:sel points.(j) in
              match !best with
              | Some (_, bcr) when bcr <= cr -> ()
              | _ -> best := Some (j, cr)
            end
          done;
          (!calls, !best))
        ~reduce:(fun (acc_calls, acc) (calls, chunk) ->
          let merged =
            match (acc, chunk) with
            | None, c -> c
            | a, None -> a
            | Some (_, bcr), Some (_, cr) when cr < bcr -> chunk
            | a, _ -> a
          in
          (acc_calls + calls, merged))
        (0, None)
    in
    lp_calls := !lp_calls + calls;
    best
  in
  let iterations = ref 0 in
  let stop = ref false in
  let final_cr = ref None in
  while (not !stop) && !size < k do
    match min_cr () with
    | None -> stop := true
    | Some (_, cr) when cr >= 1. -. eps ->
        final_cr := Some cr;
        stop := true
    | Some (j, _) ->
        incr iterations;
        insert j
  done;
  let mrr =
    let cr =
      match !final_cr with
      | Some cr -> Some cr
      | None -> Option.map snd (min_cr ())
    in
    match cr with
    | None -> 0.
    | Some cr -> Float.max 0. (1. -. cr)
  in
  { order = List.rev !order; mrr; iterations = !iterations; lp_calls = !lp_calls }
