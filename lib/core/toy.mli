(** The paper's running car example (Tables I and II, Section II).

    Four cars with normalized MPG and HP, and the finite utility-function
    class [{f_(0.3,0.7), f_(0.5,0.5), f_(0.7,0.3)}] where
    [f_(a,b) = a * MPG + b * HP]. Used by the quickstart example and by unit
    tests that pin the worked numbers from the paper
    ([mrr {p2, p3} = 0.115]). *)

(** Car names, in Table I order. *)
val names : string array

(** The four points [(MPG, HP)]: BMW M3 GTS, Chevrolet Camaro SS, Ford
    Shelby GT500, Nissan 370Z coupe. *)
val cars : Kregret_geom.Vector.t array

(** The dataset view of {!cars}. *)
val dataset : Kregret_dataset.Dataset.t

(** The three weight vectors of the example's function class. *)
val weights : Kregret_geom.Vector.t list

(** [utility_table ()] recomputes Table II: [utilities.(i).(j)] is the
    utility of car [i] under weight [j]. *)
val utility_table : unit -> float array array
