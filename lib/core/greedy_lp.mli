(** The [Greedy] baseline of Nanongkai et al. (VLDB 2010) — the best-known
    algorithm the paper compares against.

    Same greedy skeleton as {!Geo_greedy} (seed with the [d] boundary
    points, repeatedly add the point contributing the maximum regret), but
    line 6 of Algorithm 1 — "find the point with the smallest critical
    ratio" — is answered by solving one linear program per remaining
    candidate per iteration ({!Kregret_lp.Regret_lp.critical_ratio}), the
    "time-consuming constrained programming" of the paper. Output is
    identical to GeoGreedy up to ties; cost is higher by the LP factor,
    which is what Figures 9, 10 and 13 measure. *)

type result = {
  order : int list;  (** selected indices in insertion order *)
  mrr : float;  (** maximum regret ratio over the candidate array *)
  iterations : int;
  lp_calls : int;  (** number of LPs solved — the cost driver *)
}

(** [run ~points ~k ()] — see {!Geo_greedy.run} for conventions ([k < d],
    early stop on [cr >= 1], etc.). *)
val run :
  ?eps:float -> points:Kregret_geom.Vector.t array -> k:int -> unit -> result
