module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Dd = Kregret_hull.Dd
module Dual_polytope = Kregret_hull.Dual_polytope
module Pool = Kregret_parallel.Pool
module Obs = Kregret_obs

(* Observability: every value flushed below is also a field of [result] (or
   derived from one), so the totals inherit the width-invariance the
   algorithm itself guarantees. *)
let c_runs = Obs.Registry.counter "geo_greedy.runs" ~help:"greedy runs executed"

let c_rounds =
  Obs.Registry.counter "geo_greedy.rounds"
    ~help:"greedy insertion rounds across all runs (= sum of iterations)"

let c_seeds =
  Obs.Registry.counter "geo_greedy.seeds"
    ~help:"boundary seed points inserted before the greedy loop"

let c_rescans =
  Obs.Registry.counter "geo_greedy.champion_rescans"
    ~help:"champion cache rescans after polytope updates"

let c_lp_fallbacks =
  Obs.Registry.counter "geo_greedy.lp_fallbacks"
    ~help:"runs that blew the dual-vertex budget and fell back to the LP"

let c_tiles =
  Obs.Registry.counter "geo_greedy.kernel_tiles"
    ~help:"vertex tiles streamed by the blocked champion kernel"

type result = {
  order : int list;
  mrr : float;
  iterations : int;
  rescans : int;
  dual_vertices : int;
  lp_fallback_at : int option;
}

(* one index per dimension, maximizing that dimension; duplicates collapsed *)
let boundary_seeds points d =
  let seeds = ref [] in
  for i = d - 1 downto 0 do
    let best = ref 0 in
    Array.iteri (fun j p -> if p.(i) > points.(!best).(i) then best := j) points;
    if not (List.mem !best !seeds) then seeds := !best :: !seeds
  done;
  !seeds

let run ?(eps = 1e-9) ?(use_champion_cache = true) ?max_dual_vertices ?on_step
    ~points ~k () =
  let n = Array.length points in
  if n = 0 then invalid_arg "Geo_greedy.run: empty candidate set";
  if k < 1 then invalid_arg "Geo_greedy.run: k must be positive";
  let d = Vector.dim points.(0) in
  let seeds = boundary_seeds points d in
  (* Q(S) is confined to w_i <= 1 / max_{p in seeds(S)} p_i once the seeds
     are inserted; size the artificial bounding box from the seeds actually
     taken (k < d may leave a dimension unseeded and hence unbounded by
     data — the box then correctly reports the near-1 regret of Sec. VII) *)
  let bound =
    let taken = List.filteri (fun idx _ -> idx < k) seeds in
    let worst = ref infinity in
    for i = 0 to d - 1 do
      let col =
        List.fold_left (fun acc j -> Float.max acc points.(j).(i)) 0. taken
      in
      worst := Float.min !worst (Float.max col 1e-9)
    done;
    Float.min 1e6 (1.05 /. !worst)
  in
  let dp = Dual_polytope.create ~bound ~dim:d () in
  let in_s = Array.make n false in
  let order = ref [] in
  let size = ref 0 in
  let rescans = ref 0 in
  (* champion.(j) = (dual vertex id, max dot) for candidate j; only
     meaningful while j is outside the selection *)
  let champion = Array.make n (-1, infinity) in
  (* Champion re-scans run through the blocked max-dot kernel (ISSUE 6):
     the candidates live in one flat matrix built once up front, the dual
     vertices come from the polytope's flat view (or a per-event scratch of
     the replacement faces), and {!Flat.champions} tiles the vertex rows so
     a tile stays in L1 while the affected candidates stream against it.
     Pool workers write only disjoint slots — [out_row]/[out_val]/[champion]
     are indexed by candidate — and read structures never mutated inside a
     parallel region, so the results are identical for every pool width.
     The [rescans] diagnostic counter is accumulated per-chunk (a shared
     [incr] would race across domains). *)
  let cands = Flat.of_rows points in
  let targets = Array.make n 0 in
  let out_row = Array.make n 0 in
  let out_val = Array.make n 0. in
  (* collect the stale candidates into a prefix of [targets] *)
  let gather_targets pred =
    let nt = ref 0 in
    for j = 0 to n - 1 do
      if (not in_s.(j)) && pred j then begin
        targets.(!nt) <- j;
        incr nt
      end
    done;
    !nt
  in
  (* cost hint: one target dots every vertex row *)
  let scan_cost m = 4. *. float_of_int ((m + 1) * d) in
  let rescan_targets ~vset ~vids nt =
    if nt > 0 then begin
      let scanned =
        Pool.map_reduce
          ~cost:(scan_cost (Flat.rows vset))
          ~lo:0 ~hi:nt
          ~map:(fun a b ->
            let tiles =
              Flat.champions ~vertices:vset ~cands targets ~tlo:a ~thi:b
                ~out_row ~out_val
            in
            Obs.Counter.add c_tiles tiles;
            for ti = a to b - 1 do
              let j = targets.(ti) in
              champion.(j) <- (vids.(out_row.(j)), out_val.(j))
            done;
            b - a)
          ~reduce:( + ) 0
      in
      rescans := !rescans + scanned
    end
  in
  let full_rescan_all () =
    let nt = gather_targets (fun _ -> true) in
    let vset, vids = Dual_polytope.flat_view dp in
    rescan_targets ~vset ~vids nt
  in
  let scratch = Flat.create ~dim:d () in
  let apply_event ev =
    if use_champion_cache then begin
      match ev.Dd.removed with
      | [] -> () (* redundant constraint: no champion can be invalidated *)
      | removed_list ->
          (* membership probes run n times per event: an int-keyed table
             beats the former O(n * |removed|) [List.mem] scan *)
          let removed = Hashtbl.create (2 * List.length removed_list) in
          List.iter (fun id -> Hashtbl.replace removed id ()) removed_list;
          let nt =
            gather_targets (fun j -> Hashtbl.mem removed (fst champion.(j)))
          in
          if nt > 0 then begin
            match ev.Dd.created @ ev.Dd.touched with
            | [] ->
                (* defensive: the event reported no replacement faces —
                   rescan the stale candidates against the whole polytope *)
                let vset, vids = Dual_polytope.flat_view dp in
                rescan_targets ~vset ~vids nt
            | fresh ->
                Flat.clear scratch;
                List.iter (fun v -> Flat.push_row scratch v.Dd.w) fresh;
                let vids =
                  Array.of_list (List.map (fun v -> v.Dd.id) fresh)
                in
                rescan_targets ~vset:scratch ~vids nt
          end
    end
    else full_rescan_all ()
  in
  let insert j =
    in_s.(j) <- true;
    order := j :: !order;
    incr size;
    let ev = Dual_polytope.insert dp points.(j) in
    apply_event ev
  in
  (* seed with boundary points (at most k of them) *)
  let rec seed = function
    | [] -> ()
    | j :: rest ->
        if !size < k then begin
          in_s.(j) <- true;
          order := j :: !order;
          incr size;
          ignore (Dual_polytope.insert dp points.(j));
          seed rest
        end
  in
  seed seeds;
  Obs.Counter.incr c_runs;
  Obs.Counter.add c_seeds !size;
  (* champions start from a full scan once the seeds are in *)
  full_rescan_all ();
  rescans := 0;
  (* greedy iterations: the candidate with the largest champion value has the
     smallest critical ratio (cr = 1 / max w.q) *)
  let iterations = ref 0 in
  let best_remaining () =
    let best = ref (-1) in
    for j = 0 to n - 1 do
      if (not in_s.(j)) && (!best < 0 || snd champion.(j) > snd champion.(!best))
      then best := j
    done;
    !best
  in
  let current_mrr () =
    let j = best_remaining () in
    if j < 0 then 0.
    else
      let m = snd champion.(j) in
      if m <= 1. then 0. else 1. -. (1. /. m)
  in
  let notify () =
    match on_step with
    | None -> ()
    | Some f -> f ~size:!size ~mrr:(current_mrr ())
  in
  notify ();
  (* Hybrid fallback: when the dual polytope grows past [max_dual_vertices]
     (the face-count explosion of high dimensions — see EXPERIMENTS.md), the
     remaining iterations answer line 6 of Algorithm 1 with the baseline's
     per-candidate LP instead. Same greedy choices, same output. *)
  let vertex_budget_blown () =
    match max_dual_vertices with
    | None -> false
    | Some limit -> Dual_polytope.num_vertices dp > limit
  in
  let lp_fallback_at = ref None in
  let lp_mrr = ref None in
  let run_lp_phase () =
    lp_fallback_at := Some !size;
    let selected () = List.rev_map (fun j -> points.(j)) !order in
    let lp_stop = ref false in
    while (not !lp_stop) && !size < k do
      let sel = selected () in
      (* per-candidate critical-ratio LPs are independent (the simplex has
         no shared state); deterministic argmin: each chunk keeps its
         earliest minimum, the left-to-right reduce keeps the earlier chunk
         on ties — exactly the sequential first-wins scan *)
      let best =
        (* cost hint: one simplex solve per candidate, ~hundreds of µs *)
        Pool.map_reduce ~cost:3e5 ~lo:0 ~hi:n
          ~map:(fun a b ->
            let best = ref None in
            for j = a to b - 1 do
              if not in_s.(j) then begin
                let cr, _ =
                  Kregret_lp.Regret_lp.critical_ratio ~selected:sel points.(j)
                in
                match !best with
                | Some (_, bcr) when bcr <= cr -> ()
                | _ -> best := Some (j, cr)
              end
            done;
            !best)
          ~reduce:(fun acc chunk ->
            match (acc, chunk) with
            | None, c -> c
            | a, None -> a
            | Some (_, bcr), Some (_, cr) when cr < bcr -> chunk
            | a, _ -> a)
          None
      in
      let best = ref best in
      match !best with
      | None -> lp_stop := true
      | Some (_, cr) when cr >= 1. -. eps ->
          lp_mrr := Some (Float.max 0. (1. -. cr));
          lp_stop := true
      | Some (j, _) ->
          incr iterations;
          in_s.(j) <- true;
          order := j :: !order;
          incr size;
          (match on_step with
          | None -> ()
          | Some f ->
              (* prefix mrr via one LP sweep would be costly; report the
                 exact value lazily only when a consumer asked for steps *)
              let sel = List.rev_map (fun i -> points.(i)) !order in
              let m =
                Kregret_lp.Regret_lp.max_regret_ratio
                  ~data:(Array.to_list points) ~selected:sel ()
              in
              f ~size:!size ~mrr:m)
    done;
    if !lp_mrr = None then begin
      let sel = selected () in
      lp_mrr :=
        Some
          (Kregret_lp.Regret_lp.max_regret_ratio ~data:(Array.to_list points)
             ~selected:sel ())
    end
  in
  let stop = ref false in
  while (not !stop) && !size < k do
    if vertex_budget_blown () then begin
      run_lp_phase ();
      stop := true
    end
    else begin
      let j = best_remaining () in
      if j < 0 then stop := true
      else if snd champion.(j) <= 1. +. eps then stop := true (* cr >= 1 *)
      else begin
        incr iterations;
        insert j;
        notify ()
      end
    end
  done;
  let mrr = match !lp_mrr with Some m -> m | None -> current_mrr () in
  Obs.Counter.add c_rounds !iterations;
  Obs.Counter.add c_rescans !rescans;
  if !lp_fallback_at <> None then Obs.Counter.incr c_lp_fallbacks;
  {
    order = List.rev !order;
    mrr;
    iterations = !iterations;
    rescans = !rescans;
    dual_vertices = Dual_polytope.num_vertices dp;
    lp_fallback_at = !lp_fallback_at;
  }
