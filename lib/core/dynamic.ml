module Vector = Kregret_geom.Vector
module Skyline = Kregret_skyline.Skyline
module Dominance = Kregret_skyline.Dominance
module Happy = Kregret_happy.Happy
module Obs = Kregret_obs

(* Observability. The counters are exact across pool widths (the update
   paths are sequential; the rebuild pipeline underneath is width-invariant
   by the repo-wide determinism contract). The gauge reports the last
   updated dataset — a fleet snapshot, not a per-dataset series. *)
let c_inserts =
  Obs.Registry.counter "dynamic.inserts" ~help:"inserts that changed the skyline"

let c_insert_noops =
  Obs.Registry.counter "dynamic.insert_noops"
    ~help:"inserts of dominated or duplicated points (structures untouched)"

let c_deletes =
  Obs.Registry.counter "dynamic.deletes" ~help:"deletes of live points"

let c_delete_noops =
  Obs.Registry.counter "dynamic.delete_noops"
    ~help:"deletes of unknown or already-deleted ids"

let c_sky_entrants =
  Obs.Registry.counter "dynamic.sky_entrants"
    ~help:"points re-entering the skyline after a skyline delete"

let c_sky_evictions =
  Obs.Registry.counter "dynamic.sky_evictions"
    ~help:"skyline points evicted by a dominating insert"

let c_rescreens =
  Obs.Registry.counter "dynamic.happy_rescreens"
    ~help:"full happy re-screens of a single skyline point"

let c_stored_reuse =
  Obs.Registry.counter "dynamic.stored_reuse"
    ~help:"skyline changes that left the happy set, and hence the stored list, intact"

let c_memo_hits =
  Obs.Registry.counter "dynamic.stored_memo_hits"
    ~help:"stored lists restored bit-identically from the round-trip memo"

let c_stored_rebuilds =
  Obs.Registry.counter "dynamic.stored_rebuilds"
    ~help:"stored-list preprocessing passes triggered by updates"

let c_full_invalidations =
  Obs.Registry.counter "dynamic.stored_full_invalidations"
    ~help:"stored rebuilds whose order diverged from the old list at position 0"

let c_flushes =
  Obs.Registry.counter "dynamic.flushes" ~help:"tombstone compactions"

let h_repair_depth =
  Obs.Registry.histogram "dynamic.repair_depth"
    ~help:
      "stored-list entries re-derived per structural update (distance from \
       the first invalidated position to the end of the list)"
    ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 1024. |]

let g_tombstone_ratio =
  Obs.Registry.gauge "dynamic.tombstone_ratio"
    ~help:"tombstoned fraction of the slot store (last updated dataset)"

(* verdict of a skyline member under the happy screen; the witness is the
   slot position of one subjugator (-1 = not yet determined: the initial
   batch screen reports flags only, witnesses are filled in lazily by the
   first repair that needs them) *)
type verdict = V_happy | V_unhappy of int

type t = {
  eps : float option;
  max_length : int option;
  damage_ratio : float;
  memo_cap : int;
  dim : int;
  (* slot store, in insertion order; deletions tombstone ([alive] flips),
     [flush] compacts. Slot positions are internal — external ids are
     stable across compaction. *)
  mutable data : Vector.t array;
  mutable ids : int array;
  mutable alive : bool array;
  mutable used : int;
  mutable live : int;
  mutable next_id : int;
  id_index : (int, int) Hashtbl.t; (* external id -> slot position *)
  (* derived pipeline state; [sky] and [happy] hold slot positions in
     ascending order (= dataset order), [verdicts] is keyed by the members
     of [sky], [happy_vecs] is the stored list's candidate array *)
  mutable sky : int array;
  verdicts : (int, verdict) Hashtbl.t;
  mutable happy : int array;
  mutable happy_vecs : Vector.t array;
  mutable stored : Stored_list.t option;
  (* most-recently-used memo of (happy candidate array, stored list) pairs:
     an update stream that oscillates (insert then delete, or the reverse)
     lands back on a bit-identical happy array and skips the preprocessing
     pass; hits are verified by full bit comparison, never by hash *)
  mutable memo : (Vector.t array * Stored_list.t) list;
  mutable epoch : int;
}

(* ---- small helpers ------------------------------------------------------- *)

let vec_bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
    a;
  !ok

let vecs_bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if not (vec_bits_equal v b.(i)) then ok := false) a;
  !ok

let common_prefix a b =
  let n = min (Array.length a) (Array.length b) in
  let i = ref 0 in
  while !i < n && a.(!i) = b.(!i) do
    incr i
  done;
  !i

let dim t = t.dim
let live t = t.live
let slots t = t.used
let tombstones t = t.used - t.live
let epoch t = t.epoch
let sky_size t = Array.length t.sky
let happy_size t = Array.length t.happy

let stored_length t =
  match t.stored with None -> 0 | Some s -> Stored_list.length s

(* external ids of the stored-list entries, in list order *)
let order_ids t =
  match t.stored with
  | None -> [||]
  | Some s ->
      Array.of_list
        (List.map (fun e -> t.ids.(t.happy.(e))) (Stored_list.order s))

let live_points t =
  let out = ref [] in
  for p = t.used - 1 downto 0 do
    if t.alive.(p) then out := (t.ids.(p), t.data.(p)) :: !out
  done;
  Array.of_list !out

(* ---- queries ------------------------------------------------------------- *)

let query t ~k =
  if k < 1 then invalid_arg "Dynamic.query: k must be positive";
  match t.stored with
  | None -> ([], 0.)
  | Some s ->
      let sel =
        List.map (fun e -> t.ids.(t.happy.(e))) (Stored_list.query s ~k)
      in
      (sel, Stored_list.mrr_at s ~k)

let mrr_at t ~k =
  if k < 1 then invalid_arg "Dynamic.mrr_at: k must be positive";
  match t.stored with None -> 0. | Some s -> Stored_list.mrr_at s ~k

(* ---- snapshots ----------------------------------------------------------- *)

module Snapshot = struct
  type t = {
    sn_epoch : int;
    sn_live : int;
    sn_ids : int array; (* stored order, as external ids *)
    sn_mrr : float array; (* mrr of each prefix *)
    sn_basis_ids : int array; (* live external ids, insertion order *)
    sn_basis : Kregret_geom.Vector.t array; (* live rows, same order *)
  }

  let epoch s = s.sn_epoch
  let live s = s.sn_live
  let stored_length s = Array.length s.sn_ids
  let basis s = (s.sn_basis_ids, s.sn_basis)

  let query s ~k =
    if k < 1 then invalid_arg "Dynamic.Snapshot.query: k must be positive";
    let len = Array.length s.sn_ids in
    if len = 0 then ([], 0.)
    else
      let take = min k len in
      (Array.to_list (Array.sub s.sn_ids 0 take), s.sn_mrr.(take - 1))

  let mrr_at s ~k =
    if k < 1 then invalid_arg "Dynamic.Snapshot.mrr_at: k must be positive";
    let len = Array.length s.sn_ids in
    if len = 0 then 0. else s.sn_mrr.(min k len - 1)
end

let snapshot t =
  let ids = order_ids t in
  let mrr =
    match t.stored with
    | None -> [||]
    | Some s -> Array.init (Stored_list.length s) (fun i -> Stored_list.mrr_at s ~k:(i + 1))
  in
  let pairs = live_points t in
  {
    Snapshot.sn_epoch = t.epoch;
    sn_live = t.live;
    sn_ids = ids;
    sn_mrr = mrr;
    sn_basis_ids = Array.map fst pairs;
    sn_basis = Array.map snd pairs;
  }

(* ---- stored-list maintenance --------------------------------------------- *)

let memo_find t vecs =
  let rec go acc = function
    | [] -> None
    | ((v, s) as hit) :: rest ->
        if vecs_bits_equal v vecs then begin
          (* move to front *)
          t.memo <- hit :: List.rev_append acc rest;
          Some s
        end
        else go (hit :: acc) rest
  in
  go [] t.memo

let memo_push t vecs stored =
  match stored with
  | None -> ()
  | Some s ->
      let keep = t.memo_cap - 1 in
      t.memo <-
        (vecs, s) :: List.filteri (fun i _ -> i < keep) t.memo

(* Recompute the happy set from the verdicts and bring the stored list back
   in sync. Exactness note: a fresh [Stored_list.preprocess] is the only way
   to reproduce the rebuild pipeline bit-for-bit — GeoGreedy's champion
   cache is event-driven, and a replayed prefix continued after a full
   rescan can differ from the fresh run by one ulp in the plateau entries
   (the rescan sees the true vertex maximum where the event path saw the
   maximum over replacement faces only). So the reuse tiers here trigger
   only on bit-equal candidate arrays — the unchanged-happy fast path and
   the round-trip memo — and every other structural change pays one
   preprocessing pass over the happy set, with the first invalidated
   position recorded in the repair-depth histogram. *)
let refresh_after_sky_change t =
  let old_ids = order_ids t in
  let old_vecs = t.happy_vecs in
  let old_stored = t.stored in
  let hap =
    Array.of_list
      (List.filter
         (fun p -> Hashtbl.find t.verdicts p = V_happy)
         (Array.to_list t.sky))
  in
  t.happy <- hap;
  let vecs = Array.map (fun p -> t.data.(p)) hap in
  if vecs_bits_equal old_vecs vecs then begin
    (* the happy candidate array is unchanged bit-for-bit: the stored list
       (which only indexes into it) is still exact *)
    Obs.Counter.incr c_stored_reuse;
    Obs.Histogram.observe h_repair_depth 0.;
    t.happy_vecs <- vecs
  end
  else begin
    (match memo_find t vecs with
    | Some s ->
        memo_push t old_vecs old_stored;
        t.stored <- Some s;
        Obs.Counter.incr c_memo_hits
    | None ->
        memo_push t old_vecs old_stored;
        t.stored <-
          (if Array.length vecs = 0 then None
           else Some (Stored_list.preprocess ?eps:t.eps ?max_length:t.max_length vecs));
        Obs.Counter.incr c_stored_rebuilds);
    t.happy_vecs <- vecs;
    let new_ids = order_ids t in
    let depth = Array.length new_ids - common_prefix old_ids new_ids in
    Obs.Histogram.observe h_repair_depth (float_of_int depth);
    if
      common_prefix old_ids new_ids = 0
      && Array.length old_ids > 0
      && Array.length new_ids > 0
    then Obs.Counter.incr c_full_invalidations
  end;
  t.epoch <- t.epoch + 1

(* ---- happy re-screens ---------------------------------------------------- *)

(* full screen of one skyline member against the current skyline; verdicts
   are order-independent (a point is unhappy iff someone subjugates it), so
   probing in ascending position order is just a deterministic choice of
   witness. [subjugates] never counts a value-equal point, and the skyline
   holds no value-equal pairs, so self-probes are harmless. *)
let rescreen t pos =
  Obs.Counter.incr c_rescreens;
  let v = t.data.(pos) in
  let verdict = ref V_happy in
  let i = ref 0 in
  let m = Array.length t.sky in
  while !verdict = V_happy && !i < m do
    let s = t.sky.(!i) in
    if s <> pos && Happy.subjugates ?eps:t.eps t.data.(s) v then
      verdict := V_unhappy s;
    incr i
  done;
  Hashtbl.replace t.verdicts pos !verdict

(* ---- construction -------------------------------------------------------- *)

let full_rebuild t =
  (* skyline -> happy screen -> stored-list preprocessing. The skyline runs
     [naive], not [sfs]: both return ascending indices over the same value
     set, but they keep different representatives of a duplicated maximal
     point (first by input order vs first by score-sort order), and the
     incremental rules below maintain exactly the input-order rule — an
     equal pair is won by the smaller slot. One rule everywhere keeps the
     id-level answers of the create path and the update path identical. *)
  Hashtbl.reset t.verdicts;
  if t.live = 0 then begin
    t.sky <- [||];
    t.happy <- [||];
    t.happy_vecs <- [||];
    t.stored <- None
  end
  else begin
    let positions = Array.make t.live 0 in
    let vecs = Array.make t.live [||] in
    let j = ref 0 in
    for p = 0 to t.used - 1 do
      if t.alive.(p) then begin
        positions.(!j) <- p;
        vecs.(!j) <- t.data.(p);
        incr j
      end
    done;
    let sky_idx = Skyline.naive vecs in
    t.sky <- Array.map (fun i -> positions.(i)) sky_idx;
    let sky_vecs = Array.map (fun i -> vecs.(i)) sky_idx in
    let hap_idx = Happy.happy_points ?eps:t.eps sky_vecs in
    let happy_mark = Array.make (Array.length t.sky) false in
    Array.iter (fun i -> happy_mark.(i) <- true) hap_idx;
    Array.iteri
      (fun i p ->
        Hashtbl.replace t.verdicts p
          (if happy_mark.(i) then V_happy else V_unhappy (-1)))
      t.sky;
    t.happy <- Array.map (fun i -> t.sky.(i)) hap_idx;
    t.happy_vecs <- Array.map (fun p -> t.data.(p)) t.happy;
    (* the happy screen can empty a nonempty skyline: when every live point
       lies strictly inside the unit simplex (sum < 1), each sky member
       subjugates the others under the eps slop. Impossible for a freshly
       normalized dataset (per-dimension maxima have sum >= 1), reachable
       dynamically once deletes remove every boundary point. Nothing to
       materialize then — answers are empty until an insert restores a
       boundary point. *)
    t.stored <-
      (if Array.length t.happy_vecs = 0 then None
       else
         Some (Stored_list.preprocess ?eps:t.eps ?max_length:t.max_length t.happy_vecs))
  end

let create ?eps ?max_length ?(damage_ratio = 0.5) ?(memo = 8) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Dynamic.create: empty dataset";
  let d = Vector.dim points.(0) in
  Array.iter
    (fun p ->
      if Vector.dim p <> d then
        invalid_arg "Dynamic.create: inconsistent dimensions")
    points;
  if damage_ratio <= 0. || damage_ratio >= 1. then
    invalid_arg "Dynamic.create: damage_ratio must be in (0, 1)";
  let cap = max 16 (2 * n) in
  let t =
    {
      eps;
      max_length;
      damage_ratio;
      memo_cap = max 1 memo;
      dim = d;
      data = Array.make cap [||];
      ids = Array.make cap 0;
      alive = Array.make cap false;
      used = n;
      live = n;
      next_id = n;
      id_index = Hashtbl.create (2 * cap);
      sky = [||];
      verdicts = Hashtbl.create 64;
      happy = [||];
      happy_vecs = [||];
      stored = None;
      memo = [];
      epoch = 0;
    }
  in
  Array.iteri
    (fun i p ->
      t.data.(i) <- p;
      t.ids.(i) <- i;
      t.alive.(i) <- true;
      Hashtbl.replace t.id_index i i)
    points;
  full_rebuild t;
  t

(* ---- compaction ---------------------------------------------------------- *)

let compact t =
  if t.used > t.live then begin
    let remap = Array.make t.used (-1) in
    let data = Array.make (max 16 (2 * t.live)) [||] in
    let ids = Array.make (Array.length data) 0 in
    let alive = Array.make (Array.length data) false in
    let j = ref 0 in
    for p = 0 to t.used - 1 do
      if t.alive.(p) then begin
        remap.(p) <- !j;
        data.(!j) <- t.data.(p);
        ids.(!j) <- t.ids.(p);
        alive.(!j) <- true;
        incr j
      end
    done;
    t.data <- data;
    t.ids <- ids;
    t.alive <- alive;
    t.used <- t.live;
    Hashtbl.reset t.id_index;
    for p = 0 to t.used - 1 do
      Hashtbl.replace t.id_index t.ids.(p) p
    done;
    t.sky <- Array.map (fun p -> remap.(p)) t.sky;
    t.happy <- Array.map (fun p -> remap.(p)) t.happy;
    let old_verdicts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.verdicts [] in
    Hashtbl.reset t.verdicts;
    List.iter
      (fun (p, v) ->
        let v =
          match v with
          | V_happy -> V_happy
          | V_unhappy w -> V_unhappy (if w >= 0 then remap.(w) else w)
        in
        Hashtbl.replace t.verdicts remap.(p) v)
      old_verdicts;
    (* positions changed but the live sequence — and hence every answer —
       did not: the happy candidate array and the stored list carry over,
       and the epoch stays put *)
    Obs.Counter.incr c_flushes
  end

let flush t =
  let reclaimed = t.used - t.live in
  compact t;
  Obs.Gauge.set g_tombstone_ratio 0.;
  reclaimed

let maybe_flush t =
  let tombs = t.used - t.live in
  Obs.Gauge.set g_tombstone_ratio
    (if t.used = 0 then 0. else float_of_int tombs /. float_of_int t.used);
  if t.used >= 64 && float_of_int tombs > t.damage_ratio *. float_of_int t.used
  then ignore (flush t)

(* ---- updates ------------------------------------------------------------- *)

let grow t =
  if t.used = Array.length t.data then begin
    let cap = 2 * Array.length t.data in
    let data = Array.make cap [||] in
    let ids = Array.make cap 0 in
    let alive = Array.make cap false in
    Array.blit t.data 0 data 0 t.used;
    Array.blit t.ids 0 ids 0 t.used;
    Array.blit t.alive 0 alive 0 t.used;
    t.data <- data;
    t.ids <- ids;
    t.alive <- alive
  end

let insert t vec =
  if Array.length vec <> t.dim then
    invalid_arg "Dynamic.insert: wrong dimension";
  Array.iter
    (fun x ->
      if not (Float.is_finite x) || x <= 0. || x > 1. then
        invalid_arg "Dynamic.insert: coordinates must lie in (0, 1]")
    vec;
  grow t;
  let pos = t.used in
  let id = t.next_id in
  t.data.(pos) <- vec;
  t.ids.(pos) <- id;
  t.alive.(pos) <- true;
  t.used <- t.used + 1;
  t.live <- t.live + 1;
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.id_index id pos;
  (* classify against the skyline: if some member dominates or equals the
     new point it cannot enter (the member is earlier, so even an exact
     duplicate stays out — the skyline keeps the first of an equal pair),
     and nothing else changes: dominance by any live point is always
     witnessed by a skyline member. Otherwise it enters, evicting the
     members it strictly dominates. Both verdicts cannot hold at once
     (dominance is transitive and the skyline has no dominated pairs). *)
  let excluded = ref false in
  let evicted = ref [] in
  let i = ref 0 in
  let m = Array.length t.sky in
  while (not !excluded) && !i < m do
    let s = t.sky.(!i) in
    (match Dominance.compare t.data.(s) vec with
    | Dominance.Dominates | Dominance.Equal -> excluded := true
    | Dominance.Dominated -> evicted := s :: !evicted
    | Dominance.Incomparable -> ());
    incr i
  done;
  if !excluded then begin
    Obs.Counter.incr c_insert_noops;
    id
  end
  else begin
    Obs.Counter.incr c_inserts;
    let evicted_tbl = Hashtbl.create 8 in
    List.iter
      (fun s ->
        Hashtbl.replace evicted_tbl s ();
        Hashtbl.remove t.verdicts s;
        Obs.Counter.incr c_sky_evictions)
      !evicted;
    let survivors =
      Array.of_list
        (List.filter
           (fun s -> not (Hashtbl.mem evicted_tbl s))
           (Array.to_list t.sky))
    in
    (* the new point has the largest slot position: append keeps ascending *)
    t.sky <- Array.append survivors [| pos |];
    (* bounded re-screen: a surviving happy member can only have gained the
       new point as a subjugator; a surviving unhappy member stays unhappy
       unless its cached witness was evicted (or never determined) *)
    Array.iter
      (fun s ->
        match Hashtbl.find t.verdicts s with
        | V_happy ->
            if Happy.subjugates ?eps:t.eps vec t.data.(s) then
              Hashtbl.replace t.verdicts s (V_unhappy pos)
        | V_unhappy w ->
            if w < 0 || Hashtbl.mem evicted_tbl w then rescreen t s)
      survivors;
    rescreen t pos;
    refresh_after_sky_change t;
    id
  end

let delete t id =
  match Hashtbl.find_opt t.id_index id with
  | None ->
      Obs.Counter.incr c_delete_noops;
      false
  | Some pos when not t.alive.(pos) ->
      Obs.Counter.incr c_delete_noops;
      false
  | Some pos ->
      t.alive.(pos) <- false;
      t.live <- t.live - 1;
      Hashtbl.remove t.id_index id;
      Obs.Counter.incr c_deletes;
      let in_sky = Hashtbl.mem t.verdicts pos in
      if in_sky then begin
        let x = t.data.(pos) in
        Hashtbl.remove t.verdicts pos;
        let survivors =
          Array.of_list (List.filter (fun s -> s <> pos) (Array.to_list t.sky))
        in
        t.sky <- survivors;
        (* re-entry candidates: the live points the deleted member excluded
           (it dominated them, or equalled them from an earlier slot). Any
           other exclusion is still witnessed by a surviving member, so two
           bounded filters recover the exact new skyline: drop candidates a
           survivor dominates-or-equals, then run the pairwise rule among
           what is left (earlier slot wins an equal pair). *)
        let cands = ref [] in
        for q = t.used - 1 downto 0 do
          if t.alive.(q) && not (Hashtbl.mem t.verdicts q) then
            match Dominance.compare x t.data.(q) with
            | Dominance.Dominates | Dominance.Equal -> cands := q :: !cands
            | Dominance.Dominated | Dominance.Incomparable -> ()
        done;
        let filtered =
          List.filter
            (fun q ->
              not
                (Array.exists
                   (fun s ->
                     match Dominance.compare t.data.(s) t.data.(q) with
                     | Dominance.Dominates | Dominance.Equal -> true
                     | _ -> false)
                   survivors))
            !cands
        in
        let entrants =
          List.filter
            (fun q ->
              not
                (List.exists
                   (fun r ->
                     r <> q
                     &&
                     match Dominance.compare t.data.(r) t.data.(q) with
                     | Dominance.Dominates -> true
                     | Dominance.Equal -> r < q
                     | _ -> false)
                   filtered))
            filtered
        in
        let entrants = Array.of_list entrants in
        Obs.Counter.add c_sky_entrants (Array.length entrants);
        (* merge two ascending position arrays *)
        let merged = Array.make (Array.length survivors + Array.length entrants) 0 in
        let a = ref 0 and b = ref 0 and w = ref 0 in
        while !a < Array.length survivors || !b < Array.length entrants do
          let take_a =
            !b >= Array.length entrants
            || (!a < Array.length survivors && survivors.(!a) < entrants.(!b))
          in
          if take_a then begin
            merged.(!w) <- survivors.(!a);
            incr a
          end
          else begin
            merged.(!w) <- entrants.(!b);
            incr b
          end;
          incr w
        done;
        t.sky <- merged;
        (* bounded re-screen mirroring the insert path: a surviving happy
           member can only have gained an entrant as a subjugator; unhappy
           members re-screen only when their witness was the deleted point
           (or never determined); entrants get a full screen *)
        Array.iter
          (fun s ->
            match Hashtbl.find t.verdicts s with
            | V_happy ->
                let w = ref (-1) in
                Array.iter
                  (fun e ->
                    if !w < 0 && Happy.subjugates ?eps:t.eps t.data.(e) t.data.(s)
                    then w := e)
                  entrants;
                if !w >= 0 then Hashtbl.replace t.verdicts s (V_unhappy !w)
            | V_unhappy w -> if w < 0 || w = pos then rescreen t s)
          survivors;
        Array.iter (fun e -> rescreen t e) entrants;
        refresh_after_sky_change t
      end;
      maybe_flush t;
      true
