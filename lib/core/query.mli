(** High-level k-regret query façade.

    Ties the pipeline together the way the paper's experiments run it:
    normalize the data, reduce to a candidate set (skyline or happy points),
    run an algorithm, and report the selection with its maximum regret
    ratio. Library users who need finer control (timing phases separately,
    reusing a materialized StoredList, instrumenting the index) should use
    {!Geo_greedy}, {!Greedy_lp}, {!Stored_list} and
    {!Kregret_happy.Happy} directly — this module adds no magic. *)

type algorithm =
  | Greedy_lp  (** LP-based baseline of Nanongkai et al. *)
  | Geo_greedy  (** the paper's Algorithm 1 *)
  | Stored_list  (** materialize-then-answer (preprocessing counted in
                     [preprocess], query is list truncation) *)
  | Cube  (** grid baseline of Nanongkai et al. *)

type candidate_set =
  | All  (** run on the full dataset *)
  | Sky  (** reduce to skyline points first (prior work's setting) *)
  | Happy  (** reduce to happy points (the paper's setting; implies a
               skyline pass) *)

type result = {
  candidates : Kregret_dataset.Dataset.t;  (** candidate set actually used *)
  order : int list;  (** selected indices into [candidates.points] *)
  selected : Kregret_geom.Vector.t list;  (** the answer tuples *)
  mrr : float;  (** maximum regret ratio of the answer w.r.t. the candidates
                    (equals mrr w.r.t. the full data when the candidate set
                    retains the per-dimension boundary points, which both
                    reductions do) *)
}

(** [reduce ds set] applies the candidate-set reduction. *)
val reduce : Kregret_dataset.Dataset.t -> candidate_set -> Kregret_dataset.Dataset.t

(** [run ?algorithm ?candidates ds ~k] answers a k-regret query on a
    normalized dataset (see {!Kregret_dataset.Dataset.normalize}). Defaults:
    [Geo_greedy] on [Happy] candidates. *)
val run :
  ?algorithm:algorithm ->
  ?candidates:candidate_set ->
  Kregret_dataset.Dataset.t ->
  k:int ->
  result

(** [algorithm_name] / [candidate_set_name] — display labels used by the CLI
    and benches. *)
val algorithm_name : algorithm -> string

val candidate_set_name : candidate_set -> string
