module Vector = Kregret_geom.Vector
module Dual_polytope = Kregret_hull.Dual_polytope
module Regret_lp = Kregret_lp.Regret_lp
module Rng = Kregret_dataset.Rng
module Pool = Kregret_parallel.Pool
module Obs = Kregret_obs

let c_sampled =
  Obs.Registry.counter "mrr.sampled_directions"
    ~help:"random directions evaluated by the Monte-Carlo mrr estimator"

let check ~selected =
  if selected = [] then invalid_arg "Mrr: empty selection"

let geometric ~data ~selected =
  check ~selected;
  let d = Vector.dim (List.hd selected) in
  (* exact bound for Q(S): w_i <= 1 / max_{p in S} p_i *)
  let col_max = Array.make d 0. in
  List.iter
    (fun p ->
      for i = 0 to d - 1 do
        if p.(i) > col_max.(i) then col_max.(i) <- p.(i)
      done)
    selected;
  let worst = Array.fold_left Float.min infinity col_max in
  if worst <= 0. then invalid_arg "Mrr.geometric: selection has a zero column";
  let bound = 1.05 /. worst in
  let dp = Dual_polytope.create ~bound ~dim:d () in
  List.iter (fun p -> ignore (Dual_polytope.insert dp p)) selected;
  Dual_polytope.max_regret_ratio dp ~data

let lp ~data ~selected =
  check ~selected;
  Regret_lp.max_regret_ratio ~data ~selected ()

let regret_for_weight ~weight ~data ~selected =
  check ~selected;
  let best pts = List.fold_left (fun acc p -> Float.max acc (Vector.dot weight p)) 0. pts in
  let u_all = best data and u_sel = best selected in
  if u_all <= 0. then 0. else Float.max 0. (1. -. (u_sel /. u_all))

let finite_class ~weights ~data ~selected =
  check ~selected;
  List.fold_left
    (fun acc weight -> Float.max acc (regret_for_weight ~weight ~data ~selected))
    0. weights

(* Random non-negative directions: half Gaussian-orthant (uniform on the
   positive part of the sphere), half sparse — a random subset of axes with
   random positive weights — to probe the low-dimensional faces where maxima
   of the regret function often sit. *)
let random_direction rng d =
  if Rng.float rng < 0.5 then
    Vector.normalize
      (Array.init d (fun _ -> abs_float (Rng.gaussian rng ~mu:0. ~sigma:1.)))
  else begin
    (* Sparse branch: [support] *distinct* axes via a partial Fisher–Yates
       shuffle. The old loop drew axes with replacement, so collisions
       silently shrank the support — a draw of "support = d" produced a
       full-support direction only ~d!/d^d of the time, starving the
       estimator of exactly the high-support sparse probes it advertises.
       Weights are >= 0.05, so the norm is always positive and no zero-guard
       is needed. Consumes 2*support draws after the support draw; the
       block-split determinism of [sampled] is unaffected (each block owns
       its own generator). *)
    let v = Array.make d 0. in
    let support = 1 + Rng.int rng d in
    let axes = Array.init d Fun.id in
    for i = 0 to support - 1 do
      let j = i + Rng.int rng (d - i) in
      let a = axes.(j) in
      axes.(j) <- axes.(i);
      axes.(i) <- a;
      v.(a) <- 0.05 +. Rng.float rng
    done;
    Vector.normalize v
  end

(* The sample budget is carved into fixed blocks of [sample_block]
   directions, each owned by an Rng derived from the caller's generator by
   sequential [Rng.split]s. Block layout depends only on [samples] (never
   on the pool width) and [Float.max] over non-NaN floats is exact and
   associative, so the estimate is bit-identical for every jobs count —
   the qcheck determinism suite pins this down. *)
let sample_block = 64

let sampled ~rng ~samples ~data ~selected =
  check ~selected;
  let d = Vector.dim (List.hd selected) in
  if samples <= 0 then 0.
  else begin
    let blocks = (samples + sample_block - 1) / sample_block in
    let rngs = Array.make blocks rng in
    for b = 0 to blocks - 1 do
      rngs.(b) <- Rng.split rng
    done;
    Pool.map_reduce ~lo:0 ~hi:blocks ~chunk_size:1
      ~map:(fun b _ ->
        let r = rngs.(b) in
        let count = min sample_block (samples - (b * sample_block)) in
        (* per-block flush: block sizes depend only on [samples] *)
        Obs.Counter.add c_sampled count;
        let acc = ref 0. in
        for _ = 1 to count do
          let weight = random_direction r d in
          acc := Float.max !acc (regret_for_weight ~weight ~data ~selected)
        done;
        !acc)
      ~reduce:Float.max 0.
  end
