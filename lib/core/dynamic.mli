(** Incremental maintenance of the k-regret pipeline under inserts and
    deletes (the paper's Section VII "dynamic datasets" future-work item).

    A [Dynamic.t] owns a slot store of points (deletes tombstone, a
    threshold-driven {!flush} compacts) and keeps the derived pipeline state
    — skyline, happy set, stored list — synchronized after every update,
    {e bit-identically} to rebuilding the whole pipeline from the live
    points. The oracle in [Kregret_check.Dynamic_oracle] enforces exactly
    that equivalence on fuzzed interleavings at several pool widths.

    Where the incrementality lives:

    - {b Skyline}: an insert dominated (or value-equaled) by a skyline
      member is an exact no-op — O(|sky| * d) and nothing downstream moves.
      An entering insert evicts only the members it dominates; a skyline
      delete re-screens only the points the deleted member excluded.
    - {b Happy set}: each skyline member carries a verdict with a witness
      (one subjugator). An update fully re-screens only the new/re-entered
      points and the members whose witness was invalidated; everyone else
      is decided by probing against the few changed points.
    - {b Stored list}: reused outright when the happy candidate array is
      bit-unchanged, restored from a small content-verified memo when an
      oscillating workload returns to a recent happy array, and otherwise
      re-derived by one {!Stored_list.preprocess} pass over the happy set.
      The memo and reuse tiers compare full float bits, never hashes.

    Why the stored list is re-derived rather than patched in place:
    GeoGreedy's champion cache is event-driven, and a champion value after
    an event-path update can differ by one ulp from the value a fresh full
    scan computes (the event path maximizes over replacement faces only).
    Replaying a prefix and continuing therefore does not reproduce the
    fresh run bit-for-bit on tie-heavy data; only a fresh preprocessing
    pass does. The repair-depth histogram records how much of the list an
    update actually invalidated (distance from the first divergent position
    to the end).

    Not thread-safe: the serve layer serializes updates and builds on one
    worker and answers concurrent queries from immutable {!Snapshot}s. All
    update paths are sequential, so results are identical for every
    [Kregret_parallel.Pool] width (the rebuild pipeline underneath is
    width-invariant by the repo-wide determinism contract). *)

type t

(** [create points] builds the initial state with the standard pipeline
    (skyline -> happy screen -> stored-list preprocessing). Points get
    external ids [0 .. n-1] in array order; later inserts continue the
    sequence. [eps] and [max_length] are threaded to every rebuild;
    [damage_ratio] (default [0.5], exclusive bounds (0,1)) is the tombstone
    fraction that triggers an automatic compaction; [memo] (default 8) caps
    the round-trip memo. Raises [Invalid_argument] on an empty array,
    inconsistent dimensions, or an out-of-range [damage_ratio]. *)
val create :
  ?eps:float ->
  ?max_length:int ->
  ?damage_ratio:float ->
  ?memo:int ->
  Kregret_geom.Vector.t array ->
  t

(** [insert t p] adds a point and returns its external id. Coordinates must
    be finite and in [(0, 1]] ([Invalid_argument] otherwise — dynamic data
    must arrive pre-normalized, there is no global rescale to invalidate).
    Duplicate and dominated points are accepted into the store but leave
    the skyline, happy set, stored list and {!epoch} untouched. *)
val insert : t -> Kregret_geom.Vector.t -> int

(** [delete t id] tombstones the point with external id [id]; [false] when
    the id is unknown or already deleted. Deleting a non-skyline point
    leaves every answer untouched; deleting a skyline member triggers the
    bounded repair described above. May auto-compact when the tombstone
    fraction crosses the damage ratio. *)
val delete : t -> int -> bool

(** [flush t] compacts tombstoned slots immediately and returns how many
    were reclaimed. External ids, answers and {!epoch} are unaffected. *)
val flush : t -> int

(** [query t ~k] is the k-regret answer over the live points: external ids
    of the stored list's first [k] entries and the prefix's maximum regret
    ratio. [([], 0.)] when no live points remain. *)
val query : t -> k:int -> int list * float

(** [mrr_at t ~k] is just the regret of the [k]-prefix. *)
val mrr_at : t -> k:int -> float

val dim : t -> int
val live : t -> int

(** [slots t] is the store size including tombstones. *)
val slots : t -> int

val tombstones : t -> int
val sky_size : t -> int
val happy_size : t -> int
val stored_length : t -> int

(** [epoch t] is the answer version: it bumps exactly when the skyline (and
    possibly the stored list) changes, and stays put across no-op inserts,
    non-skyline deletes and compactions — so it keys result caches with no
    false invalidations. *)
val epoch : t -> int

(** [live_points t] lists the live [(id, point)] pairs in insertion order —
    the rebuild oracle's input. *)
val live_points : t -> (int * Kregret_geom.Vector.t) array

(** Immutable answer snapshots: the serve layer publishes one after each
    update batch and answers queries from it without touching [t]. *)
module Snapshot : sig
  type t

  val epoch : t -> int
  val live : t -> int
  val stored_length : t -> int
  val query : t -> k:int -> int list * float
  val mrr_at : t -> k:int -> float

  (** [basis s] — the live [(ids, rows)] the snapshot was published from,
      insertion order (the same pairing as {!live_points}): the input the
      serve layer hands sibling query engines (rank-regret) so their
      answers track updates epoch for epoch. *)
  val basis : t -> int array * Kregret_geom.Vector.t array
end

val snapshot : t -> Snapshot.t
