(** Maximum regret ratio evaluators.

    Three independent implementations of Definition 2 / Lemma 1 — geometric
    (dual polytope), linear programming, and Monte-Carlo sampling — plus the
    finite-function-class variant used by the paper's running example
    (Tables I and II). The first two are exact and agree to numerical
    tolerance; the sampling evaluator is a lower bound that converges from
    below, used as an end-to-end sanity check in the tests and benches. *)

(** [geometric ~data ~selected] — Lemma 1 via the dual polytope:
    [mrr(S) = max 0 (1 - min_q cr(q, S))]. Exact for any non-empty
    [selected] with strictly positive coordinates. *)
val geometric :
  data:Kregret_geom.Vector.t list -> selected:Kregret_geom.Vector.t list ->
  float

(** [lp ~data ~selected] — the same quantity via one critical-ratio LP per
    point of [data] (what the baseline [Greedy] evaluates internally). *)
val lp :
  data:Kregret_geom.Vector.t list -> selected:Kregret_geom.Vector.t list ->
  float

(** [sampled ~rng ~samples ~data ~selected] — empirical maximum of
    [rr(S, f_w)] over [samples] random non-negative unit directions [w]
    (Gaussian-orthant and sparse axis-biased mixtures). Always [<=] the
    exact value.

    The budget is split into fixed 64-sample blocks, each driven by an
    independent generator derived from [rng] by [Rng.split], and the
    blocks are evaluated on the domain pool. The block layout depends
    only on [samples], so the estimate is bit-identical for every
    [KREGRET_JOBS] / [--jobs] setting. *)
val sampled :
  rng:Kregret_dataset.Rng.t ->
  samples:int ->
  data:Kregret_geom.Vector.t list ->
  selected:Kregret_geom.Vector.t list ->
  float

(** [finite_class ~weights ~data ~selected] — [mrr] over an explicit finite
    set of linear utility functions, as in the paper's car example where
    [F = {f_(0.3,0.7), f_(0.5,0.5), f_(0.7,0.3)}]. *)
val finite_class :
  weights:Kregret_geom.Vector.t list ->
  data:Kregret_geom.Vector.t list ->
  selected:Kregret_geom.Vector.t list ->
  float

(** [regret_for_weight ~weight ~data ~selected] — [rr(S, f_w)] for one
    utility function (Definition 1). *)
val regret_for_weight :
  weight:Kregret_geom.Vector.t ->
  data:Kregret_geom.Vector.t list ->
  selected:Kregret_geom.Vector.t list ->
  float

(** [random_direction rng d] — one random non-negative unit direction of the
    mixture [sampled] draws from: with probability 1/2 a Gaussian-orthant
    direction (uniform on the positive part of the sphere), otherwise a
    sparse direction supported on [1 + Rng.int rng d] {e distinct} axes
    (partial Fisher–Yates) with weights in [[0.05, 1.05)]. Exposed for the
    statistical regression tests of the sparse branch. *)
val random_direction : Kregret_dataset.Rng.t -> int -> Kregret_geom.Vector.t
