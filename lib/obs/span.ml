type snapshot = {
  name : string;
  seconds : float;
  count : int;
  children : snapshot list;
}

type node = {
  name : string;
  mutable seconds : float;
  mutable count : int;
  children : (string, node) Hashtbl.t;
}

type ctx = { root : node; mutable stack : node list }

let fresh_node name : node =
  { name; seconds = 0.; count = 0; children = Hashtbl.create 4 }

(* every domain's root is registered here so [snapshot] can merge them *)
let roots : node list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let root = fresh_node "" in
      Control.locked (fun () -> roots := root :: !roots);
      { root; stack = [] })

let with_ name f =
  if not (Control.enabled ()) then f ()
  else begin
    let ctx = Domain.DLS.get key in
    let parent = match ctx.stack with n :: _ -> n | [] -> ctx.root in
    let node =
      match Hashtbl.find_opt parent.children name with
      | Some n -> n
      | None ->
          let n = fresh_node name in
          Hashtbl.replace parent.children name n;
          n
    in
    ctx.stack <- node :: ctx.stack;
    let t0 = Control.now () in
    Fun.protect
      ~finally:(fun () ->
        node.seconds <- node.seconds +. (Control.now () -. t0);
        node.count <- node.count + 1;
        ctx.stack <- (match ctx.stack with _ :: tl -> tl | [] -> []))
      f
  end

(* merge a list of same-level child tables into name-sorted snapshots *)
let rec merge_children tables =
  let names = Hashtbl.create 16 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name node ->
          let prev = try Hashtbl.find names name with Not_found -> [] in
          Hashtbl.replace names name (node :: prev))
        tbl)
    tables;
  Hashtbl.fold
    (fun name (nodes : node list) acc ->
      let seconds = List.fold_left (fun a n -> a +. n.seconds) 0. nodes in
      let count = List.fold_left (fun a n -> a + n.count) 0 nodes in
      let children = merge_children (List.map (fun n -> n.children) nodes) in
      ({ name; seconds; count; children } : snapshot) :: acc)
    names []
  |> List.sort (fun (a : snapshot) (b : snapshot) -> compare a.name b.name)

let snapshot () =
  Control.locked (fun () ->
      merge_children (List.map (fun r -> r.children) !roots))

let reset () =
  Control.locked (fun () ->
      List.iter (fun r -> Hashtbl.reset r.children) !roots)
