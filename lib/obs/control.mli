(** Global on/off switch and shared plumbing for the observability layer.

    Everything in [Kregret_obs] is disabled by default: with the switch off,
    every instrumentation call ([Counter.add], [Histogram.observe],
    [Span.with_]) is a single atomic load followed by an immediate return, no
    cells are materialized, and the exporters see an empty registry. This is
    the "compile-out-style" fast path: enabling observability is a runtime
    decision ([--metrics] / [--stats] on the binaries), not a build variant,
    but the disabled cost is negligible even inside the hot loops.

    The module is stdlib-only (no unix, no fmt) so that every library layer
    can depend on it. The span clock defaults to [Sys.time] (processor time);
    binaries that link [unix] should install a wall clock with {!set_clock}
    at startup. *)

val enabled : unit -> bool
(** Whether instrumentation is recording. One atomic load. *)

val set_enabled : bool -> unit
(** Turn recording on or off. Toggle only outside parallel regions. *)

val locked : (unit -> 'a) -> 'a
(** Run a thunk under the registry mutex (shared by cell registration,
    metric interning and snapshots). Not reentrant. *)

val now : unit -> float
(** Current time in seconds from the installed clock. *)

val set_clock : (unit -> float) -> unit
(** Install the time source used by {!Span} timers and the pool's busy-time
    histogram (e.g. [Unix.gettimeofday] for wall-clock traces). *)

val monotonic_of : (unit -> float) -> unit -> float
(** [monotonic_of base] wraps a clock so its readings never decrease: a
    backwards step of [base] (NTP slew, a manual wall-clock reset) is held
    at the previous high-water mark until real time catches up again.
    Thread-safe; each wrapper keeps its own mark. Uptime counters and span
    ages should be computed against such a wrapper, never raw
    [Unix.gettimeofday] differences. *)
