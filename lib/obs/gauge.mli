(** Last-write-wins float gauges for point-in-time values (pool width,
    candidate-set sizes, polytope bound). Set them from the orchestrating
    domain only — unlike {!Counter} there is no per-domain sharding, so a
    gauge written from inside a parallel region would race. *)

type t

val make : name:string -> help:string -> t
val name : t -> string
val help : t -> string

val set : t -> float -> unit
(** Record a value. No-op while {!Control.enabled} is false. *)

val set_int : t -> int -> unit

val value : t -> float
(** The last recorded value (0. if never set). *)

val touched : t -> bool
val reset : t -> unit
