(** Cumulative-style histograms with per-domain cells (same sharding scheme
    as {!Counter}). Bucket counts are integers and merge exactly; the
    floating-point [sum] is merged in cell-registration order, so unlike
    counters it is {e not} covered by the cross-width bit-identity contract
    (the observations themselves usually are not either — histograms here
    record durations). *)

type t

type snapshot = {
  count : int;  (** total observations *)
  sum : float;  (** sum of observed values *)
  buckets : (float * int) list;
      (** [(le, n)] pairs: [n] observations with value [<= le], plus a final
          [(infinity, n)] overflow bucket. Non-cumulative counts. *)
}

val default_buckets : float array
(** Exponential seconds-oriented ladder: 1e-6 .. 10. *)

val make : ?buckets:float array -> name:string -> help:string -> unit -> t
(** [buckets] must be strictly increasing. An implicit [+inf] overflow
    bucket is appended. *)

val name : t -> string
val help : t -> string

val observe : t -> float -> unit
(** Record one observation into the calling domain's cell. No-op while
    {!Control.enabled} is false. *)

val snapshot : t -> snapshot
val touched : t -> bool
val reset : t -> unit
