(** Monotone integer counters with per-domain accumulation.

    Each domain that touches a counter gets its own cell (registered lazily
    through domain-local storage), so increments from inside
    [Kregret_parallel.Pool] regions never contend or race. {!value} merges
    the cells by integer summation, which is exact, associative and
    commutative — therefore a counter whose per-chunk contributions are a
    pure function of the chunk's input range (the pool's determinism
    contract) reads {e bit-identical} totals at every [KREGRET_JOBS] width.

    Cells survive their domain: a pool rebuild (width change) spawns fresh
    domains and fresh cells, but the old cells stay registered and keep
    contributing their final counts to {!value}. *)

type t

val make : name:string -> help:string -> t
(** Create an unregistered counter. Most callers want
    {!Registry.counter}, which interns by name. *)

val name : t -> string
val help : t -> string

val add : t -> int -> unit
(** Add [n] to the calling domain's cell. No-op when {!Control.enabled} is
    false (one atomic load). *)

val incr : t -> unit
(** [incr t] is [add t 1]. *)

val value : t -> int
(** Sum over every cell ever registered. Call outside parallel regions. *)

val touched : t -> bool
(** Whether any domain ever materialized a cell (i.e. the counter was hit
    at least once while enabled). *)

val reset : t -> unit
(** Zero every cell (cells stay registered — domains keep their handle).
    Call outside parallel regions. *)
