(* Hand-rolled JSON writer (the library is stdlib-only; no yojson). *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
  else Buffer.add_string buf "null"

let sep buf first = if !first then first := false else Buffer.add_string buf ", "

let obj buf fields =
  Buffer.add_char buf '{';
  let first = ref true in
  List.iter
    (fun (k, emit) ->
      sep buf first;
      escape buf k;
      Buffer.add_string buf ": ";
      emit ())
    fields;
  Buffer.add_char buf '}'

let rec add_span buf (s : Span.snapshot) =
  obj buf
    [
      ("name", fun () -> escape buf s.Span.name);
      ("seconds", fun () -> add_float buf s.Span.seconds);
      ("count", fun () -> Buffer.add_string buf (string_of_int s.Span.count));
      ( "children",
        fun () ->
          Buffer.add_char buf '[';
          let first = ref true in
          List.iter
            (fun c ->
              sep buf first;
              add_span buf c)
            s.Span.children;
          Buffer.add_char buf ']' );
    ]

let add_histogram buf (h : Histogram.snapshot) =
  obj buf
    [
      ( "count",
        fun () -> Buffer.add_string buf (string_of_int h.Histogram.count) );
      ("sum", fun () -> add_float buf h.Histogram.sum);
      ( "buckets",
        fun () ->
          Buffer.add_char buf '[';
          let first = ref true in
          List.iter
            (fun (le, n) ->
              sep buf first;
              obj buf
                [
                  ( "le",
                    fun () ->
                      if Float.is_finite le then add_float buf le
                      else escape buf "inf" );
                  ("count", fun () -> Buffer.add_string buf (string_of_int n));
                ])
            h.Histogram.buckets;
          Buffer.add_char buf ']' );
    ]

let to_json () =
  let counters = Registry.counters () in
  let gauges = Registry.gauges () in
  let histograms = Registry.histograms () in
  let spans = Span.snapshot () in
  let buf = Buffer.create 2048 in
  obj buf
    [
      ("schema", fun () -> escape buf "kregret-obs/v1");
      ( "counters",
        fun () ->
          obj buf
            (List.map
               (fun (name, v) ->
                 (name, fun () -> Buffer.add_string buf (string_of_int v)))
               counters) );
      ( "gauges",
        fun () ->
          obj buf
            (List.map
               (fun (name, v) -> (name, fun () -> add_float buf v))
               gauges) );
      ( "histograms",
        fun () ->
          obj buf
            (List.map
               (fun (name, h) -> (name, fun () -> add_histogram buf h))
               histograms) );
      ( "spans",
        fun () ->
          Buffer.add_char buf '[';
          let first = ref true in
          List.iter
            (fun s ->
              sep buf first;
              add_span buf s)
            spans;
          Buffer.add_char buf ']' );
    ];
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))

let pp_table ppf () =
  let counters = Registry.counters () in
  let gauges = Registry.gauges () in
  let histograms = Registry.histograms () in
  let spans = Span.snapshot () in
  let width =
    List.fold_left
      (fun acc n -> max acc (String.length n))
      24
      (List.map fst counters
      @ List.map fst gauges
      @ List.map fst histograms)
  in
  if counters = [] && gauges = [] && histograms = [] && spans = [] then
    Format.fprintf ppf "observability: no metrics recorded@."
  else begin
    if counters <> [] then begin
      Format.fprintf ppf "counters@.";
      List.iter
        (fun (n, v) -> Format.fprintf ppf "  %-*s %d@." width n v)
        counters
    end;
    if gauges <> [] then begin
      Format.fprintf ppf "gauges@.";
      List.iter
        (fun (n, v) -> Format.fprintf ppf "  %-*s %g@." width n v)
        gauges
    end;
    if histograms <> [] then begin
      Format.fprintf ppf "histograms@.";
      List.iter
        (fun (n, h) ->
          Format.fprintf ppf "  %-*s count=%d sum=%g@." width n
            h.Histogram.count h.Histogram.sum)
        histograms
    end;
    if spans <> [] then begin
      Format.fprintf ppf "spans@.";
      let rec pp_span indent (s : Span.snapshot) =
        Format.fprintf ppf "  %s%-*s %.6fs x%d@." indent
          (max 1 (width - String.length indent))
          s.Span.name s.Span.seconds s.Span.count;
        List.iter (pp_span (indent ^ "  ")) s.Span.children
      in
      List.iter (pp_span "") spans
    end
  end
