let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

(* One mutex guards metric interning, per-domain cell registration and
   snapshots. Registration is rare (once per metric per domain) and
   snapshots run outside parallel regions, so contention is negligible. *)
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* [Sys.time] keeps the library stdlib-only; binaries install
   [Unix.gettimeofday] for wall-clock span trees. *)
let clock : (unit -> float) ref = ref Sys.time
let set_clock f = clock := f
let now () = !clock ()

(* A wall clock can step backwards (NTP slew, manual resets); anything that
   reports ages or uptimes from it can go negative. [monotonic_of] pins a
   high-water mark over the base clock, so readings never decrease: a
   backwards step is held at the last value until real time catches up. *)
let monotonic_of base =
  let last = Atomic.make neg_infinity in
  fun () ->
    let rec advance () =
      let prev = Atomic.get last in
      let t = base () in
      if t <= prev then prev
      else if Atomic.compare_and_set last prev t then t
      else advance ()
    in
    advance ()
