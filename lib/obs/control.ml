let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

(* One mutex guards metric interning, per-domain cell registration and
   snapshots. Registration is rare (once per metric per domain) and
   snapshots run outside parallel regions, so contention is negligible. *)
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* [Sys.time] keeps the library stdlib-only; binaries install
   [Unix.gettimeofday] for wall-clock span trees. *)
let clock : (unit -> float) ref = ref Sys.time
let set_clock f = clock := f
let now () = !clock ()
