type t = {
  name : string;
  help : string;
  cells : int ref list ref; (* under Control.locked *)
  key : int ref Domain.DLS.key;
}

let make ~name ~help =
  let cells = ref [] in
  let key =
    (* the initializer runs on each domain's first [DLS.get]: allocate this
       domain's cell and register it so [value] can find it even after the
       domain terminates (pool rebuilds keep the old cells' final counts) *)
    Domain.DLS.new_key (fun () ->
        let c = ref 0 in
        Control.locked (fun () -> cells := c :: !cells);
        c)
  in
  { name; help; cells; key }

let name t = t.name
let help t = t.help

let add t n =
  if Control.enabled () then begin
    (* only the owning domain writes its cell: no lock, no race *)
    let c = Domain.DLS.get t.key in
    c := !c + n
  end

let incr t = add t 1

let value t =
  Control.locked (fun () ->
      List.fold_left (fun acc c -> acc + !c) 0 !(t.cells))

let touched t = Control.locked (fun () -> !(t.cells) <> [])
let reset t = Control.locked (fun () -> List.iter (fun c -> c := 0) !(t.cells))
