(** Global metric registry. Instrumented modules intern their metrics at
    module-initialization time:

    {[
      let c_pivots =
        Kregret_obs.Registry.counter "simplex.pivots"
          ~help:"simplex pivot operations"
    ]}

    Interning is idempotent (same name returns the same cell) and raises
    [Invalid_argument] if a name is reused with a different metric type.

    Snapshots report only {e touched} metrics — ones hit at least once while
    {!Control.enabled} was true. A fully disabled run therefore exports an
    empty registry regardless of how many metrics were interned. *)

val counter : ?help:string -> string -> Counter.t
val gauge : ?help:string -> string -> Gauge.t
val histogram : ?help:string -> ?buckets:float array -> string -> Histogram.t

val counters : unit -> (string * int) list
(** Name-sorted counters with non-zero merged values (zero-valued counters
    — including everything after a {!reset} — are omitted). *)

val gauges : unit -> (string * float) list
(** Name-sorted touched gauges. *)

val histograms : unit -> (string * Histogram.snapshot) list
(** Name-sorted touched histograms. *)

val help_of : string -> string option
(** The help string a metric was interned with (empty help -> [None]). *)

val reset : unit -> unit
(** Zero every metric and drop the span trees. Call outside parallel
    regions (typically between runs, or at the start of a [--metrics]
    session). *)
