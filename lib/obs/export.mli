(** Exporters: a self-contained JSON document and a human-readable table.

    JSON schema ([kregret-obs/v1]):

    {[
      {
        "schema": "kregret-obs/v1",
        "counters":   { "<name>": <int>, ... },
        "gauges":     { "<name>": <float>, ... },
        "histograms": { "<name>": { "count": <int>, "sum": <float>,
                                    "buckets": [ {"le": <float|"inf">,
                                                  "count": <int>}, ... ] } },
        "spans": [ { "name": "<name>", "seconds": <float>, "count": <int>,
                     "children": [ ... ] }, ... ]
      }
    ]}

    Only touched, non-zero metrics appear (see {!Registry.counters}); a run
    with observability disabled exports empty sections. Counter values are
    bit-identical across [KREGRET_JOBS] widths; span seconds and histogram
    sums are timing-dependent. *)

val to_json : unit -> string
(** The current registry + span snapshot as a JSON document (trailing
    newline included). *)

val write : path:string -> unit
(** Write {!to_json} to [path] (truncating). *)

val pp_table : Format.formatter -> unit -> unit
(** Human-readable dump: counters/gauges aligned in columns, histograms as
    count/sum lines, spans as an indented tree. *)
