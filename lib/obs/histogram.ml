type snapshot = { count : int; sum : float; buckets : (float * int) list }

type cell = { counts : int array; mutable sum : float; mutable n : int }

type t = {
  name : string;
  help : string;
  buckets : float array;
  cells : cell list ref; (* under Control.locked *)
  key : cell Domain.DLS.key;
}

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let make ?(buckets = default_buckets) ~name ~help () =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Kregret_obs.Histogram.make: buckets must be increasing")
    buckets;
  let nb = Array.length buckets in
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = { counts = Array.make (nb + 1) 0; sum = 0.; n = 0 } in
        Control.locked (fun () -> cells := c :: !cells);
        c)
  in
  { name; help; buckets; cells; key }

let name t = t.name
let help t = t.help

let observe t x =
  if Control.enabled () then begin
    let c = Domain.DLS.get t.key in
    let nb = Array.length t.buckets in
    let i = ref 0 in
    while !i < nb && x > t.buckets.(!i) do
      incr i
    done;
    c.counts.(!i) <- c.counts.(!i) + 1;
    c.sum <- c.sum +. x;
    c.n <- c.n + 1
  end

let snapshot t =
  Control.locked (fun () ->
      let nb = Array.length t.buckets in
      let counts = Array.make (nb + 1) 0 in
      let sum = ref 0. and n = ref 0 in
      List.iter
        (fun c ->
          Array.iteri (fun i x -> counts.(i) <- counts.(i) + x) c.counts;
          sum := !sum +. c.sum;
          n := !n + c.n)
        !(t.cells);
      let merged =
        List.init (nb + 1) (fun i ->
            ((if i < nb then t.buckets.(i) else infinity), counts.(i)))
      in
      ({ count = !n; sum = !sum; buckets = merged } : snapshot))

let touched t = Control.locked (fun () -> !(t.cells) <> [])

let reset t =
  Control.locked (fun () ->
      List.iter
        (fun c ->
          Array.fill c.counts 0 (Array.length c.counts) 0;
          c.sum <- 0.;
          c.n <- 0)
        !(t.cells))
