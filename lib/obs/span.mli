(** Scoped timers forming a trace tree.

    [with_ "query" f] opens a span around [f]; spans opened inside [f]
    become children. Repeated spans with the same name under the same parent
    aggregate (total seconds + hit count), so per-iteration spans stay O(1)
    in memory. Each domain keeps its own tree (domain-local storage);
    {!snapshot} merges all domains' trees by name, so the odd span opened
    from a pool worker still shows up.

    Timing uses {!Control.now} — install [Unix.gettimeofday] via
    {!Control.set_clock} for wall-clock trees (the default [Sys.time] is
    processor time). *)

type snapshot = {
  name : string;
  seconds : float;
  count : int;
  children : snapshot list;  (** sorted by name *)
}

val with_ : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. Transparent (one atomic load) while
    {!Control.enabled} is false. Exceptions propagate; the span still
    closes. *)

val snapshot : unit -> snapshot list
(** The merged root-level spans, sorted by name. Call outside parallel
    regions. *)

val reset : unit -> unit
(** Drop all recorded spans (open spans keep timing into fresh nodes). *)
