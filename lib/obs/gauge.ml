type t = {
  name : string;
  help : string;
  mutable v : float; (* under Control.locked *)
  mutable written : bool; (* under Control.locked *)
}

let make ~name ~help = { name; help; v = 0.; written = false }
let name t = t.name
let help t = t.help

let set t x =
  if Control.enabled () then
    Control.locked (fun () ->
        t.v <- x;
        t.written <- true)

let set_int t n = set t (float_of_int n)
let value t = Control.locked (fun () -> t.v)
let touched t = Control.locked (fun () -> t.written)

let reset t =
  Control.locked (fun () ->
      t.v <- 0.;
      t.written <- false)
