type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

(* under Control.locked *)
let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let intern name make classify describe =
  Control.locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> (
          match classify m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Kregret_obs.Registry: %S already interned as a different \
                    metric type (wanted %s)"
                   name describe))
      | None ->
          let v, m = make () in
          Hashtbl.replace table name m;
          v)

let counter ?(help = "") name =
  intern name
    (fun () ->
      let c = Counter.make ~name ~help in
      (c, C c))
    (function C c -> Some c | _ -> None)
    "counter"

let gauge ?(help = "") name =
  intern name
    (fun () ->
      let g = Gauge.make ~name ~help in
      (g, G g))
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram ?(help = "") ?buckets name =
  intern name
    (fun () ->
      let h = Histogram.make ?buckets ~name ~help () in
      (h, H h))
    (function H h -> Some h | _ -> None)
    "histogram"

(* collect under the lock, then query each metric with the lock released
   (Counter.value etc. lock internally; the registry mutex is not
   reentrant) *)
let all () =
  Control.locked (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) table [])

let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l

let counters () =
  List.filter_map
    (function
      | C c when Counter.touched c -> (
          (* a reset leaves zeroed cells behind: report only counters that
             actually accumulated, so a disabled run exports nothing *)
          match Counter.value c with
          | 0 -> None
          | v -> Some (Counter.name c, v))
      | _ -> None)
    (all ())
  |> by_name

let gauges () =
  List.filter_map
    (function
      | G g when Gauge.touched g -> Some (Gauge.name g, Gauge.value g)
      | _ -> None)
    (all ())
  |> by_name

let histograms () =
  List.filter_map
    (function
      | H h when Histogram.touched h -> (
          match Histogram.snapshot h with
          | { count = 0; _ } -> None
          | s -> Some (Histogram.name h, s))
      | _ -> None)
    (all ())
  |> by_name

let help_of name =
  let m = Control.locked (fun () -> Hashtbl.find_opt table name) in
  match m with
  | None -> None
  | Some m -> (
      let h =
        match m with
        | C c -> Counter.help c
        | G g -> Gauge.help g
        | H h -> Histogram.help h
      in
      match h with "" -> None | h -> Some h)

let reset () =
  List.iter
    (function
      | C c -> Counter.reset c
      | G g -> Gauge.reset g
      | H h -> Histogram.reset h)
    (all ());
  Span.reset ()
