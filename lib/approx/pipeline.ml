module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list

type t = {
  reduction : Kernel.result;
  sky_ids : int array;
  happy_ids : int array;
  stored : Stored_list.t option;
  order : int array;
}

let run ?max_directions ?max_length ~eps points =
  let reduction = Kernel.reduce ?max_directions ~eps points in
  let kvecs = Kernel.select reduction points in
  let sky_idx = Skyline.naive kvecs in
  let sky_vecs = Array.map (fun i -> kvecs.(i)) sky_idx in
  let sky_ids = Array.map (fun i -> reduction.Kernel.ids.(i)) sky_idx in
  let hap_idx = Happy.happy_points sky_vecs in
  let hap_vecs = Array.map (fun i -> sky_vecs.(i)) hap_idx in
  let happy_ids = Array.map (fun i -> sky_ids.(i)) hap_idx in
  let stored =
    if Array.length hap_vecs = 0 then None
    else Some (Stored_list.preprocess ?max_length hap_vecs)
  in
  let order =
    match stored with
    | None -> [||]
    | Some sl ->
        Array.of_list (List.map (fun i -> happy_ids.(i)) (Stored_list.order sl))
  in
  { reduction; sky_ids; happy_ids; stored; order }

let stored_length t = Array.length t.order

let query t ~k =
  match t.stored with
  | None -> ([], 0.)
  | Some sl ->
      let len = Array.length t.order in
      let k' = if k < len then k else len in
      let sel = Array.to_list (Array.sub t.order 0 k') in
      (sel, Stored_list.mrr_at sl ~k:k')

let mrr_at t ~k =
  match t.stored with
  | None -> 0.
  | Some sl ->
      let len = Array.length t.order in
      let k' = if k < len then k else len in
      Stored_list.mrr_at sl ~k:k'

let certified_bound t ~k =
  Float.min 1. (mrr_at t ~k +. t.reduction.Kernel.slack)
