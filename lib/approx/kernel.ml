module Flat = Kregret_geom.Flat
module Pool = Kregret_parallel.Pool
module Obs = Kregret_obs

let c_reductions =
  Obs.Registry.counter "approx.reductions" ~help:"ε-kernel reductions run"

let g_kernel =
  Obs.Registry.gauge "approx.kernel_size"
    ~help:"rows retained by the last ε-kernel reduction"

let g_ratio =
  Obs.Registry.gauge "approx.reduction_ratio"
    ~help:"kernel rows / input rows of the last reduction"

let g_directions =
  Obs.Registry.gauge "approx.directions"
    ~help:"direction-net size of the last reduction"

let h_dir_seconds =
  Obs.Registry.histogram "approx.scan_seconds_per_direction"
    ~help:"extreme-point scan time per net direction (seconds)"

type net = {
  dirs : Flat.t;
  d : int;
  resolution : int;
  slack : float;
  eps : float;
}

let default_max_directions = 2_000_000

let check_eps eps =
  if not (Float.is_finite eps) || eps <= 0. || eps > 1. then
    invalid_arg "Kernel: eps must be in (0, 1]"

(* The -1e-9 guard makes an eps that is exactly (d-1)/(2m) for some
   integer m map back to that m despite the float round trip, so
   resolutions nest exactly across an eps, eps/2 pair. *)
let resolution_for ~d ~eps =
  check_eps eps;
  if d < 1 then invalid_arg "Kernel: d must be >= 1";
  if d = 1 then 1
  else
    max 1
      (int_of_float
         (Float.ceil ((float_of_int (d - 1) /. (2. *. eps)) -. 1e-9)))

let slack_of ~d ~resolution =
  if d <= 1 then 0.
  else Float.min 1. (float_of_int (d - 1) /. (2. *. float_of_int resolution))

let slack_for ~d ~eps = slack_of ~d ~resolution:(resolution_for ~d ~eps)

let net_size ~d ~resolution =
  let m = float_of_int resolution in
  ((m +. 1.) ** float_of_int d) -. (m ** float_of_int d)

let net ?(max_directions = default_max_directions) ~d ~eps () =
  let m = resolution_for ~d ~eps in
  let count = net_size ~d ~resolution:m in
  if count > float_of_int max_directions then
    invalid_arg
      (Printf.sprintf
         "Kernel.net: %.0f directions at d=%d eps=%g exceed max_directions=%d"
         count d eps max_directions);
  let dirs = Flat.create ~capacity:(int_of_float count) ~dim:d () in
  if d = 1 then Flat.push_row dirs [| 1. |]
  else begin
    let w = Array.make d 0. in
    let level = Array.make d 0 in
    for f = 0 to d - 1 do
      (* face f: coordinate f pinned to 1; a direction is emitted only on
         the face of its first unit coordinate, so no duplicates. *)
      Array.fill level 0 d 0;
      level.(f) <- m;
      let free = Array.init (d - 1) (fun i -> if i < f then i else i + 1) in
      let rec emit () =
        let dup = ref false in
        for j = 0 to f - 1 do
          if level.(j) = m then dup := true
        done;
        if not !dup then begin
          for j = 0 to d - 1 do
            w.(j) <- float_of_int level.(j) /. float_of_int m
          done;
          Flat.push_row dirs w
        end;
        let rec bump i =
          if i < 0 then false
          else
            let c = free.(i) in
            if level.(c) = m then begin
              level.(c) <- 0;
              bump (i - 1)
            end
            else begin
              level.(c) <- level.(c) + 1;
              true
            end
        in
        if bump (d - 2) then emit ()
      in
      emit ()
    done
  end;
  { dirs; d; resolution = m; slack = slack_of ~d ~resolution:m; eps }

type result = {
  ids : int array;
  winners : int array;
  n_input : int;
  directions : int;
  resolution : int;
  slack : float;
  eps : float;
  scan_seconds : float;
}

let reduce ?max_directions ?ids ~eps points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kernel.reduce: empty input";
  let d = Array.length points.(0) in
  (match ids with
  | Some a when Array.length a <> n ->
      invalid_arg "Kernel.reduce: ids must have one entry per row"
  | _ -> ());
  let nt = net ?max_directions ~d ~eps () in
  let nd = Flat.rows nt.dirs in
  let flat = Flat.of_rows ~dim:d points in
  let out_row = Array.make nd (-1) in
  let out_val = Array.make nd Float.nan in
  let targets = Array.init nd (fun j -> j) in
  Obs.Counter.incr c_reductions;
  let t0 = Unix.gettimeofday () in
  (* each direction streams all n rows: ~0.5 ns per coordinate *)
  let cost = (0.5 *. float_of_int (n * d)) +. 64. in
  ignore
    (Obs.Span.with_ "approx.scan" (fun () ->
         Pool.map_reduce ~cost ~lo:0 ~hi:nd
           ~map:(fun a b ->
             let c0 = Unix.gettimeofday () in
             let tiles =
               Flat.champions ~vertices:flat ~cands:nt.dirs targets ~tlo:a
                 ~thi:b ~out_row ~out_val
             in
             Obs.Histogram.observe h_dir_seconds
               ((Unix.gettimeofday () -. c0) /. float_of_int (b - a));
             tiles)
           ~reduce:( + ) 0));
  let scan_seconds = Unix.gettimeofday () -. t0 in
  let winners =
    match ids with
    | None -> Array.copy out_row
    | Some a -> Array.map (fun r -> a.(r)) out_row
  in
  let sorted = Array.copy winners in
  Array.sort Int.compare sorted;
  let kept = ref 0 in
  Array.iteri
    (fun i v -> if i = 0 || v <> sorted.(i - 1) then incr kept)
    sorted;
  let kernel = Array.make !kept 0 in
  let j = ref 0 in
  Array.iteri
    (fun i v ->
      if i = 0 || v <> sorted.(i - 1) then begin
        kernel.(!j) <- v;
        incr j
      end)
    sorted;
  Obs.Gauge.set_int g_kernel !kept;
  Obs.Gauge.set g_ratio (float_of_int !kept /. float_of_int n);
  Obs.Gauge.set_int g_directions nd;
  {
    ids = kernel;
    winners;
    n_input = n;
    directions = nd;
    resolution = nt.resolution;
    slack = nt.slack;
    eps;
    scan_seconds;
  }

let select r points = Array.map (fun id -> points.(id)) r.ids
