(** The offline approximate pipeline: ε-kernel reduction ({!Kernel}),
    then the exact skyline → happy → StoredList chain over the kernel
    rows only. This is the reference composition that the CLI, the bench
    driver and the serve tier (via {!Kregret_serve.Shard} with [approx])
    all reproduce bit for bit — [Kregret_check.Approx_oracle] pins the
    equivalences. *)

type t = {
  reduction : Kernel.result;
  sky_ids : int array;  (** original ids of the kernel's skyline *)
  happy_ids : int array;  (** original ids of the kernel's happy set *)
  stored : Kregret.Stored_list.t option;
      (** over [happy_ids]'s vectors; [None] when the happy screen
          returned nothing (degenerate inputs) *)
  order : int array;
      (** the materialized GeoGreedy order as original row ids *)
}

(** [run ~eps points] — reduce, then skyline → happy → preprocess over
    the kernel. [?max_length] caps the StoredList materialization
    exactly as in {!Kregret.Stored_list.preprocess}. *)
val run :
  ?max_directions:int ->
  ?max_length:int ->
  eps:float ->
  Kregret_geom.Vector.t array ->
  t

(** [query t ~k] — first [min k (length)] original ids of the order,
    with the reported mrr of that prefix {e within the kernel}. *)
val query : t -> k:int -> int list * float

(** [mrr_at t ~k] — the stored (kernel-relative) mrr of the size-[k]
    prefix; [0.] when nothing is stored (matching
    {!Kregret_serve.Shard.mrr_at} on an empty list). *)
val mrr_at : t -> k:int -> float

val stored_length : t -> int

(** [certified_bound t ~k] — [min 1 (mrr_at t ~k + slack)]: a true upper
    bound on the selection's mrr over the {e full} input, by the net
    covering argument (see {!Kernel}). *)
val certified_bound : t -> k:int -> float
