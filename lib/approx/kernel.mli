(** ε-kernel candidate reduction: shrink a normalized dataset to the set
    of per-direction extreme points of a deterministic direction net,
    before the (superlinear) happy filter and GeoGreedy ever see it.

    {b The net.} Regret ratios are invariant under scaling the utility
    direction, so every non-negative direction can be normalized to
    [||w||_inf = 1] — the union of the [d] faces of the unit cube that
    touch the all-ones corner. The net places a uniform grid of step
    [1/m] on those faces: all vectors with coordinates in
    [{0, 1/m, ..., 1}] having at least one coordinate equal to [1],
    enumerated face by face (face [f] pins coordinate [f] to [1]; a
    vector is kept only on the face of its {e first} unit coordinate, so
    each direction appears exactly once). The net has
    [(m+1)^d - m^d] directions and L1 covering radius
    [(d-1) / (2m)] over the normalized direction set.

    {b The bound.} For normalized data (every coordinate in [(0, 1]] and
    every dimension attaining [1]), [max_D w·p >= 1] for any [||w||_inf
    = 1], and rounding [w] to its nearest net direction moves any dot
    product by at most the L1 rounding distance. Hence the kernel [K]
    (the set of per-direction maxima) satisfies

    [mrr_D(K) <= slack]  where  [slack = min 1 ((d-1) / (2m))],

    and for any selection [S ⊆ K],
    [mrr_D(S) <= mrr_K(S) + slack] — the certificate
    {!Pipeline.certified_bound} advertises. Both inequalities are
    theorems (fuzzed by [Kregret_check.Approx_oracle]); note that no
    comparable bound links greedy-on-[K] to greedy-on-[D] directly,
    because GeoGreedy is itself a heuristic.

    [eps] is the requested slack: the resolution is the smallest [m]
    with [(d-1) / (2m) <= eps], so the advertised [slack] never exceeds
    [eps]. Halving [eps] exactly doubles [m], and a grid of step
    [1/(2m)] contains the grid of step [1/m], so the net — and therefore
    the kernel — grows monotonically as [eps] shrinks.

    {b Determinism.} Net enumeration order is a pure function of [(d,
    m)]. The per-direction scan is {!Kregret_geom.Flat.champions} (first
    row wins exact ties, bit-identical to the boxed reference fold)
    parallelized with {!Kregret_parallel.Pool.map_reduce}; each
    direction owns its out slot, so results are bit-identical for every
    pool width. *)

(** A materialized direction net. [slack] is the advertised worst-case
    regret bound [min 1 ((d-1) / (2 * resolution))] ([0.] when
    [d = 1]). *)
type net = {
  dirs : Kregret_geom.Flat.t;
  d : int;
  resolution : int;
  slack : float;
  eps : float;
}

(** Cap on net size (2_000_000): {!net} and {!reduce} raise
    [Invalid_argument] rather than enumerate a larger net. *)
val default_max_directions : int

(** [resolution_for ~d ~eps] — the grid resolution [m] used for [eps]:
    the smallest [m >= 1] with [(d-1) / (2m) <= eps] (computed with a
    small guard so that [eps = (d-1) / (2m)] maps back to exactly [m]).
    Raises [Invalid_argument] unless [0 < eps <= 1]. *)
val resolution_for : d:int -> eps:float -> int

(** [slack_for ~d ~eps] — the advertised bound without building the
    net. *)
val slack_for : d:int -> eps:float -> float

(** [net_size ~d ~resolution] — [(m+1)^d - m^d] as a float (so callers
    can budget before building). *)
val net_size : d:int -> resolution:int -> float

(** [net ~d ~eps ()] builds the direction net. *)
val net : ?max_directions:int -> d:int -> eps:float -> unit -> net

type result = {
  ids : int array;
      (** kernel: strictly ascending original row ids of every
          per-direction maximum *)
  winners : int array;
      (** [winners.(j)] — original row id of the maximizer of direction
          [j] (first row wins exact ties) *)
  n_input : int;
  directions : int;
  resolution : int;
  slack : float;  (** advertised bound for the resolution actually used *)
  eps : float;
  scan_seconds : float;
}

(** [reduce ~eps points] scans every net direction over [points] and
    returns the kernel. [?ids] maps row indices to original ids (for
    rescans over a shard union); it must have one entry per row, and
    both [ids] and [winners] of the result are expressed in that id
    space. Rows must be non-empty and share one dimension. The reduction
    is idempotent: reducing the kernel's own rows (with [~ids] set to
    the kernel) returns the same kernel. *)
val reduce :
  ?max_directions:int ->
  ?ids:int array ->
  eps:float ->
  Kregret_geom.Vector.t array ->
  result

(** [select r points] — the kernel rows of the original array. Only
    valid when [reduce] was called without [~ids] over [points]
    itself. *)
val select : result -> Kregret_geom.Vector.t array -> Kregret_geom.Vector.t array
