module Vector = Kregret_geom.Vector

type mbr = { low : Vector.t; high : Vector.t }
type node = Leaf of mbr * int array | Inner of mbr * node array
type t = { root : node option; points : Vector.t array; capacity : int }

let mbr_of_node = function Leaf (m, _) -> m | Inner (m, _) -> m

let mbr_of_points points idxs =
  let d = Vector.dim points.(idxs.(0)) in
  let low = Array.make d infinity and high = Array.make d neg_infinity in
  Array.iter
    (fun i ->
      let p = points.(i) in
      for j = 0 to d - 1 do
        if p.(j) < low.(j) then low.(j) <- p.(j);
        if p.(j) > high.(j) then high.(j) <- p.(j)
      done)
    idxs;
  { low; high }

let mbr_union ms =
  let d = Vector.dim ms.(0).low in
  let low = Array.make d infinity and high = Array.make d neg_infinity in
  Array.iter
    (fun m ->
      for j = 0 to d - 1 do
        if m.low.(j) < low.(j) then low.(j) <- m.low.(j);
        if m.high.(j) > high.(j) then high.(j) <- m.high.(j)
      done)
    ms;
  { low; high }

let mbr_contains m p =
  let ok = ref true in
  for j = 0 to Vector.dim p - 1 do
    if p.(j) < m.low.(j) -. 1e-12 || p.(j) > m.high.(j) +. 1e-12 then ok := false
  done;
  !ok

let mbr_covers outer inner =
  let ok = ref true in
  for j = 0 to Vector.dim outer.low - 1 do
    if
      inner.low.(j) < outer.low.(j) -. 1e-12
      || inner.high.(j) > outer.high.(j) +. 1e-12
    then ok := false
  done;
  !ok

let mbr_intersects m ~low ~high =
  let ok = ref true in
  for j = 0 to Vector.dim low - 1 do
    if m.high.(j) < low.(j) || m.low.(j) > high.(j) then ok := false
  done;
  !ok

(* Sort-Tile-Recursive packing: slice along successive dimensions so that
   every leaf holds at most [capacity] spatially clustered points. *)
let pack_leaves ~capacity points =
  let d = if Array.length points = 0 then 0 else Vector.dim points.(0) in
  let leaves = ref [] in
  let rec pack idxs dim =
    let n = Array.length idxs in
    if n <= capacity then leaves := idxs :: !leaves
    else begin
      let remaining_dims = max 1 (d - dim) in
      let target_leaves = (n + capacity - 1) / capacity in
      let slabs =
        max 2
          (int_of_float
             (Float.round
                (Float.pow (float_of_int target_leaves)
                   (1. /. float_of_int remaining_dims))))
      in
      let sorted = Array.copy idxs in
      Array.sort
        (fun a b -> compare points.(a).(dim) points.(b).(dim))
        sorted;
      let per_slab = (n + slabs - 1) / slabs in
      let next_dim = if dim + 1 >= d then d - 1 else dim + 1 in
      let start = ref 0 in
      while !start < n do
        let len = min per_slab (n - !start) in
        pack (Array.sub sorted !start len) next_dim;
        start := !start + len
      done
    end
  in
  if Array.length points > 0 then pack (Array.init (Array.length points) Fun.id) 0;
  List.rev !leaves

let build ?(capacity = 32) points =
  if capacity < 2 then invalid_arg "Rtree.build: capacity must be >= 2";
  if Array.length points = 0 then { root = None; points; capacity }
  else begin
    let leaf_chunks = pack_leaves ~capacity points in
    let level =
      ref
        (List.map
           (fun idxs -> Leaf (mbr_of_points points idxs, idxs))
           leaf_chunks)
    in
    while List.length !level > 1 do
      let nodes = Array.of_list !level in
      let groups = ref [] in
      let start = ref 0 in
      while !start < Array.length nodes do
        let len = min capacity (Array.length nodes - !start) in
        let children = Array.sub nodes !start len in
        let m = mbr_union (Array.map mbr_of_node children) in
        groups := Inner (m, children) :: !groups;
        start := !start + len
      done;
      level := List.rev !groups
    done;
    match !level with
    | [ root ] -> { root = Some root; points; capacity }
    | _ -> assert false
  end

let size t = Array.length t.points

let height t =
  let rec go = function
    | Leaf _ -> 1
    | Inner (_, children) -> 1 + go children.(0)
  in
  match t.root with None -> 0 | Some r -> go r

let range t ~low ~high =
  let out = ref [] in
  let rec go = function
    | Leaf (m, idxs) ->
        if mbr_intersects m ~low ~high then
          Array.iter
            (fun i ->
              let p = t.points.(i) in
              let inside = ref true in
              for j = 0 to Vector.dim p - 1 do
                if p.(j) < low.(j) || p.(j) > high.(j) then inside := false
              done;
              if !inside then out := i :: !out)
            idxs
    | Inner (m, children) ->
        if mbr_intersects m ~low ~high then Array.iter go children
  in
  (match t.root with None -> () | Some r -> go r);
  List.rev !out

let check_invariants t =
  let seen = Array.make (size t) 0 in
  let rec go = function
    | Leaf (m, idxs) ->
        Array.iter
          (fun i ->
            seen.(i) <- seen.(i) + 1;
            if not (mbr_contains m t.points.(i)) then
              failwith (Printf.sprintf "Rtree: point %d outside its leaf MBR" i))
          idxs
    | Inner (m, children) ->
        Array.iter
          (fun child ->
            if not (mbr_covers m (mbr_of_node child)) then
              failwith "Rtree: child MBR not covered by parent";
            go child)
          children
  in
  (match t.root with None -> () | Some r -> go r);
  Array.iteri
    (fun i c ->
      if c <> 1 then
        failwith (Printf.sprintf "Rtree: point %d appears %d times" i c))
    seen
