(** Pareto dominance (larger is better on every dimension). *)

type relation =
  | Dominates  (** first argument dominates the second *)
  | Dominated  (** first argument is dominated by the second *)
  | Equal  (** coordinate-wise equal *)
  | Incomparable

(** [dominates q p] — [q] is at least as large everywhere and strictly larger
    somewhere. *)
val dominates : Kregret_geom.Vector.t -> Kregret_geom.Vector.t -> bool

(** [compare p q] classifies the pair in a single pass. *)
val compare : Kregret_geom.Vector.t -> Kregret_geom.Vector.t -> relation

(** [compare_flat m a b] is [compare (Flat.row m a) (Flat.row m b)]
    without materialising the rows, with early exit once the verdict is
    determined. The skyline hot loops route through this (ISSUE 6). *)
val compare_flat : Kregret_geom.Flat.t -> int -> int -> relation
