(** Pareto dominance (larger is better on every dimension). *)

type relation =
  | Dominates  (** first argument dominates the second *)
  | Dominated  (** first argument is dominated by the second *)
  | Equal  (** coordinate-wise equal *)
  | Incomparable

(** [dominates q p] — [q] is at least as large everywhere and strictly larger
    somewhere. *)
val dominates : Kregret_geom.Vector.t -> Kregret_geom.Vector.t -> bool

(** [compare p q] classifies the pair in a single pass. *)
val compare : Kregret_geom.Vector.t -> Kregret_geom.Vector.t -> relation
