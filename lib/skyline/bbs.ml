module Vector = Kregret_geom.Vector
module Obs = Kregret_obs

(* BBS is sequential; the heap pop order is a pure function of the tree, so
   these counts are reproducible run to run. *)
let c_node_visits =
  Obs.Registry.counter "skyline.rtree_node_visits"
    ~help:"R-tree nodes popped and expanded by BBS"

let c_point_visits =
  Obs.Registry.counter "skyline.rtree_point_visits"
    ~help:"candidate points popped from the BBS heap"

type entry = Node of Rtree.node | Point of int

(* a skyline member prunes anything whose upper corner it weakly dominates *)
let covered sky_points corner =
  List.exists
    (fun s ->
      match Dominance.compare s corner with
      | Dominance.Dominates | Dominance.Equal -> true
      | Dominance.Dominated | Dominance.Incomparable -> false)
    sky_points

let skyline (tree : Rtree.t) =
  let heap = Pqueue.create () in
  let push_node node =
    let m = Rtree.mbr_of_node node in
    Pqueue.push heap (-.Vector.sum m.Rtree.high) (Node node)
  in
  (match tree.Rtree.root with None -> () | Some r -> push_node r);
  let sky = ref [] and sky_points = ref [] in
  let rec drain () =
    match Pqueue.pop heap with
    | None -> ()
    | Some (_, entry) ->
        (match entry with
        | Node node ->
            Obs.Counter.incr c_node_visits;
            let m = Rtree.mbr_of_node node in
            if not (covered !sky_points m.Rtree.high) then begin
              match node with
              | Rtree.Leaf (_, idxs) ->
                  Array.iter
                    (fun i ->
                      Pqueue.push heap
                        (-.Vector.sum tree.Rtree.points.(i))
                        (Point i))
                    idxs
              | Rtree.Inner (_, children) -> Array.iter push_node children
            end
        | Point i ->
            Obs.Counter.incr c_point_visits;
            let p = tree.Rtree.points.(i) in
            if not (covered !sky_points p) then begin
              sky := i :: !sky;
              sky_points := p :: !sky_points
            end);
        drain ()
  in
  drain ();
  let result = Array.of_list !sky in
  Array.sort compare result;
  result

let of_points ?capacity points = skyline (Rtree.build ?capacity points)
