(** Skyline (maxima) computation — the paper's preprocessing substrate.

    Every k-regret algorithm in the paper runs on a candidate set that is
    either [D_sky] (prior work) or [D_happy] (the paper's contribution,
    itself a subset of the skyline). Three implementations are provided:

    - [naive]: quadratic all-pairs reference, used by the tests;
    - [bnl]: block-nested-loops (Börzsönyi et al., ICDE 2001);
    - [sfs]: sort-filter-skyline (Chomicki et al.) — sorts by decreasing
      coordinate sum so a scanned point can never dominate an earlier one;
      this is the default for the benches;
    - [`Bbs] (via {!Bbs}): progressive branch-and-bound over an R-tree
      (Papadias et al., TODS 2005 — the paper's reference [10]).

    Duplicate maximal points are represented once (first occurrence by input
    order for [naive]/[bnl]; first by sort order for [sfs]). All functions
    return ascending indices into the input array. *)

(** [naive points] — O(n^2 d) all-pairs reference. *)
val naive : Kregret_geom.Vector.t array -> int array

(** [bnl points] — block-nested-loops with an in-memory window. *)
val bnl : Kregret_geom.Vector.t array -> int array

(** [sfs points] — sort-filter-skyline. *)
val sfs : Kregret_geom.Vector.t array -> int array

(** [of_dataset ?algorithm ds] applies the chosen algorithm (default [`Sfs])
    and returns the skyline as a dataset named ["<name>/sky"]. *)
val of_dataset :
  ?algorithm:[ `Naive | `Bnl | `Sfs | `Bbs ] -> Kregret_dataset.Dataset.t ->
  Kregret_dataset.Dataset.t
