module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset

let naive points =
  let n = Array.length points in
  let keep = ref [] in
  for i = n - 1 downto 0 do
    let p = points.(i) in
    let excluded = ref false in
    (* dominated by anyone, or duplicated by an earlier point *)
    for j = 0 to n - 1 do
      if (not !excluded) && j <> i then
        match Dominance.compare points.(j) p with
        | Dominance.Dominates -> excluded := true
        | Dominance.Equal when j < i -> excluded := true
        | Dominance.Equal | Dominance.Dominated | Dominance.Incomparable -> ()
    done;
    if not !excluded then keep := i :: !keep
  done;
  Array.of_list !keep

let bnl points =
  let window = ref [] in
  Array.iteri
    (fun i p ->
      let survives = ref true in
      let kept =
        List.filter
          (fun j ->
            if !survives then
              match Dominance.compare points.(j) p with
              | Dominance.Dominates | Dominance.Equal ->
                  survives := false;
                  true
              | Dominance.Dominated -> false
              | Dominance.Incomparable -> true
            else true)
          !window
      in
      window := if !survives then i :: kept else kept)
    points;
  let result = Array.of_list !window in
  Array.sort compare result;
  result

let sfs points =
  let n = Array.length points in
  let order = Array.init n Fun.id in
  let score = Array.map Vector.sum points in
  Array.sort (fun i j -> compare score.(j) score.(i)) order;
  (* a point later in this order can never dominate an earlier one, so the
     window only grows *)
  let window = ref [] in
  Array.iter
    (fun i ->
      let p = points.(i) in
      let excluded =
        List.exists
          (fun j ->
            match Dominance.compare points.(j) p with
            | Dominance.Dominates | Dominance.Equal -> true
            | Dominance.Dominated | Dominance.Incomparable -> false)
          !window
      in
      if not excluded then window := i :: !window)
    order;
  let result = Array.of_list !window in
  Array.sort compare result;
  result

let of_dataset ?(algorithm = `Sfs) ds =
  let f =
    match algorithm with
    | `Naive -> naive
    | `Bnl -> bnl
    | `Sfs -> sfs
    | `Bbs -> Bbs.of_points ?capacity:None
  in
  let indices = f ds.Dataset.points in
  let sub = Dataset.sub ds ~indices in
  { sub with Dataset.name = ds.Dataset.name ^ "/sky" }
