module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Dataset = Kregret_dataset.Dataset
module Pool = Kregret_parallel.Pool
module Obs = Kregret_obs

(* Observability: every count below is accumulated per point or per chunk —
   a pure function of the input, never of the pool width — so the merged
   totals are bit-identical across KREGRET_JOBS values. *)
let c_scanned =
  Obs.Registry.counter "skyline.points_scanned"
    ~help:"points fed to a skyline computation"

let c_dom =
  Obs.Registry.counter "skyline.dominance_tests"
    ~help:"pairwise dominance comparisons"

let c_survivors =
  Obs.Registry.counter "skyline.survivors" ~help:"skyline points returned"

(* Each point's verdict is independent of the others', so the O(n^2) scan
   fans out across the domain pool; verdicts land in disjoint slots of
   [keep] and the survivor list is rebuilt in index order afterwards, which
   makes the result identical for every pool width. The dominance tests run
   over a flat SoA view of the points (ISSUE 6): the inner scan streams one
   contiguous buffer instead of chasing a pointer per row. *)
let naive points =
  let n = Array.length points in
  Obs.Counter.add c_scanned n;
  let fp = if n = 0 then Flat.create ~dim:1 () else Flat.of_rows points in
  let keep = Array.make n false in
  (* cost hint: each verdict scans up to n rows at a few ns per early-exit
     dominance test *)
  Pool.parallel_for ~cost:(5. *. float_of_int n) ~lo:0 ~hi:n (fun i ->
      let excluded = ref false in
      let tests = ref 0 in
      (* dominated by anyone, or duplicated by an earlier point *)
      for j = 0 to n - 1 do
        if (not !excluded) && j <> i then begin
          incr tests;
          match Dominance.compare_flat fp j i with
          | Dominance.Dominates -> excluded := true
          | Dominance.Equal when j < i -> excluded := true
          | Dominance.Equal | Dominance.Dominated | Dominance.Incomparable ->
              ()
        end
      done;
      Obs.Counter.add c_dom !tests;
      keep.(i) <- not !excluded);
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := i :: !out
  done;
  let result = Array.of_list !out in
  Obs.Counter.add c_survivors (Array.length result);
  result

let bnl points =
  let n = Array.length points in
  Obs.Counter.add c_scanned n;
  let fp = if n = 0 then Flat.create ~dim:1 () else Flat.of_rows points in
  let window = ref [] in
  for i = 0 to n - 1 do
    let survives = ref true in
    let tests = ref 0 in
    let kept =
      List.filter
        (fun j ->
          if !survives then begin
            incr tests;
            match Dominance.compare_flat fp j i with
            | Dominance.Dominates | Dominance.Equal ->
                survives := false;
                true
            | Dominance.Dominated -> false
            | Dominance.Incomparable -> true
          end
          else true)
        !window
    in
    Obs.Counter.add c_dom !tests;
    window := if !survives then i :: kept else kept
  done;
  let result = Array.of_list !window in
  Array.sort compare result;
  Obs.Counter.add c_survivors (Array.length result);
  result

(* One monotone SFS pass over [idxs] (already in decreasing score order):
   a point enters the window unless an earlier-window point dominates or
   equals it. Returns the survivors in scan order. [fp] is the flat view
   of the points the indices refer to. *)
let sfs_pass fp idxs =
  let window = ref [] in
  (* comparison count is a function of the pass's input list alone; flushed
     once per pass so parallel chunk passes stay width-invariant *)
  let tests = ref 0 in
  List.iter
    (fun i ->
      let excluded =
        List.exists
          (fun j ->
            incr tests;
            match Dominance.compare_flat fp j i with
            | Dominance.Dominates | Dominance.Equal -> true
            | Dominance.Dominated | Dominance.Incomparable -> false)
          !window
      in
      if not excluded then window := i :: !window)
    idxs;
  Obs.Counter.add c_dom !tests;
  List.rev !window

let sfs points =
  let n = Array.length points in
  Obs.Counter.add c_scanned n;
  let fp = if n = 0 then Flat.create ~dim:1 () else Flat.of_rows points in
  let order = Array.init n Fun.id in
  let score = Array.map Vector.sum points in
  (* the sort stays sequential: it is O(n log n) against the O(n * |sky|)
     filter, and a stable global order is what makes the merge exact *)
  Array.sort (fun i j -> compare score.(j) score.(i)) order;
  (* parallel pre-filter: each chunk of the sorted order runs a local SFS
     pass; the chunks concatenate left-to-right (map_reduce's deterministic
     reduce), preserving the global score order. Dominance is transitive
     and "dominates-or-equals an earlier point" composes, so any point a
     local pass eliminates would also have been eliminated by one of the
     chunk's survivors — the final sequential pass over the concatenated
     survivors therefore returns exactly the sequential SFS window. *)
  let survivors =
    (* cost hint: a pass over c indices does O(c * local window) tests;
       the local window is unknowable up front, so charge a sublinear
       stand-in that still inlines small inputs and coarsens large ones *)
    Pool.map_reduce
      ~cost:(10. *. sqrt (float_of_int n))
      ~lo:0 ~hi:n
      ~map:(fun a b ->
        let idxs = ref [] in
        for i = b - 1 downto a do
          idxs := order.(i) :: !idxs
        done;
        sfs_pass fp !idxs)
      ~reduce:(fun acc chunk -> acc @ chunk)
      []
  in
  let result = Array.of_list (sfs_pass fp survivors) in
  Array.sort compare result;
  Obs.Counter.add c_survivors (Array.length result);
  result

let of_dataset ?(algorithm = `Sfs) ds =
  let f =
    match algorithm with
    | `Naive -> naive
    | `Bnl -> bnl
    | `Sfs -> sfs
    | `Bbs -> Bbs.of_points ?capacity:None
  in
  let indices = f ds.Dataset.points in
  let sub = Dataset.sub ds ~indices in
  { sub with Dataset.name = ds.Dataset.name ^ "/sky" }
