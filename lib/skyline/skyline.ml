module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Pool = Kregret_parallel.Pool
module Obs = Kregret_obs

(* Observability: every count below is accumulated per point or per chunk —
   a pure function of the input, never of the pool width — so the merged
   totals are bit-identical across KREGRET_JOBS values. *)
let c_scanned =
  Obs.Registry.counter "skyline.points_scanned"
    ~help:"points fed to a skyline computation"

let c_dom =
  Obs.Registry.counter "skyline.dominance_tests"
    ~help:"pairwise dominance comparisons"

let c_survivors =
  Obs.Registry.counter "skyline.survivors" ~help:"skyline points returned"

(* Each point's verdict is independent of the others', so the O(n^2) scan
   fans out across the domain pool; verdicts land in disjoint slots of
   [keep] and the survivor list is rebuilt in index order afterwards, which
   makes the result identical for every pool width. *)
let naive points =
  let n = Array.length points in
  Obs.Counter.add c_scanned n;
  let keep = Array.make n false in
  Pool.parallel_for ~lo:0 ~hi:n (fun i ->
      let p = points.(i) in
      let excluded = ref false in
      let tests = ref 0 in
      (* dominated by anyone, or duplicated by an earlier point *)
      for j = 0 to n - 1 do
        if (not !excluded) && j <> i then begin
          incr tests;
          match Dominance.compare points.(j) p with
          | Dominance.Dominates -> excluded := true
          | Dominance.Equal when j < i -> excluded := true
          | Dominance.Equal | Dominance.Dominated | Dominance.Incomparable ->
              ()
        end
      done;
      Obs.Counter.add c_dom !tests;
      keep.(i) <- not !excluded);
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := i :: !out
  done;
  let result = Array.of_list !out in
  Obs.Counter.add c_survivors (Array.length result);
  result

let bnl points =
  Obs.Counter.add c_scanned (Array.length points);
  let window = ref [] in
  Array.iteri
    (fun i p ->
      let survives = ref true in
      let tests = ref 0 in
      let kept =
        List.filter
          (fun j ->
            if !survives then begin
              incr tests;
              match Dominance.compare points.(j) p with
              | Dominance.Dominates | Dominance.Equal ->
                  survives := false;
                  true
              | Dominance.Dominated -> false
              | Dominance.Incomparable -> true
            end
            else true)
          !window
      in
      Obs.Counter.add c_dom !tests;
      window := if !survives then i :: kept else kept)
    points;
  let result = Array.of_list !window in
  Array.sort compare result;
  Obs.Counter.add c_survivors (Array.length result);
  result

(* One monotone SFS pass over [idxs] (already in decreasing score order):
   a point enters the window unless an earlier-window point dominates or
   equals it. Returns the survivors in scan order. *)
let sfs_pass points idxs =
  let window = ref [] in
  (* comparison count is a function of the pass's input list alone; flushed
     once per pass so parallel chunk passes stay width-invariant *)
  let tests = ref 0 in
  List.iter
    (fun i ->
      let p = points.(i) in
      let excluded =
        List.exists
          (fun j ->
            incr tests;
            match Dominance.compare points.(j) p with
            | Dominance.Dominates | Dominance.Equal -> true
            | Dominance.Dominated | Dominance.Incomparable -> false)
          !window
      in
      if not excluded then window := i :: !window)
    idxs;
  Obs.Counter.add c_dom !tests;
  List.rev !window

let sfs points =
  let n = Array.length points in
  Obs.Counter.add c_scanned n;
  let order = Array.init n Fun.id in
  let score = Array.map Vector.sum points in
  (* the sort stays sequential: it is O(n log n) against the O(n * |sky|)
     filter, and a stable global order is what makes the merge exact *)
  Array.sort (fun i j -> compare score.(j) score.(i)) order;
  (* parallel pre-filter: each chunk of the sorted order runs a local SFS
     pass; the chunks concatenate left-to-right (map_reduce's deterministic
     reduce), preserving the global score order. Dominance is transitive
     and "dominates-or-equals an earlier point" composes, so any point a
     local pass eliminates would also have been eliminated by one of the
     chunk's survivors — the final sequential pass over the concatenated
     survivors therefore returns exactly the sequential SFS window. *)
  let survivors =
    Pool.map_reduce ~lo:0 ~hi:n
      ~map:(fun a b ->
        let idxs = ref [] in
        for i = b - 1 downto a do
          idxs := order.(i) :: !idxs
        done;
        sfs_pass points !idxs)
      ~reduce:(fun acc chunk -> acc @ chunk)
      []
  in
  let result = Array.of_list (sfs_pass points survivors) in
  Array.sort compare result;
  Obs.Counter.add c_survivors (Array.length result);
  result

let of_dataset ?(algorithm = `Sfs) ds =
  let f =
    match algorithm with
    | `Naive -> naive
    | `Bnl -> bnl
    | `Sfs -> sfs
    | `Bbs -> Bbs.of_points ?capacity:None
  in
  let indices = f ds.Dataset.points in
  let sub = Dataset.sub ds ~indices in
  { sub with Dataset.name = ds.Dataset.name ^ "/sky" }
