type relation = Dominates | Dominated | Equal | Incomparable

let compare p q =
  let d = Array.length p in
  if Array.length q <> d then invalid_arg "Dominance.compare: dimension mismatch";
  let p_wins = ref false and q_wins = ref false in
  for i = 0 to d - 1 do
    if p.(i) > q.(i) then p_wins := true
    else if p.(i) < q.(i) then q_wins := true
  done;
  match (!p_wins, !q_wins) with
  | true, false -> Dominates
  | false, true -> Dominated
  | false, false -> Equal
  | true, true -> Incomparable

let dominates q p = compare q p = Dominates
