module Flat = Kregret_geom.Flat

type relation = Dominates | Dominated | Equal | Incomparable

let compare p q =
  let d = Array.length p in
  if Array.length q <> d then invalid_arg "Dominance.compare: dimension mismatch";
  let p_wins = ref false and q_wins = ref false in
  for i = 0 to d - 1 do
    if p.(i) > q.(i) then p_wins := true
    else if p.(i) < q.(i) then q_wins := true
  done;
  match (!p_wins, !q_wins) with
  | true, false -> Dominates
  | false, true -> Dominated
  | false, false -> Equal
  | true, true -> Incomparable

(* Same relation, computed over two rows of a flat matrix without touching
   boxed rows, and with early exit: once both flags are set the verdict is
   Incomparable whatever the remaining coordinates say (the flags are
   monotone), so the scan can stop — on anti-correlated data most pairs
   resolve within the first couple of coordinates. Verdict-equivalence with
   [compare] is pinned by test/test_flat.ml. *)
let compare_flat m a b =
  let n = Flat.rows m in
  if a < 0 || a >= n || b < 0 || b >= n then
    invalid_arg "Dominance.compare_flat: row out of range";
  let d = Flat.dim m in
  let i = ref 0 and p_wins = ref false and q_wins = ref false in
  while !i < d && not (!p_wins && !q_wins) do
    let x = Flat.unsafe_get m a !i and y = Flat.unsafe_get m b !i in
    if x > y then p_wins := true else if x < y then q_wins := true;
    incr i
  done;
  match (!p_wins, !q_wins) with
  | true, false -> Dominates
  | false, true -> Dominated
  | false, false -> Equal
  | true, true -> Incomparable

let dominates q p = compare q p = Dominates
