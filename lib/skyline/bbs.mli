(** Branch-and-bound skyline (BBS) over an R-tree — Papadias, Tao, Fu &
    Seeger (TODS 2005), the paper's reference [10].

    Entries are expanded best-first by the coordinate sum of their MBR's
    upper corner (for a max-skyline, larger is more promising), and an entry
    is pruned when its upper corner is dominated by an already-confirmed
    skyline point: no point inside can then be maximal. BBS is {e
    progressive} — skyline points stream out in sum order — and touches only
    the R-tree nodes whose regions can contain skyline points, which is why
    it beats scan-based algorithms on large, low-skyline data. *)

(** [skyline tree] computes the skyline of the indexed points, returning
    ascending indices (same convention and same duplicate handling as
    {!Skyline}). *)
val skyline : Rtree.t -> int array

(** [of_points ?capacity points] builds the R-tree and runs BBS. *)
val of_points : ?capacity:int -> Kregret_geom.Vector.t array -> int array
