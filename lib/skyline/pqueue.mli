(** A minimal binary min-heap priority queue, keyed by [float].

    Used by the branch-and-bound skyline ({!Bbs}) to expand R-tree entries in
    best-first order. Imperative, amortized O(log n) push/pop. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [push t key v] inserts [v] with priority [key] (smallest key pops
    first). *)
val push : 'a t -> float -> 'a -> unit

(** [pop t] removes and returns the minimum-key binding, or [None] when
    empty. *)
val pop : 'a t -> (float * 'a) option

(** [peek t] is the minimum-key binding without removing it. *)
val peek : 'a t -> (float * 'a) option

(** [length t] is the number of queued elements. *)
val length : 'a t -> int

(** [is_empty t] is [length t = 0]. *)
val is_empty : 'a t -> bool
