type 'a t = {
  mutable keys : float array;
  mutable values : 'a option array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0.; values = Array.make 16 None; size = 0 }

let grow t =
  if t.size = Array.length t.keys then begin
    let cap = 2 * t.size in
    let keys = Array.make cap 0. and values = Array.make cap None in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.values 0 values 0 t.size;
    t.keys <- keys;
    t.values <- values
  end

let swap t i j =
  let k = t.keys.(i) and v = t.values.(i) in
  t.keys.(i) <- t.keys.(j);
  t.values.(i) <- t.values.(j);
  t.keys.(j) <- k;
  t.values.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key v =
  grow t;
  t.keys.(t.size) <- key;
  t.values.(t.size) <- Some v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    match t.values.(0) with
    | Some v -> Some (t.keys.(0), v)
    | None -> assert false

let pop t =
  match peek t with
  | None -> None
  | Some binding ->
      t.size <- t.size - 1;
      t.keys.(0) <- t.keys.(t.size);
      t.values.(0) <- t.values.(t.size);
      t.values.(t.size) <- None;
      sift_down t 0;
      Some binding

let length t = t.size
let is_empty t = t.size = 0
