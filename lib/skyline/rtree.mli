(** A bulk-loaded R-tree over d-dimensional points.

    The index behind the progressive branch-and-bound skyline ({!Bbs},
    Papadias et al., TODS 2005 — the paper's reference [10] for skyline
    computation). Built once with Sort-Tile-Recursive packing (Leutenegger
    et al., ICDE 1997); no dynamic insertion, which the skyline use-case
    never needs. *)

type mbr = {
  low : Kregret_geom.Vector.t;  (** coordinate-wise minima *)
  high : Kregret_geom.Vector.t;  (** coordinate-wise maxima *)
}

type node =
  | Leaf of mbr * int array  (** point indices into the build array *)
  | Inner of mbr * node array

type t = {
  root : node option;  (** [None] for an empty tree *)
  points : Kregret_geom.Vector.t array;  (** the indexed points, by index *)
  capacity : int;
}

(** [build ?capacity points] packs the points into an R-tree (fan-out
    [capacity], default 32; minimum 2). *)
val build : ?capacity:int -> Kregret_geom.Vector.t array -> t

(** [mbr_of_node n] is the bounding rectangle of a node. *)
val mbr_of_node : node -> mbr

(** [range t ~low ~high] returns the indices of all points [p] with
    [low <= p <= high] coordinate-wise. *)
val range : t -> low:Kregret_geom.Vector.t -> high:Kregret_geom.Vector.t -> int list

(** [size t] is the number of indexed points. *)
val size : t -> int

(** [height t] is the number of levels (0 for an empty tree). *)
val height : t -> int

(** [check_invariants t] verifies MBR containment (every child MBR / point
    inside its parent's MBR) and that every input point appears in exactly
    one leaf. Raises [Failure] on violation; used by the tests. *)
val check_invariants : t -> unit
