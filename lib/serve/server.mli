(** The serving loop: an event-driven server speaking {!Protocol.version}
    over any mix of Unix-domain and TCP listeners ({!Endpoint}), backed by
    the dataset {!Registry} (background builds, solo or sharded), the
    {!Lru} result cache and the single-flight {!Batcher}.

    Architecture (PR 8 — replacing one thread per connection): a single IO
    thread runs a {!Poller} readiness loop over every listener and every
    connection, framing requests out of per-connection read buffers and
    flushing per-connection write buffers; a small worker pool runs the
    request handler so a StoredList scan or a blocking registry update
    never stalls accepts or other connections' IO. Shutdown wakes the loop
    through a self-pipe, which works identically for both listener kinds.
    Connection state is kept for {e live} connections only — a busy
    server's footprint is bounded by its concurrency, not by how many
    connections it has ever accepted.

    Design invariants (enforced by [test/test_serve.ml] and the [serve]
    oracle of the fuzzer):

    - a served selection/mrr is {e bit-identical} to a direct
      {!Kregret.Stored_list} prefix read on the same build — including when
      it comes from the cache, from a coalesced batch, over TCP instead of
      a Unix socket, or through the scatter-gather {!Shard} tier;
    - malformed input of any shape is answered with a structured error and
      never terminates the server (an oversized frame additionally closes
      that one connection, because its framing is no longer trustworthy);
    - a query against a still-building dataset returns a [building] error
      with a [retry_after] hint instead of blocking the IO loop;
    - a query against a dataset whose CSV changed on disk after [load] is
      rejected with [stale_dataset] (never silently served from the stale
      StoredList). *)

type config = {
  listeners : Endpoint.t list;  (** every endpoint to listen on *)
  cache_capacity : int;  (** {!Lru} capacity; [0] disables caching *)
  max_line : int;  (** per-frame byte limit *)
  retry_after : float;  (** seconds hint attached to [building] errors *)
  max_length : int option;  (** StoredList materialization cap ([--max-k]) *)
  workers : int;  (** request-handler threads behind the IO loop *)
  shards : int;  (** default shard count for [load]s that don't say *)
  approx : float;
      (** default ε-kernel resolution for [load]s that don't say;
          [0.] = exact *)
}

(** [config ~listeners ()] with defaults: cache 128, 64 KiB frames,
    [retry_after] 0.05 s, full materialization, 4 workers, solo exact
    loads. [?socket_path] appends a Unix-domain listener (the pre-TCP
    calling convention); at least one listener is required. *)
val config :
  ?cache_capacity:int ->
  ?max_line:int ->
  ?retry_after:float ->
  ?max_length:int ->
  ?workers:int ->
  ?shards:int ->
  ?approx:float ->
  ?listeners:Endpoint.t list ->
  ?socket_path:string ->
  unit ->
  config

type t

(** [start config] binds every listener (replacing stale Unix socket
    files), starts the IO thread, the worker pool and the registry's build
    worker, and returns immediately. Installs a [SIGPIPE] ignore handler
    (a client hanging up mid-response must not kill the process).
    [Error] names the endpoint that failed to bind — nothing is left
    half-bound. *)
val start : config -> (t, string) result

(** [start_exn config] — {!start}, raising [Failure] on a bind error. *)
val start_exn : config -> t

(** [registry t] — for in-process preloading ([--preload]) and tests. *)
val registry : t -> Registry.t

(** [endpoints t] — the listeners as actually bound: a [tcp:HOST:0]
    request reports its kernel-assigned port. Order follows
    [config.listeners]. *)
val endpoints : t -> Endpoint.t list

(** [live_connections t] — currently open connections (the poller's live
    table, not a historical count). *)
val live_connections : t -> int

(** [accepted_connections t] — connections accepted since {!start}. *)
val accepted_connections : t -> int

(** [signal_stop t] asks the IO loop to stop (what the [shutdown] verb
    does internally — one byte down the poller's self-pipe). Non-blocking,
    idempotent. *)
val signal_stop : t -> unit

(** [wait t] blocks until the server stops (a [shutdown] request or
    {!signal_stop}): the poller drains in-flight requests and write
    buffers (force-closing stragglers after its drain timeout, so this
    cannot hang), the workers and build worker are joined, and Unix socket
    files are removed. *)
val wait : t -> unit

(** [stop t] — {!signal_stop} followed by {!wait}. Idempotent. *)
val stop : t -> unit

(** A writable short socket path for tests and examples:
    the system temp dir when short enough for [sun_path], else [/tmp].
    Unique per call within the process. *)
val temp_socket_path : unit -> string
