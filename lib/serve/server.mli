(** The serving loop: a Unix-domain-socket server speaking
    {!Protocol.version}, one lightweight thread per connection, backed by
    the dataset {!Registry} (background builds), the {!Lru} result cache
    and the single-flight {!Batcher}.

    Design invariants (enforced by [test/test_serve.ml] and the [serve]
    oracle of the fuzzer):

    - a served selection/mrr is {e bit-identical} to a direct
      {!Kregret.Stored_list} prefix read on the same build — including when
      it comes from the cache or from a coalesced batch;
    - malformed input of any shape is answered with a structured error and
      never terminates the server (an oversized frame additionally closes
      that one connection, because its framing is no longer trustworthy);
    - a query against a still-building dataset returns a [building] error
      with a [retry_after] hint instead of blocking the accept loop;
    - a query against a dataset whose CSV changed on disk after [load] is
      rejected with [stale_dataset] (never silently served from the stale
      StoredList). *)

type config = {
  socket_path : string;
  cache_capacity : int;  (** {!Lru} capacity; [0] disables caching *)
  max_line : int;  (** per-frame byte limit *)
  retry_after : float;  (** seconds hint attached to [building] errors *)
  max_length : int option;  (** StoredList materialization cap ([--max-k]) *)
}

(** [config ~socket_path ()] with defaults: cache 128, 64 KiB frames,
    [retry_after] 0.05 s, full materialization. *)
val config :
  ?cache_capacity:int ->
  ?max_line:int ->
  ?retry_after:float ->
  ?max_length:int ->
  socket_path:string ->
  unit ->
  config

type t

(** [start config] binds the socket (replacing a stale socket file), starts
    the accept thread and the registry's build worker, and returns
    immediately. Installs a [SIGPIPE] ignore handler (a client hanging up
    mid-response must not kill the process). Raises [Unix.Unix_error] when
    the socket cannot be bound. *)
val start : config -> t

(** [registry t] — for in-process preloading ([--preload]) and tests. *)
val registry : t -> Registry.t

(** [signal_stop t] asks the accept loop to stop (what the [shutdown] verb
    does internally). Non-blocking, idempotent. *)
val signal_stop : t -> unit

(** [wait t] blocks until the server stops (a [shutdown] request or
    {!signal_stop}), then joins every connection thread and the build
    worker and removes the socket file. *)
val wait : t -> unit

(** [stop t] — {!signal_stop} followed by {!wait}. Idempotent. *)
val stop : t -> unit

(** A writable short socket path for tests and examples:
    the system temp dir when short enough for [sun_path], else [/tmp].
    Unique per call within the process. *)
val temp_socket_path : unit -> string
