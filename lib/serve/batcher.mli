(** Single-flight request coalescing.

    When several connections ask for the same [(dataset, k, kind)] at the
    same moment, only the first — the {e leader} — runs the StoredList
    prefix scan; the rest ({e followers}) block on the in-flight cell and
    receive the leader's result (or its exception) verbatim. One scan thus
    serves an arbitrary number of concurrent identical queries, which
    together with the LRU cache is the serving layer's answer to
    heavy-traffic fan-in: the cache de-duplicates across time, the batcher
    de-duplicates across concurrency.

    Thread-safe. Counters are exact; every event also bumps the
    [serve.batch.*] counters in {!Kregret_obs}. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t

(** [run t ~key f] — if no computation for [key] is in flight, runs [f]
    as the leader and returns [(value, false)]; otherwise waits for the
    in-flight leader and returns [(value, true)]. An exception raised by
    [f] is re-raised in the leader {e and} every follower. *)
val run : ('k, 'v) t -> key:'k -> (unit -> 'v) -> 'v * bool

(** [counts t] is [(leaders, followers)] read atomically under the
    batcher mutex — a consistent pair for stats frames (independent reads
    of {!leaders} and {!followers} could straddle an event). *)
val counts : ('k, 'v) t -> int * int

val leaders : ('k, 'v) t -> int
val followers : ('k, 'v) t -> int
