module Vector = Kregret_geom.Vector
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Kernel = Kregret_approx.Kernel
module Obs = Kregret_obs

let c_builds =
  Obs.Registry.counter "serve.shard.builds" ~help:"shard-tier builds completed"

let c_local =
  Obs.Registry.counter "serve.shard.local_pipelines"
    ~help:"per-shard pipeline runs inside shard-tier builds"

type local = {
  l_n : int;
  l_sky : int array;
      (* original row ids of the local scatter surface: the local skyline,
         or the local ε-kernel in approx mode *)
  l_happy : int array;  (* original row ids of the local happy set *)
  l_stored : Stored_list.t option;  (* over l_happy's vectors *)
}

type t = {
  s_n : int;
  s_locals : local array;
  s_n_sky : int;
  s_ids : int array;  (* coordinator list, original row ids *)
  s_mrr : float array;  (* mrr of each coordinator prefix *)
  s_n_happy : int;
  s_approx : float;  (* requested ε; 0. = exact *)
  s_kernel : int;  (* global kernel size; 0 = exact *)
  s_points : Vector.t array;  (* the full normalized input (shared, not copied) *)
  s_sky_ids : int array;
      (* merged skyline, original row ids — bit-identical to the
         monolithic skyline in exact mode (the shard-merge invariant),
         the kernel-restricted skyline in approx mode. Sibling query
         engines (rank-regret) take these as their candidate set: the
         skyline is rank-complete, the happy funnel is not. *)
  s_happy_ids : int array;
      (* merged happy set, original row ids — same invariant, one
         funnel stage further down. *)
}

(* one shard's slice of the pipeline; [off] maps chunk rows back to
   original ids. In approx mode the scatter surface is the chunk's
   ε-kernel instead of its skyline, and the local serving pipeline runs
   on the kernel rows. *)
let build_local ?eps ?max_length ?approx ~off chunk =
  Obs.Counter.incr c_local;
  match approx with
  | None ->
      let sky_idx = Skyline.naive chunk in
      let sky_vecs = Array.map (fun i -> chunk.(i)) sky_idx in
      let hap_idx = Happy.happy_points ?eps sky_vecs in
      let hap_vecs = Array.map (fun i -> sky_vecs.(i)) hap_idx in
      {
        l_n = Array.length chunk;
        l_sky = Array.map (fun i -> off + i) sky_idx;
        l_happy = Array.map (fun i -> off + sky_idx.(i)) hap_idx;
        l_stored =
          (if Array.length hap_vecs = 0 then None
           else Some (Stored_list.preprocess ?eps ?max_length hap_vecs));
      }
  | Some a ->
      let red = Kernel.reduce ~eps:a chunk in
      let ker_idx = red.Kernel.ids in
      let ker_vecs = Array.map (fun i -> chunk.(i)) ker_idx in
      let sky_idx = Skyline.naive ker_vecs in
      let sky_vecs = Array.map (fun i -> ker_vecs.(i)) sky_idx in
      let hap_idx = Happy.happy_points ?eps sky_vecs in
      let hap_vecs = Array.map (fun i -> sky_vecs.(i)) hap_idx in
      {
        l_n = Array.length chunk;
        l_sky = Array.map (fun i -> off + i) ker_idx;
        l_happy = Array.map (fun i -> off + ker_idx.(sky_idx.(i))) hap_idx;
        l_stored =
          (if Array.length hap_vecs = 0 then None
           else Some (Stored_list.preprocess ?eps ?max_length hap_vecs));
      }

let create ?eps ?max_length ?approx ~shards points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Shard.create: empty dataset";
  let shards = max 1 (min shards n) in
  (* contiguous partition: chunk c covers [starts.(c), starts.(c+1)), the
     first [n mod shards] chunks one row longer *)
  let base = n / shards and extra = n mod shards in
  let starts = Array.make (shards + 1) 0 in
  for c = 0 to shards - 1 do
    starts.(c + 1) <- starts.(c) + base + (if c < extra then 1 else 0)
  done;
  let locals =
    Array.init shards (fun c ->
        let off = starts.(c) in
        build_local ?eps ?max_length ?approx ~off
          (Array.sub points off (starts.(c + 1) - off)))
  in
  (* gather: the concatenated local scatter surfaces, in shard (= row)
     order — ascending original ids, since shards are contiguous and
     each local surface is sorted *)
  let union_ids = Array.concat (Array.to_list (Array.map (fun l -> l.l_sky) locals)) in
  let union_vecs = Array.map (fun id -> points.(id)) union_ids in
  (* approx: rescan the union so the merged kernel is exactly the
     ε-kernel of the whole dataset. Per direction the global winner
     (smallest-id maximizer) wins its own shard's scan, so it is in the
     union, and a first-wins scan over the ascending-id union picks it
     again — merged = solo, bit for bit, for every shard count. *)
  let gather_ids, gather_vecs, kernel_size =
    match approx with
    | None -> (union_ids, union_vecs, 0)
    | Some a ->
        let red = Kernel.reduce ~eps:a ~ids:union_ids union_vecs in
        let k_ids = red.Kernel.ids in
        (k_ids, Array.map (fun id -> points.(id)) k_ids, Array.length k_ids)
  in
  let sky_idx = Skyline.naive gather_vecs in
  let sky_vecs = Array.map (fun i -> gather_vecs.(i)) sky_idx in
  let sky_ids = Array.map (fun i -> gather_ids.(i)) sky_idx in
  let hap_idx = Happy.happy_points ?eps sky_vecs in
  let hap_ids = Array.map (fun i -> gather_ids.(sky_idx.(i))) hap_idx in
  let hap_vecs = Array.map (fun i -> sky_vecs.(i)) hap_idx in
  let ids, mrr =
    if Array.length hap_vecs = 0 then ([||], [||])
    else begin
      let stored = Stored_list.preprocess ?eps ?max_length hap_vecs in
      let len = Stored_list.length stored in
      let order = Array.of_list (Stored_list.order stored) in
      ( Array.map (fun i -> hap_ids.(i)) order,
        Array.init len (fun i -> Stored_list.mrr_at stored ~k:(i + 1)) )
    end
  in
  Obs.Counter.incr c_builds;
  {
    s_n = n;
    s_locals = locals;
    s_n_sky = Array.length sky_idx;
    s_ids = ids;
    s_mrr = mrr;
    s_n_happy = Array.length hap_ids;
    s_approx = (match approx with None -> 0. | Some a -> a);
    s_kernel = kernel_size;
    s_points = points;
    s_sky_ids = sky_ids;
    s_happy_ids = hap_ids;
  }

let shards t = Array.length t.s_locals
let n t = t.s_n
let n_sky t = t.s_n_sky
let n_happy t = t.s_n_happy
let stored_length t = Array.length t.s_ids
let approx t = t.s_approx
let kernel_size t = t.s_kernel

let query t ~k =
  if k < 1 then invalid_arg "Shard.query: k must be positive";
  let len = Array.length t.s_ids in
  if len = 0 then ([], 0.)
  else
    let take = min k len in
    (Array.to_list (Array.sub t.s_ids 0 take), t.s_mrr.(take - 1))

let mrr_at t ~k =
  if k < 1 then invalid_arg "Shard.mrr_at: k must be positive";
  let len = Array.length t.s_ids in
  if len = 0 then 0. else t.s_mrr.(min k len - 1)

let happy_ids t = Array.copy t.s_happy_ids

(* Rank-regret over the sharded tier: the merged skyline is the
   candidate pool and the full retained input is the ranking universe, so
   the engine sees exactly the monolithic inputs — answers are
   bit-identical to a solo build for every shard count. *)
let rank_regret t ~k =
  if k < 1 then invalid_arg "Shard.rank_regret: k must be positive";
  let eng =
    Kregret_rrr.Rrr.build ~max_size:k ~candidates:t.s_sky_ids t.s_points
  in
  Kregret_rrr.Rrr.query eng ~k

let local_sizes t =
  Array.map
    (fun l -> (l.l_n, Array.length l.l_sky, Array.length l.l_happy))
    t.s_locals

let local_query t ~shard ~k =
  if shard < 0 || shard >= Array.length t.s_locals then
    invalid_arg "Shard.local_query: shard out of range";
  if k < 1 then invalid_arg "Shard.local_query: k must be positive";
  let l = t.s_locals.(shard) in
  match l.l_stored with
  | None -> []
  | Some s -> List.map (fun i -> l.l_happy.(i)) (Stored_list.query s ~k)
