module Vector = Kregret_geom.Vector
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Obs = Kregret_obs

let c_builds =
  Obs.Registry.counter "serve.shard.builds" ~help:"shard-tier builds completed"

let c_local =
  Obs.Registry.counter "serve.shard.local_pipelines"
    ~help:"per-shard pipeline runs inside shard-tier builds"

type local = {
  l_n : int;
  l_sky : int array;  (* original row ids of the local skyline *)
  l_happy : int array;  (* original row ids of the local happy set *)
  l_stored : Stored_list.t option;  (* over l_happy's vectors *)
}

type t = {
  s_n : int;
  s_locals : local array;
  s_n_sky : int;
  s_ids : int array;  (* coordinator list, original row ids *)
  s_mrr : float array;  (* mrr of each coordinator prefix *)
  s_n_happy : int;
}

(* one shard's slice of the pipeline; [off] maps chunk rows back to
   original ids *)
let build_local ?eps ?max_length ~off chunk =
  Obs.Counter.incr c_local;
  let sky_idx = Skyline.naive chunk in
  let sky_vecs = Array.map (fun i -> chunk.(i)) sky_idx in
  let hap_idx = Happy.happy_points ?eps sky_vecs in
  let hap_vecs = Array.map (fun i -> sky_vecs.(i)) hap_idx in
  {
    l_n = Array.length chunk;
    l_sky = Array.map (fun i -> off + i) sky_idx;
    l_happy = Array.map (fun i -> off + sky_idx.(i)) hap_idx;
    l_stored =
      (if Array.length hap_vecs = 0 then None
       else Some (Stored_list.preprocess ?eps ?max_length hap_vecs));
  }

let create ?eps ?max_length ~shards points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Shard.create: empty dataset";
  let shards = max 1 (min shards n) in
  (* contiguous partition: chunk c covers [starts.(c), starts.(c+1)), the
     first [n mod shards] chunks one row longer *)
  let base = n / shards and extra = n mod shards in
  let starts = Array.make (shards + 1) 0 in
  for c = 0 to shards - 1 do
    starts.(c + 1) <- starts.(c) + base + (if c < extra then 1 else 0)
  done;
  let locals =
    Array.init shards (fun c ->
        let off = starts.(c) in
        build_local ?eps ?max_length ~off
          (Array.sub points off (starts.(c + 1) - off)))
  in
  (* gather: the concatenated local skylines, in shard (= row) order *)
  let union_ids = Array.concat (Array.to_list (Array.map (fun l -> l.l_sky) locals)) in
  let union_vecs = Array.map (fun id -> points.(id)) union_ids in
  let sky_idx = Skyline.naive union_vecs in
  let sky_vecs = Array.map (fun i -> union_vecs.(i)) sky_idx in
  let hap_idx = Happy.happy_points ?eps sky_vecs in
  let hap_ids = Array.map (fun i -> union_ids.(sky_idx.(i))) hap_idx in
  let hap_vecs = Array.map (fun i -> sky_vecs.(i)) hap_idx in
  let ids, mrr =
    if Array.length hap_vecs = 0 then ([||], [||])
    else begin
      let stored = Stored_list.preprocess ?eps ?max_length hap_vecs in
      let len = Stored_list.length stored in
      let order = Array.of_list (Stored_list.order stored) in
      ( Array.map (fun i -> hap_ids.(i)) order,
        Array.init len (fun i -> Stored_list.mrr_at stored ~k:(i + 1)) )
    end
  in
  Obs.Counter.incr c_builds;
  {
    s_n = n;
    s_locals = locals;
    s_n_sky = Array.length sky_idx;
    s_ids = ids;
    s_mrr = mrr;
    s_n_happy = Array.length hap_ids;
  }

let shards t = Array.length t.s_locals
let n t = t.s_n
let n_sky t = t.s_n_sky
let n_happy t = t.s_n_happy
let stored_length t = Array.length t.s_ids

let query t ~k =
  if k < 1 then invalid_arg "Shard.query: k must be positive";
  let len = Array.length t.s_ids in
  if len = 0 then ([], 0.)
  else
    let take = min k len in
    (Array.to_list (Array.sub t.s_ids 0 take), t.s_mrr.(take - 1))

let mrr_at t ~k =
  if k < 1 then invalid_arg "Shard.mrr_at: k must be positive";
  let len = Array.length t.s_ids in
  if len = 0 then 0. else t.s_mrr.(min k len - 1)

let local_sizes t =
  Array.map
    (fun l -> (l.l_n, Array.length l.l_sky, Array.length l.l_happy))
    t.s_locals

let local_query t ~shard ~k =
  if shard < 0 || shard >= Array.length t.s_locals then
    invalid_arg "Shard.local_query: shard out of range";
  if k < 1 then invalid_arg "Shard.local_query: k must be positive";
  let l = t.s_locals.(shard) in
  match l.l_stored with
  | None -> []
  | Some s -> List.map (fun i -> l.l_happy.(i)) (Stored_list.query s ~k)
