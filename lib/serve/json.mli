(** Minimal JSON values for the wire protocol.

    The serving protocol ({!Protocol}) frames every request and response as
    one JSON object per line. The repository policy is "no new external
    dependencies", so this is a small, total JSON reader/writer of our own:
    a recursive-descent parser over a string (no streaming — frames are
    line-bounded anyway) and an emitter whose float formatting ([%.17g])
    round-trips [float]s bit-exactly through [float_of_string]. That exact
    round-trip is load-bearing: the end-to-end tests assert that a served
    [mrr] is {e bit-identical} to the direct {!Kregret.Stored_list} read. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse s] parses one JSON document; trailing garbage after the document
    is an error. Never raises. *)
val parse : string -> (t, string) result

(** [to_string v] emits a single-line document. Integral floats print as
    integers; other finite floats as [%.17g] (bit-exact round-trip);
    non-finite floats as [null]. *)
val to_string : t -> string

(** {1 Accessors} — total; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_float : t -> float option

(** [to_int] accepts only integral numbers representable as [int]. *)
val to_int : t -> int option

val to_bool : t -> bool option
val to_list : t -> t list option

(** {1 Constructors} *)

val int : int -> t
val str : string -> t
