type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- parsing -------------------------------------------------------------

   Recursive descent over a string with an explicit cursor. All errors carry
   the offset so a malformed frame diagnosis points at the byte. *)

exception Parse_error of string

let fail pos fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "byte %d: %s" pos m))) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    &&
    match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c.pos "expected %C, found %C" ch x
  | None -> fail c.pos "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos "invalid literal"

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> raise (Parse_error "bad hex digit")

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | None -> fail c.pos "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.s then
                  fail c.pos "truncated \\u escape";
                let code =
                  try
                    (hex_digit c.s.[c.pos] * 4096)
                    + (hex_digit c.s.[c.pos + 1] * 256)
                    + (hex_digit c.s.[c.pos + 2] * 16)
                    + hex_digit c.s.[c.pos + 3]
                  with Parse_error _ -> fail c.pos "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                (* we only need ASCII round-trips for the protocol; encode the
                   rest as UTF-8 so nothing is silently dropped *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
            | e -> fail (c.pos - 1) "bad escape \\%c" e));
        loop ()
    | Some ch when Char.code ch < 0x20 -> fail c.pos "raw control byte in string"
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let chunk = String.sub c.s start (c.pos - start) in
  match float_of_string_opt chunk with
  | Some f -> Num f
  | None -> fail start "malformed number %S" chunk

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          fields := (key, value) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ()
          | Some '}' -> c.pos <- c.pos + 1
          | Some ch -> fail c.pos "expected ',' or '}', found %C" ch
          | None -> fail c.pos "unterminated object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements ()
          | Some ']' -> c.pos <- c.pos + 1
          | Some ch -> fail c.pos "expected ',' or ']', found %C" ch
          | None -> fail c.pos "unterminated array"
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos "unexpected character %C" ch

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "byte %d: trailing garbage after document" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

(* ---- emission ------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf key;
            Buffer.add_string buf "\":";
            emit value)
          fields;
        Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* ---- accessors ----------------------------------------------------------- *)

let member key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_str v = match v with Str s -> Some s | _ -> None
let to_float v = match v with Num f -> Some f | _ -> None

let to_int v =
  match v with
  | Num f
    when Float.is_integer f
         && f >= Int.to_float Int.min_int
         && f <= Int.to_float Int.max_int ->
      Some (Float.to_int f)
  | _ -> None

let to_bool v = match v with Bool b -> Some b | _ -> None
let to_list v = match v with Arr items -> Some items | _ -> None
let int n = Num (Int.to_float n)
let str s = Str s
