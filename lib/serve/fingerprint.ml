let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let render h = Printf.sprintf "%016Lx" h
let mix h bits = Int64.mul (Int64.logxor h bits) fnv_prime

let of_string s =
  let h = ref fnv_offset in
  String.iter (fun ch -> h := mix !h (Int64.of_int (Char.code ch))) s;
  render !h

let of_points points =
  let h = ref fnv_offset in
  Array.iter
    (fun p -> Array.iter (fun x -> h := mix !h (Int64.bits_of_float x)) p)
    points;
  render !h

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok (of_string contents)
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": truncated read")
