let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let render h = Printf.sprintf "%016Lx" h
let mix h bits = Int64.mul (Int64.logxor h bits) fnv_prime

let of_string s =
  let h = ref fnv_offset in
  String.iter (fun ch -> h := mix !h (Int64.of_int (Char.code ch))) s;
  render !h

let of_points points =
  let h = ref fnv_offset in
  Array.iter
    (fun p -> Array.iter (fun x -> h := mix !h (Int64.bits_of_float x)) p)
    points;
  render !h

(* A stat signature is the cheap proxy for "the file was not touched":
   same device, inode, size and mtime (nanosecond precision on Linux)
   means the same bytes for any editor/tool that writes through the
   filesystem honestly. It is only ever an admission ticket for skipping
   the byte hash — a changed signature falls back to the full hash, so a
   touch without a rewrite does not invalidate anything. *)
type stat_sig = { dev : int; ino : int; size : int; mtime : float }

let sig_of_stats (st : Unix.stats) =
  {
    dev = st.Unix.st_dev;
    ino = st.Unix.st_ino;
    size = st.Unix.st_size;
    mtime = st.Unix.st_mtime;
  }

let sig_of_path path =
  match Unix.stat path with
  | st -> Ok (sig_of_stats st)
  | exception Unix.Unix_error (e, _, _) ->
      Error (path ^ ": " ^ Unix.error_message e)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok (of_string contents)
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": truncated read")
