module Obs = Kregret_obs

let c_leaders =
  Obs.Registry.counter "serve.batch.leaders"
    ~help:"coalesced-computation groups actually computed"

let c_followers =
  Obs.Registry.counter "serve.batch.followers"
    ~help:"requests served by piggybacking on an in-flight computation"

type 'v cell = { mutable result : ('v, exn) result option }

type ('k, 'v) t = {
  mutex : Mutex.t;
  cond : Condition.t;
  inflight : ('k, 'v cell) Hashtbl.t;
  mutable leaders : int;
  mutable followers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    inflight = Hashtbl.create 16;
    leaders = 0;
    followers = 0;
  }

let run t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.inflight key with
  | Some cell ->
      t.followers <- t.followers + 1;
      Obs.Counter.incr c_followers;
      let rec await () =
        match cell.result with
        | Some r -> r
        | None ->
            Condition.wait t.cond t.mutex;
            await ()
      in
      let r = await () in
      Mutex.unlock t.mutex;
      (match r with Ok v -> (v, true) | Error e -> raise e)
  | None ->
      t.leaders <- t.leaders + 1;
      Obs.Counter.incr c_leaders;
      let cell = { result = None } in
      Hashtbl.replace t.inflight key cell;
      Mutex.unlock t.mutex;
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock t.mutex;
      cell.result <- Some r;
      Hashtbl.remove t.inflight key;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      (match r with Ok v -> (v, false) | Error e -> raise e)

(* Counter reads take the mutex: the mutable fields are written under it,
   and an unsynchronized read could tear a (leaders, followers) pair taken
   for a stats frame — the pair must always count whole events. *)
let counts t =
  Mutex.lock t.mutex;
  let c = (t.leaders, t.followers) in
  Mutex.unlock t.mutex;
  c

let leaders t = fst (counts t)
let followers t = snd (counts t)
