type t = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let connect_to ?(timeout = 30.) endpoint =
  match Endpoint.connect endpoint with
  | Error m -> Error m
  | Ok fd -> (
      let fail msg =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error msg
      in
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let reader = Protocol.reader fd in
      match Protocol.read_line reader ~max:Protocol.default_max_line with
      | `Line line -> (
          match Json.parse line with
          | Ok j
            when Option.bind (Json.member "hello" j) Json.to_str
                 = Some Protocol.version ->
              Ok { fd; reader; closed = false }
          | Ok _ | Error _ ->
              fail (Printf.sprintf "unexpected hello frame %S" line))
      | `Eof -> fail "connection closed before hello"
      | `Too_long -> fail "oversized hello frame"
      | `Error m -> fail ("reading hello: " ^ m))

let connect ?timeout ~socket_path () =
  connect_to ?timeout (Endpoint.Unix_path socket_path)

let request_raw t line =
  if t.closed then Error "client is closed"
  else
    match Protocol.write_line t.fd line with
    | Error m -> Error ("send: " ^ m)
    | Ok () -> (
        match Protocol.read_line t.reader ~max:Protocol.default_max_line with
        | `Line resp -> Ok resp
        | `Eof -> Error "server closed the connection"
        | `Too_long -> Error "oversized response frame"
        | `Error m -> Error ("receive: " ^ m))

let request t line =
  match request_raw t line with
  | Error m -> Error m
  | Ok resp -> (
      match Json.parse resp with
      | Ok j -> Ok j
      | Error m -> Error (Printf.sprintf "unparsable response %S: %s" resp m))

(* ---- typed layer --------------------------------------------------------- *)

let is_ok j = Json.member "ok" j |> Option.map (fun v -> v = Json.Bool true)
              |> Option.value ~default:false

let error_code j =
  Option.bind (Json.member "error" j) (fun e ->
      Option.bind (Json.member "code" e) Json.to_str)

let error_message j =
  Option.bind (Json.member "error" j) (fun e ->
      Option.bind (Json.member "message" e) Json.to_str)

let server_error j =
  Printf.sprintf "server error [%s]: %s"
    (Option.value ~default:"?" (error_code j))
    (Option.value ~default:"?" (error_message j))

let retry_after j =
  Option.bind (Json.member "retry_after" j) Json.to_float

let request_obj t fields =
  match request t (Json.to_string (Json.Obj fields)) with
  | Error m -> Error m
  | Ok j -> if is_ok j then Ok j else Error (server_error j)

let ping t = request_obj t [ ("op", Json.Str "ping") ]

let load ?shards ?approx t ~name ~path =
  request_obj t
    ([ ("op", Json.Str "load"); ("name", Json.Str name); ("path", Json.Str path) ]
    @ (match shards with Some s -> [ ("shards", Json.int s) ] | None -> [])
    @ match approx with Some e -> [ ("approx", Json.Num e) ] | None -> [])

let list_datasets t = request_obj t [ ("op", Json.Str "list") ]
let stats t = request_obj t [ ("op", Json.Str "stats") ]

let evict t ?name () =
  let fields =
    ("op", Json.Str "evict")
    :: (match name with Some n -> [ ("name", Json.Str n) ] | None -> [])
  in
  request_obj t fields

let shutdown t = request_obj t [ ("op", Json.Str "shutdown") ]

let wait_ready ?(attempts = 600) t ~name =
  let rec poll left =
    if left <= 0 then
      Error (Printf.sprintf "dataset %S still not ready after polling" name)
    else
      match list_datasets t with
      | Error m -> Error m
      | Ok j -> (
          let datasets =
            Option.bind (Json.member "datasets" j) Json.to_list
            |> Option.value ~default:[]
          in
          let entry =
            List.find_opt
              (fun d ->
                Option.bind (Json.member "name" d) Json.to_str = Some name)
              datasets
          in
          match entry with
          | None -> Error (Printf.sprintf "dataset %S is not loaded" name)
          | Some d -> (
              match Option.bind (Json.member "status" d) Json.to_str with
              | Some "ready" -> Ok ()
              | Some "failed" ->
                  Error
                    (Printf.sprintf "dataset %S failed to build: %s" name
                       (Option.value ~default:"?"
                          (Option.bind (Json.member "error" d) Json.to_str)))
              | _ ->
                  Thread.delay 0.02;
                  poll (left - 1)))
  in
  poll attempts

let query_fields ~op ~name ~k =
  [ ("op", Json.Str op); ("name", Json.Str name); ("k", Json.int k) ]

let query_json t ~name ~k =
  request t (Json.to_string (Json.Obj (query_fields ~op:"query" ~name ~k)))

(* send a frame, retrying on [building] with the server's retry_after hint *)
let with_building_retry_fields ~retries t fields extract =
  let rec go left =
    match request t (Json.to_string (Json.Obj fields)) with
    | Error m -> Error m
    | Ok j ->
        if is_ok j then extract j
        else if error_code j = Some "building" && left > 0 then begin
          Thread.delay
            (Float.min 0.25 (Option.value ~default:0.05 (retry_after j)));
          go (left - 1)
        end
        else Error (server_error j)
  in
  go retries

let with_building_retry ~retries t ~op ~name ~k extract =
  with_building_retry_fields ~retries t (query_fields ~op ~name ~k) extract

let extract_mrr j =
  match Option.bind (Json.member "mrr" j) Json.to_float with
  | Some m -> Some m
  | None -> None

let query ?(retries = 200) t ~name ~k =
  with_building_retry ~retries t ~op:"query" ~name ~k (fun j ->
      let selection =
        Option.bind (Json.member "selection" j) Json.to_list
        |> Option.map (List.filter_map Json.to_int)
      in
      match (selection, extract_mrr j) with
      | Some sel, Some mrr -> Ok (sel, mrr)
      | _ -> Error ("query response missing fields: " ^ Json.to_string j))

let mrr ?(retries = 200) t ~name ~k =
  with_building_retry ~retries t ~op:"mrr" ~name ~k (fun j ->
      match extract_mrr j with
      | Some m -> Ok m
      | None -> Error ("mrr response missing mrr: " ^ Json.to_string j))

let rank_regret ?(retries = 200) t ~name ~k =
  with_building_retry ~retries t ~op:"rank_regret" ~name ~k (fun j ->
      let selection =
        Option.bind (Json.member "selection" j) Json.to_list
        |> Option.map (List.filter_map Json.to_int)
      in
      let lo = Option.bind (Json.member "rank_lo" j) Json.to_int in
      let hi = Option.bind (Json.member "rank_hi" j) Json.to_int in
      let exact =
        Option.bind (Json.member "exact" j) (fun v ->
            match v with Json.Bool b -> Some b | _ -> None)
      in
      match (selection, lo, hi, exact) with
      | Some sel, Some lo, Some hi, Some exact -> Ok (sel, lo, hi, exact)
      | _ -> Error ("rank_regret response missing fields: " ^ Json.to_string j))

(* ---- dynamic updates ------------------------------------------------------ *)

let insert ?(retries = 200) t ~name ~point =
  with_building_retry_fields ~retries t
    [
      ("op", Json.Str "insert");
      ("name", Json.Str name);
      ("point", Json.Arr (Array.to_list (Array.map (fun x -> Json.Num x) point)));
    ]
    (fun j ->
      match Option.bind (Json.member "id" j) Json.to_int with
      | Some id -> Ok id
      | None -> Error ("insert response missing id: " ^ Json.to_string j))

let delete ?(retries = 200) t ~name ~id =
  with_building_retry_fields ~retries t
    [ ("op", Json.Str "delete"); ("name", Json.Str name); ("id", Json.int id) ]
    (fun j ->
      match Option.bind (Json.member "applied" j) (fun v ->
          match v with Json.Bool b -> Some b | _ -> None)
      with
      | Some applied -> Ok applied
      | None -> Error ("delete response missing applied: " ^ Json.to_string j))

let flush ?(retries = 200) t ~name =
  with_building_retry_fields ~retries t
    [ ("op", Json.Str "flush"); ("name", Json.Str name) ]
    (fun j ->
      match Option.bind (Json.member "reclaimed" j) Json.to_int with
      | Some n -> Ok n
      | None -> Error ("flush response missing reclaimed: " ^ Json.to_string j))
