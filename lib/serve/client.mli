(** Client for the [kregret-serve/v1] protocol — used by the end-to-end
    tests, the fuzzer's serve oracle, and [kregret_serve --client].

    All operations are total ([result], never an exception) and bounded: a
    receive timeout (default 30 s) is set on the socket so a wedged server
    surfaces as an [Error], not a hang. Typed helpers interpret structured
    server errors; [query]/[mrr] transparently retry on [building] using
    the server's [retry_after] hint. *)

type t

(** [connect_to endpoint] connects to any {!Endpoint} (Unix or TCP) and
    verifies the hello frame carries {!Protocol.version}. *)
val connect_to : ?timeout:float -> Endpoint.t -> (t, string) result

(** [connect ~socket_path ()] — {!connect_to} on a Unix endpoint (the
    pre-TCP calling convention). *)
val connect : ?timeout:float -> socket_path:string -> unit -> (t, string) result

val close : t -> unit

(** {1 Raw frames} *)

(** [request_raw t line] sends one frame verbatim and returns the raw
    response line — malformed frames welcome (that is the point: the
    protocol tests drive the server's error paths through this). *)
val request_raw : t -> string -> (string, string) result

(** [request t line] — {!request_raw} + JSON-parse of the response. *)
val request : t -> string -> (Json.t, string) result

(** {1 Typed helpers}

    Server-side failures map to [Error "server error [CODE]: message"]. *)

val ping : t -> (Json.t, string) result

(** [load t ~name ~path] registers a dataset; [?shards] > 1 asks for the
    scatter-gather tier (bit-identical answers, but the dataset becomes
    static — updates answer [static_dataset]); [?approx] = ε in (0, 1]
    asks for the ε-kernel reduction (approximate answers with a certified
    additive bound; also static). Exact and approximate loads of the same
    file are distinct datasets and never share cached answers. *)
val load :
  ?shards:int ->
  ?approx:float ->
  t ->
  name:string ->
  path:string ->
  (Json.t, string) result
val list_datasets : t -> (Json.t, string) result
val stats : t -> (Json.t, string) result
val evict : t -> ?name:string -> unit -> (Json.t, string) result
val shutdown : t -> (Json.t, string) result

(** [wait_ready t ~name] polls [list] until the dataset is [ready]
    ([Error] on [failed], on an unknown name, or after [attempts]
    polls — default 600, 20 ms apart). *)
val wait_ready : ?attempts:int -> t -> name:string -> (unit, string) result

(** [query t ~name ~k] — the selection (original dataset row indices) and
    its mrr. Retries on [building] (default 200 attempts). *)
val query :
  ?retries:int -> t -> name:string -> k:int -> (int list * float, string) result

(** [query_json t ~name ~k] — one shot, full response document (to inspect
    [cached] / [coalesced] flags); no retry. *)
val query_json : t -> name:string -> k:int -> (Json.t, string) result

val mrr : ?retries:int -> t -> name:string -> k:int -> (float, string) result

(** [rank_regret t ~name ~k] — the rank-regret representative answer
    [(selection, rank_lo, rank_hi, exact)]: a [<= k]-subset (original
    dataset row indices, greedy order) whose max rank over every linear
    preference is certified to lie in [\[rank_lo, rank_hi\]] ([exact]
    when the interval is a point — always in d <= 2). Retries on
    [building] like {!query}. *)
val rank_regret :
  ?retries:int ->
  t ->
  name:string ->
  k:int ->
  (int list * int * int * bool, string) result

(** {1 Dynamic updates}

    Each blocks until the server has applied the op and republished a
    consistent snapshot (see {!Kregret.Dynamic}); all three retry on
    [building] like {!query}. *)

(** [insert t ~name ~point] — returns the new point's stable id. The point
    must be pre-normalized: finite coordinates in [(0, 1]], dataset
    dimension. *)
val insert :
  ?retries:int -> t -> name:string -> point:float array -> (int, string) result

(** [delete t ~name ~id] — [Ok true] when a live point was tombstoned,
    [Ok false] for an unknown or already-deleted id (an exact no-op). *)
val delete : ?retries:int -> t -> name:string -> id:int -> (bool, string) result

(** [flush t ~name] — compact tombstoned slots now; returns the number of
    slots reclaimed. External ids are stable across flushes. *)
val flush : ?retries:int -> t -> name:string -> (int, string) result
