(** The event-driven IO core of the server: one readiness loop
    ([Unix.select]) multiplexing every listener and every connection, a
    self-pipe for wakeups, and a small worker pool running the request
    handler so the IO loop itself never blocks on a computation.

    Shape (replacing the thread-per-connection accept loop):

    - the {e IO thread} (the caller of {!run}) owns every file descriptor:
      it accepts, reads, frames lines out of per-connection read buffers,
      flushes per-connection write buffers, and is the only thread that
      ever closes an fd — so the select sets can never race a close;
    - {e workers} ([workers] threads) pop complete request lines from a
      queue, run [handle] (which may block — registry updates do), and
      append the response to the connection's write buffer;
    - per connection, at most one request is in flight at a time and
      responses are appended in dispatch order, so the protocol's strict
      request→response ordering survives pipelining;
    - {!stop} writes one byte to a self-pipe the select always watches —
      no transport-specific poke (the old UDS-only self-connect), so it
      works identically across Unix and TCP listeners;
    - connection state lives in a table of {e live} connections only:
      closing a connection removes its entry, so a long-lived server's
      footprint is bounded by its concurrency, not its history.

    On {!stop} the loop closes the listeners, stops reading, drains
    in-flight requests and write buffers (bounded by [drain_timeout],
    default 5 s, after which survivors are force-closed), joins the
    workers and returns from {!run}. *)

type t

val create :
  ?workers:int ->
  ?max_line:int ->
  ?drain_timeout:float ->
  ?on_accept:(unit -> unit) ->
  listeners:Unix.file_descr list ->
  hello:string ->
  handle:(string -> string * bool) ->
  too_long:(unit -> string) ->
  unit ->
  t
(** [create ~listeners ~hello ~handle ~too_long ()] takes ownership of the
    (already bound and listening, non-blocking) listener fds and spawns the
    worker pool ([workers] threads, default 4). [hello] is written to every
    accepted connection; [handle line] maps a request frame to
    [(response, close_after)] and must be total; [too_long ()] is the
    response for a frame exceeding [max_line] bytes (the connection is
    closed after it flushes — past the limit the framing is untrusted). *)

val run : t -> unit
(** The IO loop. Blocks until {!stop}, then drains and joins the workers.
    Call exactly once, from a dedicated thread. *)

val stop : t -> unit
(** Ask {!run} to wind down. Non-blocking, idempotent, safe from any
    thread (including a worker inside [handle] — the [shutdown] verb). *)

val live_connections : t -> int
(** Connections currently open — the size of the live table, not a
    historical count. *)

val accepted : t -> int
(** Total connections accepted since {!create}. *)
