module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Csv_io = Kregret_dataset.Csv_io
module Dynamic = Kregret.Dynamic
module Obs = Kregret_obs

let c_loads =
  Obs.Registry.counter "serve.registry.loads" ~help:"load requests accepted"

let c_builds =
  Obs.Registry.counter "serve.registry.builds" ~help:"background builds completed"

let c_build_failures =
  Obs.Registry.counter "serve.registry.build_failures"
    ~help:"background builds that raised"

let c_build_retries =
  Obs.Registry.counter "serve.registry.build_retries"
    ~help:"failed builds re-enqueued by a re-load of the unchanged file"

let c_updates =
  Obs.Registry.counter "serve.registry.updates"
    ~help:"insert/delete/flush jobs applied on the worker"

let c_update_failures =
  Obs.Registry.counter "serve.registry.update_failures"
    ~help:"update jobs answered with an error"

let c_stale =
  Obs.Registry.counter "serve.stale_rejections"
    ~help:"queries rejected because the CSV changed on disk after load"

let g_datasets =
  Obs.Registry.gauge "serve.registry.datasets" ~help:"datasets currently registered"

(* What queries read: an immutable answer backend plus the summary sizes,
   republished wholesale after every build and every applied update. The
   live [Dynamic.t] itself is touched only by the worker thread; a
   [Shard.t] is immutable from birth. *)
type backend =
  | Solo of Dynamic.Snapshot.t
  | Sharded of Shard.t

type built = {
  backend : backend;
  n_sky : int;
  n_happy : int;
  build_seconds : float;
}

let backend_query b ~k =
  match b with
  | Solo s -> Dynamic.Snapshot.query s ~k
  | Sharded sh -> Shard.query sh ~k

let backend_mrr_at b ~k =
  match b with
  | Solo s -> Dynamic.Snapshot.mrr_at s ~k
  | Sharded sh -> Shard.mrr_at sh ~k

(* Rank-regret rides the same published surfaces: solo answers run the
   engine over the snapshot's live basis (so they track updates epoch for
   epoch, and a fresh unmutated dataset reproduces the offline engine bit
   for bit — the basis is then the normalized rows in file order); sharded
   answers delegate to the tier's retained inputs. The engine's greedy
   prefix is max_size-stable, so per-k builds compose across cache keys. *)
let backend_rank_regret b ~k =
  match b with
  | Solo s ->
      let ids, rows = Dynamic.Snapshot.basis s in
      if Array.length rows = 0 then
        invalid_arg "rank_regret: dataset has no live points"
      else begin
        let eng = Kregret_rrr.Rrr.build ~max_size:k rows in
        let sel, rank = Kregret_rrr.Rrr.query eng ~k in
        (List.map (fun r -> ids.(r)) sel, rank)
      end
  | Sharded sh -> Shard.rank_regret sh ~k

(* sharded datasets are static, so epoch 0 forever is honest — nothing a
   cache keyed on it could miss *)
let backend_epoch = function Solo s -> Dynamic.Snapshot.epoch s | Sharded _ -> 0

let backend_live = function
  | Solo s -> Dynamic.Snapshot.live s
  | Sharded sh -> Shard.n sh

let backend_stored_length = function
  | Solo s -> Dynamic.Snapshot.stored_length s
  | Sharded sh -> Shard.stored_length sh

type status = Building | Ready of built | Failed of string

type info = {
  name : string;
  path : string;
  fingerprint : string;
  stat : Fingerprint.stat_sig;
  n : int;
  d : int;
  shards : int;
  approx : float;
  mutated : bool;
  status : status;
}

type update_op = [ `Insert of Vector.t | `Delete of int | `Flush ]

type update_outcome = {
  applied : bool;
  inserted_id : int option;
  reclaimed : int;
  epoch : int;
  live : int;
}

type update_reply = (update_outcome, string * string) result

type entry = {
  e_name : string;
  e_path : string;
  e_fingerprint : string;
  mutable e_stat : Fingerprint.stat_sig;  (* of the bytes behind e_fingerprint *)
  e_shards : int;  (* 1 = solo; >1 = scatter-gather, static *)
  e_approx : float;  (* 0. = exact; >0. = ε-kernel tier, static *)
  points : Vector.t array;  (* normalized rows, the initial id space *)
  mutable e_dyn : Dynamic.t option;  (* worker-owned once Ready (solo only) *)
  mutable e_mutated : bool;  (* diverged from the CSV via updates *)
  mutable e_status : status;
}

type job =
  | Build of string * string  (* name, fingerprint *)
  | Update of {
      u_name : string;
      u_fingerprint : string;
      u_op : update_op;
      u_cell : update_reply option ref;  (* filled under the mutex *)
    }

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  entries : (string, entry) Hashtbl.t;
  queue : job Queue.t;
  max_length : int option;
  mutable stop : bool;
  mutable worker : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let snapshot e =
  {
    name = e.e_name;
    path = e.e_path;
    fingerprint = e.e_fingerprint;
    stat = e.e_stat;
    n = Array.length e.points;
    d = (if Array.length e.points = 0 then 0 else Vector.dim e.points.(0));
    shards = e.e_shards;
    approx = e.e_approx;
    mutated = e.e_mutated;
    status = e.e_status;
  }

(* shard tiers and ε-kernel tiers are both static materializations with
   no incremental repair; updates against them are rejected with the
   [static_dataset] wire error *)
let static_reason ~shards ~approx name =
  if shards > 1 then
    Some
      (Printf.sprintf
         "dataset %S is sharded (scatter-gather) and static; re-load it \
          without \"shards\" to update it"
         name)
  else if approx > 0. then
    Some
      (Printf.sprintf
         "dataset %S is an ε-kernel approximation and static; re-load it \
          without \"approx\" to update it"
         name)
  else None

(* The full offline pipeline of the paper. Solo: materialized as a
   [Dynamic.t] so later updates repair incrementally. Sharded: the static
   scatter-gather tier, no [Dynamic] behind it. Runs on the build thread;
   the hot loops inside use the global domain pool. *)
let build ~max_length ~shards ~approx points =
  let t0 = Unix.gettimeofday () in
  try
    Obs.Span.with_ "serve.build" (fun () ->
        let dyn, backend, n_sky, n_happy =
          if shards > 1 || approx > 0. then begin
            let sh =
              Shard.create ?max_length
                ?approx:(if approx > 0. then Some approx else None)
                ~shards points
            in
            (None, Sharded sh, Shard.n_sky sh, Shard.n_happy sh)
          end
          else begin
            let dyn = Dynamic.create ?max_length points in
            ( Some dyn,
              Solo (Dynamic.snapshot dyn),
              Dynamic.sky_size dyn,
              Dynamic.happy_size dyn )
          end
        in
        let built =
          {
            backend;
            n_sky;
            n_happy;
            build_seconds = Unix.gettimeofday () -. t0;
          }
        in
        Obs.Counter.incr c_builds;
        (dyn, Ready built))
  with e ->
    Obs.Counter.incr c_build_failures;
    (None, Failed (Printexc.to_string e))

(* apply one update on the worker thread, off the mutex; the [Dynamic]
   raises [Invalid_argument] on malformed points, which maps to the
   [bad_point] wire error *)
let apply_update dyn op =
  try
    let outcome =
      match op with
      | `Insert p ->
          let id = Dynamic.insert dyn p in
          {
            applied = true;
            inserted_id = Some id;
            reclaimed = 0;
            epoch = Dynamic.epoch dyn;
            live = Dynamic.live dyn;
          }
      | `Delete id ->
          let ok = Dynamic.delete dyn id in
          {
            applied = ok;
            inserted_id = None;
            reclaimed = 0;
            epoch = Dynamic.epoch dyn;
            live = Dynamic.live dyn;
          }
      | `Flush ->
          let reclaimed = Dynamic.flush dyn in
          {
            applied = reclaimed > 0;
            inserted_id = None;
            reclaimed;
            epoch = Dynamic.epoch dyn;
            live = Dynamic.live dyn;
          }
    in
    Ok outcome
  with Invalid_argument m -> Error ("bad_point", m)

let publish_built dyn ~build_seconds =
  {
    backend = Solo (Dynamic.snapshot dyn);
    n_sky = Dynamic.sky_size dyn;
    n_happy = Dynamic.happy_size dyn;
    build_seconds;
  }

let worker_loop t =
  Mutex.lock t.mutex;
  while not t.stop do
    if Queue.is_empty t.queue then Condition.wait t.cond t.mutex
    else begin
      match Queue.pop t.queue with
      | Build (name, fp) -> (
          match Hashtbl.find_opt t.entries name with
          | Some e
            when String.equal e.e_fingerprint fp
                 && (match e.e_status with Building -> true | _ -> false) ->
              let points = e.points
              and shards = e.e_shards
              and approx = e.e_approx in
              Mutex.unlock t.mutex;
              let dyn, status =
                build ~max_length:t.max_length ~shards ~approx points
              in
              Mutex.lock t.mutex;
              (* the entry may have been evicted or replaced while we built —
                 including a same-bytes re-load at a different shard count or
                 ε, whose own Build job is still queued *)
              (match Hashtbl.find_opt t.entries name with
              | Some e'
                when String.equal e'.e_fingerprint fp
                     && e'.e_shards = shards
                     && Float.equal e'.e_approx approx ->
                  e'.e_dyn <- dyn;
                  e'.e_status <- status
              | _ -> ())
          | _ -> ()  (* superseded or evicted job *))
      | Update { u_name; u_fingerprint; u_op; u_cell } -> (
          let reply r =
            (match r with
            | Ok _ -> Obs.Counter.incr c_updates
            | Error _ -> Obs.Counter.incr c_update_failures);
            u_cell := Some r;
            Condition.broadcast t.cond
          in
          match Hashtbl.find_opt t.entries u_name with
          | Some { e_shards; e_approx; _ }
            when static_reason ~shards:e_shards ~approx:e_approx u_name
                 <> None ->
              (* normally rejected at enqueue time; kept for a load that
                 re-registered the name as static while the job sat queued *)
              reply
                (Error
                   ( "static_dataset",
                     Option.get
                       (static_reason ~shards:e_shards ~approx:e_approx u_name)
                   ))
          | Some e
            when String.equal e.e_fingerprint u_fingerprint
                 && (match e.e_status with Ready _ -> true | _ -> false) -> (
              match e.e_dyn with
              | None ->
                  reply
                    (Error
                       ( "internal",
                         Printf.sprintf "dataset %S is ready with no state"
                           u_name ))
              | Some dyn ->
                  let build_seconds =
                    match e.e_status with
                    | Ready b -> b.build_seconds
                    | _ -> 0.
                  in
                  Mutex.unlock t.mutex;
                  let r = apply_update dyn u_op in
                  let published = publish_built dyn ~build_seconds in
                  Mutex.lock t.mutex;
                  (* republish on the same entry only: an evict/re-load that
                     raced the update owns the name now *)
                  (match Hashtbl.find_opt t.entries u_name with
                  | Some e' when e' == e ->
                      e'.e_status <- Ready published;
                      (match r with
                      | Ok { applied = true; reclaimed = 0; _ } ->
                          (* a flush changes no live point, so the CSV still
                             describes the dataset; inserts/deletes diverge *)
                          e'.e_mutated <- true
                      | _ -> ())
                  | _ -> ());
                  reply r)
          | Some { e_status = Building; _ } ->
              reply
                (Error
                   ( "building",
                     Printf.sprintf "dataset %S is still building" u_name ))
          | Some { e_status = Failed m; _ } ->
              reply
                (Error
                   ( "build_failed",
                     Printf.sprintf "dataset %S failed to build: %s" u_name m ))
          | _ ->
              reply
                (Error
                   ( "not_found",
                     Printf.sprintf "dataset %S is not loaded" u_name )))
    end
  done;
  (* drain: outstanding update waiters must not hang on shutdown *)
  Queue.iter
    (function
      | Build _ -> ()
      | Update { u_cell; _ } ->
          u_cell := Some (Error ("internal", "registry is shut down")))
    t.queue;
  Queue.clear t.queue;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let create ?max_length () =
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      entries = Hashtbl.create 16;
      queue = Queue.create ();
      max_length;
      stop = false;
      worker = None;
    }
  in
  t.worker <- Some (Thread.create worker_loop t);
  t

let shutdown t =
  let worker =
    locked t (fun () ->
        t.stop <- true;
        Condition.broadcast t.cond;
        let w = t.worker in
        t.worker <- None;
        w)
  in
  match worker with Some w -> Thread.join w | None -> ()

let load ?(shards = 1) ?(approx = 0.) t ~name ~path =
  let shards = max 1 shards in
  let approx = if approx > 0. then approx else 0. in
  (* one read serves both the fingerprint and the parser, so the hash always
     matches the points actually loaded (hashing and re-reading the file
     separately raced concurrent rewrites) *)
  let contents =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let c = really_input_string ic (in_channel_length ic) in
          (* fstat the descriptor the bytes came from: the signature can
             never describe a different file than the hash does *)
          let st = Unix.fstat (Unix.descr_of_in_channel ic) in
          (c, Fingerprint.sig_of_stats st))
    with
    | c -> Ok c
    | exception Sys_error m -> Error m
    | exception Unix.Unix_error (e, _, _) -> Error (path ^ ": " ^ Unix.error_message e)
    | exception End_of_file -> Error (path ^ ": truncated read")
  in
  match contents with
  | Error m -> Error m
  | Ok (contents, stat_sig) -> (
      let fp = Fingerprint.of_string contents in
      match
        try Ok (Dataset.normalize (Csv_io.parse_string ~name ~path contents))
        with
        | Failure m -> Error m
        | Invalid_argument m -> Error (path ^ ": " ^ m)
      with
      | Error m -> Error m
      | Ok ds ->
          locked t (fun () ->
              if t.stop then Error "registry is shut down"
              else begin
                Obs.Counter.incr c_loads;
                match Hashtbl.find_opt t.entries name with
                | Some ({ e_status = Failed _; _ } as e)
                  when String.equal e.e_fingerprint fp
                       && e.e_shards = shards
                       && Float.equal e.e_approx approx ->
                    (* same bytes, but the build failed (possibly
                       transiently): an explicit re-load retries instead of
                       parroting the stale failure forever *)
                    Obs.Counter.incr c_build_retries;
                    e.e_stat <- stat_sig;
                    e.e_status <- Building;
                    e.e_dyn <- None;
                    Queue.push (Build (name, fp)) t.queue;
                    Condition.broadcast t.cond;
                    Ok (snapshot e)
                | Some e
                  when String.equal e.e_fingerprint fp
                       && e.e_shards = shards
                       && Float.equal e.e_approx approx ->
                    (* unchanged bytes at the same shard count and ε: keep
                       the build (or its result) — concurrent loads of the
                       same file are idempotent and enqueue no duplicate
                       job. A different shard count or ε is a different
                       materialization and falls through to a rebuild. The
                       signature still refreshes: the bytes were re-verified
                       just now, so a mere touch stops forcing re-hashes on
                       every query. *)
                    e.e_stat <- stat_sig;
                    Ok (snapshot e)
                | _ ->
                    let e =
                      {
                        e_name = name;
                        e_path = path;
                        e_fingerprint = fp;
                        e_stat = stat_sig;
                        e_shards = shards;
                        e_approx = approx;
                        points = ds.Dataset.points;
                        e_dyn = None;
                        e_mutated = false;
                        e_status = Building;
                      }
                    in
                    Hashtbl.replace t.entries name e;
                    Obs.Gauge.set_int g_datasets (Hashtbl.length t.entries);
                    Queue.push (Build (name, fp)) t.queue;
                    Condition.broadcast t.cond;
                    Ok (snapshot e)
              end))

let update t ~name op =
  let cell = ref None in
  let enqueued =
    locked t (fun () ->
        if t.stop then Error ("internal", "registry is shut down")
        else
          match Hashtbl.find_opt t.entries name with
          | None ->
              Error
                ("not_found", Printf.sprintf "dataset %S is not loaded" name)
          | Some { e_shards; e_approx; _ }
            when static_reason ~shards:e_shards ~approx:e_approx name <> None
            ->
              Error
                ( "static_dataset",
                  Option.get
                    (static_reason ~shards:e_shards ~approx:e_approx name) )
          | Some { e_status = Building; _ } ->
              Error
                ( "building",
                  Printf.sprintf "dataset %S is still building" name )
          | Some { e_status = Failed m; _ } ->
              Error
                ( "build_failed",
                  Printf.sprintf "dataset %S failed to build: %s" name m )
          | Some e ->
              Queue.push
                (Update
                   {
                     u_name = name;
                     u_fingerprint = e.e_fingerprint;
                     u_op = op;
                     u_cell = cell;
                   })
                t.queue;
              Condition.broadcast t.cond;
              Ok ())
  in
  match enqueued with
  | Error _ as e ->
      Obs.Counter.incr c_update_failures;
      e
  | Ok () ->
      locked t (fun () ->
          while !cell = None && not t.stop do
            Condition.wait t.cond t.mutex
          done;
          match !cell with
          | Some r -> r
          | None -> Error ("internal", "registry is shut down"))

let find t name =
  locked t (fun () ->
      Option.map snapshot (Hashtbl.find_opt t.entries name))

let list t =
  locked t (fun () ->
      Hashtbl.fold (fun _ e acc -> snapshot e :: acc) t.entries []
      |> List.sort (fun a b -> String.compare a.name b.name))

(* Returns the evicted entry's fingerprint so the caller can purge exactly
   the cache rows of the entry that was removed: fetching the fingerprint
   with a separate [find] first raced a concurrent re-load, leaving the new
   entry's rows purged and the dead entry's rows behind. *)
let evict t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | None -> None
      | Some e ->
          Hashtbl.remove t.entries name;
          Obs.Gauge.set_int g_datasets (Hashtbl.length t.entries);
          Some e.e_fingerprint)

let fresh _t info =
  if info.mutated then
    (* the dataset has diverged from its CSV by design: the file is a seed,
       not the source of truth, and rewrites of it are irrelevant until the
       next explicit re-load *)
    Ok ()
  else
    match Fingerprint.sig_of_path info.path with
    | Ok s when s = info.stat ->
        (* fast path (the per-query common case): same inode, size and
           mtime as when the bytes were hashed — nothing to re-read *)
        Ok ()
    | Ok _ | Error _ -> (
    match Fingerprint.of_file info.path with
    | Error m ->
        Obs.Counter.incr c_stale;
        Error
          (Printf.sprintf
             "dataset %S: backing file %s is no longer readable (%s); re-load it"
             info.name info.path m)
    | Ok fp ->
        if String.equal fp info.fingerprint then Ok ()
        else begin
          Obs.Counter.incr c_stale;
          Error
            (Printf.sprintf
               "dataset %S: %s changed on disk since load (loaded %s, file now \
                hashes to %s); re-load it"
               info.name info.path info.fingerprint fp)
        end)
