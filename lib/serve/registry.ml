module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Csv_io = Kregret_dataset.Csv_io
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Obs = Kregret_obs

let c_loads =
  Obs.Registry.counter "serve.registry.loads" ~help:"load requests accepted"

let c_builds =
  Obs.Registry.counter "serve.registry.builds" ~help:"background builds completed"

let c_build_failures =
  Obs.Registry.counter "serve.registry.build_failures"
    ~help:"background builds that raised"

let c_stale =
  Obs.Registry.counter "serve.stale_rejections"
    ~help:"queries rejected because the CSV changed on disk after load"

let g_datasets =
  Obs.Registry.gauge "serve.registry.datasets" ~help:"datasets currently registered"

type built = {
  happy : Vector.t array;
  orig_of_happy : int array;
  stored : Stored_list.t;
  n_sky : int;
  build_seconds : float;
}

type status = Building | Ready of built | Failed of string

type info = {
  name : string;
  path : string;
  fingerprint : string;
  n : int;
  d : int;
  status : status;
}

type entry = {
  e_name : string;
  e_path : string;
  e_fingerprint : string;
  points : Vector.t array;  (* normalized rows, the "original" index space *)
  mutable e_status : status;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  entries : (string, entry) Hashtbl.t;
  queue : (string * string) Queue.t;  (* (name, fingerprint) build jobs *)
  max_length : int option;
  mutable stop : bool;
  mutable worker : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let snapshot e =
  {
    name = e.e_name;
    path = e.e_path;
    fingerprint = e.e_fingerprint;
    n = Array.length e.points;
    d = (if Array.length e.points = 0 then 0 else Vector.dim e.points.(0));
    status = e.e_status;
  }

(* The full offline pipeline of the paper: skyline -> happy points ->
   GeoGreedy materialization. Runs on the build thread; the hot loops
   inside use the global domain pool. *)
let build ~max_length points =
  let t0 = Unix.gettimeofday () in
  try
    Obs.Span.with_ "serve.build" (fun () ->
        let sky_idx = Skyline.sfs points in
        let sky = Array.map (fun i -> points.(i)) sky_idx in
        let happy_idx = Happy.happy_points sky in
        let happy = Array.map (fun i -> sky.(i)) happy_idx in
        let orig_of_happy = Array.map (fun i -> sky_idx.(i)) happy_idx in
        let stored = Stored_list.preprocess ?max_length happy in
        Obs.Counter.incr c_builds;
        Ready
          {
            happy;
            orig_of_happy;
            stored;
            n_sky = Array.length sky_idx;
            build_seconds = Unix.gettimeofday () -. t0;
          })
  with e ->
    Obs.Counter.incr c_build_failures;
    Failed (Printexc.to_string e)

let worker_loop t =
  Mutex.lock t.mutex;
  while not t.stop do
    if Queue.is_empty t.queue then Condition.wait t.cond t.mutex
    else begin
      let name, fp = Queue.pop t.queue in
      match Hashtbl.find_opt t.entries name with
      | Some e
        when String.equal e.e_fingerprint fp
             && (match e.e_status with Building -> true | _ -> false) ->
          let points = e.points in
          Mutex.unlock t.mutex;
          let status = build ~max_length:t.max_length points in
          Mutex.lock t.mutex;
          (* the entry may have been evicted or replaced while we built *)
          (match Hashtbl.find_opt t.entries name with
          | Some e' when String.equal e'.e_fingerprint fp ->
              e'.e_status <- status
          | _ -> ())
      | _ -> ()  (* superseded or evicted job *)
    end
  done;
  Mutex.unlock t.mutex

let create ?max_length () =
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      entries = Hashtbl.create 16;
      queue = Queue.create ();
      max_length;
      stop = false;
      worker = None;
    }
  in
  t.worker <- Some (Thread.create worker_loop t);
  t

let shutdown t =
  let worker =
    locked t (fun () ->
        t.stop <- true;
        Condition.broadcast t.cond;
        let w = t.worker in
        t.worker <- None;
        w)
  in
  match worker with Some w -> Thread.join w | None -> ()

let load t ~name ~path =
  match Fingerprint.of_file path with
  | Error m -> Error m
  | Ok fp -> (
      match
        try Ok (Dataset.normalize (Csv_io.load ~name path)) with
        | Failure m -> Error m
        | Invalid_argument m -> Error (path ^ ": " ^ m)
      with
      | Error m -> Error m
      | Ok ds ->
          locked t (fun () ->
              if t.stop then Error "registry is shut down"
              else begin
                Obs.Counter.incr c_loads;
                match Hashtbl.find_opt t.entries name with
                | Some e when String.equal e.e_fingerprint fp ->
                    (* unchanged bytes: keep the build (or its result) *)
                    Ok (snapshot e)
                | _ ->
                    let e =
                      {
                        e_name = name;
                        e_path = path;
                        e_fingerprint = fp;
                        points = ds.Dataset.points;
                        e_status = Building;
                      }
                    in
                    Hashtbl.replace t.entries name e;
                    Obs.Gauge.set_int g_datasets (Hashtbl.length t.entries);
                    Queue.push (name, fp) t.queue;
                    Condition.broadcast t.cond;
                    Ok (snapshot e)
              end))

let find t name =
  locked t (fun () ->
      Option.map snapshot (Hashtbl.find_opt t.entries name))

let list t =
  locked t (fun () ->
      Hashtbl.fold (fun _ e acc -> snapshot e :: acc) t.entries []
      |> List.sort (fun a b -> String.compare a.name b.name))

let evict t name =
  locked t (fun () ->
      let existed = Hashtbl.mem t.entries name in
      Hashtbl.remove t.entries name;
      if existed then Obs.Gauge.set_int g_datasets (Hashtbl.length t.entries);
      existed)

let fresh _t info =
  match Fingerprint.of_file info.path with
  | Error m ->
      Obs.Counter.incr c_stale;
      Error
        (Printf.sprintf
           "dataset %S: backing file %s is no longer readable (%s); re-load it"
           info.name info.path m)
  | Ok fp ->
      if String.equal fp info.fingerprint then Ok ()
      else begin
        Obs.Counter.incr c_stale;
        Error
          (Printf.sprintf
             "dataset %S: %s changed on disk since load (loaded %s, file now \
              hashes to %s); re-load it"
             info.name info.path info.fingerprint fp)
      end
