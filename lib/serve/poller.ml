(* Event-driven IO core: one select loop, a self-pipe, a worker pool.
   Locking: a single mutex guards every connection record, the job queue
   and the stop flags; the IO thread drops it around [select] AND around
   every per-connection syscall (holding it across reads/writes would make
   the critical section O(connections) and starve the workers — measured
   as a 13x throughput collapse at 100 clients). The IO thread is the only
   closer of fds, so a descriptor in a select set can never be closed out
   from under it. *)

type frame = Line of string | Too_long

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_acc : Buffer.t;  (* partial line carried across reads *)
  c_lines : frame Queue.t;  (* complete frames awaiting dispatch *)
  c_out : Buffer.t;  (* response bytes not yet handed to the writer *)
  mutable c_wchunk : string;  (* IO-owned write chunk in flight *)
  mutable c_wpos : int;
  mutable c_busy : bool;  (* one in-flight request on a worker *)
  mutable c_read_closed : bool;  (* EOF seen, or input abandoned *)
  mutable c_close_after_flush : bool;
  mutable c_dead : bool;
}

type t = {
  m : Mutex.t;
  jobs_cond : Condition.t;
  jobs : (int * frame) Queue.t;
  conns : (int, conn) Hashtbl.t;
  by_fd : (Unix.file_descr, conn) Hashtbl.t;  (* IO thread only *)
  mutable listeners : Unix.file_descr list;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable wake_closed : bool;
  hello : string;
  handle : string -> string * bool;
  too_long : unit -> string;
  max_line : int;
  drain_timeout : float;
  on_accept : unit -> unit;
  mutable next_id : int;
  mutable accepted : int;
  mutable stopping : bool;
  mutable stop_workers : bool;
  mutable worker_threads : Thread.t list;
  scratch : Bytes.t;  (* IO-thread-only read buffer *)
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let wake t =
  (* one byte is enough; a full pipe already guarantees a wakeup *)
  if not t.wake_closed then
    try ignore (Unix.write_substring t.wake_w "w" 0 1)
    with Unix.Unix_error _ -> ()

(* pending-line cap: a pipelining client stops being read (backpressure)
   once this many frames await dispatch, instead of buffering unboundedly *)
let max_pending = 64

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* IO thread only, mutex held. Removing from the tables is what keeps
   state bounded: a finished connection leaves nothing behind. *)
let destroy t c =
  if not c.c_dead then begin
    c.c_dead <- true;
    Hashtbl.remove t.conns c.c_id;
    Hashtbl.remove t.by_fd c.c_fd;
    close_fd c.c_fd
  end

(* mutex held: [c_out] is appended to by workers *)
let out_pending c =
  String.length c.c_wchunk > c.c_wpos || Buffer.length c.c_out > 0

(* called with the mutex held *)
let dispatch t c =
  if (not c.c_busy) && (not c.c_dead) && not (Queue.is_empty c.c_lines) then begin
    c.c_busy <- true;
    Queue.push (c.c_id, Queue.pop c.c_lines) t.jobs;
    Condition.signal t.jobs_cond
  end

(* worker body: pop a job, run the handler off the lock, append the
   response, hand the connection back to the IO thread *)
let worker_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.jobs && not t.stop_workers do
      Condition.wait t.jobs_cond t.m
    done;
    if Queue.is_empty t.jobs && t.stop_workers then Mutex.unlock t.m
    else begin
      let id, frame = Queue.pop t.jobs in
      Mutex.unlock t.m;
      let resp, close_after =
        match frame with
        | Too_long -> (t.too_long (), true)
        | Line line -> (
            try t.handle line
            with _ -> ("", true) (* [handle] is total; belt and braces *))
      in
      Mutex.lock t.m;
      (match Hashtbl.find_opt t.conns id with
      | None -> ()  (* the connection died while we computed *)
      | Some c ->
          if resp <> "" then begin
            Buffer.add_string c.c_out resp;
            Buffer.add_char c.c_out '\n'
          end;
          c.c_busy <- false;
          if close_after then begin
            c.c_close_after_flush <- true;
            c.c_read_closed <- true;
            Queue.clear c.c_lines
          end
          else dispatch t c);
      Mutex.unlock t.m;
      wake t;
      loop ()
    end
  in
  loop ()

let create ?(workers = 4) ?(max_line = 65536) ?(drain_timeout = 5.)
    ?(on_accept = fun () -> ()) ~listeners ~hello ~handle ~too_long () =
  if workers < 1 then invalid_arg "Poller.create: workers < 1";
  if max_line < 1 then invalid_arg "Poller.create: max_line < 1";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      m = Mutex.create ();
      jobs_cond = Condition.create ();
      jobs = Queue.create ();
      conns = Hashtbl.create 64;
      by_fd = Hashtbl.create 64;
      listeners;
      wake_r;
      wake_w;
      wake_closed = false;
      hello;
      handle;
      too_long;
      max_line;
      drain_timeout;
      on_accept;
      next_id = 0;
      accepted = 0;
      stopping = false;
      stop_workers = false;
      worker_threads = [];
      scratch = Bytes.create 8192;
    }
  in
  t.worker_threads <-
    List.init workers (fun _ -> Thread.create worker_loop t);
  t

let stop t =
  locked t (fun () -> t.stopping <- true);
  wake t

let live_connections t = locked t (fun () -> Hashtbl.length t.conns)
let accepted t = locked t (fun () -> t.accepted)

(* ---- IO-thread helpers (mutex held unless noted) -------------------------- *)

let accept_new t lfd =
  let rec drain () =
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
        if t.stopping then close_fd fd
        else begin
          (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
          (* latency over throughput: single small frames per round trip *)
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          let id = t.next_id in
          t.next_id <- id + 1;
          t.accepted <- t.accepted + 1;
          t.on_accept ();
          let c =
            {
              c_id = id;
              c_fd = fd;
              c_acc = Buffer.create 256;
              c_lines = Queue.create ();
              c_out = Buffer.create 256;
              c_wchunk = "";
              c_wpos = 0;
              c_busy = false;
              c_read_closed = false;
              c_close_after_flush = false;
              c_dead = false;
            }
          in
          Buffer.add_string c.c_out t.hello;
          Buffer.add_char c.c_out '\n';
          Hashtbl.replace t.conns id c;
          Hashtbl.replace t.by_fd fd c;
          drain ()
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EPERM), _, _) ->
        drain ()
    | exception Unix.Unix_error _ -> ()
  in
  drain ()

(* frame complete lines out of a freshly read chunk (cf. Protocol.reader,
   which owns the same framing for the blocking client side) *)
let ingest t c chunk len =
  let push_frame f =
    match f with
    | Too_long ->
        (* framing is no longer trustworthy: answer, then close; anything
           already buffered after the oversized frame is abandoned *)
        Queue.push Too_long c.c_lines;
        c.c_read_closed <- true;
        Buffer.clear c.c_acc
    | Line l -> if String.trim l <> "" then Queue.push (Line l) c.c_lines
  in
  let i = ref 0 in
  while !i < len && not c.c_read_closed do
    let nl = ref (-1) in
    let j = ref !i in
    while !nl < 0 && !j < len do
      if Bytes.get chunk !j = '\n' then nl := !j;
      incr j
    done;
    if !nl < 0 then begin
      Buffer.add_subbytes c.c_acc chunk !i (len - !i);
      i := len;
      if Buffer.length c.c_acc > t.max_line then push_frame Too_long
    end
    else begin
      Buffer.add_subbytes c.c_acc chunk !i (!nl - !i);
      i := !nl + 1;
      let line = Buffer.contents c.c_acc in
      Buffer.clear c.c_acc;
      let line =
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
      in
      if String.length line > t.max_line then push_frame Too_long
      else push_frame (Line line)
    end
  done;
  dispatch t c

(* IO thread, mutex NOT held around the syscall: the fd and [scratch] are
   IO-owned, so only the shared state updates take the lock *)
let read_conn t c =
  match Unix.read c.c_fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 ->
      (* close once drained, in the sweep *)
      locked t (fun () -> c.c_read_closed <- true)
  | n -> locked t (fun () -> ingest t c t.scratch n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> locked t (fun () -> destroy t c)
  | exception _ -> locked t (fun () -> destroy t c)

(* IO thread. [c_wchunk] is IO-owned; only the swap out of the shared
   [c_out] buffer takes the lock, the write syscall runs without it *)
let write_conn t c =
  if c.c_wpos >= String.length c.c_wchunk then
    locked t (fun () ->
        c.c_wchunk <- Buffer.contents c.c_out;
        c.c_wpos <- 0;
        Buffer.clear c.c_out);
  let len = String.length c.c_wchunk in
  if c.c_wpos < len then
    match Unix.write_substring c.c_fd c.c_wchunk c.c_wpos (len - c.c_wpos) with
    | n ->
        c.c_wpos <- c.c_wpos + n;
        if c.c_wpos >= len then begin
          c.c_wchunk <- "";
          c.c_wpos <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> locked t (fun () -> destroy t c)
    | exception _ -> locked t (fun () -> destroy t c)

(* a connection with nothing left to do goes away; the table only ever
   holds live connections *)
let sweep t =
  let closable =
    Hashtbl.fold
      (fun _ c acc ->
        let flushed = not (out_pending c) in
        if
          flushed
          && (c.c_close_after_flush
             || (c.c_read_closed && (not c.c_busy) && Queue.is_empty c.c_lines))
        then c :: acc
        else acc)
      t.conns []
  in
  List.iter (fun c -> destroy t c) closable

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let run t =
  let stop_seen = ref false in
  let deadline = ref infinity in
  let finished = ref false in
  while not !finished do
    let reads, writes, timeout =
      locked t (fun () ->
          if t.stopping && not !stop_seen then begin
            stop_seen := true;
            deadline := Unix.gettimeofday () +. t.drain_timeout;
            List.iter close_fd t.listeners;
            t.listeners <- [];
            (* no further input: drain what is already in flight *)
            Hashtbl.iter (fun _ c -> c.c_read_closed <- true) t.conns
          end;
          sweep t;
          if !stop_seen && Hashtbl.length t.conns = 0 then (None, [], 0.)
          else begin
            let reads = ref [ t.wake_r ] in
            List.iter (fun fd -> reads := fd :: !reads) t.listeners;
            let writes = ref [] in
            Hashtbl.iter
              (fun _ c ->
                if
                  (not c.c_read_closed)
                  && Queue.length c.c_lines < max_pending
                then reads := c.c_fd :: !reads;
                if out_pending c then writes := c.c_fd :: !writes)
              t.conns;
            let timeout = if !stop_seen then 0.05 else -1. in
            (Some !reads, !writes, timeout)
          end)
    in
    match reads with
    | None -> finished := true
    | Some reads -> (
        if !stop_seen && Unix.gettimeofday () > !deadline then
          (* drain took too long (a wedged peer, a stuck handler):
             force-close the stragglers — shutdown must never hang *)
          locked t (fun () ->
              Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
              |> List.iter (fun c -> destroy t c))
        else
          match Unix.select reads writes [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.EBADF, _, _) ->
              (* cannot happen by construction (only this thread closes
                 fds), but never spin on it *)
              locked t (fun () -> sweep t)
          | ready_r, ready_w, _ ->
              (* [by_fd] and the dead flags are IO-thread-owned: the only
                 lock taken here is inside the per-connection helpers, so
                 workers keep publishing while we service other fds *)
              List.iter
                (fun fd ->
                  if fd = t.wake_r then drain_wake t
                  else if List.memq fd t.listeners then
                    locked t (fun () -> accept_new t fd)
                  else
                    match Hashtbl.find_opt t.by_fd fd with
                    | Some c when not c.c_dead -> read_conn t c
                    | _ -> ())
                ready_r;
              List.iter
                (fun fd ->
                  match Hashtbl.find_opt t.by_fd fd with
                  | Some c when not c.c_dead -> write_conn t c
                  | _ -> ())
                ready_w)
  done;
  (* listeners are gone and the table is empty: retire the workers *)
  locked t (fun () ->
      t.stop_workers <- true;
      Condition.broadcast t.jobs_cond);
  List.iter Thread.join t.worker_threads;
  locked t (fun () ->
      t.wake_closed <- true;
      close_fd t.wake_r;
      close_fd t.wake_w)
