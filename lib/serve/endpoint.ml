type t = Unix_path of string | Tcp of string * int

let parse spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad endpoint %S (expected unix:PATH or tcp:HOST:PORT)" spec)
  in
  match String.index_opt spec ':' with
  | None -> if spec = "" then fail () else Ok (Unix_path spec)
  | Some i -> (
      let scheme = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match scheme with
      | "unix" -> if rest = "" then fail () else Ok (Unix_path rest)
      | "tcp" -> (
          (* split on the LAST ':' so IPv6 literals keep their colons *)
          match String.rindex_opt rest ':' with
          | None -> fail ()
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p <= 65535 && host <> "" ->
                  Ok (Tcp (host, p))
              | _ -> fail ()))
      | _ -> fail ())

let to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "host %S resolves to no address" host)
      | h -> Ok h.Unix.h_addr_list.(0)
      | exception Not_found -> Error (Printf.sprintf "unknown host %S" host))

let protect_fd fd f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let listen ?(backlog = 128) ep =
  match ep with
  | Unix_path path -> (
      if Sys.file_exists path then (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | fd ->
          protect_fd fd (fun () ->
              Unix.bind fd (Unix.ADDR_UNIX path);
              Unix.listen fd backlog;
              Unix.set_nonblock fd;
              fd))
  | Tcp (host, port) -> (
      match resolve_host host with
      | Error m -> Error (to_string ep ^ ": " ^ m)
      | Ok addr -> (
          let domain = Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, port)) in
          match Unix.socket domain Unix.SOCK_STREAM 0 with
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | fd ->
              protect_fd fd (fun () ->
                  Unix.setsockopt fd Unix.SO_REUSEADDR true;
                  Unix.bind fd (Unix.ADDR_INET (addr, port));
                  Unix.listen fd backlog;
                  Unix.set_nonblock fd;
                  fd)))

let connect ep =
  match ep with
  | Unix_path path -> (
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | fd ->
          Result.map_error
            (fun m -> path ^ ": " ^ m)
            (protect_fd fd (fun () ->
                 Unix.connect fd (Unix.ADDR_UNIX path);
                 fd)))
  | Tcp (host, port) -> (
      match resolve_host host with
      | Error m -> Error (to_string ep ^ ": " ^ m)
      | Ok addr -> (
          let sockaddr = Unix.ADDR_INET (addr, port) in
          match Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 with
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | fd ->
              Result.map_error
                (fun m -> to_string ep ^ ": " ^ m)
                (protect_fd fd (fun () ->
                     Unix.connect fd sockaddr;
                     (try Unix.setsockopt fd Unix.TCP_NODELAY true
                      with Unix.Unix_error _ -> ());
                     fd))))

let local_of_fd ~fd ep =
  match ep with
  | Unix_path _ -> ep
  | Tcp (host, port) -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, bound) -> Tcp (host, bound)
      | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> Tcp (host, port))

let unlink_if_unix = function
  | Tcp _ -> ()
  | Unix_path path ->
      if Sys.file_exists path then (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
