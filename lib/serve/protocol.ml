let version = "kregret-serve/v1"
let default_max_line = 65536

type request =
  | Ping
  | List
  | Stats
  | Shutdown
  | Load of {
      name : string;
      path : string;
      shards : int option;
      approx : float option;
    }
  | Query of { name : string; k : int }
  | Mrr of { name : string; k : int }
  | Rank_regret of { name : string; k : int }
  | Evict of { name : string option }
  | Insert of { name : string; point : float array }
  | Delete of { name : string; id : int }
  | Flush of { name : string }

type error = { code : string; message : string }

let err ~code message = { code; message }

(* ---- request parsing ----------------------------------------------------- *)

let field_str obj key =
  match Json.member key obj with
  | None -> Error (err ~code:"missing_field" (Printf.sprintf "%S is required" key))
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok s
      | None ->
          Error
            (err ~code:"bad_field" (Printf.sprintf "%S must be a string" key)))

let field_k obj =
  match Json.member "k" obj with
  | None -> Error (err ~code:"missing_field" "\"k\" is required")
  | Some v -> (
      match Json.to_int v with
      | Some k when k >= 1 -> Ok k
      | Some k ->
          Error
            (err ~code:"bad_field"
               (Printf.sprintf "\"k\" must be a positive integer (got %d)" k))
      | None -> Error (err ~code:"bad_field" "\"k\" must be a positive integer"))

let field_id obj =
  match Json.member "id" obj with
  | None -> Error (err ~code:"missing_field" "\"id\" is required")
  | Some v -> (
      match Json.to_int v with
      | Some id when id >= 0 -> Ok id
      | Some id ->
          Error
            (err ~code:"bad_field"
               (Printf.sprintf "\"id\" must be a non-negative integer (got %d)" id))
      | None ->
          Error (err ~code:"bad_field" "\"id\" must be a non-negative integer"))

let field_point obj =
  match Json.member "point" obj with
  | None -> Error (err ~code:"missing_field" "\"point\" is required")
  | Some v -> (
      match Json.to_list v with
      | None -> Error (err ~code:"bad_field" "\"point\" must be an array of numbers")
      | Some [] -> Error (err ~code:"bad_field" "\"point\" must be non-empty")
      | Some elems -> (
          let coords = List.filter_map Json.to_float elems in
          if List.length coords <> List.length elems then
            Error (err ~code:"bad_field" "\"point\" must be an array of numbers")
          else Ok (Array.of_list coords)))

let field_shards obj =
  match Json.member "shards" obj with
  | None -> Ok None
  | Some v -> (
      match Json.to_int v with
      | Some s when s >= 1 -> Ok (Some s)
      | Some s ->
          Error
            (err ~code:"bad_field"
               (Printf.sprintf "\"shards\" must be a positive integer (got %d)" s))
      | None ->
          Error (err ~code:"bad_field" "\"shards\" must be a positive integer"))

let field_approx obj =
  match Json.member "approx" obj with
  | None -> Ok None
  | Some v -> (
      match Json.to_float v with
      | Some a when Float.is_finite a && a > 0. && a <= 1. -> Ok (Some a)
      | Some _ | None ->
          Error
            (err ~code:"bad_field" "\"approx\" must be a number in (0, 1]"))

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let parse_request ?(max_line = default_max_line) line =
  if String.length line > max_line then
    Error
      (err ~code:"frame_too_large"
         (Printf.sprintf "frame is %d bytes; the limit is %d" (String.length line)
            max_line))
  else
    match Json.parse line with
    | Error m -> Error (err ~code:"parse_error" m)
    | Ok (Json.Obj _ as obj) -> (
        match Json.member "op" obj with
        | None -> Error (err ~code:"missing_field" "\"op\" is required")
        | Some op -> (
            match Json.to_str op with
            | None -> Error (err ~code:"bad_field" "\"op\" must be a string")
            | Some "ping" -> Ok Ping
            | Some "list" -> Ok List
            | Some "stats" -> Ok Stats
            | Some "shutdown" -> Ok Shutdown
            | Some "load" ->
                let* name = field_str obj "name" in
                let* path = field_str obj "path" in
                let* shards = field_shards obj in
                let* approx = field_approx obj in
                Ok (Load { name; path; shards; approx })
            | Some "query" ->
                let* name = field_str obj "name" in
                let* k = field_k obj in
                Ok (Query { name; k })
            | Some "mrr" ->
                let* name = field_str obj "name" in
                let* k = field_k obj in
                Ok (Mrr { name; k })
            | Some "rank_regret" ->
                let* name = field_str obj "name" in
                let* k = field_k obj in
                Ok (Rank_regret { name; k })
            | Some "insert" ->
                let* name = field_str obj "name" in
                let* point = field_point obj in
                Ok (Insert { name; point })
            | Some "delete" ->
                let* name = field_str obj "name" in
                let* id = field_id obj in
                Ok (Delete { name; id })
            | Some "flush" ->
                let* name = field_str obj "name" in
                Ok (Flush { name })
            | Some "evict" -> (
                match Json.member "name" obj with
                | None -> Ok (Evict { name = None })
                | Some v -> (
                    match Json.to_str v with
                    | Some name -> Ok (Evict { name = Some name })
                    | None ->
                        Error
                          (err ~code:"bad_field" "\"name\" must be a string")))
            | Some other ->
                Error
                  (err ~code:"unknown_op"
                     (Printf.sprintf "unknown op %S" other))))
    | Ok _ -> Error (err ~code:"bad_request" "request must be a JSON object")

(* ---- response frames ----------------------------------------------------- *)

let hello = Json.to_string (Json.Obj [ ("ok", Bool true); ("hello", Str version) ])
let ok_response fields = Json.to_string (Json.Obj (("ok", Bool true) :: fields))

let error_response ?retry_after { code; message } =
  let base =
    [
      ("ok", Json.Bool false);
      ("error", Json.Obj [ ("code", Str code); ("message", Str message) ]);
    ]
  in
  let fields =
    match retry_after with
    | Some seconds -> base @ [ ("retry_after", Json.Num seconds) ]
    | None -> base
  in
  Json.to_string (Json.Obj fields)

(* ---- framed line I/O ------------------------------------------------------

   A tiny buffered reader over a raw fd. One reader per connection; reads
   are chunked (4 KiB) and lines extracted from the buffer, so a pipelined
   client that sends several frames in one packet is handled correctly. *)

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable pos : int;  (** next unread byte in [chunk] *)
  mutable len : int;  (** valid bytes in [chunk] *)
  acc : Buffer.t;  (** partial line carried across reads *)
}

let reader fd =
  { fd; chunk = Bytes.create 4096; pos = 0; len = 0; acc = Buffer.create 256 }

let read_line r ~max =
  let rec loop () =
    if r.pos < r.len then begin
      (* scan the buffered chunk for a newline *)
      let nl = ref (-1) in
      let i = ref r.pos in
      while !nl < 0 && !i < r.len do
        if Bytes.get r.chunk !i = '\n' then nl := !i;
        incr i
      done;
      if !nl >= 0 then begin
        Buffer.add_subbytes r.acc r.chunk r.pos (!nl - r.pos);
        r.pos <- !nl + 1;
        let line = Buffer.contents r.acc in
        Buffer.clear r.acc;
        let line =
          let n = String.length line in
          if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
          else line
        in
        if String.length line > max then `Too_long else `Line line
      end
      else begin
        Buffer.add_subbytes r.acc r.chunk r.pos (r.len - r.pos);
        r.pos <- r.len;
        if Buffer.length r.acc > max then `Too_long else loop ()
      end
    end
    else
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
          if Buffer.length r.acc = 0 then `Eof
          else begin
            Buffer.clear r.acc;
            `Error "connection closed mid-frame"
          end
      | n ->
          r.pos <- 0;
          r.len <- n;
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)
      | exception e -> `Error (Printexc.to_string e)
  in
  loop ()

let write_line fd s =
  let payload = s ^ "\n" in
  let len = String.length payload in
  let rec send off =
    if off >= len then Ok ()
    else
      match Unix.write_substring fd payload off (len - off) with
      | n -> send (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | exception e -> Error (Printexc.to_string e)
  in
  send 0
