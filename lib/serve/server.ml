module Obs = Kregret_obs

let c_connections =
  Obs.Registry.counter "serve.connections" ~help:"accepted connections"

let c_requests = Obs.Registry.counter "serve.requests" ~help:"request frames handled"

let c_errors =
  Obs.Registry.counter "serve.errors" ~help:"requests answered with a structured error"

type config = {
  listeners : Endpoint.t list;
  cache_capacity : int;
  max_line : int;
  retry_after : float;
  max_length : int option;
  workers : int;
  shards : int;
  approx : float;  (* server-wide default ε for [load]; 0. = exact *)
}

let config ?(cache_capacity = 128) ?(max_line = Protocol.default_max_line)
    ?(retry_after = 0.05) ?max_length ?(workers = 4) ?(shards = 1)
    ?(approx = 0.) ?(listeners = []) ?socket_path () =
  if cache_capacity < 0 then invalid_arg "Server.config: cache_capacity < 0";
  if max_line < 1 then invalid_arg "Server.config: max_line < 1";
  if workers < 1 then invalid_arg "Server.config: workers < 1";
  if shards < 1 then invalid_arg "Server.config: shards < 1";
  if (not (Float.is_finite approx)) || approx < 0. || approx > 1. then
    invalid_arg "Server.config: approx must be in [0, 1]";
  let listeners =
    listeners
    @ match socket_path with Some p -> [ Endpoint.Unix_path p ] | None -> []
  in
  if listeners = [] then
    invalid_arg "Server.config: no listeners (pass ~listeners or ~socket_path)";
  {
    listeners;
    cache_capacity;
    max_line;
    retry_after;
    max_length;
    workers;
    shards;
    approx;
  }

(* cache values: one shape for [query] (selection + mrr), [mrr], and
   [rank_regret] (selection + certificate; c_mrr unused) *)
type cached = {
  c_selection : int list option;
  c_mrr : float;
  c_rank : (int * int * bool) option;  (* rank_lo, rank_hi, exact *)
}

(* cache/batch key: (fingerprint, shards, approx, epoch, k, kind). The
   epoch is the dataset's answer version, so an insert/delete invalidates
   by key churn — stale rows age out of the LRU with no explicit flush.
   The shard count and ε are part of the key because the same CSV loaded
   solo, sharded, exact or approximate shares a fingerprint while
   materializing independently: without them the registrations would
   share (and cross-fill) cache rows — approx and exact answers must
   never collide (the PR 4 cross-k lesson, one key dimension later). *)
type key = string * int * float * int * int * string

type t = {
  cfg : config;
  reg : Registry.t;
  cache : (key, cached) Lru.t;
  cache_mutex : Mutex.t;
  batcher : (key, cached) Batcher.t;
  resolved : Endpoint.t list;  (* as bound: tcp port 0 replaced *)
  mutable poller : Poller.t option;  (* set before the IO thread runs *)
  mutable io_thread : Thread.t option;
  state_mutex : Mutex.t;
  mutable stopped : bool;
  mutable requests : int;
  mutable errors : int;
  now : unit -> float;
      (* monotonic wall clock: uptime must never go negative across an NTP
         step (see [Kregret_obs.Control.monotonic_of]) *)
  started : float;
}

let registry t = t.reg
let endpoints t = t.resolved

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let poller_of t = with_lock t.state_mutex (fun () -> t.poller)

let live_connections t =
  match poller_of t with Some p -> Poller.live_connections p | None -> 0

let accepted_connections t =
  match poller_of t with Some p -> Poller.accepted p | None -> 0

(* ---- request handling ---------------------------------------------------- *)

let status_str status =
  match status with
  | Registry.Building -> "building"
  | Registry.Ready _ -> "ready"
  | Registry.Failed _ -> "failed"

let count_error t =
  with_lock t.state_mutex (fun () -> t.errors <- t.errors + 1);
  Obs.Counter.incr c_errors

let error t ?retry_after e =
  count_error t;
  Protocol.error_response ?retry_after e

let dataset_json info =
  let base =
    [
      ("name", Json.Str info.Registry.name);
      ("path", Json.Str info.Registry.path);
      ("fingerprint", Json.Str info.Registry.fingerprint);
      ("n", Json.int info.Registry.n);
      ("d", Json.int info.Registry.d);
      ("shards", Json.int info.Registry.shards);
      ("approx", Json.Num info.Registry.approx);
      ("status", Json.Str (status_str info.Registry.status));
    ]
  in
  let extra =
    match info.Registry.status with
    | Registry.Ready b ->
        [
          ("sky", Json.int b.Registry.n_sky);
          ("happy", Json.int b.Registry.n_happy);
          ( "materialized",
            Json.int (Registry.backend_stored_length b.Registry.backend) );
          ("live", Json.int (Registry.backend_live b.Registry.backend));
          ("epoch", Json.int (Registry.backend_epoch b.Registry.backend));
          ("mutated", Json.Bool info.Registry.mutated);
          ("build_seconds", Json.Num b.Registry.build_seconds);
        ]
    | Registry.Failed m -> [ ("error", Json.Str m) ]
    | Registry.Building -> []
  in
  Json.Obj (base @ extra)

let handle_load t ~name ~path ~shards ~approx =
  (* the wire fields win; otherwise the server-wide [--shards]/[--approx]
     defaults *)
  let shards = match shards with Some s -> s | None -> t.cfg.shards in
  let approx = match approx with Some a -> a | None -> t.cfg.approx in
  match Registry.load ~shards ~approx t.reg ~name ~path with
  | Error m -> error t (Protocol.err ~code:"load_failed" m)
  | Ok info ->
      Protocol.ok_response
        [
          ("op", Json.Str "load");
          ("name", Json.Str name);
          ("status", Json.Str (status_str info.Registry.status));
          ("fingerprint", Json.Str info.Registry.fingerprint);
          ("n", Json.int info.Registry.n);
          ("d", Json.int info.Registry.d);
          ("shards", Json.int info.Registry.shards);
          ("approx", Json.Num info.Registry.approx);
        ]

(* The serving hot path. Cache first; on a miss, coalesce concurrent
   identical computations through the batcher, so one StoredList prefix
   scan answers every in-flight duplicate. *)
let handle_query t ~name ~k ~kind =
  match Registry.find t.reg name with
  | None ->
      error t
        (Protocol.err ~code:"not_found"
           (Printf.sprintf "dataset %S is not loaded" name))
  | Some info -> (
      match info.Registry.status with
      | Registry.Building ->
          error t ~retry_after:t.cfg.retry_after
            (Protocol.err ~code:"building"
               (Printf.sprintf "dataset %S is still building" name))
      | Registry.Failed m ->
          error t
            (Protocol.err ~code:"build_failed"
               (Printf.sprintf "dataset %S failed to build: %s" name m))
      | Registry.Ready b -> (
          (* stale-reuse guard: the CSV on disk must still be the bytes this
             StoredList was built from *)
          match Registry.fresh t.reg info with
          | Error m -> error t (Protocol.err ~code:"stale_dataset" m)
          | Ok () ->
              let backend = b.Registry.backend in
              let key =
                ( info.Registry.fingerprint,
                  info.Registry.shards,
                  info.Registry.approx,
                  Registry.backend_epoch backend,
                  k,
                  kind )
              in
              let hit = with_lock t.cache_mutex (fun () -> Lru.get t.cache key) in
              let value, cached, coalesced =
                match hit with
                | Some v -> (v, true, false)
                | None ->
                    let v, coalesced =
                      Batcher.run t.batcher ~key (fun () ->
                          (* ids are the registry's stable external ids: row
                             indices of the loaded CSV, then fresh ids for
                             inserts *)
                          let ids, mrr = Registry.backend_query backend ~k in
                          let v =
                            {
                              c_selection =
                                (if kind = "query" then Some ids else None);
                              c_mrr = mrr;
                              c_rank = None;
                            }
                          in
                          with_lock t.cache_mutex (fun () ->
                              Lru.put t.cache key v);
                          v)
                    in
                    (v, false, coalesced)
              in
              let base =
                [
                  ("op", Json.Str kind);
                  ("name", Json.Str name);
                  ("k", Json.int k);
                  ("mrr", Json.Num value.c_mrr);
                  ("cached", Json.Bool cached);
                  ("coalesced", Json.Bool coalesced);
                ]
              in
              let fields =
                match value.c_selection with
                | Some sel ->
                    base @ [ ("selection", Json.Arr (List.map Json.int sel)) ]
                | None -> base
              in
              Protocol.ok_response fields))

(* rank_regret: the same cache/batch skeleton as [handle_query], with the
   sibling engine behind it. The key's kind dimension ("rank_regret" vs
   "query"/"mrr") keeps the two query families from sharing rows at equal
   (fingerprint, shards, approx, epoch, k) — a rank certificate and a
   regret selection at the same k are different answers. *)
let handle_rank_regret t ~name ~k =
  match Registry.find t.reg name with
  | None ->
      error t
        (Protocol.err ~code:"not_found"
           (Printf.sprintf "dataset %S is not loaded" name))
  | Some info -> (
      match info.Registry.status with
      | Registry.Building ->
          error t ~retry_after:t.cfg.retry_after
            (Protocol.err ~code:"building"
               (Printf.sprintf "dataset %S is still building" name))
      | Registry.Failed m ->
          error t
            (Protocol.err ~code:"build_failed"
               (Printf.sprintf "dataset %S failed to build: %s" name m))
      | Registry.Ready b -> (
          match Registry.fresh t.reg info with
          | Error m -> error t (Protocol.err ~code:"stale_dataset" m)
          | Ok () ->
              let backend = b.Registry.backend in
              let key =
                ( info.Registry.fingerprint,
                  info.Registry.shards,
                  info.Registry.approx,
                  Registry.backend_epoch backend,
                  k,
                  "rank_regret" )
              in
              let hit = with_lock t.cache_mutex (fun () -> Lru.get t.cache key) in
              let value, cached, coalesced =
                match hit with
                | Some v -> (v, true, false)
                | None ->
                    let v, coalesced =
                      Batcher.run t.batcher ~key (fun () ->
                          let ids, rank =
                            Registry.backend_rank_regret backend ~k
                          in
                          let v =
                            {
                              c_selection = Some ids;
                              c_mrr = 0.;
                              c_rank =
                                Some
                                  ( rank.Kregret_rrr.Rrr.lo,
                                    rank.Kregret_rrr.Rrr.hi,
                                    rank.Kregret_rrr.Rrr.exact );
                            }
                          in
                          with_lock t.cache_mutex (fun () ->
                              Lru.put t.cache key v);
                          v)
                    in
                    (v, false, coalesced)
              in
              let lo, hi, exact =
                match value.c_rank with
                | Some c -> c
                | None -> (0, 0, false)  (* unreachable: rrr rows carry c_rank *)
              in
              let sel = Option.value value.c_selection ~default:[] in
              Protocol.ok_response
                [
                  ("op", Json.Str "rank_regret");
                  ("name", Json.Str name);
                  ("k", Json.int k);
                  ("selection", Json.Arr (List.map Json.int sel));
                  ("rank_lo", Json.int lo);
                  ("rank_hi", Json.int hi);
                  ("exact", Json.Bool exact);
                  ("cached", Json.Bool cached);
                  ("coalesced", Json.Bool coalesced);
                ]))

(* insert/delete/flush: hand the op to the registry worker and block this
   worker thread until the incremental repair is published. [building]
   gets the retry hint, like queries. *)
let handle_update t ~name ~kind op =
  match Registry.update t.reg ~name op with
  | Error (("building" as code), m) ->
      error t ~retry_after:t.cfg.retry_after (Protocol.err ~code m)
  | Error (code, m) -> error t (Protocol.err ~code m)
  | Ok o ->
      let base =
        [
          ("op", Json.Str kind);
          ("name", Json.Str name);
          ("applied", Json.Bool o.Registry.applied);
          ("live", Json.int o.Registry.live);
          ("epoch", Json.int o.Registry.epoch);
        ]
      in
      let extra =
        match (o.Registry.inserted_id, kind) with
        | Some id, _ -> [ ("id", Json.int id) ]
        | None, "flush" -> [ ("reclaimed", Json.int o.Registry.reclaimed) ]
        | None, _ -> []
      in
      Protocol.ok_response (base @ extra)

let handle_evict t ~name =
  match name with
  | None ->
      with_lock t.cache_mutex (fun () -> Lru.clear t.cache);
      Protocol.ok_response [ ("op", Json.Str "evict"); ("cleared", Json.Str "cache") ]
  | Some name ->
      (* eviction and cache purge key off one atomic registry removal: the
         evict returns the fingerprint of exactly the entry it removed, so a
         re-load racing this evict keeps its own (new) cache rows and the
         dead entry's rows cannot survive behind a fresh fingerprint read *)
      let evicted_fp = Registry.evict t.reg name in
      (match evicted_fp with
      | Some fp ->
          with_lock t.cache_mutex (fun () ->
              List.iter
                (fun ((kfp, _, _, _, _, _) as key) ->
                  if String.equal kfp fp then ignore (Lru.remove t.cache key))
                (Lru.keys_mru t.cache))
      | None -> ());
      Protocol.ok_response
        [
          ("op", Json.Str "evict");
          ("name", Json.Str name);
          ("evicted", Json.Bool (Option.is_some evicted_fp));
        ]

let handle_stats t =
  let cs = Lru.stats t.cache in
  let requests, errors =
    with_lock t.state_mutex (fun () -> (t.requests, t.errors))
  in
  (* one locked read: the (leaders, followers) pair counts whole events *)
  let leaders, followers = Batcher.counts t.batcher in
  Protocol.ok_response
    [
      ("op", Json.Str "stats");
      ("proto", Json.Str Protocol.version);
      ("uptime_seconds", Json.Num (t.now () -. t.started));
      ("requests", Json.int requests);
      ("errors", Json.int errors);
      ("datasets", Json.int (List.length (Registry.list t.reg)));
      ( "connections",
        Json.Obj
          [
            ("live", Json.int (live_connections t));
            ("accepted", Json.int (accepted_connections t));
          ] );
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.int (Lru.capacity t.cache));
            ("entries", Json.int (Lru.length t.cache));
            ("hits", Json.int cs.Lru.hits);
            ("misses", Json.int cs.Lru.misses);
            ("evictions", Json.int cs.Lru.evictions);
            ("insertions", Json.int cs.Lru.insertions);
          ] );
      ( "batch",
        Json.Obj
          [ ("leaders", Json.int leaders); ("followers", Json.int followers) ]
      );
    ]

let handle_list t =
  Protocol.ok_response
    [
      ("op", Json.Str "list");
      ("datasets", Json.Arr (List.map dataset_json (Registry.list t.reg)));
    ]

let signal_stop t = match poller_of t with Some p -> Poller.stop p | None -> ()

(* returns (response frame, close connection afterwards) *)
let handle_request t line =
  with_lock t.state_mutex (fun () -> t.requests <- t.requests + 1);
  Obs.Counter.incr c_requests;
  match Protocol.parse_request ~max_line:t.cfg.max_line line with
  | Error e -> (error t e, false)
  | Ok req -> (
      try
        match req with
        | Protocol.Ping -> (Protocol.ok_response [ ("op", Json.Str "ping") ], false)
        | Protocol.List -> (handle_list t, false)
        | Protocol.Stats -> (handle_stats t, false)
        | Protocol.Shutdown ->
            signal_stop t;
            (Protocol.ok_response [ ("op", Json.Str "shutdown") ], true)
        | Protocol.Load { name; path; shards; approx } ->
            (handle_load t ~name ~path ~shards ~approx, false)
        | Protocol.Query { name; k } ->
            (handle_query t ~name ~k ~kind:"query", false)
        | Protocol.Mrr { name; k } -> (handle_query t ~name ~k ~kind:"mrr", false)
        | Protocol.Rank_regret { name; k } ->
            (handle_rank_regret t ~name ~k, false)
        | Protocol.Insert { name; point } ->
            (handle_update t ~name ~kind:"insert" (`Insert point), false)
        | Protocol.Delete { name; id } ->
            (handle_update t ~name ~kind:"delete" (`Delete id), false)
        | Protocol.Flush { name } ->
            (handle_update t ~name ~kind:"flush" (`Flush), false)
        | Protocol.Evict { name } -> (handle_evict t ~name, false)
      with e ->
        (* requests never take the server down *)
        (error t (Protocol.err ~code:"internal" (Printexc.to_string e)), false))

(* ---- lifecycle ------------------------------------------------------------ *)

let temp_socket_counter = Atomic.make 0

let temp_socket_path () =
  let base name dir = Filename.concat dir name in
  let name =
    Printf.sprintf "ks-%d-%d.sock" (Unix.getpid ())
      (Atomic.fetch_and_add temp_socket_counter 1)
  in
  let candidate = base name (Filename.get_temp_dir_name ()) in
  (* sun_path is ~108 bytes; sandboxed TMPDIRs can blow past it *)
  if String.length candidate <= 90 then candidate else base name "/tmp"

(* bind every configured endpoint or none: a partial bind closes what it
   opened and fails the start *)
let bind_all eps =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ep :: rest -> (
        match Endpoint.listen ep with
        | Ok fd -> go ((ep, fd) :: acc) rest
        | Error m ->
            List.iter (fun (_, fd) -> try Unix.close fd with _ -> ()) acc;
            Error (Printf.sprintf "%s: %s" (Endpoint.to_string ep) m))
  in
  go [] eps

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match bind_all cfg.listeners with
  | Error m -> Error m
  | Ok bound ->
      let resolved =
        List.map (fun (ep, fd) -> Endpoint.local_of_fd ~fd ep) bound
      in
      let now = Obs.Control.monotonic_of Unix.gettimeofday in
      let t =
        {
          cfg;
          reg = Registry.create ?max_length:cfg.max_length ();
          cache = Lru.create ~capacity:cfg.cache_capacity;
          cache_mutex = Mutex.create ();
          batcher = Batcher.create ();
          resolved;
          poller = None;
          io_thread = None;
          state_mutex = Mutex.create ();
          stopped = false;
          requests = 0;
          errors = 0;
          now;
          started = now ();
        }
      in
      let poller =
        Poller.create ~workers:cfg.workers ~max_line:cfg.max_line
          ~on_accept:(fun () -> Obs.Counter.incr c_connections)
          ~listeners:(List.map snd bound)
          ~hello:Protocol.hello
          ~handle:(fun line -> handle_request t line)
          ~too_long:(fun () ->
            error t
              (Protocol.err ~code:"frame_too_large"
                 (Printf.sprintf
                    "frame exceeds the %d-byte limit; closing connection"
                    t.cfg.max_line)))
          ()
      in
      t.poller <- Some poller;
      t.io_thread <- Some (Thread.create Poller.run poller);
      Ok t

let start_exn cfg =
  match start cfg with Ok t -> t | Error m -> failwith ("Server.start: " ^ m)

let wait t =
  (match with_lock t.state_mutex (fun () -> t.io_thread) with
  | Some th -> Thread.join th
  | None -> ());
  let cleanup =
    with_lock t.state_mutex (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if cleanup then begin
    Registry.shutdown t.reg;
    List.iter Endpoint.unlink_if_unix t.resolved
  end

let stop t =
  signal_stop t;
  wait t
