module Dynamic = Kregret.Dynamic
module Obs = Kregret_obs

let c_connections =
  Obs.Registry.counter "serve.connections" ~help:"accepted connections"

let c_requests = Obs.Registry.counter "serve.requests" ~help:"request frames handled"

let c_errors =
  Obs.Registry.counter "serve.errors" ~help:"requests answered with a structured error"

type config = {
  socket_path : string;
  cache_capacity : int;
  max_line : int;
  retry_after : float;
  max_length : int option;
}

let config ?(cache_capacity = 128) ?(max_line = Protocol.default_max_line)
    ?(retry_after = 0.05) ?max_length ~socket_path () =
  if cache_capacity < 0 then invalid_arg "Server.config: cache_capacity < 0";
  if max_line < 1 then invalid_arg "Server.config: max_line < 1";
  { socket_path; cache_capacity; max_line; retry_after; max_length }

(* cache values: one shape for both [query] (selection + mrr) and [mrr] *)
type cached = { c_selection : int list option; c_mrr : float }

type t = {
  cfg : config;
  reg : Registry.t;
  (* keyed by (fingerprint, epoch, k, kind): the epoch is the dataset's
     answer version, so an insert/delete invalidates by key churn — stale
     rows age out of the LRU with no explicit flush *)
  cache : ((string * int * int * string), cached) Lru.t;
  cache_mutex : Mutex.t;
  batcher : ((string * int * int * string), cached) Batcher.t;
  listen_fd : Unix.file_descr;
  state_mutex : Mutex.t;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable conns : (Thread.t * Unix.file_descr) list;
  mutable accept_thread : Thread.t option;
  mutable requests : int;
  mutable errors : int;
  started : float;
}

let registry t = t.reg

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ---- request handling ---------------------------------------------------- *)

let status_str status =
  match status with
  | Registry.Building -> "building"
  | Registry.Ready _ -> "ready"
  | Registry.Failed _ -> "failed"

let count_error t =
  with_lock t.state_mutex (fun () -> t.errors <- t.errors + 1);
  Obs.Counter.incr c_errors

let error t ?retry_after e =
  count_error t;
  Protocol.error_response ?retry_after e

let dataset_json info =
  let base =
    [
      ("name", Json.Str info.Registry.name);
      ("path", Json.Str info.Registry.path);
      ("fingerprint", Json.Str info.Registry.fingerprint);
      ("n", Json.int info.Registry.n);
      ("d", Json.int info.Registry.d);
      ("status", Json.Str (status_str info.Registry.status));
    ]
  in
  let extra =
    match info.Registry.status with
    | Registry.Ready b ->
        [
          ("sky", Json.int b.Registry.n_sky);
          ("happy", Json.int b.Registry.n_happy);
          ("materialized", Json.int (Dynamic.Snapshot.stored_length b.Registry.snap));
          ("live", Json.int (Dynamic.Snapshot.live b.Registry.snap));
          ("epoch", Json.int (Dynamic.Snapshot.epoch b.Registry.snap));
          ("mutated", Json.Bool info.Registry.mutated);
          ("build_seconds", Json.Num b.Registry.build_seconds);
        ]
    | Registry.Failed m -> [ ("error", Json.Str m) ]
    | Registry.Building -> []
  in
  Json.Obj (base @ extra)

let handle_load t ~name ~path =
  match Registry.load t.reg ~name ~path with
  | Error m -> error t (Protocol.err ~code:"load_failed" m)
  | Ok info ->
      Protocol.ok_response
        [
          ("op", Json.Str "load");
          ("name", Json.Str name);
          ("status", Json.Str (status_str info.Registry.status));
          ("fingerprint", Json.Str info.Registry.fingerprint);
          ("n", Json.int info.Registry.n);
          ("d", Json.int info.Registry.d);
        ]

(* The serving hot path. Cache first; on a miss, coalesce concurrent
   identical computations through the batcher, so one StoredList prefix
   scan answers every in-flight duplicate. *)
let handle_query t ~name ~k ~kind =
  match Registry.find t.reg name with
  | None ->
      error t
        (Protocol.err ~code:"not_found"
           (Printf.sprintf "dataset %S is not loaded" name))
  | Some info -> (
      match info.Registry.status with
      | Registry.Building ->
          error t ~retry_after:t.cfg.retry_after
            (Protocol.err ~code:"building"
               (Printf.sprintf "dataset %S is still building" name))
      | Registry.Failed m ->
          error t
            (Protocol.err ~code:"build_failed"
               (Printf.sprintf "dataset %S failed to build: %s" name m))
      | Registry.Ready b -> (
          (* stale-reuse guard: the CSV on disk must still be the bytes this
             StoredList was built from *)
          match Registry.fresh t.reg info with
          | Error m -> error t (Protocol.err ~code:"stale_dataset" m)
          | Ok () ->
              let snap = b.Registry.snap in
              let key =
                ( info.Registry.fingerprint,
                  Dynamic.Snapshot.epoch snap,
                  k,
                  kind )
              in
              let hit = with_lock t.cache_mutex (fun () -> Lru.get t.cache key) in
              let value, cached, coalesced =
                match hit with
                | Some v -> (v, true, false)
                | None ->
                    let v, coalesced =
                      Batcher.run t.batcher ~key (fun () ->
                          (* ids are the registry's stable external ids: row
                             indices of the loaded CSV, then fresh ids for
                             inserts *)
                          let ids, mrr = Dynamic.Snapshot.query snap ~k in
                          let v =
                            {
                              c_selection =
                                (if kind = "query" then Some ids else None);
                              c_mrr = mrr;
                            }
                          in
                          with_lock t.cache_mutex (fun () ->
                              Lru.put t.cache key v);
                          v)
                    in
                    (v, false, coalesced)
              in
              let base =
                [
                  ("op", Json.Str kind);
                  ("name", Json.Str name);
                  ("k", Json.int k);
                  ("mrr", Json.Num value.c_mrr);
                  ("cached", Json.Bool cached);
                  ("coalesced", Json.Bool coalesced);
                ]
              in
              let fields =
                match value.c_selection with
                | Some sel ->
                    base @ [ ("selection", Json.Arr (List.map Json.int sel)) ]
                | None -> base
              in
              Protocol.ok_response fields))

(* insert/delete/flush: hand the op to the registry worker and block this
   connection thread until the incremental repair is published. [building]
   gets the retry hint, like queries. *)
let handle_update t ~name ~kind op =
  match Registry.update t.reg ~name op with
  | Error (("building" as code), m) ->
      error t ~retry_after:t.cfg.retry_after (Protocol.err ~code m)
  | Error (code, m) -> error t (Protocol.err ~code m)
  | Ok o ->
      let base =
        [
          ("op", Json.Str kind);
          ("name", Json.Str name);
          ("applied", Json.Bool o.Registry.applied);
          ("live", Json.int o.Registry.live);
          ("epoch", Json.int o.Registry.epoch);
        ]
      in
      let extra =
        match (o.Registry.inserted_id, kind) with
        | Some id, _ -> [ ("id", Json.int id) ]
        | None, "flush" -> [ ("reclaimed", Json.int o.Registry.reclaimed) ]
        | None, _ -> []
      in
      Protocol.ok_response (base @ extra)

let handle_evict t ~name =
  match name with
  | None ->
      with_lock t.cache_mutex (fun () -> Lru.clear t.cache);
      Protocol.ok_response [ ("op", Json.Str "evict"); ("cleared", Json.Str "cache") ]
  | Some name ->
      let fp =
        Option.map
          (fun i -> i.Registry.fingerprint)
          (Registry.find t.reg name)
      in
      let removed = Registry.evict t.reg name in
      (* drop the dataset's cached results as well *)
      (match fp with
      | Some fp ->
          with_lock t.cache_mutex (fun () ->
              List.iter
                (fun ((kfp, _, _, _) as key) ->
                  if String.equal kfp fp then ignore (Lru.remove t.cache key))
                (Lru.keys_mru t.cache))
      | None -> ());
      Protocol.ok_response
        [ ("op", Json.Str "evict"); ("name", Json.Str name); ("evicted", Json.Bool removed) ]

let handle_stats t =
  let cs = Lru.stats t.cache in
  let requests, errors =
    with_lock t.state_mutex (fun () -> (t.requests, t.errors))
  in
  Protocol.ok_response
    [
      ("op", Json.Str "stats");
      ("proto", Json.Str Protocol.version);
      ("uptime_seconds", Json.Num (Unix.gettimeofday () -. t.started));
      ("requests", Json.int requests);
      ("errors", Json.int errors);
      ("datasets", Json.int (List.length (Registry.list t.reg)));
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.int (Lru.capacity t.cache));
            ("entries", Json.int (Lru.length t.cache));
            ("hits", Json.int cs.Lru.hits);
            ("misses", Json.int cs.Lru.misses);
            ("evictions", Json.int cs.Lru.evictions);
            ("insertions", Json.int cs.Lru.insertions);
          ] );
      ( "batch",
        Json.Obj
          [
            ("leaders", Json.int (Batcher.leaders t.batcher));
            ("followers", Json.int (Batcher.followers t.batcher));
          ] );
    ]

let handle_list t =
  Protocol.ok_response
    [
      ("op", Json.Str "list");
      ("datasets", Json.Arr (List.map dataset_json (Registry.list t.reg)));
    ]

let signal_stop t =
  let first =
    with_lock t.state_mutex (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if first then begin
    (* Wake a [Unix.accept]-blocked accept loop. Closing the listening fd
       from another thread does NOT reliably interrupt a blocked [accept]
       on Linux, so poke it with a throwaway connection instead: the loop
       re-checks [stopping] after every accept and exits. The fd itself is
       closed by the accept loop on its way out. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  end

(* returns (response frame, close connection afterwards) *)
let handle_request t line =
  with_lock t.state_mutex (fun () -> t.requests <- t.requests + 1);
  Obs.Counter.incr c_requests;
  match Protocol.parse_request ~max_line:t.cfg.max_line line with
  | Error e -> (error t e, false)
  | Ok req -> (
      try
        match req with
        | Protocol.Ping -> (Protocol.ok_response [ ("op", Json.Str "ping") ], false)
        | Protocol.List -> (handle_list t, false)
        | Protocol.Stats -> (handle_stats t, false)
        | Protocol.Shutdown ->
            signal_stop t;
            (Protocol.ok_response [ ("op", Json.Str "shutdown") ], true)
        | Protocol.Load { name; path } -> (handle_load t ~name ~path, false)
        | Protocol.Query { name; k } ->
            (handle_query t ~name ~k ~kind:"query", false)
        | Protocol.Mrr { name; k } -> (handle_query t ~name ~k ~kind:"mrr", false)
        | Protocol.Insert { name; point } ->
            (handle_update t ~name ~kind:"insert" (`Insert point), false)
        | Protocol.Delete { name; id } ->
            (handle_update t ~name ~kind:"delete" (`Delete id), false)
        | Protocol.Flush { name } ->
            (handle_update t ~name ~kind:"flush" (`Flush), false)
        | Protocol.Evict { name } -> (handle_evict t ~name, false)
      with e ->
        (* requests never take the server down *)
        (error t (Protocol.err ~code:"internal" (Printexc.to_string e)), false))

(* ---- connection & accept loops ------------------------------------------- *)

let handle_conn t fd =
  let r = Protocol.reader fd in
  (try
     match Protocol.write_line fd Protocol.hello with
     | Error _ -> ()
     | Ok () ->
         let rec loop () =
           match Protocol.read_line r ~max:t.cfg.max_line with
           | `Eof | `Error _ -> ()  (* truncated connections close silently *)
           | `Too_long ->
               (* the stream is no longer frame-aligned: answer, then close *)
               ignore
                 (Protocol.write_line fd
                    (error t
                       (Protocol.err ~code:"frame_too_large"
                          (Printf.sprintf
                             "frame exceeds the %d-byte limit; closing \
                              connection"
                             t.cfg.max_line))))
           | `Line line ->
               if String.trim line = "" then loop ()
               else begin
                 let resp, close_after = handle_request t line in
                 match Protocol.write_line fd resp with
                 | Error _ -> ()
                 | Ok () -> if not close_after then loop ()
               end
         in
         loop ()
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        let spawn =
          with_lock t.state_mutex (fun () ->
              if t.stopping then false
              else begin
                Obs.Counter.incr c_connections;
                let th = Thread.create (fun () -> handle_conn t fd) () in
                t.conns <- (th, fd) :: t.conns;
                true
              end)
        in
        if spawn then loop ()
        else
          (* stopping: this is [signal_stop]'s wakeup poke (or a late
             client); drop it and fall through to close the listener *)
          (try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        if with_lock t.state_mutex (fun () -> t.stopping) then () else loop ()
    | exception _ ->
        (* the listening fd is unusable: stop accepting *)
        ()
  in
  loop ();
  (* the accept loop owns the listening fd *)
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let temp_socket_counter = Atomic.make 0

let temp_socket_path () =
  let base name dir = Filename.concat dir name in
  let name =
    Printf.sprintf "ks-%d-%d.sock" (Unix.getpid ())
      (Atomic.fetch_and_add temp_socket_counter 1)
  in
  let candidate = base name (Filename.get_temp_dir_name ()) in
  (* sun_path is ~108 bytes; sandboxed TMPDIRs can blow past it *)
  if String.length candidate <= 90 then candidate else base name "/tmp"

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then (
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      reg = Registry.create ?max_length:cfg.max_length ();
      cache = Lru.create ~capacity:cfg.cache_capacity;
      cache_mutex = Mutex.create ();
      batcher = Batcher.create ();
      listen_fd;
      state_mutex = Mutex.create ();
      stopping = false;
      stopped = false;
      conns = [];
      accept_thread = None;
      requests = 0;
      errors = 0;
      started = Unix.gettimeofday ();
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* after the accept loop exits no new connection threads appear *)
  let conns = with_lock t.state_mutex (fun () -> t.conns) in
  (* kick idle readers out of [read] so the joins below cannot hang —
     receive-only, so an in-flight response (e.g. the [shutdown] ack) still
     drains; the connection thread itself owns the close *)
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (th, _) -> Thread.join th) conns;
  let cleanup =
    with_lock t.state_mutex (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if cleanup then begin
    Registry.shutdown t.reg;
    if Sys.file_exists t.cfg.socket_path then (
      try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  end

let stop t =
  signal_stop t;
  wait t
