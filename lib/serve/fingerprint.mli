(** Content fingerprints for dataset identity.

    The serving layer keys everything — registry entries, cache entries,
    staleness checks — on a fingerprint of the {e raw bytes} of the CSV file
    a dataset was loaded from. Hashing bytes (rather than the parsed,
    normalized points) makes the staleness contract simple and strict: any
    rewrite of the file on disk, even one that re-serializes the same
    values, invalidates the loaded StoredList and forces an explicit
    re-[load]. The hash is the same FNV-1a used by
    {!Kregret.Stored_list.save} for its on-disk lists. *)

(** [of_string s] — FNV-1a (64-bit) over the bytes of [s], rendered as 16
    lowercase hex digits. *)
val of_string : string -> string

(** [of_file path] reads [path] and fingerprints its contents. [Error]
    (with the failing path in the message) when the file cannot be read —
    never raises. *)
val of_file : string -> (string, string) result

(** [of_points pts] — FNV-1a over the raw IEEE-754 bits of every coordinate
    (point-major). The in-memory analogue of {!of_string}, for callers that
    have no backing file. *)
val of_points : Kregret_geom.Vector.t array -> string

(** {1 Stat signatures}

    Per-query staleness checks cannot afford to re-read the file (that is
    O(file) on every request). A stat signature — device, inode, size,
    mtime — is the cheap negative check: if it matches the signature taken
    when the bytes were read, the file has not been touched and the stored
    fingerprint still describes it. A mismatched signature proves nothing
    by itself; callers fall back to {!of_file} for the byte-level verdict,
    so a [touch] without a rewrite never invalidates a dataset. *)

type stat_sig = { dev : int; ino : int; size : int; mtime : float }

(** [sig_of_stats st] — the signature of an already-obtained [Unix.stats]
    (use with [Unix.fstat] on the very descriptor the bytes were read
    from, so signature and contents cannot race a concurrent rename). *)
val sig_of_stats : Unix.stats -> stat_sig

(** [sig_of_path path] — stat by path; [Error] when unreadable. *)
val sig_of_path : string -> (stat_sig, string) result
