(** Content fingerprints for dataset identity.

    The serving layer keys everything — registry entries, cache entries,
    staleness checks — on a fingerprint of the {e raw bytes} of the CSV file
    a dataset was loaded from. Hashing bytes (rather than the parsed,
    normalized points) makes the staleness contract simple and strict: any
    rewrite of the file on disk, even one that re-serializes the same
    values, invalidates the loaded StoredList and forces an explicit
    re-[load]. The hash is the same FNV-1a used by
    {!Kregret.Stored_list.save} for its on-disk lists. *)

(** [of_string s] — FNV-1a (64-bit) over the bytes of [s], rendered as 16
    lowercase hex digits. *)
val of_string : string -> string

(** [of_file path] reads [path] and fingerprints its contents. [Error]
    (with the failing path in the message) when the file cannot be read —
    never raises. *)
val of_file : string -> (string, string) result

(** [of_points pts] — FNV-1a over the raw IEEE-754 bits of every coordinate
    (point-major). The in-memory analogue of {!of_string}, for callers that
    have no backing file. *)
val of_points : Kregret_geom.Vector.t array -> string
