(** Dataset registry: load CSV datasets once, precompute skyline → happy
    points → StoredList in the background (materialized as a
    {!Kregret.Dynamic} state), serve any [k] afterwards as an O(k) prefix
    read — and accept incremental [insert]/[delete]/[flush] updates that
    repair the precomputation instead of rebuilding it.

    [load] is cheap and non-blocking: it reads the file {e once},
    fingerprints exactly the bytes it parsed ({!Fingerprint.of_string} —
    hashing and re-reading separately raced concurrent rewrites), parses
    and normalizes the CSV on the calling thread, registers the entry as
    [Building] and hands the expensive GeoGreedy materialization to a
    single background worker thread (which uses the global
    {!Kregret_parallel.Pool} internally — builds are serialized so parallel
    regions never nest). Concurrent [load]s of the same unchanged file are
    idempotent: they join the in-flight build instead of enqueuing a
    duplicate. Re-[load]ing a name whose build [Failed] on unchanged bytes
    re-enqueues the build (failures can be transient), counted as
    [serve.registry.build_retries]. Queries against a still-[Building]
    entry get a [retry_after] answer from the server, never a blocked
    accept loop.

    {b Updates.} {!update} enqueues an insert/delete/flush on the {e same}
    worker queue as builds, so updates serialize against builds and against
    each other, and blocks the calling connection thread until the worker
    has applied the op and republished a consistent {!built} snapshot.
    Queries never wait on an in-flight update — they read the last
    published snapshot under the registry mutex. Each applied update bumps
    the snapshot's [Dynamic] epoch when the answer could have changed,
    which servers fold into their cache key so stale cached answers simply
    age out.

    {b Staleness.} Every entry remembers the byte fingerprint of the file
    it was built from. {!fresh} re-hashes the file and must be consulted
    before serving: a dataset whose CSV was rewritten on disk between
    [load] and [query] is {e rejected} ([stale_dataset]) instead of being
    silently answered from the stale materialization. Once a dataset has
    been mutated through {!update}, the CSV is a seed rather than the
    source of truth, and {!fresh} always passes. Re-[load]ing the same
    name picks up the new file contents and rebuilds (dropping any
    updates). *)

(** The immutable answer state behind a [Ready] dataset. [Solo] is the
    incremental path: a {!Kregret.Dynamic.Snapshot} republished after every
    applied update. [Sharded] is the static scatter-gather tier
    ({!Shard}) — bit-identical answers, no updates. *)
type backend =
  | Solo of Kregret.Dynamic.Snapshot.t
  | Sharded of Shard.t

type built = {
  backend : backend;
      (** immutable answer state: query/mrr by prefix, live count, epoch *)
  n_sky : int;  (** skyline size, for [list] *)
  n_happy : int;  (** happy-point count, for [list] *)
  build_seconds : float;  (** initial build cost (not update repair time) *)
}

(** Uniform reads over the two backends. Epoch of a [Sharded] backend is
    always 0 — sharded datasets never change, so nothing a cache keyed on
    it could miss. *)

val backend_query : backend -> k:int -> int list * float
val backend_mrr_at : backend -> k:int -> float

(** [backend_rank_regret b ~k] — the rank-regret representative answer of
    the published backend: solo backends run {!Kregret_rrr.Rrr} over the
    snapshot's live basis (answers track updates epoch for epoch; a fresh
    unmutated dataset reproduces the offline engine bit for bit), sharded
    backends use {!Shard.rank_regret}. Raises [Invalid_argument] when no
    live points remain. *)
val backend_rank_regret :
  backend -> k:int -> int list * Kregret_rrr.Rrr.rank
val backend_epoch : backend -> int
val backend_live : backend -> int
val backend_stored_length : backend -> int

type status = Building | Ready of built | Failed of string

type info = {
  name : string;
  path : string;
  fingerprint : string;
  stat : Fingerprint.stat_sig;
      (** taken by [fstat] on the descriptor the fingerprinted bytes were
          read from — the cheap per-query freshness witness *)
  n : int;  (** rows loaded from the CSV (not updated by inserts/deletes) *)
  d : int;
  shards : int;  (** 1 = solo; >1 = scatter-gather (static) *)
  approx : float;
      (** ε of the ε-kernel tier; [0.] = exact. Approximate datasets are
          static, like sharded ones. *)
  mutated : bool;  (** diverged from the CSV via {!update} *)
  status : status;
}

type update_op = [ `Insert of Kregret_geom.Vector.t | `Delete of int | `Flush ]

type update_outcome = {
  applied : bool;
      (** [false] for exact no-ops: deleting an unknown/tombstoned id, or a
          flush with nothing to reclaim *)
  inserted_id : int option;  (** the new point's stable id, inserts only *)
  reclaimed : int;  (** slots compacted away, flushes only *)
  epoch : int;  (** answer version after the op *)
  live : int;  (** live points after the op *)
}

(** [Error (code, message)] uses the wire error codes: [not_found],
    [building], [build_failed], [static_dataset], [bad_point],
    [internal]. *)
type update_reply = (update_outcome, string * string) result

type t

(** [create ?max_length ()] starts the build/update worker. [max_length]
    caps the StoredList materialization (the [--max-k] serving knob — see
    {!Kregret.Stored_list.preprocess}); queries beyond the cap return the
    whole materialized list. *)
val create : ?max_length:int -> unit -> t

(** [shutdown t] stops and joins the worker (waits for an in-flight build
    or update; pending queued updates are answered with an [internal]
    error, never left hanging). Idempotent. *)
val shutdown : t -> unit

(** [load t ~name ~path] registers (or re-registers, when the
    fingerprint, shard count or ε changed) a dataset and enqueues its
    build; returns a snapshot. [shards > 1] builds the static
    scatter-gather tier ({!Shard}) instead of a [Dynamic] — same answers,
    no updates. [approx > 0.] builds the static ε-kernel tier (the shard
    tier with per-chunk kernels — see {!Shard}); exact and approximate
    materializations of the same bytes are {e distinct} entries. Both
    the shard count and ε are part of the entry's identity: re-loading an
    unchanged file at the same [(shards, approx)] joins the existing
    entry (except when its build [Failed], which retries); a different
    count or ε rebuilds. [Error] on unreadable or malformed CSV. *)
val load :
  ?shards:int ->
  ?approx:float ->
  t ->
  name:string ->
  path:string ->
  (info, string) result

(** [update t ~name op] — blocking insert/delete/flush against a [Ready]
    solo dataset. Points must be pre-normalized (finite, in [(0, 1]],
    matching dimension): anything else is [Error ("bad_point", _)].
    Sharded and approximate datasets answer
    [Error ("static_dataset", _)]. *)
val update : t -> name:string -> update_op -> update_reply

val find : t -> string -> info option

(** Name-sorted snapshots. *)
val list : t -> info list

(** [evict t name] — forget a dataset, returning the evicted entry's
    fingerprint ([None] when absent). Removal and fingerprint read happen
    under one critical section, so a cache purge keyed on the result
    targets exactly the entry that was removed — reading the fingerprint
    with a separate {!find} first raced a concurrent re-load of the same
    name. *)
val evict : t -> string -> string option

(** [fresh t info] — fail when [info.path] no longer holds the loaded
    bytes (counted as [serve.stale_rejections]). The common case is O(1):
    a [stat] matching [info.stat] proves the file untouched; only a
    changed signature pays for a full re-read and re-hash (so a [touch]
    without a rewrite stays fresh, and per-query latency does not scale
    with the file). Always [Ok] once [info.mutated]. *)
val fresh : t -> info -> (unit, string) result
