(** Dataset registry: load CSV datasets once, precompute skyline → happy
    points → StoredList in the background, serve any [k] afterwards as an
    O(k) prefix read.

    [load] is cheap and non-blocking: it fingerprints the file bytes
    ({!Fingerprint}), parses and normalizes the CSV on the calling thread,
    registers the entry as [Building] and hands the expensive
    GeoGreedy materialization to a single background build thread (which
    uses the global {!Kregret_parallel.Pool} internally — builds are
    serialized so parallel regions never nest). Queries against a
    still-[Building] entry get a [retry_after] answer from the server, never
    a blocked accept loop.

    {b Staleness.} Every entry remembers the byte fingerprint of the file
    it was built from. {!fresh} re-hashes the file and must be consulted
    before serving: a dataset whose CSV was rewritten on disk between
    [load] and [query] is {e rejected} ([stale_dataset]) instead of being
    silently answered from the stale StoredList. Re-[load]ing the same name
    picks up the new contents and rebuilds. *)

type built = {
  happy : Kregret_geom.Vector.t array;  (** the candidate set handed to GeoGreedy *)
  orig_of_happy : int array;
      (** happy-array slot → row index in the {e original} (normalized)
          dataset; served selections are reported in original rows *)
  stored : Kregret.Stored_list.t;
  n_sky : int;  (** skyline size, for [list] *)
  build_seconds : float;
}

type status = Building | Ready of built | Failed of string

type info = {
  name : string;
  path : string;
  fingerprint : string;
  n : int;  (** dataset rows *)
  d : int;
  status : status;
}

type t

(** [create ?max_length ()] starts the build worker. [max_length] caps the
    StoredList materialization (the [--max-k] serving knob — see
    {!Kregret.Stored_list.preprocess}); queries beyond the cap return the
    whole materialized list. *)
val create : ?max_length:int -> unit -> t

(** [shutdown t] stops and joins the build worker (waits for an in-flight
    build). Idempotent. *)
val shutdown : t -> unit

(** [load t ~name ~path] registers (or re-registers, when the fingerprint
    changed) a dataset and enqueues its build; returns a snapshot.
    Re-loading an unchanged file is a no-op returning the current status.
    [Error] on unreadable or malformed CSV. *)
val load : t -> name:string -> path:string -> (info, string) result

val find : t -> string -> info option

(** Name-sorted snapshots. *)
val list : t -> info list

(** [evict t name] — forget a dataset; [false] when absent. *)
val evict : t -> string -> bool

(** [fresh t info] — re-fingerprint [info.path] and fail when it no longer
    matches the loaded bytes (counted as [serve.stale_rejections]). *)
val fresh : t -> info -> (unit, string) result
