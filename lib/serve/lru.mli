(** Bounded LRU result cache.

    A classic hash-table + intrusive doubly-linked-list LRU: [get] and
    [put] are O(1), the most recently used entry sits at the front, and an
    insertion that would exceed [capacity] evicts the back (least recently
    used) entry. [capacity = 0] disables storage entirely — every [get]
    misses and [put] is a no-op — which is the "cache off" serving knob.

    The structure is {e not} thread-safe; the server serializes access with
    its own mutex. Per-instance statistics are plain exact integers
    (asserted against an executable model by [test/test_lru.ml]); every
    event additionally bumps the process-wide [serve.cache.*] counters in
    {!Kregret_obs}, so a [--metrics] snapshot shows cache behaviour without
    asking the server. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;  (** new keys inserted (updates of a live key excluded) *)
}

(** [create ~capacity] — empty cache. Raises [Invalid_argument] when
    [capacity < 0]. *)
val create : capacity:int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** [get t k] returns the cached value and promotes [k] to most recently
    used; counts a hit or a miss. *)
val get : ('k, 'v) t -> 'k -> 'v option

(** [put t k v] inserts or updates [k] at the front, evicting the least
    recently used entry when the capacity would be exceeded. *)
val put : ('k, 'v) t -> 'k -> 'v -> unit

(** [mem t k] — presence test; does {e not} promote and counts nothing
    (for assertions). *)
val mem : ('k, 'v) t -> 'k -> bool

(** [remove t k] drops an entry (not counted as an eviction); [false] when
    absent. *)
val remove : ('k, 'v) t -> 'k -> bool

(** [keys_mru t] — every key, most recently used first. O(n); for tests,
    [stats], and targeted invalidation sweeps. *)
val keys_mru : ('k, 'v) t -> 'k list

(** [clear t] drops every entry (counters are kept — they are lifetime
    totals). *)
val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> stats
