(** The [kregret-serve/v1] wire protocol.

    Line-oriented JSON over a stream socket — Unix-domain or TCP, the
    frames are transport-agnostic (see {!Endpoint}): each request and
    each response is exactly one JSON object on one ['\n']-terminated line.
    On connect the server sends a hello frame
    [{"ok":true,"hello":"kregret-serve/v1"}]; after that, strictly
    request→response, in order, per connection.

    Requests ([op] selects the verb):

    {v
      {"op":"load","name":NAME,"path":PATH}   register + build a CSV dataset
      {"op":"load","name":NAME,"path":PATH,"shards":S}
                                              same, scatter-gathered over S
                                              shards (answers stay identical;
                                              the dataset becomes static)
      {"op":"load","name":NAME,"path":PATH,"approx":EPS}
                                              same, through the ε-kernel
                                              reduction (answers carry a
                                              certified regret bound; the
                                              dataset becomes static);
                                              composes with "shards"
      {"op":"query","name":NAME,"k":K}        k-regret selection + its mrr
      {"op":"mrr","name":NAME,"k":K}          mrr only
      {"op":"rank_regret","name":NAME,"k":K}  rank-regret representatives:
                                              a <= K subset minimizing the
                                              certified max rank, with its
                                              [rank_lo]/[rank_hi]/[exact]
                                              certificate
      {"op":"list"}                           registry contents + statuses
      {"op":"stats"}                          cache/batch/server statistics
      {"op":"evict"}                          clear the result cache
      {"op":"evict","name":NAME}              drop a dataset (and its cache rows)
      {"op":"insert","name":NAME,"point":[X,...]}  add a point; answers its id
      {"op":"delete","name":NAME,"id":ID}     tombstone a point by id
      {"op":"flush","name":NAME}              compact tombstoned slots now
      {"op":"ping"}                           liveness
      {"op":"shutdown"}                       stop the server
    v}

    [insert]/[delete]/[flush] run on the registry's single worker thread,
    serialized with background builds; the calling connection blocks until
    the update (and its incremental repair — see {!Kregret.Dynamic}) is
    published. Queries never block on an in-flight update: they answer from
    the last published snapshot. Inserted points must be pre-normalized
    (finite coordinates in [(0, 1]], dimension matching the dataset) —
    anything else is a [bad_point] error. Updates against a dataset loaded
    with ["shards"] > 1 or ["approx"] are rejected with [static_dataset] —
    neither the shard merge nor the kernel reduction has an incremental
    repair.

    Every response carries ["ok"]; failures are structured —
    [{"ok":false,"error":{"code":CODE,"message":MSG}}], optionally with a
    top-level ["retry_after"] seconds hint (code [building]) — and {e never}
    terminate the server. Error codes: [parse_error], [bad_request],
    [missing_field], [bad_field], [unknown_op], [frame_too_large],
    [not_found], [building], [build_failed], [load_failed],
    [stale_dataset], [static_dataset], [bad_point], [internal]. *)

val version : string
(** ["kregret-serve/v1"]. *)

val default_max_line : int
(** Frame size limit in bytes (65536). Oversized frames are answered with
    [frame_too_large] and the connection is closed — past the limit the
    framing itself can no longer be trusted. *)

type request =
  | Ping
  | List
  | Stats
  | Shutdown
  | Load of {
      name : string;
      path : string;
      shards : int option;
      approx : float option;
    }
  | Query of { name : string; k : int }
  | Mrr of { name : string; k : int }
  | Rank_regret of { name : string; k : int }
  | Evict of { name : string option }
  | Insert of { name : string; point : float array }
  | Delete of { name : string; id : int }
  | Flush of { name : string }

type error = { code : string; message : string }

val err : code:string -> string -> error

(** [parse_request ?max_line line] — total; every malformed frame maps to a
    structured [error]. *)
val parse_request : ?max_line:int -> string -> (request, error) result

(** {1 Response frames} (single lines, no trailing newline) *)

val hello : string

(** [ok_response fields] — [{"ok":true, ...fields}]. *)
val ok_response : (string * Json.t) list -> string

val error_response : ?retry_after:float -> error -> string

(** {1 Framed line I/O over file descriptors}

    Shared by the server's connection loop and the client. *)

type reader

val reader : Unix.file_descr -> reader

(** [read_line r ~max] — next ['\n']-terminated line (terminator and a
    preceding ['\r'] stripped). [`Eof] on clean end-of-stream at a frame
    boundary; [`Error] on a mid-frame disconnect or socket error; [`Too_long]
    once the accumulated frame exceeds [max] bytes. Never raises. *)
val read_line :
  reader -> max:int -> [ `Line of string | `Eof | `Too_long | `Error of string ]

(** [write_line fd s] writes [s ^ "\n"] fully. Never raises. *)
val write_line : Unix.file_descr -> string -> (unit, string) result
