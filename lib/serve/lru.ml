module Obs = Kregret_obs

let c_hits = Obs.Registry.counter "serve.cache.hits" ~help:"result-cache hits"

let c_misses =
  Obs.Registry.counter "serve.cache.misses" ~help:"result-cache misses"

let c_evictions =
  Obs.Registry.counter "serve.cache.evictions"
    ~help:"result-cache LRU evictions"

let c_insertions =
  Obs.Registry.counter "serve.cache.insertions"
    ~help:"result-cache insertions of new keys"

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  (* [prev] is toward the front (MRU), [next] toward the back (LRU) *)
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type stats = { hits : int; misses : int; evictions : int; insertions : int }

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable front : ('k, 'v) node option;
  mutable back : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be >= 0";
  {
    cap = capacity;
    table = Hashtbl.create (max 8 capacity);
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.front <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.back <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.front;
  (match t.front with Some f -> f.prev <- Some node | None -> ());
  t.front <- Some node;
  match t.back with None -> t.back <- Some node | Some _ -> ()

let get t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      t.hits <- t.hits + 1;
      Obs.Counter.incr c_hits;
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr c_misses;
      None

let evict_back t =
  match t.back with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr c_evictions

let put t k v =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table k with
    | Some node ->
        node.value <- v;
        unlink t node;
        push_front t node
    | None ->
        let node = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.table k node;
        push_front t node;
        t.insertions <- t.insertions + 1;
        Obs.Counter.incr c_insertions;
        if Hashtbl.length t.table > t.cap then evict_back t

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k;
      true
  | None -> false

let keys_mru t =
  let rec walk acc node =
    match node with
    | None -> List.rev acc
    | Some n -> walk (n.key :: acc) n.next
  in
  walk [] t.front

let clear t =
  Hashtbl.reset t.table;
  t.front <- None;
  t.back <- None

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    insertions = t.insertions;
  }
