(** Scatter-gather shard tier: partition a dataset, run the offline
    pipeline (skyline → happy → StoredList) per shard, and merge the shard
    results into a coordinator whose answers are {e bit-identical} to the
    monolithic pipeline over the whole dataset.

    The partition is contiguous by row index, so concatenating the shards
    in order reproduces the original row order. Each shard computes its
    local naive skyline (and, for its own serving surface, local happy
    points and a local StoredList). The coordinator then concatenates the
    {e local skylines} — not the happy sets — and re-runs
    [Skyline.naive → Happy.happy_points → Stored_list.preprocess] on that
    union.

    Why this is exact (the oracle in [lib/check] asserts it): [naive] keeps
    row [i] iff no row dominates it and no {e earlier} row equals it.
    - A row cut from its local skyline is cut globally by the same witness.
    - A row kept locally but cut globally has its witness in another chunk;
      if that witness was itself cut locally, its dominator (transitively,
      a local-skyline member, since dominance chains are finite and an
      equal-earlier witness only moves the chain to a smaller index)
      survives into the concatenation and still cuts the row.
    - Duplicated maximal values keep exactly their first occurrence: the
      first occurrence has no earlier equal in its own chunk and survives
      locally, and contiguity keeps it earliest in the concatenation.
    So [naive (concat local skylines) = naive (all rows)] row-for-row, and
    the happy screen and GeoGreedy materialization then run on identical
    arrays — equality is inherited bit-for-bit, at every pool width.

    {b Approximation.} With [?approx] set to an ε, the scatter surface
    becomes each chunk's ε-kernel ({!Kregret_approx.Kernel}) instead of
    its skyline, and the coordinator {e rescans} the concatenated local
    kernels with the same net before the happy screen. The rescan makes
    the merge exact in the approximate world: per net direction, the
    global winner (the smallest-id maximizer) also wins its own shard's
    scan, so it survives into the union, and a first-wins scan over the
    ascending-id union elects it again — the merged kernel equals the
    whole-dataset kernel row for row, so the downstream pipeline (and
    therefore every answer) is bit-identical to
    {!Kregret_approx.Pipeline.run} at every shard count and pool width.

    Sharded datasets are static: there is no incremental repair across the
    merge (the server answers updates on them with [static_dataset]). *)

type t

val create :
  ?eps:float ->
  ?max_length:int ->
  ?approx:float ->
  shards:int ->
  Kregret_geom.Vector.t array ->
  t
(** Build the shard tier over normalized rows. [shards] is clamped to
    [1 .. n]; [eps]/[max_length] are threaded to every local pipeline and
    to the coordinator exactly as {!Kregret.Dynamic.create} would thread
    them. [approx] switches the scatter surface to per-chunk ε-kernels
    (see above). Runs on the calling thread (shards build sequentially —
    the parallelism lives inside each pipeline stage's pool use, so
    answers are independent of the pool width). *)

val shards : t -> int
(** The actual shard count after clamping. *)

val n : t -> int
(** Total rows. *)

val n_sky : t -> int
(** Size of the merged (= monolithic) skyline. *)

val n_happy : t -> int
(** Size of the merged happy set. *)

val stored_length : t -> int
(** Materialized coordinator list length. *)

val approx : t -> float
(** The ε this tier was built with; [0.] for the exact tier. *)

val kernel_size : t -> int
(** Rows in the merged (= whole-dataset) ε-kernel; [0] for the exact
    tier. *)

val query : t -> k:int -> int list * float
(** First [k] coordinator entries as original row ids, with the prefix's
    maximum regret ratio — same contract as
    {!Kregret.Dynamic.Snapshot.query}. *)

val mrr_at : t -> k:int -> float

val happy_ids : t -> int array
(** The merged happy set as original row ids — bit-identical to the
    monolithic happy set in exact mode (the merge argument above), the
    kernel-restricted happy set in approx mode. *)

val rank_regret : t -> k:int -> int list * Kregret_rrr.Rrr.rank
(** Rank-regret representative query over the sharded tier: a greedy
    [<= k]-subset of the merged skyline (the rank-complete candidate
    class — {!Kregret_rrr.Rrr.build}) minimizing the certified max rank
    over the {e full} dataset (the tier retains its input rows), and
    that prefix's certified rank. Candidates and universe equal the
    monolithic engine's, so answers are bit-identical to
    {!Kregret_rrr.Rrr.build} + [query] at every shard count. *)

val local_sizes : t -> (int * int * int) array
(** Per shard, [(rows, local skyline size, local happy size)] — the
    scatter phase's shape, for [stats]/[list] reporting. *)

val local_query : t -> shard:int -> k:int -> int list
(** First [k] entries of one shard's {e local} StoredList, as original row
    ids. The local answers are what a distributed deployment would serve
    from the shard replicas; they are {e not} in general a superset of the
    coordinator's answer, which is why the merge consumes skylines, not
    top-k lists. *)
