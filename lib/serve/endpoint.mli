(** Listener/connection endpoints for the serving tier.

    One wire core ({!Protocol}), many transports: the server can listen on
    any number of Unix-domain sockets and TCP sockets at once, and a client
    connects to any one of them. The textual syntax (the [--listen] /
    [--connect] CLI flags) is

    {v
      unix:PATH            Unix-domain stream socket at PATH
      tcp:HOST:PORT        TCP socket; HOST is an IPv4/IPv6 literal or a
                           resolvable name, PORT 0 asks the kernel for a
                           free port (resolved by {!local_of_fd})
    v}

    A bare string containing no [:] is accepted as a Unix path for
    backwards compatibility with [--socket]. *)

type t =
  | Unix_path of string
  | Tcp of string * int  (** host, port *)

val parse : string -> (t, string) result
(** [parse "unix:/tmp/s.sock"], [parse "tcp:127.0.0.1:7070"]. Total. *)

val to_string : t -> string
(** Round-trips with {!parse}. *)

val listen : ?backlog:int -> t -> (Unix.file_descr, string) result
(** Bind + listen (non-blocking listener fd). Unix paths: a stale socket
    file is unlinked first. TCP: [SO_REUSEADDR] is set and the host
    resolved; port 0 binds an ephemeral port. The caller owns the fd. *)

val connect : t -> (Unix.file_descr, string) result
(** A connected stream socket (blocking mode — the client reads
    synchronously). TCP connections set [TCP_NODELAY]: the protocol is
    request/response on single small frames, where Nagle only adds
    latency. *)

val local_of_fd : fd:Unix.file_descr -> t -> t
(** The endpoint as actually bound: resolves a [Tcp (_, 0)] wildcard to
    the kernel-assigned port via [getsockname]. Unix paths pass through. *)

val unlink_if_unix : t -> unit
(** Remove the socket file of a Unix endpoint, ignoring errors. *)
