(** Rank-regret representatives (RRR): the sibling query family to
    k-regret, served from the same skyline → geometry substrate.

    Where the regret ratio asks "what fraction of the best score does the
    selection lose?", rank-regret asks "how far down the full ranking can
    the selection's best member fall?" — a scale-free guarantee (Asudeh
    et al., "RRR: Rank-Regret Representative"; Xiao & Li, "Rank-Regret
    Minimization", PAPERS.md).

    {b Definitions.} For a direction [w >= 0] and dataset [D], the rank of
    a point [p] is [1 + #{q in D : w.q > w.p}] (strict ties share the
    better rank — the {e tie rule}; duplicates of [p] do not outrank it).
    The rank of a set [S] under [w] is the best member rank, which by a
    comparison-only identity (every step compares the same float scores,
    so it holds bit for bit) equals

    {v rank_w(S) = 1 + #{q in D : w.q > max over s in S of w.s} v}

    — one scan against the member maximum, no per-member ranking. The
    {e max rank} of [S] is the supremum of [rank_w(S)] over all non-zero
    [w >= 0]; a set with max rank [r] is in the top-[r] of every linear
    preference.

    {b d = 2: exact.} Directions normalize to [w = (t, 1 - t)], [t] in
    [(0, 1)]. For each (point, member) pair the beat predicate
    [w.q > w.s] changes at most once, at [t* = b / (b - a)] with
    [a = qx - sx], [b = qy - sy] (a crossing exists only when [a] and [b]
    have strictly opposite signs). Sweeping the sorted crossing events
    while maintaining per-point beat counts visits every cell of the
    direction arrangement, so the reported max rank is exact (in exact
    pairwise-sign semantics; a dot-product evaluation of the witness can
    disagree only when scores are within rounding error of a tie).

    {b d >= 3: certified sandwich.} Exact arrangement enumeration is
    superpolynomial, so the engine reports a certified interval
    [\[lo, hi\]]: [lo] is the best rank actually attained on the
    deterministic direction net of {!Kregret_approx.Kernel} (a realized
    witness — the true max rank is at least [lo]), and [hi] comes from the
    dual polytope [Q(S)] of {!Kregret_hull.Dual_polytope}: a point can
    outrank every member of [S] under {e some} direction iff its critical
    ratio is below 1, i.e. iff some vertex [v] of [Q(S)] has [q.v > 1], so
    [1 + #{q : max over vertices v of q.v > 1}] bounds [rank_w(S)] for
    {e every} [w] at once. The vertex scan is the blocked
    {!Kregret_geom.Flat.champions} kernel parallelized over disjoint
    target ranges.

    {b Determinism.} Every parallel region either writes disjoint slots or
    folds with {!Kregret_parallel.Pool.map_reduce} (sequential
    left-to-right reduce, first-wins argmax) — results are bit-identical
    for every pool width. The d = 2 sweep is sequential. *)

(** A certified rank interval. [lo <= true max rank] (realized by
    [witness]); [true max rank <= hi]. [exact] iff [lo = hi] — always in
    d <= 2. [witness] is the direction attaining [lo]: [(t, 1 - t)] in
    d = 2, a net direction ([||w||_inf = 1]) otherwise. *)
type rank = {
  lo : int;
  hi : int;
  witness : float array;
  exact : bool;
}

(** Default direction budget (1024): the net resolution is the largest
    [m] with [(m+1)^d - m^d <= budget], never below the [eps = 1]
    minimum grid. In high dimension even that minimum net can exceed
    the budget; it is then deterministically thinned (every stride-th
    direction) back under the budget — sound, since [lo] is a
    realized-witness bound for any direction subset. *)
val default_budget : int

(** [max_rank ~points set] — the certified max rank of the rows [set]
    (indices into [points]) over all linear preferences. Raises
    [Invalid_argument] on an empty [set], an empty dataset, or an
    out-of-range index. *)
val max_rank :
  ?budget:int -> points:Kregret_geom.Vector.t array -> int array -> rank

(** A built rank-regret engine: a greedy selection order over the
    candidate set minimizing the (certified) max rank of each prefix. *)
type t

(** [build points] preprocesses a normalized dataset:

    + candidates default to the naive skyline — the exact completeness
      class for rank: under any [w >= 0] a dominator scores at least its
      dominee, so [rank_w(dominator) <= rank_w(dominee)]. (GeoGreedy's
      happy funnel is deliberately {e not} used: subjugation only bounds
      scores against the virtual corners, so a non-happy skyline point
      can still be the strict top-1 of some direction, leaving the happy
      set impossible to drive to rank 1.) [?candidates] overrides with
      explicit row indices (the serving tier passes the shard-merged
      skyline — bit-identical to the default by the shard-merge
      invariant);
    + a rank matrix [R(j, c)] = rank of candidate [c] under net
      direction [j] against the {e full} dataset, one sorted score array
      per direction, parallel over directions;
    + greedy: repeatedly add the candidate minimizing
      [max over j of min(cur(j), R(j, c))] where [cur(j)] is the running
      set rank under direction [j] (ties: smallest candidate position
      wins), recording a certified {!rank} for every prefix, stopping at
      [?max_size] (default: all candidates) or when the bound reaches 1.

    The greedy order is a pure function of the candidate set — a prefix
    of a [build] with a larger [max_size] is bit-identical to a build
    with the smaller one, so per-[k] queries compose. Raises
    [Invalid_argument] on empty data or candidates, or [max_size < 1]. *)
val build :
  ?budget:int ->
  ?max_size:int ->
  ?candidates:int array ->
  Kregret_geom.Vector.t array ->
  t

(** [query t ~k] — the first [min k (size t)] greedy rows (original row
    indices, selection order) and the certified rank of that prefix.
    Raises [Invalid_argument] on [k < 1]. *)
val query : t -> k:int -> int list * rank

(** The full greedy order (original row indices). *)
val order : t -> int array

(** [bounds t].(i) — certified rank of the [(i + 1)]-prefix. [lo] is
    non-increasing along prefixes (an exact integer theorem: adding a
    member can only lower per-direction set ranks). *)
val bounds : t -> rank array

val size : t -> int
(** Rows actually selected ([<= max_size], fewer on early stop). *)

val sky_ids : t -> int array
(** Skyline row indices ([[||]] when [?candidates] was supplied). *)

val cand_ids : t -> int array
(** Candidate row indices the greedy ran over (the skyline by default). *)

val directions : t -> int
(** Net directions used for the rank matrix and [lo] certificates. *)

val resolution : t -> int
(** Net grid resolution [m]. *)

val dim : t -> int

(** [size_for t ~target] — the smallest prefix length whose certified
    [hi] is [<= target], if any prefix achieves it. *)
val size_for : t -> target:int -> int option
