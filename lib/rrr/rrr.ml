(* Rank-regret representatives. See rrr.mli for the geometry; DESIGN.md
   §"Rank-regret" for the exactness/certification arguments. *)

module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Pool = Kregret_parallel.Pool
module Skyline = Kregret_skyline.Skyline
module Dual_polytope = Kregret_hull.Dual_polytope
module Kernel = Kregret_approx.Kernel
module Obs = Kregret_obs

let c_builds = Obs.Registry.counter "rrr.builds" ~help:"rank-regret engine builds"

let c_rank_evals =
  Obs.Registry.counter "rrr.rank_evals" ~help:"certified max-rank evaluations"

let c_greedy_steps =
  Obs.Registry.counter "rrr.greedy_steps" ~help:"greedy selection steps"

let h_set_size =
  Obs.Registry.histogram "rrr.set_size"
    ~help:"greedy selection sizes at build completion"
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]

type rank = { lo : int; hi : int; witness : float array; exact : bool }

let default_budget = 1024

(* The direction set actually scanned: the grid net at the chosen
   resolution, possibly thinned to the budget. *)
type net = { n_dirs : Flat.t; n_res : int }

(* In high dimension even the coarsest net the eps API can express
   (eps = 1) exceeds the budget; keep every stride-th direction then.
   [lo] is a realized-witness bound — sound for any direction subset —
   and the stride is a pure function of the counts, so the thinned set
   is deterministic. *)
let thin_dirs dirs ~budget =
  let nd = Flat.rows dirs in
  if nd <= budget then dirs
  else begin
    let stride = ((nd + budget) - 1) / budget in
    let out =
      Flat.create
        ~capacity:(((nd + stride) - 1) / stride)
        ~dim:(Flat.dim dirs) ()
    in
    let j = ref 0 in
    while !j < nd do
      Flat.push_row out (Flat.row dirs !j);
      j := !j + stride
    done;
    out
  end

(* Finest resolution whose net fits the budget, never below the eps = 1
   minimum grid (eps = (d-1)/(2m) must stay in (0, 1]). d = 1 has the
   single direction [|1.|]. *)
let make_net ~d ~budget =
  if d = 1 then
    let nt = Kernel.net ~d ~eps:1.0 () in
    { n_dirs = nt.Kernel.dirs; n_res = nt.Kernel.resolution }
  else begin
    let b = float_of_int budget in
    let m = ref (Kernel.resolution_for ~d ~eps:1.0) in
    while Kernel.net_size ~d ~resolution:(!m + 1) <= b do incr m done;
    (* eps = (d-1)/(2m) maps back to exactly m (resolution_for's guard). *)
    let eps = float_of_int (d - 1) /. (2.0 *. float_of_int !m) in
    let nt = Kernel.net ~d ~eps () in
    { n_dirs = thin_dirs nt.Kernel.dirs ~budget; n_res = nt.Kernel.resolution }
  end

(* ------------------------------------------------------------------ *)
(* Single-direction rank: 1 + #{q : w.q > max over members of w.s}.
   Same fold discipline as everywhere else: member max replaces the
   incumbent only when [not (best >= x)]. *)

let rank_under ~flat ~set w =
  let best = ref (Flat.dot flat set.(0) w) in
  for j = 1 to Array.length set - 1 do
    let v = Flat.dot flat set.(j) w in
    if not (!best >= v) then best := v
  done;
  let best = !best in
  let beaten = ref 0 in
  let n = Flat.rows flat in
  for i = 0 to n - 1 do
    if Flat.dot flat i w > best then incr beaten
  done;
  1 + !beaten

(* ------------------------------------------------------------------ *)
(* d = 2: exact sweep over the pairwise crossing arrangement.

   w = (t, 1-t), t in (0, 1). Pair (q, s): the beat score difference is
   f(t) = b + t (a - b) with a = qx - sx, b = qy - sy — affine in t, so
   the beat predicate flips at most once, at t* = b / (b - a), and a
   flip inside (0, 1) requires a and b of strictly opposite signs.

   Float edges: a computed t* that rounds to 0 means the crossing sits
   below float resolution at the left end — start in the post-crossing
   state instead of emitting an unreachable event; a t* that rounds to
   1 never fires inside the open interval, so it is dropped. Events at
   bit-equal t are applied as one batch between interval evaluations,
   which is what makes exact duplicate/collinear degeneracies safe:
   their crossings share bit-identical crossing parameters. *)

let max_rank_2d ~flat ~set =
  let n = Flat.rows flat in
  let m = Array.length set in
  let xs = Array.init n (fun i -> Flat.get flat i 0) in
  let ys = Array.init n (fun i -> Flat.get flat i 1) in
  (* beat state per (point, member) pair, pair id = i * m + j *)
  let beats = Bytes.make (n * m) '\000' in
  let cnt = Array.make n 0 in
  let full = ref 0 in
  let events = ref [] in
  let n_events = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let s = set.(j) in
      let a = xs.(i) -. xs.(s) and b = ys.(i) -. ys.(s) in
      let beat0 = b > 0. || (b = 0. && a > 0.) in
      let beat =
        if (a > 0. && b < 0.) || (a < 0. && b > 0.) then begin
          let ts = b /. (b -. a) in
          if ts <= 0. then not beat0 (* crossing under float resolution *)
          else if ts >= 1. then beat0 (* never fires inside (0, 1) *)
          else begin
            events := (ts, (i * m) + j) :: !events;
            incr n_events;
            beat0
          end
        end
        else beat0
      in
      if beat then begin
        Bytes.set beats ((i * m) + j) '\001';
        cnt.(i) <- cnt.(i) + 1
      end
    done;
    if cnt.(i) = m then incr full
  done;
  let ev = Array.of_list !events in
  (* (t, pair) lexicographic: deterministic batch order; no NaNs here
     (opposite signs make b - a nonzero and finite). *)
  Array.sort compare ev;
  let ne = Array.length ev in
  let best = ref 0 and best_t = ref 0.5 in
  let prev = ref 0. in
  (* evaluate the open interval (!prev, upto) under the current state *)
  let flush upto =
    if upto > !prev then begin
      let r = 1 + !full in
      if r > !best then begin
        best := r;
        best_t := 0.5 *. (!prev +. upto)
      end
    end
  in
  let i = ref 0 in
  while !i < ne do
    let t, _ = ev.(!i) in
    flush t;
    while
      !i < ne
      &&
      let t', _ = ev.(!i) in
      t' = t
    do
      let _, p = ev.(!i) in
      let q = p / m in
      if Bytes.get beats p <> '\000' then begin
        Bytes.set beats p '\000';
        if cnt.(q) = m then decr full;
        cnt.(q) <- cnt.(q) - 1
      end
      else begin
        Bytes.set beats p '\001';
        cnt.(q) <- cnt.(q) + 1;
        if cnt.(q) = m then incr full
      end;
      incr i
    done;
    prev := t
  done;
  flush 1.;
  (!best, [| !best_t; 1. -. !best_t |])

(* ------------------------------------------------------------------ *)
(* d >= 3 lower bound: best rank realized on the direction net. The
   fold keeps the first direction attaining the max (strict > within a
   chunk, strict > across the left-to-right chunk fold). *)

let net_lo ~flat ~set net =
  let dirs = net.n_dirs in
  let nd = Flat.rows dirs in
  let n = Flat.rows flat in
  let d = Flat.dim flat in
  let cost = float_of_int (n * d * 4) in
  let map a b =
    let best = ref (-1) and best_j = ref 0 in
    for j = a to b - 1 do
      let r = rank_under ~flat ~set (Flat.row dirs j) in
      if r > !best then begin
        best := r;
        best_j := j
      end
    done;
    (!best, !best_j)
  in
  let reduce (r1, j1) (r2, j2) = if r2 > r1 then (r2, j2) else (r1, j1) in
  let r, j = Pool.map_reduce ~lo:0 ~hi:nd ~cost ~map ~reduce (-1, 0) in
  (r, Flat.row dirs j)

(* Upper bound via the dual polytope: q can outrank every member of S
   under some direction iff some vertex v of Q(S) has q.v > 1 (scale
   the witness w to member-max 1: it lands inside Q(S)). The bounding
   box must not clip the true Q(S), so its bound comes from the
   SELECTION's per-dimension maxima — 1.05 / min_i (max over members of
   coordinate i) dominates every w_i <= 1 / colmax_i attainable in
   Q(S). (Mrr.geometric can use the dataset's maxima only because its
   selections always contain the per-dimension boundary points.) *)

let dual_hi ~points ~flat ~set =
  let d = Flat.dim flat in
  let colmax = Array.make d neg_infinity in
  Array.iter
    (fun s ->
      let p = points.(s) in
      for j = 0 to d - 1 do
        if p.(j) > colmax.(j) then colmax.(j) <- p.(j)
      done)
    set;
  let mincol = Array.fold_left min infinity colmax in
  let bound = 1.05 /. mincol in
  let q = Dual_polytope.create ~bound ~dim:d () in
  Array.iter (fun s -> ignore (Dual_polytope.insert q points.(s))) set;
  let verts, _ids = Dual_polytope.flat_view q in
  let n = Flat.rows flat in
  let targets = Array.init n (fun i -> i) in
  let out_row = Array.make n (-1) and out_val = Array.make n nan in
  let cost = float_of_int (Flat.rows verts * d * 4) in
  Pool.map_reduce ~lo:0 ~hi:n ~cost
    ~map:(fun a b ->
      ignore
        (Flat.champions ~vertices:verts ~cands:flat targets ~tlo:a ~thi:b
           ~out_row ~out_val))
    ~reduce:(fun () () -> ())
    ();
  let beaten = ref 0 in
  for i = 0 to n - 1 do
    if out_val.(i) > 1.0 then incr beaten
  done;
  1 + !beaten

(* ------------------------------------------------------------------ *)

let validate_set ~n set =
  if Array.length set = 0 then invalid_arg "Rrr: empty member set";
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Rrr: member index out of range")
    set

let eval_rank ~points ~flat ~net set =
  Obs.Counter.incr c_rank_evals;
  let d = Flat.dim flat in
  if d = 1 then begin
    let w = [| 1.0 |] in
    let r = rank_under ~flat ~set w in
    { lo = r; hi = r; witness = w; exact = true }
  end
  else if d = 2 then begin
    let r, w = max_rank_2d ~flat ~set in
    { lo = r; hi = r; witness = w; exact = true }
  end
  else begin
    let lo, w = net_lo ~flat ~set net in
    let hi0 = dual_hi ~points ~flat ~set in
    (* DD vertex coordinates are rounded; never certify hi below a
       realized witness, nor above n (the best member outranks at most
       the other n - 1 points — a rounded vertex can otherwise count a
       member as beating its own set). *)
    let hi = min (Flat.rows flat) (if hi0 < lo then lo else hi0) in
    { lo; hi; witness = w; exact = lo = hi }
  end

let max_rank ?(budget = default_budget) ~points set =
  let n = Array.length points in
  if n = 0 then invalid_arg "Rrr.max_rank: empty dataset";
  if budget < 1 then invalid_arg "Rrr.max_rank: budget must be positive";
  validate_set ~n set;
  let d = Vector.dim points.(0) in
  let flat = Flat.of_rows points in
  let net = make_net ~d ~budget in
  eval_rank ~points ~flat ~net set

(* ------------------------------------------------------------------ *)

type t = {
  t_points : Vector.t array;
  t_d : int;
  t_net : net;
  t_sky : int array;
  t_cands : int array;
  t_order : int array;
  t_bounds : rank array;
}

let build ?(budget = default_budget) ?max_size ?candidates points =
  Obs.Counter.incr c_builds;
  Obs.Span.with_ "rrr.build" @@ fun () ->
  let n = Array.length points in
  if n = 0 then invalid_arg "Rrr.build: empty dataset";
  if budget < 1 then invalid_arg "Rrr.build: budget must be positive";
  (match max_size with
  | Some m when m < 1 -> invalid_arg "Rrr.build: max_size must be positive"
  | _ -> ());
  let d = Vector.dim points.(0) in
  let flat = Flat.of_rows points in
  let net = make_net ~d ~budget in
  let sky, cands =
    match candidates with
    | Some c ->
        validate_set ~n c;
        ([||], Array.copy c)
    | None ->
        (* the skyline, NOT the happy funnel: for w >= 0 a dominator
           scores at least its dominee, so rank_w(dominator) <=
           rank_w(dominee) and the skyline is rank-complete. Subjugation
           (the happy filter) only bounds scores against the virtual
           corners — max(w.q, ||w||_inf) >= w.p says nothing pointwise —
           so a non-happy skyline point can be the strict top-1 of a
           direction and the happy set can be impossible to drive to
           rank 1. *)
        let sky = Skyline.naive points in
        (sky, Array.copy sky)
  in
  let nc = Array.length cands in
  let dirs = net.n_dirs in
  let nd = Flat.rows dirs in
  (* Rank matrix: matrix.(j * nc + c) = rank of candidate c under net
     direction j vs the full dataset. Per direction: score everything,
     sort a copy descending, binary-search the strictly-greater count —
     each direction owns its matrix row, so the parallel_for writes are
     disjoint and the values scheduling-independent. *)
  let matrix = Array.make (nd * nc) 0 in
  let cost = float_of_int ((n * d * 4) + (n * 30)) in
  Pool.parallel_for ~lo:0 ~hi:nd ~cost (fun j ->
      let w = Flat.row dirs j in
      let scores = Array.init n (fun i -> Flat.dot flat i w) in
      let sorted = Array.copy scores in
      Array.sort (fun (x : float) y -> compare y x) sorted;
      let count_gt x =
        (* index of the first sorted entry <= x *)
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if sorted.(mid) > x then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let row = j * nc in
      Array.iteri (fun c id -> matrix.(row + c) <- 1 + count_gt scores.(id)) cands);
  (* Greedy: cur.(j) is the running set rank under direction j (n + 1
     sentinel = empty set); candidate c would improve it to
     min cur.(j) matrix.(j)(c). Pick the candidate minimizing the max —
     strict < keeps the first (lowest-position) candidate on ties, and
     map_reduce folds chunks left to right, so the choice is pool-width
     independent. *)
  let cap = match max_size with Some m -> min m nc | None -> nc in
  let cur = Array.make nd (n + 1) in
  let taken = Array.make nc false in
  let order = ref [] and bounds = ref [] and len = ref 0 in
  let stop = ref false in
  let eval_cost = float_of_int (nd * 4) in
  while (not !stop) && !len < cap do
    let map a b =
      let best = ref max_int and best_c = ref (-1) in
      for c = a to b - 1 do
        if not taken.(c) then begin
          let row_c = c in
          let worst = ref 0 in
          for j = 0 to nd - 1 do
            let r = matrix.((j * nc) + row_c) in
            let r = if cur.(j) < r then cur.(j) else r in
            if r > !worst then worst := r
          done;
          if !worst < !best then begin
            best := !worst;
            best_c := c
          end
        end
      done;
      (!best, !best_c)
    in
    let reduce (v1, c1) (v2, c2) =
      if c1 < 0 then (v2, c2)
      else if c2 >= 0 && v2 < v1 then (v2, c2)
      else (v1, c1)
    in
    let _, c =
      Pool.map_reduce ~lo:0 ~hi:nc ~cost:eval_cost ~map ~reduce (max_int, -1)
    in
    if c < 0 then stop := true
    else begin
      taken.(c) <- true;
      for j = 0 to nd - 1 do
        let r = matrix.((j * nc) + c) in
        if r < cur.(j) then cur.(j) <- r
      done;
      order := cands.(c) :: !order;
      incr len;
      Obs.Counter.incr c_greedy_steps;
      let prefix = Array.of_list (List.rev !order) in
      let b =
        if d = 1 then begin
          (* the single net direction covers all of R+ exactly *)
          let w = [| 1.0 |] in
          let r = cur.(0) in
          { lo = r; hi = r; witness = w; exact = true }
        end
        else if d = 2 then begin
          let r, w = max_rank_2d ~flat ~set:prefix in
          { lo = r; hi = r; witness = w; exact = true }
        end
        else begin
          (* cur.(j) IS rank_under the j-th direction for the prefix
             (same integer min-fold), so lo needs no rescan. *)
          let lo = ref 0 and lo_j = ref 0 in
          for j = 0 to nd - 1 do
            if cur.(j) > !lo then begin
              lo := cur.(j);
              lo_j := j
            end
          done;
          let hi0 = dual_hi ~points ~flat ~set:prefix in
          let hi = min n (if hi0 < !lo then !lo else hi0) in
          {
            lo = !lo;
            hi;
            witness = Flat.row dirs !lo_j;
            exact = !lo = hi;
          }
        end
      in
      Obs.Counter.incr c_rank_evals;
      bounds := b :: !bounds;
      if b.hi <= 1 then stop := true
    end
  done;
  Obs.Histogram.observe h_set_size (float_of_int !len);
  {
    t_points = points;
    t_d = d;
    t_net = net;
    t_sky = sky;
    t_cands = cands;
    t_order = Array.of_list (List.rev !order);
    t_bounds = Array.of_list (List.rev !bounds);
  }

let query t ~k =
  if k < 1 then invalid_arg "Rrr.query: k must be positive";
  let len = Array.length t.t_order in
  let take = if k < len then k else len in
  ( Array.to_list (Array.sub t.t_order 0 take),
    t.t_bounds.(take - 1) )

let order t = Array.copy t.t_order
let bounds t = Array.copy t.t_bounds
let size t = Array.length t.t_order
let sky_ids t = Array.copy t.t_sky
let cand_ids t = Array.copy t.t_cands
let directions t = Flat.rows t.t_net.n_dirs
let resolution t = t.t_net.n_res
let dim t = t.t_d

let size_for t ~target =
  let rec go i =
    if i >= Array.length t.t_bounds then None
    else if t.t_bounds.(i).hi <= target then Some (i + 1)
    else go (i + 1)
  in
  go 0
