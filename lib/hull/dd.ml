module Vector = Kregret_geom.Vector
module Matrix = Kregret_geom.Matrix
module Flat = Kregret_geom.Flat
module Obs = Kregret_obs

(* Observability: the double-description walk is sequential, so every count
   is a pure function of the constraint sequence. *)
let c_created =
  Obs.Registry.counter "dd.vertices_created"
    ~help:"vertices materialised (seed corners + cut intersections)"

let c_dropped =
  Obs.Registry.counter "dd.vertices_dropped"
    ~help:"vertices removed as cut off by a new constraint"

let c_constraints =
  Obs.Registry.counter "dd.constraints" ~help:"user constraints inserted"

let c_redundant =
  Obs.Registry.counter "dd.redundant_constraints"
    ~help:"inserted constraints that cut no vertex"

let c_dedup =
  Obs.Registry.counter "dd.dedup_hits"
    ~help:"candidate vertices rejected as duplicates of an accepted vertex"

type vertex = { id : int; w : Vector.t; tight : int array }

type t = {
  d : int;
  bound : float;
  (* constraint j: normals.(j) . w <= offsets.(j).
     Layout: 0..d-1 nonnegativity (-w_i <= 0), d..2d-1 box (w_i <= bound),
     2d.. user constraints. The normals live twice: flat in [cons] for the
     per-constraint dot sweeps (compute_tight, contains) and boxed in
     [normals] so the adjacency rank tests can share row pointers with
     {!Matrix.rank} without copying. *)
  mutable normals : Vector.t array;
  mutable offsets : float array;
  mutable ncons : int;
  cons : Flat.t;
  vertices : (int, vertex) Hashtbl.t;
  (* Flat mirror of the live vertex coordinates (ISSUE 6): row [r] of
     [store] belongs to vertex [ids.(r)] and [row_of_id] inverts that.
     Removal is swap-remove — the last row drops into the hole — so the
     row order is a pure function of the operation sequence and the hot
     sweeps (slack classification, max-dot, GeoGreedy's champion kernel)
     stream one contiguous buffer instead of walking the hashtable. *)
  store : Flat.t;
  mutable ids : int array;
  row_of_id : (int, int) Hashtbl.t;
  mutable next_id : int;
  mutable slack_buf : float array; (* scratch for the classification sweep *)
  class_eps : float; (* strictly-inside / on / cut classification *)
  tight_eps : float; (* tight-set recomputation *)
}

type event = {
  removed : int list;
  created : vertex list;
  touched : vertex list;
  redundant : bool;
}

let dim t = t.d
let num_vertices t = Hashtbl.length t.vertices
let num_constraints t = t.ncons - (2 * t.d)

(* store order: deterministic given the operation sequence *)
let vertices t =
  let out = ref [] in
  for r = Flat.rows t.store - 1 downto 0 do
    out := Hashtbl.find t.vertices t.ids.(r) :: !out
  done;
  !out

let find_vertex t id = Hashtbl.find_opt t.vertices id
let flat_view t = (t.store, t.ids)

let grow t =
  if t.ncons = Array.length t.normals then begin
    let cap = max 16 (2 * t.ncons) in
    let normals = Array.make cap [||] in
    let offsets = Array.make cap 0. in
    Array.blit t.normals 0 normals 0 t.ncons;
    Array.blit t.offsets 0 offsets 0 t.ncons;
    t.normals <- normals;
    t.offsets <- offsets
  end

let push_constraint t normal offset =
  grow t;
  let j = t.ncons in
  t.normals.(j) <- normal;
  t.offsets.(j) <- offset;
  Flat.push_row t.cons normal;
  t.ncons <- j + 1;
  j

let slack t j w = Flat.dot t.cons j w -. t.offsets.(j)

(* Tolerances scale with the vertex magnitude so that vertices sitting on the
   (potentially huge) artificial bounding box are classified as robustly as
   the unit-scale vertices the regret queries care about. *)
let vertex_scale w = Float.max 1. (Vector.norm_inf w)

(* Exact tight set of a point against all current constraints. *)
let compute_tight t w =
  let eps = t.tight_eps *. vertex_scale w in
  let out = ref [] in
  for j = t.ncons - 1 downto 0 do
    if abs_float (slack t j w) <= eps then out := j :: !out
  done;
  Array.of_list !out

let store_push t id (w : Vector.t) =
  Flat.push_row t.store w;
  let r = Flat.rows t.store - 1 in
  if r >= Array.length t.ids then begin
    let cap = max 16 (2 * Array.length t.ids) in
    let ids = Array.make cap (-1) in
    Array.blit t.ids 0 ids 0 (Array.length t.ids);
    t.ids <- ids
  end;
  t.ids.(r) <- id;
  Hashtbl.replace t.row_of_id id r

let store_remove t id =
  let r = Hashtbl.find t.row_of_id id in
  let last = Flat.rows t.store - 1 in
  Flat.swap_remove t.store r;
  Hashtbl.remove t.row_of_id id;
  if r <> last then begin
    let moved = t.ids.(last) in
    t.ids.(r) <- moved;
    Hashtbl.replace t.row_of_id moved r
  end

let fresh_vertex t w =
  Obs.Counter.incr c_created;
  let id = t.next_id in
  t.next_id <- id + 1;
  let v = { id; w; tight = compute_tight t w } in
  Hashtbl.replace t.vertices id v;
  store_push t id w;
  v

(* [create] seeds the vertex set with every corner of the bounding box:
   2^d vertices of d floats each. d = 17 would already allocate >1M corner
   vectors (~200 MB at d = 20) before any constraint arrives, far past the
   practical range of the dual-polytope index (the paper tops out at d = 10
   and EXPERIMENTS.md shows the face count exploding well before that), so
   the constructor refuses instead of silently thrashing. *)
let max_dim = 16

let create ?(bound = 1e3) ~dim () =
  if dim < 1 || dim > max_dim then
    invalid_arg
      (Printf.sprintf
         "Dd.create: dim %d out of [1, %d] (the seed box enumerates 2^d \
          corner vertices; beyond %d that is >10^5 allocations before any \
          work happens)"
         dim max_dim max_dim);
  let t =
    {
      d = dim;
      bound;
      normals = [||];
      offsets = [||];
      ncons = 0;
      cons = Flat.create ~capacity:32 ~dim ();
      vertices = Hashtbl.create 64;
      store = Flat.create ~capacity:64 ~dim ();
      ids = Array.make 64 (-1);
      row_of_id = Hashtbl.create 64;
      next_id = 0;
      slack_buf = Array.make 64 0.;
      class_eps = 1e-9;
      tight_eps = 1e-8;
    }
  in
  for i = 0 to dim - 1 do
    ignore (push_constraint t (Vector.scale (-1.) (Vector.basis dim i)) 0.)
  done;
  for i = 0 to dim - 1 do
    ignore (push_constraint t (Vector.basis dim i) bound)
  done;
  (* box corners *)
  for mask = 0 to (1 lsl dim) - 1 do
    let w =
      Array.init dim (fun i -> if mask land (1 lsl i) <> 0 then bound else 0.)
    in
    ignore (fresh_vertex t w)
  done;
  t

(* sorted-array intersection of two tight sets (no early abort: adjacency
   needs the full common set for the rank test below) *)
let intersect_tight a b =
  let la = Array.length a and lb = Array.length b in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out := x :: !out;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

(* u and v are adjacent iff their common tight constraints span a rank-(d-1)
   subspace (Fukuda–Prodon algebraic adjacency). *)
let adjacent t u v =
  let common = intersect_tight u.tight v.tight in
  if Array.length common < t.d - 1 then false
  else begin
    let m = Array.map (fun j -> t.normals.(j)) common in
    Matrix.rank ~eps:1e-9 m >= t.d - 1
  end

let add_constraint t ~normal ~offset =
  if Vector.dim normal <> t.d then
    invalid_arg "Dd.add_constraint: dimension mismatch";
  Obs.Counter.incr c_constraints;
  (* Classification sweep as one linear pass over the flat store — the
     former per-vertex [Vector.dot] hashtable walk was the Dd hot loop
     (ISSUE 6). The lists come out in store-row order, so the whole event
     (creation order, ids, dedup decisions) stays deterministic. *)
  let nrows = Flat.rows t.store in
  if Array.length t.slack_buf < nrows then
    t.slack_buf <- Array.make (max nrows (2 * Array.length t.slack_buf)) 0.;
  Flat.slacks t.store ~normal ~offset ~out:t.slack_buf;
  let cut = ref [] and kept_strict = ref [] and on = ref [] in
  for r = nrows - 1 downto 0 do
    let v = Hashtbl.find t.vertices t.ids.(r) in
    let s = t.slack_buf.(r) in
    let eps = t.class_eps *. vertex_scale v.w in
    if s > eps then cut := (v, s) :: !cut
    else if s < -.eps then kept_strict := (v, s) :: !kept_strict
    else on := v :: !on
  done;
  let j = push_constraint t normal offset in
  (* vertices exactly on the new hyperplane gain it in their tight set *)
  let touched =
    List.map
      (fun v ->
        let v' = { v with tight = compute_tight t v.w } in
        Hashtbl.replace t.vertices v.id v';
        v')
      !on
  in
  match !cut with
  | [] ->
      Obs.Counter.incr c_redundant;
      { removed = []; created = []; touched; redundant = true }
  | cut_list ->
      (* candidate new vertices: intersections of edges (u kept, v cut) *)
      let created = ref [] in
      let eps_dup = 10. *. t.tight_eps in
      let too_close x y = Vector.equal ~eps:eps_dup x y in
      (* Duplicate probe: the former [List.exists] over created @ on made
         degenerate cuts O(|candidates|^2). Instead hash every accepted
         vertex under a scalar key — a fixed positive combination h.x
         quantised to buckets wider than the key drift eps_dup * sum h of
         any two eps_dup-close points — and re-check [too_close] only in
         the candidate's bucket and its two neighbours. Exact same accept /
         reject decisions, amortised O(1) per candidate. *)
      let hcoef i = 1. +. (0.6180339887498949 *. float_of_int i) in
      let hkey x =
        let s = ref 0. in
        Array.iteri (fun i xi -> s := !s +. (hcoef i *. xi)) x;
        !s
      in
      let hsum =
        let s = ref 0. in
        for i = 0 to t.d - 1 do
          s := !s +. hcoef i
        done;
        !s
      in
      let bucket_w = Float.max 1e-300 (2. *. eps_dup *. hsum) in
      let bucket x = int_of_float (Float.floor (hkey x /. bucket_w)) in
      let buckets : (int, Vector.t list) Hashtbl.t = Hashtbl.create 64 in
      let remember x =
        let k = bucket x in
        let prev = try Hashtbl.find buckets k with Not_found -> [] in
        Hashtbl.replace buckets k (x :: prev)
      in
      let dup x =
        let k = bucket x in
        List.exists
          (fun k ->
            match Hashtbl.find_opt buckets k with
            | Some l -> List.exists (fun y -> too_close y x) l
            | None -> false)
          [ k - 1; k; k + 1 ]
      in
      List.iter (fun v -> remember v.w) !on;
      let consider x =
        if dup x then Obs.Counter.incr c_dedup
        else begin
          remember x;
          created := fresh_vertex t x :: !created
        end
      in
      List.iter
        (fun (v, sv) ->
          List.iter
            (fun (u, su) ->
              if adjacent t u v then begin
                let alpha = su /. (su -. sv) in
                consider (Vector.lerp u.w v.w alpha)
              end)
            !kept_strict)
        cut_list;
      List.iter
        (fun (v, _) ->
          Hashtbl.remove t.vertices v.id;
          store_remove t v.id)
        cut_list;
      Obs.Counter.add c_dropped (List.length cut_list);
      ignore j;
      {
        removed = List.map (fun (v, _) -> v.id) cut_list;
        created = !created;
        touched;
        redundant = false;
      }

let max_dot t q =
  if Flat.rows t.store = 0 then
    invalid_arg "Dd.max_dot: polytope has no vertices";
  let r, x = Flat.argmax_dot t.store q in
  (Hashtbl.find t.vertices t.ids.(r), x)

let contains ~eps t w =
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < t.ncons do
    if slack t !j w > eps then ok := false;
    incr j
  done;
  !ok

let check_invariants ?(eps = 1e-7) t =
  Hashtbl.iter
    (fun _ v ->
      if not (contains ~eps t v.w) then
        failwith
          (Format.asprintf "Dd: vertex %d = %a violates a constraint" v.id
             Vector.pp v.w);
      let recomputed = compute_tight t v.w in
      if recomputed <> v.tight then
        failwith (Printf.sprintf "Dd: vertex %d has a stale tight set" v.id);
      let m = Array.map (fun j -> t.normals.(j)) v.tight in
      if Matrix.rank ~eps:1e-9 m < t.d then
        failwith
          (Printf.sprintf "Dd: vertex %d tight set has rank < d" v.id))
    t.vertices;
  (* the flat mirror must agree with the hashtable bit for bit *)
  if Flat.rows t.store <> Hashtbl.length t.vertices then
    failwith "Dd: flat store row count disagrees with the vertex table";
  for r = 0 to Flat.rows t.store - 1 do
    let id = t.ids.(r) in
    (match Hashtbl.find_opt t.row_of_id id with
    | Some r' when r' = r -> ()
    | _ -> failwith (Printf.sprintf "Dd: row_of_id stale for vertex %d" id));
    match Hashtbl.find_opt t.vertices id with
    | None -> failwith (Printf.sprintf "Dd: store row %d has no vertex" r)
    | Some v ->
        for c = 0 to t.d - 1 do
          if
            Int64.bits_of_float (Flat.get t.store r c)
            <> Int64.bits_of_float v.w.(c)
          then
            failwith
              (Printf.sprintf "Dd: store row %d diverges from vertex %d" r id)
        done
  done;
  (* the flat constraint matrix mirrors the boxed normals *)
  if Flat.rows t.cons <> t.ncons then
    failwith "Dd: flat constraint matrix out of sync";
  for j = 0 to t.ncons - 1 do
    for c = 0 to t.d - 1 do
      if
        Int64.bits_of_float (Flat.get t.cons j c)
        <> Int64.bits_of_float t.normals.(j).(c)
      then failwith (Printf.sprintf "Dd: flat constraint %d diverges" j)
    done
  done
