module Vector = Kregret_geom.Vector
module Matrix = Kregret_geom.Matrix
module Obs = Kregret_obs

(* Observability: the double-description walk is sequential, so every count
   is a pure function of the constraint sequence. *)
let c_created =
  Obs.Registry.counter "dd.vertices_created"
    ~help:"vertices materialised (seed corners + cut intersections)"

let c_dropped =
  Obs.Registry.counter "dd.vertices_dropped"
    ~help:"vertices removed as cut off by a new constraint"

let c_constraints =
  Obs.Registry.counter "dd.constraints" ~help:"user constraints inserted"

let c_redundant =
  Obs.Registry.counter "dd.redundant_constraints"
    ~help:"inserted constraints that cut no vertex"

let c_dedup =
  Obs.Registry.counter "dd.dedup_hits"
    ~help:"candidate vertices rejected as duplicates of an accepted vertex"

type vertex = { id : int; w : Vector.t; tight : int array }

type t = {
  d : int;
  bound : float;
  (* constraint j: normals.(j) . w <= offsets.(j).
     Layout: 0..d-1 nonnegativity (-w_i <= 0), d..2d-1 box (w_i <= bound),
     2d.. user constraints. *)
  mutable normals : Vector.t array;
  mutable offsets : float array;
  mutable ncons : int;
  vertices : (int, vertex) Hashtbl.t;
  mutable next_id : int;
  class_eps : float; (* strictly-inside / on / cut classification *)
  tight_eps : float; (* tight-set recomputation *)
}

type event = {
  removed : int list;
  created : vertex list;
  touched : vertex list;
  redundant : bool;
}

let dim t = t.d
let num_vertices t = Hashtbl.length t.vertices
let num_constraints t = t.ncons - (2 * t.d)
let vertices t = Hashtbl.fold (fun _ v acc -> v :: acc) t.vertices []
let find_vertex t id = Hashtbl.find_opt t.vertices id

let grow t =
  if t.ncons = Array.length t.normals then begin
    let cap = max 16 (2 * t.ncons) in
    let normals = Array.make cap [||] in
    let offsets = Array.make cap 0. in
    Array.blit t.normals 0 normals 0 t.ncons;
    Array.blit t.offsets 0 offsets 0 t.ncons;
    t.normals <- normals;
    t.offsets <- offsets
  end

let push_constraint t normal offset =
  grow t;
  let j = t.ncons in
  t.normals.(j) <- normal;
  t.offsets.(j) <- offset;
  t.ncons <- j + 1;
  j

let slack t j w = Vector.dot t.normals.(j) w -. t.offsets.(j)

(* Tolerances scale with the vertex magnitude so that vertices sitting on the
   (potentially huge) artificial bounding box are classified as robustly as
   the unit-scale vertices the regret queries care about. *)
let vertex_scale w = Float.max 1. (Vector.norm_inf w)

(* Exact tight set of a point against all current constraints. *)
let compute_tight t w =
  let eps = t.tight_eps *. vertex_scale w in
  let out = ref [] in
  for j = t.ncons - 1 downto 0 do
    if abs_float (slack t j w) <= eps then out := j :: !out
  done;
  Array.of_list !out

let fresh_vertex t w =
  Obs.Counter.incr c_created;
  let id = t.next_id in
  t.next_id <- id + 1;
  let v = { id; w; tight = compute_tight t w } in
  Hashtbl.replace t.vertices id v;
  v

(* [create] seeds the vertex set with every corner of the bounding box:
   2^d vertices of d floats each. d = 17 would already allocate >1M corner
   vectors (~200 MB at d = 20) before any constraint arrives, far past the
   practical range of the dual-polytope index (the paper tops out at d = 10
   and EXPERIMENTS.md shows the face count exploding well before that), so
   the constructor refuses instead of silently thrashing. *)
let max_dim = 16

let create ?(bound = 1e3) ~dim () =
  if dim < 1 || dim > max_dim then
    invalid_arg
      (Printf.sprintf
         "Dd.create: dim %d out of [1, %d] (the seed box enumerates 2^d \
          corner vertices; beyond %d that is >10^5 allocations before any \
          work happens)"
         dim max_dim max_dim);
  let t =
    {
      d = dim;
      bound;
      normals = [||];
      offsets = [||];
      ncons = 0;
      vertices = Hashtbl.create 64;
      next_id = 0;
      class_eps = 1e-9;
      tight_eps = 1e-8;
    }
  in
  for i = 0 to dim - 1 do
    ignore (push_constraint t (Vector.scale (-1.) (Vector.basis dim i)) 0.)
  done;
  for i = 0 to dim - 1 do
    ignore (push_constraint t (Vector.basis dim i) bound)
  done;
  (* box corners *)
  for mask = 0 to (1 lsl dim) - 1 do
    let w =
      Array.init dim (fun i -> if mask land (1 lsl i) <> 0 then bound else 0.)
    in
    ignore (fresh_vertex t w)
  done;
  t

(* sorted-array intersection of two tight sets (no early abort: adjacency
   needs the full common set for the rank test below) *)
let intersect_tight a b =
  let la = Array.length a and lb = Array.length b in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out := x :: !out;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

(* u and v are adjacent iff their common tight constraints span a rank-(d-1)
   subspace (Fukuda–Prodon algebraic adjacency). *)
let adjacent t u v =
  let common = intersect_tight u.tight v.tight in
  if Array.length common < t.d - 1 then false
  else begin
    let m = Array.map (fun j -> t.normals.(j)) common in
    Matrix.rank ~eps:1e-9 m >= t.d - 1
  end

let add_constraint t ~normal ~offset =
  if Vector.dim normal <> t.d then
    invalid_arg "Dd.add_constraint: dimension mismatch";
  Obs.Counter.incr c_constraints;
  let slacks = Hashtbl.create (num_vertices t) in
  let cut = ref [] and kept_strict = ref [] and on = ref [] in
  Hashtbl.iter
    (fun id v ->
      let s = Vector.dot normal v.w -. offset in
      let eps = t.class_eps *. vertex_scale v.w in
      Hashtbl.replace slacks id s;
      if s > eps then cut := v :: !cut
      else if s < -.eps then kept_strict := v :: !kept_strict
      else on := v :: !on)
    t.vertices;
  let j = push_constraint t normal offset in
  (* vertices exactly on the new hyperplane gain it in their tight set *)
  let touched =
    List.map
      (fun v ->
        let v' = { v with tight = compute_tight t v.w } in
        Hashtbl.replace t.vertices v.id v';
        v')
      !on
  in
  match !cut with
  | [] ->
      Obs.Counter.incr c_redundant;
      { removed = []; created = []; touched; redundant = true }
  | cut_list ->
      (* candidate new vertices: intersections of edges (u kept, v cut) *)
      let created = ref [] in
      let eps_dup = 10. *. t.tight_eps in
      let too_close x y = Vector.equal ~eps:eps_dup x y in
      (* Duplicate probe: the former [List.exists] over created @ on made
         degenerate cuts O(|candidates|^2). Instead hash every accepted
         vertex under a scalar key — a fixed positive combination h.x
         quantised to buckets wider than the key drift eps_dup * sum h of
         any two eps_dup-close points — and re-check [too_close] only in
         the candidate's bucket and its two neighbours. Exact same accept /
         reject decisions, amortised O(1) per candidate. *)
      let hcoef i = 1. +. (0.6180339887498949 *. float_of_int i) in
      let hkey x =
        let s = ref 0. in
        Array.iteri (fun i xi -> s := !s +. (hcoef i *. xi)) x;
        !s
      in
      let hsum =
        let s = ref 0. in
        for i = 0 to t.d - 1 do
          s := !s +. hcoef i
        done;
        !s
      in
      let bucket_w = Float.max 1e-300 (2. *. eps_dup *. hsum) in
      let bucket x = int_of_float (Float.floor (hkey x /. bucket_w)) in
      let buckets : (int, Vector.t list) Hashtbl.t = Hashtbl.create 64 in
      let remember x =
        let k = bucket x in
        let prev = try Hashtbl.find buckets k with Not_found -> [] in
        Hashtbl.replace buckets k (x :: prev)
      in
      let dup x =
        let k = bucket x in
        List.exists
          (fun k ->
            match Hashtbl.find_opt buckets k with
            | Some l -> List.exists (fun y -> too_close y x) l
            | None -> false)
          [ k - 1; k; k + 1 ]
      in
      List.iter (fun v -> remember v.w) !on;
      let consider x =
        if dup x then Obs.Counter.incr c_dedup
        else begin
          remember x;
          created := fresh_vertex t x :: !created
        end
      in
      List.iter
        (fun v ->
          let sv = Hashtbl.find slacks v.id in
          List.iter
            (fun u ->
              if adjacent t u v then begin
                let su = Hashtbl.find slacks u.id in
                let alpha = su /. (su -. sv) in
                consider (Vector.lerp u.w v.w alpha)
              end)
            !kept_strict)
        cut_list;
      List.iter (fun v -> Hashtbl.remove t.vertices v.id) cut_list;
      Obs.Counter.add c_dropped (List.length cut_list);
      ignore j;
      {
        removed = List.map (fun v -> v.id) cut_list;
        created = !created;
        touched;
        redundant = false;
      }

let max_dot t q =
  let best = ref None in
  Hashtbl.iter
    (fun _ v ->
      let x = Vector.dot v.w q in
      match !best with
      | Some (_, bx) when bx >= x -> ()
      | _ -> best := Some (v, x))
    t.vertices;
  match !best with
  | Some r -> r
  | None -> invalid_arg "Dd.max_dot: polytope has no vertices"

let contains ~eps t w =
  let ok = ref true in
  for j = 0 to t.ncons - 1 do
    if slack t j w > eps then ok := false
  done;
  !ok

let check_invariants ?(eps = 1e-7) t =
  Hashtbl.iter
    (fun _ v ->
      if not (contains ~eps t v.w) then
        failwith
          (Format.asprintf "Dd: vertex %d = %a violates a constraint" v.id
             Vector.pp v.w);
      let recomputed = compute_tight t v.w in
      if recomputed <> v.tight then
        failwith (Printf.sprintf "Dd: vertex %d has a stale tight set" v.id);
      let m = Array.map (fun j -> t.normals.(j)) v.tight in
      if Matrix.rank ~eps:1e-9 m < t.d then
        failwith
          (Printf.sprintf "Dd: vertex %d tight set has rank < d" v.id))
    t.vertices
