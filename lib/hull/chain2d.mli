(** Exact 2-D convex hull of a downward-closed point set, by Andrew's
    monotone chain.

    The 2-D specialization of the paper's [Conv(S)]: the faces not through
    the origin are the edges of the "upper-right" chain from the point with
    maximal x to the point with maximal y (plus the two axis-projection
    edges). Used as an independent reference implementation against which the
    d-dimensional dual machinery is property-tested, and by the figures of
    the running example. *)

type hull = {
  chain : Kregret_geom.Vector.t array;
      (** extreme points of the upper-right chain, ordered by decreasing x
          (equivalently increasing y); the first element maximizes x, the
          last maximizes y *)
}

(** [upper_chain points] computes the chain of extreme points of the downward
    closure of [points] (all in the non-negative quadrant). Raises
    [Invalid_argument] on an empty list or non-2-D points. *)
val upper_chain : Kregret_geom.Vector.t list -> hull

(** [extreme_points points] is the subset of [points] lying on the chain —
    the 2-D [D_conv]. *)
val extreme_points : Kregret_geom.Vector.t list -> Kregret_geom.Vector.t list

(** [critical_ratio hull q] is [cr(q, S)] computed by walking the chain:
    the ray from the origin through [q] crosses exactly one chain edge (or
    one of the axis-projection edges). *)
val critical_ratio : hull -> Kregret_geom.Vector.t -> float

(** [max_regret_ratio points ~data] is the 2-D [mrr] reference:
    [max 0 (1 - min_q critical_ratio q)]. *)
val max_regret_ratio :
  Kregret_geom.Vector.t list -> data:Kregret_geom.Vector.t list -> float
