(** Extreme points of the downward-closed hull — the paper's [D_conv].

    [D_conv] is the set of points of [D] that are extreme points of
    [Conv(D)]; by Lemma 3 it is contained in [D_happy]. Deciding extremality
    in general dimension is done with one small LP per candidate
    ({!Kregret_lp.Regret_lp.in_convex_position}). Candidates should normally
    be pre-filtered to skyline points: a dominated point is never extreme,
    and the LP count drops from [|D|] to [|D_sky|]. *)

(** [extreme_points candidates] returns the members of [candidates] that are
    extreme points of the downward closure of the whole list. Duplicated
    points are never reported extreme (neither copy). A deterministic
    direction-sampling pre-pass ([samples] directions, default 4096)
    certifies unique maximizers as extreme before the per-point LP fallback
    runs — on realistic skylines most extreme points are settled by the
    pre-pass. *)
val extreme_points :
  ?eps:float -> ?samples:int -> Kregret_geom.Vector.t list ->
  Kregret_geom.Vector.t list

(** [is_extreme ~others p] decides a single point (see
    {!Kregret_lp.Regret_lp.in_convex_position}). *)
val is_extreme :
  ?eps:float -> others:Kregret_geom.Vector.t list -> Kregret_geom.Vector.t ->
  bool
