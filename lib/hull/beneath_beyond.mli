(** Incremental (beneath-beyond) convex hull in R^d.

    The primal-side counterpart of the dual machinery in {!Dd}: the paper
    describes GeoGreedy in terms of the faces of the primal hull [Conv(S)]
    and a ray-shooting index over them; this library computes with the dual
    polytope instead (DESIGN.md §2). This module provides an independent,
    direct primal hull so the test suite can cross-validate the two views
    (hull membership vs LP membership, support functions, vertex sets) and
    so users get a general-purpose hull for their own geometry.

    Facets are simplicial ((d)-vertex). The implementation assumes points in
    {e general position}: a point lying exactly on a facet's hyperplane
    (within [eps]) is treated as interior, so for degenerate inputs the
    reported hull may omit boundary-coplanar vertices — acceptable for the
    validation use-case, by design. Raises on inputs whose affine hull is
    lower-dimensional. *)

type facet = {
  normal : Kregret_geom.Vector.t;  (** outward unit normal *)
  offset : float;  (** [normal . x = offset] contains the facet *)
  vertices : int array;  (** sorted indices of the d vertices *)
}

type t

(** [of_points points] computes the hull. Raises [Invalid_argument] when
    fewer than [d+1] affinely independent points exist. [eps] (default
    [1e-9]) is the visibility tolerance. *)
val of_points : ?eps:float -> Kregret_geom.Vector.t array -> t

(** [facets t] is the simplicial facet list. *)
val facets : t -> facet list

(** [num_facets t] is [List.length (facets t)]. *)
val num_facets : t -> int

(** [vertices t] is the sorted list of input indices that appear as hull
    vertices. *)
val vertices : t -> int list

(** [contains ?eps t p] tests hull membership (below every facet). *)
val contains : ?eps:float -> t -> Kregret_geom.Vector.t -> bool

(** [support t w] is [max { x . w : x in hull }], attained at a vertex. *)
val support : t -> Kregret_geom.Vector.t -> float

(** [check_invariants t] — every facet's vertices lie on its hyperplane,
    every input point lies on or below every facet, and every ridge is
    shared by exactly two facets. Raises [Failure] on violation. *)
val check_invariants : t -> unit
