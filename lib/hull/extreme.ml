module Vector = Kregret_geom.Vector
module Regret_lp = Kregret_lp.Regret_lp

let is_extreme ?eps ~others p = Regret_lp.in_convex_position ?eps ~others p

(* Cheap deterministic direction stream (splitmix-style) for the sampling
   pre-pass; kept local to avoid a dependency on the dataset library. *)
let direction_stream seed d =
  let state = ref (Int64.of_int (0x9E37 + seed)) in
  let next_word () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let next_float () =
    Int64.to_float (Int64.shift_right_logical (next_word ()) 11) *. 0x1.0p-53
  in
  fun () ->
    (* mix of dense and sparse non-negative directions *)
    let w = Array.make d 0. in
    if next_float () < 0.5 then
      for i = 0 to d - 1 do
        w.(i) <- -.log (Float.max 1e-12 (next_float ()))
      done
    else begin
      let support = 1 + int_of_float (next_float () *. float_of_int d) in
      for _ = 1 to support do
        w.(int_of_float (next_float () *. float_of_int d)) <- 0.05 +. next_float ()
      done
    end;
    if Vector.norm w = 0. then w.(0) <- 1.;
    w

(* Clarkson's output-sensitive convex-position algorithm, adapted to
   downward-closed hulls. A confirmed-extreme support set [E] grows as
   witnesses are discovered; every candidate is tested against [E] only, so
   each LP has at most [|D_conv|] constraints instead of [n]:

   - if the candidate lies in the downward closure of [E], it lies in the
     closure of the full set (E is a subset) — non-extreme, done;
   - otherwise the LP's witness direction [w] separates it from [E]; the
     maximizer of [w] over ALL candidates is extreme, joins [E], and the
     candidate is retried.

   Each retry grows [E], so the loop terminates after at most [|D_conv|]
   rounds per candidate and [n + |D_conv|^2] LPs overall (in practice far
   fewer: the sampling pre-pass seeds [E] with the easy vertices). *)
let extreme_points ?eps ?(samples = 4096) candidates =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let d = Vector.dim arr.(0) in
    let extreme = Array.make n false in
    let in_support = Array.make n false in
    let support = ref [] in
    let add_support i =
      if not in_support.(i) then begin
        in_support.(i) <- true;
        extreme.(i) <- true;
        support := arr.(i) :: !support
      end
    in
    let argmax_unique w =
      let best = ref 0 and best_v = ref (Vector.dot w arr.(0)) in
      let second = ref neg_infinity in
      for i = 1 to n - 1 do
        let v = Vector.dot w arr.(i) in
        if v > !best_v then begin
          second := !best_v;
          best := i;
          best_v := v
        end
        else if v > !second then second := v
      done;
      if !best_v > !second +. 1e-9 then Some !best else None
    in
    (* sampling pre-pass seeds the support set with easy vertices *)
    let next = direction_stream n d in
    for _ = 1 to samples do
      match argmax_unique (next ()) with
      | Some i -> add_support i
      | None -> ()
    done;
    for i = 0 to n - 1 do
      if not extreme.(i) then begin
        let decided = ref false in
        while not !decided do
          match
            Regret_lp.separating_direction ?eps ~others:!support arr.(i)
          with
          | None -> decided := true (* inside conv(E) => inside conv(all) *)
          | Some w -> (
              match argmax_unique w with
              | Some j when j = i ->
                  add_support i;
                  decided := true
              | Some j when not in_support.(j) -> add_support j
              | Some _ | None ->
                  (* the witness maximizer is already in E (or tied):
                     numerically marginal candidate — settle with the exact
                     full LP *)
                  let others = ref [] in
                  for j = 0 to n - 1 do
                    if j <> i then others := arr.(j) :: !others
                  done;
                  if is_extreme ?eps ~others:!others arr.(i) then
                    add_support i;
                  decided := true)
        done
      end
    done;
    let keep = ref [] in
    for i = n - 1 downto 0 do
      if extreme.(i) then keep := arr.(i) :: !keep
    done;
    !keep
  end
