module Vector = Kregret_geom.Vector

type t = { dd : Dd.t; mutable inserted : int }

let create ?bound ~dim () = { dd = Dd.create ?bound ~dim (); inserted = 0 }

let insert t p =
  if not (Vector.is_nonneg ~eps:0. p) then
    invalid_arg "Dual_polytope.insert: points must be non-negative";
  t.inserted <- t.inserted + 1;
  Dd.add_constraint t.dd ~normal:p ~offset:1.

let champion t q = Dd.max_dot t.dd q

let critical_ratio t q =
  let _, m = champion t q in
  if m <= 0. then infinity else 1. /. m

let max_regret_ratio t ~data =
  let worst =
    List.fold_left (fun acc q -> Float.min acc (critical_ratio t q)) infinity data
  in
  Float.max 0. (1. -. worst)

let num_vertices t = Dd.num_vertices t.dd
let flat_view t = Dd.flat_view t.dd
let selection_size t = t.inserted
let dd t = t.dd
