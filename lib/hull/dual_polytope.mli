(** The dual polytope [Q(S) = { w >= 0 : p . w <= 1, p in S }] of a selection
    [S], with regret-query semantics.

    By the polarity argument spelled out in DESIGN.md §2, the vertices of
    [Q(S)] are (scaled to offset 1) the hyperplanes containing the faces of
    the paper's [Conv(S)] that do not pass through the origin, and

    {v cr(q, S) = 1 / max { w . q : w vertex of Q(S) } v}

    so the paper's ray-shooting query (Definition 5) is a max-dot-product
    scan here, and inserting a point into [S] updates only the vertices cut
    by its halfspace — the incremental index of Section IV-A.

    Precondition inherited from the paper: the data is normalized so that for
    each dimension [i] some point has value 1, and the selection is seeded
    with such boundary points ({!Geo_greedy} does this). Before boundary
    points are inserted, critical ratios are computed against an artificial
    bounding box and are only meaningful as "very small". *)

type t

(** [create ~dim ()] is [Q] of the empty selection (the bounding box — see
    {!Dd.create}). *)
val create : ?bound:float -> dim:int -> unit -> t

(** [insert t p] adds point [p] to the selection; returns the {!Dd.event}
    describing which dual vertices died and which were created. *)
val insert : t -> Kregret_geom.Vector.t -> Dd.event

(** [critical_ratio t q] is [cr(q, S)] (Definition 3 of the paper) for the
    current selection. Values [< 1] mean [q] sticks out of [Conv(S)];
    [>= 1] means [q] is covered. *)
val critical_ratio : t -> Kregret_geom.Vector.t -> float

(** [champion t q] is the dual vertex attaining [max w . q] and the value —
    the face of [Conv(S)] crossed by the ray through [q], in dual clothing.
    [critical_ratio t q = 1. /. snd (champion t q)] when the value is
    positive. *)
val champion : t -> Kregret_geom.Vector.t -> Dd.vertex * float

(** [max_regret_ratio t ~data] is [mrr(S)] by Lemma 1:
    [max 0 (1 - min_q cr(q, S))] over [q] in [data]. *)
val max_regret_ratio : t -> data:Kregret_geom.Vector.t list -> float

(** [num_vertices t] is the current number of dual vertices (= number of
    primal faces not through the origin, up to degeneracy). *)
val num_vertices : t -> int

(** [selection_size t] counts inserted points. *)
val selection_size : t -> int

(** [flat_view t] is {!Dd.flat_view} of the underlying structure: the flat
    vertex-coordinate matrix and its row → vertex-id map, for the blocked
    champion kernel (ISSUE 6). *)
val flat_view : t -> Kregret_geom.Flat.t * int array

(** [dd t] exposes the underlying double-description structure (used by the
    incremental GeoGreedy and by tests). *)
val dd : t -> Dd.t
