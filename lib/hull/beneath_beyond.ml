module Vector = Kregret_geom.Vector
module Matrix = Kregret_geom.Matrix
module Hyperplane = Kregret_geom.Hyperplane

type facet = { normal : Vector.t; offset : float; vertices : int array }

type t = {
  points : Vector.t array;
  mutable facet_list : facet list;
  interior : Vector.t; (* a point strictly inside, used to orient normals *)
  eps : float;
}

let facets t = t.facet_list
let num_facets t = List.length t.facet_list

let eval f p = Vector.dot f.normal p -. f.offset

(* Build a facet through the given vertex indices, oriented away from the
   interior point. Returns [None] when the vertices are affinely dependent
   (degenerate ridge): such candidate facets are skipped. *)
let make_facet points interior idxs =
  let pts = List.map (fun i -> points.(i)) idxs in
  match Hyperplane.through_points pts with
  | None -> None
  | Some h ->
      let v = Hyperplane.eval h interior in
      if abs_float v < 1e-13 then None
      else
        let normal, offset =
          if v > 0. then (Vector.scale (-1.) h.Hyperplane.normal, -.h.Hyperplane.offset)
          else (h.Hyperplane.normal, h.Hyperplane.offset)
        in
        let vertices = Array.of_list (List.sort compare idxs) in
        Some { normal; offset; vertices }

(* greedily pick d+1 affinely independent points *)
let initial_simplex points d =
  let n = Array.length points in
  let chosen = ref [ 0 ] in
  let i = ref 1 in
  while List.length !chosen < d + 1 && !i < n do
    let candidate = !i in
    let base = points.(List.hd (List.rev !chosen)) in
    ignore base;
    let p0 = points.(List.nth !chosen 0) in
    let diffs =
      List.filteri (fun j _ -> j > 0) !chosen @ [ candidate ]
      |> List.map (fun j -> Vector.sub points.(j) p0)
    in
    let rank = Matrix.rank ~eps:1e-9 (Matrix.of_rows diffs) in
    if rank = List.length diffs then chosen := !chosen @ [ candidate ];
    incr i
  done;
  if List.length !chosen < d + 1 then
    invalid_arg "Beneath_beyond: points are not full-dimensional";
  !chosen

(* all (d-1)-subsets of a facet's vertex array = its ridges *)
let ridges_of vertices =
  let n = Array.length vertices in
  List.init n (fun drop ->
      Array.to_list vertices |> List.filteri (fun j _ -> j <> drop))

let insert t p_idx =
  let p = t.points.(p_idx) in
  let visible, hidden =
    List.partition (fun f -> eval f p > t.eps) t.facet_list
  in
  if visible = [] then ()
  else begin
    (* horizon ridges: ridges of visible facets not shared with another
       visible facet *)
    let counter = Hashtbl.create 64 in
    List.iter
      (fun f ->
        List.iter
          (fun ridge ->
            let key = ridge in
            Hashtbl.replace counter key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counter key)))
          (ridges_of f.vertices))
      visible;
    let new_facets = ref [] in
    Hashtbl.iter
      (fun ridge count ->
        if count = 1 then
          match make_facet t.points t.interior (p_idx :: ridge) with
          | Some f -> new_facets := f :: !new_facets
          | None -> ())
      counter;
    t.facet_list <- hidden @ !new_facets
  end

let of_points ?(eps = 1e-9) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Beneath_beyond.of_points: empty";
  let d = Vector.dim points.(0) in
  let simplex = initial_simplex points d in
  let interior =
    let c = Vector.zero d in
    List.iter (fun i -> Vector.add_in_place c points.(i)) simplex;
    Vector.scale (1. /. float_of_int (d + 1)) c
  in
  let t = { points; facet_list = []; interior; eps } in
  (* the d+1 facets of the initial simplex *)
  let simplex_arr = Array.of_list simplex in
  t.facet_list <-
    List.filter_map
      (fun drop ->
        let idxs =
          Array.to_list simplex_arr |> List.filteri (fun j _ -> j <> drop)
        in
        make_facet points interior idxs)
      (List.init (d + 1) Fun.id);
  let in_simplex = Array.make n false in
  List.iter (fun i -> in_simplex.(i) <- true) simplex;
  for i = 0 to n - 1 do
    if not in_simplex.(i) then insert t i
  done;
  t

let contains ?eps t p =
  let eps = Option.value ~default:t.eps eps in
  List.for_all (fun f -> eval f p <= eps) t.facet_list

let vertices t =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun f -> Array.iter (fun i -> Hashtbl.replace seen i ()) f.vertices)
    t.facet_list;
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) seen [])

let support t w =
  List.fold_left
    (fun acc i -> Float.max acc (Vector.dot w t.points.(i)))
    neg_infinity (vertices t)

let check_invariants t =
  List.iter
    (fun f ->
      Array.iter
        (fun i ->
          if abs_float (eval f t.points.(i)) > 1e-6 then
            failwith "Beneath_beyond: facet vertex off its hyperplane")
        f.vertices;
      Array.iter
        (fun p ->
          if eval f p > 1e-6 then
            failwith "Beneath_beyond: input point above a facet")
        t.points)
    t.facet_list;
  (* closed surface: every ridge shared by exactly two facets *)
  let counter = Hashtbl.create 256 in
  List.iter
    (fun f ->
      List.iter
        (fun ridge ->
          Hashtbl.replace counter ridge
            (1 + Option.value ~default:0 (Hashtbl.find_opt counter ridge)))
        (ridges_of f.vertices))
    t.facet_list;
  Hashtbl.iter
    (fun _ count ->
      if count <> 2 then
        failwith
          (Printf.sprintf "Beneath_beyond: ridge shared by %d facets" count))
    counter
