module Vector = Kregret_geom.Vector

type hull = { chain : Vector.t array }

let check2d points =
  if points = [] then invalid_arg "Chain2d: empty point set";
  List.iter
    (fun p -> if Vector.dim p <> 2 then invalid_arg "Chain2d: 2-D points only")
    points

let cross o a b =
  ((a.(0) -. o.(0)) *. (b.(1) -. o.(1)))
  -. ((a.(1) -. o.(1)) *. (b.(0) -. o.(0)))

(* Upper-right chain of the downward closure: sort by x descending (y
   ascending on ties is irrelevant: ties cannot both be extreme), then build
   a chain turning left (counter-clockwise) — exactly Andrew's monotone chain
   on the sequence from the max-x vertex (x_max, 0) to the max-y vertex
   (0, y_max). *)
let upper_chain points =
  check2d points;
  let xmax = List.fold_left (fun m p -> Float.max m p.(0)) 0. points in
  let ymax = List.fold_left (fun m p -> Float.max m p.(1)) 0. points in
  let pts =
    List.sort
      (fun a b ->
        match compare b.(0) a.(0) with 0 -> compare a.(1) b.(1) | c -> c)
      ([| xmax; 0. |] :: [| 0.; ymax |] :: points)
  in
  let chain = ref [] in
  List.iter
    (fun p ->
      let rec pop = function
        | a :: b :: rest when cross b a p <= 1e-12 -> pop (b :: rest)
        | st -> st
      in
      chain := p :: pop !chain)
    pts;
  (* !chain is ordered by increasing x (we pushed in decreasing order);
     restore decreasing x, drop the two axis sentinels *)
  let inner =
    List.filter (fun p -> p.(0) > 1e-12 && p.(1) > 1e-12) !chain
  in
  { chain = Array.of_list (List.rev inner) }

let extreme_points points =
  let { chain } = upper_chain points in
  List.filter (fun p -> Array.exists (fun c -> c == p || c = p) chain) points

let critical_ratio { chain } q =
  if Vector.dim q <> 2 then invalid_arg "Chain2d.critical_ratio: 2-D only";
  let n = Array.length chain in
  assert (n > 0);
  let best = ref infinity in
  let consider normal offset =
    let denom = Vector.dot normal q in
    if denom > 1e-300 then best := Float.min !best (offset /. denom)
  in
  (* vertical face at x = x of the max-x extreme point *)
  consider [| 1.; 0. |] chain.(0).(0);
  (* horizontal face at y = y of the max-y extreme point *)
  consider [| 0.; 1. |] chain.(n - 1).(1);
  for i = 0 to n - 2 do
    let p1 = chain.(i) and p2 = chain.(i + 1) in
    let normal = [| p2.(1) -. p1.(1); p1.(0) -. p2.(0) |] in
    consider normal (Vector.dot normal p1)
  done;
  !best

let max_regret_ratio points ~data =
  let hull = upper_chain points in
  let worst =
    List.fold_left (fun acc q -> Float.min acc (critical_ratio hull q)) infinity data
  in
  Float.max 0. (1. -. worst)
