(** Incremental vertex maintenance for polytopes [{ w >= 0 : a_j . w <= b_j }]
    (the double-description method, Motzkin et al. / Fukuda–Prodon).

    This is the dual-side engine behind the paper's GeoGreedy: by antiblocking
    polarity, the faces of the primal hull [Conv(S)] that do not pass through
    the origin are exactly the vertices of the dual polytope
    [Q(S) = { w >= 0 : p . w <= 1, p in S }], and inserting a point into [S]
    is adding one halfspace here. The paper's "remove the face crossed by the
    ray, create the faces around the new point" (Section IV-A) is this
    module's [add_constraint]: vertices cut by the new halfspace are removed
    and new vertices appear on the new hyperplane.

    The polytope starts as the box [[0, bound]^d] so that the vertex set is
    well-defined before enough constraints arrive to bound the orthant
    intersection. Callers must ensure the *final* polytope is genuinely
    bounded away from the box (for the regret use-case: the selection
    contains an i-th dimension boundary point with value 1 for every i, which
    confines [Q] to [[0,1]^d]); until then, vertices lying on the artificial
    box faces are reported like any others.

    Every vertex carries the exact set of tight constraints; adjacency for
    the DD step uses the algebraic rank-(d-1) test with a cardinality
    prefilter. Complexity of one insertion is
    [O(|cut| * |keep| * d^3 + |V| * m * d)] — the second term recomputes
    tight sets of newly created vertices against all [m] constraints, which
    keeps the structure robust under degeneracy. *)

type t

type vertex = {
  id : int;  (** unique, never reused *)
  w : Kregret_geom.Vector.t;  (** coordinates; do not mutate *)
  tight : int array;  (** sorted indices of tight constraints *)
}

type event = {
  removed : int list;  (** ids of vertices cut by the constraint *)
  created : vertex list;  (** vertices born on the new hyperplane *)
  touched : vertex list;
      (** surviving vertices that lie exactly on the new hyperplane (their
          tight sets were refreshed). Together with [created] they carry
          every vertex of the optimum face for any direction whose old
          champion was removed — the completeness fact behind GeoGreedy's
          incremental re-assignment (see {!Dual_polytope}). *)
  redundant : bool;  (** true when the constraint cut nothing *)
}

(** [create ~dim ~bound ()] is the box [[0, bound]^d] (default bound
    [1e3]) with its [2^dim] corner vertices. Raises [Invalid_argument] for
    [dim < 1] or [dim > 16]: the corner enumeration is exponential in
    [dim], and past 16 it would silently allocate hundreds of thousands of
    seed vertices before any constraint arrives. *)
val create : ?bound:float -> dim:int -> unit -> t

(** The largest accepted [dim] (16). *)
val max_dim : int

(** [dim t] is the ambient dimension. *)
val dim : t -> int

(** [add_constraint t ~normal ~offset] intersects the polytope with
    [normal . w <= offset] and reports the vertex-set delta. The normal may
    be any vector; the regret use-case always passes a data point (normal
    [>= 0], offset 1). *)
val add_constraint :
  t -> normal:Kregret_geom.Vector.t -> offset:float -> event

(** [vertices t] is the current vertex list, in flat-store row order — a
    deterministic function of the operation sequence (see {!flat_view}). *)
val vertices : t -> vertex list

(** [flat_view t] exposes the flat mirror of the live vertex coordinates:
    a matrix whose row [r] holds the coordinates of vertex [ids.(r)], for
    [r < Flat.rows store] (later [ids] entries are garbage). This is the
    buffer the blocked champion kernel streams (ISSUE 6). Read-only view:
    do not mutate it, and treat it as invalidated by {!add_constraint}. *)
val flat_view : t -> Kregret_geom.Flat.t * int array

(** [num_vertices t] is [List.length (vertices t)] without the allocation. *)
val num_vertices : t -> int

(** [num_constraints t] counts the constraints added so far (excluding the
    implicit non-negativity and box constraints). *)
val num_constraints : t -> int

(** [max_dot t q] is the vertex maximizing [w . q] together with the value —
    the dual form of the paper's ray-shooting query ([cr(q, S) =
    offset-normalized 1 / max]). Raises [Invalid_argument] if the polytope
    somehow has no vertices (cannot happen through this API). *)
val max_dot : t -> Kregret_geom.Vector.t -> vertex * float

(** [find_vertex t id] retrieves a live vertex by id. *)
val find_vertex : t -> int -> vertex option

(** [contains ~eps t w] tests membership of [w] in the current polytope. *)
val contains : eps:float -> t -> Kregret_geom.Vector.t -> bool

(** [check_invariants t] verifies internal consistency (every vertex
    satisfies all constraints; tight sets are exact and of rank [d]); used by
    the test suite. Raises [Failure] with a description on violation. *)
val check_invariants : ?eps:float -> t -> unit
