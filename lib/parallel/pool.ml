(* Fixed-size domain pool on stdlib Domain/Mutex/Condition/Atomic.

   Design notes (see DESIGN.md "Parallel substrate"):

   - Each parallel region allocates a fresh [job] record holding its own
     atomic chunk counter and completion count. Workers take a snapshot of
     [t.current] under the pool mutex, then race on the job's *own* atomic
     counter for chunks. A lagging worker from a previous region still holds
     the *old* job record, whose counter is exhausted — it can never steal or
     re-run a chunk of the next region. This is what makes back-to-back
     regions safe without waiting for worker quiescence.

   - Memory model: the caller publishes the job record by writing
     [t.current] and bumping [t.generation] under the mutex; workers read
     both under the same mutex, which establishes the happens-before edge
     for everything the body closure captures. Completion travels the other
     way: workers decrement [job.unfinished] under the mutex and the caller
     waits on it under the mutex, so all body writes are visible to the
     caller when the region returns.

   - Determinism: chunk boundaries are a pure function of the range and
     [chunk_size] (never of [jobs]), and [map_reduce] folds chunk results
     left-to-right on the caller. Parallelism decides only *when* a chunk
     runs, never *what* it computes or how results combine.

   - Granularity model (ISSUE 6). Regions carry an optional [?cost] hint:
     the caller's estimate of the work per index, in arbitrary units
     calibrated as ~nanoseconds (default [default_cost] = 1000). The plan
     derived from it is a pure function of (n, cost, chunk_size) — never
     of [jobs] — so it preserves the bit-identity contract:

       - inline threshold: when [n * cost < inline_cutoff] (~50 us) the
         whole region is a single chunk and runs on the caller, paying
         zero pool machinery. Small regions (GeoGreedy event rescans over
         a few hundred candidates, tiny happy sets) used to be split into
         64 chunks whose scheduling cost exceeded their work — the
         sub-1x jobs=2 "speedup" in BENCH_scal.json before this change.
       - adaptive chunk size: otherwise chunks carry at least
         [target_chunk_cost] (~200 us) of estimated work each, capped at
         [max_chunks] = 64 chunks per region, so per-chunk scheduling
         (one atomic fetch-add + one mutex round per chunk) stays well
         under 1% of chunk work while still load-balancing up to ~16
         domains.

     An explicit [?chunk_size] bypasses the model entirely (tests pin
     exact boundaries with it).

   - Oversubscription cap (ISSUE 6). A pool requested with [jobs] domains
     spawns at most [recommended_domain_count () - 1] workers: extra
     domains beyond the physical cores cannot add throughput, but they do
     add context switches and — much worse on OCaml 5 — stop-the-world
     minor-GC synchronisation across domains time-sharing one core. This
     was the other half of the sub-1x jobs=2 regression on single-core CI
     runners. The cap changes only which domain executes a chunk; chunk
     boundaries and fold order still come from the plan above, so results
     are bit-identical to the uncapped pool. [jobs t] keeps reporting the
     requested width; nested-region rejection also keys on the requested
     width, so code that is wrong on a multicore box fails on a capped
     box too. *)

module Obs = Kregret_obs

(* Observability. [regions]/[chunks] are pure functions of the call sites
   and index ranges — never of the pool width — so they are bit-identical
   across KREGRET_JOBS values. [chunk_seconds] records per-chunk busy time
   (total busy seconds = its sum); its values are timing-dependent. *)
let c_regions =
  Obs.Registry.counter "pool.regions" ~help:"parallel regions executed"

let c_single =
  Obs.Registry.counter "pool.single_chunk_regions"
    ~help:"regions whose range produced a single chunk (always run inline)"

let c_chunks =
  Obs.Registry.counter "pool.chunks" ~help:"chunks executed across all regions"

let g_width = Obs.Registry.gauge "pool.width" ~help:"domains in the global pool"

let h_chunk_seconds =
  Obs.Registry.histogram "pool.chunk_seconds"
    ~help:"per-chunk busy time, seconds (sum = total busy time)"

(* Per-region busy-time imbalance: (max chunk - mean chunk) / mean chunk,
   recorded for pooled regions with >= 2 chunks. 0 = perfectly even; a
   value near [chunks - 1] means one chunk carried the whole region (cores
   idle). Timing-dependent, like chunk_seconds — not width-invariant. *)
let h_imbalance =
  Obs.Registry.histogram "pool.region_imbalance"
    ~buckets:[| 0.01; 0.05; 0.1; 0.25; 0.5; 1.; 2.; 8. |]
    ~help:"per-region chunk busy-time imbalance, (max - mean) / mean"

(* time one chunk body only when recording, to avoid two clock reads per
   chunk on the fast path; [durations] additionally collects per-chunk
   busy times for the region-imbalance histogram *)
let timed_chunk ?durations body c =
  if Obs.Control.enabled () then begin
    let t0 = Obs.Control.now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Obs.Control.now () -. t0 in
        Obs.Histogram.observe h_chunk_seconds dt;
        match durations with Some a -> a.(c) <- dt | None -> ())
      (fun () -> body c)
  end
  else body c

type job = {
  body : int -> unit; (* receives a chunk index in [0, count) *)
  count : int;
  next : int Atomic.t; (* next chunk to claim *)
  mutable unfinished : int; (* chunks not yet executed; under pool mutex *)
  mutable failure : (exn * Printexc.raw_backtrace) option; (* under mutex *)
}

type t = {
  jobs : int; (* requested width (the API-visible value) *)
  width : int; (* participating domains: 1 + spawned workers, <= cores *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int; (* bumped once per region, under mutex *)
  mutable current : job option; (* under mutex *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  busy : bool Atomic.t; (* a region is executing: rejects nesting *)
}

let jobs t = t.jobs

let drain t job =
  let continue_ = ref true in
  while !continue_ do
    let c = Atomic.fetch_and_add job.next 1 in
    if c >= job.count then continue_ := false
    else begin
      (match job.failure with
      | Some _ -> () (* region already failed: just retire the chunk *)
      | None -> (
          try job.body c
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mutex;
            if job.failure = None then job.failure <- Some (e, bt);
            Mutex.unlock t.mutex));
      Mutex.lock t.mutex;
      job.unfinished <- job.unfinished - 1;
      if job.unfinished = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex
    end
  done

let rec worker_loop t last_gen =
  Mutex.lock t.mutex;
  while (not t.stop) && t.generation = last_gen do
    Condition.wait t.work_ready t.mutex
  done;
  let stop = t.stop in
  let gen = t.generation in
  let job = t.current in
  Mutex.unlock t.mutex;
  if not stop then begin
    (match job with Some j -> drain t j | None -> ());
    worker_loop t gen
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Kregret_parallel.Pool.create: jobs must be >= 1";
  let width = min jobs (max 1 (Domain.recommended_domain_count ())) in
  let t =
    {
      jobs;
      width;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      current = None;
      stop = false;
      workers = [];
      busy = Atomic.make false;
    }
  in
  t.workers <-
    List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  Obs.Gauge.set_int g_width width;
  t

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* Execute [body c] for every chunk index c in [0, chunks) on the pool.
   The caller participates; returns when every chunk has executed. *)
let run_chunks t ~chunks body =
  if chunks > 0 then begin
    if t.stop then
      invalid_arg "Kregret_parallel.Pool: pool already shut down";
    Obs.Counter.incr c_regions;
    Obs.Counter.add c_chunks chunks;
    (* [chunks = 1] is a property of the range, not the width — counting the
       jobs=1 inline path here instead would break cross-width bit-identity *)
    if chunks = 1 then Obs.Counter.incr c_single;
    let durations =
      if Obs.Control.enabled () && chunks >= 2 then
        Some (Array.make chunks 0.)
      else None
    in
    let observe_imbalance () =
      match durations with
      | Some a ->
          let sum = Array.fold_left ( +. ) 0. a in
          let mx = Array.fold_left Float.max neg_infinity a in
          let mean = sum /. float_of_int chunks in
          if mean > 0. then
            Obs.Histogram.observe h_imbalance ((mx -. mean) /. mean)
      | None -> ()
    in
    if t.width = 1 || chunks = 1 then begin
      (* inline: no pool machinery, exceptions propagate naturally. A
         multi-chunk region on a width-capped jobs > 1 pool still takes the
         busy guard, so nested-region misuse fails on a single-core box
         exactly as it would on a multicore one. *)
      let run () =
        for c = 0 to chunks - 1 do
          timed_chunk ?durations body c
        done;
        observe_imbalance ()
      in
      if t.jobs > 1 && chunks > 1 then begin
        if not (Atomic.compare_and_set t.busy false true) then
          invalid_arg "Kregret_parallel.Pool: nested parallel region";
        Fun.protect ~finally:(fun () -> Atomic.set t.busy false) run
      end
      else run ()
    end
    else begin
      if not (Atomic.compare_and_set t.busy false true) then
        invalid_arg "Kregret_parallel.Pool: nested parallel region";
      let job =
        {
          body = timed_chunk ?durations body;
          count = chunks;
          next = Atomic.make 0;
          unfinished = chunks;
          failure = None;
        }
      in
      Mutex.lock t.mutex;
      t.current <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      drain t job;
      Mutex.lock t.mutex;
      while job.unfinished > 0 do
        Condition.wait t.work_done t.mutex
      done;
      Mutex.unlock t.mutex;
      Atomic.set t.busy false;
      (* completion happened-before this read (the mutex round above) *)
      observe_imbalance ();
      match job.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ---- global pool --------------------------------------------------------- *)

let requested : int option ref = ref None

let set_jobs j =
  if j < 1 then invalid_arg "Kregret_parallel.Pool.set_jobs: jobs must be >= 1";
  requested := Some j

let env_jobs () =
  match Sys.getenv_opt "KREGRET_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ ->
          (* fall back to the default width, but say so: a silently ignored
             KREGRET_JOBS=abc used to look exactly like a working override *)
          Printf.eprintf
            "kregret: warning: ignoring invalid KREGRET_JOBS=%s (expected an \
             integer >= 1); using the default width\n\
             %!"
            (String.escaped s);
          None)

let get_jobs () =
  match !requested with
  | Some j -> j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> max 1 (Domain.recommended_domain_count ()))

let global : t option ref = ref None

let get () =
  let width = get_jobs () in
  match !global with
  | Some p when p.jobs = width && not p.stop -> p
  | prev ->
      (match prev with Some p -> shutdown p | None -> ());
      let p = create ~jobs:width in
      global := Some p;
      p

(* ---- chunked iteration ---------------------------------------------------- *)

(* Granularity model (see the header comment): all values are pure
   functions of (n, cost, chunk_size) — never of the pool width — so chunk
   boundaries, and with them every reduction order, stay bit-identical
   across KREGRET_JOBS values. Cost units are calibrated as ~nanoseconds
   of work per index. *)
let default_cost = 1_000.
let inline_cutoff = 50_000. (* below ~50 us of work: run inline, one chunk *)
let target_chunk_cost = 200_000. (* aim for >= ~200 us of work per chunk *)
let max_chunks = 64

let default_chunk_size ~n = max 1 ((n + max_chunks - 1) / max_chunks)

let chunk_plan ?chunk_size ?(cost = default_cost) ~n () =
  if n <= 0 then invalid_arg "Kregret_parallel.Pool.chunk_plan: n must be >= 1";
  match chunk_size with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Kregret_parallel.Pool: chunk_size must be >= 1"
  | None ->
      let cost = if Float.is_finite cost && cost > 1. then cost else 1. in
      if float_of_int n *. cost < inline_cutoff then n
      else
        let by_cost = int_of_float (Float.ceil (target_chunk_cost /. cost)) in
        max (default_chunk_size ~n) (max 1 (min n by_cost))

let resolve = function Some p -> p | None -> get ()

let chunking ?chunk_size ?cost n =
  let cs = chunk_plan ?chunk_size ?cost ~n () in
  (cs, (n + cs - 1) / cs)

let parallel_for ?pool ?chunk_size ?cost ~lo ~hi body =
  let n = hi - lo in
  if n > 0 then begin
    let t = resolve pool in
    let cs, chunks = chunking ?chunk_size ?cost n in
    run_chunks t ~chunks (fun c ->
        let a = lo + (c * cs) in
        let b = min hi (a + cs) in
        for i = a to b - 1 do
          body i
        done)
  end

let map_reduce ?pool ?chunk_size ?cost ~lo ~hi ~map ~reduce init =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let t = resolve pool in
    let cs, chunks = chunking ?chunk_size ?cost n in
    let slots = Array.make chunks None in
    run_chunks t ~chunks (fun c ->
        let a = lo + (c * cs) in
        let b = min hi (a + cs) in
        slots.(c) <- Some (map a b));
    (* deterministic left-to-right fold over chunk results, on the caller *)
    Array.fold_left
      (fun acc slot ->
        match slot with Some v -> reduce acc v | None -> assert false)
      init slots
  end
