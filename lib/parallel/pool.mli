(** Fixed-size domain pool for the library's embarrassingly parallel hot
    loops (skyline pre-filter, happy-point subjugation tests, GeoGreedy
    champion scans, Greedy's per-candidate LPs, Monte-Carlo regret
    sampling).

    Built on stdlib [Domain] / [Mutex] / [Condition] / [Atomic] only —
    no domainslib. OCaml 5's runtime gives us shared-memory domains; this
    module adds the three things the algorithms need on top:

    {ol
    {- a {e persistent} pool (domains are expensive to spawn, the hot
       loops fire thousands of small regions per query);}
    {- a {e determinism contract}: chunk boundaries depend only on the
       index range and [chunk_size] — never on the number of domains —
       and [map_reduce] folds the per-chunk results strictly left to
       right. A caller whose chunk results depend only on the chunk's own
       input range therefore gets bit-identical output for every
       [jobs] value, floating point included;}
    {- sequential fallback: with [jobs = 1] everything runs inline on the
       calling domain, no pool machinery involved.}}

    {b Concurrency rules.} Parallel regions must not nest: calling
    [parallel_for] / [map_reduce] from inside a running region raises
    [Invalid_argument] (with [jobs = 1] the inline path permits it, since
    it is just a nested loop). Bodies may read shared structures freely
    and write only to disjoint locations; the pool establishes the
    happens-before edges so the caller observes all writes when the
    region returns. Exceptions raised by a body are caught, the region
    drains, and the first exception is re-raised in the caller. *)

type t
(** A pool of [jobs - 1] worker domains plus the calling domain. *)

val create : jobs:int -> t
(** [create ~jobs] spawns up to [jobs - 1] worker domains ([jobs >= 1]),
    capped so workers + caller never exceed
    [Domain.recommended_domain_count ()] — oversubscribing physical cores
    buys no throughput and pays cross-domain minor-GC synchronisation.
    The cap affects scheduling only; results are identical to an uncapped
    pool (see the determinism contract). [jobs = 1] creates a trivial
    pool that runs everything inline. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Using the pool after
    shutdown raises [Invalid_argument]. *)

val jobs : t -> int
(** Number of domains participating in this pool (workers + caller). *)

(** {1 Global pool}

    Most callers never construct a pool: the library keeps one global
    pool sized (in priority order) from [set_jobs] (the [--jobs] CLI
    flag), the [KREGRET_JOBS] environment variable, or
    [Domain.recommended_domain_count ()]. The global pool is created
    lazily on first use and transparently rebuilt when the requested
    size changes. *)

val set_jobs : int -> unit
(** Request a global pool width (takes precedence over [KREGRET_JOBS]).
    Raises [Invalid_argument] on [jobs < 1]. *)

val get_jobs : unit -> int
(** The width the global pool has (or would be created with). *)

val get : unit -> t
(** The global pool, created or resized on demand. *)

(** {1 Parallel iteration} *)

val parallel_for :
  ?pool:t ->
  ?chunk_size:int ->
  ?cost:float ->
  lo:int ->
  hi:int ->
  (int -> unit) ->
  unit
(** [parallel_for ~lo ~hi body] runs [body i] for every [lo <= i < hi],
    split into chunks executed by the pool (the global one unless [?pool]
    is given). Within a chunk indices run in increasing order; chunks may
    run in any order, concurrently. [body] must only write to locations
    owned by index [i].

    [?cost] is the caller's estimate of the work per index in ~nanoseconds
    (default {!default_cost}); it drives {!chunk_plan} and affects only
    scheduling granularity, never results — the plan is a pure function of
    the range and the hint, independent of the pool width. *)

val map_reduce :
  ?pool:t ->
  ?chunk_size:int ->
  ?cost:float ->
  lo:int ->
  hi:int ->
  map:(int -> int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  'a ->
  'a
(** [map_reduce ~lo ~hi ~map ~reduce init] applies [map a b] to each
    chunk subrange [\[a, b)] of [\[lo, hi)] in parallel, then folds the
    chunk results {e sequentially, left to right}:
    [reduce (... (reduce init r0) ...) r_last] where [r_i] is the result
    of the i-th chunk in index order. Chunk boundaries depend only on
    [hi - lo], [chunk_size] and the [cost] hint, so the value is
    independent of the pool width even for non-associative [reduce]
    (floating-point sums, first-wins argmax ties, list concatenation). *)

val default_cost : float
(** The per-index cost assumed when [?cost] is omitted (1000, i.e. ~1 us
    of work per index). *)

val chunk_plan : ?chunk_size:int -> ?cost:float -> n:int -> unit -> int
(** [chunk_plan ~n ()] is the chunk size a region of [n] indices uses: an
    explicit [?chunk_size] verbatim; otherwise [n] itself (one inline
    chunk) when the estimated total work [n * cost] is under the ~50 us
    inline cutoff, else the largest of [ceil (n / 64)] and however many
    indices it takes to give each chunk ~200 us of estimated work. A pure
    function of its arguments — never of the pool width. Raises
    [Invalid_argument] on [n < 1] or [chunk_size < 1]. *)

val default_chunk_size : n:int -> int
(** [max 1 (n / 64)] rounded up — the at-most-64-chunks cap that bounds
    {!chunk_plan} from below on large ranges. *)
