(** Orthotope sets (Section III-A of the paper).

    For a point [p] in R^d_+, [Orth(p)] is the set of [2^d] corner points
    [{0, p.(0)} x ... x {0, p.(d-1)}]. The paper defines [Conv(S)] as the
    convex hull of the union of the orthotope sets of the points of [S]; that
    hull equals the downward closure [(conv S - R^d_+) ∩ R^d_+], which is the
    form the rest of this library computes with. This module provides the
    literal corner enumeration, used by tests to validate the downward-closure
    equivalence and by the 2-D reference hull. *)

(** [corners p] enumerates [Orth(p)] — all [2^d] points obtained by zeroing
    subsets of coordinates of [p]. Order: corner [m] (for mask [m] in
    [0 .. 2^d-1]) keeps coordinate [i] iff bit [i] of [m] is set; corner 0 is
    the origin and corner [2^d - 1] is [p] itself. Raises [Invalid_argument]
    for d > 20. *)
val corners : Vector.t -> Vector.t array

(** [corner_count d] is [2^d], the size of an orthotope set. *)
val corner_count : int -> int

(** [of_set ps] is [D_orth(ps)]: the concatenation of [corners p] for each
    [p], with exact duplicates (notably the shared origin) removed. *)
val of_set : Vector.t list -> Vector.t list

(** [member ~eps hull_points x] tests whether [x] lies in the downward closure
    of the given points: [x >= 0] and no coordinate-wise "excess" — i.e.
    there is a convex combination of [hull_points] dominating [x]. Only used
    for small test instances; implemented by LP-free Fourier–Motzkin-style
    check in 2-D and rejected otherwise. *)
val member2d : eps:float -> Vector.t list -> Vector.t -> bool
