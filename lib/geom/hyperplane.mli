(** Hyperplanes in R^d, in the paper's convention.

    A hyperplane is the solution set of [normal . x = offset]. Throughout the
    k-regret machinery, [normal] is non-negative (it is a face normal of a
    downward-closed hull or a utility weight vector) and [offset > 0] for the
    faces "not passing through the origin" the paper restricts attention to.
    The [side] tests mirror the paper's "above / on / below" vocabulary
    (Section III-B). *)

type t = { normal : Vector.t; offset : float }

type side =
  | Below  (** [normal . p < offset - eps] *)
  | On  (** within [eps] of the hyperplane *)
  | Above  (** [normal . p > offset + eps] *)

(** [make normal offset] builds a hyperplane. Raises [Invalid_argument] on a
    zero normal. *)
val make : Vector.t -> float -> t

(** [through ~normal p] is the hyperplane with normal [normal] passing through
    point [p] (offset [normal . p]). *)
val through : normal:Vector.t -> Vector.t -> t

(** [normalized h] rescales so that [||normal|| = 1], preserving the set. *)
val normalized : t -> t

(** [eval h p] is [normal . p - offset]: negative below, positive above. *)
val eval : t -> Vector.t -> float

(** [side ~eps h p] classifies point [p] against [h]. *)
val side : eps:float -> t -> Vector.t -> side

(** [ray_intersection h dir] is [Some t] when the ray [{ s * dir : s >= 0 }]
    from the origin meets [h] at parameter [t >= 0], i.e.
    [t = offset / (normal . dir)]; [None] when the ray is parallel to or
    points away from [h]. This is the primitive behind the paper's critical
    points (Definition 3). *)
val ray_intersection : t -> Vector.t -> float option

(** [through_points ps] fits a hyperplane through [d] affinely independent
    points in R^d with unit normal, or returns [None] when the points are
    affinely dependent. The normal's sign is chosen so the origin is not
    above the plane (matching face orientations of hulls that contain the
    origin). *)
val through_points : Vector.t list -> t option

(** [pp] prints [normal . x = offset]. *)
val pp : Format.formatter -> t -> unit
