type t = float array

let dim = Array.length
let make = Array.make
let init = Array.init
let copy = Array.copy
let zero d = Array.make d 0.

let basis d i =
  if i < 0 || i >= d then invalid_arg "Vector.basis: index out of range";
  let v = Array.make d 0. in
  v.(i) <- 1.;
  v

let check_dim u v name =
  if Array.length u <> Array.length v then
    invalid_arg (name ^ ": dimension mismatch")

(* Unrolled by 4 on a single accumulator chain: ((((acc + x0) + x1) + x2)
   + x3) is the sequential loop's exact rounding order, so the unroll is
   bit-identical to the naive loop while dropping most of the per-iteration
   branch and bounds traffic. No dimension check: callers guarantee
   [length v >= length u] (the kernel-side contract; see .mli). *)
let dot_unsafe u v =
  let d = Array.length u in
  let acc = ref 0. in
  let i = ref 0 in
  while !i + 3 < d do
    let j = !i in
    acc :=
      !acc
      +. (Array.unsafe_get u j *. Array.unsafe_get v j)
      +. (Array.unsafe_get u (j + 1) *. Array.unsafe_get v (j + 1))
      +. (Array.unsafe_get u (j + 2) *. Array.unsafe_get v (j + 2))
      +. (Array.unsafe_get u (j + 3) *. Array.unsafe_get v (j + 3));
    i := !i + 4
  done;
  while !i < d do
    acc := !acc +. (Array.unsafe_get u !i *. Array.unsafe_get v !i);
    incr i
  done;
  !acc

let dot u v =
  check_dim u v "Vector.dot";
  dot_unsafe u v

let norm v = sqrt (dot v v)

let norm1 v = Array.fold_left (fun acc x -> acc +. abs_float x) 0. v

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0. v

let add u v =
  check_dim u v "Vector.add";
  Array.init (Array.length u) (fun i -> u.(i) +. v.(i))

let sub u v =
  check_dim u v "Vector.sub";
  Array.init (Array.length u) (fun i -> u.(i) -. v.(i))

let scale a v = Array.map (fun x -> a *. x) v

let add_in_place u v =
  check_dim u v "Vector.add_in_place";
  for i = 0 to Array.length u - 1 do
    u.(i) <- u.(i) +. v.(i)
  done

let scale_in_place a v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- a *. v.(i)
  done

let normalize v =
  let n = norm v in
  if n = 0. then invalid_arg "Vector.normalize: zero vector";
  scale (1. /. n) v

let lerp u v t =
  check_dim u v "Vector.lerp";
  Array.init (Array.length u) (fun i -> ((1. -. t) *. u.(i)) +. (t *. v.(i)))

let cos_angle u v =
  let nu = norm u and nv = norm v in
  if nu = 0. || nv = 0. then invalid_arg "Vector.cos_angle: zero vector";
  dot u v /. (nu *. nv)

let equal ~eps u v =
  Array.length u = Array.length v
  &&
  let rec go i =
    i >= Array.length u || (abs_float (u.(i) -. v.(i)) <= eps && go (i + 1))
  in
  go 0

let extremum_coord better v =
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if better v.(i) v.(!best) then best := i
  done;
  (!best, v.(!best))

let max_coord v = extremum_coord (fun a b -> a > b) v
let min_coord v = extremum_coord (fun a b -> a < b) v
let sum v = Array.fold_left ( +. ) 0. v
let for_all = Array.for_all
let exists = Array.exists
let is_nonneg ~eps v = for_all (fun x -> x >= -.eps) v

let pp ppf v =
  Format.fprintf ppf "(";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%.4f" x)
    v;
  Format.fprintf ppf ")"

let to_string v = Format.asprintf "%a" pp v
