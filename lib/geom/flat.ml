(* Flat SoA storage for point sets and vertex sets (ISSUE 6).

   OCaml's [float array array] keeps each row unboxed but scatters the rows
   across the heap: the hot preprocessing loops (skyline dominance, happy
   subjugation dots, the Dd slack sweep, GeoGreedy's champion re-scan) chase
   one pointer per row and touch a fresh cache line per point. This module
   stores a whole matrix in one contiguous [float array] with row stride
   [d], so row-sequential sweeps stream linearly through memory and the
   per-row indirection (and its allocation traffic) disappears.

   Bit-identity contract: every accumulation here runs strictly left to
   right in coordinate order — the exact operation order of the boxed
   [Vector.dot] — so replacing a boxed loop with the flat equivalent
   changes no result bit, NaN and signed-zero rows included. The blocked
   [champions] kernel reproduces the reference fold "initialise with row 0,
   then replace only when [not (best >= x)]" (first row wins exact ties,
   NaN handled exactly like the boxed scan). The equivalence suite in
   test/test_flat.ml pins all of this. *)

type t = {
  mutable data : float array; (* row-major, stride [d]; rows 0..n-1 live *)
  d : int;
  mutable n : int;
}

let dim t = t.d
let rows t = t.n

let create ?(capacity = 16) ~dim () =
  if dim < 1 then invalid_arg "Flat.create: dim must be >= 1";
  let capacity = max 1 capacity in
  { data = Array.make (capacity * dim) 0.; d = dim; n = 0 }

let clear t = t.n <- 0

let ensure_capacity t extra =
  let need = (t.n + extra) * t.d in
  if need > Array.length t.data then begin
    let cap = max need (2 * Array.length t.data) in
    let data = Array.make cap 0. in
    Array.blit t.data 0 data 0 (t.n * t.d);
    t.data <- data
  end

let push_row t (r : float array) =
  if Array.length r <> t.d then invalid_arg "Flat.push_row: dimension mismatch";
  ensure_capacity t 1;
  Array.blit r 0 t.data (t.n * t.d) t.d;
  t.n <- t.n + 1

let swap_remove t i =
  if i < 0 || i >= t.n then invalid_arg "Flat.swap_remove: row out of range";
  let last = t.n - 1 in
  if i < last then Array.blit t.data (last * t.d) t.data (i * t.d) t.d;
  t.n <- last

let of_rows ?dim rows =
  let d =
    match (dim, Array.length rows) with
    | Some d, _ -> d
    | None, 0 -> invalid_arg "Flat.of_rows: empty input needs ?dim"
    | None, _ -> Array.length rows.(0)
  in
  let t = create ~capacity:(max 1 (Array.length rows)) ~dim:d () in
  Array.iter (fun r -> push_row t r) rows;
  t

let check_row t i name =
  if i < 0 || i >= t.n then invalid_arg (name ^ ": row out of range")

let get t i j =
  check_row t i "Flat.get";
  if j < 0 || j >= t.d then invalid_arg "Flat.get: column out of range";
  t.data.((i * t.d) + j)

let unsafe_get t i j = Array.unsafe_get t.data ((i * t.d) + j)

let row t i =
  check_row t i "Flat.row";
  Array.sub t.data (i * t.d) t.d

let blit_row t i dst =
  check_row t i "Flat.blit_row";
  if Array.length dst <> t.d then
    invalid_arg "Flat.blit_row: dimension mismatch";
  Array.blit t.data (i * t.d) dst 0 t.d

let to_rows t = Array.init t.n (fun i -> row t i)

(* ---- kernels ------------------------------------------------------------- *)

(* Left-to-right dot of [d] coordinates starting at [abase] in [a] and
   [bbase] in [b], unrolled by 4 on a single accumulator chain: the
   parenthesisation ((((acc + x0) + x1) + x2) + x3) is exactly the
   sequential loop's rounding, so unrolling changes no bits. *)
let[@inline] dot_stride a abase b bbase d =
  let acc = ref 0. in
  let j = ref 0 in
  while !j + 3 < d do
    let ja = abase + !j and jb = bbase + !j in
    acc :=
      !acc
      +. (Array.unsafe_get a ja *. Array.unsafe_get b jb)
      +. (Array.unsafe_get a (ja + 1) *. Array.unsafe_get b (jb + 1))
      +. (Array.unsafe_get a (ja + 2) *. Array.unsafe_get b (jb + 2))
      +. (Array.unsafe_get a (ja + 3) *. Array.unsafe_get b (jb + 3));
    j := !j + 4
  done;
  while !j < d do
    acc :=
      !acc
      +. (Array.unsafe_get a (abase + !j) *. Array.unsafe_get b (bbase + !j));
    incr j
  done;
  !acc

let dot t i (q : float array) =
  check_row t i "Flat.dot";
  if Array.length q <> t.d then invalid_arg "Flat.dot: dimension mismatch";
  dot_stride t.data (i * t.d) q 0 t.d

let dot_rows a i b j =
  check_row a i "Flat.dot_rows";
  check_row b j "Flat.dot_rows";
  if a.d <> b.d then invalid_arg "Flat.dot_rows: dimension mismatch";
  dot_stride a.data (i * a.d) b.data (j * b.d) a.d

let slacks t ~normal ~offset ~out =
  if Array.length normal <> t.d then
    invalid_arg "Flat.slacks: dimension mismatch";
  if Array.length out < t.n then invalid_arg "Flat.slacks: out too short";
  let data = t.data and d = t.d in
  for i = 0 to t.n - 1 do
    Array.unsafe_set out i (dot_stride data (i * d) normal 0 d -. offset)
  done

let argmax_dot t (q : float array) =
  if t.n = 0 then invalid_arg "Flat.argmax_dot: no rows";
  if Array.length q <> t.d then
    invalid_arg "Flat.argmax_dot: dimension mismatch";
  let data = t.data and d = t.d in
  let best = ref 0 and bx = ref (dot_stride data 0 q 0 d) in
  for i = 1 to t.n - 1 do
    let x = dot_stride data (i * d) q 0 d in
    (* replace unless the incumbent compares >= x: first row wins exact
       ties, and a NaN incumbent is always replaced — the boxed reference
       fold's behaviour, bit for bit *)
    if not (!bx >= x) then begin
      best := i;
      bx := x
    end
  done;
  (!best, !bx)

let for_all_dot_le t (q : float array) bound =
  if Array.length q <> t.d then
    invalid_arg "Flat.for_all_dot_le: dimension mismatch";
  let data = t.data and d = t.d in
  let i = ref 0 and ok = ref true in
  while !ok && !i < t.n do
    if not (dot_stride data (!i * d) q 0 d <= bound) then ok := false;
    incr i
  done;
  !ok

(* ---- blocked max-dot kernel ---------------------------------------------- *)

let default_tile = 32

let champions ?(tile = default_tile) ~vertices ~cands targets ~tlo ~thi
    ~out_row ~out_val =
  if tile < 1 then invalid_arg "Flat.champions: tile must be >= 1";
  if vertices.d <> cands.d then
    invalid_arg "Flat.champions: dimension mismatch";
  if vertices.n = 0 then invalid_arg "Flat.champions: no vertex rows";
  if tlo < 0 || thi > Array.length targets || tlo > thi then
    invalid_arg "Flat.champions: bad target range";
  if Array.length out_row < cands.n || Array.length out_val < cands.n then
    invalid_arg "Flat.champions: out arrays shorter than the candidate set";
  for ti = tlo to thi - 1 do
    let j = targets.(ti) in
    if j < 0 || j >= cands.n then
      invalid_arg "Flat.champions: target out of range"
  done;
  let vdata = vertices.data and cdata = cands.data and d = vertices.d in
  let m = vertices.n in
  let tiles = ref 0 in
  (* Tile the vertex rows: one tile (<= tile * d floats, ~1.5 KB at the
     default) stays resident in L1 while every target candidate streams
     against it; candidate rows are short and prefetch linearly. The
     running (best row, best value) lives in the caller's out slots, so
     tiling is invisible to the fold order: row 0 initialises, later rows
     replace only when [not (best >= x)] — identical to one flat scan. *)
  let v0 = ref 0 in
  while !v0 < m do
    incr tiles;
    let v1 = min m (!v0 + tile) in
    let first_tile = !v0 = 0 in
    for ti = tlo to thi - 1 do
      let j = Array.unsafe_get targets ti in
      let cbase = j * d in
      let br = ref (if first_tile then 0 else Array.unsafe_get out_row j)
      and bx =
        ref
          (if first_tile then dot_stride vdata 0 cdata cbase d
           else Array.unsafe_get out_val j)
      in
      let vstart = if first_tile then !v0 + 1 else !v0 in
      for v = vstart to v1 - 1 do
        let x = dot_stride vdata (v * d) cdata cbase d in
        if not (!bx >= x) then begin
          br := v;
          bx := x
        end
      done;
      Array.unsafe_set out_row j !br;
      Array.unsafe_set out_val j !bx
    done;
    v0 := v1
  done;
  !tiles
