type t = float array array

let make rows cols x = Array.init rows (fun _ -> Array.make cols x)
let init rows cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))
let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let copy m = Array.map Array.copy m
let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)

let transpose m =
  let r = rows m and c = cols m in
  init c r (fun i j -> m.(j).(i))

let mul_vec m v =
  if cols m <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.map (fun row -> Vector.dot row v) m

let mul a b =
  if cols a <> rows b then invalid_arg "Matrix.mul: dimension mismatch";
  let bt = transpose b in
  init (rows a) (cols b) (fun i j -> Vector.dot a.(i) bt.(j))

(* Forward elimination with partial pivoting. [pivot_cols] bounds the columns
   eligible as pivots (a solve must not pivot on the augmented RHS column).
   Returns the number of pivots found; [m] is destroyed. *)
let eliminate ?pivot_cols ~eps m =
  let r = rows m and c = cols m in
  let pivot_limit = Option.value ~default:c pivot_cols in
  let pivot_row = ref 0 in
  let col = ref 0 in
  while !pivot_row < r && !col < pivot_limit do
    (* pick the row with the largest absolute entry in the current column *)
    let best = ref !pivot_row in
    for i = !pivot_row + 1 to r - 1 do
      if abs_float m.(i).(!col) > abs_float m.(!best).(!col) then best := i
    done;
    if abs_float m.(!best).(!col) <= eps then incr col
    else begin
      let tmp = m.(!pivot_row) in
      m.(!pivot_row) <- m.(!best);
      m.(!best) <- tmp;
      let pr = m.(!pivot_row) in
      for i = !pivot_row + 1 to r - 1 do
        let factor = m.(i).(!col) /. pr.(!col) in
        if factor <> 0. then
          for j = !col to c - 1 do
            m.(i).(j) <- m.(i).(j) -. (factor *. pr.(j))
          done
      done;
      incr pivot_row;
      incr col
    end
  done;
  !pivot_row

let solve ?(eps = 1e-12) a b =
  let n = rows a in
  if n = 0 then Some [||]
  else if cols a <> n || Array.length b <> n then
    invalid_arg "Matrix.solve: system is not square"
  else begin
    (* augmented matrix [a | b] *)
    let m = init n (n + 1) (fun i j -> if j < n then a.(i).(j) else b.(i)) in
    let pivots = eliminate ~pivot_cols:n ~eps m in
    if pivots < n then None
    else begin
      let x = Array.make n 0. in
      for i = n - 1 downto 0 do
        let acc = ref m.(i).(n) in
        for j = i + 1 to n - 1 do
          acc := !acc -. (m.(i).(j) *. x.(j))
        done;
        x.(i) <- !acc /. m.(i).(i)
      done;
      Some x
    end
  end

let rank ?(eps = 1e-9) m =
  if rows m = 0 then 0 else eliminate ~eps (copy m)

let determinant a =
  let n = rows a in
  if cols a <> n then invalid_arg "Matrix.determinant: not square";
  if n = 0 then 1.
  else begin
    let m = copy a in
    let sign = ref 1. in
    let singular = ref false in
    for k = 0 to n - 1 do
      if not !singular then begin
        let best = ref k in
        for i = k + 1 to n - 1 do
          if abs_float m.(i).(k) > abs_float m.(!best).(k) then best := i
        done;
        if m.(!best).(k) = 0. then singular := true
        else begin
          if !best <> k then begin
            let tmp = m.(k) in
            m.(k) <- m.(!best);
            m.(!best) <- tmp;
            sign := -. !sign
          end;
          for i = k + 1 to n - 1 do
            let factor = m.(i).(k) /. m.(k).(k) in
            for j = k to n - 1 do
              m.(i).(j) <- m.(i).(j) -. (factor *. m.(k).(j))
            done
          done
        end
      end
    done;
    if !singular then 0.
    else begin
      let det = ref !sign in
      for i = 0 to n - 1 do
        det := !det *. m.(i).(i)
      done;
      !det
    end
  end

let of_rows vs = Array.of_list (List.map Array.copy vs)

let pp ppf m =
  Array.iter (fun row -> Format.fprintf ppf "%a@." Vector.pp row) m
