(** Flat SoA storage for point and vertex sets: one contiguous unboxed
    [float array] holding an [n x d] matrix with row stride [d].

    The hot preprocessing loops (skyline dominance tests, happy-filter
    dots, the Dd slack sweep, GeoGreedy's champion re-scan) traffic in
    whole matrices of small rows; storing them boxed ([float array array])
    costs one pointer chase and one potential cache miss per row. A [Flat.t]
    keeps every row in one buffer so row-sequential sweeps stream linearly.

    {b Bit-identity contract.} Every kernel here accumulates strictly left
    to right in coordinate order — the exact operation order of the boxed
    {!Vector.dot} — and the argmax folds replace the incumbent only when
    [not (best >= x)], exactly like the boxed reference scans. Swapping a
    boxed loop for its flat equivalent therefore changes no result bit,
    NaN and signed-zero rows included (pinned by test/test_flat.ml). *)

type t

(** [create ~dim ()] is an empty matrix of row width [dim >= 1]. *)
val create : ?capacity:int -> dim:int -> unit -> t

(** [of_rows rows] copies boxed rows in. All rows must share one length;
    [?dim] is required when [rows] is empty. *)
val of_rows : ?dim:int -> float array array -> t

val dim : t -> int
val rows : t -> int

(** [push_row t r] appends a copy of [r]. Amortised O(d). *)
val push_row : t -> float array -> unit

(** [swap_remove t i] deletes row [i] by moving the last row into its
    place — O(d), order deterministic given the operation sequence. *)
val swap_remove : t -> int -> unit

(** [clear t] drops all rows, keeping the buffer. *)
val clear : t -> unit

val get : t -> int -> int -> float

(** [unsafe_get t i j] is [get t i j] without bounds checks — for kernel
    loops that validated the row range up front. *)
val unsafe_get : t -> int -> int -> float

(** [row t i] is a fresh boxed copy of row [i]. *)
val row : t -> int -> float array

(** [blit_row t i dst] copies row [i] into [dst] without allocating. *)
val blit_row : t -> int -> float array -> unit

val to_rows : t -> float array array

(** [dot t i q] is [Vector.dot (row t i) q], bit for bit, without the
    row allocation (4-wide unrolled single-accumulator chain). *)
val dot : t -> int -> float array -> float

(** [dot_rows a i b j] is [Vector.dot (row a i) (row b j)], bit for bit. *)
val dot_rows : t -> int -> t -> int -> float

(** [slacks t ~normal ~offset ~out] fills [out.(i) <- dot t i normal -.
    offset] for every row — the Dd constraint-classification sweep as one
    linear pass. [out] must have at least [rows t] slots. *)
val slacks : t -> normal:float array -> offset:float -> out:float array -> unit

(** [argmax_dot t q] is the row maximising [dot t i q] with its value;
    the earliest row wins exact ties and a NaN incumbent is always
    replaced — the same fold as the boxed reference scan. *)
val argmax_dot : t -> float array -> int * float

(** [for_all_dot_le t q bound] tests [dot t i q <= bound] for every row,
    with early exit. *)
val for_all_dot_le : t -> float array -> float -> bool

(** Default vertex-tile height of {!champions} (32 rows: a tile of 32
    rows of <= 16 doubles stays within 4 KB of L1). *)
val default_tile : int

(** [champions ~vertices ~cands targets ~tlo ~thi ~out_row ~out_val]
    computes, for every candidate row [j = targets.(ti)] with
    [tlo <= ti < thi], the vertex row maximising
    [dot_rows vertices v cands j], writing the winning row index to
    [out_row.(j)] and its value to [out_val.(j)]. Returns the number of
    vertex tiles processed.

    The kernel is blocked: a tile of [?tile] vertex rows stays cache-hot
    while all targets stream against it, with the running best carried in
    the out slots — the fold order (row 0 initialises, later rows replace
    only when [not (best >= x)]) is identical to a single flat scan, so
    the result is bit-identical to {!argmax_dot} per candidate, ties and
    NaN included. Disjoint target ranges write disjoint out slots, so
    parallel callers can share the out arrays. *)
val champions :
  ?tile:int ->
  vertices:t ->
  cands:t ->
  int array ->
  tlo:int ->
  thi:int ->
  out_row:int array ->
  out_val:float array ->
  int
