type t = { normal : Vector.t; offset : float }
type side = Below | On | Above

let make normal offset =
  if Vector.norm normal = 0. then invalid_arg "Hyperplane.make: zero normal";
  { normal; offset }

let through ~normal p = make normal (Vector.dot normal p)

let normalized h =
  let n = Vector.norm h.normal in
  { normal = Vector.scale (1. /. n) h.normal; offset = h.offset /. n }

let eval h p = Vector.dot h.normal p -. h.offset

let side ~eps h p =
  let v = eval h p in
  if v < -.eps then Below else if v > eps then Above else On

let ray_intersection h dir =
  let denom = Vector.dot h.normal dir in
  if abs_float denom < 1e-300 then None
  else
    let t = h.offset /. denom in
    if t < 0. then None else Some t

(* Find a nonzero null vector of the (d-1) x d matrix whose rows are
   [p_i - p_0]: fix one coordinate of the normal to 1 and solve for the rest,
   trying each coordinate in turn until the reduced system is regular. *)
let through_points = function
  | [] -> None
  | p0 :: rest ->
      let d = Vector.dim p0 in
      if List.length rest <> d - 1 then
        invalid_arg "Hyperplane.through_points: expected d points in R^d";
      let diffs = Array.of_list (List.map (fun p -> Vector.sub p p0) rest) in
      let try_fix j =
        (* solve diffs . n = 0 with n_j = 1 *)
        let a =
          Matrix.init (d - 1) (d - 1) (fun i c ->
              let c' = if c < j then c else c + 1 in
              diffs.(i).(c'))
        in
        let b = Array.init (d - 1) (fun i -> -.diffs.(i).(j)) in
        match Matrix.solve a b with
        | None -> None
        | Some x ->
            let n =
              Array.init d (fun c ->
                  if c = j then 1. else if c < j then x.(c) else x.(c - 1))
            in
            Some n
      in
      let rec go j = if j >= d then None else
        match try_fix j with Some n -> Some n | None -> go (j + 1)
      in
      (match go 0 with
      | None -> None
      | Some n ->
          let n = Vector.normalize n in
          let c = Vector.dot n p0 in
          let n, c = if c < 0. then (Vector.scale (-1.) n, -.c) else (n, c) in
          Some { normal = n; offset = c })

let pp ppf h = Format.fprintf ppf "%a . x = %.6f" Vector.pp h.normal h.offset
