(** Small dense matrices and Gaussian elimination.

    The convex-geometry layer only ever solves systems whose size is the data
    dimensionality [d] (at most ~10 in the paper's experiments), so a simple
    dense representation with partial pivoting is both adequate and easy to
    audit. Matrices are arrays of rows. *)

type t = float array array

(** [make rows cols x] is a [rows * cols] matrix filled with [x]. *)
val make : int -> int -> float -> t

(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [identity n] is the n*n identity matrix. *)
val identity : int -> t

(** [copy m] is a deep copy of [m]. *)
val copy : t -> t

(** [rows m] and [cols m] are the dimensions. [cols] of a 0-row matrix is 0. *)
val rows : t -> int

val cols : t -> int

(** [transpose m] is the transpose. *)
val transpose : t -> t

(** [mul_vec m v] is the matrix-vector product [m v]. *)
val mul_vec : t -> Vector.t -> Vector.t

(** [mul a b] is the matrix product. *)
val mul : t -> t -> t

(** [solve a b] solves the square system [a x = b] by Gaussian elimination
    with partial pivoting. Returns [None] when [a] is singular within
    tolerance [eps] (default [1e-12]). [a] and [b] are not modified. *)
val solve : ?eps:float -> t -> Vector.t -> Vector.t option

(** [rank ?eps m] is the numerical rank of [m], computed by row elimination
    with partial pivoting and threshold [eps] (default [1e-9]). [m] is not
    modified. *)
val rank : ?eps:float -> t -> int

(** [determinant a] is the determinant of the square matrix [a], by LU
    factorization. *)
val determinant : t -> float

(** [of_rows vs] packs row vectors into a matrix (rows are copied). *)
val of_rows : Vector.t list -> t

(** [pp] prints the matrix row by row. *)
val pp : Format.formatter -> t -> unit
