let corner_count d =
  if d < 0 || d > 20 then invalid_arg "Orthotope.corner_count: d out of range";
  1 lsl d

let corners p =
  let d = Vector.dim p in
  let n = corner_count d in
  Array.init n (fun mask ->
      Array.init d (fun i -> if mask land (1 lsl i) <> 0 then p.(i) else 0.))

let of_set ps =
  let tbl = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun p ->
      Array.iter
        (fun c ->
          let key = Array.to_list c in
          if not (Hashtbl.mem tbl key) then begin
            Hashtbl.add tbl key ();
            out := c :: !out
          end)
        (corners p))
    ps;
  List.rev !out

(* 2-D downward-closure membership: x >= 0 and, for every non-negative
   direction w that can be a support normal (the two axes and every normal of
   a segment between two input points), w.x <= max_p w.p. *)
let member2d ~eps points x =
  if Vector.dim x <> 2 then invalid_arg "Orthotope.member2d: 2-D only";
  let support w = List.fold_left (fun acc p -> Float.max acc (Vector.dot w p)) 0. points in
  let ok w = Vector.dot w x <= support w +. eps in
  Vector.is_nonneg ~eps x
  && ok [| 1.; 0. |]
  && ok [| 0.; 1. |]
  && List.for_all
       (fun p ->
         List.for_all
           (fun q ->
             (* normal of segment p-q, oriented to be non-negative if possible *)
             let w = [| q.(1) -. p.(1); p.(0) -. q.(0) |] in
             let w = if w.(0) +. w.(1) < 0. then Vector.scale (-1.) w else w in
             if w.(0) >= 0. && w.(1) >= 0. && Vector.norm w > eps then ok w
             else true)
           points)
       points
