(** Dense d-dimensional float vectors.

    All geometry in this library operates on non-negative points normalized to
    [(0,1]^d], but the vector operations themselves are fully general. Vectors
    are plain [float array]s so that callers can index directly; the functions
    here never mutate their arguments unless the name says so ([add_in_place],
    [scale_in_place]). *)

type t = float array

(** [dim v] is the dimensionality of [v]. *)
val dim : t -> int

(** [make d x] is the d-dimensional vector with every coordinate [x]. *)
val make : int -> float -> t

(** [init d f] is [| f 0; ...; f (d-1) |]. *)
val init : int -> (int -> float) -> t

(** [copy v] is a fresh vector equal to [v]. *)
val copy : t -> t

(** [zero d] is the origin of R^d. *)
val zero : int -> t

(** [basis d i] is the [i]-th standard basis vector of R^d (the paper's
    virtual corner point [vc_i]). Raises [Invalid_argument] unless
    [0 <= i < d]. *)
val basis : int -> int -> t

(** [dot u v] is the inner product, accumulated strictly left to right in
    coordinate order (4-wide unrolled single-accumulator chain — the same
    rounding as the naive loop). Raises [Invalid_argument] on dimension
    mismatch. *)
val dot : t -> t -> float

(** [dot_unsafe u v] is [dot u v] without the dimension check or bounds
    checks. Reserved for kernel-grade hot loops whose callers guarantee
    [dim v >= dim u]; everything else should call {!dot}. *)
val dot_unsafe : t -> t -> float

(** [norm v] is the Euclidean norm. *)
val norm : t -> float

(** [norm1 v] is the L1 norm. *)
val norm1 : t -> float

(** [norm_inf v] is the L-infinity norm. *)
val norm_inf : t -> float

(** [add u v] is the coordinate-wise sum. *)
val add : t -> t -> t

(** [sub u v] is the coordinate-wise difference [u - v]. *)
val sub : t -> t -> t

(** [scale a v] is [a * v]. *)
val scale : float -> t -> t

(** [add_in_place u v] adds [v] into [u]. *)
val add_in_place : t -> t -> unit

(** [scale_in_place a v] multiplies [v] by [a] in place. *)
val scale_in_place : float -> t -> unit

(** [normalize v] is [v] scaled to unit Euclidean norm. Raises
    [Invalid_argument] on the zero vector. *)
val normalize : t -> t

(** [lerp u v t] is the convex combination [(1-t) u + t v]. *)
val lerp : t -> t -> float -> t

(** [cos_angle u v] is the cosine of the angle between [u] and [v]. *)
val cos_angle : t -> t -> float

(** [equal ~eps u v] tests coordinate-wise equality within absolute
    tolerance [eps]. *)
val equal : eps:float -> t -> t -> bool

(** [max_coord v] is [(i, v.(i))] for the largest coordinate (smallest index
    wins ties). *)
val max_coord : t -> int * float

(** [min_coord v] is [(i, v.(i))] for the smallest coordinate. *)
val min_coord : t -> int * float

(** [sum v] is the sum of coordinates. *)
val sum : t -> float

(** [for_all p v] tests [p] on every coordinate. *)
val for_all : (float -> bool) -> t -> bool

(** [exists p v] tests whether some coordinate satisfies [p]. *)
val exists : (float -> bool) -> t -> bool

(** [is_nonneg ~eps v] is true when every coordinate is [>= -eps]. *)
val is_nonneg : eps:float -> t -> bool

(** [pp] formats a vector as [(x1, ..., xd)] with 4 decimal places. *)
val pp : Format.formatter -> t -> unit

(** [to_string v] is [Format.asprintf "%a" pp v]. *)
val to_string : t -> string
