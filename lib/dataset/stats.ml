module Vector = Kregret_geom.Vector
module Matrix = Kregret_geom.Matrix

let fold_dims ds f init =
  let acc = Array.make ds.Dataset.dim init in
  Array.iter
    (fun p ->
      for i = 0 to ds.Dataset.dim - 1 do
        acc.(i) <- f acc.(i) p.(i)
      done)
    ds.Dataset.points;
  acc

let means ds =
  let n = float_of_int (Dataset.size ds) in
  Array.map (fun s -> s /. n) (fold_dims ds ( +. ) 0.)

let stddevs ds =
  let n = float_of_int (Dataset.size ds) in
  let mu = means ds in
  let sq = Array.make ds.Dataset.dim 0. in
  Array.iter
    (fun p ->
      for i = 0 to ds.Dataset.dim - 1 do
        let d = p.(i) -. mu.(i) in
        sq.(i) <- sq.(i) +. (d *. d)
      done)
    ds.Dataset.points;
  Array.map (fun s -> sqrt (s /. n)) sq

let minima ds = fold_dims ds Float.min infinity
let maxima ds = fold_dims ds Float.max neg_infinity

let correlation ds =
  let d = ds.Dataset.dim in
  let n = float_of_int (Dataset.size ds) in
  let mu = means ds in
  let sigma = stddevs ds in
  let cov = Matrix.make d d 0. in
  Array.iter
    (fun p ->
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          cov.(i).(j) <- cov.(i).(j) +. ((p.(i) -. mu.(i)) *. (p.(j) -. mu.(j)))
        done
      done)
    ds.Dataset.points;
  Matrix.init d d (fun i j ->
      if i = j then 1.
      else if sigma.(i) <= 0. || sigma.(j) <= 0. then 0.
      else cov.(i).(j) /. (n *. sigma.(i) *. sigma.(j)))

let mean_pairwise_correlation ds =
  let d = ds.Dataset.dim in
  if d < 2 then 0.
  else begin
    let c = correlation ds in
    let total = ref 0. in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if i <> j then total := !total +. c.(i).(j)
      done
    done;
    !total /. float_of_int (d * (d - 1))
  end

let pp_summary ppf ds =
  let mu = means ds and sigma = stddevs ds in
  let lo = minima ds and hi = maxima ds in
  Format.fprintf ppf "%a@." Dataset.pp_stats ds;
  Format.fprintf ppf "%-5s %-9s %-9s %-9s %-9s@." "dim" "mean" "std" "min" "max";
  for i = 0 to ds.Dataset.dim - 1 do
    Format.fprintf ppf "%-5d %-9.4f %-9.4f %-9.4f %-9.4f@." i mu.(i) sigma.(i)
      lo.(i) hi.(i)
  done;
  Format.fprintf ppf "mean pairwise correlation: %+.4f@."
    (mean_pairwise_correlation ds)
