module Vector = Kregret_geom.Vector

type t = { name : string; dim : int; points : Vector.t array }

let create ~name points =
  if Array.length points = 0 then invalid_arg "Dataset.create: empty";
  let dim = Vector.dim points.(0) in
  Array.iter
    (fun p ->
      if Vector.dim p <> dim then invalid_arg "Dataset.create: mixed dimensions")
    points;
  { name; dim; points }

let size t = Array.length t.points
let to_list t = Array.to_list t.points

let normalize ?(floor = 1e-6) t =
  let maxima = Array.make t.dim 0. in
  Array.iter
    (fun p ->
      for i = 0 to t.dim - 1 do
        if p.(i) < 0. then
          invalid_arg "Dataset.normalize: negative value";
        if p.(i) > maxima.(i) then maxima.(i) <- p.(i)
      done)
    t.points;
  Array.iteri
    (fun i m ->
      if m <= 0. then
        invalid_arg
          (Printf.sprintf "Dataset.normalize: dimension %d is identically zero" i))
    maxima;
  let points =
    Array.map
      (fun p -> Array.init t.dim (fun i -> Float.max floor (p.(i) /. maxima.(i))))
      t.points
  in
  { t with points }

let is_normalized ~eps t =
  let seen_one = Array.make t.dim false in
  let ok = ref true in
  Array.iter
    (fun p ->
      for i = 0 to t.dim - 1 do
        if p.(i) <= 0. || p.(i) > 1. +. eps then ok := false;
        if p.(i) >= 1. -. eps then seen_one.(i) <- true
      done)
    t.points;
  !ok && Array.for_all Fun.id seen_one

let boundary_point t i =
  if i < 0 || i >= t.dim then invalid_arg "Dataset.boundary_point: bad dimension";
  let best = ref 0 in
  Array.iteri
    (fun j p -> if p.(i) > t.points.(!best).(i) then best := j)
    t.points;
  !best

let sub t ~indices =
  create ~name:t.name (Array.map (fun i -> t.points.(i)) indices)

let pp_stats ppf t =
  Format.fprintf ppf "%s: n=%d d=%d" t.name (size t) t.dim
