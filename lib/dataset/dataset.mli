(** Datasets: named collections of d-dimensional points.

    The paper's data model (Section II): every point lives in [(0,1]^d],
    larger is better on every dimension, and the data is normalized so that
    for each dimension some point has value exactly 1. [normalize] enforces
    this model on raw data. *)

type t = {
  name : string;
  dim : int;
  points : Kregret_geom.Vector.t array;
}

(** [create ~name points] packs points into a dataset, checking that all
    share a dimension. Raises [Invalid_argument] on an empty array or mixed
    dimensions. *)
val create : name:string -> Kregret_geom.Vector.t array -> t

(** [size t] is the number of points. *)
val size : t -> int

(** [to_list t] is the points as a list (freshly allocated spine; the point
    arrays themselves are shared). *)
val to_list : t -> Kregret_geom.Vector.t list

(** [normalize ?floor t] rescales every dimension into [(0,1]]:
    values are divided by the per-dimension maximum (values must be
    non-negative) and then floored at [floor] (default [1e-6]) to respect the
    paper's strict-positivity assumption. Raises [Invalid_argument] when a
    dimension is identically zero. *)
val normalize : ?floor:float -> t -> t

(** [is_normalized ~eps t] checks the data model: all values in [(0,1]] and
    each dimension attains [1] within [eps]. *)
val is_normalized : eps:float -> t -> bool

(** [boundary_point t i] is an index of a point maximizing dimension [i]
    (the paper's i-th dimension boundary point). *)
val boundary_point : t -> int -> int

(** [sub t ~indices] restricts to the given point indices (in order). *)
val sub : t -> indices:int array -> t

(** [pp_stats] prints name, size and dimension. *)
val pp_stats : Format.formatter -> t -> unit
