let clamp01 x = Float.min 1. (Float.max 1e-6 x)

(* Coordinate-wise power bend. Monotone, so the skyline is unchanged; gamma >
   1 pulls the point cloud away from the upper hull, shrinking the happy set
   relative to the skyline — the signature of the paper's real datasets
   (Table III: |D_happy| is 8–16% of |D_sky|). *)
let bend gamma p = Array.map (fun x -> clamp01 (x ** gamma)) p

let dataset ~name ~n ~d gen =
  if n <= 0 then invalid_arg "Generator: n must be positive";
  if d < 2 then invalid_arg "Generator: d must be at least 2";
  Dataset.normalize (Dataset.create ~name (Array.init n (fun _ -> gen ())))

let independent rng ~n ~d =
  dataset ~name:"independent" ~n ~d (fun () ->
      Array.init d (fun _ -> clamp01 (Rng.float rng)))

let correlated rng ~n ~d =
  dataset ~name:"correlated" ~n ~d (fun () ->
      (* no upper clamp: saturating at 1.0 would forge an artificial
         all-ones point that dominates the dataset; normalization rescales *)
      let base = Rng.float rng in
      Array.init d (fun _ ->
          Float.max 1e-6 (base +. Rng.gaussian rng ~mu:0. ~sigma:0.15)))

(* Anti-correlated per Börzsönyi et al.: coordinates spread around the
   hyperplane sum x = d/2 — a point that is good in one dimension pays in
   the others. Sampled by jittering a simplex-uniform split of a
   near-constant total mass. *)
let anti_correlated rng ~n ~d =
  dataset ~name:"anti_correlated" ~n ~d (fun () ->
      let total =
        Float.max 0.2 (Rng.gaussian rng ~mu:(float_of_int d *. 0.5) ~sigma:0.35)
      in
      let raw = Array.init d (fun _ -> 0.05 +. Rng.float rng) in
      let s = Array.fold_left ( +. ) 0. raw in
      (* no upper clamp (see correlated): saturating at 1.0 forges
         plateaus of tied coordinates and — at d = 2, where a draw with
         total >= 2 caps to all-ones — a point dominating the whole
         dataset, collapsing the skyline to size 1; normalization
         rescales instead *)
      Array.map (fun x -> Float.max 1e-6 (x *. total /. s)) raw)

(* household: 6 economic attributes — two correlated blocks (income-ish,
   heavy-tailed) plus independent uniform attributes. Produces the paper's
   signature: a very large skyline of which only a small fraction is happy. *)
let household_like rng ~n =
  let d = 6 in
  dataset ~name:"household" ~n ~d (fun () ->
      let wealth = Rng.exponential rng ~rate:2.5 in
      let a0 = clamp01 (wealth +. (0.1 *. Rng.float rng)) in
      let a1 = clamp01 ((0.8 *. wealth) +. (0.3 *. Rng.float rng)) in
      (* anti-correlated pair: spending rate vs saving rate *)
      let s = Rng.float rng in
      let a2 = clamp01 (s +. Rng.gaussian rng ~mu:0. ~sigma:0.05) in
      let a3 = clamp01 (1.05 -. s +. Rng.gaussian rng ~mu:0. ~sigma:0.05) in
      let a4 = clamp01 (Rng.float rng) in
      let a5 = clamp01 (Rng.float rng) in
      bend 6. [| a0; a1; a2; a3; a4; a5 |])

(* nba: box-score rates driven by a latent "skill" factor — positively
   correlated, small skyline. *)
let nba_like rng ~n =
  let d = 5 in
  dataset ~name:"nba" ~n ~d (fun () ->
      let skill = Rng.float rng ** 2. in
      let stat load =
        clamp01 ((load *. skill) +. ((1. -. load) *. Rng.float rng))
      in
      bend 5. (Array.init d (fun i -> stat (0.35 +. (0.06 *. float_of_int i)))))

(* color: 9 histogram moments clustered around a handful of palette
   centers. *)
let color_like rng ~n =
  let d = 9 in
  let n_clusters = 8 in
  let centers =
    Array.init n_clusters (fun _ ->
        Array.init d (fun _ -> 0.15 +. (0.7 *. Rng.float rng)))
  in
  dataset ~name:"color" ~n ~d (fun () ->
      (* two latent factors with per-cluster loadings keep the effective
         dimensionality low, as for real histogram moments: the skyline stays
         a small fraction of n even at d = 9 *)
      let c = centers.(Rng.int rng n_clusters) in
      let f1 = Rng.float rng and f2 = Rng.float rng in
      bend 4.
        (Array.init d (fun i ->
             let mix = 0.5 +. (0.5 *. sin (float_of_int i)) in
             clamp01
               ((0.55 *. c.(i) *. ((mix *. f1) +. ((1. -. mix) *. f2)))
               +. (0.25 *. c.(i))
               +. Rng.gaussian rng ~mu:0. ~sigma:0.02))))

(* stocks: return / stability trade-offs — two mildly anti-correlated pairs
   plus an independent liquidity score. *)
let stocks_like rng ~n =
  let d = 5 in
  dataset ~name:"stocks" ~n ~d (fun () ->
      let risk = Rng.float rng in
      let ret = clamp01 ((0.75 *. risk) +. (0.35 *. Rng.float rng)) in
      let stability = clamp01 (1.02 -. risk +. Rng.gaussian rng ~mu:0. ~sigma:0.06) in
      let growth = Rng.float rng in
      let dividend = clamp01 (1.02 -. growth +. Rng.gaussian rng ~mu:0. ~sigma:0.06) in
      let liquidity = clamp01 (Rng.float rng) in
      bend 4. [| ret; stability; clamp01 growth; dividend; liquidity |])

let real_like_names = [ "household"; "nba"; "color"; "stocks" ]

let by_name name rng ~n ~d =
  match name with
  | "independent" -> independent rng ~n ~d
  | "correlated" -> correlated rng ~n ~d
  | "anti_correlated" | "anticorrelated" -> anti_correlated rng ~n ~d
  | "household" -> household_like rng ~n
  | "nba" -> nba_like rng ~n
  | "color" -> color_like rng ~n
  | "stocks" -> stocks_like rng ~n
  | _ -> raise Not_found
