let parse_line line =
  let fields = String.split_on_char ',' line in
  let parse f =
    match float_of_string_opt (String.trim f) with
    | Some x -> x
    | None -> failwith (Printf.sprintf "Csv_io: bad field %S" f)
  in
  Array.of_list (List.map parse fields)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# name=%s dim=%d n=%d\n" t.Dataset.name t.Dataset.dim
        (Dataset.size t);
      Array.iter
        (fun p ->
          Array.iteri
            (fun i x ->
              if i > 0 then output_char oc ',';
              Printf.fprintf oc "%.17g" x)
            p;
          output_char oc '\n')
        t.Dataset.points)

let header_name line =
  (* parse "# name=foo dim=..." *)
  let tokens = String.split_on_char ' ' line in
  List.find_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = "name" ->
          Some (String.sub tok (i + 1) (String.length tok - i - 1))
      | _ -> None)
    tokens

(* parse CSV text already in memory; [path] only names the fallback dataset
   name. Lets callers that need both the bytes and the points (e.g. the
   serving registry, which fingerprints the exact bytes it parsed) read the
   file once instead of racing two reads against concurrent rewrites. *)
let parse_string ?name ~path contents =
  let points = ref [] in
  let header = ref None in
  let lineno = ref 0 in
  List.iter
    (fun line ->
      incr lineno;
      let line = String.trim line in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        if !header = None then header := header_name line
      end
      else
        match parse_line line with
        | p -> points := p :: !points
        | exception Failure msg ->
            failwith (Printf.sprintf "%s (line %d)" msg !lineno))
    (String.split_on_char '\n' contents);
  let name =
    match (name, !header) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> Filename.remove_extension (Filename.basename path)
  in
  Dataset.create ~name (Array.of_list (List.rev !points))

let load ?name path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try really_input_string ic (in_channel_length ic)
        with End_of_file -> failwith (path ^ ": truncated read"))
  in
  parse_string ?name ~path contents
