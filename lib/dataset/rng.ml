type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: seeds the xoshiro state from a single word *)
let splitmix_next state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let bits t =
  let result = rotl (t.s0 +% t.s3) 23 +% t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- t.s2 ^% t.s0;
  t.s3 <- t.s3 ^% t.s1;
  t.s1 <- t.s1 ^% t.s2;
  t.s0 <- t.s0 ^% t.s3;
  t.s2 <- t.s2 ^% tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits t) in
  create seed

let float t =
  (* 53 high bits -> [0, 1) *)
  let x = Int64.shift_right_logical (bits t) 11 in
  Int64.to_float x *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t in
    if u > 1e-300 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t in
    if u > 1e-300 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate
