(** Plain CSV persistence for datasets.

    Format: one point per line, comma-separated decimal values, optional
    comment/header lines starting with ['#']. This is the interchange format
    of the [kregret] CLI ([kregret gen] writes it, [kregret query] reads
    it). *)

(** [save path t] writes the dataset, with a ['#'] header recording name and
    dimension. *)
val save : string -> Dataset.t -> unit

(** [load ?name path] reads a dataset back. The name defaults to the header's
    name when present, else the file's basename. Raises [Failure] with a
    line number on malformed input. *)
val load : ?name:string -> string -> Dataset.t

(** [parse_string ~path contents] parses CSV text already in memory; [path]
    only provides the fallback dataset name. Callers that must fingerprint
    exactly the bytes they parsed (the serving registry) read the file once
    and hand the contents to both the hash and this parser. Raises
    [Failure] like {!load}. *)
val parse_string : ?name:string -> path:string -> string -> Dataset.t

(** [parse_line line] parses one CSV record into a point. Raises [Failure]
    on malformed fields. Exposed for tests. *)
val parse_line : string -> Kregret_geom.Vector.t
