(** Synthetic workload generators.

    Two families:

    - The three classic distributions of the skyline benchmark of Börzsönyi,
      Kossmann & Stocker (ICDE 2001), which the paper uses for its synthetic
      experiments (Section V-C uses the anti-correlated one).
    - Simulators standing in for the paper's four real datasets (household /
      nba / color / stocks), which are not redistributable; each simulator
      matches the real dataset's dimensionality and produces the same
      qualitative skyline structure (see DESIGN.md §5 for the substitution
      argument). Sizes default to laptop-scale but are parameters.

    All generators return datasets already normalized to the paper's data
    model ([(0,1]^d] with per-dimension maxima equal to 1) and are
    deterministic in the seed. *)

(** [independent rng ~n ~d] — coordinates i.i.d. uniform on (0,1]. *)
val independent : Rng.t -> n:int -> d:int -> Dataset.t

(** [correlated rng ~n ~d] — points spread around the main diagonal; good
    points are good everywhere, so skylines are tiny. *)
val correlated : Rng.t -> n:int -> d:int -> Dataset.t

(** [anti_correlated rng ~n ~d] — points spread around the hyperplane
    [sum x_i = const]; being good in one dimension means being bad in
    others, so skylines are large. This is the paper's default synthetic
    workload (n = 10,000, d = 6). *)
val anti_correlated : Rng.t -> n:int -> d:int -> Dataset.t

(** [household_like rng ~n] — 6 attributes mimicking the ipums.org household
    economics table: mixture of correlated blocks with heavy-tailed
    marginals; large skyline, much smaller happy set. Default n in the
    benches: 100,000 (paper: 903,077). *)
val household_like : Rng.t -> n:int -> Dataset.t

(** [nba_like rng ~n] — 5 positively-correlated box-score rates (points,
    rebounds, assists, steals, blocks); small skyline. Paper: 21,962. *)
val nba_like : Rng.t -> n:int -> Dataset.t

(** [color_like rng ~n] — 9 clustered color-histogram moments (kdd.ics); the
    high-dimensionality workload. Paper: 68,040. *)
val color_like : Rng.t -> n:int -> Dataset.t

(** [stocks_like rng ~n] — 5 mildly anti-correlated financial indicators
    (return vs. stability trade-offs). Paper: 122,574. *)
val stocks_like : Rng.t -> n:int -> Dataset.t

(** [by_name name] looks a generator up by its dataset name
    (["independent"], ["correlated"], ["anti_correlated"], ["household"],
    ["nba"], ["color"], ["stocks"]); the returned function takes the seed,
    [n], and (for the synthetic family) [d]. Raises [Not_found] for unknown
    names. *)
val by_name : string -> Rng.t -> n:int -> d:int -> Dataset.t

(** All simulator names, in Table III order. *)
val real_like_names : string list
