(** Descriptive statistics for datasets.

    Used by the CLI's [stats --summary] and by the test suite to verify that
    the synthetic generators actually produce the correlation structure they
    claim (correlated / anti-correlated / independent), which is what drives
    skyline and happy-set sizes in the paper's experiments. *)

(** [means ds] is the per-dimension mean. *)
val means : Dataset.t -> Kregret_geom.Vector.t

(** [stddevs ds] is the per-dimension (population) standard deviation. *)
val stddevs : Dataset.t -> Kregret_geom.Vector.t

(** [minima ds] / [maxima ds] — per-dimension extrema. *)
val minima : Dataset.t -> Kregret_geom.Vector.t

val maxima : Dataset.t -> Kregret_geom.Vector.t

(** [correlation ds] is the d*d Pearson correlation matrix. Dimensions with
    zero variance correlate 0 with everything (and 1 with themselves). *)
val correlation : Dataset.t -> Kregret_geom.Matrix.t

(** [mean_pairwise_correlation ds] averages the off-diagonal entries of
    {!correlation} — positive for correlated data, negative for
    anti-correlated, near zero for independent. *)
val mean_pairwise_correlation : Dataset.t -> float

(** [pp_summary] prints a per-dimension table (mean/std/min/max) and the
    mean pairwise correlation. *)
val pp_summary : Format.formatter -> Dataset.t -> unit
