(** Deterministic pseudo-random numbers (xoshiro256++ seeded by splitmix64).

    The benchmark harness must regenerate identical datasets across runs and
    processes, so the library carries its own generator instead of relying on
    [Stdlib.Random]'s unspecified evolution between OCaml versions. *)

type t

(** [create seed] builds a generator from a 64-bit seed (the seed is expanded
    with splitmix64, so small consecutive seeds give well-decorrelated
    streams). *)
val create : int -> t

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound); [bound > 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [uniform t ~lo ~hi] is uniform in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [gaussian t ~mu ~sigma] samples a normal deviate (Box–Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [exponential t ~rate] samples Exp(rate). *)
val exponential : t -> rate:float -> float

(** [bits t] is the raw next 64-bit word (for tests). *)
val bits : t -> int64
