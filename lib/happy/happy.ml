module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Dataset = Kregret_dataset.Dataset
module Pool = Kregret_parallel.Pool
module Obs = Kregret_obs

(* Observability: accumulated per victim / per candidate — a pure function
   of the input, never of the pool width (see PR 1 determinism contract). *)
let c_candidates =
  Obs.Registry.counter "happy.candidates"
    ~help:"skyline candidates screened for happiness"

let c_kept =
  Obs.Registry.counter "happy.kept" ~help:"happy points surviving the screen"

let c_pruned =
  Obs.Registry.counter "happy.pruned" ~help:"candidates pruned as subjugated"

let c_probes =
  Obs.Registry.counter "happy.subjugation_probes"
    ~help:"pairwise subjugation probes performed"

let c_cut_vertices =
  Obs.Registry.counter "happy.cut_box_vertices"
    ~help:"dual vertices enumerated across all cut boxes"

let default_eps = 1e-9

let cut_box_vertices ?(eps = default_eps) q =
  let d = Vector.dim q in
  if d > 20 then invalid_arg "Happy.cut_box_vertices: d > 20";
  let out = ref [] in
  for mask = 0 to (1 lsl d) - 1 do
    let corner =
      Array.init d (fun i -> if mask land (1 lsl i) <> 0 then 1. else 0.)
    in
    let s = Vector.dot corner q in
    if s <= 1. +. eps then out := corner :: !out;
    (* edges leaving this corner upward in dimension i (bit i clear): the cut
       hyperplane crosses the edge when s < 1 < s + q_i *)
    for i = 0 to d - 1 do
      if mask land (1 lsl i) = 0 then begin
        let s_top = s +. q.(i) in
        if s < 1. -. eps && s_top > 1. +. eps then begin
          let w = Array.copy corner in
          w.(i) <- (1. -. s) /. q.(i);
          out := w :: !out
        end
      end
    done
  done;
  !out

(* Flat variant of [cut_box_vertices]: the same corner/edge enumeration in
   the same order, written straight into a flat SoA buffer through two
   reusable scratch rows — no per-vertex boxed allocation. The happy screen
   enumerates these sets for every skyline point inside a parallel region;
   on OCaml 5 the allocation traffic of the boxed version was minor-GC
   pressure that every domain paid for in stop-the-world syncs (ISSUE 6). *)
let cut_box_vertices_flat ?(eps = default_eps) q =
  let d = Vector.dim q in
  if d > 20 then invalid_arg "Happy.cut_box_vertices_flat: d > 20";
  let out = Flat.create ~capacity:64 ~dim:d () in
  let corner = Array.make d 0. and edge = Array.make d 0. in
  (* The rows come out in [cut_box_vertices]'s cons-reversed probe order —
     masks descending, edges (descending i) before their corner — because
     the membership sweep's early exit depends on it: heavy corners (many
     coordinates at 1) are the rows most likely to refute [w . p <= 1], and
     starting from the all-zero corner instead costs a full extra pass per
     probe on average. Verdicts are order-independent; only speed isn't. *)
  for mask = (1 lsl d) - 1 downto 0 do
    for i = 0 to d - 1 do
      corner.(i) <- (if mask land (1 lsl i) <> 0 then 1. else 0.)
    done;
    let s = Vector.dot_unsafe corner q in
    (* edges leaving this corner upward in dimension i (bit i clear): the cut
       hyperplane crosses the edge when s < 1 < s + q_i *)
    for i = d - 1 downto 0 do
      if mask land (1 lsl i) = 0 then begin
        let s_top = s +. q.(i) in
        if s < 1. -. eps && s_top > 1. +. eps then begin
          Array.blit corner 0 edge 0 d;
          edge.(i) <- (1. -. s) /. q.(i);
          Flat.push_row out edge
        end
      end
    done;
    if s <= 1. +. eps then Flat.push_row out corner
  done;
  out

(* "p is on or below every hyperplane of Y(q)" == p is in the polytope P_q,
   tested against all dual vertices. *)
let inside_pq ~eps vertices p =
  List.for_all (fun w -> Vector.dot w p <= 1. +. eps) vertices

(* "p is on every hyperplane of Y(q)": the common intersection of the
   non-origin facet hyperplanes of P_q is {sum x = 1} when q is inside the
   unit simplex and the single point {q} otherwise (see .mli). *)
let on_all_hyperplanes ~eps q p =
  if Vector.sum q <= 1. +. eps then abs_float (Vector.sum p -. 1.) <= eps
  else Vector.equal ~eps p q

let subjugates ?(eps = default_eps) q p =
  let vertices = cut_box_vertices ~eps q in
  inside_pq ~eps vertices p && not (on_all_hyperplanes ~eps q p)

let is_happy ?(eps = default_eps) ~candidates p =
  not
    (List.exists
       (fun q -> (not (Vector.equal ~eps:0. q p)) && subjugates ~eps q p)
       candidates)

let happy_points ?(eps = default_eps) points =
  let n = Array.length points in
  (* each [Q_q] vertex enumeration is independent: fan out over the pool *)
  Obs.Counter.add c_candidates n;
  let d = if n = 0 then 1 else Vector.dim points.(0) in
  let dummy = Flat.create ~dim:d () in
  let vertex_sets = Array.make n dummy in
  (* cost hint: one enumeration walks 2^d corners at ~d ns-scale work each,
     plus the buffer writes *)
  Pool.parallel_for
    ~cost:(20. *. float_of_int ((1 lsl d) * d))
    ~lo:0 ~hi:n
    (fun i ->
      let vs = cut_box_vertices_flat ~eps points.(i) in
      Obs.Counter.add c_cut_vertices (Flat.rows vs);
      vertex_sets.(i) <- vs);
  (* probe strong subjugators first: a point with a large coordinate sum has
     a large [P_q] and disqualifies most victims, so the inner loop's early
     exit fires after a handful of probes instead of O(n) *)
  let probe_order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (Vector.sum points.(b)) (Vector.sum points.(a)))
    probe_order;
  (* per-victim verdicts are independent of each other (they only read
     [points] / [vertex_sets]), so the quadratic subjugation loop fans out
     too; verdicts land in disjoint slots and the survivor list is rebuilt
     in index order, identical for every pool width. The membership test
     [p in P_q] streams each flat vertex set with an early-exit dot sweep —
     the same conjunction the boxed List.for_all computed. *)
  let keep = Array.make n false in
  let bound = 1. +. eps in
  Pool.parallel_for
    ~cost:(30. *. float_of_int n)
    ~lo:0 ~hi:n
    (fun i ->
      let p = points.(i) in
      let subjugated = ref false in
      let probes = ref 0 in
      Array.iter
        (fun j ->
          if (not !subjugated) && j <> i then begin
            incr probes;
            let q = points.(j) in
            if
              (not (Vector.equal ~eps:0. q p))
              && Flat.for_all_dot_le vertex_sets.(j) p bound
              && not (on_all_hyperplanes ~eps q p)
            then subjugated := true
          end)
        probe_order;
      Obs.Counter.add c_probes !probes;
      keep.(i) <- not !subjugated);
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := i :: !out
  done;
  let result = Array.of_list !out in
  let kept = Array.length result in
  Obs.Counter.add c_kept kept;
  Obs.Counter.add c_pruned (n - kept);
  result

let of_dataset ?eps ds =
  let sky = Kregret_skyline.Skyline.of_dataset ds in
  let indices = happy_points ?eps sky.Dataset.points in
  let sub = Dataset.sub sky ~indices in
  { sub with Dataset.name = ds.Dataset.name ^ "/happy" }
