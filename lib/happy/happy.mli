(** Happy points (Definition 4 and Lemmas 2–5 of the paper).

    A point [p] is {e subjugated} by [q] when [p] lies on or below every
    hyperplane of [Y(q)] — the hyperplanes carrying the faces of
    [Conv({q} ∪ VC)] that do not pass through the origin (VC = the unit
    basis "virtual corner" points) — and strictly below at least one of
    them. Happy points are the points subjugated by nobody; by Lemma 2 they
    are a complete candidate set for the k-regret query, and by Lemma 3
    [D_conv ⊆ D_happy ⊆ D_sky].

    Implementation (DESIGN.md §2): [P_q = Conv({q} ∪ VC)] dualizes to
    [Q_q = [0,1]^d ∩ { w . q <= 1 }] — a unit box cut by a single
    halfspace, whose vertices are enumerable in closed form. Then

    - "on or below every hyperplane of Y(q)" iff [p ∈ P_q] iff
      [w . p <= 1] for every vertex [w] of [Q_q];
    - "below at least one" iff [p] is not on the common intersection of the
      [Y(q)] hyperplanes, which is the simplex face [{sum x = 1}] when
      [sum q <= 1] and the single point [{q}] when [sum q > 1] (every
      non-origin facet of [P_q] then passes through the vertex [q], and
      [q]'s strictly positive coordinates rule coordinate planes out).

    The pairwise scan is the paper's [O(n^2 d 2^d)] algorithm (Section
    III-B); pass skyline points only — subjugation by a dominated point is
    always witnessed by its dominator, so filtering to [D_sky] first loses
    nothing and is how the paper's experiments run. *)

(** [cut_box_vertices ~eps q] enumerates the vertices of
    [Q_q = [0,1]^d ∩ {w . q <= 1}]: the surviving box corners plus the
    intersections of the cut hyperplane with box edges. *)
val cut_box_vertices :
  ?eps:float -> Kregret_geom.Vector.t -> Kregret_geom.Vector.t list

(** [cut_box_vertices_flat ~eps q] is the same enumeration written into a
    flat SoA buffer (rows in generation order — [cut_box_vertices] returns
    the reversed list) with no per-vertex allocation; the hot screen in
    {!happy_points} runs on these (ISSUE 6). *)
val cut_box_vertices_flat :
  ?eps:float -> Kregret_geom.Vector.t -> Kregret_geom.Flat.t

(** [subjugates ~eps q p] — does [q] subjugate [p]? Both points must be
    strictly positive and lie in [(0,1]^d]. A point never subjugates itself
    (or an exact duplicate). *)
val subjugates : ?eps:float -> Kregret_geom.Vector.t -> Kregret_geom.Vector.t -> bool

(** [is_happy ~candidates p] — true when no point of [candidates] subjugates
    [p] ([p] itself, by identity or by value, never counts against). *)
val is_happy :
  ?eps:float -> candidates:Kregret_geom.Vector.t list -> Kregret_geom.Vector.t ->
  bool

(** [happy_points points] filters an array to its happy members, returning
    ascending indices (mirroring {!Kregret_skyline.Skyline}). The input
    should normally be a skyline. *)
val happy_points : ?eps:float -> Kregret_geom.Vector.t array -> int array

(** [of_dataset ds] computes skyline then happy points, returning the happy
    subset as a dataset named ["<name>/happy"]. *)
val of_dataset : ?eps:float -> Kregret_dataset.Dataset.t -> Kregret_dataset.Dataset.t
