module Obs = Kregret_obs

(* Observability: each solve's pivot trail is a pure function of the LP
   instance (Dantzig then Bland are both deterministic rules), so totals are
   identical however calls are distributed across domains. *)
let c_solves = Obs.Registry.counter "simplex.solves" ~help:"LPs solved"
let c_pivots = Obs.Registry.counter "simplex.pivots" ~help:"pivot operations"

let c_bland =
  Obs.Registry.counter "simplex.bland_activations"
    ~help:"iteration runs that exhausted the Dantzig budget and fell back to \
           Bland's rule"

let c_infeasible =
  Obs.Registry.counter "simplex.phase1_infeasibilities"
    ~help:"solves whose phase-1 optimum stayed positive (infeasible LPs)"

type relation = Le | Ge | Eq
type constr = { coeffs : float array; relation : relation; rhs : float }

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

(* The tableau holds the constraint rows; the reduced-cost row is kept
   separately and rebuilt between phases. [basis.(i)] is the column basic in
   row [i]. Column layout: original vars, then slack/surplus, then
   artificials. *)
type tableau = {
  rows : float array array; (* m rows, each of width ncols + 1 (rhs last) *)
  basis : int array;
  ncols : int;
  nvars : int;
  first_artificial : int; (* columns >= this are artificial *)
}

let rhs_col t = t.ncols

let build ~nvars constraints =
  List.iter
    (fun c ->
      if Array.length c.coeffs <> nvars then
        invalid_arg "Simplex: constraint width mismatch")
    constraints;
  (* flip rows so every rhs is non-negative *)
  let constraints =
    List.map
      (fun c ->
        if c.rhs < 0. then
          {
            coeffs = Array.map (fun x -> -.x) c.coeffs;
            rhs = -.c.rhs;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      constraints
  in
  let m = List.length constraints in
  let n_slack =
    List.fold_left
      (fun acc c -> match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 constraints
  in
  let n_artificial =
    List.fold_left
      (fun acc c -> match c.relation with Ge | Eq -> acc + 1 | Le -> acc)
      0 constraints
  in
  let ncols = nvars + n_slack + n_artificial in
  let rows = Array.init m (fun _ -> Array.make (ncols + 1) 0.) in
  let basis = Array.make m (-1) in
  let slack = ref nvars in
  let artificial = ref (nvars + n_slack) in
  List.iteri
    (fun i c ->
      Array.blit c.coeffs 0 rows.(i) 0 nvars;
      rows.(i).(ncols) <- c.rhs;
      (match c.relation with
      | Le ->
          rows.(i).(!slack) <- 1.;
          basis.(i) <- !slack;
          incr slack
      | Ge ->
          rows.(i).(!slack) <- -1.;
          incr slack;
          rows.(i).(!artificial) <- 1.;
          basis.(i) <- !artificial;
          incr artificial
      | Eq ->
          rows.(i).(!artificial) <- 1.;
          basis.(i) <- !artificial;
          incr artificial))
    constraints;
  { rows; basis; ncols; nvars; first_artificial = nvars + n_slack }

(* Reduced-cost row for cost vector [cost] (length ncols) given the current
   basis: cbar_j = c_j - sum_i c_B(i) * T_ij; last entry is the negated
   objective value. *)
let reduced_costs t cost =
  let m = Array.length t.rows in
  let row = Array.make (t.ncols + 1) 0. in
  Array.blit cost 0 row 0 t.ncols;
  for i = 0 to m - 1 do
    let cb = cost.(t.basis.(i)) in
    if cb <> 0. then begin
      let r = t.rows.(i) in
      for j = 0 to t.ncols do
        row.(j) <- row.(j) -. (cb *. r.(j))
      done
    end
  done;
  row

let pivot t obj_row ~row ~col =
  Obs.Counter.incr c_pivots;
  let pr = t.rows.(row) in
  let piv = pr.(col) in
  for j = 0 to t.ncols do
    pr.(j) <- pr.(j) /. piv
  done;
  let eliminate r =
    let factor = r.(col) in
    if factor <> 0. then
      for j = 0 to t.ncols do
        r.(j) <- r.(j) -. (factor *. pr.(j))
      done
  in
  Array.iteri (fun i r -> if i <> row then eliminate r) t.rows;
  eliminate obj_row;
  t.basis.(row) <- col

(* Run simplex iterations on [t] minimizing the objective encoded in
   [obj_row]. [allowed j] filters entering columns (used to block artificials
   in phase 2). Returns [`Optimal] or [`Unbounded]. *)
let iterate ~eps t obj_row ~allowed =
  let m = Array.length t.rows in
  let max_dantzig = 50 * (m + t.ncols) in
  let iter = ref 0 in
  let result = ref None in
  while !result = None do
    incr iter;
    let bland = !iter > max_dantzig in
    if !iter = max_dantzig + 1 then Obs.Counter.incr c_bland;
    (* entering column *)
    let enter = ref (-1) in
    if bland then begin
      (* Bland: smallest eligible index *)
      let j = ref 0 in
      while !enter = -1 && !j < t.ncols do
        if allowed !j && obj_row.(!j) < -.eps then enter := !j;
        incr j
      done
    end
    else begin
      (* Dantzig: most negative reduced cost *)
      let best = ref (-.eps) in
      for j = 0 to t.ncols - 1 do
        if allowed j && obj_row.(j) < !best then begin
          best := obj_row.(j);
          enter := j
        end
      done
    end;
    if !enter = -1 then result := Some `Optimal
    else begin
      let col = !enter in
      (* ratio test; Bland tie-break on basis variable index *)
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if a > eps then begin
          let ratio = t.rows.(i).(rhs_col t) /. a in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && !leave >= 0
               && t.basis.(i) < t.basis.(!leave))
          then begin
            best_ratio := ratio;
            leave := i
          end
        end
      done;
      if !leave = -1 then result := Some `Unbounded
      else pivot t obj_row ~row:!leave ~col
    end
  done;
  match !result with Some r -> r | None -> assert false

let extract_solution t =
  let x = Array.make t.nvars 0. in
  Array.iteri
    (fun i b -> if b < t.nvars then x.(b) <- t.rows.(i).(rhs_col t))
    t.basis;
  x

let minimize ?(eps = 1e-9) ~nvars ~objective constraints =
  if Array.length objective <> nvars then
    invalid_arg "Simplex.minimize: objective width mismatch";
  Obs.Counter.incr c_solves;
  let t = build ~nvars constraints in
  let m = Array.length t.rows in
  (* Phase 1: minimize the sum of artificial variables. *)
  let need_phase1 = t.first_artificial < t.ncols in
  let feasible =
    if not need_phase1 then true
    else begin
      let cost1 = Array.make t.ncols 0. in
      for j = t.first_artificial to t.ncols - 1 do
        cost1.(j) <- 1.
      done;
      let obj_row = reduced_costs t cost1 in
      (* the phase-1 objective is bounded below by 0, so `Unbounded can only
         arise from accumulated round-off in a degenerate tableau; the
         phase-1 value test below still decides feasibility correctly *)
      (match iterate ~eps t obj_row ~allowed:(fun _ -> true) with
      | `Unbounded | `Optimal -> ());
      let phase1_value = -.obj_row.(rhs_col t) in
      if phase1_value > eps *. 10. then false
      else begin
        (* Drive any basic artificial out of the basis when possible. *)
        for i = 0 to m - 1 do
          if t.basis.(i) >= t.first_artificial then begin
            let j = ref 0 in
            let found = ref (-1) in
            while !found = -1 && !j < t.first_artificial do
              if abs_float t.rows.(i).(!j) > eps then found := !j;
              incr j
            done;
            match !found with
            | -1 -> () (* redundant row; the artificial stays basic at 0 *)
            | col -> pivot t obj_row ~row:i ~col
          end
        done;
        true
      end
    end
  in
  if not feasible then begin
    Obs.Counter.incr c_infeasible;
    Infeasible
  end
  else begin
    let cost2 = Array.make t.ncols 0. in
    Array.blit objective 0 cost2 0 nvars;
    let obj_row = reduced_costs t cost2 in
    let allowed j = j < t.first_artificial in
    match iterate ~eps t obj_row ~allowed with
    | `Unbounded -> Unbounded
    | `Optimal ->
        Optimal
          { objective = -.obj_row.(rhs_col t); solution = extract_solution t }
  end

let maximize ?eps ~nvars ~objective constraints =
  let neg = Array.map (fun x -> -.x) objective in
  match minimize ?eps ~nvars ~objective:neg constraints with
  | Optimal { objective; solution } ->
      Optimal { objective = -.objective; solution }
  | (Infeasible | Unbounded) as r -> r
