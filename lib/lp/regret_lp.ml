module Vector = Kregret_geom.Vector

let critical_ratio ?eps ~selected q =
  (match selected with
  | [] -> invalid_arg "Regret_lp.critical_ratio: empty selection"
  | p :: _ ->
      if Vector.dim p <> Vector.dim q then
        invalid_arg "Regret_lp.critical_ratio: dimension mismatch");
  let d = Vector.dim q in
  let m = Model.create () in
  let w = Array.init d (fun i -> Model.add_var m ~name:(Printf.sprintf "w%d" i)) in
  let t = Model.add_var m ~name:"t" in
  let dot_terms v = List.init d (fun i -> (v.(i), w.(i))) in
  Model.add_eq m (dot_terms q) 1.;
  List.iter (fun p -> Model.add_le m ((-1., t) :: dot_terms p) 0.) selected;
  match Model.minimize ?eps m [ (1., t) ] with
  | Model.Optimal { objective; values } ->
      let witness = Array.init d (fun i -> values w.(i)) in
      (objective, witness)
  | Model.Infeasible ->
      (* w . q = 1 is infeasible only if q = 0, excluded by the data model *)
      invalid_arg "Regret_lp.critical_ratio: infeasible (zero candidate?)"
  | Model.Unbounded ->
      invalid_arg "Regret_lp.critical_ratio: unbounded (empty selection?)"

let regret_ratio ?eps ~selected q =
  let cr, _ = critical_ratio ?eps ~selected q in
  Float.max 0. (1. -. cr)

let worst_candidate ?eps ~data ~selected () =
  List.fold_left
    (fun acc q ->
      let cr, _ = critical_ratio ?eps ~selected q in
      match acc with
      | Some (_, best) when best <= cr -> acc
      | _ -> Some (q, cr))
    None data

let max_regret_ratio ?eps ~data ~selected () =
  match worst_candidate ?eps ~data ~selected () with
  | None -> 0.
  | Some (_, cr) -> Float.max 0. (1. -. cr)

let separating_direction ?(eps = 1e-7) ~others p =
  let d = Vector.dim p in
  match others with
  | [] -> Some (Array.make d (1. /. float_of_int d))
  | _ -> (
      let m = Model.create () in
      let w =
        Array.init d (fun i -> Model.add_var m ~name:(Printf.sprintf "w%d" i))
      in
      let delta = Model.add_free_var m ~name:"delta" in
      let dot_terms v = List.init d (fun i -> (v.(i), w.(i))) in
      Model.add_eq m (List.init d (fun i -> (1., w.(i)))) 1.;
      List.iter
        (fun q ->
          let diff = Vector.sub p q in
          Model.add_ge m ((-1., delta) :: dot_terms diff) 0.)
        others;
      match Model.maximize m [ (1., delta) ] with
      | Model.Optimal { objective; values } when objective > eps ->
          Some (Array.init d (fun i -> values w.(i)))
      | Model.Optimal _ | Model.Infeasible -> None
      | Model.Unbounded -> Some (Array.make d (1. /. float_of_int d)))

let in_convex_position ?eps ~others p =
  separating_direction ?eps ~others p <> None
