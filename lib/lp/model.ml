type var = int

type var_info = { vname : string; pos_col : int; neg_col : int (* -1 if non-negative *) }

type t = {
  mutable vars : var_info list; (* reversed *)
  mutable nvars : int;
  mutable ncols : int;
  mutable constraints : (((float * var) list) * Simplex.relation * float) list;
}

type outcome =
  | Optimal of { objective : float; values : var -> float }
  | Infeasible
  | Unbounded

let create () = { vars = []; nvars = 0; ncols = 0; constraints = [] }

let add_var t ~name =
  let v = t.nvars in
  t.vars <- { vname = name; pos_col = t.ncols; neg_col = -1 } :: t.vars;
  t.nvars <- t.nvars + 1;
  t.ncols <- t.ncols + 1;
  v

let add_free_var t ~name =
  let v = t.nvars in
  t.vars <- { vname = name; pos_col = t.ncols; neg_col = t.ncols + 1 } :: t.vars;
  t.nvars <- t.nvars + 1;
  t.ncols <- t.ncols + 2;
  v

let info t v = List.nth t.vars (t.nvars - 1 - v)
let name t v = (info t v).vname

let add_constr t terms rel rhs = t.constraints <- (terms, rel, rhs) :: t.constraints
let add_le t terms rhs = add_constr t terms Simplex.Le rhs
let add_ge t terms rhs = add_constr t terms Simplex.Ge rhs
let add_eq t terms rhs = add_constr t terms Simplex.Eq rhs

let row_of_terms t terms =
  let row = Array.make t.ncols 0. in
  List.iter
    (fun (c, v) ->
      let i = info t v in
      row.(i.pos_col) <- row.(i.pos_col) +. c;
      if i.neg_col >= 0 then row.(i.neg_col) <- row.(i.neg_col) -. c)
    terms;
  row

let solve ?eps t objective ~direction =
  let constraints =
    List.rev_map
      (fun (terms, relation, rhs) ->
        { Simplex.coeffs = row_of_terms t terms; relation; rhs })
      t.constraints
  in
  let obj = row_of_terms t objective in
  let run =
    match direction with
    | `Min -> Simplex.minimize ?eps ~nvars:t.ncols ~objective:obj
    | `Max -> Simplex.maximize ?eps ~nvars:t.ncols ~objective:obj
  in
  match run constraints with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal { objective; solution } ->
      let values v =
        let i = info t v in
        if i.neg_col >= 0 then solution.(i.pos_col) -. solution.(i.neg_col)
        else solution.(i.pos_col)
      in
      Optimal { objective; values }

let minimize ?eps t objective = solve ?eps t objective ~direction:`Min
let maximize ?eps t objective = solve ?eps t objective ~direction:`Max
