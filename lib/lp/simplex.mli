(** Dense two-phase primal simplex.

    This is the "constrained programming" engine the paper's baseline
    [Greedy] (Nanongkai et al., VLDB 2010) spends its time in: one linear
    program per candidate point per greedy iteration. The problems solved
    here are small (d+1 variables, |S|+1 rows) but numerous, so the solver is
    a straightforward dense tableau implementation with

    - automatic standardization (slack/surplus/artificial variables),
    - a phase-1 feasibility pass,
    - Dantzig pricing with a Bland's-rule fallback for anti-cycling,
    - explicit infeasible / unbounded outcomes.

    All decision variables are non-negative; free variables are handled one
    level up (see {!Model}) by sign splitting. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;  (** dense row of length [nvars] *)
  relation : relation;
  rhs : float;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
      (** minimal objective value and an optimal assignment of the original
          variables *)
  | Infeasible
  | Unbounded

(** [minimize ~nvars ~objective constraints] solves

    {v min objective . x   s.t.  constraints,  x >= 0 v}

    Raises [Invalid_argument] when a row's width disagrees with [nvars].
    [eps] (default [1e-9]) is the pivot/zero tolerance. *)
val minimize :
  ?eps:float -> nvars:int -> objective:float array -> constr list -> outcome

(** [maximize] is [minimize] on the negated objective, with the objective
    value reported for the original (maximization) direction. *)
val maximize :
  ?eps:float -> nvars:int -> objective:float array -> constr list -> outcome
