(** A small modelling layer over {!Simplex}.

    Adds the two conveniences the regret LPs need: free (sign-unrestricted)
    variables, handled by the classic [x = x+ - x-] split, and incremental
    model construction with named variables for debuggability. *)

type t
type var

type outcome =
  | Optimal of { objective : float; values : var -> float }
  | Infeasible
  | Unbounded

(** [create ()] is an empty model. *)
val create : unit -> t

(** [add_var t ~name] declares a non-negative variable. *)
val add_var : t -> name:string -> var

(** [add_free_var t ~name] declares a sign-unrestricted variable. *)
val add_free_var : t -> name:string -> var

(** [add_le t terms rhs] adds [sum (c * v) <= rhs]; [add_ge] and [add_eq]
    likewise. Terms may repeat a variable; coefficients accumulate. *)
val add_le : t -> (float * var) list -> float -> unit

val add_ge : t -> (float * var) list -> float -> unit
val add_eq : t -> (float * var) list -> float -> unit

(** [minimize t terms] / [maximize t terms] solve with the given linear
    objective. The model may be re-solved with different objectives. *)
val minimize : ?eps:float -> t -> (float * var) list -> outcome

val maximize : ?eps:float -> t -> (float * var) list -> outcome

(** [name t v] is the name [v] was declared with. *)
val name : t -> var -> string
