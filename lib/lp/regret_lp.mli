(** The linear programs of the k-regret literature.

    These are the formulations the baseline [Greedy] algorithm of Nanongkai
    et al. (VLDB 2010) solves once per candidate per iteration — the cost the
    paper's GeoGreedy removes. They double as an independent oracle against
    which the geometric implementations are property-tested.

    All points are non-negative vectors of a common dimension [d]. *)

(** [critical_ratio ~selected q] is the paper's [cr(q, S)] (Definition 3),
    computed as the LP

    {v min t  s.t.  w . q = 1,  w . p <= t (p in selected),  w, t >= 0 v}

    By Lemma 1 (in its dual reading), the optimum equals
    [||q'|| / ||q||] where [q'] is the q-critical point for [selected].
    Returns the ratio together with a witness weight vector (the maximum
    regret direction for [q], scaled so [w . q = 1]).

    Raises [Invalid_argument] when [selected] is empty or dimensions
    disagree. *)
val critical_ratio :
  ?eps:float -> selected:Kregret_geom.Vector.t list -> Kregret_geom.Vector.t ->
  float * Kregret_geom.Vector.t

(** [regret_ratio ~selected q] is [max 0 (1 - critical_ratio ~selected q)]:
    how much of its best utility a user loses on point [q] when shown only
    [selected]. *)
val regret_ratio :
  ?eps:float -> selected:Kregret_geom.Vector.t list -> Kregret_geom.Vector.t ->
  float

(** [max_regret_ratio ~data ~selected] is [mrr(selected)] over the linear
    function class, i.e. [max_{q in data} regret_ratio q] — Lemma 1 computed
    entirely by LP. *)
val max_regret_ratio :
  ?eps:float ->
  data:Kregret_geom.Vector.t list ->
  selected:Kregret_geom.Vector.t list ->
  unit ->
  float

(** [worst_candidate ~data ~selected] is the point of [data] with the
    smallest critical ratio for [selected] (the point "contributing to the
    maximum regret ratio", line 6 of Algorithm 1), with that ratio.
    Returns [None] when [data] is empty. *)
val worst_candidate :
  ?eps:float ->
  data:Kregret_geom.Vector.t list ->
  selected:Kregret_geom.Vector.t list ->
  unit ->
  (Kregret_geom.Vector.t * float) option

(** [in_convex_position ~others p] tests whether [p] is an extreme point of
    the downward-closed hull of [p :: others] — i.e. whether [p] would belong
    to the paper's [D_conv]. Decided by the LP

    {v max delta  s.t.  w . (p - q) >= delta (q in others),
                        sum w = 1,  w >= 0,  delta free v}

    with [p] extreme iff the optimum exceeds [eps]. A duplicate of [p] in
    [others] therefore makes the answer [false]. *)
val in_convex_position :
  ?eps:float -> others:Kregret_geom.Vector.t list -> Kregret_geom.Vector.t ->
  bool

(** [separating_direction ~others p] is the decision version of
    {!in_convex_position} that also returns the witness: a non-negative
    direction [w] (normalized to [sum w = 1]) with [w . p > w . q] for every
    [q] in [others], or [None] when no such direction exists ([p] lies in
    the downward closure of [others]). The witness drives Clarkson's
    algorithm in {!Kregret_hull.Extreme}. *)
val separating_direction :
  ?eps:float -> others:Kregret_geom.Vector.t list -> Kregret_geom.Vector.t ->
  Kregret_geom.Vector.t option
