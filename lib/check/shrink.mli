(** Failing-instance minimization.

    Given an instance on which a predicate fails, greedily search for a
    smaller one that still fails: drop contiguous blocks of points
    (ddmin-style, halving block sizes), drop exact duplicate rows in one
    shot, project out whole dimensions, reduce [k], and snap coordinates
    to a coarse grid. Deterministic — the same failing instance always
    shrinks to the same repro.

    The duplicate-drop pass exists for the ε-kernel checks: grid
    snapping collapses points onto identical coordinates, and tie-rule
    or ε-bound violations survive deduplication far more often than any
    particular block deletion, so repros for those checks converge to a
    handful of distinct rows.

    The predicate is usually "the oracle still reports a failure of the
    same check" (see {!Fuzzer}), so shrinking cannot wander from one bug to
    an unrelated one. *)

type result = {
  instance : Instance.t;  (** the minimized failing instance *)
  steps : int;  (** accepted shrink edits *)
  attempts : int;  (** predicate evaluations spent *)
}

(** [shrink ~fails inst] minimizes [inst]; [fails inst] must already be
    [true] (otherwise [inst] is returned unchanged with [steps = 0]).
    [max_attempts] bounds predicate evaluations (default 400). *)
val shrink :
  ?max_attempts:int -> fails:(Instance.t -> bool) -> Instance.t -> result

(** [trace ~fails ops] minimizes an operation list with ddmin: delete
    contiguous blocks of ops, halving the block size, while [fails] stays
    [true]. Returns [ops] unchanged when [fails ops] is [false].
    Deterministic; [max_attempts] bounds predicate evaluations (default
    400). Used to minimize failing update interleavings surfaced by the
    dynamic oracle. *)
val trace : ?max_attempts:int -> fails:('a list -> bool) -> 'a list -> 'a list

(** [frame ~fails s] minimizes a wire frame (an arbitrary byte string) with
    ddmin: delete contiguous chunks, halving the chunk size, while [fails]
    stays [true]. Returns [s] unchanged when [fails s] is [false].
    Deterministic; [max_attempts] bounds predicate evaluations (default
    400). Used to minimize protocol frames that trip the serve parser. *)
val frame : ?max_attempts:int -> fails:(string -> bool) -> string -> string
