let tie = 1e-6
let geom = 1e-9
let approx_eq a b = abs_float (a -. b) <= tie
let leq a b = a <= b +. tie
