(** Differential oracle for the ε-kernel approximation tier
    ({!Kregret_approx}).

    For one seeded {!Instance} it runs the approx pipeline and asserts
    only what is provable (a fuzzer run of 500 instances refutes
    anything weaker than a theorem):

    - [approx-kernel] — the kernel is a strictly ascending, in-range
      subset of the input and contains the maximum of {e every} net
      direction, each winner recomputed by an independent boxed
      first-wins scan (catching tie-rule breakage in the blocked flat
      kernel).
    - [approx-bound] — [mrr_D(S) <= min 1 (mrr_K(S) + slack)] for the
      approx selection [S] (the certificate the pipeline advertises;
      both sides by {!Kregret.Mrr.geometric}), its corollary
      [mrr(approx) - mrr(exact) <= certificate], the coreset property
      [mrr_D(kernel) <= slack], and 32 sampled directional probes of
      the same. Note [mrr(approx) - mrr(exact) <= slack] alone is {e
      not} a theorem — greedy-on-kernel and greedy-on-data may diverge —
      which is why the certificate includes the kernel-relative mrr.
    - [approx-monotone] — halving ε doubles the grid resolution exactly,
      the finer net's kernel contains the coarser one's, the advertised
      slack shrinks, and the coreset regret cannot grow (skipped at high
      d where the doubled net would blow the scan budget).
    - [approx-jobs] — the reduction (ids and per-direction winners) and
      the downstream pipeline are bit-identical at jobs 1, [jobs_hi],
      and an oversubscribed width past
      [Domain.recommended_domain_count ()] (exercising the pool's
      oversubscription cap).
    - [approx-shards] — {!Kregret_serve.Shard.create} with [~approx] at
      shards {1, 2, 4} answers bit-identically (ids and mrr bits, every
      k) to the offline {!Kregret_approx.Pipeline}.

    ε is chosen per dimension: the finest grid whose net stays within a
    ~1k-direction budget (never coarser than ε = 1 permits). *)

(** [check inst] — [(check-name, message)] per failed assertion; [[]]
    when the tier holds. Manages its own pool widths (callers must not
    wrap it in a parallel region). *)
val check : ?jobs_hi:int -> Instance.t -> (string * string) list
