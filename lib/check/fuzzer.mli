(** The differential fuzzing campaign driver.

    A campaign is fully determined by [(seed, instances, oracle config)]:
    the instance stream comes from sequential {!Kregret_dataset.Rng.split}s
    of one master generator, so the same seed replays the same instances on
    any machine at any pool width. On a failure the campaign shrinks the
    instance against the originally-violated checks ({!Shrink}), then
    persists the minimized repro to the corpus directory ({!Corpus}) for
    permanent regression coverage. *)

type config = {
  instances : int;  (** how many instances to generate *)
  seed : int;  (** campaign master seed *)
  oracle : Oracle.config;
  shrink_attempts : int;  (** oracle-call budget per shrink (default 400) *)
  corpus_dir : string option;  (** where to persist repros; [None] = don't *)
  log : (string -> unit) option;  (** progress sink (e.g. [prerr_endline]) *)
}

val default : config

type failure_report = {
  original : Instance.t;
  shrunk : Instance.t;
  failures : Oracle.failure list;  (** of the shrunk instance *)
  shrink_steps : int;
  repro : string option;  (** corpus basename, when persisted *)
}

type summary = { ran : int; failed : failure_report list }

val pp_summary : Format.formatter -> summary -> unit

(** [run config] executes the campaign. *)
val run : config -> summary

(** [replay ~dir base] re-checks one corpus repro with the default oracle
    configuration; [[]] means the underlying bug is fixed (the repro now
    passes). *)
val replay : dir:string -> string -> Oracle.failure list
