(** Differential oracle for the rank-regret query family
    ({!Kregret_rrr.Rrr}).

    For one seeded {!Instance} it builds the rank-regret engine and
    cross-checks it against independent brute-force evaluators:

    - [rrr-structure] — the candidate pool matches an independent naive
      skyline (rank-complete, unlike the happy funnel — see
      {!Kregret_rrr.Rrr.build}), the greedy order is a
      distinct in-range subset of the candidates, every certified
      interval satisfies [1 <= lo <= hi <= n] with [exact <=> lo = hi]
      (and [exact] always at [d <= 2]), [query] returns the greedy
      prefix with its stored bound, and [size_for] is the first prefix
      meeting its target.
    - [rrr-monotone] — the certified [lo] is non-increasing along greedy
      prefixes (an exact integer theorem; [hi] is {e not} monotone — the
      dual-polytope scan can loosen as the polytope gains facets).
    - [rrr-whole] — the whole skyline has max rank [lo = 1] (every
      preference's maximum score is attained on the skyline), and
      exactly 1 at [d <= 2]. The happy set is deliberately {e not}
      asserted rank 1: its eps-tolerant subjugation filter may drop a
      hull vertex that then wins a sliver of directions outright.
    - [rrr-2d] — at [d = 2] an independent arrangement evaluator (cell
      classification against the sorted crossing parameters — no sweep,
      no event batching) reproduces the engine's max rank {e exactly}
      on every checked prefix, and the reported witness direction
      attains the reported rank under tie-tolerant dot evaluation.
    - [rrr-witness] — at [d >= 3] the witness direction's rank,
      recomputed independently with {!Kregret_geom.Vector.dot}
      (bit-identical to the flat kernel's fold), equals [lo] exactly.
    - [rrr-net] — at [d >= 3] every net direction's independently
      recomputed rank is [<= lo] and the maximum attains [lo] (so [lo]
      really is the best realized rank on the net).
    - [rrr-sample] — 32 random directions never exhibit a (tie-tolerant)
      rank above [hi]: the dual-polytope upper bound holds off the net.
    - [rrr-jobs] — order, every certified interval and every witness are
      bit-identical at jobs 1, [jobs_hi], and an oversubscribed width
      past [Domain.recommended_domain_count ()].
    - [rrr-shards] — {!Kregret_serve.Shard.rank_regret} at shards
      {1, 2, 4} answers bit-identically to the monolithic engine (the
      shard-merged skyline candidates are the monolithic ones).
    - [rrr-serve] — a live server's [rank_regret] verb answers over the
      wire with the offline engine's exact bits.

    All dot-evaluated tie comparisons go through {!Tolerance.tie}; rank
    and witness comparisons are exact. *)

(** [check inst] — [(check-name, message)] per failed assertion; [[]]
    when the tier holds. Manages its own pool widths (callers must not
    wrap it in a parallel region). *)
val check : ?jobs_hi:int -> Instance.t -> (string * string) list
