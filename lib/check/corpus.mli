(** On-disk repro corpus.

    Every shrunk failing instance is persisted as a pair of files in the
    corpus directory (conventionally [test/corpus/]):

    - [<base>.csv] — the candidate points, in the normal {!Csv_io} dataset
      format (loadable by the CLI: [kregret validate <base>.csv]);
    - [<base>.json] — flat metadata: campaign seed, stream id,
      distribution, degeneracies, [n]/[d]/[k], the violated check names and
      messages, and the shrink-step count.

    [<base>] is [repro-s<seed>-i<id>], so re-running a deterministic
    campaign overwrites its own repros instead of accumulating duplicates.
    Every corpus pair is replayed as a tier-1 regression test
    ([test/test_corpus.ml]). *)

(** [save ~dir ~instance ~failures ~shrink_steps] writes the pair and
    returns the basename. Creates [dir] if missing. *)
val save :
  dir:string ->
  instance:Instance.t ->
  failures:Oracle.failure list ->
  shrink_steps:int ->
  string

(** [load ~dir base] reconstructs the instance from [<base>.csv] +
    [<base>.json]. Raises [Failure] on malformed files. *)
val load : dir:string -> string -> Instance.t

(** [failing_checks ~dir base] — the check names recorded in the metadata
    (what the repro originally violated). *)
val failing_checks : dir:string -> string -> string list

(** [list ~dir] — basenames that have both files, sorted. Missing or empty
    directories give []. *)
val list : dir:string -> string list
