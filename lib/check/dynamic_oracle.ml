module Rng = Kregret_dataset.Rng
module Vector = Kregret_geom.Vector
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Dynamic = Kregret.Dynamic
module Pool = Kregret_parallel.Pool

(* An update trace is data, not closures, so the shrinker can ddmin it and
   a failure report can print it. Delete targets come in two flavors:
   [Del_id] names an external id outright (often a miss — the no-op path
   must answer [false] and change nothing), while [Del_selected]/
   [Del_answer] resolve against the answer the structure is currently
   giving, which steers deletions into the stored list's prefix — the
   repair-heavy region — on any sub-trace the shrinker tries. *)
type op =
  | Ins of float array
  | Del_id of int
  | Del_selected of int  (* i-th id of the current full answer, mod length *)
  | Del_answer  (* delete every currently selected id, in answer order *)
  | Query of int
  | Mrr of int
  | Flush

let pp_vec v =
  "(" ^ String.concat " " (List.map (Printf.sprintf "%.17g") (Array.to_list v)) ^ ")"

let pp_op = function
  | Ins v -> "ins" ^ pp_vec v
  | Del_id id -> Printf.sprintf "del#%d" id
  | Del_selected i -> Printf.sprintf "del-sel[%d]" i
  | Del_answer -> "del-answer"
  | Query k -> Printf.sprintf "query k=%d" k
  | Mrr k -> Printf.sprintf "mrr k=%d" k
  | Flush -> "flush"

let pp_trace ops = String.concat "; " (List.map pp_op ops)

(* ---- trace generation -----------------------------------------------------

   A pure function of the instance (seed, id), like every other oracle
   input. Inserted points are biased toward trouble: exact copies of
   dataset points (duplicate inserts), dominated and dominating
   perturbations, and lattice snaps that manufacture ties. *)

let clamp01 x = Float.max 1e-6 (Float.min 1. x)

let gen_point rng inst =
  let d = Instance.d inst in
  let points = inst.Instance.points in
  let n = Array.length points in
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 ->
      Array.init d (fun _ -> clamp01 (Rng.float rng))
  | 4 | 5 ->
      (* exact duplicate of a dataset point: must be a no-op insert *)
      Array.map clamp01 points.(Rng.int rng n)
  | 6 ->
      (* dominated perturbation: one coordinate pushed down *)
      let p = Array.map clamp01 points.(Rng.int rng n) in
      p.(Rng.int rng d) <- clamp01 (p.(Rng.int rng d) *. 0.5);
      p
  | 7 ->
      (* dominating perturbation: every coordinate pushed up a little *)
      Array.map (fun x -> clamp01 (x *. 1.25)) points.(Rng.int rng n)
  | _ ->
      let g = [| 4.; 8.; 16. |].(Rng.int rng 3) in
      Array.init d (fun _ ->
          clamp01 (Float.round (Rng.float rng *. g) /. g))

let gen_ops rng inst =
  let n = Instance.n inst in
  let n_ops = 12 + Rng.int rng 19 in
  let k_hi = max 1 (min 16 (n + 4)) in
  List.init n_ops (fun _ ->
      match Rng.int rng 20 with
      | 0 | 1 | 2 | 3 | 4 | 5 -> Ins (gen_point rng inst)
      | 6 | 7 | 8 -> Del_id (Rng.int rng (n + n_ops))
      | 9 | 10 | 11 -> Del_selected (Rng.int rng 8)
      | 12 -> Del_answer
      | 13 | 14 | 15 -> Query (1 + Rng.int rng k_hi)
      | 16 | 17 -> Mrr (1 + Rng.int rng k_hi)
      | _ -> Flush)

(* ---- the rebuild-from-scratch pipeline ------------------------------------

   The ground truth: run the whole static pipeline on the live points. The
   skyline step is [naive] — the same first-by-input-order duplicate rule
   [Dynamic] maintains incrementally (sfs would keep a score-sort-order
   representative of a duplicated maximal point). *)

type expected = {
  x_ids : int array; (* stored order as external ids *)
  x_mrr : float array; (* per-prefix regret *)
  x_sky : int;
  x_happy : int;
}

let expected_of_live live =
  if Array.length live = 0 then
    { x_ids = [||]; x_mrr = [||]; x_sky = 0; x_happy = 0 }
  else begin
    let vecs = Array.map snd live in
    let sky_idx = Skyline.naive vecs in
    let sky = Array.map (fun i -> vecs.(i)) sky_idx in
    let happy_idx = Happy.happy_points sky in
    if Array.length happy_idx = 0 then
      (* every sky point strictly inside the unit simplex: mutual
         subjugation empties the screen (deletes removed all boundary
         points). [Dynamic] materializes nothing in this state. *)
      {
        x_ids = [||];
        x_mrr = [||];
        x_sky = Array.length sky_idx;
        x_happy = 0;
      }
    else begin
      let happy = Array.map (fun i -> sky.(i)) happy_idx in
      let stored = Stored_list.preprocess happy in
      let len = Stored_list.length stored in
      {
        x_ids =
          Array.of_list
            (List.map
               (fun e -> fst live.(sky_idx.(happy_idx.(e))))
               (Stored_list.order stored));
        x_mrr = Array.init len (fun i -> Stored_list.mrr_at stored ~k:(i + 1));
        x_sky = Array.length sky_idx;
        x_happy = Array.length happy_idx;
      }
    end
  end

(* ---- trace execution ------------------------------------------------------ *)

let pp_ids ids =
  String.concat "," (List.map string_of_int (Array.to_list ids))

let full_answer dyn =
  let len = Dynamic.stored_length dyn in
  if len = 0 then ([||], [||])
  else
    let ids, _ = Dynamic.query dyn ~k:len in
    ( Array.of_list ids,
      Array.init len (fun i -> Dynamic.mrr_at dyn ~k:(i + 1)) )

let float_bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
    a;
  !ok

(* one digest per op — compared bit-for-bit across pool widths *)
type digest = { g_ids : int array; g_mrr : float array; g_live : int; g_epoch : int }

let run_trace inst ops =
  let failures = ref [] in
  let fail i fmt =
    Printf.ksprintf
      (fun m -> failures := Printf.sprintf "op %d (%s): %s" i (pp_op (List.nth ops i)) m :: !failures)
      fmt
  in
  let dyn = Dynamic.create inst.Instance.points in
  (* the mirror: live (id, point) pairs in insertion order *)
  let mirror = ref (Array.to_list (Array.mapi (fun i p -> (i, p)) inst.Instance.points)) in
  let digests = ref [] in
  let compare_full i =
    let live = Array.of_list !mirror in
    let e = expected_of_live live in
    let got_ids, got_mrr = full_answer dyn in
    if got_ids <> e.x_ids then
      fail i "stored ids [%s], rebuild says [%s]" (pp_ids got_ids) (pp_ids e.x_ids);
    if not (float_bits_equal got_mrr e.x_mrr) then begin
      let j = ref 0 in
      let lim = min (Array.length got_mrr) (Array.length e.x_mrr) in
      while !j < lim
            && Int64.bits_of_float got_mrr.(!j) = Int64.bits_of_float e.x_mrr.(!j)
      do
        incr j
      done;
      if !j < lim then
        fail i "mrr at k=%d is %.17g, rebuild says %.17g" (!j + 1) got_mrr.(!j)
          e.x_mrr.(!j)
      else
        fail i "mrr table has %d entries, rebuild has %d" (Array.length got_mrr)
          (Array.length e.x_mrr)
    end;
    if Dynamic.sky_size dyn <> e.x_sky then
      fail i "skyline size %d, rebuild says %d" (Dynamic.sky_size dyn) e.x_sky;
    if Dynamic.happy_size dyn <> e.x_happy then
      fail i "happy size %d, rebuild says %d" (Dynamic.happy_size dyn) e.x_happy;
    if Dynamic.live dyn <> Array.length live then
      fail i "live count %d, mirror says %d" (Dynamic.live dyn) (Array.length live)
  in
  let delete_one i id =
    let was_live = List.mem_assoc id !mirror in
    let ok = Dynamic.delete dyn id in
    if ok <> was_live then
      fail i "delete #%d answered %b, mirror says %b" id ok was_live;
    if was_live then mirror := List.remove_assoc id !mirror
  in
  List.iteri
    (fun i op ->
      (match op with
      | Ins v ->
          let id = Dynamic.insert dyn v in
          mirror := !mirror @ [ (id, v) ]
      | Del_id id -> delete_one i id
      | Del_selected j ->
          let ids, _ = full_answer dyn in
          let m = Array.length ids in
          if m > 0 then delete_one i ids.(j mod m)
      | Del_answer ->
          let ids, _ = full_answer dyn in
          Array.iter (fun id -> delete_one i id) ids
      | Query k ->
          let sel, mrr = Dynamic.query dyn ~k in
          let live = Array.of_list !mirror in
          let e = expected_of_live live in
          let len = Array.length e.x_ids in
          let want_sel =
            Array.to_list (Array.sub e.x_ids 0 (min k len))
          in
          let want_mrr = if len = 0 then 0. else e.x_mrr.(min k len - 1) in
          if sel <> want_sel then
            fail i "selection [%s], rebuild says [%s]"
              (String.concat "," (List.map string_of_int sel))
              (String.concat "," (List.map string_of_int want_sel));
          if Int64.bits_of_float mrr <> Int64.bits_of_float want_mrr then
            fail i "mrr %.17g, rebuild says %.17g" mrr want_mrr
      | Mrr k ->
          let mrr = Dynamic.mrr_at dyn ~k in
          let e = expected_of_live (Array.of_list !mirror) in
          let len = Array.length e.x_ids in
          let want = if len = 0 then 0. else e.x_mrr.(min k len - 1) in
          if Int64.bits_of_float mrr <> Int64.bits_of_float want then
            fail i "mrr %.17g, rebuild says %.17g" mrr want
      | Flush ->
          let before = Dynamic.tombstones dyn in
          let reclaimed = Dynamic.flush dyn in
          if reclaimed <> before then
            fail i "flush reclaimed %d of %d tombstones" reclaimed before);
      (* the rebuild cross-check after every mutation is the whole point of
         the oracle; cap it by live-set size so the occasional n=400
         instance stays affordable (queries and the final op always pay) *)
      let last = i = List.length ops - 1 in
      let mutating =
        match op with Query _ | Mrr _ -> false | _ -> true
      in
      if (mutating && (List.length !mirror <= 120 || last)) || ((not mutating) && last)
      then compare_full i;
      let g_ids, g_mrr = full_answer dyn in
      digests :=
        { g_ids; g_mrr; g_live = Dynamic.live dyn; g_epoch = Dynamic.epoch dyn }
        :: !digests)
    ops;
  (List.rev !failures, List.rev !digests)

(* ---- the check ------------------------------------------------------------ *)

let with_jobs jobs f =
  let before = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs before) f

let widths jobs_hi =
  if jobs_hi <= 1 then [ 1 ] else List.sort_uniq compare [ 1; 2; 4; jobs_hi ]

let run_all ~jobs_hi inst ops =
  let runs =
    List.map (fun w -> (w, with_jobs w (fun () -> run_trace inst ops)))
      (widths jobs_hi)
  in
  let failures =
    List.concat_map
      (fun (w, (fs, _)) ->
        List.map (fun m -> Printf.sprintf "jobs=%d: %s" w m) fs)
      runs
  in
  let cross =
    match runs with
    | [] | [ _ ] -> []
    | (_, (_, base)) :: rest ->
        List.concat_map
          (fun (w, (_, digests)) ->
            if
              List.length digests = List.length base
              && List.for_all2
                   (fun a b ->
                     a.g_ids = b.g_ids
                     && float_bits_equal a.g_mrr b.g_mrr
                     && a.g_live = b.g_live
                     && a.g_epoch = b.g_epoch)
                   digests base
            then []
            else
              [
                Printf.sprintf
                  "answer stream differs between jobs=1 and jobs=%d" w;
              ])
          rest
  in
  failures @ cross

let check ?(jobs_hi = 2) inst =
  let rng =
    Rng.create ((inst.Instance.seed * 9_176_941) + inst.Instance.id + 1)
  in
  let ops = gen_ops rng inst in
  match run_all ~jobs_hi inst ops with
  | [] -> []
  | failures ->
      (* minimize the trace before reporting: the shrunk op list is what a
         human debugs (the fuzzer separately shrinks the instance itself) *)
      let fails sub = sub <> [] && run_all ~jobs_hi inst sub <> [] in
      let minimal = Shrink.trace ~max_attempts:64 ~fails ops in
      let head =
        Printf.sprintf "minimal failing trace (%d of %d ops): %s"
          (List.length minimal) (List.length ops) (pp_trace minimal)
      in
      List.map (fun m -> ("dynamic", m)) (head :: failures)
