(** The single source of truth for the numerical tolerances of every
    differential check in the repository.

    Two independent evaluators of the same regret quantity (geometric dual
    vs LP, GeoGreedy vs Greedy, StoredList prefix vs fresh run) agree only
    up to floating-point ties; [tie] is the one tolerance under which they
    are considered equal. The fuzzer ({!Fuzzer}), the end-to-end validator
    ({!Kregret.Validation} via its [?eps] default), and the test suites
    ([test/testutil.ml]) all compare through this constant — do not
    introduce per-call-site epsilon literals for mrr/cr agreement. *)

(** Tie tolerance for agreement between independent evaluators of the same
    regret quantity (mrr, cr). Mirrors DESIGN.md §8's [1e-6]. *)
val tie : float

(** Geometric slack used for strict-inequality side tests on normalized
    data (DESIGN.md §8's [1e-9]). *)
val geom : float

(** [approx_eq a b] — agreement within {!tie}. *)
val approx_eq : float -> float -> bool

(** [leq a b] — [a <= b] up to {!tie} (for bound checks). *)
val leq : float -> float -> bool
