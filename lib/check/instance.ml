module Vector = Kregret_geom.Vector
module Rng = Kregret_dataset.Rng
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator

type t = {
  id : int;
  seed : int;
  dist : string;
  degeneracies : string list;
  k : int;
  points : Vector.t array;
}

let n t = Array.length t.points
let d t = Vector.dim t.points.(0)

let normalize_points ~name points =
  (Dataset.normalize (Dataset.create ~name points)).Dataset.points

(* ---- degenerate transforms ----------------------------------------------

   Each transform mutates a copy of the point array in place; the caller
   re-normalizes afterwards. They deliberately manufacture the situations
   where floating-point geometry codes break: exact duplicates, many-way
   coordinate ties, collinear chains, points snapped to a coarse lattice. *)

let floor_pos x = Float.max 1e-6 x

let apply_duplicates r pts =
  let n = Array.length pts in
  if n >= 2 then
    for _ = 1 to 1 + (n / 8) do
      let src = Rng.int r n and dst = Rng.int r n in
      pts.(dst) <- Array.copy pts.(src)
    done

let apply_snap r pts =
  let g = [| 4.; 8.; 16. |].(Rng.int r 3) in
  Array.iteri
    (fun i p ->
      pts.(i) <- Array.map (fun x -> floor_pos (Float.round (x *. g) /. g)) p)
    pts

let apply_collinear r pts =
  let n = Array.length pts in
  if n >= 3 then begin
    let a = pts.(Rng.int r n) and b = pts.(Rng.int r n) in
    for _ = 1 to 1 + (n / 6) do
      (* grid lambdas produce repeated points on the segment as well *)
      let lambda = float_of_int (Rng.int r 5) /. 4. in
      pts.(Rng.int r n) <-
        Array.map2
          (fun x y -> floor_pos ((lambda *. x) +. ((1. -. lambda) *. y)))
          a b
    done
  end

let apply_axis_ties r pts =
  let n = Array.length pts in
  let d = Vector.dim pts.(0) in
  let dim = Rng.int r d in
  let v = pts.(Rng.int r n).(dim) in
  for j = 0 to n - 1 do
    if Rng.float r < 0.4 then begin
      let p = Array.copy pts.(j) in
      p.(dim) <- v;
      pts.(j) <- p
    end
  done

let transforms =
  [
    ("duplicates", apply_duplicates);
    ("snap", apply_snap);
    ("collinear", apply_collinear);
    ("axis_ties", apply_axis_ties);
  ]

(* ---- generation ---------------------------------------------------------- *)

let dists = [| "independent"; "correlated"; "anti_correlated" |]

let generate ~seed ~id master =
  let r = Rng.split master in
  let d = [| 2; 2; 3; 3; 4; 5; 6; 7 |].(Rng.int r 8) in
  (* biased toward small instances: tiny sets shake out degenerate-geometry
     bugs fastest and shrink quickly; the occasional large draw covers the
     paper-scale regime (n up to 400) *)
  let cap = [| 8; 25; 60; 400 |].(Rng.int r 4) in
  let n = 1 + Rng.int r cap in
  let k = 1 + Rng.int r 10 in
  let dist = dists.(Rng.int r (Array.length dists)) in
  let ds = Generator.by_name dist r ~n ~d in
  let pts = Array.map Array.copy ds.Dataset.points in
  let degeneracies =
    List.filter_map
      (fun (name, apply) ->
        if Rng.float r < 0.3 then begin
          apply r pts;
          Some name
        end
        else None)
      transforms
  in
  let points = normalize_points ~name:(Printf.sprintf "fuzz-%d" id) pts in
  { id; seed; dist; degeneracies; k; points }

let rng t = Rng.create ((t.seed * 1_000_003) + t.id)

let to_dataset t =
  Dataset.create ~name:(Printf.sprintf "fuzz-%d" t.id) t.points

let with_points t points =
  {
    t with
    points = normalize_points ~name:(Printf.sprintf "fuzz-%d" t.id) points;
  }

let with_k t k =
  if k < 1 then invalid_arg "Instance.with_k: k must be positive";
  { t with k }

let drop_dim t i =
  let dd = d t in
  if dd <= 2 then invalid_arg "Instance.drop_dim: already at d = 2";
  if i < 0 || i >= dd then invalid_arg "Instance.drop_dim: bad dimension";
  let points =
    Array.map
      (fun p -> Array.init (dd - 1) (fun j -> if j < i then p.(j) else p.(j + 1)))
      t.points
  in
  with_points t points

let describe t =
  Printf.sprintf "instance %d (seed %d): %s n=%d d=%d k=%d%s" t.id t.seed
    t.dist (n t) (d t) t.k
    (match t.degeneracies with
    | [] -> ""
    | l -> " degeneracies=" ^ String.concat "+" l)

let pp ppf t = Format.pp_print_string ppf (describe t)
