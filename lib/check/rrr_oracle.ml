module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Kernel = Kregret_approx.Kernel
module Pool = Kregret_parallel.Pool
module Skyline = Kregret_skyline.Skyline
module Mrr = Kregret.Mrr
module Rrr = Kregret_rrr.Rrr
module Shard = Kregret_serve.Shard
module Csv_io = Kregret_dataset.Csv_io
module Serve = Kregret_serve

let tol = Tolerance.tie

let with_jobs jobs f =
  let before = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs before) f

let pp_ids ids = String.concat "," (List.map string_of_int (Array.to_list ids))
let pp_order order = String.concat "," (List.map string_of_int order)

(* Rebuild the engine's direction net independently: the largest grid
   resolution whose net fits the default budget, never below the
   eps = 1 minimum, thinned to the budget by the engine's stride rule —
   materialized as plain row vectors. *)
let net_of ~d =
  let budget = Rrr.default_budget in
  let b = float_of_int budget in
  let m = ref (Kernel.resolution_for ~d ~eps:1.0) in
  while Kernel.net_size ~d ~resolution:(!m + 1) <= b do
    incr m
  done;
  let eps = float_of_int (d - 1) /. (2. *. float_of_int !m) in
  let nt = Kernel.net ~d ~eps () in
  let nd = Flat.rows nt.Kernel.dirs in
  let stride = if nd <= budget then 1 else ((nd + budget) - 1) / budget in
  let rows = ref [] in
  let j = ref 0 in
  while !j < nd do
    rows := Flat.row nt.Kernel.dirs !j :: !rows;
    j := !j + stride
  done;
  (!m, Array.of_list (List.rev !rows))

(* ---- independent rank evaluators ----------------------------------------- *)

(* Direct dot-evaluated rank of [set] under [w] with a tie margin:
   1 + #{q : w.q > member-max + margin}. [Vector.dot] folds coordinates
   in the same order as the flat kernel's [Flat.dot], so at margin 0
   this is bit-identical to the engine's [rank_under]. *)
let rank_margin ~points ~set ~margin w =
  let best = ref (Vector.dot points.(set.(0)) w) in
  for j = 1 to Array.length set - 1 do
    let v = Vector.dot points.(set.(j)) w in
    if not (!best >= v) then best := v
  done;
  let thr = !best +. margin in
  let beaten = ref 0 in
  Array.iter (fun p -> if Vector.dot p w > thr then incr beaten) points;
  1 + !beaten

(* At d = 2 a (point, member) pair's beat predicate over w = (t, 1-t) is
   either constant on (0, 1) or flips once at its crossing parameter.
   The classification mirrors the engine's float-edge rules with the
   same crossing formula (same floats), but nothing else is shared: the
   evaluation below re-counts every cell of the arrangement from the
   classifications, where the engine sweeps batched events over running
   counters. *)
type pair2 =
  | Constant of bool
  | Flip of float * bool  (* crossing parameter, pre-crossing state *)

let classify_2d ~points ~set =
  let n = Array.length points in
  let m = Array.length set in
  Array.init (n * m) (fun p ->
      let q = points.(p / m) and s = points.(set.(p mod m)) in
      let a = q.(0) -. s.(0) and b = q.(1) -. s.(1) in
      let beat0 = b > 0. || (b = 0. && a > 0.) in
      if (a > 0. && b < 0.) || (a < 0. && b > 0.) then begin
        let ts = b /. (b -. a) in
        if ts <= 0. then Constant (not beat0)
        else if ts >= 1. then Constant beat0
        else Flip (ts, beat0)
      end
      else Constant beat0)

(* Exact max rank by brute force: every crossing parameter is a cut;
   between consecutive cuts every pair state is constant, classified by
   which side of the cell its crossing lies on (an exact float
   comparison — no representative point inside the cell is ever
   evaluated, so ULP-wide cells are handled exactly). *)
let arrangement_max_2d ~points ~set =
  let n = Array.length points in
  let m = Array.length set in
  let pairs = classify_2d ~points ~set in
  let cuts =
    Array.fold_left
      (fun acc p -> match p with Constant _ -> acc | Flip (ts, _) -> ts :: acc)
      [ 0.; 1. ] pairs
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let best = ref 0 in
  for c = 0 to Array.length cuts - 2 do
    let th = cuts.(c + 1) in
    let full = ref 0 in
    for i = 0 to n - 1 do
      let all = ref true in
      let j = ref 0 in
      while !all && !j < m do
        (match pairs.((i * m) + !j) with
        | Constant b -> if not b then all := false
        | Flip (ts, pre) ->
            let b = if ts >= th then pre else not pre in
            if not b then all := false);
        incr j
      done;
      if !all then incr full
    done;
    if 1 + !full > !best then best := 1 + !full
  done;
  !best

(* ---- the oracle ----------------------------------------------------------- *)

let check ?(jobs_hi = 2) inst =
  let points = inst.Instance.points in
  let n = Array.length points in
  let d = Instance.d inst in
  let k = inst.Instance.k in
  let failures = ref [] in
  let record check msgs =
    failures := !failures @ List.map (fun m -> (check, m)) msgs
  in
  (* enough greedy depth to make the monotonicity and prefix checks
     meaningful without paying a full-candidate build on every instance *)
  let cap = max k 6 in
  let eng = with_jobs 1 (fun () -> Rrr.build ~max_size:cap points) in
  let order = Rrr.order eng in
  let bounds = Rrr.bounds eng in
  let size = Rrr.size eng in
  let cands = Rrr.cand_ids eng in

  (* rrr-structure *)
  begin
    let sky_ref = with_jobs 1 (fun () -> Skyline.naive points) in
    if Rrr.sky_ids eng <> sky_ref then
      record "rrr-structure"
        [
          Printf.sprintf "engine skyline [%s], independent naive [%s]"
            (pp_ids (Rrr.sky_ids eng)) (pp_ids sky_ref);
        ];
    (* the default candidate pool IS the skyline (rank-complete; the
       happy funnel is not) *)
    if cands <> sky_ref then
      record "rrr-structure"
        [
          Printf.sprintf "engine candidates [%s], independent skyline [%s]"
            (pp_ids cands) (pp_ids sky_ref);
        ];
    if size <> Array.length bounds then
      record "rrr-structure"
        [
          Printf.sprintf "%d selected rows but %d certified bounds" size
            (Array.length bounds);
        ];
    if size > min cap (Array.length cands) || size < 1 then
      record "rrr-structure"
        [
          Printf.sprintf "selected %d rows from %d candidates at max_size %d"
            size (Array.length cands) cap;
        ];
    let in_cands = Hashtbl.create (Array.length cands) in
    Array.iter (fun id -> Hashtbl.replace in_cands id ()) cands;
    let seen = Hashtbl.create size in
    Array.iter
      (fun id ->
        if not (Hashtbl.mem in_cands id) then
          record "rrr-structure"
            [ Printf.sprintf "selected row %d is not a candidate" id ];
        if Hashtbl.mem seen id then
          record "rrr-structure"
            [ Printf.sprintf "row %d selected twice: [%s]" id (pp_ids order) ];
        Hashtbl.replace seen id ())
      order;
    Array.iteri
      (fun i (b : Rrr.rank) ->
        if b.Rrr.lo < 1 || b.Rrr.lo > b.Rrr.hi || b.Rrr.hi > n then
          record "rrr-structure"
            [
              Printf.sprintf "prefix %d: interval [%d, %d] outside [1, %d]"
                (i + 1) b.Rrr.lo b.Rrr.hi n;
            ];
        if b.Rrr.exact <> (b.Rrr.lo = b.Rrr.hi) then
          record "rrr-structure"
            [
              Printf.sprintf "prefix %d: exact=%b but interval is [%d, %d]"
                (i + 1) b.Rrr.exact b.Rrr.lo b.Rrr.hi;
            ];
        if d <= 2 && not b.Rrr.exact then
          record "rrr-structure"
            [ Printf.sprintf "prefix %d: inexact interval at d = %d" (i + 1) d ])
      bounds;
    List.iter
      (fun k' ->
        let sel, r = Rrr.query eng ~k:k' in
        let take = min k' size in
        let want = Array.to_list (Array.sub order 0 take) in
        if sel <> want then
          record "rrr-structure"
            [
              Printf.sprintf "query k=%d returned [%s], greedy prefix is [%s]"
                k' (pp_order sel) (pp_order want);
            ];
        if r <> bounds.(take - 1) then
          record "rrr-structure"
            [
              Printf.sprintf
                "query k=%d bound [%d, %d] differs from stored prefix bound \
                 [%d, %d]"
                k' r.Rrr.lo r.Rrr.hi bounds.(take - 1).Rrr.lo
                bounds.(take - 1).Rrr.hi;
            ])
      (List.sort_uniq compare [ 1; k ]);
    (match Rrr.size_for eng ~target:bounds.(size - 1).Rrr.hi with
    | None ->
        record "rrr-structure"
          [
            Printf.sprintf "size_for rejects the achieved target %d"
              bounds.(size - 1).Rrr.hi;
          ]
    | Some s ->
        if
          bounds.(s - 1).Rrr.hi > bounds.(size - 1).Rrr.hi
          || (s > 1 && bounds.(s - 2).Rrr.hi <= bounds.(size - 1).Rrr.hi)
        then
          record "rrr-structure"
            [ Printf.sprintf "size_for returned %d, not the first prefix" s ]);
    if Rrr.size_for eng ~target:0 <> None then
      record "rrr-structure" [ "size_for found a prefix with hi <= 0" ]
  end;

  (* rrr-monotone: lo only — hi can loosen as the dual polytope gains
     facets, and does in practice *)
  for i = 1 to size - 1 do
    if bounds.(i).Rrr.lo > bounds.(i - 1).Rrr.lo then
      record "rrr-monotone"
        [
          Printf.sprintf "lo rose from %d to %d at prefix %d"
            bounds.(i - 1).Rrr.lo bounds.(i).Rrr.lo (i + 1);
        ]
  done;

  (* rrr-whole: every preference's maximum score is attained on the
     skyline (any maximizer's dominator scores at least as much under
     w >= 0), so nothing strictly outranks the whole skyline anywhere —
     an exact theorem, unlike the happy set, whose eps-tolerant
     subjugation filter may drop a hull vertex that then gets beaten by
     a sliver. Skipped at d >= 3 for large skylines (the dual polytope
     of hundreds of halfspaces is the one genuinely expensive object in
     this tier). *)
  let sky_all = with_jobs 1 (fun () -> Skyline.naive points) in
  if d <= 2 || Array.length sky_all <= 24 then begin
    let r = with_jobs 1 (fun () -> Rrr.max_rank ~points sky_all) in
    if r.Rrr.lo <> 1 then
      record "rrr-whole"
        [
          Printf.sprintf "whole skyline has realized rank %d, expected 1"
            r.Rrr.lo;
        ];
    if d <= 2 && r.Rrr.hi <> 1 then
      record "rrr-whole"
        [ Printf.sprintf "whole skyline certified hi %d at d <= 2" r.Rrr.hi ]
  end;

  (* rrr-2d: independent arrangement agreement, prefix by prefix until
     the per-instance brute-force budget runs out (small instances are
     covered in full; n = 400 covers the first several prefixes) *)
  if d = 2 then begin
    let budget = ref 30_000_000 in
    (try
       Array.iteri
         (fun i (b : Rrr.rank) ->
           let m = i + 1 in
           let cost = n * m * n * m in
           if cost > !budget then raise Exit;
           budget := !budget - cost;
           let set = Array.sub order 0 m in
           let brute = arrangement_max_2d ~points ~set in
           if brute <> b.Rrr.lo then
             record "rrr-2d"
               [
                 Printf.sprintf
                   "prefix %d: engine sweep says %d, cell-by-cell \
                    arrangement says %d"
                   m b.Rrr.lo brute;
               ];
           (* the witness attains the reported rank up to dot-rounding
              of ties: strict and loose tie margins sandwich it *)
           let strict = rank_margin ~points ~set ~margin:tol b.Rrr.witness in
           let loose =
             rank_margin ~points ~set ~margin:(-.tol) b.Rrr.witness
           in
           if strict > b.Rrr.lo || loose < b.Rrr.lo then
             record "rrr-2d"
               [
                 Printf.sprintf
                   "prefix %d: witness (%.17g, %.17g) evaluates to rank \
                    [%d, %d], engine certified %d"
                   m b.Rrr.witness.(0) b.Rrr.witness.(1) strict loose b.Rrr.lo;
               ])
         bounds
     with Exit -> ())
  end;

  (* rrr-witness / rrr-net: at d >= 3 the witness and the whole net are
     re-evaluated with Vector.dot — bit-identical folds, so equality is
     exact, not tolerant *)
  if d >= 3 then begin
    Array.iteri
      (fun i (b : Rrr.rank) ->
        let set = Array.sub order 0 (i + 1) in
        let r = rank_margin ~points ~set ~margin:0. b.Rrr.witness in
        if r <> b.Rrr.lo then
          record "rrr-witness"
            [
              Printf.sprintf
                "prefix %d: witness direction re-evaluates to rank %d, \
                 engine certified lo %d"
                (i + 1) r b.Rrr.lo;
            ])
      bounds;
    let final = bounds.(size - 1) in
    let set = order in
    let m_ref, nets = net_of ~d in
    if m_ref <> Rrr.resolution eng || Array.length nets <> Rrr.directions eng
    then
      record "rrr-net"
        [
          Printf.sprintf
            "independent net has %d directions at resolution %d, engine \
             reports %d at %d"
            (Array.length nets) m_ref (Rrr.directions eng)
            (Rrr.resolution eng);
        ];
    let worst = ref 0 in
    Array.iteri
      (fun j w ->
        let r = rank_margin ~points ~set ~margin:0. w in
        if r > final.Rrr.lo then
          record "rrr-net"
            [
              Printf.sprintf
                "net direction %d realizes rank %d above the certified lo %d"
                j r final.Rrr.lo;
            ];
        if r > !worst then worst := r)
      nets;
    if !worst <> final.Rrr.lo then
      record "rrr-net"
        [
          Printf.sprintf "best net rank %d, engine certified lo %d" !worst
            final.Rrr.lo;
        ]
  end;

  (* rrr-sample: the dual-polytope bound holds off the net too *)
  begin
    let final = bounds.(size - 1) in
    let rng = Instance.rng inst in
    for _ = 1 to 32 do
      let w = Mrr.random_direction rng d in
      let r = rank_margin ~points ~set:order ~margin:tol w in
      if r > final.Rrr.hi then
        record "rrr-sample"
          [
            Printf.sprintf
              "sampled direction realizes rank %d above the certified hi %d" r
              final.Rrr.hi;
          ]
    done
  end;

  (* rrr-jobs: the whole trajectory is bit-identical across pool widths,
     including an oversubscribed width past the recommended-domain cap *)
  if jobs_hi > 1 then begin
    let same_rank (a : Rrr.rank) (b : Rrr.rank) =
      a.Rrr.lo = b.Rrr.lo && a.Rrr.hi = b.Rrr.hi && a.Rrr.exact = b.Rrr.exact
      && Array.length a.Rrr.witness = Array.length b.Rrr.witness
      && Array.for_all2
           (fun x y ->
             Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
           a.Rrr.witness b.Rrr.witness
    in
    List.iter
      (fun (jobs, label) ->
        let eng2 = with_jobs jobs (fun () -> Rrr.build ~max_size:cap points) in
        if Rrr.order eng2 <> order then
          record "rrr-jobs"
            [
              Printf.sprintf
                "greedy order differs between jobs=1 and jobs=%d (%s)" jobs
                label;
            ]
        else begin
          let bounds2 = Rrr.bounds eng2 in
          Array.iteri
            (fun i b ->
              if not (same_rank b bounds2.(i)) then
                record "rrr-jobs"
                  [
                    Printf.sprintf
                      "prefix %d bound differs between jobs=1 and jobs=%d (%s)"
                      (i + 1) jobs label;
                  ])
            bounds
        end)
      [ (jobs_hi, "jobs_hi"); (Domain.recommended_domain_count () + 2, "capped") ]
  end;

  (* rrr-shards: the scatter-gather tier hands the engine the merged
     skyline candidates — answers must be the monolithic bits at every
     shard count *)
  let ks = List.sort_uniq compare [ 1; k ] in
  with_jobs 1 (fun () ->
      List.iter
        (fun shards ->
          let sh = Shard.create ~shards points in
          List.iter
            (fun k' ->
              let sel, r = Shard.rank_regret sh ~k:k' in
              let sel_ref, r_ref = Rrr.query eng ~k:k' in
              if sel <> sel_ref then
                record "rrr-shards"
                  [
                    Printf.sprintf "shards=%d k=%d: served [%s], offline [%s]"
                      shards k' (pp_order sel) (pp_order sel_ref);
                  ];
              if
                r.Rrr.lo <> r_ref.Rrr.lo || r.Rrr.hi <> r_ref.Rrr.hi
                || r.Rrr.exact <> r_ref.Rrr.exact
              then
                record "rrr-shards"
                  [
                    Printf.sprintf
                      "shards=%d k=%d: served bound [%d, %d], offline [%d, %d]"
                      shards k' r.Rrr.lo r.Rrr.hi r_ref.Rrr.lo r_ref.Rrr.hi;
                  ])
            ks)
        [ 1; 2; 4 ]);

  (* rrr-serve: the wire verb answers with the offline engine's bits *)
  with_jobs 1 (fun () ->
      let csv = Filename.temp_file "kregret_rrr_oracle" ".csv" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove csv with Sys_error _ -> ())
        (fun () ->
          Csv_io.save csv (Instance.to_dataset inst);
          let server =
            Serve.Server.start_exn
              (Serve.Server.config
                 ~socket_path:(Serve.Server.temp_socket_path ())
                 ())
          in
          Fun.protect
            ~finally:(fun () -> Serve.Server.stop server)
            (fun () ->
              let endpoint = List.hd (Serve.Server.endpoints server) in
              match Serve.Client.connect_to endpoint with
              | Error m -> record "rrr-serve" [ "connect: " ^ m ]
              | Ok c ->
                  Fun.protect
                    ~finally:(fun () -> Serve.Client.close c)
                    (fun () ->
                      let name = "rrr-oracle" in
                      match Serve.Client.load c ~name ~path:csv with
                      | Error m -> record "rrr-serve" [ "load: " ^ m ]
                      | Ok _ -> (
                          match Serve.Client.wait_ready c ~name with
                          | Error m ->
                              record "rrr-serve" [ "wait_ready: " ^ m ]
                          | Ok () ->
                              List.iter
                                (fun k' ->
                                  let sel_ref, r_ref = Rrr.query eng ~k:k' in
                                  match
                                    Serve.Client.rank_regret c ~name ~k:k'
                                  with
                                  | Error m ->
                                      record "rrr-serve"
                                        [
                                          Printf.sprintf "rank_regret k=%d: %s"
                                            k' m;
                                        ]
                                  | Ok (sel, lo, hi, exact) ->
                                      if sel <> sel_ref then
                                        record "rrr-serve"
                                          [
                                            Printf.sprintf
                                              "k=%d: wire selection [%s], \
                                               offline [%s]"
                                              k' (pp_order sel)
                                              (pp_order sel_ref);
                                          ];
                                      if
                                        lo <> r_ref.Rrr.lo
                                        || hi <> r_ref.Rrr.hi
                                        || exact <> r_ref.Rrr.exact
                                      then
                                        record "rrr-serve"
                                          [
                                            Printf.sprintf
                                              "k=%d: wire bound [%d, %d] \
                                               exact=%b, offline [%d, %d] \
                                               exact=%b"
                                              k' lo hi exact r_ref.Rrr.lo
                                              r_ref.Rrr.hi r_ref.Rrr.exact;
                                          ])
                                ks)))));
  !failures
