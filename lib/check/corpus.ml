module Csv_io = Kregret_dataset.Csv_io
module Dataset = Kregret_dataset.Dataset

let basename inst =
  Printf.sprintf "repro-s%d-i%d" inst.Instance.seed inst.Instance.id

(* ---- minimal flat JSON ---------------------------------------------------

   The metadata is a flat object of ints, strings and string arrays — we
   emit and re-read it with ~40 lines instead of a JSON dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    (if s.[!i] = '\\' && !i + 1 < len then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' when !i + 5 < len ->
           (try
              Buffer.add_char buf
                (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 2) 4)))
            with _ -> ());
           i := !i + 4
       | c -> Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

(* locate "key": in [s] and return the offset just past the colon *)
let find_key s key =
  let needle = Printf.sprintf "\"%s\"" key in
  let nlen = String.length needle in
  let len = String.length s in
  let rec scan i =
    if i + nlen > len then None
    else if String.sub s i nlen = needle then begin
      (* skip whitespace then ':' *)
      let j = ref (i + nlen) in
      while !j < len && (s.[!j] = ' ' || s.[!j] = '\n' || s.[!j] = '\t') do
        incr j
      done;
      if !j < len && s.[!j] = ':' then Some (!j + 1) else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

let skip_ws s i =
  let j = ref i in
  let len = String.length s in
  while !j < len && (s.[!j] = ' ' || s.[!j] = '\n' || s.[!j] = '\t') do
    incr j
  done;
  !j

let int_field s key =
  match find_key s key with
  | None -> None
  | Some i ->
      let i = skip_ws s i in
      let j = ref i in
      let len = String.length s in
      while
        !j < len && (s.[!j] = '-' || (s.[!j] >= '0' && s.[!j] <= '9'))
      do
        incr j
      done;
      int_of_string_opt (String.sub s i (!j - i))

let string_at s i =
  let len = String.length s in
  let i = skip_ws s i in
  if i >= len || s.[i] <> '"' then None
  else begin
    let j = ref (i + 1) in
    while !j < len && not (s.[!j] = '"' && s.[!j - 1] <> '\\') do
      incr j
    done;
    if !j >= len then None
    else Some (unescape (String.sub s (i + 1) (!j - i - 1)), !j + 1)
  end

let string_field s key =
  match find_key s key with
  | None -> None
  | Some i -> Option.map fst (string_at s i)

let string_array_field s key =
  match find_key s key with
  | None -> None
  | Some i ->
      let i = skip_ws s i in
      if i >= String.length s || s.[i] <> '[' then None
      else begin
        let items = ref [] in
        let pos = ref (i + 1) in
        let continue_ = ref true in
        while !continue_ do
          let p = skip_ws s !pos in
          if p >= String.length s || s.[p] = ']' then continue_ := false
          else if s.[p] = ',' then pos := p + 1
          else
            match string_at s p with
            | Some (item, next) ->
                items := item :: !items;
                pos := next
            | None -> continue_ := false
        done;
        Some (List.rev !items)
      end

(* ---- save ----------------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save ~dir ~instance ~failures ~shrink_steps =
  mkdir_p dir;
  let base = basename instance in
  Csv_io.save
    (Filename.concat dir (base ^ ".csv"))
    (Instance.to_dataset instance);
  let checks =
    List.sort_uniq compare (List.map (fun f -> f.Oracle.check) failures)
  in
  let oc = open_out (Filename.concat dir (base ^ ".json")) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let strings l =
        String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (escape s)) l)
      in
      Printf.fprintf oc "{\n";
      Printf.fprintf oc "  \"version\": 1,\n";
      Printf.fprintf oc "  \"campaign_seed\": %d,\n" instance.Instance.seed;
      Printf.fprintf oc "  \"id\": %d,\n" instance.Instance.id;
      Printf.fprintf oc "  \"dist\": \"%s\",\n" (escape instance.Instance.dist);
      Printf.fprintf oc "  \"degeneracies\": [%s],\n"
        (strings instance.Instance.degeneracies);
      Printf.fprintf oc "  \"n\": %d,\n" (Instance.n instance);
      Printf.fprintf oc "  \"d\": %d,\n" (Instance.d instance);
      Printf.fprintf oc "  \"k\": %d,\n" instance.Instance.k;
      Printf.fprintf oc "  \"shrink_steps\": %d,\n" shrink_steps;
      Printf.fprintf oc "  \"checks\": [%s],\n" (strings checks);
      Printf.fprintf oc "  \"failures\": [%s]\n"
        (strings (List.map (fun f -> f.Oracle.message) failures));
      Printf.fprintf oc "}\n");
  base

(* ---- load ----------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir base =
  let csv = Filename.concat dir (base ^ ".csv") in
  let json = Filename.concat dir (base ^ ".json") in
  if not (Sys.file_exists csv) then failwith (csv ^ ": missing corpus CSV");
  if not (Sys.file_exists json) then failwith (json ^ ": missing corpus JSON");
  let meta = read_file json in
  let need what = function
    | Some v -> v
    | None -> failwith (Printf.sprintf "%s: missing %s" json what)
  in
  let k = need "\"k\"" (int_field meta "k") in
  if k < 1 then failwith (json ^ ": k must be positive");
  (* normalization is an exact no-op on round-tripped repros (saved points
     are normalized and %.17g round-trips), and repairs hand-written ones *)
  let ds = Dataset.normalize (Csv_io.load csv) in
  {
    Instance.id = Option.value ~default:0 (int_field meta "id");
    seed = Option.value ~default:0 (int_field meta "campaign_seed");
    dist = Option.value ~default:"unknown" (string_field meta "dist");
    degeneracies =
      Option.value ~default:[] (string_array_field meta "degeneracies");
    k;
    points = ds.Dataset.points;
  }

let failing_checks ~dir base =
  let json = Filename.concat dir (base ^ ".json") in
  if not (Sys.file_exists json) then []
  else
    Option.value ~default:[] (string_array_field (read_file json) "checks")

let list ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".json" then begin
             let base = Filename.chop_suffix f ".json" in
             if Sys.file_exists (Filename.concat dir (base ^ ".csv")) then
               Some base
             else None
           end
           else None)
    |> List.sort compare
