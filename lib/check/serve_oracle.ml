module Rng = Kregret_dataset.Rng
module Csv_io = Kregret_dataset.Csv_io
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Rrr = Kregret_rrr.Rrr
module Serve = Kregret_serve

(* The serving subsystem must answer with the same bits it would have
   produced offline, regardless of how the cache cap is set. [max_length]
   caps materialization on both sides identically. *)
let max_length = 16

type expected = {
  stored : Stored_list.t;
  orig_of_happy : int array;
}

let expected_of_points points =
  (* [naive], not [sfs]: they keep different representatives of duplicated
     maximal points, and the Dynamic-backed registry maintains the naive
     (first-by-input-order) rule — see [Dynamic.full_rebuild] *)
  let sky_idx = Skyline.naive points in
  let sky = Array.map (fun i -> points.(i)) sky_idx in
  let happy_idx = Happy.happy_points sky in
  let happy = Array.map (fun i -> sky.(i)) happy_idx in
  let orig_of_happy = Array.map (fun i -> sky_idx.(i)) happy_idx in
  { stored = Stored_list.preprocess ~max_length happy; orig_of_happy }

let expected_answer e ~k =
  let sel = Stored_list.query e.stored ~k in
  ( List.map (fun i -> e.orig_of_happy.(i)) sel,
    Stored_list.mrr_at e.stored ~k )

let pp_sel sel = String.concat "," (List.map string_of_int sel)

let known_error_codes =
  [
    "parse_error"; "bad_request"; "missing_field"; "bad_field"; "unknown_op";
    "frame_too_large"; "not_found"; "building"; "build_failed"; "load_failed";
    "stale_dataset"; "static_dataset"; "bad_point"; "internal";
  ]

(* a handful of deterministic malformed frames; the server must answer each
   with a structured error (known code) and keep the connection serving *)
let malformed_frames rng =
  let pool =
    [|
      "garbage";
      "{";
      "[1,2]";
      "{\"op\":42}";
      "{\"op\":\"query\"}";
      "{\"op\":\"query\",\"name\":\"serve-oracle\"}";
      "{\"op\":\"query\",\"name\":\"serve-oracle\",\"k\":0}";
      "{\"op\":\"query\",\"name\":\"serve-oracle\",\"k\":1.5}";
      "{\"op\":\"mrr\",\"name\":\"no-such-dataset\",\"k\":2}";
      "{\"op\":\"flush\"}";
      "{\"op\":\"load\",\"name\":\"x\"}";
      "{\"op\":\"ping\",\"op\":\"ping\"";
    |]
  in
  List.init 4 (fun _ -> pool.(Rng.int rng (Array.length pool)))

let check inst =
  let failures = ref [] in
  let fail check fmt =
    Printf.ksprintf (fun message -> failures := (check, message) :: !failures) fmt
  in
  let csv = Filename.temp_file "kregret_serve_oracle" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove csv with Sys_error _ -> ())
    (fun () ->
      Csv_io.save csv (Instance.to_dataset inst);
      (* [Csv_io.save] emits %.17g and the instance is already normalized,
         so the server's normalize-on-load sees these exact points *)
      let e = expected_of_points inst.Instance.points in
      (* alternate the transport by instance parity: the wire core is
         transport-agnostic and both listener kinds must serve identical
         bits (the poller treats them uniformly) *)
      let listener =
        if inst.Instance.id mod 2 = 0 then
          Serve.Endpoint.Unix_path (Serve.Server.temp_socket_path ())
        else Serve.Endpoint.Tcp ("127.0.0.1", 0)
      in
      let server =
        Serve.Server.start_exn
          (Serve.Server.config ~cache_capacity:4 ~max_length
             ~listeners:[ listener ] ())
      in
      let endpoint = List.hd (Serve.Server.endpoints server) in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop server)
        (fun () ->
          match Serve.Client.connect_to endpoint with
          | Error m -> fail "serve-protocol" "connect: %s" m
          | Ok c ->
              Fun.protect
                ~finally:(fun () -> Serve.Client.close c)
                (fun () ->
                  let name = "serve-oracle" in
                  (match Serve.Client.load c ~name ~path:csv with
                  | Error m -> fail "serve" "load: %s" m
                  | Ok _ -> (
                      match Serve.Client.wait_ready c ~name with
                      | Error m -> fail "serve" "wait_ready: %s" m
                      | Ok () ->
                          (* a deterministic random interleaving of verbs:
                             repeated ks hit the cache, the tiny capacity
                             forces evictions, [evict] clears mid-stream —
                             every answer must match the offline bits *)
                          let rng =
                            Rng.create
                              ((inst.Instance.seed * 7_368_787)
                              + inst.Instance.id + 1)
                          in
                          let k_hi = max 1 (min inst.Instance.k max_length) in
                          (* built on first use; prefix-stability makes
                             one engine at k_hi answer every smaller k *)
                          let rrr_eng =
                            lazy (Rrr.build ~max_size:k_hi inst.Instance.points)
                          in
                          for _ = 1 to 12 do
                            let k = 1 + Rng.int rng k_hi in
                            match Rng.int rng 7 with
                            | 0 | 1 | 2 -> (
                                let want_sel, want_mrr = expected_answer e ~k in
                                match Serve.Client.query c ~name ~k with
                                | Error m -> fail "serve" "query k=%d: %s" k m
                                | Ok (sel, mrr) ->
                                    if sel <> want_sel then
                                      fail "serve"
                                        "query k=%d selection [%s], offline \
                                         StoredList says [%s]"
                                        k (pp_sel sel) (pp_sel want_sel);
                                    if
                                      not
                                        (Int64.equal (Int64.bits_of_float mrr)
                                           (Int64.bits_of_float want_mrr))
                                    then
                                      fail "serve"
                                        "query k=%d mrr %.17g, offline %.17g" k
                                        mrr want_mrr)
                            | 3 -> (
                                let _, want_mrr = expected_answer e ~k in
                                match Serve.Client.mrr c ~name ~k with
                                | Error m -> fail "serve" "mrr k=%d: %s" k m
                                | Ok mrr ->
                                    if
                                      not
                                        (Int64.equal (Int64.bits_of_float mrr)
                                           (Int64.bits_of_float want_mrr))
                                    then
                                      fail "serve"
                                        "mrr k=%d answered %.17g, offline %.17g"
                                        k mrr want_mrr)
                            | 4 -> (
                                let sel_ref, r_ref =
                                  Rrr.query (Lazy.force rrr_eng) ~k
                                in
                                let want =
                                  ( sel_ref,
                                    r_ref.Rrr.lo,
                                    r_ref.Rrr.hi,
                                    r_ref.Rrr.exact )
                                in
                                match Serve.Client.rank_regret c ~name ~k with
                                | Error m ->
                                    fail "serve" "rank_regret k=%d: %s" k m
                                | Ok got ->
                                    if got <> want then begin
                                      let sel, lo, hi, exact = got in
                                      let _, wlo, whi, wex = want in
                                      fail "serve"
                                        "rank_regret k=%d answered [%s] [%d, \
                                         %d] exact=%b, offline engine says \
                                         [%s] [%d, %d] exact=%b"
                                        k (pp_sel sel) lo hi exact
                                        (pp_sel sel_ref) wlo whi wex
                                    end)
                            | 5 -> (
                                match Serve.Client.evict c () with
                                | Error m -> fail "serve" "evict: %s" m
                                | Ok _ -> ())
                            | _ -> (
                                match Serve.Client.list_datasets c with
                                | Error m -> fail "serve" "list: %s" m
                                | Ok _ -> ())
                          done;
                          (* protocol abuse on the same connection *)
                          List.iter
                            (fun frame ->
                              match Serve.Client.request c frame with
                              | Error m ->
                                  fail "serve-protocol"
                                    "malformed frame %S broke the connection: \
                                     %s"
                                    frame m
                              | Ok j -> (
                                  match
                                    Option.bind (Serve.Json.member "error" j)
                                      (fun err ->
                                        Option.bind
                                          (Serve.Json.member "code" err)
                                          Serve.Json.to_str)
                                  with
                                  | Some code
                                    when List.mem code known_error_codes ->
                                      ()
                                  | Some code ->
                                      fail "serve-protocol"
                                        "frame %S: unknown error code %S" frame
                                        code
                                  | None ->
                                      fail "serve-protocol"
                                        "frame %S: expected a structured \
                                         error, got %s"
                                        frame (Serve.Json.to_string j)))
                            (malformed_frames rng);
                          (* still alive after the abuse *)
                          (match Serve.Client.ping c with
                          | Ok _ -> ()
                          | Error m ->
                              fail "serve-protocol" "ping after abuse: %s" m));
                  ()))));
  List.rev !failures
