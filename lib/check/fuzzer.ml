module Rng = Kregret_dataset.Rng
module Obs = Kregret_obs

(* The fuzz loop is sequential, so these counts replay exactly per seed. *)
let c_instances =
  Obs.Registry.counter "fuzz.instances" ~help:"fuzz instances generated"

let c_failed =
  Obs.Registry.counter "fuzz.failed_instances"
    ~help:"instances on which the oracle reported at least one failure"

let c_shrink_steps =
  Obs.Registry.counter "fuzz.shrink_steps"
    ~help:"accepted shrink steps across all failing instances"

type config = {
  instances : int;
  seed : int;
  oracle : Oracle.config;
  shrink_attempts : int;
  corpus_dir : string option;
  log : (string -> unit) option;
}

let default =
  {
    instances = 200;
    seed = 42;
    oracle = Oracle.default;
    shrink_attempts = 400;
    corpus_dir = None;
    log = None;
  }

type failure_report = {
  original : Instance.t;
  shrunk : Instance.t;
  failures : Oracle.failure list;
  shrink_steps : int;
  repro : string option;
}

type summary = { ran : int; failed : failure_report list }

let log cfg fmt =
  Printf.ksprintf (fun m -> match cfg.log with None -> () | Some f -> f m) fmt

let check_set failures =
  List.sort_uniq compare (List.map (fun f -> f.Oracle.check) failures)

let handle_failure cfg inst failures =
  let original_checks = check_set failures in
  log cfg "FAIL %s: checks [%s]; shrinking..." (Instance.describe inst)
    (String.concat " " original_checks);
  (* Shrink against "still violates one of the originally-violated checks"
     so minimization cannot wander to an unrelated bug. *)
  let fails cand =
    let fs = Oracle.check ~config:cfg.oracle cand in
    List.exists (fun f -> List.mem f.Oracle.check original_checks) fs
  in
  let s =
    Obs.Span.with_ "fuzz.shrink" (fun () ->
        Shrink.shrink ~max_attempts:cfg.shrink_attempts ~fails inst)
  in
  Obs.Counter.add c_shrink_steps s.Shrink.steps;
  let shrunk_failures = Oracle.check ~config:cfg.oracle s.Shrink.instance in
  (* keep the original failures if the final re-check raced to empty (it
     cannot for a deterministic oracle, but stay defensive) *)
  let shrunk_failures =
    if shrunk_failures = [] then failures else shrunk_failures
  in
  log cfg "shrunk to %s in %d steps (%d oracle calls)"
    (Instance.describe s.Shrink.instance)
    s.Shrink.steps s.Shrink.attempts;
  let repro =
    match cfg.corpus_dir with
    | None -> None
    | Some dir ->
        let base =
          Corpus.save ~dir ~instance:s.Shrink.instance
            ~failures:shrunk_failures ~shrink_steps:s.Shrink.steps
        in
        log cfg "persisted repro %s/%s.{csv,json}" dir base;
        Some base
  in
  {
    original = inst;
    shrunk = s.Shrink.instance;
    failures = shrunk_failures;
    shrink_steps = s.Shrink.steps;
    repro;
  }

let run cfg =
  let master = Rng.create cfg.seed in
  let failed = ref [] in
  for id = 0 to cfg.instances - 1 do
    let inst = Instance.generate ~seed:cfg.seed ~id master in
    Obs.Counter.incr c_instances;
    if id mod 50 = 0 then
      log cfg "instance %d/%d (%s)" id cfg.instances (Instance.describe inst);
    match Oracle.check ~config:cfg.oracle inst with
    | [] -> ()
    | failures ->
        Obs.Counter.incr c_failed;
        failed := handle_failure cfg inst failures :: !failed
  done;
  { ran = cfg.instances; failed = List.rev !failed }

let pp_summary ppf s =
  if s.failed = [] then
    Format.fprintf ppf "fuzz: %d instances, all checks passed@." s.ran
  else begin
    Format.fprintf ppf "fuzz: %d instances, %d FAILED@." s.ran
      (List.length s.failed);
    List.iter
      (fun r ->
        Format.fprintf ppf "@.%s@.  shrunk (%d steps) to: %s@."
          (Instance.describe r.original) r.shrink_steps
          (Instance.describe r.shrunk);
        (match r.repro with
        | Some base -> Format.fprintf ppf "  repro: %s.{csv,json}@." base
        | None -> ());
        List.iter
          (fun f -> Format.fprintf ppf "  %a@." Oracle.pp_failure f)
          r.failures)
      s.failed
  end

let replay ~dir base = Oracle.check (Corpus.load ~dir base)
