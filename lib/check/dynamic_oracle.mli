(** The dynamic-maintenance oracle: fuzzed insert/delete/query/mrr/flush
    interleavings against a rebuild-from-scratch pipeline.

    Per instance, a deterministic update trace (a pure function of the
    instance's seed and id, biased toward duplicate inserts, dominated
    points and deletions inside the current answer) is executed against
    {!Kregret.Dynamic}, and after every mutation the structure's full
    answer — stored-list ids, every prefix regret, skyline/happy sizes,
    live count — is compared {e bit-for-bit} against running the static
    pipeline (naive skyline, happy screen, stored-list preprocessing) on
    the live points. The whole trace is repeated at pool widths
    [{1, 2, 4, jobs_hi}] ([1] only when [jobs_hi <= 1]) and the per-op
    answer streams must be identical across widths.

    On failure the trace is ddmin-minimized ({!Shrink.trace}) and the
    report leads with the minimal failing op list. *)

(** [check inst] returns [(check, message)] failure pairs — [[]] when the
    instance passes. The check identifier is always ["dynamic"]. *)
val check : ?jobs_hi:int -> Instance.t -> (string * string) list
