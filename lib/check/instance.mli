(** Random problem instances for the differential fuzzer.

    An instance is a normalized candidate set in [(0,1]^d] plus a query
    size [k], tagged with enough provenance (campaign seed, stream
    position, distribution, applied degeneracies) to regenerate or explain
    it. Generation is fully deterministic: the campaign master {!Rng.t} is
    [Rng.split] once per instance, so instance [i] of campaign seed [s] is
    the same bit-for-bit on every machine and pool width. *)

type t = {
  id : int;  (** position in the campaign's instance stream *)
  seed : int;  (** campaign master seed *)
  dist : string;  (** generating distribution *)
  degeneracies : string list;
      (** degenerate transforms applied after generation, in order *)
  k : int;  (** query size (may exceed [n] to probe clamping) *)
  points : Kregret_geom.Vector.t array;  (** normalized candidate set *)
}

val n : t -> int
val d : t -> int

(** [generate ~seed ~id master] draws the next instance from the campaign
    stream: splits [master], then samples [d ∈ 2..7], [n ∈ 1..400] (biased
    toward small instances), [k ∈ 1..10], a distribution
    (uniform/correlated/anti-correlated), and 0–4 degenerate transforms
    (duplicate points, coarse-grid snapping, collinear fills, axis-aligned
    ties). The result is re-normalized. *)
val generate : seed:int -> id:int -> Kregret_dataset.Rng.t -> t

(** A deterministic per-instance generator (for the sampled-mrr check),
    derived from [(seed, id)] only. *)
val rng : t -> Kregret_dataset.Rng.t

val to_dataset : t -> Kregret_dataset.Dataset.t

(** [with_points t pts] / [with_k t k] — shrinker edits; [with_points]
    re-normalizes so the instance invariant ([(0,1]^d], every dimension
    touching 1) is preserved. *)
val with_points : t -> Kregret_geom.Vector.t array -> t

val with_k : t -> int -> t

(** [drop_dim t i] removes coordinate [i] from every point (shrinker);
    requires [d t > 2]. *)
val drop_dim : t -> int -> t

(** One-line description: id, dist, n, d, k, degeneracies. *)
val describe : t -> string

val pp : Format.formatter -> t -> unit
