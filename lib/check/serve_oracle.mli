(** Differential check of the serving subsystem (lib/serve).

    Spins up an in-process server on a temp socket, loads the instance's
    points as a CSV dataset and drives a deterministic random interleaving
    of [query]/[mrr]/[rank_regret]/[evict]/[list] requests over the wire,
    asserting that every served answer is {e bit-identical} to an offline
    computation on the same points ({!Kregret.Stored_list} for
    [query]/[mrr], {!Kregret_rrr.Rrr} for [rank_regret]) — through the
    cache, through evictions, at every probed [k]. A protocol-abuse tail
    sends malformed frames and requires structured errors (known codes) on
    a connection that keeps serving.

    Failure check names: ["serve"] (wrong or failed answers) and
    ["serve-protocol"] (framing/robustness violations) — both registered in
    {!Oracle.check_names}, so corpus replays cover serving too. *)

(** [check inst] returns [(check, message)] pairs; [[]] means the serving
    path agrees with the offline computation. Runs the whole exchange
    against a private server instance; never raises (server teardown is
    guaranteed). *)
val check : Instance.t -> (string * string) list
