type result = { instance : Instance.t; steps : int; attempts : int }

let snap_grid g points =
  Array.map
    (fun p ->
      Array.map (fun x -> Float.max 1e-6 (Float.round (x *. g) /. g)) p)
    points

let remove_block points ~off ~len =
  let n = Array.length points in
  Array.init (n - len) (fun i -> if i < off then points.(i) else points.(i + len))

(* Exact-duplicate rows (first occurrence kept). Grid snapping (pass 4)
   collapses many points onto the same coordinates; for tie-rule and
   ε-bound failures the duplicates are pure noise, and dropping them all
   at once converges far faster than block deletion can. *)
let dedup_points points =
  let seen = Hashtbl.create 64 in
  let keep =
    Array.to_list points
    |> List.filter (fun p ->
           if Hashtbl.mem seen p then false
           else begin
             Hashtbl.add seen p ();
             true
           end)
  in
  Array.of_list keep

let shrink ?(max_attempts = 400) ~fails inst =
  let attempts = ref 0 in
  let steps = ref 0 in
  let budget_left () = !attempts < max_attempts in
  (* one predicate evaluation, within budget *)
  let try_ cand =
    if not (budget_left ()) then None
    else begin
      incr attempts;
      if fails cand then Some cand else None
    end
  in
  let accept current cand =
    incr steps;
    ignore current;
    cand
  in
  if not (fails inst) then { instance = inst; steps = 0; attempts = 1 }
  else begin
    incr attempts;
    let current = ref inst in
    let progress = ref true in
    while !progress && budget_left () do
      progress := false;
      (* 1. drop contiguous point blocks, large to small *)
      let block = ref (max 1 (Instance.n !current / 2)) in
      while !block >= 1 && budget_left () do
        let retry = ref true in
        while !retry && budget_left () do
          retry := false;
          let n = Instance.n !current in
          let len = min !block (n - 1) in
          if len >= 1 then begin
            let off = ref 0 in
            while (not !retry) && !off + len <= n && budget_left () do
              let cand =
                Instance.with_points !current
                  (remove_block !current.Instance.points ~off:!off ~len)
              in
              (match try_ cand with
              | Some c ->
                  current := accept !current c;
                  progress := true;
                  retry := true (* same block size again on the smaller set *)
              | None -> ());
              off := !off + len
            done
          end
        done;
        block := !block / 2
      done;
      (* 1b. drop exact duplicate points in one shot *)
      if budget_left () then begin
        let deduped = dedup_points !current.Instance.points in
        if
          Array.length deduped >= 1
          && Array.length deduped < Instance.n !current
        then
          match try_ (Instance.with_points !current deduped) with
          | Some c ->
              current := accept !current c;
              progress := true
          | None -> ()
      end;
      (* 2. project out dimensions (keep d >= 2) *)
      let dim = ref 0 in
      while !dim < Instance.d !current && Instance.d !current > 2 && budget_left () do
        (match try_ (Instance.drop_dim !current !dim) with
        | Some c ->
            current := accept !current c;
            progress := true
            (* same [dim] now names the next coordinate *)
        | None -> incr dim);
        ()
      done;
      (* 3. reduce k *)
      let continue_k = ref true in
      while !continue_k && !current.Instance.k > 1 && budget_left () do
        match try_ (Instance.with_k !current (!current.Instance.k - 1)) with
        | Some c ->
            current := accept !current c;
            progress := true
        | None -> continue_k := false
      done;
      (* 4. snap coordinates to a coarse grid (coarsest that still fails) *)
      List.iter
        (fun g ->
          if budget_left () then
            match
              try_
                (Instance.with_points !current (snap_grid g !current.Instance.points))
            with
            | Some c ->
                if c.Instance.points <> !current.Instance.points then begin
                  current := accept !current c;
                  progress := true
                end
            | None -> ())
        [ 4.; 8.; 16. ]
    done;
    { instance = !current; steps = !steps; attempts = !attempts }
  end

(* ---- protocol frames ------------------------------------------------------

   ddmin over the bytes of a wire frame: delete contiguous chunks, halving
   the chunk size, as long as the predicate keeps failing. Used to minimize
   malformed frames surfaced by the serve oracle ("which part of this 200-
   byte line actually trips the parser?"). Deterministic. *)

(* ---- update traces --------------------------------------------------------

   ddmin over a generic op list: delete contiguous blocks, halving the
   block size, while the predicate keeps failing. Used by the dynamic
   oracle to minimize failing insert/delete/query interleavings — the ops
   are self-contained data, so any sub-trace replays deterministically. *)

let trace ?(max_attempts = 400) ~fails ops =
  let attempts = ref 0 in
  let try_ cand =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      fails cand
    end
  in
  if not (try_ ops) then ops
  else begin
    let current = ref (Array.of_list ops) in
    let progress = ref true in
    while !progress && !attempts < max_attempts do
      progress := false;
      let chunk = ref (max 1 (Array.length !current / 2)) in
      while !chunk >= 1 && !attempts < max_attempts do
        let off = ref 0 in
        while
          !off + !chunk <= Array.length !current && !attempts < max_attempts
        do
          let cur = !current in
          let n = Array.length cur in
          let cand =
            Array.init (n - !chunk) (fun i ->
                if i < !off then cur.(i) else cur.(i + !chunk))
          in
          if Array.length cand < n && try_ (Array.to_list cand) then begin
            current := cand;
            progress := true
            (* keep [off]: it now names the ops after the deletion *)
          end
          else off := !off + !chunk
        done;
        chunk := !chunk / 2
      done
    done;
    Array.to_list !current
  end

let frame ?(max_attempts = 400) ~fails s =
  let attempts = ref 0 in
  let try_ cand =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      fails cand
    end
  in
  if not (try_ s) then s
  else begin
    let current = ref s in
    let progress = ref true in
    while !progress && !attempts < max_attempts do
      progress := false;
      let chunk = ref (max 1 (String.length !current / 2)) in
      while !chunk >= 1 && !attempts < max_attempts do
        let off = ref 0 in
        while
          !off + !chunk <= String.length !current && !attempts < max_attempts
        do
          let cur = !current in
          let cand =
            String.sub cur 0 !off
            ^ String.sub cur (!off + !chunk)
                (String.length cur - !off - !chunk)
          in
          if String.length cand < String.length cur && try_ cand then begin
            current := cand;
            progress := true
            (* keep [off]: it now names the bytes after the deletion *)
          end
          else off := !off + !chunk
        done;
        chunk := !chunk / 2
      done
    done;
    !current
  end
