module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Extreme = Kregret_hull.Extreme
module Pool = Kregret_parallel.Pool
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Stored_list = Kregret.Stored_list
module Optimal2d = Kregret.Optimal2d
module Mrr = Kregret.Mrr
module Invariants = Kregret.Invariants

type suite = All | Dynamic_only | Approx_only | Rrr_only

type config = { samples : int; jobs_hi : int; suite : suite }

let default = { samples = 512; jobs_hi = 2; suite = All }

type failure = { check : string; message : string }

let pp_failure ppf f = Format.fprintf ppf "[%s] %s" f.check f.message

let check_names =
  [
    "skyline-agree";
    "lemma3-inclusion";
    "selection-valid";
    "geo-vs-greedy-mrr";
    "stored-prefix";
    "mrr-monotone-k";
    "evaluators-agree";
    "sampled-bound";
    "mrr-in-unit";
    "optimal2d";
    "jobs-invariance";
    "shard-merge";
    "serve";
    "serve-protocol";
    "dynamic";
    "approx-kernel";
    "approx-bound";
    "approx-monotone";
    "approx-jobs";
    "approx-shards";
    "rrr-structure";
    "rrr-monotone";
    "rrr-whole";
    "rrr-2d";
    "rrr-witness";
    "rrr-net";
    "rrr-sample";
    "rrr-jobs";
    "rrr-shards";
    "rrr-serve";
    "exception";
  ]

let tag check msgs = List.map (fun message -> { check; message }) msgs
let eps = Tolerance.tie

(* Run [f] under a global pool of width [jobs], restoring the caller's
   width afterwards. *)
let with_jobs jobs f =
  let before = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs before) f

(* Everything the pipeline computes on one instance; the jobs-invariance
   check recomputes a second copy at a different pool width. *)
type run = {
  sky_idx : int array;
  happy_idx : int array;
  geo : Geo_greedy.result;
  sampled : float;
}

let pipeline_run ~samples inst =
  let points = inst.Instance.points in
  let sky_idx = Skyline.sfs points in
  let sky = Array.map (fun i -> points.(i)) sky_idx in
  let happy_idx = Happy.happy_points sky in
  let happy = Array.map (fun i -> sky.(i)) happy_idx in
  let geo = Geo_greedy.run ~points:happy ~k:inst.Instance.k () in
  let selected = List.map (fun i -> happy.(i)) geo.Geo_greedy.order in
  let sampled =
    Mrr.sampled ~rng:(Instance.rng inst) ~samples
      ~data:(Array.to_list points) ~selected
  in
  { sky_idx; happy_idx; geo; sampled }

(* value-set equality: duplicate maximal points may legitimately surface
   under different indices in naive vs SFS order *)
let sorted_values points idx =
  List.sort compare (Array.to_list (Array.map (fun i -> points.(i)) idx))

let pp_order order = String.concat "," (List.map string_of_int order)

let check_inner cfg inst =
  let points = inst.Instance.points in
  let k = inst.Instance.k in
  let data = Array.to_list points in
  let r1 = with_jobs 1 (fun () -> pipeline_run ~samples:cfg.samples inst) in
  let sky = Array.map (fun i -> points.(i)) r1.sky_idx in
  let happy = Array.map (fun i -> sky.(i)) r1.happy_idx in
  let nh = Array.length happy in
  let geo = r1.geo in
  let failures = ref [] in
  let record check msgs = failures := !failures @ tag check msgs in

  (* skyline-agree *)
  let naive_idx = with_jobs 1 (fun () -> Skyline.naive points) in
  if sorted_values points naive_idx <> sorted_values points r1.sky_idx then
    record "skyline-agree"
      [
        Printf.sprintf "naive skyline (%d pts) and SFS skyline (%d pts) differ as value sets"
          (Array.length naive_idx) (Array.length r1.sky_idx);
      ];

  (* lemma3-inclusion *)
  let conv = with_jobs 1 (fun () -> Extreme.extreme_points (Array.to_list happy)) in
  record "lemma3-inclusion"
    (Invariants.subset_by_value ~eps:0. ~what:"D_conv within D_happy" conv
       ~of_:(Array.to_list happy));
  record "lemma3-inclusion"
    (Invariants.subset_by_value ~eps:0. ~what:"D_happy within D_sky"
       (Array.to_list happy) ~of_:(Array.to_list sky));
  record "lemma3-inclusion"
    (Invariants.subset_by_value ~eps:0. ~what:"D_sky within D"
       (Array.to_list sky) ~of_:data);

  (* greedy cross-check *)
  let lp = with_jobs 1 (fun () -> Greedy_lp.run ~points:happy ~k ()) in
  record "selection-valid"
    (Invariants.valid_selection ~what:"GeoGreedy selection" ~n:nh ~k
       geo.Geo_greedy.order);
  record "selection-valid"
    (Invariants.valid_selection ~what:"Greedy selection" ~n:nh ~k
       lp.Greedy_lp.order);
  record "geo-vs-greedy-mrr"
    (Invariants.agree ~eps ~what:"GeoGreedy mrr vs Greedy mrr"
       geo.Geo_greedy.mrr lp.Greedy_lp.mrr);

  (* stored list: prefix property against fresh GeoGreedy runs *)
  let sl =
    with_jobs 1 (fun () -> Stored_list.preprocess ~max_length:(max k 8) happy)
  in
  let answer = Stored_list.query sl ~k in
  record "stored-prefix"
    (Invariants.prefix_of ~what:"StoredList answer vs GeoGreedy order"
       ~prefix:answer geo.Geo_greedy.order);
  if List.length answer <> List.length geo.Geo_greedy.order then
    record "stored-prefix"
      [
        Printf.sprintf "StoredList answer [%s] and GeoGreedy order [%s] have different lengths"
          (pp_order answer) (pp_order geo.Geo_greedy.order);
      ];
  record "stored-prefix"
    (Invariants.agree ~eps ~what:"StoredList mrr vs GeoGreedy mrr"
       (Stored_list.mrr_at sl ~k) geo.Geo_greedy.mrr);
  if k >= 2 then begin
    let k2 = max 1 (k / 2) in
    let geo2 = with_jobs 1 (fun () -> Geo_greedy.run ~points:happy ~k:k2 ()) in
    let answer2 = Stored_list.query sl ~k:k2 in
    record "stored-prefix"
      (Invariants.prefix_of
         ~what:(Printf.sprintf "StoredList answer at k=%d vs fresh GeoGreedy run" k2)
         ~prefix:answer2 geo2.Geo_greedy.order);
    if List.length answer2 <> List.length geo2.Geo_greedy.order then
      record "stored-prefix"
        [
          Printf.sprintf
            "StoredList answer at k=%d [%s] and fresh GeoGreedy order [%s] have different lengths"
            k2 (pp_order answer2) (pp_order geo2.Geo_greedy.order);
        ];
    record "stored-prefix"
      (Invariants.agree ~eps
         ~what:(Printf.sprintf "StoredList mrr at k=%d vs fresh GeoGreedy mrr" k2)
         (Stored_list.mrr_at sl ~k:k2) geo2.Geo_greedy.mrr)
  end;

  (* mrr monotone non-increasing in k along the materialized list *)
  let prefix_mrrs =
    List.init (Stored_list.length sl) (fun i -> Stored_list.mrr_at sl ~k:(i + 1))
  in
  record "mrr-monotone-k"
    (Invariants.monotone_nonincreasing ~eps ~what:"materialized mrr vs k"
       prefix_mrrs);

  (* evaluators on the final selection over the full data *)
  let selected = List.map (fun i -> happy.(i)) geo.Geo_greedy.order in
  let exact = with_jobs 1 (fun () -> Mrr.geometric ~data ~selected) in
  let lp_value = with_jobs 1 (fun () -> Mrr.lp ~data ~selected) in
  record "evaluators-agree"
    (Invariants.agree ~eps ~what:"Mrr.geometric vs Mrr.lp" exact lp_value);
  record "sampled-bound"
    (Invariants.at_most ~eps ~what:"Mrr.sampled vs Mrr.geometric" ~hi:exact
       r1.sampled);
  record "mrr-in-unit"
    (Invariants.within_unit ~eps ~what:"GeoGreedy mrr" geo.Geo_greedy.mrr);
  record "mrr-in-unit" (Invariants.within_unit ~eps ~what:"Mrr.geometric" exact);
  record "mrr-in-unit"
    (Invariants.within_unit ~eps ~what:"Mrr.sampled" r1.sampled);

  (* exact optimum at d = 2 *)
  if Instance.d inst = 2 then begin
    let opt = with_jobs 1 (fun () -> Optimal2d.solve ~points:happy ~k ()) in
    record "optimal2d"
      (Invariants.at_most ~eps ~what:"Optimal2d mrr vs GeoGreedy mrr"
         ~hi:geo.Geo_greedy.mrr opt.Optimal2d.mrr);
    record "optimal2d"
      (Invariants.at_most ~eps ~what:"Optimal2d mrr vs Greedy mrr"
         ~hi:lp.Greedy_lp.mrr opt.Optimal2d.mrr);
    let opt_selected = List.map (fun i -> happy.(i)) opt.Optimal2d.order in
    record "optimal2d"
      (Invariants.agree ~eps ~what:"Optimal2d mrr vs its own selection's mrr"
         opt.Optimal2d.mrr
         (with_jobs 1 (fun () ->
              Mrr.geometric ~data:(Array.to_list happy) ~selected:opt_selected)));
    record "optimal2d"
      (Invariants.valid_selection ~what:"Optimal2d selection" ~n:nh ~k
         opt.Optimal2d.order)
  end;

  (* pool-width invariance: the determinism contract of DESIGN.md §10.
     Besides [jobs_hi], an oversubscribed width past
     [Domain.recommended_domain_count ()] exercises the pool's
     oversubscription cap (PR 5's inline fallback), which test_parallel.ml
     covers but the fuzzer previously never drove end to end. *)
  if cfg.jobs_hi > 1 then begin
    let capped = Domain.recommended_domain_count () + 2 in
    List.iter
      (fun jobs ->
        let r2 = with_jobs jobs (fun () -> pipeline_run ~samples:cfg.samples inst) in
        let jmsg what =
          Printf.sprintf "%s differs between jobs=1 and jobs=%d" what jobs
        in
        if r2.sky_idx <> r1.sky_idx then record "jobs-invariance" [ jmsg "skyline" ];
        if r2.happy_idx <> r1.happy_idx then
          record "jobs-invariance" [ jmsg "happy set" ];
        if r2.geo.Geo_greedy.order <> geo.Geo_greedy.order then
          record "jobs-invariance" [ jmsg "GeoGreedy order" ];
        if not (Float.equal r2.geo.Geo_greedy.mrr geo.Geo_greedy.mrr) then
          record "jobs-invariance" [ jmsg "GeoGreedy mrr" ];
        if r2.geo.Geo_greedy.rescans <> geo.Geo_greedy.rescans then
          record "jobs-invariance" [ jmsg "GeoGreedy rescan count" ];
        if not (Float.equal r2.sampled r1.sampled) then
          record "jobs-invariance" [ jmsg "sampled mrr" ])
      (List.sort_uniq compare [ cfg.jobs_hi; capped ])
  end;

  (* shard-merge: the scatter-gather tier is exact — the coordinator's
     merged StoredList answers row-for-row what the monolithic
     naive→happy→preprocess pipeline answers, at every shard count and at
     both pool widths (the merge is plain code over per-shard skylines, so
     exactness must survive the pool's chunking too) *)
  begin
    let stored_ref, orig_ref =
      with_jobs 1 (fun () ->
          let n_sky = Skyline.naive points in
          let n_pts = Array.map (fun i -> points.(i)) n_sky in
          let h_idx = Happy.happy_points n_pts in
          let h = Array.map (fun i -> n_pts.(i)) h_idx in
          ( Stored_list.preprocess h,
            Array.map (fun i -> n_sky.(i)) h_idx ))
    in
    let n = Array.length points in
    let shard_counts = List.sort_uniq compare [ 2; max 3 (min 5 (n / 4)) ] in
    let widths = if cfg.jobs_hi > 1 then [ 1; cfg.jobs_hi ] else [ 1 ] in
    List.iter
      (fun jobs ->
        with_jobs jobs (fun () ->
            List.iter
              (fun shards ->
                let sh = Kregret_serve.Shard.create ~shards points in
                let len = Kregret_serve.Shard.stored_length sh in
                if len <> Stored_list.length stored_ref then
                  record "shard-merge"
                    [
                      Printf.sprintf
                        "jobs=%d shards=%d: merged list materializes %d entries, monolithic %d"
                        jobs shards len (Stored_list.length stored_ref);
                    ]
                else
                  for k' = 1 to len do
                    let sel_ref =
                      List.map
                        (fun i -> orig_ref.(i))
                        (Stored_list.query stored_ref ~k:k')
                    in
                    let mrr_ref = Stored_list.mrr_at stored_ref ~k:k' in
                    let sel, mrr = Kregret_serve.Shard.query sh ~k:k' in
                    if sel <> sel_ref then
                      record "shard-merge"
                        [
                          Printf.sprintf
                            "jobs=%d shards=%d k=%d: merged selection [%s], monolithic [%s]"
                            jobs shards k' (pp_order sel) (pp_order sel_ref);
                        ];
                    if
                      not
                        (Int64.equal (Int64.bits_of_float mrr)
                           (Int64.bits_of_float mrr_ref))
                    then
                      record "shard-merge"
                        [
                          Printf.sprintf
                            "jobs=%d shards=%d k=%d: merged mrr %.17g, monolithic %.17g"
                            jobs shards k' mrr mrr_ref;
                        ]
                  done)
              shard_counts))
      widths
  end;

  (* the serving subsystem answers with the offline bits, over the wire
     (builds run on the server's single worker thread, so the pool region
     never nests with ours) *)
  List.iter
    (fun (check, message) -> failures := !failures @ [ { check; message } ])
    (with_jobs 1 (fun () -> Serve_oracle.check inst));
  !failures

(* the dynamic and approx oracles manage their own pool widths — not
   wrapped *)
let check_dynamic cfg inst =
  List.map
    (fun (check, message) -> { check; message })
    (Dynamic_oracle.check ~jobs_hi:cfg.jobs_hi inst)

let check_approx cfg inst =
  List.map
    (fun (check, message) -> { check; message })
    (Approx_oracle.check ~jobs_hi:cfg.jobs_hi inst)

let check_rrr cfg inst =
  List.map
    (fun (check, message) -> { check; message })
    (Rrr_oracle.check ~jobs_hi:cfg.jobs_hi inst)

let check_suite cfg inst =
  match cfg.suite with
  | Dynamic_only -> check_dynamic cfg inst
  | Approx_only -> check_approx cfg inst
  | Rrr_only -> check_rrr cfg inst
  | All ->
      check_inner cfg inst @ check_dynamic cfg inst @ check_approx cfg inst
      @ check_rrr cfg inst

module Obs = Kregret_obs

let c_checks =
  Obs.Registry.counter "oracle.checks" ~help:"oracle verdicts computed"

let c_failures =
  Obs.Registry.counter "oracle.failures"
    ~help:"individual check failures across all verdicts"

let check ?(config = default) inst =
  Obs.Counter.incr c_checks;
  let failures =
    Obs.Span.with_ "oracle.check" (fun () ->
        try check_suite config inst
        with e ->
          [
            {
              check = "exception";
              message =
                Printf.sprintf "%s raised on %s" (Printexc.to_string e)
                  (Instance.describe inst);
            };
          ])
  in
  Obs.Counter.add c_failures (List.length failures);
  failures
