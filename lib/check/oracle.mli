(** The differential oracle: every independent way this repository can
    compute (or bound) the same k-regret quantities, cross-checked on one
    instance.

    Per instance the oracle verifies (names in brackets are the stable
    check identifiers used in corpus metadata and by the shrinker):

    - [skyline-agree] — naive O(n²) skyline = SFS skyline (by value);
    - [lemma3-inclusion] — [D_conv ⊆ D_happy ⊆ D_sky];
    - [selection-valid] — GeoGreedy/Greedy orders are in-range, distinct,
      of size ≤ k;
    - [geo-vs-greedy-mrr] — GeoGreedy mrr = LP-Greedy mrr (tie-tolerant;
      Lemma 1 says they are the same algorithm);
    - [stored-prefix] — StoredList's answer at [k] (and at [k/2], against a
      fresh GeoGreedy run) is exactly the greedy prefix, with matching mrr;
    - [mrr-monotone-k] — materialized mrr is non-increasing in [k];
    - [evaluators-agree] — [Mrr.geometric] = [Mrr.lp] on the final
      selection over the full data;
    - [sampled-bound] — Monte-Carlo mrr never exceeds the exact value;
    - [mrr-in-unit] — every reported ratio lies in [0, 1];
    - [optimal2d] — at [d = 2] the exact DP never loses to either greedy,
      and its reported optimum is achieved by its reported selection;
    - [jobs-invariance] — skyline, happy set, GeoGreedy trajectory and the
      Monte-Carlo estimate are bit-identical at pool widths 1, [jobs_hi]
      and an oversubscribed width past
      [Domain.recommended_domain_count ()] (driving the pool's
      oversubscription cap end to end);
    - [shard-merge] — the scatter-gather shard tier
      ({!Kregret_serve.Shard}) answers row-for-row and bit-for-bit what
      the monolithic naive→happy→StoredList pipeline answers, at every
      tested shard count and at pool widths 1 and [jobs_hi];
    - [serve] / [serve-protocol] — an in-process query server loaded with
      the instance answers every wire request bit-identically to the
      offline StoredList, and survives malformed frames with structured
      errors (see {!Serve_oracle});
    - [dynamic] — a fuzzed insert/delete/query/mrr/flush interleaving on
      {!Kregret.Dynamic} answers bit-identically to rebuilding the static
      pipeline from scratch after every mutation, at pool widths
      [{1, 2, 4, jobs_hi}] (see {!Dynamic_oracle});
    - [approx-kernel] / [approx-bound] / [approx-monotone] /
      [approx-jobs] / [approx-shards] — the ε-kernel approximation tier:
      kernel structure and per-direction maxima, the certified regret
      bound, ε-monotonicity, pool-width bit-identity and shard-tier
      equivalence (see {!Approx_oracle});
    - [rrr-structure] / [rrr-monotone] / [rrr-whole] / [rrr-2d] /
      [rrr-witness] / [rrr-net] / [rrr-sample] / [rrr-jobs] /
      [rrr-shards] / [rrr-serve] — the rank-regret query family:
      candidate funnel and certified-interval structure, lo
      monotonicity, an independent cell-by-cell d = 2 arrangement
      evaluator, witness/net re-evaluation, sampled upper-bound probes,
      pool-width and shard-tier bit-identity, and wire parity of the
      [rank_regret] verb (see {!Rrr_oracle});
    - [exception] — no component raised.

    All tie comparisons go through {!Tolerance.tie}. *)

(** Which checks to run: the full battery, or only the
    dynamic-maintenance, approximation, or rank-regret oracles (the
    [--check dynamic] / [--check approx] / [--check rrr] fast paths of
    [kregret_fuzz]). *)
type suite = All | Dynamic_only | Approx_only | Rrr_only

type config = {
  samples : int;  (** Monte-Carlo budget for the sampled-bound check *)
  jobs_hi : int;
      (** second pool width for [jobs-invariance]; [<= 1] disables it *)
  suite : suite;
}

val default : config

type failure = { check : string; message : string }

val pp_failure : Format.formatter -> failure -> unit

(** [check ?config inst] runs every applicable check; [[]] means the
    instance passes. Exceptions from components are captured as
    [exception] failures, never propagated. *)
val check : ?config:config -> Instance.t -> failure list

(** The stable check identifiers, for documentation and corpus metadata. *)
val check_names : string list
