module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Pool = Kregret_parallel.Pool
module Kernel = Kregret_approx.Kernel
module Pipeline = Kregret_approx.Pipeline
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Geo_greedy = Kregret.Geo_greedy
module Mrr = Kregret.Mrr
module Invariants = Kregret.Invariants
module Shard = Kregret_serve.Shard

let tol = Tolerance.tie

let with_jobs jobs f =
  let before = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs before) f

(* Direction budget per net: enough resolution to make the bound bite at
   low d without blowing the per-instance scan cost at high d. *)
let direction_budget = 1024

(* The ε the oracle checks at dimension [d]: the finest grid within the
   budget, but never coarser than ε = 1 allows (eps is capped at 1, so
   m >= ceil ((d-1)/2) always). *)
let eps_for ~d =
  if d <= 1 then 1.
  else begin
    let m_min = Kernel.resolution_for ~d ~eps:1. in
    let m = ref m_min in
    while
      Kernel.net_size ~d ~resolution:(!m + 1) <= float_of_int direction_budget
    do
      incr m
    done;
    float_of_int (d - 1) /. (2. *. float_of_int !m)
  end

let pp_ids ids =
  String.concat "," (List.map string_of_int (Array.to_list ids))

let pp_order order = String.concat "," (List.map string_of_int order)

let check ?(jobs_hi = 2) inst =
  let points = inst.Instance.points in
  let n = Array.length points in
  let d = Instance.d inst in
  let k = inst.Instance.k in
  let data = Array.to_list points in
  let eps = eps_for ~d in
  let failures = ref [] in
  let record check msgs =
    failures := !failures @ List.map (fun m -> (check, m)) msgs
  in
  let p1 = with_jobs 1 (fun () -> Pipeline.run ~eps points) in
  let red = p1.Pipeline.reduction in
  let kernel_ids = red.Kernel.ids in
  let kernel_vecs = Array.map (fun id -> points.(id)) kernel_ids in
  let slack = red.Kernel.slack in

  (* approx-kernel: the kernel is a subset of the input, sorted and
     duplicate-free, and contains every per-direction maximum — with each
     winner recomputed by an independent boxed first-wins scan, so a
     broken tie rule or blocked-kernel drift in the flat scan is caught
     here *)
  Array.iteri
    (fun i id ->
      if id < 0 || id >= n then
        record "approx-kernel"
          [ Printf.sprintf "kernel id %d out of range [0, %d)" id n ];
      if i > 0 && id <= kernel_ids.(i - 1) then
        record "approx-kernel"
          [
            Printf.sprintf "kernel ids not strictly ascending at %d: [%s]" i
              (pp_ids kernel_ids);
          ])
    kernel_ids;
  if Array.length red.Kernel.winners <> red.Kernel.directions then
    record "approx-kernel"
      [
        Printf.sprintf "%d winners for %d directions"
          (Array.length red.Kernel.winners)
          red.Kernel.directions;
      ];
  let in_kernel = Hashtbl.create (Array.length kernel_ids) in
  Array.iter (fun id -> Hashtbl.replace in_kernel id ()) kernel_ids;
  Array.iteri
    (fun j w ->
      if not (Hashtbl.mem in_kernel w) then
        record "approx-kernel"
          [ Printf.sprintf "winner %d of direction %d missing from kernel" w j ])
    red.Kernel.winners;
  begin
    let nt = Kernel.net ~d ~eps () in
    let mismatches = ref 0 in
    for j = 0 to Flat.rows nt.Kernel.dirs - 1 do
      if !mismatches < 3 then begin
        let w = Flat.row nt.Kernel.dirs j in
        let best = ref 0 and best_v = ref (Vector.dot points.(0) w) in
        for i = 1 to n - 1 do
          let v = Vector.dot points.(i) w in
          if not (!best_v >= v) then begin
            best := i;
            best_v := v
          end
        done;
        if !best <> red.Kernel.winners.(j) then begin
          incr mismatches;
          record "approx-kernel"
            [
              Printf.sprintf
                "direction %d: boxed reference maximum is row %d, scan kept %d"
                j !best red.Kernel.winners.(j);
            ]
        end
      end
    done
  end;

  (* approx-bound: every advertised inequality that is actually a theorem.
     mrr is computed by the exact geometric evaluator on both sides. *)
  let sel_ids, reported = Pipeline.query p1 ~k in
  if sel_ids = [] then
    record "approx-bound"
      [ "approx pipeline selected nothing on a normalized instance" ]
  else begin
    let selected = List.map (fun id -> points.(id)) sel_ids in
    let kernel_data = Array.to_list kernel_vecs in
    let mrr_true = with_jobs 1 (fun () -> Mrr.geometric ~data ~selected) in
    let mrr_kernel =
      with_jobs 1 (fun () -> Mrr.geometric ~data:kernel_data ~selected)
    in
    record "approx-bound"
      (Invariants.agree ~eps:tol
         ~what:"stored (kernel-relative) mrr vs Mrr.geometric over the kernel"
         reported mrr_kernel);
    let certificate = Float.min 1. (mrr_kernel +. slack) in
    record "approx-bound"
      (Invariants.agree ~eps:tol ~what:"Pipeline.certified_bound"
         (Pipeline.certified_bound p1 ~k)
         certificate);
    record "approx-bound"
      (Invariants.at_most ~eps:tol
         ~what:
           (Printf.sprintf
              "mrr of the approx selection over the full data vs its \
               certificate (slack %.6g)"
              slack)
         ~hi:certificate mrr_true);
    (* the ISSUE's literal form: approx cannot trail exact by more than
       the advertised bound (exact mrr >= 0 makes this a corollary of the
       certificate, and the certificate is the advertised bound) *)
    let exact =
      with_jobs 1 (fun () ->
          let sky_idx = Skyline.sfs points in
          let sky = Array.map (fun i -> points.(i)) sky_idx in
          let hap_idx = Happy.happy_points sky in
          let happy = Array.map (fun i -> sky.(i)) hap_idx in
          let geo = Geo_greedy.run ~points:happy ~k () in
          let sel = List.map (fun i -> happy.(i)) geo.Geo_greedy.order in
          Mrr.geometric ~data ~selected:sel)
    in
    record "approx-bound"
      (Invariants.at_most ~eps:tol
         ~what:"mrr(approx) - mrr(exact) vs the advertised bound"
         ~hi:(exact +. certificate) mrr_true);
    (* the kernel itself is an ε-coreset: selecting all of it leaves at
       most [slack] regret over the full data *)
    record "approx-bound"
      (Invariants.at_most ~eps:tol
         ~what:"mrr of the whole kernel over the full data vs slack"
         ~hi:slack
         (with_jobs 1 (fun () ->
              Mrr.geometric ~data ~selected:kernel_data)));
    (* sampled directional probes of the same coreset property *)
    let rng = Instance.rng inst in
    for _ = 1 to 32 do
      let w = Mrr.random_direction rng d in
      let rr =
        Mrr.regret_for_weight ~weight:w ~data ~selected:kernel_data
      in
      record "approx-bound"
        (Invariants.at_most ~eps:tol
           ~what:"sampled direction regret of the kernel vs slack" ~hi:slack rr)
    done
  end;

  (* approx-monotone: halving ε exactly doubles the grid, and the finer
     grid contains the coarser one — so the kernel grows and its coreset
     regret cannot increase. Skipped when the doubled net would blow the
     per-instance scan budget (high d). *)
  let m2 = 2 * red.Kernel.resolution in
  if Kernel.net_size ~d ~resolution:m2 *. float_of_int (n * d) <= 5e7 then begin
    let red_lo = with_jobs 1 (fun () -> Kernel.reduce ~eps:(eps /. 2.) points) in
    if red_lo.Kernel.resolution <> m2 then
      record "approx-monotone"
        [
          Printf.sprintf "eps/2 resolved to m=%d, expected %d"
            red_lo.Kernel.resolution m2;
        ];
    record "approx-monotone"
      (Invariants.at_most ~eps:0. ~what:"slack at eps/2 vs slack at eps"
         ~hi:slack red_lo.Kernel.slack);
    let in_lo = Hashtbl.create (Array.length red_lo.Kernel.ids) in
    Array.iter (fun id -> Hashtbl.replace in_lo id ()) red_lo.Kernel.ids;
    Array.iter
      (fun id ->
        if not (Hashtbl.mem in_lo id) then
          record "approx-monotone"
            [
              Printf.sprintf
                "kernel id %d at eps=%.6g missing from the eps/2 kernel" id eps;
            ])
      kernel_ids;
    let coreset_mrr ids =
      with_jobs 1 (fun () ->
          Mrr.geometric ~data
            ~selected:(Array.to_list (Array.map (fun id -> points.(id)) ids)))
    in
    record "approx-monotone"
      (Invariants.at_most ~eps:tol
         ~what:"coreset mrr at eps/2 vs coreset mrr at eps"
         ~hi:(coreset_mrr kernel_ids)
         (coreset_mrr red_lo.Kernel.ids))
  end;

  (* approx-jobs: bit-identity of the reduction and the downstream
     pipeline across pool widths, including an oversubscribed width past
     the recommended-domain cap (the PR 5 inline fallback) *)
  if jobs_hi > 1 then begin
    let widths =
      [ (jobs_hi, "jobs_hi"); (Domain.recommended_domain_count () + 2, "capped") ]
    in
    List.iter
      (fun (jobs, label) ->
        let r = with_jobs jobs (fun () -> Kernel.reduce ~eps points) in
        if r.Kernel.ids <> kernel_ids then
          record "approx-jobs"
            [
              Printf.sprintf "kernel ids differ between jobs=1 and jobs=%d (%s)"
                jobs label;
            ];
        if r.Kernel.winners <> red.Kernel.winners then
          record "approx-jobs"
            [
              Printf.sprintf
                "per-direction winners differ between jobs=1 and jobs=%d (%s)"
                jobs label;
            ];
        let p = with_jobs jobs (fun () -> Pipeline.run ~eps points) in
        if p.Pipeline.order <> p1.Pipeline.order then
          record "approx-jobs"
            [
              Printf.sprintf
                "approx pipeline order differs between jobs=1 and jobs=%d (%s)"
                jobs label;
            ];
        if
          not
            (Int64.equal
               (Int64.bits_of_float (Pipeline.mrr_at p ~k))
               (Int64.bits_of_float (Pipeline.mrr_at p1 ~k)))
        then
          record "approx-jobs"
            [
              Printf.sprintf
                "approx pipeline mrr differs between jobs=1 and jobs=%d (%s)"
                jobs label;
            ])
      widths
  end;

  (* approx-shards: the shard tier with per-chunk kernels and a
     coordinator rescan answers bit-identically to the offline approx
     pipeline at every shard count *)
  with_jobs 1 (fun () ->
      List.iter
        (fun shards ->
          let sh = Shard.create ~approx:eps ~shards points in
          if Shard.kernel_size sh <> Array.length kernel_ids then
            record "approx-shards"
              [
                Printf.sprintf
                  "shards=%d: merged kernel has %d rows, offline %d" shards
                  (Shard.kernel_size sh) (Array.length kernel_ids);
              ];
          let len = Shard.stored_length sh in
          if len <> Pipeline.stored_length p1 then
            record "approx-shards"
              [
                Printf.sprintf
                  "shards=%d: served list materializes %d entries, offline %d"
                  shards len (Pipeline.stored_length p1);
              ]
          else
            for k' = 1 to len do
              let sel, mrr = Shard.query sh ~k:k' in
              let sel_ref, mrr_ref = Pipeline.query p1 ~k:k' in
              if sel <> sel_ref then
                record "approx-shards"
                  [
                    Printf.sprintf "shards=%d k=%d: served [%s], offline [%s]"
                      shards k' (pp_order sel) (pp_order sel_ref);
                  ];
              if
                not
                  (Int64.equal (Int64.bits_of_float mrr)
                     (Int64.bits_of_float mrr_ref))
              then
                record "approx-shards"
                  [
                    Printf.sprintf
                      "shards=%d k=%d: served mrr %.17g, offline %.17g" shards
                      k' mrr mrr_ref;
                  ]
            done)
        [ 1; 2; 4 ]);
  !failures
