(* Pick an "All-Star" roster: k players so that any coach — whatever mix of
   scoring, rebounding, assists, steals and blocks they value — finds a
   player within a few percent of their personal best.

   Run with:  dune exec examples/nba_allstars.exe

   Shows the full candidate-set funnel (D -> skyline -> happy points) and
   contrasts the regret quality of GeoGreedy with the Cube baseline. *)

module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Geo_greedy = Kregret.Geo_greedy
module Cube = Kregret.Cube
module Mrr = Kregret.Mrr

let stats = [| "PTS"; "REB"; "AST"; "STL"; "BLK" |]

let () =
  let league = Generator.nba_like (Rng.create 2014) ~n:20_000 in
  Fmt.pr "league: %d players, %d stats@." (Dataset.size league) league.Dataset.dim;

  (* candidate funnel *)
  let sky = Skyline.of_dataset league in
  let happy = Happy.of_dataset league in
  Fmt.pr "skyline players: %d    happy players: %d@." (Dataset.size sky)
    (Dataset.size happy);

  let k = 10 in
  let points = happy.Dataset.points in
  let roster = Geo_greedy.run ~points ~k () in
  Fmt.pr "@.=== %d-player All-Star roster (GeoGreedy) ===@." k;
  List.iteri
    (fun rank i ->
      let p = points.(i) in
      Fmt.pr "  #%-2d" (rank + 1);
      Array.iteri (fun j x -> Fmt.pr "  %s=%.2f" stats.(j) x) p;
      Fmt.pr "@.")
    roster.Geo_greedy.order;
  Fmt.pr "  any coach loses at most %.1f%% of their ideal pick@."
    (100. *. roster.Geo_greedy.mrr);

  (* the same budget spent on a grid heuristic *)
  let cube = Cube.run ~points ~k () in
  Fmt.pr "@.Cube baseline with the same k: %.1f%% worst-case loss@."
    (100. *. cube.Cube.mrr);

  (* verify against the whole league, not just the candidates *)
  let selected = List.map (fun i -> points.(i)) roster.Geo_greedy.order in
  let full = Mrr.geometric ~data:(Dataset.to_list league) ~selected in
  Fmt.pr "@.roster regret vs the full league: %.4f (= candidate regret %.4f)@."
    full roster.Geo_greedy.mrr
