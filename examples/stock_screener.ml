(* An interactive-latency stock screener: materialize a StoredList once,
   then answer k-regret queries for any shortlist size instantly — the
   paper's two-phase deployment (Section IV-B).

   Run with:  dune exec examples/stock_screener.exe *)

module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let market = Generator.stocks_like (Rng.create 7) ~n:50_000 in
  Fmt.pr "universe: %d stocks x %d indicators@." (Dataset.size market)
    market.Dataset.dim;

  (* offline phase: happy points + materialized greedy order *)
  let happy, t_happy = time (fun () -> Happy.of_dataset market) in
  let list, t_list =
    time (fun () -> Stored_list.preprocess ~max_length:128 happy.Dataset.points)
  in
  Fmt.pr "offline: %d happy stocks in %.2fs, list of %d in %.2fs@."
    (Dataset.size happy) t_happy (Stored_list.length list) t_list;

  (* online phase: shortlist sizes chosen interactively cost microseconds *)
  Fmt.pr "@.%-6s %-12s %-14s@." "k" "mrr" "query time";
  List.iter
    (fun k ->
      let _, t_query = time (fun () -> Stored_list.query list ~k) in
      Fmt.pr "%-6d %-12.4f %8.1f us@." k
        (Stored_list.mrr_at list ~k)
        (1e6 *. t_query))
    [ 5; 10; 20; 50; 100 ];

  let shortlist = Stored_list.query list ~k:5 in
  Fmt.pr "@.=== 5-stock shortlist ===@.";
  Fmt.pr "  %-4s %-7s %-10s %-7s %-9s %-9s@." "#" "return" "stability" "growth"
    "dividend" "liquidity";
  List.iteri
    (fun rank i ->
      let p = happy.Dataset.points.(i) in
      Fmt.pr "  %-4d %-7.2f %-10.2f %-7.2f %-9.2f %-9.2f@." (rank + 1) p.(0)
        p.(1) p.(2) p.(3) p.(4))
    shortlist
