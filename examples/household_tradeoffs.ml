(* Candidate-set ablation on the household-style workload: the same greedy
   algorithm run on skyline candidates vs happy candidates — the comparison
   behind the paper's Figures 7-10 and its central claim that happy points
   are the better candidate set.

   Run with:  dune exec examples/household_tradeoffs.exe *)

module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Geo_greedy = Kregret.Geo_greedy
module Mrr = Kregret.Mrr

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let homes = Generator.household_like (Rng.create 1332) ~n:60_000 in
  let full = Dataset.to_list homes in
  Fmt.pr "dataset: %d households x %d attributes@." (Dataset.size homes)
    homes.Dataset.dim;

  let sky, t_sky = time (fun () -> Skyline.of_dataset homes) in
  let happy_idx, t_happy =
    time (fun () -> Happy.happy_points sky.Dataset.points)
  in
  let happy = Dataset.sub sky ~indices:happy_idx in
  Fmt.pr "|Dsky| = %d (%.2fs)   |Dhappy| = %d (+%.2fs)@." (Dataset.size sky)
    t_sky (Dataset.size happy) t_happy;

  Fmt.pr "@.%-4s | %-28s | %-28s@." "k" "GeoGreedy on Dsky" "GeoGreedy on Dhappy";
  Fmt.pr "%-4s | %-14s %-13s | %-14s %-13s@." "" "mrr (full D)" "query time"
    "mrr (full D)" "query time";
  List.iter
    (fun k ->
      let run points =
        let r, t = time (fun () -> Geo_greedy.run ~points ~k ()) in
        let selected = List.map (fun i -> points.(i)) r.Geo_greedy.order in
        (Mrr.geometric ~data:full ~selected, t)
      in
      let mrr_sky, t_sky = run sky.Dataset.points in
      let mrr_happy, t_happy = run happy.Dataset.points in
      Fmt.pr "%-4d | %-14.4f %10.3fs  | %-14.4f %10.3fs@." k mrr_sky t_sky
        mrr_happy t_happy)
    [ 10; 20; 40 ];

  Fmt.pr
    "@.Happy candidates give regret at least as good, from a candidate set \
     %.1fx smaller.@."
    (float_of_int (Dataset.size sky) /. float_of_int (Dataset.size happy))
