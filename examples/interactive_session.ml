(* Interactive regret minimization (the paper's Section VIII future-work
   direction, after Nanongkai et al., SIGMOD 2012): instead of returning k
   tuples at once, ask the user a few "which of these do you prefer?"
   questions and converge to a single near-optimal tuple.

   Run with:  dune exec examples/interactive_session.exe *)

module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Happy = Kregret_happy.Happy
module Interactive = Kregret.Interactive

let () =
  let market = Generator.stocks_like (Rng.create 99) ~n:20_000 in
  let happy = Happy.of_dataset market in
  let points = happy.Dataset.points in
  Fmt.pr "%d stocks, %d plausible candidates after the happy-point filter@."
    (Dataset.size market) (Array.length points);

  (* the "user": a hidden utility the simulator answers questions with *)
  let hidden = Vector.normalize [| 0.45; 0.25; 0.1; 0.15; 0.05 |] in
  Fmt.pr "hidden utility (unknown to the algorithm): %a@.@." Vector.pp hidden;

  let r = Interactive.simulate ~display:4 ~points ~utility:hidden () in
  List.iteri
    (fun i round ->
      Fmt.pr "round %d: shown %d tuples, user picked #%d -> %d candidates left, regret bound %.3f@."
        (i + 1)
        (List.length round.Interactive.displayed)
        round.Interactive.chosen round.Interactive.candidates_left
        round.Interactive.regret_bound)
    r.Interactive.rounds;

  Fmt.pr "@.after %d questions, recommended tuple #%d: %a@."
    r.Interactive.questions r.Interactive.recommendation Vector.pp
    points.(r.Interactive.recommendation);
  Fmt.pr "true regret of the recommendation: %.4f@." r.Interactive.true_regret
