(* Quickstart: the paper's running car example (Tables I and II).

   Run with:  dune exec examples/quickstart.exe

   Demonstrates the three core notions on four cars:
   - utilities under explicit linear utility functions (Table II),
   - the regret ratio of a selection under a finite function class,
   - a k-regret query over the full (infinite) class of linear utilities. *)

module Vector = Kregret_geom.Vector
module Toy = Kregret.Toy
module Mrr = Kregret.Mrr
module Query = Kregret.Query

let () =
  Fmt.pr "=== Car database (Table I) ===@.";
  Array.iteri
    (fun i car ->
      Fmt.pr "  %-20s MPG=%.2f HP=%.2f@." Toy.names.(i) car.(0) car.(1))
    Toy.cars;

  Fmt.pr "@.=== Utilities (Table II) ===@.";
  let table = Toy.utility_table () in
  Fmt.pr "  %-20s" "Car";
  List.iter (fun w -> Fmt.pr "  f(%.1f,%.1f)" w.(0) w.(1)) Toy.weights;
  Fmt.pr "@.";
  Array.iteri
    (fun i row ->
      Fmt.pr "  %-20s" Toy.names.(i);
      Array.iter (fun u -> Fmt.pr "  %10.3f" u) row;
      Fmt.pr "@.")
    table;

  (* the paper's worked selection: S = {p2, p3} *)
  let data = Array.to_list Toy.cars in
  let selected = [ Toy.cars.(1); Toy.cars.(2) ] in
  Fmt.pr "@.=== Selection {Camaro, Shelby} ===@.";
  List.iter
    (fun w ->
      Fmt.pr "  regret under f(%.1f,%.1f) = %.3f@." w.(0) w.(1)
        (Mrr.regret_for_weight ~weight:w ~data ~selected))
    Toy.weights;
  Fmt.pr "  mrr over the finite class   = %.3f  (paper: 0.115)@."
    (Mrr.finite_class ~weights:Toy.weights ~data ~selected);
  Fmt.pr "  mrr over ALL linear classes = %.3f@." (Mrr.geometric ~data ~selected);

  (* now let the library pick the best 2 cars *)
  Fmt.pr "@.=== 2-regret query (GeoGreedy) ===@.";
  let result = Query.run ~candidates:Query.All Toy.dataset ~k:2 in
  List.iter
    (fun i -> Fmt.pr "  selected: %s@." Toy.names.(i))
    result.Query.order;
  Fmt.pr "  maximum regret ratio = %.3f@." result.Query.mrr
